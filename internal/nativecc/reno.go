// Package nativecc implements congestion control algorithms that run
// *inside* the datapath, processing every ACK synchronously — the way the
// Linux kernel implements them. They are the paper's baselines: Figures 3
// and 4 compare CCP-based implementations against these.
package nativecc

import (
	"github.com/ccp-repro/ccp/internal/tcp"
)

// Reno is classic AIMD congestion control: slow start to ssthresh,
// additive increase of one segment per RTT, multiplicative decrease by half
// on loss, collapse to one segment on timeout.
type Reno struct {
	ssthresh int // bytes
	acked    int // byte accumulator for congestion avoidance
}

// NewReno-style recovery mechanics (fast retransmit, partial-ACK hole
// repair) live in the datapath (internal/tcp); the distinction between Reno
// and NewReno at the congestion-avoidance level is the window kept during
// recovery, which both set to ssthresh = cwnd/2.

// NewRenoCC returns a Reno congestion controller.
func NewRenoCC() *Reno { return &Reno{} }

// Name implements tcp.CongestionControl.
func (r *Reno) Name() string { return "reno" }

// Init implements tcp.CongestionControl.
func (r *Reno) Init(c *tcp.Conn) {
	r.ssthresh = 1 << 30
	r.acked = 0
}

// OnAck implements tcp.CongestionControl.
func (r *Reno) OnAck(c *tcp.Conn, s tcp.AckSample) {
	if s.AckedBytes <= 0 || c.InRecovery() {
		return
	}
	mss := c.MSS()
	cwnd := c.Cwnd()
	if cwnd < r.ssthresh {
		// Slow start: one segment per acked segment.
		c.SetCwnd(cwnd + s.AckedBytes)
		return
	}
	// Congestion avoidance: one segment per window.
	r.acked += s.AckedBytes
	if r.acked >= cwnd {
		r.acked -= cwnd
		c.SetCwnd(cwnd + mss)
	}
}

// OnCongestion implements tcp.CongestionControl.
func (r *Reno) OnCongestion(c *tcp.Conn, ev tcp.CongEvent, lostBytes int) {
	mss := c.MSS()
	switch ev {
	case tcp.EventDupAck:
		r.ssthresh = maxInt(c.Cwnd()/2, 2*mss)
		c.SetCwnd(r.ssthresh)
	case tcp.EventTimeout:
		r.ssthresh = maxInt(c.Cwnd()/2, 2*mss)
		c.SetCwnd(mss)
	case tcp.EventECN:
		// Classic Reno treats ECN like loss once per window; keep the
		// conservative halving.
		r.ssthresh = maxInt(c.Cwnd()/2, 2*mss)
		c.SetCwnd(r.ssthresh)
	}
}

// Close implements tcp.CongestionControl.
func (r *Reno) Close(c *tcp.Conn) {}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
