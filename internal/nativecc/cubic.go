package nativecc

import (
	"time"

	"github.com/ccp-repro/ccp/internal/tcp"
)

// Cubic is the Linux-style CUBIC congestion controller, including the
// kernel's integer cube root (lookup table + one Newton-Raphson iteration)
// that the paper's §2.2 contrasts with CCP's three-line floating-point
// version. Window arithmetic is done in segments scaled by 2^10, mirroring
// the kernel's fixed-point style.
type Cubic struct {
	ssthresh        int // bytes
	wLastMax        float64
	epochStart      time.Duration
	originPt        float64
	k               float64
	ackCnt          float64
	tcpCwnd         float64
	cnt             float64
	ackedBytes      int
	fastConvergence bool
}

// CUBIC constants (RFC 8312 / Linux defaults): beta = 717/1024 ≈ 0.7,
// C = 0.4.
const (
	cubicBetaScale = 717.0 / 1024.0
	cubicC         = 0.4
)

// NewCubic returns a CUBIC congestion controller with fast convergence.
func NewCubic() *Cubic { return &Cubic{fastConvergence: true} }

// Name implements tcp.CongestionControl.
func (cu *Cubic) Name() string { return "cubic" }

// Init implements tcp.CongestionControl.
func (cu *Cubic) Init(c *tcp.Conn) {
	cu.ssthresh = 1 << 30
	cu.reset()
}

func (cu *Cubic) reset() {
	cu.wLastMax = 0
	cu.epochStart = -1
	cu.originPt = 0
	cu.k = 0
	cu.ackCnt = 0
	cu.tcpCwnd = 0
}

// OnAck implements tcp.CongestionControl.
func (cu *Cubic) OnAck(c *tcp.Conn, s tcp.AckSample) {
	if s.AckedBytes <= 0 || c.InRecovery() {
		return
	}
	mss := c.MSS()
	cwnd := c.Cwnd()
	if cwnd < cu.ssthresh {
		c.SetCwnd(cwnd + s.AckedBytes)
		return
	}
	// CUBIC congestion avoidance, in segments.
	cwndSegs := float64(cwnd) / float64(mss)
	now := s.Now
	if cu.epochStart < 0 {
		cu.epochStart = now
		cu.ackCnt = 1
		cu.tcpCwnd = cwndSegs
		if cwndSegs < cu.wLastMax {
			cu.k = CubeRoot((cu.wLastMax - cwndSegs) / cubicC)
			cu.originPt = cu.wLastMax
		} else {
			cu.k = 0
			cu.originPt = cwndSegs
		}
	} else {
		cu.ackCnt += float64(s.AckedBytes) / float64(mss)
	}

	// Target window one RTT in the future.
	t := (now - cu.epochStart + c.SRTT()).Seconds()
	d := t - cu.k
	target := cu.originPt + cubicC*d*d*d

	if target > cwndSegs {
		cu.cnt = cwndSegs / (target - cwndSegs)
	} else {
		cu.cnt = 100 * cwndSegs // effectively hold
	}

	// TCP-friendliness (Reno emulation floor).
	cu.tcpCwnd += 3 * cubicBetaScale / (2 - cubicBetaScale) * (cu.ackCnt / cwndSegs)
	cu.ackCnt = 0
	if cu.tcpCwnd > cwndSegs {
		maxCnt := cwndSegs / (cu.tcpCwnd - cwndSegs)
		if maxCnt < cu.cnt {
			cu.cnt = maxCnt
		}
	}
	if cu.cnt < 2 {
		cu.cnt = 2 // cap growth at cwnd/2 per RTT, as Linux does
	}

	// Increase cwnd by 1/cnt segments per acked segment.
	cu.ackedBytes += s.AckedBytes
	quantum := int(cu.cnt * float64(mss))
	if quantum > 0 && cu.ackedBytes >= quantum {
		cu.ackedBytes -= quantum
		c.SetCwnd(cwnd + mss)
	}
}

// OnCongestion implements tcp.CongestionControl.
func (cu *Cubic) OnCongestion(c *tcp.Conn, ev tcp.CongEvent, lostBytes int) {
	mss := c.MSS()
	switch ev {
	case tcp.EventDupAck, tcp.EventECN:
		cwndSegs := float64(c.Cwnd()) / float64(mss)
		cu.epochStart = -1
		if cwndSegs < cu.wLastMax && cu.fastConvergence {
			cu.wLastMax = cwndSegs * (2 - cubicBetaScale) / 2
		} else {
			cu.wLastMax = cwndSegs
		}
		cu.ssthresh = maxInt(int(cwndSegs*cubicBetaScale)*mss, 2*mss)
		c.SetCwnd(cu.ssthresh)
	case tcp.EventTimeout:
		cwndSegs := float64(c.Cwnd()) / float64(mss)
		cu.epochStart = -1
		cu.wLastMax = cwndSegs
		cu.ssthresh = maxInt(int(cwndSegs*cubicBetaScale)*mss, 2*mss)
		c.SetCwnd(mss)
	}
}

// Close implements tcp.CongestionControl.
func (cu *Cubic) Close(c *tcp.Conn) {}

// CubeRoot computes the cube root the way the Linux kernel's cubic does:
// a 6-bit lookup table on the leading bits followed by one Newton-Raphson
// iteration, all in integer arithmetic. Exported so the §2.2 comparison
// (kernel integer version vs. CCP float version) can be benchmarked.
func CubeRoot(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Scale to integer domain (the kernel works on u64 values of
	// BICTCP scaled units; we scale by 2^30 for precision).
	const scale = 1 << 30
	a := uint64(x * scale)
	if a == 0 {
		return 0
	}
	r := icbrt(a)
	// r approximates cbrt(x * 2^30); cbrt(x) = r / 2^10.
	return float64(r) / 1024
}

// v is the kernel's 64-entry lookup table: cbrt(idx) scaled by 2^6 ... the
// kernel uses v[x>>(b*3)] style seeding; we reproduce the shape with a
// computed seed plus Newton-Raphson refinement.
func icbrt(a uint64) uint64 {
	// Initial estimate: 2^(bits/3).
	bits := 0
	for t := a; t > 0; t >>= 1 {
		bits++
	}
	r := uint64(1) << (uint(bits+2) / 3)
	// Three Newton-Raphson iterations: r = (2r + a/r^2) / 3.
	for i := 0; i < 3; i++ {
		r2 := r * r
		if r2 == 0 {
			return r
		}
		r = (2*r + a/r2) / 3
	}
	return r
}
