package nativecc

import (
	"math"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
)

func TestCubeRootAccuracy(t *testing.T) {
	for _, x := range []float64{0.001, 0.5, 1, 2, 8, 27, 1000, 12345.678, 1e6} {
		got := CubeRoot(x)
		want := math.Cbrt(x)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("CubeRoot(%v)=%v, want ~%v", x, got, want)
		}
	}
}

func TestCubeRootEdgeCases(t *testing.T) {
	if CubeRoot(0) != 0 || CubeRoot(-5) != 0 {
		t.Fatal("non-positive inputs must return 0")
	}
}

func runFlow(t *testing.T, cc tcp.CongestionControl, link netsim.LinkConfig, dur time.Duration) (*tcp.Flow, *netsim.Path) {
	t.Helper()
	sim := netsim.New(1)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: link}, fwd, rev)
	f := tcp.NewFlow(sim, 1, path, fwd, rev, cc, tcp.Options{})
	f.Conn.Start()
	sim.Run(dur)
	return f, path
}

func bottleneck1BDP() netsim.LinkConfig {
	// 16 Mbit/s, 10 ms RTT, 1 BDP buffer.
	return netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 20000}
}

func TestRenoAchievesUtilization(t *testing.T) {
	_, path := runFlow(t, NewRenoCC(), bottleneck1BDP(), 30*time.Second)
	if u := path.Forward.Utilization(30 * time.Second); u < 0.75 {
		t.Fatalf("reno utilization %.2f", u)
	}
}

func TestNewRenoAchievesUtilization(t *testing.T) {
	_, path := runFlow(t, NewNewReno(), bottleneck1BDP(), 30*time.Second)
	if u := path.Forward.Utilization(30 * time.Second); u < 0.75 {
		t.Fatalf("newreno utilization %.2f", u)
	}
}

func TestCubicAchievesUtilization(t *testing.T) {
	_, path := runFlow(t, NewCubic(), bottleneck1BDP(), 30*time.Second)
	if u := path.Forward.Utilization(30 * time.Second); u < 0.85 {
		t.Fatalf("cubic utilization %.2f", u)
	}
}

func TestVegasLowDelay(t *testing.T) {
	link := netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20}
	f, path := runFlow(t, NewVegas(), link, 20*time.Second)
	if u := path.Forward.Utilization(20 * time.Second); u < 0.8 {
		t.Fatalf("vegas utilization %.2f", u)
	}
	// Vegas holds only alpha..beta packets queued: srtt stays near 10 ms.
	if srtt := f.Conn.SRTT(); srtt > 18*time.Millisecond {
		t.Fatalf("vegas srtt %v, want < 18ms", srtt)
	}
}

func TestCubicBeatsRenoOnLongFat(t *testing.T) {
	// On a high-BDP path, CUBIC should recover to full utilization faster
	// than Reno after drops — the reason it replaced Reno as the default.
	link := netsim.LinkConfig{RateBps: 200e6, Delay: 25 * time.Millisecond, QueueBytes: 200e6 / 8 * 0.05}
	_, pr := runFlow(t, NewRenoCC(), link, 60*time.Second)
	_, pc := runFlow(t, NewCubic(), link, 60*time.Second)
	ur := pr.Forward.Utilization(60 * time.Second)
	uc := pc.Forward.Utilization(60 * time.Second)
	if uc <= ur {
		t.Fatalf("cubic (%.3f) not better than reno (%.3f) on long-fat path", uc, ur)
	}
}

func TestRenoSsthreshAfterTimeout(t *testing.T) {
	// After a timeout the window collapses to one MSS and slow-starts back.
	sim := netsim.New(1)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	link := netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20}
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: link}, fwd, rev)
	r := NewRenoCC()
	f := tcp.NewFlow(sim, 1, path, fwd, rev, r, tcp.Options{})
	f.Conn.Start()
	sim.Run(2 * time.Second)
	pre := f.Conn.Cwnd()
	r.OnCongestion(f.Conn, tcp.EventTimeout, 0)
	if f.Conn.Cwnd() != f.Conn.MSS() {
		t.Fatalf("cwnd after timeout = %d, want 1 MSS", f.Conn.Cwnd())
	}
	if r.ssthresh < pre/2-f.Conn.MSS() || r.ssthresh > pre/2+f.Conn.MSS() {
		t.Fatalf("ssthresh=%d, want ~%d", r.ssthresh, pre/2)
	}
}

func TestNewRenoSingleHalvingPerEpisode(t *testing.T) {
	sim := netsim.New(1)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	link := netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20}
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: link}, fwd, rev)
	n := NewNewReno()
	f := tcp.NewFlow(sim, 1, path, fwd, rev, n, tcp.Options{})
	f.Conn.Start()
	sim.Run(time.Second)
	f.Conn.SetCwnd(100 * f.Conn.MSS())
	n.OnCongestion(f.Conn, tcp.EventDupAck, f.Conn.MSS())
	after1 := f.Conn.Cwnd()
	n.OnCongestion(f.Conn, tcp.EventDupAck, f.Conn.MSS())
	if f.Conn.Cwnd() != after1 {
		t.Fatalf("second dupack inside recovery re-halved: %d -> %d", after1, f.Conn.Cwnd())
	}
}

func TestNamesStable(t *testing.T) {
	if NewRenoCC().Name() != "reno" || NewNewReno().Name() != "newreno" ||
		NewCubic().Name() != "cubic" || NewVegas().Name() != "vegas" {
		t.Fatal("algorithm names changed")
	}
}
