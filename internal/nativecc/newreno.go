package nativecc

import (
	"github.com/ccp-repro/ccp/internal/tcp"
)

// NewRenoStyle is NewReno as the paper's Figure 4 baseline: Reno congestion
// avoidance with the window held at ssthresh throughout fast recovery. The
// partial-ACK hole repair that distinguishes NewReno from Reno lives in the
// datapath (internal/tcp), which retransmits one hole per partial ACK; this
// module additionally avoids re-halving for loss events within one recovery
// episode.
type NewRenoStyle struct {
	reno       Reno
	inRecovery bool
}

// NewNewReno returns a NewReno congestion controller.
func NewNewReno() *NewRenoStyle { return &NewRenoStyle{} }

// Name implements tcp.CongestionControl.
func (n *NewRenoStyle) Name() string { return "newreno" }

// Init implements tcp.CongestionControl.
func (n *NewRenoStyle) Init(c *tcp.Conn) {
	n.reno.Init(c)
	n.inRecovery = false
}

// OnAck implements tcp.CongestionControl.
func (n *NewRenoStyle) OnAck(c *tcp.Conn, s tcp.AckSample) {
	if n.inRecovery && !c.InRecovery() {
		n.inRecovery = false
	}
	n.reno.OnAck(c, s)
}

// OnCongestion implements tcp.CongestionControl.
func (n *NewRenoStyle) OnCongestion(c *tcp.Conn, ev tcp.CongEvent, lostBytes int) {
	switch ev {
	case tcp.EventDupAck:
		if n.inRecovery {
			return // one halving per recovery episode
		}
		n.inRecovery = true
		n.reno.OnCongestion(c, ev, lostBytes)
	case tcp.EventTimeout:
		n.inRecovery = false
		n.reno.OnCongestion(c, ev, lostBytes)
	case tcp.EventECN:
		n.reno.OnCongestion(c, ev, lostBytes)
	}
}

// Close implements tcp.CongestionControl.
func (n *NewRenoStyle) Close(c *tcp.Conn) {}
