package nativecc

import (
	"time"

	"github.com/ccp-repro/ccp/internal/tcp"
)

// Vegas is delay-based congestion control following the structure of the
// Linux tcp_vegas implementation: once per RTT it estimates the number of
// segments queued in the network (diff = cwnd * (rtt - baseRTT) / rtt).
// During slow start it exits as soon as diff exceeds gamma, clamping the
// window to the target; in congestion avoidance it holds diff between
// alpha and beta.
type Vegas struct {
	alpha, beta, gamma float64 // queued-segment thresholds

	baseRTT  time.Duration
	minRTT   time.Duration // min within the current RTT epoch
	cntRTT   int
	epochEnd int64 // delivered-byte count that ends the epoch
	ssthresh int
}

// NewVegas returns a Vegas controller with the Linux defaults (alpha=2,
// beta=4, gamma=1); alpha/beta match the paper's §2.4 example.
func NewVegas() *Vegas { return &Vegas{alpha: 2, beta: 4, gamma: 1} }

// Name implements tcp.CongestionControl.
func (v *Vegas) Name() string { return "vegas" }

// Init implements tcp.CongestionControl.
func (v *Vegas) Init(c *tcp.Conn) {
	v.ssthresh = 1 << 30
	v.baseRTT = 0
	v.resetEpoch(c)
}

func (v *Vegas) resetEpoch(c *tcp.Conn) {
	v.minRTT = 1 << 62
	v.cntRTT = 0
	v.epochEnd = c.Delivered() + int64(c.Cwnd())
}

// OnAck implements tcp.CongestionControl.
func (v *Vegas) OnAck(c *tcp.Conn, s tcp.AckSample) {
	if s.RTT > 0 {
		if v.baseRTT == 0 || s.RTT < v.baseRTT {
			v.baseRTT = s.RTT
		}
		if s.RTT < v.minRTT {
			v.minRTT = s.RTT
		}
		v.cntRTT++
	}
	if s.AckedBytes <= 0 || c.InRecovery() {
		return
	}

	// Once per RTT (one cwnd's worth of deliveries), run the Vegas update.
	if c.Delivered() >= v.epochEnd {
		v.epochUpdate(c)
		v.resetEpoch(c)
	}

	// Slow start doubles per ACK until ssthresh (clamped by epochUpdate).
	if cwnd := c.Cwnd(); cwnd < v.ssthresh {
		c.SetCwnd(cwnd + s.AckedBytes)
	}
}

func (v *Vegas) epochUpdate(c *tcp.Conn) {
	mss := c.MSS()
	cwnd := c.Cwnd()
	if v.cntRTT <= 2 || v.baseRTT == 0 || v.minRTT >= 1<<62 {
		// Not enough samples this RTT: Reno-style additive increase.
		if cwnd >= v.ssthresh {
			c.SetCwnd(cwnd + mss)
		}
		return
	}
	rtt := v.minRTT
	// target: the window that fits the pipe with no queueing (bytes).
	target := float64(cwnd) * float64(v.baseRTT) / float64(rtt)
	// diff: estimated segments queued at the bottleneck.
	diff := float64(cwnd-int(target)) / float64(mss)

	switch {
	case diff > v.gamma && cwnd < v.ssthresh:
		// Slow-start overshoot: clamp to target and leave slow start.
		newCwnd := minInt(cwnd, int(target)+mss)
		c.SetCwnd(newCwnd)
		v.ssthresh = minInt(v.ssthresh, maxInt(newCwnd-mss, 2*mss))
	case cwnd < v.ssthresh:
		// Still in slow start; per-ACK doubling continues elsewhere.
	case diff > v.beta:
		c.SetCwnd(cwnd - mss)
		v.ssthresh = minInt(v.ssthresh, maxInt(cwnd-2*mss, 2*mss))
	case diff < v.alpha:
		c.SetCwnd(cwnd + mss)
	}
}

// OnCongestion implements tcp.CongestionControl.
func (v *Vegas) OnCongestion(c *tcp.Conn, ev tcp.CongEvent, lostBytes int) {
	mss := c.MSS()
	switch ev {
	case tcp.EventDupAck, tcp.EventECN:
		v.ssthresh = maxInt(c.Cwnd()/2, 2*mss)
		c.SetCwnd(v.ssthresh)
	case tcp.EventTimeout:
		v.ssthresh = maxInt(c.Cwnd()/2, 2*mss)
		c.SetCwnd(mss)
	}
}

// Close implements tcp.CongestionControl.
func (v *Vegas) Close(c *tcp.Conn) {}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
