package tcp

import (
	"time"

	"github.com/ccp-repro/ccp/internal/netsim"
)

// segment is the sender's bookkeeping for one in-flight wire packet. Under
// TSO a segment may carry several MSS units; loss and RTT accounting happen
// at this granularity.
type segment struct {
	seq    uint64
	length int
	segs   int
	sentAt time.Duration
	retx   bool // has been retransmitted (echoes ignored per Karn's rule)
	lost   bool // declared lost, retransmission pending
	sacked bool // selectively acknowledged: delivered, awaiting cumack
	// Rate-sample snapshots (Linux rate-sample / BBR style): the cumulative
	// delivered count and send position when this segment departed.
	deliveredAtSend int64
	sndNxtAtSend    uint64
}

// Conn is the sending half of a simulated flow: it transmits an unbounded
// bulk stream, subject to the congestion window and pacing rate that its
// CongestionControl module sets.
type Conn struct {
	sim  *netsim.Sim
	flow netsim.FlowID
	opts Options
	out  *netsim.Link
	cc   CongestionControl

	running    bool
	cwnd       int     // bytes
	pacingRate float64 // bytes/sec; 0 disables pacing

	sndUna uint64
	sndNxt uint64
	segs   []segment // in-flight, ascending seq; head is the oldest
	pipe   int       // bytes considered in flight (excludes lost-not-yet-retransmitted)

	delivered int64 // cumulative delivered bytes (rate-sample numerator)

	dupAcks    int
	inRecovery bool
	recoverSeq uint64
	retxScan   uint64 // seq from which to scan for lost segments
	// lastDeliveredSentAt is the send timestamp of the most recently
	// delivered packet (from ACK echoes), driving RACK-style loss marking:
	// anything sent well before a delivered packet and still unacked is
	// presumed lost.
	lastDeliveredSentAt time.Duration

	srtt, rttvar, minRtt time.Duration
	rtoBackoff           uint
	rtoTimer             netsim.Timer
	rtoDeadline          time.Duration
	paceTimer            netsim.Timer
	nextPace             time.Duration

	stats ConnStats

	// lastSample is the most recent AckSample, for observers.
	lastSample AckSample
}

// NewConn creates a sender for flow id on sim, transmitting into out and
// governed by cc. Call Start to begin the bulk transfer.
func NewConn(sim *netsim.Sim, id netsim.FlowID, out *netsim.Link, cc CongestionControl, opts Options) *Conn {
	opts = opts.withDefaults()
	return &Conn{
		sim:  sim,
		flow: id,
		opts: opts,
		out:  out,
		cc:   cc,
		cwnd: opts.InitCwndSegs * opts.MSS,
	}
}

// Start initializes the congestion-control module and begins transmitting.
func (c *Conn) Start() {
	if c.running {
		return
	}
	// Init runs before transmission is enabled so that a module configuring
	// both window and rate does not burst unpaced in between.
	c.cc.Init(c)
	c.running = true
	c.trySend()
}

// Stop halts transmission and releases timers.
func (c *Conn) Stop() {
	if !c.running {
		return
	}
	c.running = false
	// Nil the fields after stopping: the simulator recycles timer slots, so a
	// handle is dead once stopped and must not be retained (see netsim.Timer).
	if c.rtoTimer != nil {
		c.rtoTimer.Stop()
		c.rtoTimer = nil
	}
	if c.paceTimer != nil {
		c.paceTimer.Stop()
		c.paceTimer = nil
	}
	c.cc.Close(c)
}

// Handle implements netsim.Handler for the reverse (ACK) path.
func (c *Conn) Handle(p *netsim.Packet) {
	if !p.IsAck || !c.running {
		return
	}
	c.onAck(p)
}

// Accessors used by congestion-control modules and experiments.

// FlowID returns the flow identifier.
func (c *Conn) FlowID() netsim.FlowID { return c.flow }

// MSS returns the maximum segment size in bytes.
func (c *Conn) MSS() int { return c.opts.MSS }

// Cwnd returns the congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cwnd }

// SetCwnd sets the congestion window in bytes, floored at one MSS: the
// datapath guards itself against a misbehaving controller (§5).
func (c *Conn) SetCwnd(bytes int) {
	if bytes < c.opts.MSS {
		bytes = c.opts.MSS
	}
	c.cwnd = bytes
	c.stats.CwndSetCalls++
	c.trySend()
}

// PacingRate returns the pacing rate in bytes/sec (0 = unpaced).
func (c *Conn) PacingRate() float64 { return c.pacingRate }

// SetPacingRate sets the pacing rate in bytes/sec. Non-positive disables
// pacing. Rates below one segment per second are floored to that.
func (c *Conn) SetPacingRate(bps float64) {
	if bps <= 0 {
		c.pacingRate = 0
	} else {
		floor := float64(c.opts.MSS)
		if bps < floor {
			bps = floor
		}
		c.pacingRate = bps
	}
	c.stats.RateSetCalls++
	c.trySend()
}

// SRTT returns the smoothed RTT (0 before the first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// MinRTT returns the minimum observed RTT (0 before the first sample).
func (c *Conn) MinRTT() time.Duration { return c.minRtt }

// InFlight returns the bytes currently considered in flight.
func (c *Conn) InFlight() int { return c.pipe }

// Delivered returns cumulative delivered (acked) bytes.
func (c *Conn) Delivered() int64 { return c.delivered }

// Stats returns a snapshot of the sender counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// LastSample returns the most recent per-ACK measurement.
func (c *Conn) LastSample() AckSample { return c.lastSample }

// Now returns the datapath clock.
func (c *Conn) Now() time.Duration { return c.sim.Now() }

// InRecovery reports whether the sender is in loss recovery.
func (c *Conn) InRecovery() bool { return c.inRecovery }

// Sending machinery.

// trySend transmits as much as the window and pacing allow, preferring
// retransmissions of lost segments over new data (SACK-style recovery: the
// pipe refills with repairs at line rate rather than one hole per RTT).
func (c *Conn) trySend() {
	if !c.running {
		return
	}
	for {
		li := c.nextLostIndex()
		if li >= 0 {
			seg := &c.segs[li]
			if c.pipe > 0 && c.pipe+seg.length > c.cwnd {
				return
			}
			if c.pacedOut() {
				return
			}
			c.retransmitSeg(li)
			continue
		}
		if c.pipe+c.opts.MSS > c.cwnd || len(c.segs) >= c.opts.MaxInflightSegs {
			return
		}
		if c.pacedOut() {
			return
		}
		c.sendSegment()
	}
}

// pacedOut reports whether pacing forbids sending now, scheduling a resume
// if so.
func (c *Conn) pacedOut() bool {
	if c.pacingRate <= 0 {
		return false
	}
	now := c.sim.Now()
	if now < c.nextPace {
		c.schedulePace(c.nextPace - now)
		return true
	}
	return false
}

// nextLostIndex returns the index of the first lost segment at or after the
// scan pointer, or -1. The pointer only moves forward between loss events,
// so scanning is amortized O(1) per send.
func (c *Conn) nextLostIndex() int {
	if len(c.segs) == 0 {
		return -1
	}
	i := 0
	if c.retxScan > c.segs[0].seq {
		lo, hi := 0, len(c.segs)
		for lo < hi {
			mid := (lo + hi) / 2
			if c.segs[mid].seq < c.retxScan {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		i = lo
	}
	for ; i < len(c.segs); i++ {
		if c.segs[i].lost {
			c.retxScan = c.segs[i].seq
			return i
		}
	}
	c.retxScan = c.sndNxt
	return -1
}

// retransmitSeg resends segs[i], which must be marked lost.
func (c *Conn) retransmitSeg(i int) {
	seg := &c.segs[i]
	if !seg.lost {
		return
	}
	seg.lost = false
	seg.retx = true
	seg.sentAt = c.sim.Now()
	seg.deliveredAtSend = c.delivered
	seg.sndNxtAtSend = c.sndNxt
	c.pipe += seg.length
	c.advancePace(seg.length)
	c.transmit(seg, true)
	c.rearmRTO()
}

// advancePace charges one packet against the pacing budget.
func (c *Conn) advancePace(length int) {
	if c.pacingRate <= 0 {
		return
	}
	wire := float64(length + netsim.HeaderBytes)
	interval := time.Duration(wire / c.pacingRate * float64(time.Second))
	base := c.nextPace
	if now := c.sim.Now(); now > base {
		base = now
	}
	c.nextPace = base + interval
}

func (c *Conn) schedulePace(d time.Duration) {
	if c.paceTimer != nil {
		c.paceTimer.Stop()
	}
	c.paceTimer = c.sim.Schedule(d, func() {
		c.paceTimer = nil
		c.trySend()
	})
}

// sendSegment sends one wire packet of up to TSOSegs segments of new data.
func (c *Conn) sendSegment() {
	nsegs := 1
	if c.opts.TSOSegs > 1 {
		// Fill as many segments as the window allows, up to the TSO limit.
		for nsegs < c.opts.TSOSegs && c.pipe+(nsegs+1)*c.opts.MSS <= c.cwnd {
			nsegs++
		}
	}
	length := nsegs * c.opts.MSS
	now := c.sim.Now()
	seg := segment{
		seq:             c.sndNxt,
		length:          length,
		segs:            nsegs,
		sentAt:          now,
		deliveredAtSend: c.delivered,
		sndNxtAtSend:    c.sndNxt,
	}
	c.segs = append(c.segs, seg)
	c.transmit(&seg, false)
	c.sndNxt += uint64(length)
	c.pipe += length
	c.advancePace(length)
	c.armRTO()
}

// transmit puts a (re)transmission of seg on the wire.
func (c *Conn) transmit(seg *segment, isRetx bool) {
	p := &netsim.Packet{
		Flow:       c.flow,
		Seq:        seg.seq,
		Len:        seg.length,
		Segs:       seg.segs,
		IsRetx:     isRetx,
		SentAt:     c.sim.Now(),
		ECNCapable: c.opts.ECN,
	}
	c.stats.SegsSent += seg.segs
	c.stats.PktsSent++
	if isRetx {
		c.stats.Retransmits++
	}
	c.out.Enqueue(p)
}

// ACK processing.

func (c *Conn) onAck(p *netsim.Packet) {
	c.stats.AcksRcvd++
	now := c.sim.Now()

	var rtt time.Duration
	if p.EchoValid {
		if !p.EchoRetx {
			rtt = now - p.EchoTS
			c.updateRTT(rtt)
		}
		if p.EchoTS > c.lastDeliveredSentAt {
			c.lastDeliveredSentAt = p.EchoTS
		}
	}

	sample := AckSample{
		RTT:          rtt,
		ECNEcho:      p.ECNEcho,
		HdrRate:      p.HdrRate,
		Now:          now,
		SndRate:      c.lastSample.SndRate,
		DeliveryRate: c.lastSample.DeliveryRate,
	}
	if p.ECNEcho {
		c.stats.ECNEchoes++
	}
	sample.SackedBytes = c.processSacks(p.Sacks)

	if p.CumAck > c.sndUna {
		acked := int(p.CumAck - c.sndUna)
		sample.AckedBytes = acked
		c.delivered += int64(acked)
		c.stats.BytesAcked += int64(acked)

		// Pop covered segments; the most recent one snapshots the rates.
		var last *segment
		for len(c.segs) > 0 && c.segs[0].seq+uint64(c.segs[0].length) <= p.CumAck {
			seg := c.segs[0]
			c.segs = c.segs[1:]
			if !seg.lost && !seg.sacked {
				c.pipe -= seg.length
			}
			last = &seg
		}
		c.sndUna = p.CumAck
		if last != nil {
			elapsed := now - last.sentAt
			if elapsed > 0 {
				sample.DeliveryRate = float64(c.delivered-last.deliveredAtSend) / elapsed.Seconds()
				sample.SndRate = float64(c.sndNxt-last.sndNxtAtSend) / elapsed.Seconds()
			}
		}

		c.dupAcks = 0
		c.rtoBackoff = 0
		if c.inRecovery {
			if c.sndUna >= c.recoverSeq {
				c.inRecovery = false
			} else {
				// Partial ACK: the new head is another hole, and RACK
				// marking sweeps any other segments that newer deliveries
				// prove lost.
				lost := c.markHeadLost()
				lost += c.rackMarkLost()
				if lost > 0 {
					sample.LostBytes += lost
					c.retransmitHead()
				}
			}
		}
		c.rearmRTO()
	} else if c.pipe > 0 || len(c.segs) > 0 {
		// Duplicate ACK.
		c.dupAcks++
		if c.dupAcks == 3 && !c.inRecovery {
			c.enterRecovery(&sample)
		}
	}

	if p.ECNEcho {
		c.cc.OnCongestion(c, EventECN, 0)
	}

	sample.InFlight = c.pipe
	c.lastSample = sample
	c.cc.OnAck(c, sample)
	c.trySend()
}

// enterRecovery handles the third duplicate ACK: fast retransmit plus a
// RACK sweep over the whole in-flight window.
func (c *Conn) enterRecovery(sample *AckSample) {
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	c.stats.FastRetx++
	lost := c.markHeadLost()
	lost += c.rackMarkLost()
	sample.LostBytes += lost
	c.cc.OnCongestion(c, EventDupAck, lost)
	c.retransmitHead()
}

// rackMarkLost marks every unacked, unmarked segment sent more than a
// reordering window before the most recently delivered packet as lost
// (RACK, RFC 8985 in miniature). It returns the bytes newly marked.
func (c *Conn) rackMarkLost() int {
	if c.lastDeliveredSentAt == 0 {
		return 0
	}
	reo := c.srtt / 8
	thresh := c.lastDeliveredSentAt - reo
	lost := 0
	for i := range c.segs {
		seg := &c.segs[i]
		if seg.sentAt >= thresh {
			if seg.retx {
				// Retransmissions carry fresh timestamps out of sequence
				// order; skip them and keep scanning originals.
				continue
			}
			// Originals are sent in sequence order, so every later
			// segment is at least this recent: stop scanning.
			break
		}
		if seg.lost || seg.sacked {
			continue
		}
		seg.lost = true
		c.pipe -= seg.length
		if c.retxScan > seg.seq {
			c.retxScan = seg.seq
		}
		lost += seg.length
	}
	return lost
}

// processSacks applies SACK blocks: fully covered segments leave the pipe
// and are shielded from loss marking and retransmission. A segment
// previously marked lost that turns out to be SACKed is un-marked (its
// retransmission may still be in flight; that is TCP's lot too). Returns
// the bytes newly SACKed.
func (c *Conn) processSacks(sacks [][2]uint64) int {
	newly := 0
	for _, r := range sacks {
		i := c.findSegIndex(r[0])
		for ; i < len(c.segs); i++ {
			seg := &c.segs[i]
			if seg.seq >= r[1] {
				break
			}
			if seg.sacked || seg.seq < r[0] || seg.seq+uint64(seg.length) > r[1] {
				continue
			}
			if !seg.lost {
				c.pipe -= seg.length
			}
			seg.lost = false
			seg.sacked = true
			newly += seg.length
		}
	}
	return newly
}

// findSegIndex returns the index of the first segment with seq >= target.
func (c *Conn) findSegIndex(target uint64) int {
	lo, hi := 0, len(c.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.segs[mid].seq < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// markHeadLost declares the head segment lost if it is not already, and
// returns the bytes newly marked.
func (c *Conn) markHeadLost() int {
	if len(c.segs) == 0 {
		return 0
	}
	head := &c.segs[0]
	if head.lost || head.sacked {
		return 0
	}
	head.lost = true
	c.pipe -= head.length
	if c.retxScan > head.seq {
		c.retxScan = head.seq
	}
	return head.length
}

// retransmitHead resends the head segment (which must be marked lost).
func (c *Conn) retransmitHead() {
	if len(c.segs) == 0 || !c.segs[0].lost {
		return
	}
	c.retransmitSeg(0)
}

// RTT estimation (RFC 6298 coefficients).

func (c *Conn) updateRTT(rtt time.Duration) {
	c.stats.RTTSamples++
	if c.minRtt == 0 || rtt < c.minRtt {
		c.minRtt = rtt
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
		return
	}
	diff := c.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (3*c.rttvar + diff) / 4
	c.srtt = (7*c.srtt + rtt) / 8
}

// rto returns the current retransmission timeout with backoff.
func (c *Conn) rto() time.Duration {
	rto := c.srtt + 4*c.rttvar
	if rto < c.opts.MinRTO {
		rto = c.opts.MinRTO
	}
	return rto << c.rtoBackoff
}

// armRTO starts the retransmission timer if it is not already pending. It
// deliberately does NOT push an existing deadline out: the timer guards the
// *oldest* outstanding segment, and refreshing it on every transmission
// would let a continuously sending (rate-limited) flow starve its own RTO.
func (c *Conn) armRTO() {
	if len(c.segs) == 0 || !c.running || c.rtoTimer != nil {
		return
	}
	c.rtoDeadline = c.sim.Now() + c.rto()
	c.rtoTimer = c.sim.Schedule(c.rto(), c.rtoFire)
}

// rearmRTO pushes the deadline out after forward progress (a cumulative ACK
// or a retransmission of the oldest hole). The timer itself is lazy: it
// re-checks the live deadline when it fires, so re-arming is O(1).
func (c *Conn) rearmRTO() {
	if len(c.segs) == 0 || !c.running {
		return
	}
	c.rtoDeadline = c.sim.Now() + c.rto()
	if c.rtoTimer == nil {
		c.rtoTimer = c.sim.Schedule(c.rto(), c.rtoFire)
	}
}

// rtoFire checks the live deadline; a deadline pushed into the future just
// reschedules the timer for the remainder.
func (c *Conn) rtoFire() {
	c.rtoTimer = nil
	if !c.running || len(c.segs) == 0 {
		return
	}
	now := c.sim.Now()
	if now < c.rtoDeadline {
		c.rtoTimer = c.sim.Schedule(c.rtoDeadline-now, c.rtoFire)
		return
	}
	c.onTimeout()
}

// onTimeout handles an RTO: every in-flight segment is presumed lost.
func (c *Conn) onTimeout() {
	c.rtoTimer = nil
	if !c.running || len(c.segs) == 0 {
		return
	}
	c.stats.Timeouts++
	lost := 0
	for i := range c.segs {
		if !c.segs[i].lost && !c.segs[i].sacked {
			c.segs[i].lost = true
			lost += c.segs[i].length
		}
	}
	c.pipe = 0
	c.dupAcks = 0
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	c.retxScan = c.sndUna
	if c.rtoBackoff < 16 {
		c.rtoBackoff++
	}
	c.cc.OnCongestion(c, EventTimeout, lost)
	c.retransmitHead()
	c.trySend()
}
