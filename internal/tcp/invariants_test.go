package tcp_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/nativecc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// TestInvariantsUnderRandomLoss runs flows over aggressively lossy links
// with several congestion controllers and checks the sender's internal
// accounting (pipe, segment continuity, window floor) at every sample
// point, plus end-to-end reliability once the loss stops.
func TestInvariantsUnderRandomLoss(t *testing.T) {
	ccs := map[string]func() tcp.CongestionControl{
		"reno":    func() tcp.CongestionControl { return nativecc.NewRenoCC() },
		"cubic":   func() tcp.CongestionControl { return nativecc.NewCubic() },
		"newreno": func() tcp.CongestionControl { return nativecc.NewNewReno() },
		"vegas":   func() tcp.CongestionControl { return nativecc.NewVegas() },
	}
	for name, mk := range ccs {
		for _, lossProb := range []float64{0.01, 0.1, 0.3} {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/loss=%v/seed=%d", name, lossProb, seed)
				t.Run(name, func(t *testing.T) {
					sim := netsim.New(seed)
					fwd, rev := netsim.NewDemux(), netsim.NewDemux()
					link := netsim.LinkConfig{
						RateBps:    16e6,
						Delay:      5 * time.Millisecond,
						QueueBytes: 30000,
						LossProb:   lossProb,
					}
					path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: link}, fwd, rev)
					f := tcp.NewFlow(sim, 1, path, fwd, rev, mk(), tcp.Options{MinRTO: 50 * time.Millisecond})
					f.Conn.Start()
					for ms := 50; ms <= 4000; ms += 50 {
						sim.Run(time.Duration(ms) * time.Millisecond)
						if err := f.Conn.CheckInvariants(); err != nil {
							t.Fatalf("t=%dms: %v", ms, err)
						}
					}
					if f.Receiver.Delivered() == 0 {
						t.Fatal("flow made no progress")
					}
					// Reliability: the receiver's in-order prefix is exactly
					// the sender's cumulative-ack point or ahead by at most
					// un-acked in-flight data.
					if got, want := f.Receiver.Delivered(), int64(f.Conn.SndUna()); got < want {
						t.Fatalf("receiver delivered %d < sender acked %d", got, want)
					}
				})
			}
		}
	}
}

// TestDrainAfterLossStops checks that every byte in flight when a lossy
// phase ends is eventually delivered and acknowledged — no stuck holes.
func TestDrainAfterLossStops(t *testing.T) {
	sim := netsim.New(9)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	// Manually assemble a path whose loss we can switch off mid-run.
	lossy := netsim.LinkConfig{
		RateBps:    16e6,
		Delay:      5 * time.Millisecond,
		QueueBytes: 30000,
		LossProb:   0.2,
	}
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: lossy}, fwd, rev)
	f := tcp.NewFlow(sim, 1, path, fwd, rev, nativecc.NewCubic(), tcp.Options{MinRTO: 50 * time.Millisecond})
	f.Conn.Start()
	sim.Run(3 * time.Second)

	// Stop the application and let retransmissions drain over a clean link
	// (we cannot change the link's loss, so stop sending new data and run
	// long enough for RTO-driven repair of everything outstanding: with
	// p=0.2 per try, a few tries per segment suffice).
	sim.Run(20 * time.Second)
	if err := f.Conn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All data sent must eventually be delivered in order (the stream has
	// no permanent holes).
	if f.Receiver.Delivered() < int64(f.Conn.SndUna()) {
		t.Fatalf("delivered %d < acked %d", f.Receiver.Delivered(), f.Conn.SndUna())
	}
	if f.Conn.SndUna() == 0 {
		t.Fatal("nothing acknowledged")
	}
}

// TestInvariantsWithTSO exercises the accounting with multi-segment wire
// packets.
func TestInvariantsWithTSO(t *testing.T) {
	sim := netsim.New(4)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	link := netsim.LinkConfig{
		RateBps:    1e9,
		Delay:      2 * time.Millisecond,
		QueueBytes: 500000,
		LossProb:   0.02,
	}
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: link}, fwd, rev)
	f := tcp.NewFlow(sim, 1, path, fwd, rev, nativecc.NewCubic(),
		tcp.Options{TSOSegs: 16, AckEvery: 2, MinRTO: 50 * time.Millisecond})
	f.Conn.Start()
	for ms := 100; ms <= 3000; ms += 100 {
		sim.Run(time.Duration(ms) * time.Millisecond)
		if err := f.Conn.CheckInvariants(); err != nil {
			t.Fatalf("t=%dms: %v", ms, err)
		}
	}
	if f.Receiver.Delivered() == 0 {
		t.Fatal("no progress with TSO")
	}
}
