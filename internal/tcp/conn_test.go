package tcp_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/nativecc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// testbed wires one or more flows over a shared bottleneck dumbbell.
type testbed struct {
	sim   *netsim.Sim
	path  *netsim.Path
	fwd   *netsim.Demux
	rev   *netsim.Demux
	flows []*tcp.Flow
}

func newTestbed(seed int64, link netsim.LinkConfig) *testbed {
	sim := netsim.New(seed)
	fwd := netsim.NewDemux()
	rev := netsim.NewDemux()
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: link}, fwd, rev)
	return &testbed{sim: sim, path: path, fwd: fwd, rev: rev}
}

func (tb *testbed) addFlow(id netsim.FlowID, cc tcp.CongestionControl, opts tcp.Options) *tcp.Flow {
	f := tcp.NewFlow(tb.sim, id, tb.path, tb.fwd, tb.rev, cc, opts)
	tb.flows = append(tb.flows, f)
	return f
}

// fixedCC holds cwnd constant: pure datapath mechanics under test.
type fixedCC struct {
	cwnd int
	rate float64

	acks    int
	events  []tcp.CongEvent
	samples []tcp.AckSample
}

func (f *fixedCC) Name() string { return "fixed" }
func (f *fixedCC) Init(c *tcp.Conn) {
	if f.cwnd > 0 {
		c.SetCwnd(f.cwnd)
	}
	if f.rate > 0 {
		c.SetPacingRate(f.rate)
	}
}
func (f *fixedCC) OnAck(c *tcp.Conn, s tcp.AckSample) {
	f.acks++
	if len(f.samples) < 4096 {
		f.samples = append(f.samples, s)
	}
}
func (f *fixedCC) OnCongestion(c *tcp.Conn, ev tcp.CongEvent, lost int) {
	f.events = append(f.events, ev)
}
func (f *fixedCC) Close(c *tcp.Conn) {}

// link8mbps is a small, fast-to-simulate configuration: 8 Mbit/s, 10 ms RTT.
func link8mbps() netsim.LinkConfig {
	return netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 64 * 1500}
}

func TestBulkTransferDelivers(t *testing.T) {
	tb := newTestbed(1, link8mbps())
	cc := &fixedCC{cwnd: 20 * 1448}
	f := tb.addFlow(1, cc, tcp.Options{})
	f.Conn.Start()
	tb.sim.Run(2 * time.Second)

	if f.Receiver.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
	if f.Conn.Stats().BytesAcked == 0 {
		t.Fatal("nothing acked")
	}
	// Delivered and acked must be consistent (acks lag by <= 1 RTT).
	if f.Conn.Stats().BytesAcked > f.Receiver.Delivered() {
		t.Fatalf("acked %d > delivered %d", f.Conn.Stats().BytesAcked, f.Receiver.Delivered())
	}
	if cc.acks == 0 {
		t.Fatal("no OnAck callbacks")
	}
}

func TestCwndLimitsInflight(t *testing.T) {
	tb := newTestbed(1, link8mbps())
	cwnd := 10 * 1448
	cc := &fixedCC{cwnd: cwnd}
	f := tb.addFlow(1, cc, tcp.Options{})
	f.Conn.Start()
	// Check inflight at several points during the run.
	for ms := 50; ms <= 1000; ms += 50 {
		tb.sim.Run(time.Duration(ms) * time.Millisecond)
		if got := f.Conn.InFlight(); got > cwnd {
			t.Fatalf("t=%dms: inflight %d > cwnd %d", ms, got, cwnd)
		}
	}
}

func TestThroughputMatchesCwndOverRTT(t *testing.T) {
	// With a fixed cwnd well below BDP, throughput ≈ cwnd/RTT.
	link := netsim.LinkConfig{RateBps: 100e6, Delay: 10 * time.Millisecond, QueueBytes: 1 << 20}
	tb := newTestbed(1, link)
	cwnd := 10 * 1448
	f := tb.addFlow(1, &fixedCC{cwnd: cwnd}, tcp.Options{})
	f.Conn.Start()
	dur := 5 * time.Second
	tb.sim.Run(dur)
	gotRate := float64(f.Receiver.Delivered()) / dur.Seconds()
	rtt := 20*time.Millisecond + time.Duration(float64((1448+40)*8)/link.RateBps*float64(time.Second))
	wantRate := float64(cwnd) / rtt.Seconds()
	if gotRate < wantRate*0.9 || gotRate > wantRate*1.1 {
		t.Fatalf("throughput %.0f B/s, want ~%.0f B/s", gotRate, wantRate)
	}
}

func TestPacingSpacesPackets(t *testing.T) {
	// Paced at 100 KB/s with a huge cwnd, throughput must track the pacing
	// rate, not the window.
	link := netsim.LinkConfig{RateBps: 1e9, Delay: time.Millisecond, QueueBytes: 1 << 24}
	tb := newTestbed(1, link)
	rate := 100e3 // bytes/sec
	f := tb.addFlow(1, &fixedCC{cwnd: 1 << 24, rate: rate}, tcp.Options{})
	f.Conn.Start()
	dur := 5 * time.Second
	tb.sim.Run(dur)
	got := float64(f.Receiver.Delivered()) / dur.Seconds()
	if got < rate*0.85 || got > rate*1.15 {
		t.Fatalf("paced throughput %.0f B/s, want ~%.0f", got, rate)
	}
}

func TestRTTEstimation(t *testing.T) {
	tb := newTestbed(1, link8mbps())
	f := tb.addFlow(1, &fixedCC{cwnd: 4 * 1448}, tcp.Options{})
	f.Conn.Start()
	tb.sim.Run(2 * time.Second)
	// Propagation RTT is 10 ms; with a small window the queue stays short,
	// so SRTT should sit a little above 10 ms.
	srtt := f.Conn.SRTT()
	if srtt < 10*time.Millisecond || srtt > 16*time.Millisecond {
		t.Fatalf("srtt=%v, want ~10-16ms", srtt)
	}
	if f.Conn.MinRTT() < 10*time.Millisecond || f.Conn.MinRTT() > 13*time.Millisecond {
		t.Fatalf("minRtt=%v", f.Conn.MinRTT())
	}
	if f.Conn.Stats().RTTSamples == 0 {
		t.Fatal("no RTT samples")
	}
}

func TestFastRetransmitOnLoss(t *testing.T) {
	// A tiny buffer with a large fixed window forces tail drops; the sender
	// must detect them via dup ACKs and repair via fast retransmit, and the
	// receiver must end up with a contiguous stream.
	link := netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 8 * 1500}
	tb := newTestbed(1, link)
	cc := &fixedCC{cwnd: 40 * 1448}
	f := tb.addFlow(1, cc, tcp.Options{})
	f.Conn.Start()
	tb.sim.Run(5 * time.Second)

	st := f.Conn.Stats()
	if st.FastRetx == 0 {
		t.Fatal("no fast retransmits despite forced drops")
	}
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions")
	}
	sawDupAck := false
	for _, ev := range cc.events {
		if ev == tcp.EventDupAck {
			sawDupAck = true
		}
	}
	if !sawDupAck {
		t.Fatal("congestion control never notified of dup-ACK loss")
	}
	// Reliability: every byte acked was delivered in order.
	if f.Receiver.Delivered() < st.BytesAcked {
		t.Fatalf("delivered %d < acked %d", f.Receiver.Delivered(), st.BytesAcked)
	}
}

func TestTimeoutRecovery(t *testing.T) {
	// Loss probability 1 between t=1s and t=1.2s cannot be configured
	// directly; instead use a very lossy link so some RTOs occur with a
	// window too small for 3 dup ACKs.
	link := netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20, LossProb: 0.4}
	tb := newTestbed(7, link)
	cc := &fixedCC{cwnd: 2 * 1448}
	f := tb.addFlow(1, cc, tcp.Options{MinRTO: 50 * time.Millisecond})
	f.Conn.Start()
	tb.sim.Run(10 * time.Second)

	if f.Conn.Stats().Timeouts == 0 {
		t.Fatal("no timeouts on a 40%-loss link with a 2-segment window")
	}
	sawTimeout := false
	for _, ev := range cc.events {
		if ev == tcp.EventTimeout {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatal("congestion control never notified of timeout")
	}
	// Despite heavy loss, the stream keeps making progress.
	if f.Receiver.Delivered() < 30*1448 {
		t.Fatalf("delivered only %d bytes", f.Receiver.Delivered())
	}
}

func TestECNEcho(t *testing.T) {
	link := netsim.LinkConfig{
		RateBps: 8e6, Delay: 5 * time.Millisecond,
		QueueBytes: 1 << 20, ECNThresholdBytes: 5 * 1500,
	}
	tb := newTestbed(1, link)
	cc := &fixedCC{cwnd: 40 * 1448}
	f := tb.addFlow(1, cc, tcp.Options{ECN: true})
	f.Conn.Start()
	tb.sim.Run(2 * time.Second)
	if f.Conn.Stats().ECNEchoes == 0 {
		t.Fatal("no ECN echoes despite standing queue above threshold")
	}
	sawECN := false
	for _, ev := range cc.events {
		if ev == tcp.EventECN {
			sawECN = true
		}
	}
	if !sawECN {
		t.Fatal("congestion control never saw EventECN")
	}
	ecnSample := false
	for _, s := range cc.samples {
		if s.ECNEcho {
			ecnSample = true
		}
	}
	if !ecnSample {
		t.Fatal("no AckSample carried ECNEcho")
	}
}

func TestDeliveryRateSample(t *testing.T) {
	// On an uncongested 8 Mbit/s link saturated by a big window, the
	// delivery-rate samples should approach the link rate (1e6 B/s wire,
	// minus header overhead ≈ 0.973e6 payload B/s).
	tb := newTestbed(1, link8mbps())
	cc := &fixedCC{cwnd: 60 * 1448}
	f := tb.addFlow(1, cc, tcp.Options{})
	f.Conn.Start()
	tb.sim.Run(3 * time.Second)
	var last tcp.AckSample
	for _, s := range cc.samples {
		if s.DeliveryRate > 0 {
			last = s
		}
	}
	if last.DeliveryRate < 0.8e6 || last.DeliveryRate > 1.1e6 {
		t.Fatalf("delivery rate %.0f B/s, want ~0.97e6", last.DeliveryRate)
	}
	if last.SndRate <= 0 {
		t.Fatal("no sending-rate sample")
	}
}

func TestKarnRTTExclusion(t *testing.T) {
	// Retransmitted segments must not contribute RTT samples.
	link := netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20, LossProb: 0.2}
	tb := newTestbed(3, link)
	cc := &fixedCC{cwnd: 20 * 1448}
	f := tb.addFlow(1, cc, tcp.Options{MinRTO: 50 * time.Millisecond})
	f.Conn.Start()
	tb.sim.Run(3 * time.Second)
	// All valid samples must be plausible (>= propagation RTT); an echo
	// from a retransmission would yield a wildly wrong (tiny or huge) RTT.
	for _, s := range cc.samples {
		if s.RTT != 0 && s.RTT < 10*time.Millisecond {
			t.Fatalf("implausible RTT sample %v (Karn violation)", s.RTT)
		}
	}
}

func TestTSOBatchesWirePackets(t *testing.T) {
	tb := newTestbed(1, link8mbps())
	cc := &fixedCC{cwnd: 64 * 1448}
	f := tb.addFlow(1, cc, tcp.Options{TSOSegs: 8})
	f.Conn.Start()
	tb.sim.Run(time.Second)
	st := f.Conn.Stats()
	if st.PktsSent == 0 {
		t.Fatal("nothing sent")
	}
	ratio := float64(st.SegsSent) / float64(st.PktsSent)
	if ratio < 2 {
		t.Fatalf("TSO ratio %.1f, want >= 2 (segs=%d pkts=%d)", ratio, st.SegsSent, st.PktsSent)
	}
	if f.Receiver.Stats().SegsRcvd < f.Receiver.Stats().PktsRcvd {
		t.Fatal("receiver segment accounting inconsistent")
	}
}

func TestDelayedAcksReduceAckCount(t *testing.T) {
	run := func(ackEvery int) int {
		tb := newTestbed(1, link8mbps())
		f := tb.addFlow(1, &fixedCC{cwnd: 20 * 1448}, tcp.Options{AckEvery: ackEvery})
		f.Conn.Start()
		tb.sim.Run(time.Second)
		return f.Receiver.Stats().AcksSent
	}
	perPkt := run(1)
	delayed := run(2)
	if delayed >= perPkt {
		t.Fatalf("delayed acks (%d) not fewer than per-packet acks (%d)", delayed, perPkt)
	}
}

func TestSetCwndFloorsAtOneMSS(t *testing.T) {
	tb := newTestbed(1, link8mbps())
	f := tb.addFlow(1, &fixedCC{cwnd: 10 * 1448}, tcp.Options{})
	f.Conn.Start()
	f.Conn.SetCwnd(0)
	if f.Conn.Cwnd() != 1448 {
		t.Fatalf("cwnd=%d, want one MSS", f.Conn.Cwnd())
	}
	tb.sim.Run(500 * time.Millisecond)
	if f.Receiver.Delivered() == 0 {
		t.Fatal("flow stalled at cwnd floor")
	}
}

func TestStopHaltsTransmission(t *testing.T) {
	tb := newTestbed(1, link8mbps())
	f := tb.addFlow(1, &fixedCC{cwnd: 10 * 1448}, tcp.Options{})
	f.Conn.Start()
	tb.sim.Run(500 * time.Millisecond)
	f.Conn.Stop()
	sent := f.Conn.Stats().PktsSent
	tb.sim.Run(time.Second)
	if got := f.Conn.Stats().PktsSent; got != sent {
		t.Fatalf("sent %d packets after Stop", got-sent)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	tb := newTestbed(1, link8mbps())
	f1 := tb.addFlow(1, nativecc.NewRenoCC(), tcp.Options{})
	f2 := tb.addFlow(2, nativecc.NewRenoCC(), tcp.Options{})
	f1.Conn.Start()
	f2.Conn.Start()
	tb.sim.Run(20 * time.Second)
	d1 := float64(f1.Receiver.Delivered())
	d2 := float64(f2.Receiver.Delivered())
	if d1 == 0 || d2 == 0 {
		t.Fatal("a flow starved completely")
	}
	// Jain fairness across the two flows should be reasonable.
	fairness := (d1 + d2) * (d1 + d2) / (2 * (d1*d1 + d2*d2))
	if fairness < 0.8 {
		t.Fatalf("fairness=%.2f (d1=%.0f d2=%.0f)", fairness, d1, d2)
	}
	// Combined they should utilize most of the link.
	util := tb.path.Forward.Utilization(20 * time.Second)
	if util < 0.7 {
		t.Fatalf("utilization=%.2f", util)
	}
}

func TestRenoSawtooth(t *testing.T) {
	tb := newTestbed(1, netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 12500}) // 1 BDP buffer
	f := tb.addFlow(1, nativecc.NewRenoCC(), tcp.Options{})
	f.Conn.Start()
	// Sample cwnd over time; expect growth and at least one halving.
	var cwnds []int
	for ms := 0; ms < 30000; ms += 100 {
		tb.sim.Run(time.Duration(ms) * time.Millisecond)
		cwnds = append(cwnds, f.Conn.Cwnd())
	}
	drops := 0
	for i := 1; i < len(cwnds); i++ {
		if cwnds[i] < cwnds[i-1]*2/3 {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no multiplicative decreases observed in 30s")
	}
	util := tb.path.Forward.Utilization(30 * time.Second)
	if util < 0.7 {
		t.Fatalf("Reno utilization=%.2f, want >= 0.7", util)
	}
}

func TestCubicUtilization(t *testing.T) {
	// Figure 3's configuration scaled down: 48 Mbit/s, 10 ms RTT, 1 BDP.
	bdp := int(48e6 / 8 * 0.010)
	tb := newTestbed(1, netsim.LinkConfig{RateBps: 48e6, Delay: 5 * time.Millisecond, QueueBytes: bdp})
	f := tb.addFlow(1, nativecc.NewCubic(), tcp.Options{})
	f.Conn.Start()
	tb.sim.Run(30 * time.Second)
	util := tb.path.Forward.Utilization(30 * time.Second)
	if util < 0.85 {
		t.Fatalf("Cubic utilization=%.2f, want >= 0.85", util)
	}
}

func TestVegasKeepsQueueShort(t *testing.T) {
	link := netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20}
	tb := newTestbed(1, link)
	f := tb.addFlow(1, nativecc.NewVegas(), tcp.Options{})
	f.Conn.Start()
	tb.sim.Run(20 * time.Second)
	util := tb.path.Forward.Utilization(20 * time.Second)
	if util < 0.7 {
		t.Fatalf("Vegas utilization=%.2f", util)
	}
	// Vegas targets 2-4 queued packets; SRTT should stay near propagation.
	if srtt := f.Conn.SRTT(); srtt > 25*time.Millisecond {
		t.Fatalf("Vegas srtt=%v, queue not kept short", srtt)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, tcp.ConnStats) {
		tb := newTestbed(42, netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 8 * 1500, LossProb: 0.01})
		f := tb.addFlow(1, nativecc.NewCubic(), tcp.Options{})
		f.Conn.Start()
		tb.sim.Run(5 * time.Second)
		return f.Receiver.Delivered(), f.Conn.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("runs diverged: %d vs %d, %+v vs %+v", d1, d2, s1, s2)
	}
}
