package tcp

import "fmt"

// CheckInvariants recomputes the sender's bookkeeping from first principles
// and returns an error if the incremental accounting has drifted. It is a
// verification aid for tests and debugging; it never mutates state.
func (c *Conn) CheckInvariants() error {
	pipe := 0
	lastEnd := c.sndUna
	for i := range c.segs {
		seg := &c.segs[i]
		if seg.seq < lastEnd {
			return fmt.Errorf("segment %d overlaps previous (seq=%d, lastEnd=%d)", i, seg.seq, lastEnd)
		}
		if seg.seq != lastEnd {
			return fmt.Errorf("segment %d leaves a gap (seq=%d, want %d)", i, seg.seq, lastEnd)
		}
		lastEnd = seg.seq + uint64(seg.length)
		if seg.lost && seg.sacked {
			return fmt.Errorf("segment %d both lost and sacked", i)
		}
		if !seg.lost && !seg.sacked {
			pipe += seg.length
		}
	}
	if lastEnd != c.sndNxt {
		return fmt.Errorf("segments end at %d, sndNxt=%d", lastEnd, c.sndNxt)
	}
	if pipe != c.pipe {
		return fmt.Errorf("pipe accounting drifted: incremental=%d recomputed=%d", c.pipe, pipe)
	}
	if c.pipe < 0 {
		return fmt.Errorf("negative pipe %d", c.pipe)
	}
	if c.cwnd < c.opts.MSS {
		return fmt.Errorf("cwnd %d below one MSS", c.cwnd)
	}
	if c.sndUna > c.sndNxt {
		return fmt.Errorf("sndUna %d beyond sndNxt %d", c.sndUna, c.sndNxt)
	}
	return nil
}

// SndUna exposes the cumulative-ack point for reliability tests.
func (c *Conn) SndUna() uint64 { return c.sndUna }
