package tcp

import (
	"time"

	"github.com/ccp-repro/ccp/internal/netsim"
)

// Receiver is the receiving half of a simulated flow: it delivers in-order
// bytes, buffers out-of-order arrivals as SACK ranges, and generates
// cumulative ACKs that echo timestamps, ECN marks, SACK blocks, and
// router-stamped header feedback.
type Receiver struct {
	sim  *netsim.Sim
	flow netsim.FlowID
	opts Options
	out  *netsim.Link

	rcvNxt uint64
	ooo    []sackRange // sorted by start, disjoint, above rcvNxt
	// lastChanged indexes the most recently created/extended range in ooo;
	// it is advertised first, as TCP SACK requires, so the sender learns
	// about every delivery even when ranges outnumber the block limit.
	lastChanged int
	sinceAck    int // segments (not wire packets) since the last ACK
	ackTimer    netsim.Timer
	// pending echo for a timer-driven delayed ACK
	pendingEcho     time.Duration
	pendingEchoRetx bool

	ceSeen  bool // CE observed since the last ACK (echoed once, DCTCP-style)
	hdrRate float64

	stats ReceiverStats
}

// sackRange is a received byte range [Start, End).
type sackRange struct {
	Start, End uint64
}

// NewReceiver creates the receiving endpoint for flow id, sending ACKs into
// out (the reverse path).
func NewReceiver(sim *netsim.Sim, id netsim.FlowID, out *netsim.Link, opts Options) *Receiver {
	return &Receiver{
		sim:  sim,
		flow: id,
		opts: opts.withDefaults(),
		out:  out,
	}
}

// Stats returns a snapshot of the receiver counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Delivered returns the in-order bytes delivered so far.
func (r *Receiver) Delivered() int64 { return r.stats.BytesDelivered }

// Handle implements netsim.Handler for the forward (data) path.
func (r *Receiver) Handle(p *netsim.Packet) {
	if p.IsAck {
		return
	}
	r.stats.PktsRcvd++
	segs := p.Segs
	if segs <= 0 {
		segs = 1
	}
	r.stats.SegsRcvd += segs
	if p.Marked {
		r.stats.CEMarks++
		r.ceSeen = true
	}
	if p.HdrRate > 0 {
		r.hdrRate = p.HdrRate
	}

	ackNow := false
	end := p.Seq + uint64(p.Len)
	switch {
	case p.Seq == r.rcvNxt:
		r.advance(uint64(p.Len))
		// Consume ranges now contiguous with rcvNxt.
		for len(r.ooo) > 0 && r.ooo[0].Start <= r.rcvNxt {
			if r.ooo[0].End > r.rcvNxt {
				r.advance(r.ooo[0].End - r.rcvNxt)
			}
			r.ooo = r.ooo[1:]
			if r.lastChanged > 0 {
				r.lastChanged--
			}
		}
	case end <= r.rcvNxt:
		r.stats.Duplicates++
		ackNow = true
	default:
		if r.insertRange(p.Seq, end) {
			r.stats.OutOfOrder++
		} else {
			r.stats.Duplicates++
		}
		ackNow = true // out-of-order arrivals ACK immediately (dup ACKs)
	}

	r.sinceAck += segs
	if ackNow || r.sinceAck >= r.opts.AckEvery {
		r.sendAck(p.SentAt, p.IsRetx)
		return
	}
	// Delayed ACK: never hold an acknowledgment longer than the timer
	// (RFC 1122's 500 ms bound; Linux uses ~40 ms).
	r.pendingEcho = p.SentAt
	r.pendingEchoRetx = p.IsRetx
	if r.ackTimer == nil {
		r.ackTimer = r.sim.Schedule(delayedAckTimeout, func() {
			r.ackTimer = nil
			if r.sinceAck > 0 {
				r.sendAck(r.pendingEcho, r.pendingEchoRetx)
			}
		})
	}
}

// delayedAckTimeout bounds how long a delayed ACK may be withheld.
const delayedAckTimeout = 40 * time.Millisecond

// insertRange merges [s, e) into the out-of-order set and reports whether
// any new bytes were added.
func (r *Receiver) insertRange(s, e uint64) bool {
	if s < r.rcvNxt {
		s = r.rcvNxt
	}
	if e <= s {
		return false
	}
	// Find insertion window: ranges overlapping or adjacent to [s, e).
	i := 0
	for i < len(r.ooo) && r.ooo[i].End < s {
		i++
	}
	j := i
	newBytes := e - s
	start, end := s, e
	for j < len(r.ooo) && r.ooo[j].Start <= e {
		old := r.ooo[j]
		newBytes -= overlap(s, e, old.Start, old.End)
		if old.Start < start {
			start = old.Start
		}
		if old.End > end {
			end = old.End
		}
		j++
	}
	if newBytes == 0 && j > i {
		// Entirely covered by existing ranges.
		r.lastChanged = i
		return false
	}
	merged := sackRange{Start: start, End: end}
	r.ooo = append(r.ooo[:i], append([]sackRange{merged}, r.ooo[j:]...)...)
	r.lastChanged = i
	return newBytes > 0
}

func overlap(s1, e1, s2, e2 uint64) uint64 {
	s := s1
	if s2 > s {
		s = s2
	}
	e := e1
	if e2 < e {
		e = e2
	}
	if e <= s {
		return 0
	}
	return e - s
}

func (r *Receiver) advance(n uint64) {
	r.rcvNxt += n
	r.stats.BytesDelivered += int64(n)
}

func (r *Receiver) sendAck(echo time.Duration, echoRetx bool) {
	r.sinceAck = 0
	// A pending delayed-ACK timer is left to fire and no-op (sinceAck is
	// zero by then) rather than being cancelled: stopping and recreating a
	// timer per ACK would churn the event queue at line rate.
	r.stats.AcksSent++
	var sacks [][2]uint64
	if n := len(r.ooo); n > 0 {
		// Most recently changed block first, then subsequent ranges in
		// sequence order, wrapping — every range is eventually advertised.
		first := r.lastChanged
		if first >= n {
			first = 0
		}
		for k := 0; k < n && len(sacks) < netsim.MaxSackRanges; k++ {
			rg := r.ooo[(first+k)%n]
			sacks = append(sacks, [2]uint64{rg.Start, rg.End})
		}
	}
	ack := &netsim.Packet{
		Flow:      r.flow,
		IsAck:     true,
		CumAck:    r.rcvNxt,
		EchoTS:    echo,
		EchoValid: true,
		EchoRetx:  echoRetx,
		ECNEcho:   r.ceSeen,
		Sacks:     sacks,
		HdrRate:   r.hdrRate,
	}
	r.ceSeen = false
	r.out.Enqueue(ack)
}

// Flow wires a complete single flow over a path: sender, receiver, and the
// demux registrations on both directions.
type Flow struct {
	Conn     *Conn
	Receiver *Receiver
}

// NewFlow creates and registers a flow's endpoints over path: data flows
// through path.Forward to the receiver (via fwdDemux), ACKs through
// path.Reverse back to the sender (via revDemux).
func NewFlow(sim *netsim.Sim, id netsim.FlowID, path *netsim.Path, fwdDemux, revDemux *netsim.Demux, cc CongestionControl, opts Options) *Flow {
	conn := NewConn(sim, id, path.Forward, cc, opts)
	recv := NewReceiver(sim, id, path.Reverse, opts)
	fwdDemux.Register(id, recv)
	revDemux.Register(id, conn)
	return &Flow{Conn: conn, Receiver: recv}
}
