// Package tcp implements the simulated datapath transport: a TCP-like
// reliable sender and receiver running on the netsim event loop. It stands
// in for the paper's Linux kernel datapath. The sender enforces a congestion
// window and pacing rate, detects loss (triple duplicate ACK, RTO), samples
// per-ACK RTT and delivery/sending rates (Linux rate-sample style), and
// exposes the pluggable congestion-control callback surface that both the
// native in-datapath algorithms (internal/nativecc) and the CCP datapath
// runtime (internal/datapath) implement.
package tcp

import (
	"time"

	"github.com/ccp-repro/ccp/internal/netsim"
)

// CongEvent classifies congestion signals the datapath raises synchronously.
type CongEvent uint8

// Congestion events.
const (
	EventDupAck  CongEvent = iota + 1 // triple duplicate ACK; fast retransmit issued
	EventTimeout                      // retransmission timeout fired
	EventECN                          // ECN echo seen on an ACK
)

func (e CongEvent) String() string {
	switch e {
	case EventDupAck:
		return "dupack"
	case EventTimeout:
		return "timeout"
	case EventECN:
		return "ecn"
	}
	return "event(?)"
}

// AckSample carries the per-ACK measurements (Table 1's primitives) the
// datapath computes for its congestion-control module.
type AckSample struct {
	// RTT is the RTT sample from the echoed timestamp, 0 if the echo came
	// from a retransmission (Karn's rule).
	RTT time.Duration
	// AckedBytes is the number of bytes newly cumulatively acknowledged.
	AckedBytes int
	// SackedBytes is the number of bytes newly selectively acknowledged.
	SackedBytes int
	// LostBytes is the number of bytes newly declared lost by this event.
	LostBytes int
	// ECNEcho reports a CE echo on this ACK.
	ECNEcho bool
	// SndRate is the measured sending rate (bytes/sec) over the lifetime of
	// the just-acked segment.
	SndRate float64
	// DeliveryRate is the measured delivery rate (bytes/sec) over the
	// lifetime of the just-acked segment.
	DeliveryRate float64
	// InFlight is the number of unacknowledged bytes after this ACK.
	InFlight int
	// HdrRate is the router-stamped per-flow rate echoed by the receiver
	// (XCP-style), 0 if absent.
	HdrRate float64
	// Now is the datapath clock at ACK processing time.
	Now time.Duration
}

// CongestionControl is the datapath's pluggable congestion-avoidance hook,
// modelled on Linux's pluggable TCP (§4). Implementations adjust the window
// and rate through the Conn handle; the datapath owns all transmission and
// loss-recovery mechanics.
type CongestionControl interface {
	// Name identifies the algorithm.
	Name() string
	// Init is called once when the connection starts.
	Init(c *Conn)
	// OnAck is called for every processed acknowledgment.
	OnAck(c *Conn, s AckSample)
	// OnCongestion is called on loss or ECN events, with the bytes newly
	// declared lost (0 for ECN).
	OnCongestion(c *Conn, ev CongEvent, lostBytes int)
	// Close is called when the connection stops.
	Close(c *Conn)
}

// Options configures a flow's endpoints.
type Options struct {
	// MSS is the maximum segment size in payload bytes (default 1448).
	MSS int
	// InitCwndSegs is the initial window in segments (default 10, IW10).
	InitCwndSegs int
	// ECN enables ECN-capable transport on data packets.
	ECN bool
	// AckEvery generates one ACK per this many data packets (default 1;
	// 2 models delayed ACKs). Out-of-order arrivals always ACK immediately.
	AckEvery int
	// TSOSegs batches up to this many segments into one wire packet
	// (default 1 = no segmentation offload). Used by the Figure 5 offload
	// experiments.
	TSOSegs int
	// MinRTO floors the retransmission timeout (default 200ms).
	MinRTO time.Duration
	// MaxInflightSegs caps the sender's segment buffer (default 1<<20).
	MaxInflightSegs int
}

func (o Options) withDefaults() Options {
	if o.MSS <= 0 {
		o.MSS = 1448
	}
	if o.InitCwndSegs <= 0 {
		o.InitCwndSegs = 10
	}
	if o.AckEvery <= 0 {
		o.AckEvery = 1
	}
	if o.TSOSegs <= 0 {
		o.TSOSegs = 1
	}
	if o.MinRTO <= 0 {
		o.MinRTO = 200 * time.Millisecond
	}
	if o.MaxInflightSegs <= 0 {
		o.MaxInflightSegs = 1 << 20
	}
	return o
}

// ConnStats aggregates sender-side counters.
type ConnStats struct {
	SegsSent     int   // data segments sent (including retransmissions)
	PktsSent     int   // wire packets sent (differs from SegsSent under TSO)
	Retransmits  int   // segments retransmitted
	FastRetx     int   // fast-retransmit events (3 dup ACKs)
	Timeouts     int   // RTO events
	AcksRcvd     int   // ACK packets processed
	BytesAcked   int64 // cumulative bytes acknowledged
	ECNEchoes    int   // ACKs carrying ECN echo
	RTTSamples   int   // valid RTT samples taken
	CwndSetCalls int   // congestion-control cwnd updates
	RateSetCalls int   // congestion-control rate updates
}

// ReceiverStats aggregates receiver-side counters.
type ReceiverStats struct {
	PktsRcvd       int // data packets received
	SegsRcvd       int // segments received (≥ PktsRcvd under TSO)
	AcksSent       int
	BytesDelivered int64 // in-order bytes delivered to the application
	OutOfOrder     int   // packets buffered out of order
	Duplicates     int   // packets at or below rcvNxt
	CEMarks        int   // CE-marked packets seen
}

// clock is the shared simulator handle both endpoints use.
type clock interface {
	Now() time.Duration
	Schedule(d time.Duration, fn func()) netsim.Timer
}
