package lang

import (
	"strings"
	"testing"
)

// bbrProgram is the paper's §2.1 BBR pulse program.
func bbrProgram(t *testing.T) *Program {
	t.Helper()
	p, err := NewProgram().
		MeasureEWMA().
		Rate(Mul(C(1.25), V("rate"))).WaitRtts(1).Report().
		Rate(Mul(C(0.75), V("rate"))).WaitRtts(1).Report().
		Rate(V("rate")).WaitRtts(6).Report().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderBBRProgram(t *testing.T) {
	p := bbrProgram(t)
	if len(p.Instrs) != 9 {
		t.Fatalf("instrs=%d, want 9", len(p.Instrs))
	}
	if _, ok := p.Instrs[0].(SetRate); !ok {
		t.Fatalf("first instr %T", p.Instrs[0])
	}
	if _, ok := p.Instrs[2].(Report); !ok {
		t.Fatalf("third instr %T", p.Instrs[2])
	}
}

func TestProgramString(t *testing.T) {
	p := bbrProgram(t)
	s := p.String()
	if !strings.Contains(s, "Rate((* 1.25 rate))") || !strings.Contains(s, "WaitRtts(6)") {
		t.Fatalf("String()=%q", s)
	}
}

func TestProgramValidateRejectsUnknownVar(t *testing.T) {
	_, err := NewProgram().Rate(V("warp_factor")).Build()
	if err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestProgramValidateFoldRegsVisible(t *testing.T) {
	f := &FoldSpec{
		Regs:    []RegDef{{Name: "acked_sum", Init: 0}},
		Updates: []Assign{{Dst: "acked_sum", E: Add(V("acked_sum"), V("pkt.acked"))}},
	}
	_, err := NewProgram().
		MeasureFold(f).
		Cwnd(Add(V("cwnd"), V("acked_sum"))).
		WaitRtts(1).Report().
		Build()
	if err != nil {
		t.Fatal(err)
	}
}

func TestProgramValidateVectorNeedsFields(t *testing.T) {
	_, err := NewProgram().MeasureVector().Report().Build()
	if err == nil {
		t.Fatal("empty vector spec accepted")
	}
}

func TestProgramValidateFoldNeedsSpec(t *testing.T) {
	p := &Program{Measure: MeasureSpec{Mode: MeasureFold}}
	if err := p.Validate(); err == nil {
		t.Fatal("fold mode without spec accepted")
	}
}

func TestProgramValidateBadField(t *testing.T) {
	p := &Program{Measure: MeasureSpec{Mode: MeasureVector, Fields: []Field{Field(200)}}}
	if err := p.Validate(); err == nil {
		t.Fatal("invalid field accepted")
	}
}

func TestProgramRegNames(t *testing.T) {
	p := bbrProgram(t)
	names := p.RegNames()
	if len(names) != len(EWMAReportNames()) {
		t.Fatalf("ewma names=%v", names)
	}
	pv, err := NewProgram().MeasureVector(FieldRTT, FieldAcked).Report().Build()
	if err != nil {
		t.Fatal(err)
	}
	names = pv.RegNames()
	if len(names) != 2 || names[0] != "pkt.rtt" || names[1] != "pkt.acked" {
		t.Fatalf("vector names=%v", names)
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	NewProgram().Rate(V("nope")).MustBuild()
}

func TestBuilderUrgentECN(t *testing.T) {
	p, err := NewProgram().UrgentECN().Cwnd(V("cwnd")).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !p.UrgentECN {
		t.Fatal("UrgentECN not set")
	}
}

func TestMeasureModeString(t *testing.T) {
	if MeasureEWMA.String() != "ewma" || MeasureFold.String() != "fold" || MeasureVector.String() != "vector" {
		t.Fatal("mode names wrong")
	}
}
