package lang

import (
	"math"
	"strings"
	"testing"
)

// opCount tallies the opcodes of a compiled register program.
func opCount(c *RegCode, op RegOp) int {
	n := 0
	for _, in := range c.Insts {
		if in.Op == op {
			n++
		}
	}
	return n
}

func compileExprReg(t *testing.T, e Expr, regs []string) *RegCode {
	t.Helper()
	code, err := CompileReg(e, StdResolver(regs), VarTableSize(len(regs)))
	if err != nil {
		t.Fatalf("CompileReg(%s): %v", e, err)
	}
	return code
}

// evalBoth evaluates e through both backends over the same table and
// requires bitwise agreement; it returns the shared value.
func evalBoth(t *testing.T, e Expr, regs []string, vars []float64) float64 {
	t.Helper()
	stack, err := Compile(e, StdResolver(regs))
	if err != nil {
		t.Fatalf("Compile(%s): %v", e, err)
	}
	reg := compileExprReg(t, e, regs)
	frame := make([]float64, reg.FrameLen)
	copy(frame, vars)
	sv := stack.Eval(vars, nil)
	rv := reg.Eval(frame)
	if math.Float64bits(sv) != math.Float64bits(rv) {
		t.Fatalf("backend mismatch for %s: stack=%v (%#x) register=%v (%#x)",
			e, sv, math.Float64bits(sv), rv, math.Float64bits(rv))
	}
	return sv
}

func stdVars(nregs int) []float64 {
	vars := make([]float64, VarTableSize(nregs))
	vars[PktFieldSlot(FieldRTT)] = 0.05
	vars[PktFieldSlot(FieldAcked)] = 2896
	vars[PktFieldSlot(FieldLost)] = 1448
	vars[FlowVarSlot(FlowCwnd)] = 14480
	vars[FlowVarSlot(FlowMSS)] = 1448
	vars[FlowVarSlot(FlowSRTT)] = 0.06
	return vars
}

func TestRegConstantFolding(t *testing.T) {
	// An all-constant tree folds to a single rConst materialization.
	e := Add(Mul(C(2), C(3)), Div(C(10), C(4)))
	code := compileExprReg(t, e, nil)
	if len(code.Insts) != 1 || code.Insts[0].Op != rConst {
		t.Fatalf("constant tree compiled to %d insts (want 1 rConst): %v", len(code.Insts), code.Insts)
	}
	if got := code.Eval(make([]float64, code.FrameLen)); got != 8.5 {
		t.Fatalf("folded value = %v, want 8.5", got)
	}
	// Division by constant zero folds to 0 even with an unknown dividend.
	z := compileExprReg(t, Div(V("pkt.rtt"), C(0)), nil)
	if len(z.Insts) != 1 || z.Insts[0].Op != rConst {
		t.Fatalf("x/0 compiled to %v, want folded constant", z.Insts)
	}
	// Constant-true condition keeps only the taken branch.
	sel := compileExprReg(t, Ite(Lt(C(1), C(2)), V("cwnd"), Div(V("cwnd"), V("pkt.rtt"))), nil)
	if opCount(sel, rDiv) != 0 && opCount(sel, rDivC) != 0 {
		t.Fatalf("dead else-branch survived constant-condition fold: %v", sel.Insts)
	}
}

func TestRegSuperinstructionSelection(t *testing.T) {
	cases := []struct {
		name string
		e    Expr
		op   RegOp
	}{
		{"var plus const", Add(V("cwnd"), C(1448)), rAddC},
		{"const plus var commutes", Add(C(1448), V("cwnd")), rAddC},
		{"const minus var", Sub(C(10), V("pkt.rtt")), rSubCR},
		{"const div var", Div(C(1), V("pkt.rtt")), rDivCR},
		{"const less-than flips", Lt(C(2), V("delta")), rGtC},
		{"min accumulate", Min(V("base_rtt"), V("pkt.rtt")), rMin},
		{"ewma", Add(Mul(C(0.875), V("s_rtt")), Mul(C(0.125), V("pkt.rtt"))), rEwma},
		{"select of comparison", Ite(Lt(V("pkt.rtt"), V("base_rtt")), V("pkt.rtt"), V("base_rtt")), rSelLt},
	}
	regs := []string{"base_rtt", "delta", "s_rtt"}
	for _, tc := range cases {
		code := compileExprReg(t, tc.e, regs)
		if opCount(code, tc.op) == 0 {
			t.Errorf("%s: expected %v in %v", tc.name, tc.op, code.Insts)
		}
		// And the fused form must agree with the reference interpreter.
		vars := stdVars(len(regs))
		vars[RegSlot(0)] = 0.04
		vars[RegSlot(1)] = 3
		vars[RegSlot(2)] = 0.055
		evalBoth(t, tc.e, regs, vars)
	}
}

func TestRegAndOrStrengthReduction(t *testing.T) {
	// x and <truthy const> normalizes to b2f(x != 0): one rNeC, no rAnd.
	code := compileExprReg(t, And(V("pkt.ecn"), C(7)), nil)
	if opCount(code, rAnd) != 0 || opCount(code, rNeC) != 1 {
		t.Fatalf("And(x, 7) compiled to %v, want a single nec", code.Insts)
	}
	// x and 0 == 0, x or <truthy> == 1: both fold to constants.
	for _, e := range []Expr{And(V("pkt.ecn"), C(0)), Or(V("pkt.ecn"), C(3))} {
		c := compileExprReg(t, e, nil)
		if len(c.Insts) != 1 || c.Insts[0].Op != rConst {
			t.Fatalf("%s compiled to %v, want folded constant", e, c.Insts)
		}
	}
	for _, e := range []Expr{
		And(V("pkt.ecn"), C(7)), Or(V("pkt.ecn"), C(0)),
		And(C(0), V("pkt.ecn")), Or(C(2), V("pkt.ecn")),
	} {
		vars := stdVars(0)
		vars[PktFieldSlot(FieldECN)] = 1
		evalBoth(t, e, nil, vars)
		vars2 := stdVars(0)
		evalBoth(t, e, nil, vars2)
	}
}

func TestRegCSEAcrossFoldUpdates(t *testing.T) {
	// Both updates share the subexpression (pkt.rtt - base_rtt); CSE must
	// compute it once even though the two updates are separate assignments.
	f := &FoldSpec{
		Regs: []RegDef{{Name: "base_rtt", Init: 1e9}, {Name: "a"}, {Name: "b"}},
		Updates: []Assign{
			{Dst: "a", E: Mul(Sub(V("pkt.rtt"), V("base_rtt")), C(2))},
			{Dst: "b", E: Add(Sub(V("pkt.rtt"), V("base_rtt")), V("b"))},
		},
	}
	code, err := compileFoldReg(f)
	if err != nil {
		t.Fatal(err)
	}
	if n := opCount(code, rSub); n != 1 {
		t.Fatalf("shared (pkt.rtt - base_rtt) compiled %d times, want 1: %v", n, code.Insts)
	}

	// Writing a register must invalidate values computed over its old
	// contents: here the second update reuses (pkt.rtt - base_rtt) but
	// base_rtt was just reassigned, so the subtraction must be recomputed.
	g := &FoldSpec{
		Regs: []RegDef{{Name: "base_rtt", Init: 1e9}, {Name: "a"}},
		Updates: []Assign{
			{Dst: "base_rtt", E: Sub(V("pkt.rtt"), V("base_rtt"))},
			{Dst: "a", E: Sub(V("pkt.rtt"), V("base_rtt"))},
		},
	}
	gcode, err := compileFoldReg(g)
	if err != nil {
		t.Fatal(err)
	}
	subs := 0
	for _, in := range gcode.Insts {
		if in.Op == rSub || in.Op == rMov {
			subs++
		}
	}
	if opCount(gcode, rSub) != 2 {
		t.Fatalf("stale CSE hit across register write: %v", gcode.Insts)
	}
	// And the numbers must match the stack backend exactly.
	for _, spec := range []*FoldSpec{f, g} {
		assertFoldsAgree(t, spec, 100, 77)
	}
}

func TestRegAccumulateRetargeting(t *testing.T) {
	// `base_rtt = min(base_rtt, pkt.rtt)` must be exactly one instruction
	// writing the register in place — the three-address accumulate fusion.
	f := &FoldSpec{
		Regs:    []RegDef{{Name: "base_rtt", Init: 1e9}},
		Updates: []Assign{{Dst: "base_rtt", E: Min(V("base_rtt"), V("pkt.rtt"))}},
	}
	code, err := compileFoldReg(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(code.Insts) != 1 || code.Insts[0].Op != rMin || int(code.Insts[0].Dst) != RegSlot(0) {
		t.Fatalf("min-accumulate compiled to %v, want one rMin into the register slot", code.Insts)
	}
	if code.FrameLen != code.NVars+1 {
		// One temp is allocated then retargeted away; it must not grow
		// beyond that.
		t.Fatalf("FrameLen %d for NVars %d, want at most one temp", code.FrameLen, code.NVars)
	}
}

// assertFoldsAgree steps the same fold through both backends over a
// deterministic pseudo-random packet stream and requires bit-identical
// register values after every packet.
func assertFoldsAgree(t *testing.T, f *FoldSpec, packets int, seed uint64) {
	t.Helper()
	cfS, err := CompileFoldBackend(f, BackendStack)
	if err != nil {
		t.Fatalf("stack compile: %v", err)
	}
	cfR, err := CompileFoldBackend(f, BackendRegister)
	if err != nil {
		t.Fatalf("register compile: %v", err)
	}
	nregs := len(f.Regs)
	vs := make([]float64, VarTableSize(nregs))
	vr := make([]float64, cfR.FrameLen())
	cfS.InitRegs(vs)
	cfR.InitRegs(vr)
	x := seed | 1
	next := func() float64 {
		// xorshift64: deterministic, seeds the packet fields with a mix of
		// ordinary values and specials.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		switch x % 16 {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		case 2:
			return math.Inf(-1)
		case 3:
			return 0
		default:
			return float64(x%100000) / 64
		}
	}
	for p := 0; p < packets; p++ {
		for fi := 0; fi < int(NumPktFields); fi++ {
			v := next()
			vs[fi] = v
			vr[fi] = v
		}
		cfS.Step(vs)
		cfR.Step(vr)
		for i := 0; i < nregs; i++ {
			a, b := vs[RegSlot(i)], vr[RegSlot(i)]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("packet %d register %q: stack=%v (%#x) register=%v (%#x)\nfold: %v",
					p, f.Regs[i].Name, a, math.Float64bits(a), b, math.Float64bits(b), f.Updates)
			}
		}
	}
}

func TestRegVegasFoldAgrees(t *testing.T) {
	assertFoldsAgree(t, vegasFold(), 500, 12345)
}

func TestRegZeroRegisterFold(t *testing.T) {
	// A fold with registers but no updates, and the degenerate case the
	// datapath can build: measure-fold programs always have ≥1 register,
	// but the compiler must not choke on an empty update list.
	f := &FoldSpec{Regs: []RegDef{{Name: "r", Init: 7}}}
	for _, backend := range []Backend{BackendStack, BackendRegister} {
		cf, err := CompileFoldBackend(f, backend)
		if err != nil {
			t.Fatal(err)
		}
		vars := make([]float64, cf.FrameLen())
		cf.InitRegs(vars)
		cf.Step(vars)
		if vars[RegSlot(0)] != 7 {
			t.Fatalf("backend %d: register changed without updates: %v", backend, vars[RegSlot(0)])
		}
	}
	// Truly zero registers: no state, Step is a no-op on both backends.
	empty := &FoldSpec{}
	assertFoldsAgree(t, empty, 10, 3)
}

func TestRegSequentialUpdateReads(t *testing.T) {
	// The paper's Vegas idiom: a later update reads a register written
	// earlier in the same Step. The register backend compiles the whole
	// body as one program and must preserve the sequential semantics.
	f := &FoldSpec{
		Regs: []RegDef{{Name: "base_rtt", Init: 1e9}, {Name: "in_q"}},
		Updates: []Assign{
			{Dst: "base_rtt", E: Min(V("base_rtt"), V("pkt.rtt"))},
			{Dst: "in_q", E: Div(Mul(Sub(V("pkt.rtt"), V("base_rtt")), V("cwnd")), Max(V("base_rtt"), C(1e-9)))},
		},
	}
	assertFoldsAgree(t, f, 300, 999)

	// Directed check: the second update must observe the minimum computed
	// by the first, not the pre-Step value.
	cf, err := CompileFold(f)
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, cf.FrameLen())
	cf.InitRegs(vars)
	vars[PktFieldSlot(FieldRTT)] = 0.2
	vars[FlowVarSlot(FlowCwnd)] = 1000
	cf.Step(vars)
	if got := vars[RegSlot(0)]; got != 0.2 {
		t.Fatalf("base_rtt = %v, want 0.2", got)
	}
	// in_q = (0.2 - 0.2)*1000 / max(0.2, 1e-9) = 0
	if got := vars[RegSlot(1)]; got != 0 {
		t.Fatalf("in_q = %v, want 0 (must read the just-updated base_rtt)", got)
	}
}

func TestRegNaNInfPacketFields(t *testing.T) {
	// NaN/Inf in packet fields must be squashed identically by both
	// backends, including through the fused EWMA (whose intermediate
	// products squash separately).
	f := &FoldSpec{
		Regs: []RegDef{{Name: "s", Init: 0.1}, {Name: "m", Init: 0}},
		Updates: []Assign{
			{Dst: "s", E: Add(Mul(C(0.875), V("s")), Mul(C(0.125), V("pkt.rtt")))},
			{Dst: "m", E: Max(V("m"), Mul(V("pkt.snd_rate"), V("pkt.rtt")))},
		},
	}
	assertFoldsAgree(t, f, 400, 4242)

	// Directed: an Inf intermediate squashes to 0 before the EWMA sum.
	cf, err := CompileFold(f)
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, cf.FrameLen())
	cf.InitRegs(vars)
	vars[PktFieldSlot(FieldRTT)] = math.Inf(1)
	cf.Step(vars)
	// coeff*init + sq(0.125*Inf): the Inf term squashes to 0 before the sum.
	coeff, init := 0.875, 0.1
	if got, want := vars[RegSlot(0)], coeff*init; got != want {
		t.Fatalf("EWMA over Inf field = %v, want %v", got, want)
	}
}

func TestRegSlotTableSizeMismatch(t *testing.T) {
	regs := []string{"r0", "r1"}
	e := Add(V("r1"), V("pkt.rtt"))
	stack, err := Compile(e, StdResolver(regs))
	if err != nil {
		t.Fatal(err)
	}
	reg := compileExprReg(t, e, regs)

	// A table missing the register slots: both backends read missing
	// variable slots as 0 instead of trapping.
	short := make([]float64, int(NumPktFields)) // no flow vars, no registers
	short[PktFieldSlot(FieldRTT)] = 0.25
	sv := stack.Eval(short, nil)
	rv := reg.Eval(short)
	if sv != 0.25 || rv != 0.25 {
		t.Fatalf("short-table eval: stack=%v register=%v, want 0.25", sv, rv)
	}

	// Undersized table through a fold Step: registers that fit are updated,
	// missing ones are dropped, and nothing panics.
	f := &FoldSpec{
		Regs:    []RegDef{{Name: "a"}},
		Updates: []Assign{{Dst: "a", E: V("pkt.rtt")}},
	}
	cf, err := CompileFold(f)
	if err != nil {
		t.Fatal(err)
	}
	tbl := make([]float64, VarTableSize(1)) // exact table, smaller than FrameLen
	tbl[PktFieldSlot(FieldRTT)] = 0.5
	cf.Step(tbl)
	if got := tbl[RegSlot(0)]; got != 0.5 {
		t.Fatalf("fallback Step register = %v, want 0.5", got)
	}
}

func TestRegVerifyRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		code RegCode
		want string
	}{
		{
			"operand outside frame",
			RegCode{Insts: []RInst{{Op: rAdd, Dst: 16, A: 50, B: 0}}, NVars: 15, FrameLen: 17},
			"outside frame",
		},
		{
			"temp read before write",
			RegCode{Insts: []RInst{{Op: rMov, Dst: 16, A: 15}}, NVars: 15, FrameLen: 17},
			"read before write",
		},
		{
			"const index outside pool",
			RegCode{Insts: []RInst{{Op: rConst, Dst: 15, A: 3}}, Consts: []float64{1}, NVars: 15, FrameLen: 16},
			"outside pool",
		},
		{
			"write to variable slot",
			RegCode{Insts: []RInst{{Op: rConst, Dst: 2, A: 0}}, Consts: []float64{1}, NVars: 15, FrameLen: 16},
			"not in the destination set",
		},
		{
			"divc by zero const",
			RegCode{Insts: []RInst{{Op: rDivC, Dst: 15, A: 0, B: 0}}, Consts: []float64{0}, NVars: 15, FrameLen: 16},
			"constant zero",
		},
	}
	for _, tc := range cases {
		err := tc.code.verify(nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: verify = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestStackCompileVerification(t *testing.T) {
	// Satellite: Compile now proves depth discipline instead of discarding
	// it. A well-formed expression passes; a corrupted stream is rejected
	// by verifyStack directly.
	code, err := Compile(Add(V("cwnd"), C(1)), StdResolver(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !code.verified {
		t.Fatal("compiled code not marked verified")
	}
	bad := &Code{Insts: []Inst{{opBin, uint16(OpAdd)}}, MaxStack: 2}
	if err := bad.verifyStack(); err == nil {
		t.Fatal("binary op over empty stack passed verification")
	}
	over := &Code{Insts: []Inst{{opConst, 5}}, Consts: []float64{1}, MaxStack: 1}
	if err := over.verifyStack(); err == nil {
		t.Fatal("const index outside pool passed verification")
	}
	two := &Code{Insts: []Inst{{opVar, 0}, {opVar, 1}}, MaxStack: 2}
	if err := two.verifyStack(); err == nil {
		t.Fatal("stream leaving two values passed verification")
	}
	// Hand-assembled (unverified) Code still evaluates defensively.
	if got := bad.Eval(nil, nil); got != 0 {
		t.Fatalf("unverified underflowing code = %v, want defensive 0", got)
	}
}

func TestRegCtrlExprMatchesStack(t *testing.T) {
	// The datapath compiles control expressions with CompileReg; spot-check
	// Table 2 shapes against the reference interpreter.
	exprs := []Expr{
		Mul(C(1.25), V("rate")),
		Add(V("cwnd"), V("mss")),
		Mul(C(0.5), V("cwnd")),
		Ite(Gt(V("pkt.lost"), C(0)), Mul(C(0.5), V("cwnd")), Add(V("cwnd"), V("mss"))),
		Div(Mul(V("cwnd"), C(8)), Max(V("srtt"), C(1e-6))),
	}
	for _, e := range exprs {
		vars := stdVars(0)
		vars[FlowVarSlot(FlowRate)] = 1e7
		evalBoth(t, e, nil, vars)
	}
}
