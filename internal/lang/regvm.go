package lang

import (
	"fmt"
	"math"
)

// The register VM is the datapath's fast fold/expression backend: flat
// three-address code over a compile-time-verified register file, so the
// per-ACK loop carries no semantic range checks, no operand stack, and no
// silent return-0 underflow paths — every instruction was proven in range
// and every temp proven written-before-read when the program was compiled
// (see verify). The stack bytecode in compile.go stays as the reference
// implementation; the differential fuzz target (FuzzStackVsRegister) pins
// the two backends to bit-identical results.
//
// Frame layout: slots [0, NVars) are the standard variable table (packet
// fields, flow variables, fold registers — the same layout fields.go
// defines, so the datapath writes packet fields into the frame exactly as
// it did into the stack VM's table), and slots [NVars, FrameLen) are
// temporaries owned by the VM. Constants live in a per-program pool and
// are referenced by inline index, never materialized unless an operand
// position requires a register (select branches).

// RegOp is a register-VM operation. The opcode space is deliberately wide:
// superinstructions fuse the dominant fold shapes (var⊕const, EWMA,
// select-of-comparison) into single dispatches, and three-address form
// makes min/max-accumulate (`dst = min(dst, x)`) one instruction.
type RegOp uint8

const (
	rNop   RegOp = iota
	rConst       // f[Dst] = consts[A]
	rMov         // f[Dst] = f[A]

	// Generic binary ops, both operands registers (var⊕var→dst). The
	// accumulate forms (min/max/sum into the destination) are these same
	// opcodes with Dst == A — three-address code makes the fusion free.
	rAdd // f[Dst] = sq(f[A] + f[B])
	rSub
	rMul
	rDiv // x/0 == 0, as everywhere in the language
	rMin
	rMax
	rLt // comparisons store exactly 0 or 1
	rLe
	rGt
	rGe
	rEq
	rNe
	rAnd
	rOr

	// Superinstructions: register ⊕ inline constant (const pool index in
	// B). Const-on-the-left forms are canonicalized away at compile time
	// (commutative ops swap, comparisons flip); only Sub and Div are truly
	// directional and keep a CR variant.
	rAddC // f[Dst] = sq(f[A] + consts[B])
	rSubC
	rMulC
	rDivC // compile guarantees consts[B] != 0 (x/0 folds to 0)
	rMinC
	rMaxC
	rLtC
	rLeC
	rGtC
	rGeC
	rEqC
	rNeC
	rSubCR // f[Dst] = sq(consts[B] - f[A])
	rDivCR // f[Dst] = consts[B] / f[A], 0 when f[A] == 0

	// Fused EWMA: f[Dst] = sq(sq(consts[B]*f[A]) + sq(consts[D]*f[C])).
	// The shape a*x + (1-a)*y dominates smoothed-estimate folds; the
	// intermediate squashes replicate the stack VM's per-op NaN/Inf
	// normalization exactly, keeping the fusion bit-identical.
	rEwma

	// Select: f[Dst] = f[A] != 0 ? f[B] : f[C].
	rSel
	// Fused select-of-comparison: f[Dst] = (f[A] cmp f[B]) ? f[C] : f[D].
	rSelLt
	rSelLe
	rSelGt
	rSelGe
	rSelEq
	rSelNe

	numRegOps
)

var regOpNames = [numRegOps]string{
	"nop", "const", "mov",
	"add", "sub", "mul", "div", "min", "max",
	"lt", "le", "gt", "ge", "eq", "ne", "and", "or",
	"addc", "subc", "mulc", "divc", "minc", "maxc",
	"ltc", "lec", "gtc", "gec", "eqc", "nec", "subcr", "divcr",
	"ewma",
	"sel", "sellt", "selle", "selgt", "selge", "seleq", "selne",
}

func (op RegOp) String() string {
	if op < numRegOps {
		return regOpNames[op]
	}
	return fmt.Sprintf("rop(%d)", uint8(op))
}

// RInst is one three-address instruction. A and B are the primary
// operands; C and D carry the extra operands of the fused forms (EWMA
// second term, select branches).
type RInst struct {
	Op              RegOp
	Dst, A, B, C, D uint16
}

// RegCode is a compiled register program: for a single expression the
// value lands in Result; for a fold body the instructions write the fold's
// register slots directly and Result is unused.
type RegCode struct {
	Insts  []RInst
	Consts []float64
	// NVars is the caller-owned frame prefix (VarTableSize of the program's
	// register count); FrameLen is NVars plus the temp slots this program
	// needs. Eval/Run accept any vars of at least FrameLen and fall back to
	// an internal scratch frame (with the stack VM's missing-slot-reads-0
	// semantics) for shorter tables.
	NVars    int
	FrameLen int
	// Result is the frame slot holding an expression's value after Run.
	Result uint16
	// scratch backs the defensive short-table path; allocated at compile
	// time so Eval stays allocation-free either way.
	scratch []float64
}

// sq normalizes NaN/±Inf to 0, mirroring applyBin's totalization. v != v
// catches NaN without a call; the comparisons catch both infinities.
func sq(v float64) float64 {
	if v != v || v > math.MaxFloat64 || v < -math.MaxFloat64 {
		return 0
	}
	return v
}

// Run executes the program against f, which must have at least FrameLen
// slots (callers sizing tables with FrameLen get the fast path; Eval
// handles the general case). No semantic checks: verify proved every
// index in range at compile time.
func (c *RegCode) Run(f []float64) {
	consts := c.Consts
	for _, in := range c.Insts {
		switch in.Op {
		case rConst:
			f[in.Dst] = consts[in.A]
		case rMov:
			f[in.Dst] = f[in.A]
		case rAdd:
			f[in.Dst] = sq(f[in.A] + f[in.B])
		case rSub:
			f[in.Dst] = sq(f[in.A] - f[in.B])
		case rMul:
			f[in.Dst] = sq(f[in.A] * f[in.B])
		case rDiv:
			if b := f[in.B]; b == 0 {
				f[in.Dst] = 0
			} else {
				f[in.Dst] = sq(f[in.A] / b)
			}
		case rMin:
			f[in.Dst] = sq(math.Min(f[in.A], f[in.B]))
		case rMax:
			f[in.Dst] = sq(math.Max(f[in.A], f[in.B]))
		case rLt:
			f[in.Dst] = b2f(f[in.A] < f[in.B])
		case rLe:
			f[in.Dst] = b2f(f[in.A] <= f[in.B])
		case rGt:
			f[in.Dst] = b2f(f[in.A] > f[in.B])
		case rGe:
			f[in.Dst] = b2f(f[in.A] >= f[in.B])
		case rEq:
			f[in.Dst] = b2f(f[in.A] == f[in.B])
		case rNe:
			f[in.Dst] = b2f(f[in.A] != f[in.B])
		case rAnd:
			f[in.Dst] = b2f(f[in.A] != 0 && f[in.B] != 0)
		case rOr:
			f[in.Dst] = b2f(f[in.A] != 0 || f[in.B] != 0)
		case rAddC:
			f[in.Dst] = sq(f[in.A] + consts[in.B])
		case rSubC:
			f[in.Dst] = sq(f[in.A] - consts[in.B])
		case rMulC:
			f[in.Dst] = sq(f[in.A] * consts[in.B])
		case rDivC:
			f[in.Dst] = sq(f[in.A] / consts[in.B])
		case rMinC:
			f[in.Dst] = sq(math.Min(f[in.A], consts[in.B]))
		case rMaxC:
			f[in.Dst] = sq(math.Max(f[in.A], consts[in.B]))
		case rLtC:
			f[in.Dst] = b2f(f[in.A] < consts[in.B])
		case rLeC:
			f[in.Dst] = b2f(f[in.A] <= consts[in.B])
		case rGtC:
			f[in.Dst] = b2f(f[in.A] > consts[in.B])
		case rGeC:
			f[in.Dst] = b2f(f[in.A] >= consts[in.B])
		case rEqC:
			f[in.Dst] = b2f(f[in.A] == consts[in.B])
		case rNeC:
			f[in.Dst] = b2f(f[in.A] != consts[in.B])
		case rSubCR:
			f[in.Dst] = sq(consts[in.B] - f[in.A])
		case rDivCR:
			if a := f[in.A]; a == 0 {
				f[in.Dst] = 0
			} else {
				f[in.Dst] = sq(consts[in.B] / a)
			}
		case rEwma:
			t1 := sq(consts[in.B] * f[in.A])
			t2 := sq(consts[in.D] * f[in.C])
			f[in.Dst] = sq(t1 + t2)
		case rSel:
			if f[in.A] != 0 {
				f[in.Dst] = f[in.B]
			} else {
				f[in.Dst] = f[in.C]
			}
		case rSelLt:
			if f[in.A] < f[in.B] {
				f[in.Dst] = f[in.C]
			} else {
				f[in.Dst] = f[in.D]
			}
		case rSelLe:
			if f[in.A] <= f[in.B] {
				f[in.Dst] = f[in.C]
			} else {
				f[in.Dst] = f[in.D]
			}
		case rSelGt:
			if f[in.A] > f[in.B] {
				f[in.Dst] = f[in.C]
			} else {
				f[in.Dst] = f[in.D]
			}
		case rSelGe:
			if f[in.A] >= f[in.B] {
				f[in.Dst] = f[in.C]
			} else {
				f[in.Dst] = f[in.D]
			}
		case rSelEq:
			if f[in.A] == f[in.B] {
				f[in.Dst] = f[in.C]
			} else {
				f[in.Dst] = f[in.D]
			}
		case rSelNe:
			if f[in.A] != f[in.B] {
				f[in.Dst] = f[in.C]
			} else {
				f[in.Dst] = f[in.D]
			}
		}
	}
}

// Eval executes the program and returns the result value. vars of at least
// FrameLen slots run in place (allocation- and copy-free); shorter tables
// take the defensive scratch path with the stack VM's semantics for
// missing slots (they read as 0). Allocation-free on both paths.
func (c *RegCode) Eval(vars []float64) float64 {
	if len(vars) >= c.FrameLen {
		c.Run(vars)
		return vars[c.Result]
	}
	f := c.shortFrame(vars)
	c.Run(f)
	return f[c.Result]
}

// shortFrame stages an undersized variable table into the scratch frame:
// present slots copy in, missing variable slots read as 0 (matching the
// stack VM's defensive semantics), temps need no clearing because verify
// proved them written before read.
func (c *RegCode) shortFrame(vars []float64) []float64 {
	f := c.scratch
	n := copy(f, vars)
	for i := n; i < c.NVars; i++ {
		f[i] = 0
	}
	return f
}

// verify is the compile-time proof that Run needs no checks: every operand
// index in range, every const index inside the pool, every temp written
// before it is read, and no write outside the allowed destination set
// (temps plus, for fold bodies, the fold's own register slots). It runs
// once at compile time; a failure is a compiler bug surfaced as an error
// instead of a silent wrong value at ACK time.
func (c *RegCode) verify(allowedVarDsts map[uint16]bool) error {
	if c.FrameLen > 0xFFFF {
		return fmt.Errorf("lang: register frame of %d slots exceeds the 16-bit operand space", c.FrameLen)
	}
	written := make([]bool, c.FrameLen)
	readOK := func(slot uint16) error {
		if int(slot) >= c.FrameLen {
			return fmt.Errorf("lang: operand slot %d outside frame of %d", slot, c.FrameLen)
		}
		if int(slot) >= c.NVars && !written[slot] {
			return fmt.Errorf("lang: temp slot %d read before write", slot)
		}
		return nil
	}
	constOK := func(idx uint16) error {
		if int(idx) >= len(c.Consts) {
			return fmt.Errorf("lang: const index %d outside pool of %d", idx, len(c.Consts))
		}
		return nil
	}
	for i, in := range c.Insts {
		if in.Op == rNop || in.Op >= numRegOps {
			return fmt.Errorf("lang: inst %d: invalid opcode %v", i, in.Op)
		}
		var reads []uint16
		var constIdx []uint16
		switch in.Op {
		case rConst:
			constIdx = []uint16{in.A}
		case rMov:
			reads = []uint16{in.A}
		case rAdd, rSub, rMul, rDiv, rMin, rMax, rLt, rLe, rGt, rGe, rEq, rNe, rAnd, rOr:
			reads = []uint16{in.A, in.B}
		case rAddC, rSubC, rMulC, rDivC, rMinC, rMaxC, rLtC, rLeC, rGtC, rGeC, rEqC, rNeC, rSubCR, rDivCR:
			reads = []uint16{in.A}
			constIdx = []uint16{in.B}
			if in.Op == rDivC {
				if err := constOK(in.B); err != nil {
					return fmt.Errorf("lang: inst %d: %v", i, err)
				}
				if c.Consts[in.B] == 0 {
					return fmt.Errorf("lang: inst %d: divc by constant zero must fold to 0 at compile time", i)
				}
			}
		case rEwma:
			reads = []uint16{in.A, in.C}
			constIdx = []uint16{in.B, in.D}
		case rSel:
			reads = []uint16{in.A, in.B, in.C}
		case rSelLt, rSelLe, rSelGt, rSelGe, rSelEq, rSelNe:
			reads = []uint16{in.A, in.B, in.C, in.D}
		}
		for _, s := range reads {
			if err := readOK(s); err != nil {
				return fmt.Errorf("lang: inst %d (%v): %v", i, in.Op, err)
			}
		}
		for _, idx := range constIdx {
			if err := constOK(idx); err != nil {
				return fmt.Errorf("lang: inst %d (%v): %v", i, in.Op, err)
			}
		}
		if int(in.Dst) >= c.FrameLen {
			return fmt.Errorf("lang: inst %d (%v): write to slot %d outside frame of %d", i, in.Op, in.Dst, c.FrameLen)
		}
		if int(in.Dst) < c.NVars && !allowedVarDsts[in.Dst] {
			return fmt.Errorf("lang: inst %d (%v): write to variable slot %d not in the destination set", i, in.Op, in.Dst)
		}
		written[in.Dst] = true
	}
	if int(c.Result) >= c.FrameLen {
		return fmt.Errorf("lang: result slot %d outside frame of %d", c.Result, c.FrameLen)
	}
	if int(c.Result) >= c.NVars && !written[c.Result] {
		return fmt.Errorf("lang: result temp %d never written", c.Result)
	}
	return nil
}
