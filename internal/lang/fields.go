package lang

import "fmt"

// Field identifies a per-packet measurement the datapath exposes to fold
// functions and can record into measurement vectors. These are the primitives
// of Table 1: RTT, delivered/sending rates, loss, ECN, and custom packet
// header fields (the XCP row).
type Field uint8

// Per-packet fields. Units: seconds for times, bytes for sizes, bytes/second
// for rates; booleans are 0/1.
const (
	FieldRTT      Field = iota // "pkt.rtt": RTT sample of the acked packet
	FieldAcked                 // "pkt.acked": bytes newly acknowledged
	FieldSacked                // "pkt.sacked": bytes newly selectively acked
	FieldLost                  // "pkt.lost": bytes newly declared lost
	FieldECN                   // "pkt.ecn": 1 if this ACK echoed a CE mark
	FieldSndRate               // "pkt.snd_rate": measured sending rate
	FieldRcvRate               // "pkt.rcv_rate": measured delivery rate
	FieldInflight              // "pkt.inflight": bytes in flight after this ACK
	FieldHdrRate               // "pkt.hdr_rate": router-stamped header rate (XCP-style)
	FieldNow                   // "pkt.now": datapath clock, seconds since flow start
	NumPktFields
)

var fieldNames = [NumPktFields]string{
	"pkt.rtt", "pkt.acked", "pkt.sacked", "pkt.lost", "pkt.ecn",
	"pkt.snd_rate", "pkt.rcv_rate", "pkt.inflight", "pkt.hdr_rate", "pkt.now",
}

// String returns the field's variable name.
func (f Field) String() string {
	if f < NumPktFields {
		return fieldNames[f]
	}
	return fmt.Sprintf("pkt.field(%d)", uint8(f))
}

// FieldByName maps "pkt.rtt"-style names to Fields.
func FieldByName(name string) (Field, bool) {
	for i, n := range fieldNames {
		if n == name {
			return Field(i), true
		}
	}
	return 0, false
}

// FlowVar identifies a per-flow control variable maintained by the datapath
// and readable from both fold functions and control programs.
type FlowVar uint8

// Flow variables. These are referenced by bare names in programs ("cwnd",
// "rate"), matching the paper's examples like Rate(1.25*rate).
const (
	FlowCwnd   FlowVar = iota // "cwnd": congestion window, bytes
	FlowRate                  // "rate": pacing rate, bytes/sec
	FlowMSS                   // "mss": maximum segment size, bytes
	FlowSRTT                  // "srtt": smoothed RTT, seconds
	FlowMinRTT                // "min_rtt": minimum observed RTT, seconds
	NumFlowVars
)

var flowVarNames = [NumFlowVars]string{"cwnd", "rate", "mss", "srtt", "min_rtt"}

// String returns the flow variable's name.
func (v FlowVar) String() string {
	if v < NumFlowVars {
		return flowVarNames[v]
	}
	return fmt.Sprintf("flow.var(%d)", uint8(v))
}

// FlowVarByName maps names to FlowVars.
func FlowVarByName(name string) (FlowVar, bool) {
	for i, n := range flowVarNames {
		if n == name {
			return FlowVar(i), true
		}
	}
	return 0, false
}

// Variable-table layout shared between lang (compilation) and the datapath
// (execution): packet fields first, then flow variables, then fold registers.

// PktFieldSlot returns the variable-table slot of a packet field.
func PktFieldSlot(f Field) int { return int(f) }

// FlowVarSlot returns the variable-table slot of a flow variable.
func FlowVarSlot(v FlowVar) int { return int(NumPktFields) + int(v) }

// RegSlot returns the variable-table slot of the i-th fold register.
func RegSlot(i int) int { return int(NumPktFields) + int(NumFlowVars) + i }

// VarTableSize returns the table size for a program with nregs registers.
func VarTableSize(nregs int) int { return RegSlot(nregs) }

// StdResolver resolves packet fields, flow variables, and the given fold
// register names to the standard layout. Register names shadow nothing:
// reserved names are rejected at fold validation time.
func StdResolver(regNames []string) Resolver {
	regIdx := make(map[string]int, len(regNames))
	for i, n := range regNames {
		regIdx[n] = i
	}
	return func(name string) (int, bool) {
		if i, ok := regIdx[name]; ok {
			return RegSlot(i), true
		}
		if f, ok := FieldByName(name); ok {
			return PktFieldSlot(f), true
		}
		if v, ok := FlowVarByName(name); ok {
			return FlowVarSlot(v), true
		}
		return 0, false
	}
}

// Reserved reports whether name collides with a built-in variable.
func Reserved(name string) bool {
	if _, ok := FieldByName(name); ok {
		return true
	}
	_, ok := FlowVarByName(name)
	return ok
}
