package lang

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func testPrograms(t *testing.T) []*Program {
	t.Helper()
	vegas, err := NewProgram().
		MeasureFold(vegasFold()).
		Cwnd(Add(V("cwnd"), Mul(V("delta"), V("mss")))).
		WaitRtts(1).Report().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	vector, err := NewProgram().
		MeasureVector(FieldRTT, FieldAcked, FieldECN).
		UrgentECN().
		Cwnd(V("cwnd")).WaitRtts(1).Report().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return []*Program{bbrProgram(t), vegas, vector}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, p := range testPrograms(t) {
		data, err := MarshalProgram(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		got, err := UnmarshalProgram(data)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("round trip mismatch:\n  in:  %s\n  out: %s", p, got)
		}
		// Re-marshal must be byte-identical (canonical encoding).
		data2, err := MarshalProgram(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatal("encoding not canonical")
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{progMagic},
		{progMagic, 99},              // bad version
		{progMagic, progVersion, 77}, // bad mode
		{progMagic, progVersion, 0},  // truncated after mode
		{progMagic, progVersion, 0, 1, instrTagRate}, // truncated expr
		{progMagic, progVersion, 0, 1, 0xEE, 0},      // bad instr tag
	}
	for _, data := range cases {
		if _, err := UnmarshalProgram(data); err == nil {
			t.Errorf("UnmarshalProgram(%v) succeeded", data)
		}
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	data, err := MarshalProgram(bbrProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalProgram(append(data, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	// Random mutations of a valid encoding must never panic; errors are fine.
	base, err := MarshalProgram(testPrograms(t)[1])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		data := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			data[rng.Intn(len(data))] = byte(rng.Intn(256))
		}
		if rng.Intn(3) == 0 {
			data = data[:rng.Intn(len(data))]
		}
		p, err := UnmarshalProgram(data)
		if err == nil {
			// A lucky mutation may decode; it must then be valid.
			if verr := p.Validate(); verr != nil {
				t.Fatalf("decoded invalid program: %v", verr)
			}
		}
	}
}

func TestUnmarshalDepthLimit(t *testing.T) {
	// Construct a deeply nested expression exceeding maxExprDepth.
	e := Expr(C(1))
	for i := 0; i < maxExprDepth+10; i++ {
		e = Add(e, C(1))
	}
	p, err := NewProgram().Rate(e).Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalProgram(data); err == nil {
		t.Fatal("over-deep expression accepted")
	}
}

func TestMarshalRejectsNilExpr(t *testing.T) {
	p := &Program{Instrs: []Instr{SetRate{}}}
	if _, err := MarshalProgram(p); err == nil {
		t.Fatal("nil expression marshalled")
	}
}

func TestMarshalRejectsLongName(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	p := &Program{
		Measure: MeasureSpec{Mode: MeasureFold, Fold: &FoldSpec{
			Regs: []RegDef{{Name: string(long)}},
		}},
	}
	if _, err := MarshalProgram(p); err == nil {
		t.Fatal("over-long name marshalled")
	}
}
