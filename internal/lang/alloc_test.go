package lang

import (
	"testing"

	"github.com/ccp-repro/ccp/internal/testenv"
)

// TestAllocsFoldStep pins the per-ACK fold execution at zero allocations:
// Step runs once per ACK on the datapath hot path, so a single allocation
// here multiplies by the packet rate.
func TestAllocsFoldStep(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	cf, err := CompileFold(vegasFold())
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, VarTableSize(cf.NumRegs()))
	cf.InitRegs(vars)
	vars[PktFieldSlot(FieldRTT)] = 0.1
	vars[FlowVarSlot(FlowCwnd)] = 14480
	vars[FlowVarSlot(FlowMSS)] = 1448
	if allocs := testing.AllocsPerRun(1000, func() { cf.Step(vars) }); allocs != 0 {
		t.Fatalf("CompiledFold.Step allocated %.1f times per op, want 0", allocs)
	}

	// Reading the registers back into a reused destination is also on the
	// report path and must stay free.
	dst := make([]float64, 0, cf.NumRegs())
	if allocs := testing.AllocsPerRun(1000, func() { dst = cf.ReadRegs(vars, dst[:0]) }); allocs != 0 {
		t.Fatalf("CompiledFold.ReadRegs allocated %.1f times per op, want 0", allocs)
	}
}
