package lang

import (
	"testing"

	"github.com/ccp-repro/ccp/internal/testenv"
)

// TestAllocsFoldStep pins the per-ACK fold execution at zero allocations:
// Step runs once per ACK on the datapath hot path, so a single allocation
// here multiplies by the packet rate.
func TestAllocsFoldStep(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	for _, bk := range []struct {
		name    string
		backend Backend
	}{{"register", BackendRegister}, {"stack", BackendStack}} {
		t.Run(bk.name, func(t *testing.T) {
			cf, err := CompileFoldBackend(vegasFold(), bk.backend)
			if err != nil {
				t.Fatal(err)
			}
			// FrameLen-sized table: the register backend's zero-copy path.
			vars := make([]float64, cf.FrameLen())
			cf.InitRegs(vars)
			vars[PktFieldSlot(FieldRTT)] = 0.1
			vars[FlowVarSlot(FlowCwnd)] = 14480
			vars[FlowVarSlot(FlowMSS)] = 1448
			if allocs := testing.AllocsPerRun(1000, func() { cf.Step(vars) }); allocs != 0 {
				t.Fatalf("CompiledFold.Step allocated %.1f times per op, want 0", allocs)
			}

			// The staging path for minimum-size tables must stay free too.
			short := make([]float64, VarTableSize(cf.NumRegs()))
			cf.InitRegs(short)
			if allocs := testing.AllocsPerRun(1000, func() { cf.Step(short) }); allocs != 0 {
				t.Fatalf("CompiledFold.Step (staged) allocated %.1f times per op, want 0", allocs)
			}

			// Reading the registers back into a reused destination is also on
			// the report path and must stay free.
			dst := make([]float64, 0, cf.NumRegs())
			if allocs := testing.AllocsPerRun(1000, func() { dst = cf.ReadRegs(vars, dst[:0]) }); allocs != 0 {
				t.Fatalf("CompiledFold.ReadRegs allocated %.1f times per op, want 0", allocs)
			}
		})
	}
}

// TestAllocsRegExprEval pins control-expression evaluation on the register
// VM at zero allocations, on both the in-place and the defensive
// short-table paths (the scratch frame is preallocated at compile time).
func TestAllocsRegExprEval(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	e := Ite(Gt(V("pkt.lost"), C(0)), Mul(C(0.5), V("cwnd")), Add(V("cwnd"), V("mss")))
	code, err := CompileReg(e, StdResolver(nil), VarTableSize(0))
	if err != nil {
		t.Fatal(err)
	}
	full := make([]float64, code.FrameLen)
	full[FlowVarSlot(FlowCwnd)] = 14480
	if allocs := testing.AllocsPerRun(1000, func() { code.Eval(full) }); allocs != 0 {
		t.Fatalf("RegCode.Eval allocated %.1f times per op, want 0", allocs)
	}
	short := make([]float64, int(NumPktFields))
	if allocs := testing.AllocsPerRun(1000, func() { code.Eval(short) }); allocs != 0 {
		t.Fatalf("RegCode.Eval (short table) allocated %.1f times per op, want 0", allocs)
	}
}
