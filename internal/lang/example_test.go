package lang_test

import (
	"fmt"

	"github.com/ccp-repro/ccp/internal/lang"
)

// ExampleParseProgram parses the paper's §2.1 BBR pulse pattern from its
// textual form.
func ExampleParseProgram() {
	p, err := lang.ParseProgram(`
		Rate(1.25*rate).WaitRtts(1.0).Report().
		Rate(0.75*rate).WaitRtts(1.0).Report().
		Rate(rate).WaitRtts(6.0).Report()`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	fmt.Println(len(p.Instrs), "instructions")
	fmt.Println(p.Instrs[0])
	// Output:
	// 9 instructions
	// Rate((* 1.25 rate))
}

// ExampleParseFold builds the paper's §2.4 Vegas fold from the
// S-expression dialect and runs it over two synthetic ACKs.
func ExampleParseFold() {
	fold, err := lang.ParseFold(`
		(def (base_rtt 1e9) (delta 0))
		(:= base_rtt (min base_rtt pkt.rtt))
		(:= delta (if (< (/ (* (- pkt.rtt base_rtt) (/ cwnd mss)) (max base_rtt 1e-9)) 2)
		              (+ delta 1)
		              (if (> (/ (* (- pkt.rtt base_rtt) (/ cwnd mss)) (max base_rtt 1e-9)) 4)
		                  (- delta 1) delta)))`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	cf, err := lang.CompileFold(fold)
	if err != nil {
		fmt.Println("compile error:", err)
		return
	}
	vars := make([]float64, lang.VarTableSize(cf.NumRegs()))
	cf.InitRegs(vars)
	vars[lang.FlowVarSlot(lang.FlowCwnd)] = 10 * 1448
	vars[lang.FlowVarSlot(lang.FlowMSS)] = 1448

	vars[lang.PktFieldSlot(lang.FieldRTT)] = 0.100 // empty queue
	cf.Step(vars)
	vars[lang.PktFieldSlot(lang.FieldRTT)] = 0.170 // 7 packets queued
	cf.Step(vars)

	regs := cf.ReadRegs(vars, nil)
	fmt.Printf("base_rtt=%.3fs delta=%+.0f\n", regs[0], regs[1])
	// Output:
	// base_rtt=0.100s delta=+0
}

// ExampleNewProgram assembles a program with the fluent builder and prints
// its canonical dotted form.
func ExampleNewProgram() {
	p := lang.NewProgram().
		MeasureVector(lang.FieldRTT, lang.FieldAcked).
		Cwnd(lang.Add(lang.V("cwnd"), lang.V("mss"))).
		WaitRtts(1).
		Report().
		MustBuild()
	fmt.Println(p)
	// Output:
	// Measure(rtt, acked).Cwnd((+ cwnd mss)).WaitRtts(1).Report()
}

// ExampleEval evaluates an expression the way the agent does when applying
// policies.
func ExampleEval() {
	// Clamp a rate expression at 1 MB/s, as a policy rewrite would.
	e := lang.Min(lang.Mul(lang.C(2), lang.V("rate")), lang.C(1e6))
	v, err := lang.Eval(e, func(name string) (float64, bool) {
		if name == "rate" {
			return 750_000, true
		}
		return 0, false
	})
	if err != nil {
		fmt.Println("eval error:", err)
		return
	}
	fmt.Printf("%.0f\n", v)
	// Output:
	// 1000000
}
