package lang

import (
	"math"
	"testing"
)

// vegasFold builds the paper's §2.4 Vegas fold: track min RTT and a cwnd
// delta derived from the estimated queue occupancy.
func vegasFold() *FoldSpec {
	inQ := Div(Mul(Sub(V("pkt.rtt"), V("base_rtt")), V("cwnd")), Max(V("base_rtt"), C(1e-9)))
	return &FoldSpec{
		Regs: []RegDef{
			{Name: "base_rtt", Init: 1e9},
			{Name: "delta", Init: 0},
		},
		Updates: []Assign{
			{Dst: "base_rtt", E: Min(V("base_rtt"), V("pkt.rtt"))},
			{Dst: "delta", E: Ite(Lt(inQ, C(2)),
				Add(V("delta"), C(1)),
				Ite(Gt(inQ, C(4)), Sub(V("delta"), C(1)), V("delta")))},
		},
	}
}

func TestFoldValidate(t *testing.T) {
	if err := vegasFold().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFoldValidateRejectsReservedName(t *testing.T) {
	f := &FoldSpec{Regs: []RegDef{{Name: "cwnd"}}}
	if err := f.Validate(); err == nil {
		t.Fatal("reserved register name accepted")
	}
	f = &FoldSpec{Regs: []RegDef{{Name: "pkt.rtt"}}}
	if err := f.Validate(); err == nil {
		t.Fatal("pkt field register name accepted")
	}
}

func TestFoldValidateRejectsDuplicates(t *testing.T) {
	f := &FoldSpec{Regs: []RegDef{{Name: "a"}, {Name: "a"}}}
	if err := f.Validate(); err == nil {
		t.Fatal("duplicate register accepted")
	}
}

func TestFoldValidateRejectsUndeclaredDst(t *testing.T) {
	f := &FoldSpec{
		Regs:    []RegDef{{Name: "a"}},
		Updates: []Assign{{Dst: "b", E: C(1)}},
	}
	if err := f.Validate(); err == nil {
		t.Fatal("undeclared assignment target accepted")
	}
}

func TestFoldValidateRejectsUnknownVar(t *testing.T) {
	f := &FoldSpec{
		Regs:    []RegDef{{Name: "a"}},
		Updates: []Assign{{Dst: "a", E: V("mystery")}},
	}
	if err := f.Validate(); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestFoldValidateRejectsEmptyName(t *testing.T) {
	f := &FoldSpec{Regs: []RegDef{{Name: ""}}}
	if err := f.Validate(); err == nil {
		t.Fatal("empty register name accepted")
	}
}

func TestVegasFoldSemantics(t *testing.T) {
	cf, err := CompileFold(vegasFold())
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, VarTableSize(cf.NumRegs()))
	cf.InitRegs(vars)
	vars[FlowVarSlot(FlowCwnd)] = 10 // cwnd counted in packets for this test

	// First packet: rtt 100ms. base_rtt becomes 0.1; inQ = 0 => delta +1.
	vars[PktFieldSlot(FieldRTT)] = 0.100
	cf.Step(vars)
	if got := vars[RegSlot(0)]; got != 0.100 {
		t.Fatalf("base_rtt=%v", got)
	}
	if got := vars[RegSlot(1)]; got != 1 {
		t.Fatalf("delta=%v, want 1", got)
	}

	// RTT inflated to 150ms: inQ = (0.05*10)/0.1 = 5 > 4 => delta -1.
	vars[PktFieldSlot(FieldRTT)] = 0.150
	cf.Step(vars)
	if got := vars[RegSlot(1)]; got != 0 {
		t.Fatalf("delta=%v, want 0", got)
	}

	// RTT 130ms: inQ = 3, between thresholds => unchanged.
	vars[PktFieldSlot(FieldRTT)] = 0.130
	cf.Step(vars)
	if got := vars[RegSlot(1)]; got != 0 {
		t.Fatalf("delta=%v, want 0", got)
	}
}

func TestFoldSequentialSemantics(t *testing.T) {
	// The second update must observe the first update's result.
	f := &FoldSpec{
		Regs: []RegDef{{Name: "a", Init: 0}, {Name: "b", Init: 0}},
		Updates: []Assign{
			{Dst: "a", E: Add(V("a"), C(1))},
			{Dst: "b", E: Mul(V("a"), C(10))},
		},
	}
	cf, err := CompileFold(f)
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, VarTableSize(2))
	cf.InitRegs(vars)
	cf.Step(vars)
	if vars[RegSlot(0)] != 1 || vars[RegSlot(1)] != 10 {
		t.Fatalf("a=%v b=%v, want 1, 10", vars[RegSlot(0)], vars[RegSlot(1)])
	}
	cf.Step(vars)
	if vars[RegSlot(0)] != 2 || vars[RegSlot(1)] != 20 {
		t.Fatalf("a=%v b=%v, want 2, 20", vars[RegSlot(0)], vars[RegSlot(1)])
	}
}

func TestFoldStepAllocationFree(t *testing.T) {
	cf, err := CompileFold(vegasFold())
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, VarTableSize(cf.NumRegs()))
	cf.InitRegs(vars)
	vars[PktFieldSlot(FieldRTT)] = 0.05
	allocs := testing.AllocsPerRun(100, func() { cf.Step(vars) })
	if allocs != 0 {
		t.Fatalf("Step allocates %v per run", allocs)
	}
}

func TestFoldReadRegs(t *testing.T) {
	cf, err := CompileFold(vegasFold())
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, VarTableSize(cf.NumRegs()))
	cf.InitRegs(vars)
	out := cf.ReadRegs(vars, nil)
	if len(out) != 2 || out[0] != 1e9 || out[1] != 0 {
		t.Fatalf("regs=%v", out)
	}
}

func TestFoldInitRegsResets(t *testing.T) {
	cf, err := CompileFold(vegasFold())
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, VarTableSize(cf.NumRegs()))
	cf.InitRegs(vars)
	vars[PktFieldSlot(FieldRTT)] = 0.01
	cf.Step(vars)
	cf.InitRegs(vars)
	if vars[RegSlot(0)] != 1e9 || vars[RegSlot(1)] != 0 {
		t.Fatal("InitRegs did not reset registers")
	}
}

func TestEWMAFoldExpressible(t *testing.T) {
	// EWMA is expressible in the pure language: r = 0.875r + 0.125x, with an
	// init flag to seed the first sample.
	f := &FoldSpec{
		Regs: []RegDef{{Name: "seen", Init: 0}, {Name: "srtt_est", Init: 0}},
		Updates: []Assign{
			{Dst: "srtt_est", E: Ite(Eq(V("seen"), C(0)),
				V("pkt.rtt"),
				Add(Mul(C(0.875), V("srtt_est")), Mul(C(0.125), V("pkt.rtt"))))},
			{Dst: "seen", E: C(1)},
		},
	}
	cf, err := CompileFold(f)
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, VarTableSize(2))
	cf.InitRegs(vars)
	vars[PktFieldSlot(FieldRTT)] = 0.100
	cf.Step(vars)
	if got := vars[RegSlot(1)]; got != 0.100 {
		t.Fatalf("first sample: %v", got)
	}
	vars[PktFieldSlot(FieldRTT)] = 0.200
	cf.Step(vars)
	want := 0.875*0.100 + 0.125*0.200
	if got := vars[RegSlot(1)]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ewma=%v, want %v", got, want)
	}
}

func TestFieldNamesRoundTrip(t *testing.T) {
	for f := Field(0); f < NumPktFields; f++ {
		got, ok := FieldByName(f.String())
		if !ok || got != f {
			t.Fatalf("field %v does not round-trip", f)
		}
	}
	for v := FlowVar(0); v < NumFlowVars; v++ {
		got, ok := FlowVarByName(v.String())
		if !ok || got != v {
			t.Fatalf("flow var %v does not round-trip", v)
		}
	}
	if _, ok := FieldByName("pkt.nope"); ok {
		t.Fatal("bogus field resolved")
	}
}

func TestVarTableLayoutDisjoint(t *testing.T) {
	seen := map[int]string{}
	for f := Field(0); f < NumPktFields; f++ {
		seen[PktFieldSlot(f)] = f.String()
	}
	for v := FlowVar(0); v < NumFlowVars; v++ {
		slot := FlowVarSlot(v)
		if prev, dup := seen[slot]; dup {
			t.Fatalf("slot %d shared by %s and %s", slot, prev, v)
		}
		seen[slot] = v.String()
	}
	for i := 0; i < 4; i++ {
		slot := RegSlot(i)
		if prev, dup := seen[slot]; dup {
			t.Fatalf("slot %d shared by %s and reg %d", slot, prev, i)
		}
		seen[slot] = "reg"
	}
	if VarTableSize(4) != len(seen) {
		t.Fatalf("VarTableSize(4)=%d, want %d", VarTableSize(4), len(seen))
	}
}
