package lang

import "testing"

// wideFold is a multi-update fold exercising the optimizer's whole
// catalog at once: EWMA smoothing, min/max accumulation, a shared
// subexpression across updates, select-of-comparison, and var⊕const
// arithmetic — the shape of a serious measurement program.
func wideFold() *FoldSpec {
	excess := Sub(V("pkt.rtt"), V("base_rtt"))
	return &FoldSpec{
		Regs: []RegDef{
			{Name: "base_rtt", Init: 1e9},
			{Name: "s_rtt", Init: 0},
			{Name: "max_rate", Init: 0},
			{Name: "acked_tot", Init: 0},
			{Name: "lost_tot", Init: 0},
			{Name: "q_delay", Init: 0},
			{Name: "cong", Init: 0},
		},
		Updates: []Assign{
			{Dst: "base_rtt", E: Min(V("base_rtt"), V("pkt.rtt"))},
			{Dst: "s_rtt", E: Add(Mul(C(0.875), V("s_rtt")), Mul(C(0.125), V("pkt.rtt")))},
			{Dst: "max_rate", E: Max(V("max_rate"), V("pkt.rcv_rate"))},
			{Dst: "acked_tot", E: Add(V("acked_tot"), V("pkt.acked"))},
			{Dst: "lost_tot", E: Add(V("lost_tot"), V("pkt.lost"))},
			{Dst: "q_delay", E: Mul(excess, V("pkt.rcv_rate"))},
			{Dst: "cong", E: Ite(Gt(excess, C(0.01)), Add(V("cong"), C(1)), V("cong"))},
		},
	}
}

func benchFoldStep(b *testing.B, spec *FoldSpec, backend Backend) {
	cf, err := CompileFoldBackend(spec, backend)
	if err != nil {
		b.Fatal(err)
	}
	vars := make([]float64, cf.FrameLen())
	cf.InitRegs(vars)
	vars[PktFieldSlot(FieldRTT)] = 0.05
	vars[PktFieldSlot(FieldAcked)] = 1448
	vars[PktFieldSlot(FieldRcvRate)] = 1.2e7
	vars[FlowVarSlot(FlowCwnd)] = 14480
	vars[FlowVarSlot(FlowMSS)] = 1448
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf.Step(vars)
	}
}

// BenchmarkFoldStep is the per-ACK cost pinned in bench/baseline.txt: the
// register VM (the shipping default) against the stack reference, on the
// single-update Vegas fold and the wide multi-update fold.
func BenchmarkFoldStep(b *testing.B) {
	b.Run("vegas/register", func(b *testing.B) { benchFoldStep(b, vegasFold(), BackendRegister) })
	b.Run("vegas/stack", func(b *testing.B) { benchFoldStep(b, vegasFold(), BackendStack) })
	b.Run("wide/register", func(b *testing.B) { benchFoldStep(b, wideFold(), BackendRegister) })
	b.Run("wide/stack", func(b *testing.B) { benchFoldStep(b, wideFold(), BackendStack) })
}
