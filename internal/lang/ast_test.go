package lang

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func env(m map[string]float64) Env {
	return func(name string) (float64, bool) {
		v, ok := m[name]
		return v, ok
	}
}

func TestEvalArithmetic(t *testing.T) {
	e := Add(Mul(C(2), V("x")), Div(V("y"), C(4)))
	got, err := Eval(e, env(map[string]float64{"x": 3, "y": 8}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("got %v, want 8", got)
	}
}

func TestEvalDivByZeroIsZero(t *testing.T) {
	got, err := Eval(Div(C(5), C(0)), env(nil))
	if err != nil || got != 0 {
		t.Fatalf("5/0 = %v, err=%v; want 0, nil", got, err)
	}
}

func TestEvalComparisons(t *testing.T) {
	cases := []struct {
		e    Expr
		want float64
	}{
		{Lt(C(1), C(2)), 1},
		{Lt(C(2), C(1)), 0},
		{Le(C(2), C(2)), 1},
		{Gt(C(3), C(2)), 1},
		{Ge(C(2), C(3)), 0},
		{Eq(C(2), C(2)), 1},
		{Ne(C(2), C(2)), 0},
		{And(C(1), C(0)), 0},
		{And(C(2), C(3)), 1},
		{Or(C(0), C(5)), 1},
		{Or(C(0), C(0)), 0},
		{Min(C(3), C(7)), 3},
		{Max(C(3), C(7)), 7},
	}
	for _, c := range cases {
		got, err := Eval(c.e, env(nil))
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalIf(t *testing.T) {
	e := Ite(Lt(V("q"), C(2)), C(10), C(20))
	if got, _ := Eval(e, env(map[string]float64{"q": 1})); got != 10 {
		t.Fatalf("then branch: %v", got)
	}
	if got, _ := Eval(e, env(map[string]float64{"q": 3})); got != 20 {
		t.Fatalf("else branch: %v", got)
	}
}

func TestEvalUnknownVar(t *testing.T) {
	if _, err := Eval(V("nope"), env(nil)); err == nil {
		t.Fatal("expected error for unknown variable")
	}
}

func TestEvalSquashesNaN(t *testing.T) {
	// 0 * inf would be NaN; inf arises from overflow.
	e := Mul(C(0), Mul(C(math.MaxFloat64), C(2)))
	got, err := Eval(e, env(nil))
	if err != nil || got != 0 {
		t.Fatalf("got %v err=%v, want 0", got, err)
	}
}

func TestVarsCollection(t *testing.T) {
	e := Ite(Lt(V("b"), C(1)), Add(V("a"), V("c")), V("b"))
	got := Vars(e)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("vars=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vars=%v, want %v", got, want)
		}
	}
}

func TestExprString(t *testing.T) {
	e := Add(Mul(C(1.25), V("rate")), C(0))
	if s := e.String(); s != "(+ (* 1.25 rate) 0)" {
		t.Fatalf("String()=%q", s)
	}
}

// randomExpr builds a random expression over the standard variables.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return Const(math.Trunc(rng.Float64()*200-100) / 4)
		}
		if rng.Intn(2) == 0 {
			return Var(fieldNames[rng.Intn(int(NumPktFields))])
		}
		return Var(flowVarNames[rng.Intn(int(NumFlowVars))])
	}
	if rng.Intn(6) == 0 {
		return &If{randomExpr(rng, depth-1), randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	}
	return &Bin{BinKind(rng.Intn(int(numBinKinds))), randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
}

func TestCompiledMatchesInterpreter(t *testing.T) {
	// Property: bytecode evaluation agrees with tree-walking evaluation.
	rng := rand.New(rand.NewSource(11))
	resolve := StdResolver(nil)
	for trial := 0; trial < 500; trial++ {
		e := randomExpr(rng, 5)
		code, err := Compile(e, resolve)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		vars := make([]float64, VarTableSize(0))
		for i := range vars {
			vars[i] = math.Trunc(rng.Float64()*100) / 2
		}
		envFn := func(name string) (float64, bool) {
			slot, ok := resolve(name)
			if !ok {
				return 0, false
			}
			return vars[slot], true
		}
		want, err := Eval(e, envFn)
		if err != nil {
			t.Fatalf("eval %s: %v", e, err)
		}
		got := code.Eval(vars, nil)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: %s: vm=%v interp=%v", trial, e, got, want)
		}
	}
}

func TestCompileUnknownVar(t *testing.T) {
	if _, err := Compile(V("bogus"), StdResolver(nil)); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestCompiledEvalAllocationFree(t *testing.T) {
	e := Ite(Lt(V("pkt.rtt"), C(0.1)), Mul(V("cwnd"), C(2)), Div(V("cwnd"), C(2)))
	code, err := Compile(e, StdResolver(nil))
	if err != nil {
		t.Fatal(err)
	}
	vars := make([]float64, VarTableSize(0))
	stack := make([]float64, 0, code.MaxStack)
	allocs := testing.AllocsPerRun(100, func() {
		code.Eval(vars, stack)
	})
	if allocs != 0 {
		t.Fatalf("Eval allocates %v per run", allocs)
	}
}

func TestCompiledEvalDefensive(t *testing.T) {
	// Hand-corrupted bytecode must not panic.
	bad := &Code{
		Insts:    []Inst{{opBin, 0}, {opVar, 9999}, {opSelect, 0}, {opConst, 42}},
		Consts:   nil,
		MaxStack: 4,
	}
	_ = bad.Eval([]float64{1}, nil) // must not panic
}

func TestConstPoolDeduplicates(t *testing.T) {
	e := Add(Mul(C(2), V("cwnd")), C(2))
	code, err := Compile(e, StdResolver(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(code.Consts) != 1 {
		t.Fatalf("const pool=%v, want one entry", code.Consts)
	}
}

func TestQuickCompiledConstsRoundtrip(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		e := Add(C(a), C(b))
		code, err := Compile(e, StdResolver(nil))
		if err != nil {
			return false
		}
		got := code.Eval(nil, nil)
		want := applyBin(OpAdd, a, b)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
