package lang_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	// The random-program generator and the fuzz harness live in the external
	// test package so they can import absint (which imports lang) without a
	// cycle; the dot import keeps the DSL constructors readable.
	. "github.com/ccp-repro/ccp/internal/lang"
)

// numBinKinds mirrors lang's unexported operator count. OpOr is the last
// operator; serialize.go rejects anything >= OpOr+1, so an operator added
// without updating this shows up as a round-trip failure here.
const numBinKinds = OpOr + 1

// randomProgram builds a structurally valid random program: random measure
// mode (with a matching fold/vector spec) and a random instruction mix.
func randomProgram(rng *rand.Rand) *Program {
	p := &Program{}
	var regNames []string
	switch rng.Intn(3) {
	case 0:
		p.Measure = MeasureSpec{Mode: MeasureEWMA}
	case 1:
		nregs := 1 + rng.Intn(4)
		fold := &FoldSpec{}
		for i := 0; i < nregs; i++ {
			name := string(rune('a'+i)) + "_reg"
			fold.Regs = append(fold.Regs, RegDef{Name: name, Init: math.Trunc(rng.Float64()*100) / 2})
			regNames = append(regNames, name)
		}
		nupd := 1 + rng.Intn(3)
		for i := 0; i < nupd; i++ {
			dst := regNames[rng.Intn(len(regNames))]
			var e Expr
			if rng.Intn(3) == 0 {
				// Accumulate shape (dst = op(dst, x)): the register
				// backend's destination-retargeting fusion target.
				accOps := []BinKind{OpMin, OpMax, OpAdd}
				e = &Bin{accOps[rng.Intn(len(accOps))], Var(dst), randomExprOver(rng, 2, regNames)}
			} else {
				e = randomExprOver(rng, 3, regNames)
			}
			fold.Updates = append(fold.Updates, Assign{Dst: dst, E: e})
		}
		p.Measure = MeasureSpec{Mode: MeasureFold, Fold: fold}
	default:
		nf := 1 + rng.Intn(int(NumPktFields))
		for i := 0; i < nf; i++ {
			p.Measure.Fields = append(p.Measure.Fields, Field(rng.Intn(int(NumPktFields))))
		}
		p.Measure.Mode = MeasureVector
	}
	ninstr := 1 + rng.Intn(8)
	for i := 0; i < ninstr; i++ {
		switch rng.Intn(5) {
		case 0:
			p.Instrs = append(p.Instrs, SetRate{randomExprOver(rng, 3, regNames)})
		case 1:
			p.Instrs = append(p.Instrs, SetCwnd{randomExprOver(rng, 3, regNames)})
		case 2:
			p.Instrs = append(p.Instrs, Wait{Const(rng.Float64())})
		case 3:
			p.Instrs = append(p.Instrs, WaitRtts{Const(rng.Float64() * 8)})
		default:
			p.Instrs = append(p.Instrs, Report{})
		}
	}
	p.UrgentECN = rng.Intn(2) == 0
	return p
}

// randomExprOver builds a random expression over built-ins plus the given
// register names.
func randomExprOver(rng *rand.Rand, depth int, regs []string) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return Const(math.Trunc(rng.Float64()*100) / 4)
		case 1:
			if len(regs) > 0 && rng.Intn(2) == 0 {
				return Var(regs[rng.Intn(len(regs))])
			}
			return Var(Field(rng.Intn(int(NumPktFields))).String())
		default:
			return Var(FlowVar(rng.Intn(int(NumFlowVars))).String())
		}
	}
	switch rng.Intn(12) {
	case 0, 1:
		return &If{
			randomExprOver(rng, depth-1, regs),
			randomExprOver(rng, depth-1, regs),
			randomExprOver(rng, depth-1, regs),
		}
	case 2:
		// EWMA shape a*x + (1-a)*y: the register backend's fused form.
		a := math.Trunc(rng.Float64()*1000) / 1000
		return &Bin{OpAdd,
			&Bin{OpMul, Const(a), randomExprOver(rng, depth-1, regs)},
			&Bin{OpMul, Const(1 - a), randomExprOver(rng, depth-1, regs)},
		}
	case 3:
		// Select-of-comparison: fused into a single dispatch.
		cmps := []BinKind{OpLt, OpLe, OpGt, OpGe, OpEq, OpNe}
		return &If{
			&Bin{cmps[rng.Intn(len(cmps))],
				randomExprOver(rng, depth-1, regs),
				randomExprOver(rng, depth-1, regs)},
			randomExprOver(rng, depth-1, regs),
			randomExprOver(rng, depth-1, regs),
		}
	case 4:
		// var ⊕ const and const ⊕ var: the inline-constant forms, with
		// constant-left placement to exercise canonicalization.
		op := BinKind(rng.Intn(int(numBinKinds)))
		c := Const(math.Trunc(rng.Float64()*64) / 2)
		v := randomExprOver(rng, 0, regs)
		if rng.Intn(2) == 0 {
			return &Bin{op, c, v}
		}
		return &Bin{op, v, c}
	}
	return &Bin{
		BinKind(rng.Intn(int(numBinKinds))),
		randomExprOver(rng, depth-1, regs),
		randomExprOver(rng, depth-1, regs),
	}
}

func TestRandomProgramsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	valid := 0
	for trial := 0; trial < 500; trial++ {
		p := randomProgram(rng)
		if err := p.Validate(); err != nil {
			// Random vectors may duplicate fields etc.; only valid
			// programs must round-trip.
			continue
		}
		valid++
		data, err := MarshalProgram(p)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		got, err := UnmarshalProgram(data)
		if err != nil {
			t.Fatalf("trial %d: unmarshal: %v\nprogram: %s", trial, err, p)
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("trial %d: round trip mismatch:\n in:  %s\n out: %s", trial, p, got)
		}
	}
	if valid < 400 {
		t.Fatalf("only %d/500 generated programs were valid; generator too weak", valid)
	}
}

func TestRandomProgramsCompileForDatapath(t *testing.T) {
	// Every valid random program must be fully compilable the way the
	// datapath compiles it: fold to bytecode plus every instruction
	// expression against the fold's registers.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		p := randomProgram(rng)
		if err := p.Validate(); err != nil {
			continue
		}
		var regNames []string
		if p.Measure.Mode == MeasureFold {
			cf, err := CompileFold(p.Measure.Fold)
			if err != nil {
				t.Fatalf("trial %d: fold compile: %v", trial, err)
			}
			regNames = p.Measure.Fold.RegNames()
			// Folding random packets must not panic and registers must
			// stay finite-or-zero (the VM squashes NaN/Inf).
			vars := make([]float64, VarTableSize(cf.NumRegs()))
			cf.InitRegs(vars)
			for k := 0; k < 50; k++ {
				vars[PktFieldSlot(FieldRTT)] = rng.Float64() / 10
				vars[PktFieldSlot(FieldAcked)] = float64(rng.Intn(10000))
				cf.Step(vars)
			}
			for i := 0; i < cf.NumRegs(); i++ {
				v := vars[RegSlot(i)]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("trial %d: register %d became %v", trial, i, v)
				}
			}
		}
		resolve := StdResolver(regNames)
		for i, in := range p.Instrs {
			var e Expr
			switch n := in.(type) {
			case SetRate:
				e = n.E
			case SetCwnd:
				e = n.E
			case Wait:
				e = n.Seconds
			case WaitRtts:
				e = n.Rtts
			case Report:
				continue
			}
			if _, err := Compile(e, resolve); err != nil {
				t.Fatalf("trial %d instr %d: %v", trial, i, err)
			}
		}
	}
}
