package lang

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Lowering from the expression AST to register code, with the optimization
// pipeline the per-ACK hot path pays for:
//
//   - constant folding (through applyBin, so folded arithmetic is
//     bit-identical to the stack VM evaluating the same subtree),
//   - common-subexpression elimination by value numbering, valid across a
//     fold's update list (updates share packet fields and just-updated
//     registers; a register write invalidates exactly the values that
//     depended on it),
//   - superinstruction selection: var⊕const inline forms, the fused EWMA
//     shape a*x + b*y, and select-of-comparison, plus destination
//     retargeting so accumulator updates like `minrtt = min(minrtt, rtt)`
//     are a single instruction.
//
// Every emitted program passes verify before it is returned, which is what
// lets Run skip semantic checks entirely.

// operand is a value during compilation: either a known constant or a
// frame slot (variable or temp) holding it at runtime.
type operand struct {
	isConst bool
	cval    float64
	reg     uint16
}

func cOp(v float64) operand { return operand{isConst: true, cval: v} }
func rOp(s uint16) operand  { return operand{reg: s} }

// regCompiler lowers one compilation unit (a whole fold body or one
// control-program expression) sharing a const pool, a temp allocator, and
// a value-numbering table.
type regCompiler struct {
	resolve Resolver
	nvars   int
	insts   []RInst
	consts  []float64
	ntemps  int
	// memo maps value-number keys to the operand holding that value; keys
	// embed per-slot write versions, so a register write makes stale keys
	// unreachable instead of requiring invalidation scans on reads.
	memo map[string]operand
	// varVer counts writes per variable slot (for memo keys); memo values
	// that point AT a rewritten slot are purged eagerly on write.
	varVer map[uint16]int
}

func newRegCompiler(resolve Resolver, nvars int) *regCompiler {
	return &regCompiler{
		resolve: resolve,
		nvars:   nvars,
		memo:    make(map[string]operand),
		varVer:  make(map[uint16]int),
	}
}

func (rc *regCompiler) newTemp() (uint16, error) {
	slot := rc.nvars + rc.ntemps
	if slot > 0xFFFF {
		return 0, fmt.Errorf("lang: expression needs more than %d register slots", 0xFFFF)
	}
	rc.ntemps++
	return uint16(slot), nil
}

func (rc *regCompiler) constIndex(v float64) (uint16, error) {
	for i, existing := range rc.consts {
		if math.Float64bits(existing) == math.Float64bits(v) {
			return uint16(i), nil
		}
	}
	if len(rc.consts) > 0xFFFF {
		return 0, fmt.Errorf("lang: constant pool exceeds %d entries", 0xFFFF)
	}
	rc.consts = append(rc.consts, v)
	return uint16(len(rc.consts) - 1), nil
}

// okey renders an operand as a value-number key component. Variable slots
// embed their write version so a later write to the slot retires every key
// built over the old value.
func (rc *regCompiler) okey(o operand) string {
	if o.isConst {
		return "c" + strconv.FormatUint(math.Float64bits(o.cval), 16)
	}
	if int(o.reg) < rc.nvars {
		return "v" + strconv.Itoa(int(o.reg)) + "@" + strconv.Itoa(rc.varVer[o.reg])
	}
	return "t" + strconv.Itoa(int(o.reg))
}

// emit appends an instruction into a fresh temp and returns its operand.
func (rc *regCompiler) emit(in RInst) (operand, error) {
	t, err := rc.newTemp()
	if err != nil {
		return operand{}, err
	}
	in.Dst = t
	rc.insts = append(rc.insts, in)
	return rOp(t), nil
}

// emitMemo emits an instruction and records its value under key.
func (rc *regCompiler) emitMemo(key string, in RInst) (operand, error) {
	o, err := rc.emit(in)
	if err != nil {
		return operand{}, err
	}
	rc.memo[key] = o
	return o, nil
}

// materialize returns a frame slot holding o, emitting (and memoizing) an
// rConst for constants needed in register positions.
func (rc *regCompiler) materialize(o operand) (uint16, error) {
	if !o.isConst {
		return o.reg, nil
	}
	key := "m" + strconv.FormatUint(math.Float64bits(o.cval), 16)
	if hit, ok := rc.memo[key]; ok {
		return hit.reg, nil
	}
	idx, err := rc.constIndex(o.cval)
	if err != nil {
		return 0, err
	}
	reg, err := rc.emitMemo(key, RInst{Op: rConst, A: idx})
	if err != nil {
		return 0, err
	}
	return reg.reg, nil
}

// noteVarWrite records a write to variable slot s: bump the version (keys
// over the old value stop matching) and purge memo values that point at
// the slot itself (their home is about to change contents).
func (rc *regCompiler) noteVarWrite(s uint16) {
	rc.varVer[s]++
	for k, o := range rc.memo {
		if !o.isConst && o.reg == s {
			delete(rc.memo, k)
		}
	}
}

// compileExpr lowers e to an operand, folding constants and reusing
// already-computed values.
func (rc *regCompiler) compileExpr(e Expr) (operand, error) {
	switch n := e.(type) {
	case Const:
		return cOp(float64(n)), nil
	case Var:
		slot, ok := rc.resolve(string(n))
		if !ok {
			return operand{}, fmt.Errorf("lang: unknown variable %q", string(n))
		}
		if slot < 0 || slot >= rc.nvars {
			return operand{}, fmt.Errorf("lang: variable slot %d outside table of %d", slot, rc.nvars)
		}
		return rOp(uint16(slot)), nil
	case *Bin:
		return rc.compileBin(n)
	case *If:
		return rc.compileIf(n)
	default:
		return operand{}, fmt.Errorf("lang: cannot compile %T", e)
	}
}

// ewmaParts destructures Mul(c, x) / Mul(x, c) into (c, x). Multiplication
// is bitwise commutative here because every NaN result is squashed, so the
// fused form may fix the constant-first order.
func ewmaParts(e Expr) (coeff float64, x Expr, ok bool) {
	b, isBin := e.(*Bin)
	if !isBin || b.Op != OpMul {
		return 0, nil, false
	}
	if c, isC := b.L.(Const); isC {
		return float64(c), b.R, true
	}
	if c, isC := b.R.(Const); isC {
		return float64(c), b.L, true
	}
	return 0, nil, false
}

var rrOps = [numBinKinds]RegOp{
	OpAdd: rAdd, OpSub: rSub, OpMul: rMul, OpDiv: rDiv,
	OpMin: rMin, OpMax: rMax,
	OpLt: rLt, OpLe: rLe, OpGt: rGt, OpGe: rGe, OpEq: rEq, OpNe: rNe,
	OpAnd: rAnd, OpOr: rOr,
}

// rcOps maps BinKinds to their register⊕const superinstruction (And/Or are
// strength-reduced before reaching operand selection).
var rcOps = [numBinKinds]RegOp{
	OpAdd: rAddC, OpSub: rSubC, OpMul: rMulC, OpDiv: rDivC,
	OpMin: rMinC, OpMax: rMaxC,
	OpLt: rLtC, OpLe: rLeC, OpGt: rGtC, OpGe: rGeC, OpEq: rEqC, OpNe: rNeC,
}

// flipCmp mirrors a comparison so the constant moves to the right-hand
// side: c < x  ≡  x > c, and so on.
var flipCmp = map[BinKind]BinKind{
	OpLt: OpGt, OpLe: OpGe, OpGt: OpLt, OpGe: OpLe, OpEq: OpEq, OpNe: OpNe,
}

func isCmp(k BinKind) bool { return k >= OpLt && k <= OpNe }

func (rc *regCompiler) compileBin(n *Bin) (operand, error) {
	if n.Op >= numBinKinds {
		return operand{}, fmt.Errorf("lang: invalid binary op %d", n.Op)
	}
	// Fused EWMA: Add(Mul(a, x), Mul(b, y)) with constant coefficients.
	if n.Op == OpAdd {
		if ca, xe, okL := ewmaParts(n.L); okL {
			if cb, ye, okR := ewmaParts(n.R); okR {
				return rc.compileEwma(ca, xe, cb, ye)
			}
		}
	}
	l, err := rc.compileExpr(n.L)
	if err != nil {
		return operand{}, err
	}
	r, err := rc.compileExpr(n.R)
	if err != nil {
		return operand{}, err
	}
	return rc.binOperand(n.Op, l, r)
}

// binOperand selects the cheapest instruction for op over two compiled
// operands: full constant fold, algebraic strength reduction, inline-const
// superinstruction, or the generic register-register form.
func (rc *regCompiler) binOperand(op BinKind, l, r operand) (operand, error) {
	if l.isConst && r.isConst {
		return cOp(applyBin(op, l.cval, r.cval)), nil
	}
	// And/Or with one constant side reduce to a constant or a boolean
	// normalization of the other side (b2f(x != 0) == rNeC x, 0).
	if op == OpAnd || op == OpOr {
		if co, ro := constSide(l, r); co != nil {
			truthy := *co != 0
			if op == OpAnd && !truthy { // x and 0 == 0
				return cOp(0), nil
			}
			if op == OpOr && truthy { // x or 1 == 1
				return cOp(1), nil
			}
			// x and truthy == x or falsy == b2f(x != 0).
			return rc.binOperand(OpNe, ro, cOp(0))
		}
	}
	// x / 0 is 0 by definition; fold it even when x is unknown.
	if op == OpDiv && r.isConst && r.cval == 0 {
		return cOp(0), nil
	}
	// Canonicalize a constant onto the right: commutative ops swap,
	// comparisons flip; Sub/Div keep dedicated const-left forms.
	if l.isConst {
		switch {
		case op == OpAdd || op == OpMul || op == OpMin || op == OpMax || op == OpEq || op == OpNe:
			l, r = r, l
		case isCmp(op):
			op = flipCmp[op]
			l, r = r, l
		}
	}
	if r.isConst && !l.isConst && rcOps[op] != rNop {
		idx, err := rc.constIndex(r.cval)
		if err != nil {
			return operand{}, err
		}
		key := "B" + strconv.Itoa(int(op)) + ":" + rc.okey(l) + ":" + rc.okey(r)
		if hit, ok := rc.memo[key]; ok {
			return hit, nil
		}
		return rc.emitMemo(key, RInst{Op: rcOps[op], A: l.reg, B: idx})
	}
	if l.isConst {
		// Only Sub and Div reach here with a constant left operand.
		idx, err := rc.constIndex(l.cval)
		if err != nil {
			return operand{}, err
		}
		rop := rSubCR
		if op == OpDiv {
			rop = rDivCR
		}
		key := "B" + strconv.Itoa(int(op)) + ":" + rc.okey(l) + ":" + rc.okey(r)
		if hit, ok := rc.memo[key]; ok {
			return hit, nil
		}
		return rc.emitMemo(key, RInst{Op: rop, A: r.reg, B: idx})
	}
	key := "B" + strconv.Itoa(int(op)) + ":" + rc.okey(l) + ":" + rc.okey(r)
	if hit, ok := rc.memo[key]; ok {
		return hit, nil
	}
	return rc.emitMemo(key, RInst{Op: rrOps[op], A: l.reg, B: r.reg})
}

// constSide returns (constant, other) when exactly one operand is known.
func constSide(l, r operand) (*float64, operand) {
	if l.isConst && !r.isConst {
		return &l.cval, r
	}
	if r.isConst && !l.isConst {
		return &r.cval, l
	}
	return nil, operand{}
}

func (rc *regCompiler) compileEwma(ca float64, xe Expr, cb float64, ye Expr) (operand, error) {
	x, err := rc.compileExpr(xe)
	if err != nil {
		return operand{}, err
	}
	y, err := rc.compileExpr(ye)
	if err != nil {
		return operand{}, err
	}
	if x.isConst || y.isConst {
		// A constant factor makes half (or all) of the sum foldable; the
		// generic path handles it with full constant propagation.
		mx, err := rc.binOperand(OpMul, cOp(ca), x)
		if err != nil {
			return operand{}, err
		}
		my, err := rc.binOperand(OpMul, cOp(cb), y)
		if err != nil {
			return operand{}, err
		}
		return rc.binOperand(OpAdd, mx, my)
	}
	ia, err := rc.constIndex(ca)
	if err != nil {
		return operand{}, err
	}
	ib, err := rc.constIndex(cb)
	if err != nil {
		return operand{}, err
	}
	key := "E" + strconv.Itoa(int(ia)) + ":" + rc.okey(x) + ":" + strconv.Itoa(int(ib)) + ":" + rc.okey(y)
	if hit, ok := rc.memo[key]; ok {
		return hit, nil
	}
	return rc.emitMemo(key, RInst{Op: rEwma, A: x.reg, B: ia, C: y.reg, D: ib})
}

var selCmpOps = map[BinKind]RegOp{
	OpLt: rSelLt, OpLe: rSelLe, OpGt: rSelGt, OpGe: rSelGe, OpEq: rSelEq, OpNe: rSelNe,
}

func (rc *regCompiler) compileIf(n *If) (operand, error) {
	// Fused select-of-comparison: If((l cmp r), then, else) in one dispatch.
	if cb, ok := n.Cond.(*Bin); ok && isCmp(cb.Op) {
		l, err := rc.compileExpr(cb.L)
		if err != nil {
			return operand{}, err
		}
		r, err := rc.compileExpr(cb.R)
		if err != nil {
			return operand{}, err
		}
		if l.isConst && r.isConst {
			return rc.compileBranch(applyBin(cb.Op, l.cval, r.cval) != 0, n)
		}
		th, err := rc.compileExpr(n.Then)
		if err != nil {
			return operand{}, err
		}
		el, err := rc.compileExpr(n.Else)
		if err != nil {
			return operand{}, err
		}
		op := cb.Op
		if l.isConst {
			op = flipCmp[op]
			l, r = r, l
		}
		la, err := rc.materialize(l)
		if err != nil {
			return operand{}, err
		}
		rb, err := rc.materialize(r)
		if err != nil {
			return operand{}, err
		}
		tc, err := rc.materialize(th)
		if err != nil {
			return operand{}, err
		}
		ed, err := rc.materialize(el)
		if err != nil {
			return operand{}, err
		}
		key := strings.Join([]string{"S", strconv.Itoa(int(op)), rc.okey(rOp(la)), rc.okey(rOp(rb)), rc.okey(rOp(tc)), rc.okey(rOp(ed))}, ":")
		if hit, ok := rc.memo[key]; ok {
			return hit, nil
		}
		return rc.emitMemo(key, RInst{Op: selCmpOps[op], A: la, B: rb, C: tc, D: ed})
	}
	cond, err := rc.compileExpr(n.Cond)
	if err != nil {
		return operand{}, err
	}
	if cond.isConst {
		return rc.compileBranch(cond.cval != 0, n)
	}
	th, err := rc.compileExpr(n.Then)
	if err != nil {
		return operand{}, err
	}
	el, err := rc.compileExpr(n.Else)
	if err != nil {
		return operand{}, err
	}
	tb, err := rc.materialize(th)
	if err != nil {
		return operand{}, err
	}
	eb, err := rc.materialize(el)
	if err != nil {
		return operand{}, err
	}
	key := strings.Join([]string{"I", rc.okey(cond), rc.okey(rOp(tb)), rc.okey(rOp(eb))}, ":")
	if hit, ok := rc.memo[key]; ok {
		return hit, nil
	}
	return rc.emitMemo(key, RInst{Op: rSel, A: cond.reg, B: tb, C: eb})
}

// compileBranch resolves an If whose condition folded to a constant. Both
// branches are pure (the stack VM evaluates both and discards one), so
// compiling only the taken branch is value-identical.
func (rc *regCompiler) compileBranch(takeThen bool, n *If) (operand, error) {
	if takeThen {
		return rc.compileExpr(n.Then)
	}
	return rc.compileExpr(n.Else)
}

// compileAssign lowers `dst = e`, steering the final instruction's
// destination straight into the register slot when possible (this is what
// turns `minrtt = min(minrtt, rtt)` into a single accumulate instruction).
func (rc *regCompiler) compileAssign(dst uint16, e Expr) error {
	o, err := rc.compileExpr(e)
	if err != nil {
		return err
	}
	// Retire every cached value the old register contents backed.
	rc.noteVarWrite(dst)
	switch {
	case o.isConst:
		idx, err := rc.constIndex(o.cval)
		if err != nil {
			return err
		}
		rc.insts = append(rc.insts, RInst{Op: rConst, Dst: dst, A: idx})
	case o.reg == dst:
		// dst = dst: the value is already home; the write is a no-op.
	case int(o.reg) >= rc.nvars && len(rc.insts) > 0 && rc.insts[len(rc.insts)-1].Dst == o.reg:
		// The value was just computed into a fresh temp nothing else has
		// read yet: retarget the producing instruction to write the
		// register directly, and remap memo entries so CSE keeps working
		// against the value's new home.
		rc.insts[len(rc.insts)-1].Dst = dst
		for k, m := range rc.memo {
			if !m.isConst && m.reg == o.reg {
				rc.memo[k] = rOp(dst)
			}
		}
	default:
		rc.insts = append(rc.insts, RInst{Op: rMov, Dst: dst, A: o.reg})
	}
	return nil
}

// finish packages the compiled unit and runs the compile-time verifier.
func (rc *regCompiler) finish(result uint16, allowedVarDsts map[uint16]bool) (*RegCode, error) {
	code := &RegCode{
		Insts:    rc.insts,
		Consts:   rc.consts,
		NVars:    rc.nvars,
		FrameLen: rc.nvars + rc.ntemps,
		Result:   result,
	}
	if err := code.verify(allowedVarDsts); err != nil {
		return nil, err
	}
	code.scratch = make([]float64, code.FrameLen)
	return code, nil
}

// CompileReg lowers a single expression to optimized register code against
// the standard variable-table layout (nvars slots resolved by resolve,
// which must be a StdResolver-compatible mapping). The result is the
// fast-path twin of Compile's stack bytecode.
func CompileReg(e Expr, resolve Resolver, nvars int) (*RegCode, error) {
	rc := newRegCompiler(resolve, nvars)
	o, err := rc.compileExpr(e)
	if err != nil {
		return nil, err
	}
	res, err := rc.materialize(o)
	if err != nil {
		return nil, err
	}
	return rc.finish(res, nil)
}

// compileFoldReg lowers a whole fold body — every update, in order — into
// one register program, so per-ACK execution is a single instruction-stream
// walk and CSE spans the update list.
func compileFoldReg(f *FoldSpec) (*RegCode, error) {
	resolve := StdResolver(f.regNames())
	nvars := VarTableSize(len(f.Regs))
	rc := newRegCompiler(resolve, nvars)
	allowed := make(map[uint16]bool, len(f.Regs))
	for i := range f.Regs {
		allowed[uint16(RegSlot(i))] = true
	}
	for _, a := range f.Updates {
		slot, ok := resolve(a.Dst)
		if !ok {
			return nil, fmt.Errorf("lang: assignment to unknown register %q", a.Dst)
		}
		if err := rc.compileAssign(uint16(slot), a.E); err != nil {
			return nil, err
		}
	}
	// A fold body's effects are its register writes; Result is unused, and
	// slot 0 always exists (the table starts with the packet fields).
	return rc.finish(0, allowed)
}
