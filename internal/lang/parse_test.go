package lang

import (
	"math"
	"strings"
	"testing"
)

func TestParseFoldVegas(t *testing.T) {
	src := `
	(def (base_rtt 1e9) (delta 0))
	(:= base_rtt (min base_rtt pkt.rtt))
	(:= delta (if (< (/ (* (- pkt.rtt base_rtt) cwnd) (max base_rtt 1e-9)) 2)
	              (+ delta 1)
	              (if (> (/ (* (- pkt.rtt base_rtt) cwnd) (max base_rtt 1e-9)) 4)
	                  (- delta 1)
	                  delta)))`
	f, err := ParseFold(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Regs) != 2 || f.Regs[0].Name != "base_rtt" || f.Regs[0].Init != 1e9 {
		t.Fatalf("regs=%+v", f.Regs)
	}
	if len(f.Updates) != 2 {
		t.Fatalf("updates=%d", len(f.Updates))
	}
	// Parsed fold must behave identically to the hand-built one.
	cf, err := CompileFold(f)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := CompileFold(vegasFold())
	if err != nil {
		t.Fatal(err)
	}
	for _, rtt := range []float64{0.1, 0.15, 0.13, 0.09, 0.2} {
		varsA := make([]float64, VarTableSize(2))
		varsB := make([]float64, VarTableSize(2))
		cf.InitRegs(varsA)
		ref.InitRegs(varsB)
		varsA[FlowVarSlot(FlowCwnd)] = 10
		varsB[FlowVarSlot(FlowCwnd)] = 10
		varsA[PktFieldSlot(FieldRTT)] = rtt
		varsB[PktFieldSlot(FieldRTT)] = rtt
		cf.Step(varsA)
		ref.Step(varsB)
		if varsA[RegSlot(1)] != varsB[RegSlot(1)] {
			t.Fatalf("rtt=%v: parsed=%v built=%v", rtt, varsA[RegSlot(1)], varsB[RegSlot(1)])
		}
	}
}

func TestParseFoldErrors(t *testing.T) {
	cases := []string{
		"",                                // empty
		"(:= a 1)",                        // no def
		"(def (a))",                       // missing init
		"(def (a 0)) (:= b 1)",            // undeclared target
		"(def (a 0)) (:= a (+ 1))",        // arity
		"(def (a 0)) (:= a (frob 1 2))",   // unknown op
		"(def (a 0)) (:= a (if 1 2))",     // if arity
		"(def (a 0)) (:= a (+ 1 2",        // unclosed
		"(def (a 0)) ) ",                  // stray paren
		"(def (cwnd 0)) (:= cwnd 1)",      // reserved
		"(def (a zero))",                  // non-numeric init
		"(def (a 0)) (:= a unknown_var)",  // unknown var
		"(def (a 0)) (:= a 1) ; trailing", // comment unsupported
	}
	for _, src := range cases {
		if _, err := ParseFold(src); err == nil {
			t.Errorf("ParseFold(%q) succeeded, want error", src)
		}
	}
}

func TestParseExprSexpr(t *testing.T) {
	e, err := ParseExpr("(+ (* 2 cwnd) (min srtt 0.5))")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(e, env(map[string]float64{"cwnd": 10, "srtt": 0.3}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 20.3 {
		t.Fatalf("got %v", got)
	}
}

func TestParseProgramBBRSyntax(t *testing.T) {
	src := `Rate(1.25*rate).WaitRtts(1.0).Report().
	        Rate(0.75*rate).WaitRtts(1.0).Report().
	        Rate(rate).WaitRtts(6.0).Report()`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 9 {
		t.Fatalf("instrs=%d, want 9", len(p.Instrs))
	}
	sr, ok := p.Instrs[0].(SetRate)
	if !ok {
		t.Fatalf("instr 0 is %T", p.Instrs[0])
	}
	got, err := Eval(sr.E, env(map[string]float64{"rate": 100}))
	if err != nil || got != 125 {
		t.Fatalf("rate expr => %v, %v", got, err)
	}
	wr, ok := p.Instrs[7].(WaitRtts)
	if !ok {
		t.Fatalf("instr 7 is %T", p.Instrs[7])
	}
	if v, _ := Eval(wr.Rtts, env(nil)); v != 6 {
		t.Fatalf("WaitRtts=%v", v)
	}
}

func TestParseProgramMeasureVector(t *testing.T) {
	p, err := ParseProgram("Measure(rtt, acked, ecn).Cwnd(cwnd).WaitRtts(1).Report()")
	if err != nil {
		t.Fatal(err)
	}
	if p.Measure.Mode != MeasureVector || len(p.Measure.Fields) != 3 {
		t.Fatalf("measure=%+v", p.Measure)
	}
	if p.Measure.Fields[0] != FieldRTT || p.Measure.Fields[2] != FieldECN {
		t.Fatalf("fields=%v", p.Measure.Fields)
	}
}

func TestParseProgramMeasureEmptyIsEWMA(t *testing.T) {
	p, err := ParseProgram("Measure().WaitRtts(1).Report()")
	if err != nil {
		t.Fatal(err)
	}
	if p.Measure.Mode != MeasureEWMA {
		t.Fatalf("mode=%v", p.Measure.Mode)
	}
}

func TestParseProgramFunctionsAndPrecedence(t *testing.T) {
	p, err := ParseProgram("Cwnd(max(2*mss, cwnd/2 + mss)).Report()")
	if err != nil {
		t.Fatal(err)
	}
	sc := p.Instrs[0].(SetCwnd)
	got, err := Eval(sc.E, env(map[string]float64{"mss": 1000, "cwnd": 10000}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 6000 {
		t.Fatalf("got %v, want 6000", got)
	}
}

func TestParseProgramIfAndComparison(t *testing.T) {
	p, err := ParseProgram("Cwnd(if(srtt > 0.1, cwnd/2, cwnd + mss))")
	if err != nil {
		t.Fatal(err)
	}
	sc := p.Instrs[0].(SetCwnd)
	got, _ := Eval(sc.E, env(map[string]float64{"srtt": 0.2, "cwnd": 100, "mss": 10}))
	if got != 50 {
		t.Fatalf("got %v", got)
	}
	got, _ = Eval(sc.E, env(map[string]float64{"srtt": 0.05, "cwnd": 100, "mss": 10}))
	if got != 110 {
		t.Fatalf("got %v", got)
	}
}

func TestParseProgramUnaryMinus(t *testing.T) {
	p, err := ParseProgram("Rate(-2 * rate + 300)")
	if err != nil {
		t.Fatal(err)
	}
	sr := p.Instrs[0].(SetRate)
	got, _ := Eval(sr.E, env(map[string]float64{"rate": 100}))
	if got != 100 {
		t.Fatalf("got %v", got)
	}
}

func TestParseProgramUrgentECN(t *testing.T) {
	p, err := ParseProgram("UrgentECN().Cwnd(cwnd).WaitRtts(1).Report()")
	if err != nil {
		t.Fatal(err)
	}
	if !p.UrgentECN {
		t.Fatal("UrgentECN not parsed")
	}
}

func TestParseProgramErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"Frobnicate(1)",        // unknown statement
		"Rate(1.25*rate",       // unclosed paren
		"Rate()",               // empty expr
		"Rate(1) Rate(2)",      // missing separator
		"Rate(unknown_thing)",  // unknown var (validation)
		"Measure(bogus_field)", // unknown field
		"Rate(min(1))",         // arity
		"Rate(if(1,2))",        // if arity
		"Rate(1 @ 2)",          // bad char
		"Rate(frob(1,2))",      // unknown function
		"Report().Report",      // trailing junk without parens
		"Rate(1=2)",            // single '='
	}
	for _, src := range cases {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want error", src)
		}
	}
}

func TestParseInfixExprStandalone(t *testing.T) {
	e, err := ParseInfixExpr("(cwnd + mss) / 2")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Eval(e, env(map[string]float64{"cwnd": 10, "mss": 4}))
	if got != 7 {
		t.Fatalf("got %v", got)
	}
	if _, err := ParseInfixExpr("1 + "); err == nil {
		t.Fatal("truncated expr accepted")
	}
	if _, err := ParseInfixExpr("1 2"); err == nil {
		t.Fatal("trailing tokens accepted")
	}
}

func TestParseNumberForms(t *testing.T) {
	for _, src := range []string{"Rate(1e6)", "Rate(2.5e-3)", "Rate(0.5)", "Rate(10)"} {
		if _, err := ParseProgram(src); err != nil {
			t.Errorf("ParseProgram(%q): %v", src, err)
		}
	}
	e, err := ParseInfixExpr("2.5e2")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := Eval(e, env(nil)); math.Abs(got-250) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestParseProgramRoundTripString(t *testing.T) {
	// String() of a parsed program mentions each primitive used.
	p, err := ParseProgram("Measure(rtt).Cwnd(cwnd + mss).Wait(0.01).Report()")
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, frag := range []string{"Measure(rtt)", "Cwnd", "Wait", "Report()"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String()=%q missing %q", s, frag)
		}
	}
}
