package lang

import "fmt"

// RegDef declares a fold register: named state initialized to Init each time
// the fold is (re)started — at install and after every Report.
type RegDef struct {
	Name string
	Init float64
}

// Assign updates register Dst with the value of E. Assignments run in order;
// later assignments observe earlier ones within the same packet (matching
// the paper's Vegas fold example, where inQ uses the just-updated baseRtt).
type Assign struct {
	Dst string
	E   Expr
}

// FoldSpec is a fold function (§2.4): bounded per-flow measurement state
// plus an update rule applied per acknowledged packet in the datapath.
type FoldSpec struct {
	Regs    []RegDef
	Updates []Assign
}

// Validate checks register naming and that every update targets a declared
// register and references only resolvable variables.
func (f *FoldSpec) Validate() error {
	seen := map[string]bool{}
	for _, r := range f.Regs {
		if r.Name == "" {
			return fmt.Errorf("lang: empty register name")
		}
		if Reserved(r.Name) {
			return fmt.Errorf("lang: register %q collides with a built-in variable", r.Name)
		}
		if seen[r.Name] {
			return fmt.Errorf("lang: duplicate register %q", r.Name)
		}
		seen[r.Name] = true
	}
	resolve := StdResolver(f.regNames())
	for _, a := range f.Updates {
		if !seen[a.Dst] {
			return fmt.Errorf("lang: assignment to undeclared register %q", a.Dst)
		}
		for _, v := range Vars(a.E) {
			if _, ok := resolve(v); !ok {
				return fmt.Errorf("lang: fold references unknown variable %q", v)
			}
		}
	}
	return nil
}

func (f *FoldSpec) regNames() []string {
	names := make([]string, len(f.Regs))
	for i, r := range f.Regs {
		names[i] = r.Name
	}
	return names
}

// RegNames returns the register names in declaration (report) order.
func (f *FoldSpec) RegNames() []string { return f.regNames() }

// CompiledFold is a FoldSpec lowered to bytecode for per-ACK execution.
type CompiledFold struct {
	Spec  *FoldSpec
	codes []*Code
	dsts  []int // variable-table slots of each update's destination
	stack []float64
}

// CompileFold validates and compiles f.
func CompileFold(f *FoldSpec) (*CompiledFold, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	resolve := StdResolver(f.regNames())
	cf := &CompiledFold{Spec: f}
	maxStack := 0
	for _, a := range f.Updates {
		code, err := Compile(a.E, resolve)
		if err != nil {
			return nil, err
		}
		slot, _ := resolve(a.Dst)
		cf.codes = append(cf.codes, code)
		cf.dsts = append(cf.dsts, slot)
		if code.MaxStack > maxStack {
			maxStack = code.MaxStack
		}
	}
	cf.stack = make([]float64, 0, maxStack)
	return cf, nil
}

// NumRegs returns the number of registers.
func (cf *CompiledFold) NumRegs() int { return len(cf.Spec.Regs) }

// InitRegs resets the register slots of vars to their declared initial
// values. vars must be a full variable table (VarTableSize(NumRegs())).
func (cf *CompiledFold) InitRegs(vars []float64) {
	for i, r := range cf.Spec.Regs {
		vars[RegSlot(i)] = r.Init
	}
}

// Step folds one packet into the registers. vars holds the current packet
// fields, flow variables, and registers; register slots are updated in
// place. Allocation-free.
func (cf *CompiledFold) Step(vars []float64) {
	for i, code := range cf.codes {
		vars[cf.dsts[i]] = code.Eval(vars, cf.stack)
	}
}

// ReadRegs copies the register values out of vars in declaration order,
// appending to dst.
func (cf *CompiledFold) ReadRegs(vars []float64, dst []float64) []float64 {
	for i := range cf.Spec.Regs {
		dst = append(dst, vars[RegSlot(i)])
	}
	return dst
}
