package lang

import "fmt"

// RegDef declares a fold register: named state initialized to Init each time
// the fold is (re)started — at install and after every Report.
type RegDef struct {
	Name string
	Init float64
}

// Assign updates register Dst with the value of E. Assignments run in order;
// later assignments observe earlier ones within the same packet (matching
// the paper's Vegas fold example, where inQ uses the just-updated baseRtt).
type Assign struct {
	Dst string
	E   Expr
}

// FoldSpec is a fold function (§2.4): bounded per-flow measurement state
// plus an update rule applied per acknowledged packet in the datapath.
type FoldSpec struct {
	Regs    []RegDef
	Updates []Assign
}

// Validate checks register naming and that every update targets a declared
// register and references only resolvable variables.
func (f *FoldSpec) Validate() error {
	seen := map[string]bool{}
	for _, r := range f.Regs {
		if r.Name == "" {
			return fmt.Errorf("lang: empty register name")
		}
		if Reserved(r.Name) {
			return fmt.Errorf("lang: register %q collides with a built-in variable", r.Name)
		}
		if seen[r.Name] {
			return fmt.Errorf("lang: duplicate register %q", r.Name)
		}
		seen[r.Name] = true
	}
	resolve := StdResolver(f.regNames())
	for _, a := range f.Updates {
		if !seen[a.Dst] {
			return fmt.Errorf("lang: assignment to undeclared register %q", a.Dst)
		}
		for _, v := range Vars(a.E) {
			if _, ok := resolve(v); !ok {
				return fmt.Errorf("lang: fold references unknown variable %q", v)
			}
		}
	}
	return nil
}

func (f *FoldSpec) regNames() []string {
	names := make([]string, len(f.Regs))
	for i, r := range f.Regs {
		names[i] = r.Name
	}
	return names
}

// RegNames returns the register names in declaration (report) order.
func (f *FoldSpec) RegNames() []string { return f.regNames() }

// Backend selects the execution engine for compiled folds and expressions.
// The register VM is the default per-ACK engine; the stack interpreter is
// kept as the reference implementation the differential fuzz target
// compares against (and as an escape hatch).
type Backend uint8

const (
	// BackendRegister runs the three-address register VM (regvm.go).
	BackendRegister Backend = iota
	// BackendStack runs the reference stack interpreter (compile.go).
	BackendStack
)

// CompiledFold is a FoldSpec lowered to bytecode for per-ACK execution.
// Both backends are compiled; Step dispatches on the selected one.
type CompiledFold struct {
	Spec    *FoldSpec
	backend Backend
	reg     *RegCode // whole fold body as one register program
	codes   []*Code  // stack reference: one program per update
	dsts    []int    // variable-table slots of each update's destination
	stack   []float64
}

// CompileFold validates and compiles f for the default register backend.
func CompileFold(f *FoldSpec) (*CompiledFold, error) {
	return CompileFoldBackend(f, BackendRegister)
}

// CompileFoldBackend validates and compiles f, selecting the Step engine.
// Both engines are always compiled — the stack programs double as the
// reference for differential testing — so backend choice never changes
// what validates.
func CompileFoldBackend(f *FoldSpec, backend Backend) (*CompiledFold, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	resolve := StdResolver(f.regNames())
	cf := &CompiledFold{Spec: f, backend: backend}
	maxStack := 0
	for _, a := range f.Updates {
		code, err := Compile(a.E, resolve)
		if err != nil {
			return nil, err
		}
		slot, _ := resolve(a.Dst)
		cf.codes = append(cf.codes, code)
		cf.dsts = append(cf.dsts, slot)
		if code.MaxStack > maxStack {
			maxStack = code.MaxStack
		}
	}
	cf.stack = make([]float64, 0, maxStack)
	reg, err := compileFoldReg(f)
	if err != nil {
		return nil, err
	}
	cf.reg = reg
	return cf, nil
}

// NumRegs returns the number of registers.
func (cf *CompiledFold) NumRegs() int { return len(cf.Spec.Regs) }

// Backend returns the engine Step dispatches to.
func (cf *CompiledFold) Backend() Backend { return cf.backend }

// FrameLen returns the register-VM frame size: the variable table plus the
// fold's temporaries. Callers that size vars to FrameLen (instead of the
// minimum VarTableSize) get the zero-copy Step fast path; the extra slots
// are scratch the datapath never reads.
func (cf *CompiledFold) FrameLen() int { return cf.reg.FrameLen }

// InitRegs resets the register slots of vars to their declared initial
// values. vars must be a full variable table (VarTableSize(NumRegs())).
func (cf *CompiledFold) InitRegs(vars []float64) {
	for i, r := range cf.Spec.Regs {
		vars[RegSlot(i)] = r.Init
	}
}

// Step folds one packet into the registers. vars holds the current packet
// fields, flow variables, and registers (at least VarTableSize(NumRegs())
// slots); register slots are updated in place. Allocation-free on both
// backends; on the register backend, vars of FrameLen() slots additionally
// skip the staging copy.
func (cf *CompiledFold) Step(vars []float64) {
	if cf.backend == BackendStack {
		for i, code := range cf.codes {
			vars[cf.dsts[i]] = code.Eval(vars, cf.stack)
		}
		return
	}
	if len(vars) >= cf.reg.FrameLen {
		cf.reg.Run(vars)
		return
	}
	// vars covers the variable table but not the temp slots: stage into the
	// compile-time scratch frame and copy the register slots that fit back
	// (an undersized table simply cannot observe the trailing registers).
	f := cf.reg.shortFrame(vars)
	cf.reg.Run(f)
	if lo, hi := RegSlot(0), min(cf.reg.NVars, len(vars)); hi > lo {
		copy(vars[lo:hi], f[lo:hi])
	}
}

// ReadRegs copies the register values out of vars in declaration order,
// appending to dst.
func (cf *CompiledFold) ReadRegs(vars []float64, dst []float64) []float64 {
	for i := range cf.Spec.Regs {
		dst = append(dst, vars[RegSlot(i)])
	}
	return dst
}
