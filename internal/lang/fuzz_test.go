package lang

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzStackVsRegister is the differential harness pinning the register VM
// to the reference stack interpreter (the CC-Fuzz idea applied to our two
// backends): a seeded random program is compiled through both pipelines
// and driven over a seeded random packet stream — including NaN/Inf/zero
// specials — and every fold register after every packet, plus every
// control-expression value, must match bit for bit.
func FuzzStackVsRegister(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, seed*7+1)
	}
	f.Fuzz(func(t *testing.T, progSeed, streamSeed int64) {
		rng := rand.New(rand.NewSource(progSeed))
		p := randomProgram(rng)
		if p.Validate() != nil {
			t.Skip("generator produced an invalid program")
		}
		var regNames []string
		if p.Measure.Mode == MeasureFold {
			regNames = p.Measure.Fold.RegNames()
			diffFold(t, p.Measure.Fold, uint64(streamSeed))
		}
		diffCtrlExprs(t, p, regNames, uint64(streamSeed))
	})
}

// diffFold steps the fold through both backends over the same packet
// stream and requires bit-identical registers after every packet.
func diffFold(t *testing.T, spec *FoldSpec, seed uint64) {
	t.Helper()
	cfS, err := CompileFoldBackend(spec, BackendStack)
	if err != nil {
		t.Fatalf("stack compile: %v", err)
	}
	cfR, err := CompileFoldBackend(spec, BackendRegister)
	if err != nil {
		t.Fatalf("register compile: %v", err)
	}
	nregs := len(spec.Regs)
	vs := make([]float64, VarTableSize(nregs))
	vr := make([]float64, cfR.FrameLen())
	cfS.InitRegs(vs)
	cfR.InitRegs(vr)
	src := newSpecialSource(seed)
	for p := 0; p < 64; p++ {
		for fi := 0; fi < VarTableSize(0); fi++ {
			v := src.next()
			vs[fi] = v
			vr[fi] = v
		}
		cfS.Step(vs)
		cfR.Step(vr)
		for i := 0; i < nregs; i++ {
			a, b := vs[RegSlot(i)], vr[RegSlot(i)]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("packet %d register %q: stack=%v (%#x) register=%v (%#x)\nupdates: %v",
					p, spec.Regs[i].Name, a, math.Float64bits(a), b, math.Float64bits(b), spec.Updates)
			}
		}
	}
}

// diffCtrlExprs compiles every control-program expression through both
// backends and compares values over random variable tables.
func diffCtrlExprs(t *testing.T, p *Program, regNames []string, seed uint64) {
	t.Helper()
	resolve := StdResolver(regNames)
	nvars := VarTableSize(len(regNames))
	src := newSpecialSource(seed ^ 0x9e3779b97f4a7c15)
	for idx, in := range p.Instrs {
		var e Expr
		switch n := in.(type) {
		case SetRate:
			e = n.E
		case SetCwnd:
			e = n.E
		case Wait:
			e = n.Seconds
		case WaitRtts:
			e = n.Rtts
		case Report:
			continue
		}
		stack, err := Compile(e, resolve)
		if err != nil {
			t.Fatalf("instr %d: stack compile: %v", idx, err)
		}
		reg, err := CompileReg(e, resolve, nvars)
		if err != nil {
			t.Fatalf("instr %d: register compile: %v", idx, err)
		}
		frame := make([]float64, reg.FrameLen)
		vars := make([]float64, nvars)
		for trial := 0; trial < 16; trial++ {
			for i := range vars {
				vars[i] = src.next()
			}
			copy(frame, vars)
			for i := nvars; i < len(frame); i++ {
				frame[i] = 0
			}
			sv := stack.Eval(vars, nil)
			rv := reg.Eval(frame)
			if math.Float64bits(sv) != math.Float64bits(rv) {
				t.Fatalf("instr %d trial %d: %s\nstack=%v (%#x) register=%v (%#x)",
					idx, trial, e, sv, math.Float64bits(sv), rv, math.Float64bits(rv))
			}
		}
	}
}

// specialSource is a deterministic xorshift64 stream biased toward the
// values that break floating-point identities: NaN, ±Inf, zeros, and
// denormal-scale magnitudes alongside ordinary field values.
type specialSource struct{ x uint64 }

func newSpecialSource(seed uint64) *specialSource {
	return &specialSource{x: seed | 1}
}

func (s *specialSource) next() float64 {
	s.x ^= s.x << 13
	s.x ^= s.x >> 7
	s.x ^= s.x << 17
	switch s.x % 20 {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	case 3:
		return 0
	case 4:
		return math.Copysign(0, -1)
	case 5:
		return math.MaxFloat64
	case 6:
		return 5e-324 // smallest denormal
	case 7:
		return -float64(s.x%1000) / 8
	default:
		return float64(s.x%1000000) / 128
	}
}
