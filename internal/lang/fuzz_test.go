package lang_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	. "github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/lang/absint"
)

// FuzzStackVsRegister is the differential harness pinning the register VM
// to the reference stack interpreter (the CC-Fuzz idea applied to our two
// backends): a seeded random program is compiled through both pipelines
// and driven over a seeded random packet stream — including NaN/Inf/zero
// specials — and every fold register after every packet, plus every
// control-expression value, must match bit for bit.
//
// The same program and stream also exercise the verifier's soundness
// contract (verifySoundness): a location the abstract interpretation left
// unflagged must never hit the runtime's defensive substitutions when run
// concretely.
func FuzzStackVsRegister(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, seed*7+1)
	}
	f.Fuzz(func(t *testing.T, progSeed, streamSeed int64) {
		rng := rand.New(rand.NewSource(progSeed))
		p := randomProgram(rng)
		if p.Validate() != nil {
			t.Skip("generator produced an invalid program")
		}
		var regNames []string
		if p.Measure.Mode == MeasureFold {
			regNames = p.Measure.Fold.RegNames()
			diffFold(t, p.Measure.Fold, uint64(streamSeed))
		}
		diffCtrlExprs(t, p, regNames, uint64(streamSeed))
		verifySoundness(t, p, uint64(streamSeed))
	})
}

// diffFold steps the fold through both backends over the same packet
// stream and requires bit-identical registers after every packet.
func diffFold(t *testing.T, spec *FoldSpec, seed uint64) {
	t.Helper()
	cfS, err := CompileFoldBackend(spec, BackendStack)
	if err != nil {
		t.Fatalf("stack compile: %v", err)
	}
	cfR, err := CompileFoldBackend(spec, BackendRegister)
	if err != nil {
		t.Fatalf("register compile: %v", err)
	}
	nregs := len(spec.Regs)
	vs := make([]float64, VarTableSize(nregs))
	vr := make([]float64, cfR.FrameLen())
	cfS.InitRegs(vs)
	cfR.InitRegs(vr)
	src := newSpecialSource(seed)
	for p := 0; p < 64; p++ {
		for fi := 0; fi < VarTableSize(0); fi++ {
			v := src.next()
			vs[fi] = v
			vr[fi] = v
		}
		cfS.Step(vs)
		cfR.Step(vr)
		for i := 0; i < nregs; i++ {
			a, b := vs[RegSlot(i)], vr[RegSlot(i)]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("packet %d register %q: stack=%v (%#x) register=%v (%#x)\nupdates: %v",
					p, spec.Regs[i].Name, a, math.Float64bits(a), b, math.Float64bits(b), spec.Updates)
			}
		}
	}
}

// diffCtrlExprs compiles every control-program expression through both
// backends and compares values over random variable tables.
func diffCtrlExprs(t *testing.T, p *Program, regNames []string, seed uint64) {
	t.Helper()
	resolve := StdResolver(regNames)
	nvars := VarTableSize(len(regNames))
	src := newSpecialSource(seed ^ 0x9e3779b97f4a7c15)
	for idx, in := range p.Instrs {
		var e Expr
		switch n := in.(type) {
		case SetRate:
			e = n.E
		case SetCwnd:
			e = n.E
		case Wait:
			e = n.Seconds
		case WaitRtts:
			e = n.Rtts
		case Report:
			continue
		}
		stack, err := Compile(e, resolve)
		if err != nil {
			t.Fatalf("instr %d: stack compile: %v", idx, err)
		}
		reg, err := CompileReg(e, resolve, nvars)
		if err != nil {
			t.Fatalf("instr %d: register compile: %v", idx, err)
		}
		frame := make([]float64, reg.FrameLen)
		vars := make([]float64, nvars)
		for trial := 0; trial < 16; trial++ {
			for i := range vars {
				vars[i] = src.next()
			}
			copy(frame, vars)
			for i := nvars; i < len(frame); i++ {
				frame[i] = 0
			}
			sv := stack.Eval(vars, nil)
			rv := reg.Eval(frame)
			if math.Float64bits(sv) != math.Float64bits(rv) {
				t.Fatalf("instr %d trial %d: %s\nstack=%v (%#x) register=%v (%#x)",
					idx, trial, e, sv, math.Float64bits(sv), rv, math.Float64bits(rv))
			}
		}
	}
}

// verifySoundness checks the Install-gate verifier against ground truth:
// analyze the program under the adversarial profile (every input
// unconstrained, NaN and ±Inf included), then run it concretely over a
// specials-biased stream. Soundness means the verifier's silence is a
// guarantee — a fold update or instruction with no div-zero finding must
// never hit the runtime's x/0 substitution, and a Cwnd/Rate write with no
// nan-write/bounds finding must produce an in-range, non-NaN value. A
// failure here is a verifier bug (a missed over-approximation), the exact
// class of bug that would let a bad program through the Install gate.
func verifySoundness(t *testing.T, p *Program, seed uint64) {
	t.Helper()
	rep, err := absint.Analyze(p, absint.Adversarial())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	// Index findings by check and location: "kind/index" per Where.
	flagged := make(map[string]bool)
	for _, fd := range rep.Findings {
		flagged[fd.Check+"@"+fd.Where.Kind+"/"+fmt.Sprint(fd.Where.Index)] = true
	}
	has := func(check, kind string, idx int) bool {
		return flagged[check+"@"+kind+"/"+fmt.Sprint(idx)]
	}

	var cf *CompiledFold
	var regNames []string
	if p.Measure.Mode == MeasureFold {
		regNames = p.Measure.Fold.RegNames()
		cf, err = CompileFoldBackend(p.Measure.Fold, BackendStack)
		if err != nil {
			t.Fatalf("fold compile: %v", err)
		}
	}
	resolve := StdResolver(regNames)
	nvars := VarTableSize(len(regNames))
	vars := make([]float64, nvars) // driven by EvalTrace
	ref := make([]float64, nvars)  // driven by the stack VM, for cross-checking
	env := func(name string) (float64, bool) {
		slot, ok := resolve(name)
		if !ok {
			return 0, false
		}
		return vars[slot], true
	}
	if cf != nil {
		cf.InitRegs(vars)
		cf.InitRegs(ref)
	}

	type ctrl struct {
		idx  int
		kind string // Where.Name: "Cwnd", "Rate", "Wait", "WaitRtts"
		e    Expr
		code *Code
	}
	var ctrls []ctrl
	for idx, in := range p.Instrs {
		var kind string
		var e Expr
		switch n := in.(type) {
		case SetRate:
			kind, e = "Rate", n.E
		case SetCwnd:
			kind, e = "Cwnd", n.E
		case Wait:
			kind, e = "Wait", n.Seconds
		case WaitRtts:
			kind, e = "WaitRtts", n.Rtts
		case Report:
			continue
		}
		code, err := Compile(e, resolve)
		if err != nil {
			t.Fatalf("instr %d: %v", idx, err)
		}
		ctrls = append(ctrls, ctrl{idx: idx, kind: kind, e: e, code: code})
	}

	src := newSpecialSource(seed ^ 0xa11ab57ac7a11a5e)
	for pkt := 0; pkt < 64; pkt++ {
		for fi := 0; fi < VarTableSize(0); fi++ {
			v := src.next()
			vars[fi] = v
			ref[fi] = v
		}
		if cf != nil {
			// Step the fold by EvalTrace, update by update, so every
			// division-substitution is attributed to its update index; the
			// stack VM runs alongside and the registers must agree bitwise
			// (EvalTrace claims to mirror the runtime exactly).
			for ui, u := range p.Measure.Fold.Updates {
				v, tr, err := absint.EvalTrace(u.E, env)
				if err != nil {
					t.Fatalf("packet %d update %d: %v", pkt, ui, err)
				}
				if tr.DivZero > 0 && !has(absint.CheckDivZero, "update", ui) {
					t.Errorf("unsound: packet %d, fold update %d (%s) hit the x/0 substitution with no div-zero finding\nexpr: %s",
						pkt, ui, u.Dst, u.E)
				}
				if slot, ok := resolve(u.Dst); ok {
					vars[slot] = v
				}
			}
			cf.Step(ref)
			for i := range regNames {
				a, b := vars[RegSlot(i)], ref[RegSlot(i)]
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("EvalTrace diverged from the stack VM: packet %d register %q: trace=%v (%#x) vm=%v (%#x)",
						pkt, regNames[i], a, math.Float64bits(a), b, math.Float64bits(b))
				}
			}
		}
		// Control expressions evaluate against reachable register states
		// (the fold output) and adversarial packet/flow inputs — exactly
		// the state space the adversarial profile over-approximates.
		for _, c := range ctrls {
			v, tr, err := absint.EvalTrace(c.e, env)
			if err != nil {
				t.Fatalf("packet %d instr %d: %v", pkt, c.idx, err)
			}
			if cv := c.code.Eval(vars, nil); math.Float64bits(v) != math.Float64bits(cv) {
				t.Fatalf("EvalTrace diverged from the stack VM: packet %d instr %d: trace=%v vm=%v\nexpr: %s",
					pkt, c.idx, v, cv, c.e)
			}
			if tr.DivZero > 0 && !has(absint.CheckDivZero, "instr", c.idx) {
				t.Errorf("unsound: packet %d, instr %d %s hit the x/0 substitution with no div-zero finding\nexpr: %s",
					pkt, c.idx, c.kind, c.e)
			}
			var lo, hi float64
			switch c.kind {
			case "Cwnd":
				lo, hi = 0, 1<<30
			case "Rate":
				lo, hi = 0, 1e12
			default:
				continue
			}
			if math.IsNaN(v) {
				if !has(absint.CheckNaNWrite, "instr", c.idx) {
					t.Errorf("unsound: packet %d, instr %d %s wrote NaN with no nan-write finding\nexpr: %s",
						pkt, c.idx, c.kind, c.e)
				}
			} else if (v < lo || v > hi) && !has(absint.CheckBounds, "instr", c.idx) {
				t.Errorf("unsound: packet %d, instr %d %s wrote %v outside [%g, %g] with no bounds finding\nexpr: %s",
					pkt, c.idx, c.kind, v, lo, hi, c.e)
			}
		}
	}
}

// specialSource is a deterministic xorshift64 stream biased toward the
// values that break floating-point identities: NaN, ±Inf, zeros, and
// denormal-scale magnitudes alongside ordinary field values.
type specialSource struct{ x uint64 }

func newSpecialSource(seed uint64) *specialSource {
	return &specialSource{x: seed | 1}
}

func (s *specialSource) next() float64 {
	s.x ^= s.x << 13
	s.x ^= s.x >> 7
	s.x ^= s.x << 17
	switch s.x % 20 {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	case 3:
		return 0
	case 4:
		return math.Copysign(0, -1)
	case 5:
		return math.MaxFloat64
	case 6:
		return 5e-324 // smallest denormal
	case 7:
		return -float64(s.x%1000) / 8
	default:
		return float64(s.x%1000000) / 128
	}
}
