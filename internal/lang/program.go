package lang

import (
	"fmt"
	"strings"
)

// MeasureMode selects how the datapath batches measurements (§2.3–2.4).
type MeasureMode uint8

const (
	// MeasureEWMA is the paper's §3 prototype behaviour: the datapath
	// reports the most recent ACK's values plus EWMA-filtered RTT, sending
	// rate and receiving rate. It requires no program-carried state.
	MeasureEWMA MeasureMode = iota
	// MeasureFold runs a fold function per packet (bounded state).
	MeasureFold
	// MeasureVector appends per-packet samples of the selected fields and
	// ships the whole vector at Report time (flexible, unbounded state).
	MeasureVector
)

func (m MeasureMode) String() string {
	switch m {
	case MeasureEWMA:
		return "ewma"
	case MeasureFold:
		return "fold"
	case MeasureVector:
		return "vector"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// MeasureSpec describes the measurement half of a control program.
type MeasureSpec struct {
	Mode   MeasureMode
	Fold   *FoldSpec // Mode == MeasureFold
	Fields []Field   // Mode == MeasureVector
}

// Instr is one control-program primitive (Table 2).
type Instr interface {
	instr()
	String() string
}

// SetRate sets the pacing rate (bytes/sec) to the value of E.
type SetRate struct{ E Expr }

// SetCwnd sets the congestion window (bytes) to the value of E.
type SetCwnd struct{ E Expr }

// Wait pauses the program for Seconds (an expression, in seconds),
// gathering measurements meanwhile.
type Wait struct{ Seconds Expr }

// WaitRtts pauses the program for Rtts round-trip times (WaitRtts(α) ==
// Wait(α · srtt)).
type WaitRtts struct{ Rtts Expr }

// Report sends the gathered measurements to the CCP agent and, in fold
// mode, resets the registers.
type Report struct{}

func (SetRate) instr()  {}
func (SetCwnd) instr()  {}
func (Wait) instr()     {}
func (WaitRtts) instr() {}
func (Report) instr()   {}

func (i SetRate) String() string  { return fmt.Sprintf("Rate(%s)", i.E) }
func (i SetCwnd) String() string  { return fmt.Sprintf("Cwnd(%s)", i.E) }
func (i Wait) String() string     { return fmt.Sprintf("Wait(%s)", i.Seconds) }
func (i WaitRtts) String() string { return fmt.Sprintf("WaitRtts(%s)", i.Rtts) }
func (Report) String() string     { return "Report()" }

// Program is a complete control program the agent installs into the
// datapath: a measurement specification, an instruction sequence that loops
// when it reaches the end (BBR's repeating pulse pattern relies on this),
// and the urgency configuration for congestion signals.
type Program struct {
	Measure MeasureSpec
	Instrs  []Instr
	// UrgentECN reports ECN marks immediately instead of batching them.
	// Loss (triple duplicate ACK) and timeouts are always urgent (§2.1).
	UrgentECN bool
}

// Validate checks the program is well-formed and all expressions resolve.
func (p *Program) Validate() error {
	var regNames []string
	switch p.Measure.Mode {
	case MeasureEWMA:
	case MeasureFold:
		if p.Measure.Fold == nil {
			return fmt.Errorf("lang: fold mode without a fold spec")
		}
		if err := p.Measure.Fold.Validate(); err != nil {
			return err
		}
		regNames = p.Measure.Fold.RegNames()
	case MeasureVector:
		if len(p.Measure.Fields) == 0 {
			return fmt.Errorf("lang: vector mode without fields")
		}
		for _, f := range p.Measure.Fields {
			if f >= NumPktFields {
				return fmt.Errorf("lang: invalid vector field %d", f)
			}
		}
	default:
		return fmt.Errorf("lang: invalid measure mode %d", p.Measure.Mode)
	}
	resolve := StdResolver(regNames)
	check := func(e Expr) error {
		if e == nil {
			return fmt.Errorf("lang: nil expression in program")
		}
		for _, v := range Vars(e) {
			if _, ok := resolve(v); !ok {
				return fmt.Errorf("lang: program references unknown variable %q", v)
			}
		}
		return nil
	}
	for _, in := range p.Instrs {
		var err error
		switch n := in.(type) {
		case SetRate:
			err = check(n.E)
		case SetCwnd:
			err = check(n.E)
		case Wait:
			err = check(n.Seconds)
		case WaitRtts:
			err = check(n.Rtts)
		case Report:
		default:
			err = fmt.Errorf("lang: unknown instruction %T", in)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// RegNames returns the measurement field names a Report will carry, in
// order: fold register names, vector field names, or the EWMA defaults.
func (p *Program) RegNames() []string {
	switch p.Measure.Mode {
	case MeasureFold:
		return p.Measure.Fold.RegNames()
	case MeasureVector:
		names := make([]string, len(p.Measure.Fields))
		for i, f := range p.Measure.Fields {
			names[i] = f.String()
		}
		return names
	default:
		return EWMAReportNames()
	}
}

// String renders the program in the paper's dotted-call syntax.
func (p *Program) String() string {
	parts := make([]string, 0, len(p.Instrs)+1)
	switch p.Measure.Mode {
	case MeasureFold:
		parts = append(parts, fmt.Sprintf("Measure(fold:%d regs)", len(p.Measure.Fold.Regs)))
	case MeasureVector:
		fields := make([]string, len(p.Measure.Fields))
		for i, f := range p.Measure.Fields {
			fields[i] = strings.TrimPrefix(f.String(), "pkt.")
		}
		parts = append(parts, fmt.Sprintf("Measure(%s)", strings.Join(fields, ", ")))
	default:
		parts = append(parts, "Measure(ewma)")
	}
	for _, in := range p.Instrs {
		parts = append(parts, in.String())
	}
	return strings.Join(parts, ".")
}

// EWMA-mode report layout (§3 prototype): fixed names, in this order.
const (
	EWMARtt     = "rtt"      // EWMA-filtered RTT, seconds
	EWMASndRate = "snd_rate" // EWMA sending rate, bytes/sec
	EWMARcvRate = "rcv_rate" // EWMA delivery rate, bytes/sec
	EWMAAcked   = "acked"    // bytes acked since last report
	EWMALost    = "lost"     // bytes lost since last report
	EWMAEcnFrac = "ecn_frac" // fraction of acked packets with CE marks
	EWMALastRtt = "last_rtt" // most recent raw RTT sample, seconds
)

// EWMAReportNames returns the EWMA-mode report field names in order.
func EWMAReportNames() []string {
	return []string{EWMARtt, EWMASndRate, EWMARcvRate, EWMAAcked, EWMALost, EWMAEcnFrac, EWMALastRtt}
}

// Builder assembles a Program fluently, mirroring the paper's
// Measure(...).Rate(...).WaitRtts(1.0).Report() notation.
type Builder struct {
	p   Program
	err error
}

// NewProgram returns an empty Builder in EWMA measurement mode.
func NewProgram() *Builder { return &Builder{} }

// MeasureEWMA selects the default EWMA measurement mode.
func (b *Builder) MeasureEWMA() *Builder {
	b.p.Measure = MeasureSpec{Mode: MeasureEWMA}
	return b
}

// MeasureFold selects fold-function measurement.
func (b *Builder) MeasureFold(f *FoldSpec) *Builder {
	b.p.Measure = MeasureSpec{Mode: MeasureFold, Fold: f}
	return b
}

// MeasureVector selects per-packet vector measurement of the given fields.
func (b *Builder) MeasureVector(fields ...Field) *Builder {
	b.p.Measure = MeasureSpec{Mode: MeasureVector, Fields: fields}
	return b
}

// Rate appends Rate(e).
func (b *Builder) Rate(e Expr) *Builder {
	b.p.Instrs = append(b.p.Instrs, SetRate{e})
	return b
}

// Cwnd appends Cwnd(e).
func (b *Builder) Cwnd(e Expr) *Builder {
	b.p.Instrs = append(b.p.Instrs, SetCwnd{e})
	return b
}

// Wait appends Wait(seconds).
func (b *Builder) Wait(seconds float64) *Builder { return b.WaitExpr(C(seconds)) }

// WaitExpr appends Wait(e) with e in seconds.
func (b *Builder) WaitExpr(e Expr) *Builder {
	b.p.Instrs = append(b.p.Instrs, Wait{e})
	return b
}

// WaitRtts appends WaitRtts(alpha).
func (b *Builder) WaitRtts(alpha float64) *Builder { return b.WaitRttsExpr(C(alpha)) }

// WaitRttsExpr appends WaitRtts(e).
func (b *Builder) WaitRttsExpr(e Expr) *Builder {
	b.p.Instrs = append(b.p.Instrs, WaitRtts{e})
	return b
}

// Report appends Report().
func (b *Builder) Report() *Builder {
	b.p.Instrs = append(b.p.Instrs, Report{})
	return b
}

// UrgentECN marks ECN signals as urgent for this program.
func (b *Builder) UrgentECN() *Builder {
	b.p.UrgentECN = true
	return b
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := b.p
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// MustBuild is Build for statically known-good programs; it panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
