package lang

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary serialization of Programs for the agent→datapath Install message.
// The format is versioned and self-delimiting; decoding is defensive (depth
// and length limits) because the datapath must survive malformed input.

const (
	progMagic   = 0xCC
	progVersion = 1

	exprTagConst = 0x01
	exprTagVar   = 0x02
	exprTagBin   = 0x03
	exprTagIf    = 0x04

	instrTagRate     = 0x10
	instrTagCwnd     = 0x11
	instrTagWait     = 0x12
	instrTagWaitRtts = 0x13
	instrTagReport   = 0x14

	maxNameLen   = 255
	maxExprDepth = 64
	maxListLen   = 4096
)

// MarshalProgram encodes p. The program should be Validate()d first; the
// encoding itself does not re-validate semantics.
func MarshalProgram(p *Program) ([]byte, error) {
	var b []byte
	b = append(b, progMagic, progVersion, byte(p.Measure.Mode))
	switch p.Measure.Mode {
	case MeasureEWMA:
	case MeasureFold:
		if p.Measure.Fold == nil {
			return nil, fmt.Errorf("lang: fold mode without fold")
		}
		f := p.Measure.Fold
		b = binary.AppendUvarint(b, uint64(len(f.Regs)))
		for _, r := range f.Regs {
			var err error
			b, err = appendString(b, r.Name)
			if err != nil {
				return nil, err
			}
			b = appendF64(b, r.Init)
		}
		b = binary.AppendUvarint(b, uint64(len(f.Updates)))
		for _, u := range f.Updates {
			var err error
			b, err = appendString(b, u.Dst)
			if err != nil {
				return nil, err
			}
			b, err = appendExpr(b, u.E)
			if err != nil {
				return nil, err
			}
		}
	case MeasureVector:
		b = binary.AppendUvarint(b, uint64(len(p.Measure.Fields)))
		for _, f := range p.Measure.Fields {
			b = append(b, byte(f))
		}
	default:
		return nil, fmt.Errorf("lang: cannot marshal measure mode %d", p.Measure.Mode)
	}
	b = binary.AppendUvarint(b, uint64(len(p.Instrs)))
	for _, in := range p.Instrs {
		var err error
		switch n := in.(type) {
		case SetRate:
			b = append(b, instrTagRate)
			b, err = appendExpr(b, n.E)
		case SetCwnd:
			b = append(b, instrTagCwnd)
			b, err = appendExpr(b, n.E)
		case Wait:
			b = append(b, instrTagWait)
			b, err = appendExpr(b, n.Seconds)
		case WaitRtts:
			b = append(b, instrTagWaitRtts)
			b, err = appendExpr(b, n.Rtts)
		case Report:
			b = append(b, instrTagReport)
		default:
			err = fmt.Errorf("lang: cannot marshal instruction %T", in)
		}
		if err != nil {
			return nil, err
		}
	}
	var flags byte
	if p.UrgentECN {
		flags |= 1
	}
	b = append(b, flags)
	return b, nil
}

// UnmarshalProgram decodes and validates a program.
func UnmarshalProgram(data []byte) (*Program, error) {
	r := &reader{data: data}
	if r.byte() != progMagic || r.byte() != progVersion {
		return nil, fmt.Errorf("lang: bad program header")
	}
	p := &Program{}
	p.Measure.Mode = MeasureMode(r.byte())
	switch p.Measure.Mode {
	case MeasureEWMA:
	case MeasureFold:
		f := &FoldSpec{}
		nregs := r.listLen()
		for i := 0; i < nregs && r.err == nil; i++ {
			name := r.string()
			init := r.f64()
			f.Regs = append(f.Regs, RegDef{Name: name, Init: init})
		}
		nupd := r.listLen()
		for i := 0; i < nupd && r.err == nil; i++ {
			dst := r.string()
			e := r.expr(0)
			f.Updates = append(f.Updates, Assign{Dst: dst, E: e})
		}
		p.Measure.Fold = f
	case MeasureVector:
		n := r.listLen()
		for i := 0; i < n && r.err == nil; i++ {
			p.Measure.Fields = append(p.Measure.Fields, Field(r.byte()))
		}
	default:
		return nil, fmt.Errorf("lang: bad measure mode %d", p.Measure.Mode)
	}
	ninstr := r.listLen()
	for i := 0; i < ninstr && r.err == nil; i++ {
		tag := r.byte()
		switch tag {
		case instrTagRate:
			p.Instrs = append(p.Instrs, SetRate{r.expr(0)})
		case instrTagCwnd:
			p.Instrs = append(p.Instrs, SetCwnd{r.expr(0)})
		case instrTagWait:
			p.Instrs = append(p.Instrs, Wait{r.expr(0)})
		case instrTagWaitRtts:
			p.Instrs = append(p.Instrs, WaitRtts{r.expr(0)})
		case instrTagReport:
			p.Instrs = append(p.Instrs, Report{})
		default:
			r.fail(fmt.Errorf("lang: bad instruction tag 0x%02x", tag))
		}
	}
	flags := r.byte()
	p.UrgentECN = flags&1 != 0
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("lang: %d trailing bytes in program", len(r.data)-r.pos)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > maxNameLen {
		return nil, fmt.Errorf("lang: name too long (%d bytes)", len(s))
	}
	b = append(b, byte(len(s)))
	return append(b, s...), nil
}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendExpr(b []byte, e Expr) ([]byte, error) {
	switch n := e.(type) {
	case Const:
		b = append(b, exprTagConst)
		return appendF64(b, float64(n)), nil
	case Var:
		b = append(b, exprTagVar)
		return appendString(b, string(n))
	case *Bin:
		b = append(b, exprTagBin, byte(n.Op))
		var err error
		if b, err = appendExpr(b, n.L); err != nil {
			return nil, err
		}
		return appendExpr(b, n.R)
	case *If:
		b = append(b, exprTagIf)
		var err error
		if b, err = appendExpr(b, n.Cond); err != nil {
			return nil, err
		}
		if b, err = appendExpr(b, n.Then); err != nil {
			return nil, err
		}
		return appendExpr(b, n.Else)
	case nil:
		return nil, fmt.Errorf("lang: cannot marshal nil expression")
	default:
		return nil, fmt.Errorf("lang: cannot marshal expression %T", e)
	}
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail(fmt.Errorf("lang: truncated program"))
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.data) {
		r.fail(fmt.Errorf("lang: truncated float"))
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v
}

func (r *reader) string() string {
	n := int(r.byte())
	if r.err != nil {
		return ""
	}
	if r.pos+n > len(r.data) {
		r.fail(fmt.Errorf("lang: truncated string"))
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *reader) listLen() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 || v > maxListLen {
		r.fail(fmt.Errorf("lang: bad list length"))
		return 0
	}
	r.pos += n
	return int(v)
}

func (r *reader) expr(depth int) Expr {
	if r.err != nil {
		return Const(0)
	}
	if depth > maxExprDepth {
		r.fail(fmt.Errorf("lang: expression too deep"))
		return Const(0)
	}
	switch tag := r.byte(); tag {
	case exprTagConst:
		return Const(r.f64())
	case exprTagVar:
		return Var(r.string())
	case exprTagBin:
		op := BinKind(r.byte())
		if op >= numBinKinds {
			r.fail(fmt.Errorf("lang: bad binary op %d", op))
			return Const(0)
		}
		l := r.expr(depth + 1)
		rr := r.expr(depth + 1)
		return &Bin{op, l, rr}
	case exprTagIf:
		c := r.expr(depth + 1)
		t := r.expr(depth + 1)
		e := r.expr(depth + 1)
		return &If{c, t, e}
	default:
		r.fail(fmt.Errorf("lang: bad expression tag 0x%02x", tag))
		return Const(0)
	}
}
