// Package lang implements the CCP datapath language from the paper's §2:
//
//   - Control programs (Table 2): sequences of Rate/Cwnd/Wait/WaitRtts/Report
//     primitives that the datapath executes, letting algorithms like BBR
//     specify precise sending patterns and measurement intervals without a
//     round trip to user space per action.
//   - Fold functions (§2.4): per-packet measurement summarization compiled to
//     a small register bytecode the datapath runs in O(1) state per flow.
//   - Vector measurements (§2.4): a per-packet field list the datapath
//     appends to and ships to user space at Report time.
//
// Expressions are pure (no side effects); all state lives in named fold
// registers updated by explicit assignments. Division by zero evaluates to
// zero by definition: the datapath must never trap (§2.2 notes that such
// exceptions crash kernels; our VM makes them total instead).
package lang

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a pure arithmetic/boolean expression over named variables.
// Booleans are represented numerically: 0 is false, anything else is true;
// comparison operators yield exactly 0 or 1.
type Expr interface {
	exprNode()
	String() string
}

// Const is a numeric literal.
type Const float64

// Var references a variable by name: a packet field ("pkt.rtt"), a flow
// variable ("flow.cwnd"), or a fold register ("minrtt").
type Var string

// BinKind enumerates binary operators.
type BinKind uint8

// Binary operators. Div is total: x/0 == 0.
const (
	OpAdd BinKind = iota
	OpSub
	OpMul
	OpDiv
	OpMin
	OpMax
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpAnd
	OpOr
	numBinKinds
)

var binNames = [...]string{"+", "-", "*", "/", "min", "max", "<", "<=", ">", ">=", "==", "!=", "and", "or"}

func (k BinKind) String() string {
	if int(k) < len(binNames) {
		return binNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Bin applies Op to L and R.
type Bin struct {
	Op   BinKind
	L, R Expr
}

// If selects Then when Cond is true (non-zero), else Else. Both branches are
// evaluated (expressions are pure, so this only costs time, never safety).
type If struct {
	Cond, Then, Else Expr
}

func (Const) exprNode() {}
func (Var) exprNode()   {}
func (*Bin) exprNode()  {}
func (*If) exprNode()   {}

func (c Const) String() string { return trimFloat(float64(c)) }
func (v Var) String() string   { return string(v) }
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Op, b.L, b.R)
}
func (i *If) String() string {
	return fmt.Sprintf("(if %s %s %s)", i.Cond, i.Then, i.Else)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Convenience constructors keep algorithm code readable.

// C returns a constant expression.
func C(v float64) Expr { return Const(v) }

// V returns a variable reference.
func V(name string) Expr { return Var(name) }

// Add returns l + r.
func Add(l, r Expr) Expr { return &Bin{OpAdd, l, r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return &Bin{OpSub, l, r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return &Bin{OpMul, l, r} }

// Div returns l / r, with x/0 defined as 0.
func Div(l, r Expr) Expr { return &Bin{OpDiv, l, r} }

// Min returns min(l, r).
func Min(l, r Expr) Expr { return &Bin{OpMin, l, r} }

// Max returns max(l, r).
func Max(l, r Expr) Expr { return &Bin{OpMax, l, r} }

// Lt returns l < r as 0/1.
func Lt(l, r Expr) Expr { return &Bin{OpLt, l, r} }

// Le returns l <= r as 0/1.
func Le(l, r Expr) Expr { return &Bin{OpLe, l, r} }

// Gt returns l > r as 0/1.
func Gt(l, r Expr) Expr { return &Bin{OpGt, l, r} }

// Ge returns l >= r as 0/1.
func Ge(l, r Expr) Expr { return &Bin{OpGe, l, r} }

// Eq returns l == r as 0/1.
func Eq(l, r Expr) Expr { return &Bin{OpEq, l, r} }

// Ne returns l != r as 0/1.
func Ne(l, r Expr) Expr { return &Bin{OpNe, l, r} }

// And returns boolean and as 0/1.
func And(l, r Expr) Expr { return &Bin{OpAnd, l, r} }

// Or returns boolean or as 0/1.
func Or(l, r Expr) Expr { return &Bin{OpOr, l, r} }

// Ite returns a conditional expression.
func Ite(cond, then, els Expr) Expr { return &If{cond, then, els} }

// Env resolves variable values during tree-walking evaluation (used in tests
// and by the agent; the datapath uses the compiled bytecode instead).
type Env func(name string) (float64, bool)

// Eval evaluates e under env. Unknown variables are an error; arithmetic is
// total (x/0 == 0, NaNs are squashed to 0).
func Eval(e Expr, env Env) (float64, error) {
	switch n := e.(type) {
	case Const:
		return float64(n), nil
	case Var:
		v, ok := env(string(n))
		if !ok {
			return 0, fmt.Errorf("lang: unknown variable %q", string(n))
		}
		return v, nil
	case *Bin:
		l, err := Eval(n.L, env)
		if err != nil {
			return 0, err
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return 0, err
		}
		return applyBin(n.Op, l, r), nil
	case *If:
		c, err := Eval(n.Cond, env)
		if err != nil {
			return 0, err
		}
		t, err := Eval(n.Then, env)
		if err != nil {
			return 0, err
		}
		f, err := Eval(n.Else, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return t, nil
		}
		return f, nil
	default:
		return 0, fmt.Errorf("lang: unknown expression node %T", e)
	}
}

func applyBin(op BinKind, l, r float64) float64 {
	var v float64
	switch op {
	case OpAdd:
		v = l + r
	case OpSub:
		v = l - r
	case OpMul:
		v = l * r
	case OpDiv:
		if r == 0 {
			return 0
		}
		v = l / r
	case OpMin:
		v = math.Min(l, r)
	case OpMax:
		v = math.Max(l, r)
	case OpLt:
		v = b2f(l < r)
	case OpLe:
		v = b2f(l <= r)
	case OpGt:
		v = b2f(l > r)
	case OpGe:
		v = b2f(l >= r)
	case OpEq:
		v = b2f(l == r)
	case OpNe:
		v = b2f(l != r)
	case OpAnd:
		v = b2f(l != 0 && r != 0)
	case OpOr:
		v = b2f(l != 0 || r != 0)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Vars returns the sorted set of variable names referenced by e. Names are
// gathered in traversal order and deduplicated after sorting, so the result
// never depends on map iteration order.
func Vars(e Expr) []string {
	var out []string
	out = collectVars(e, out)
	sortStrings(out)
	dedup := out[:0]
	for i, name := range out {
		if i == 0 || name != out[i-1] {
			dedup = append(dedup, name)
		}
	}
	return dedup
}

func collectVars(e Expr, out []string) []string {
	switch n := e.(type) {
	case Var:
		out = append(out, string(n))
	case *Bin:
		out = collectVars(n.L, out)
		out = collectVars(n.R, out)
	case *If:
		out = collectVars(n.Cond, out)
		out = collectVars(n.Then, out)
		out = collectVars(n.Else, out)
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && strings.Compare(s[j], s[j-1]) < 0; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
