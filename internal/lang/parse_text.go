package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseProgram parses the paper's dotted-call control-program syntax:
//
//	Rate(1.25*rate).WaitRtts(1.0).Report().
//	Rate(0.75*rate).WaitRtts(1.0).Report().
//	Rate(rate).WaitRtts(6.0).Report()
//
// Statements: Measure(field, ...), Rate(expr), Cwnd(expr), Wait(expr),
// WaitRtts(expr), Report(), UrgentECN(). Expressions are infix arithmetic
// over numbers and variables (pkt.* fields, flow variables, fold registers),
// with min(a,b), max(a,b) and if(cond,a,b) function forms. Measure with
// packet-field arguments selects vector mode; with no arguments, EWMA mode.
// Fold measurement is attached separately (see Builder.MeasureFold or
// ParseFold) since fold definitions use the S-expression dialect.
func ParseProgram(src string) (*Program, error) {
	toks, err := lexText(src)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("lang: empty program")
	}
	p := &textParser{toks: toks}
	b := NewProgram()
	first := true
	for !p.done() {
		if !first {
			if err := p.expect(tokSep); err != nil {
				return nil, err
			}
		}
		first = false
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		switch name {
		case "Measure":
			var fields []Field
			for !p.peekIs(tokRParen) {
				if len(fields) > 0 {
					if err := p.expect(tokComma); err != nil {
						return nil, err
					}
				}
				fname, err := p.ident()
				if err != nil {
					return nil, err
				}
				full := fname
				if !strings.HasPrefix(full, "pkt.") {
					full = "pkt." + full
				}
				f, ok := FieldByName(full)
				if !ok {
					return nil, fmt.Errorf("lang: unknown measure field %q", fname)
				}
				fields = append(fields, f)
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			if len(fields) == 0 {
				b.MeasureEWMA()
			} else {
				b.MeasureVector(fields...)
			}
		case "Rate", "Cwnd", "Wait", "WaitRtts":
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			switch name {
			case "Rate":
				b.Rate(e)
			case "Cwnd":
				b.Cwnd(e)
			case "Wait":
				b.WaitExpr(e)
			case "WaitRtts":
				b.WaitRttsExpr(e)
			}
		case "Report":
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			b.Report()
		case "UrgentECN":
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			b.UrgentECN()
		default:
			return nil, fmt.Errorf("lang: unknown statement %q", name)
		}
	}
	return b.Build()
}

// ParseInfixExpr parses a standalone infix expression ("(cwnd + mss) / 2").
func ParseInfixExpr(src string) (Expr, error) {
	toks, err := lexText(src)
	if err != nil {
		return nil, err
	}
	p := &textParser{toks: toks}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("lang: trailing tokens after expression")
	}
	return e, nil
}

// Lexer.

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokSep // '.' between chained calls
	tokOp  // + - * / < <= > >= == != && ||
)

type token struct {
	kind tokKind
	text string
}

func lexText(src string) ([]token, error) {
	var toks []token
	rs := []rune(src)
	i := 0
	prevRParen := false
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
			continue
		case r == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case r == '.' && prevRParen:
			toks = append(toks, token{tokSep, "."})
			i++
		case unicode.IsDigit(r) || (r == '.' && i+1 < len(rs) && unicode.IsDigit(rs[i+1])):
			j := i
			seenDot, seenExp := false, false
			for j < len(rs) {
				c := rs[j]
				if unicode.IsDigit(c) {
					j++
					continue
				}
				if c == '.' && !seenDot && !seenExp {
					// Lookahead: "1.25" continues the number; "1.Rate" does not.
					if j+1 < len(rs) && unicode.IsDigit(rs[j+1]) {
						seenDot = true
						j++
						continue
					}
					break
				}
				if (c == 'e' || c == 'E') && !seenExp && j+1 < len(rs) &&
					(unicode.IsDigit(rs[j+1]) || rs[j+1] == '-' || rs[j+1] == '+') {
					seenExp = true
					j += 2
					continue
				}
				break
			}
			toks = append(toks, token{tokNumber, string(rs[i:j])})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_' || rs[j] == '.') {
				// An ident-dot is only valid when followed by a letter
				// ("pkt.rtt"); otherwise stop ("Report()." chain).
				if rs[j] == '.' {
					if j+1 < len(rs) && unicode.IsLetter(rs[j+1]) {
						j++
						continue
					}
					break
				}
				j++
			}
			toks = append(toks, token{tokIdent, string(rs[i:j])})
			i = j
		case strings.ContainsRune("+-*/<>=!&|", r):
			j := i + 1
			two := string(r)
			if j < len(rs) {
				cand := string(r) + string(rs[j])
				switch cand {
				case "<=", ">=", "==", "!=", "&&", "||":
					two = cand
					j++
				}
			}
			if two == "=" || two == "!" || two == "&" || two == "|" {
				return nil, fmt.Errorf("lang: unexpected %q at offset %d", two, i)
			}
			toks = append(toks, token{tokOp, two})
			i = j
		default:
			return nil, fmt.Errorf("lang: unexpected character %q at offset %d", string(r), i)
		}
		prevRParen = len(toks) > 0 && toks[len(toks)-1].kind == tokRParen
	}
	return toks, nil
}

// Recursive-descent infix parser with precedence climbing.

type textParser struct {
	toks []token
	pos  int
}

func (p *textParser) done() bool { return p.pos >= len(p.toks) }

func (p *textParser) peek() (token, bool) {
	if p.done() {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *textParser) peekIs(k tokKind) bool {
	t, ok := p.peek()
	return ok && t.kind == k
}

func (p *textParser) next() (token, error) {
	if p.done() {
		return token{}, fmt.Errorf("lang: unexpected end of input")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *textParser) expect(k tokKind) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != k {
		return fmt.Errorf("lang: unexpected token %q", t.text)
	}
	return nil
}

func (p *textParser) ident() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.kind != tokIdent {
		return "", fmt.Errorf("lang: expected identifier, got %q", t.text)
	}
	return t.text, nil
}

var infixPrec = map[string]int{
	"||": 1, "&&": 2,
	"<": 3, "<=": 3, ">": 3, ">=": 3, "==": 3, "!=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5,
}

var infixOps = map[string]BinKind{
	"||": OpOr, "&&": OpAnd,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "==": OpEq, "!=": OpNe,
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv,
}

func (p *textParser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokOp {
			return left, nil
		}
		prec, known := infixPrec[t.text]
		if !known || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Bin{infixOps[t.text], left, right}
	}
}

func (p *textParser) parsePrimary() (Expr, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("lang: bad number %q: %v", t.text, err)
		}
		return Const(f), nil
	case tokLParen:
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokOp:
		if t.text == "-" {
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &Bin{OpSub, Const(0), e}, nil
		}
		return nil, fmt.Errorf("lang: unexpected operator %q", t.text)
	case tokIdent:
		// Function call (min/max/if) or a variable reference.
		if p.peekIs(tokLParen) {
			p.pos++
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "min", "max":
				if len(args) != 2 {
					return nil, fmt.Errorf("lang: %s takes 2 arguments, got %d", t.text, len(args))
				}
				op := OpMin
				if t.text == "max" {
					op = OpMax
				}
				return &Bin{op, args[0], args[1]}, nil
			case "if":
				if len(args) != 3 {
					return nil, fmt.Errorf("lang: if takes 3 arguments, got %d", len(args))
				}
				return &If{args[0], args[1], args[2]}, nil
			default:
				return nil, fmt.Errorf("lang: unknown function %q", t.text)
			}
		}
		return Var(t.text), nil
	default:
		return nil, fmt.Errorf("lang: unexpected token %q in expression", t.text)
	}
}

func (p *textParser) parseArgs() ([]Expr, error) {
	var args []Expr
	for !p.peekIs(tokRParen) {
		if len(args) > 0 {
			if err := p.expect(tokComma); err != nil {
				return nil, err
			}
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	p.pos++ // consume ')'
	return args, nil
}
