package absint

import (
	"fmt"
	"math"

	"github.com/ccp-repro/ccp/internal/lang"
)

// Trace counts the runtime defensive checks an expression evaluation hit
// on its value-influencing path. The runtime evaluates both branches of an
// If (expressions are pure), but only events on the selected branch — and
// in the condition — can influence the produced value, so only those are
// counted: the verifier proves properties of values, not of speculative
// work the runtime discards.
type Trace struct {
	DivZero int // x/0 substitutions (applyBin's r == 0 early return)
	Squash  int // NaN/Inf results squashed to 0
}

// EvalTrace mirrors lang.Eval bit-for-bit — same operator semantics, same
// x/0 == 0 and NaN/Inf→0 totalization — while recording which defensive
// substitutions fired on the selected path. TestEvalTraceMatchesEval pins
// the value agreement against lang.Eval over adversarial inputs.
func EvalTrace(e lang.Expr, env lang.Env) (float64, Trace, error) {
	var tr Trace
	v, err := evalTrace(e, env, &tr)
	return v, tr, err
}

func evalTrace(e lang.Expr, env lang.Env, tr *Trace) (float64, error) {
	switch n := e.(type) {
	case lang.Const:
		return float64(n), nil
	case lang.Var:
		v, ok := env(string(n))
		if !ok {
			return 0, fmt.Errorf("absint: unknown variable %q", string(n))
		}
		return v, nil
	case *lang.Bin:
		l, err := evalTrace(n.L, env, tr)
		if err != nil {
			return 0, err
		}
		r, err := evalTrace(n.R, env, tr)
		if err != nil {
			return 0, err
		}
		return applyBinTrace(n.Op, l, r, tr), nil
	case *lang.If:
		c, err := evalTrace(n.Cond, env, tr)
		if err != nil {
			return 0, err
		}
		// Evaluate both branches (the runtime does too) but merge only the
		// selected branch's events into the caller's trace.
		var tTr, fTr Trace
		t, err := evalTrace(n.Then, env, &tTr)
		if err != nil {
			return 0, err
		}
		f, err := evalTrace(n.Else, env, &fTr)
		if err != nil {
			return 0, err
		}
		if c != 0 { // NaN != 0, so a NaN condition selects the then branch
			tr.DivZero += tTr.DivZero
			tr.Squash += tTr.Squash
			return t, nil
		}
		tr.DivZero += fTr.DivZero
		tr.Squash += fTr.Squash
		return f, nil
	}
	return 0, fmt.Errorf("absint: unknown expression node %T", e)
}

// applyBinTrace is lang's applyBin with event counting. Keep the two in
// lockstep: any semantic change to the runtime evaluator must land here
// too, or the fuzz soundness harness will catch the divergence.
func applyBinTrace(op lang.BinKind, l, r float64, tr *Trace) float64 {
	var v float64
	switch op {
	case lang.OpAdd:
		v = l + r
	case lang.OpSub:
		v = l - r
	case lang.OpMul:
		v = l * r
	case lang.OpDiv:
		if r == 0 {
			tr.DivZero++
			return 0
		}
		v = l / r
	case lang.OpMin:
		v = math.Min(l, r)
	case lang.OpMax:
		v = math.Max(l, r)
	case lang.OpLt:
		v = b2f(l < r)
	case lang.OpLe:
		v = b2f(l <= r)
	case lang.OpGt:
		v = b2f(l > r)
	case lang.OpGe:
		v = b2f(l >= r)
	case lang.OpEq:
		v = b2f(l == r)
	case lang.OpNe:
		v = b2f(l != r)
	case lang.OpAnd:
		v = b2f(l != 0 && r != 0)
	case lang.OpOr:
		v = b2f(l != 0 || r != 0)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		tr.Squash++
		return 0
	}
	return v
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
