package absint_test

import (
	"math"
	"testing"

	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/lang/absint"
)

func analyze(t *testing.T, p *lang.Program, cfg absint.Config) *absint.Report {
	t.Helper()
	rep, err := absint.Analyze(p, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return rep
}

func byCheck(rep *absint.Report, check string) []absint.Finding {
	var out []absint.Finding
	for _, f := range rep.Findings {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

func TestDefaultProgramClean(t *testing.T) {
	p := lang.NewProgram().MeasureEWMA().WaitRtts(1).Report().MustBuild()
	for _, cfg := range []absint.Config{absint.Datapath(), absint.Adversarial()} {
		rep := analyze(t, p, cfg)
		if len(rep.Findings) != 0 {
			t.Errorf("default program: unexpected findings: %v", rep.Findings)
		}
	}
}

func TestUnguardedDivision(t *testing.T) {
	p := lang.NewProgram().MeasureEWMA().
		Rate(lang.Div(lang.C(1e6), lang.V("pkt.rtt"))).
		WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	fs := byCheck(rep, absint.CheckDivZero)
	if len(fs) != 1 {
		t.Fatalf("want exactly one div-zero finding, got %v", rep.Findings)
	}
	f := fs[0]
	if f.Severity != absint.SevError {
		t.Errorf("div-zero severity = %v, want error", f.Severity)
	}
	if f.Where.Kind != "instr" || f.Where.Index != 0 || f.Where.Name != "Rate" {
		t.Errorf("div-zero where = %+v, want instr 0 Rate", f.Where)
	}
	if f.Path != "$.r" {
		t.Errorf("div-zero path = %q, want $.r (the denominator)", f.Path)
	}
	if f.Expr != "pkt.rtt" {
		t.Errorf("div-zero expr = %q, want pkt.rtt", f.Expr)
	}
	if !rep.HasErrors() || rep.Err() == nil {
		t.Errorf("report should carry errors")
	}
}

// TestGuardDomination: a dominating comparison guard removes zero from the
// denominator's interval on the guarded path, so the division is clean —
// no separate dominance machinery, just branch refinement.
func TestGuardDomination(t *testing.T) {
	guarded := lang.NewProgram().MeasureEWMA().
		Rate(lang.Ite(lang.Gt(lang.V("pkt.rtt"), lang.C(1e-3)),
			lang.Div(lang.C(1e6), lang.V("pkt.rtt")),
			lang.C(1e6))).
		WaitRtts(1).Report().MustBuild()
	rep := analyze(t, guarded, absint.Datapath())
	if len(rep.Findings) != 0 {
		t.Errorf("guarded division: unexpected findings: %v", rep.Findings)
	}
}

// TestGuardDominationFalseBranch: the guard can live on the else side —
// refinement negates the comparison (valid because the Datapath profile
// excludes NaN) and still prunes zero.
func TestGuardDominationFalseBranch(t *testing.T) {
	p := lang.NewProgram().MeasureEWMA().
		Rate(lang.Ite(lang.Le(lang.V("pkt.rtt"), lang.C(1e-3)),
			lang.C(1e6),
			lang.Div(lang.C(1e6), lang.V("pkt.rtt")))).
		WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	if len(rep.Findings) != 0 {
		t.Errorf("else-guarded division: unexpected findings: %v", rep.Findings)
	}
}

// TestConjunctionGuard: And conditions refine both conjuncts on the true
// branch.
func TestConjunctionGuard(t *testing.T) {
	p := lang.NewProgram().MeasureEWMA().
		Cwnd(lang.Ite(
			lang.And(lang.Gt(lang.V("pkt.rtt"), lang.C(1e-3)), lang.Lt(lang.V("pkt.rtt"), lang.C(10))),
			lang.Div(lang.C(1e4), lang.V("pkt.rtt")),
			lang.C(0))).
		WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	if len(rep.Findings) != 0 {
		t.Errorf("conjunction guard: unexpected findings: %v", rep.Findings)
	}
}

// TestMaxGuardSoundness is the NaN-through-max trap: math.Max(NaN, ε) is
// NaN, which the runtime squashes to 0 — so max(x, ε) does NOT protect a
// division when x may be NaN. The verifier must flag it under the
// adversarial profile and accept it under the datapath profile (which
// guarantees non-NaN measurements).
func TestMaxGuardSoundness(t *testing.T) {
	p := lang.NewProgram().MeasureEWMA().
		Rate(lang.Min(
			lang.Div(lang.C(1e9), lang.Max(lang.V("pkt.rtt"), lang.C(1e-3))),
			lang.C(1e12))).
		WaitRtts(1).Report().MustBuild()

	if rep := analyze(t, p, absint.Datapath()); len(rep.Findings) != 0 {
		t.Errorf("datapath profile: unexpected findings: %v", rep.Findings)
	}
	rep := analyze(t, p, absint.Adversarial())
	if len(byCheck(rep, absint.CheckDivZero)) == 0 {
		t.Errorf("adversarial profile: max(NaN, ε) squashes to 0 — div-zero finding expected, got %v", rep.Findings)
	}
}

func TestNaNWrite(t *testing.T) {
	p := lang.NewProgram().MeasureEWMA().
		Cwnd(lang.C(math.NaN())).
		WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	fs := byCheck(rep, absint.CheckNaNWrite)
	if len(fs) != 1 || fs[0].Severity != absint.SevError {
		t.Fatalf("want one nan-write error, got %v", rep.Findings)
	}
	if fs[0].Where.Name != "Cwnd" {
		t.Errorf("nan-write where = %+v", fs[0].Where)
	}
}

func TestBoundsEscape(t *testing.T) {
	p := lang.NewProgram().MeasureEWMA().
		Rate(lang.Mul(lang.V("rate"), lang.C(2))).
		WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	if len(byCheck(rep, absint.CheckBounds)) != 1 {
		t.Fatalf("want one bounds finding, got %v", rep.Findings)
	}

	clamped := lang.NewProgram().MeasureEWMA().
		Rate(lang.Min(lang.Mul(lang.V("rate"), lang.C(2)), lang.C(1e12))).
		WaitRtts(1).Report().MustBuild()
	if rep := analyze(t, clamped, absint.Datapath()); len(rep.Findings) != 0 {
		t.Errorf("clamped doubling: unexpected findings: %v", rep.Findings)
	}
}

func TestNoReportSeverity(t *testing.T) {
	fold := &lang.FoldSpec{
		Regs:    []lang.RegDef{{Name: "acked_t", Init: 0}},
		Updates: []lang.Assign{{Dst: "acked_t", E: lang.Add(lang.V("acked_t"), lang.V("pkt.acked"))}},
	}
	noReport := lang.NewProgram().MeasureFold(fold).WaitRtts(1).MustBuild()
	rep := analyze(t, noReport, absint.Datapath())
	fs := byCheck(rep, absint.CheckNoReport)
	if len(fs) != 1 || fs[0].Severity != absint.SevError {
		t.Fatalf("fold without Report: want one no-report error, got %v", rep.Findings)
	}

	// EWMA mode carries no program state, so a missing Report is only
	// advisory (the tree's datapath tests install such probes).
	ewma := lang.NewProgram().MeasureEWMA().WaitRtts(1).MustBuild()
	rep = analyze(t, ewma, absint.Datapath())
	fs = byCheck(rep, absint.CheckNoReport)
	if len(fs) != 1 || fs[0].Severity != absint.SevWarn {
		t.Fatalf("EWMA without Report: want one no-report warning, got %v", rep.Findings)
	}
	if rep.HasErrors() {
		t.Errorf("EWMA without Report must not be install-blocking")
	}
}

func TestDeadUpdateAndUnreadRegister(t *testing.T) {
	fold := &lang.FoldSpec{
		Regs: []lang.RegDef{{Name: "a_r", Init: 0}, {Name: "b_r", Init: 0}},
		Updates: []lang.Assign{
			{Dst: "a_r", E: lang.V("pkt.acked")}, // dead: overwritten below, never read between
			{Dst: "b_r", E: lang.V("pkt.lost")},  // b_r is never read anywhere: unread
			{Dst: "a_r", E: lang.Add(lang.V("pkt.acked"), lang.C(1))},
		},
	}
	p := lang.NewProgram().MeasureFold(fold).
		Cwnd(lang.Min(lang.V("a_r"), lang.C(1<<30))).
		WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	dead := byCheck(rep, absint.CheckDeadUpdate)
	if len(dead) != 1 || dead[0].Where.Index != 0 {
		t.Errorf("want dead-update at update 0, got %v", rep.Findings)
	}
	unread := byCheck(rep, absint.CheckUnreadReg)
	if len(unread) != 1 || unread[0].Where.Name != "b_r" {
		t.Errorf("want unread-register for b_r, got %v", rep.Findings)
	}
	if rep.HasErrors() {
		t.Errorf("dead/unread are advisories, got errors: %v", rep.Errors())
	}

	// An intervening read keeps the earlier update live.
	live := &lang.FoldSpec{
		Regs: []lang.RegDef{{Name: "a_r", Init: 0}, {Name: "b_r", Init: 0}},
		Updates: []lang.Assign{
			{Dst: "a_r", E: lang.V("pkt.acked")},
			{Dst: "b_r", E: lang.V("a_r")},
			{Dst: "a_r", E: lang.C(0)},
		},
	}
	p2 := lang.NewProgram().MeasureFold(live).
		Cwnd(lang.Min(lang.V("b_r"), lang.C(1<<30))).
		WaitRtts(1).Report().MustBuild()
	rep2 := analyze(t, p2, absint.Datapath())
	if len(byCheck(rep2, absint.CheckDeadUpdate)) != 0 {
		t.Errorf("intervening read: no dead-update expected, got %v", rep2.Findings)
	}
}

func TestNonPositiveWait(t *testing.T) {
	p := lang.NewProgram().MeasureEWMA().Wait(0).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	fs := byCheck(rep, absint.CheckWait)
	if len(fs) != 1 || fs[0].Severity != absint.SevWarn {
		t.Fatalf("want one non-positive-wait warning, got %v", rep.Findings)
	}
}

func TestNoFreshInput(t *testing.T) {
	fold := &lang.FoldSpec{
		Regs:    []lang.RegDef{{Name: "tick", Init: 0}},
		Updates: []lang.Assign{{Dst: "tick", E: lang.Add(lang.V("tick"), lang.C(1))}},
	}
	p := lang.NewProgram().MeasureFold(fold).WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	if len(byCheck(rep, absint.CheckNoFresh)) != 1 {
		t.Errorf("pure counter fold: want no-fresh-input warning, got %v", rep.Findings)
	}
}

// TestWideningEWMA: an EWMA register never converges exactly (each step
// nudges the bound), so threshold widening must find a finite invariant —
// tight enough that a cwnd write derived from it stays in bounds.
func TestWideningEWMA(t *testing.T) {
	fold := &lang.FoldSpec{
		Regs: []lang.RegDef{{Name: "s_rtt", Init: 0}},
		Updates: []lang.Assign{{Dst: "s_rtt",
			E: lang.Add(lang.Mul(lang.C(0.875), lang.V("s_rtt")), lang.Mul(lang.C(0.125), lang.V("pkt.rtt")))}},
	}
	p := lang.NewProgram().MeasureFold(fold).
		Cwnd(lang.Add(lang.C(100), lang.V("s_rtt"))).
		WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	if len(rep.Findings) != 0 {
		t.Errorf("EWMA fold: widening failed to find a finite bound: %v", rep.Findings)
	}
}

// TestWideningAccumulator: an unbounded accumulator must widen to +Inf and
// flag a direct cwnd write, while staying silent once clamped.
func TestWideningAccumulator(t *testing.T) {
	fold := func() *lang.FoldSpec {
		return &lang.FoldSpec{
			Regs:    []lang.RegDef{{Name: "tot", Init: 0}},
			Updates: []lang.Assign{{Dst: "tot", E: lang.Add(lang.V("tot"), lang.V("pkt.acked"))}},
		}
	}
	p := lang.NewProgram().MeasureFold(fold()).
		Cwnd(lang.V("tot")).
		WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	if len(byCheck(rep, absint.CheckBounds)) != 1 {
		t.Errorf("unclamped accumulator: want bounds finding, got %v", rep.Findings)
	}

	clamped := lang.NewProgram().MeasureFold(fold()).
		Cwnd(lang.Min(lang.V("tot"), lang.C(1<<30))).
		WaitRtts(1).Report().MustBuild()
	if rep := analyze(t, clamped, absint.Datapath()); len(rep.Findings) != 0 {
		t.Errorf("clamped accumulator: unexpected findings: %v", rep.Findings)
	}
}

// TestNoDuplicateFindings: findings are muted during fixpoint iteration
// and emitted once over the stable state — a div-zero site inside a fold
// must surface exactly once no matter how many iterations ran.
func TestNoDuplicateFindings(t *testing.T) {
	fold := &lang.FoldSpec{
		Regs: []lang.RegDef{{Name: "acc", Init: 0}},
		Updates: []lang.Assign{{Dst: "acc",
			E: lang.Add(lang.V("acc"), lang.Div(lang.C(1), lang.V("pkt.rtt")))}},
	}
	p := lang.NewProgram().MeasureFold(fold).WaitRtts(1).Report().MustBuild()
	rep := analyze(t, p, absint.Datapath())
	if got := len(byCheck(rep, absint.CheckDivZero)); got != 1 {
		t.Errorf("want exactly 1 div-zero finding, got %d: %v", got, rep.Findings)
	}
}

func TestAnalyzeRejectsInvalidPrograms(t *testing.T) {
	if _, err := absint.Analyze(nil, absint.Datapath()); err == nil {
		t.Error("nil program: want error")
	}
	bad := &lang.Program{Measure: lang.MeasureSpec{Mode: lang.MeasureMode(9)}}
	if _, err := absint.Analyze(bad, absint.Datapath()); err == nil {
		t.Error("invalid measure mode: want error")
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]absint.Mode{
		"strict": absint.ModeStrict, "warn": absint.ModeWarn, "off": absint.ModeOff, "": absint.ModeDefault,
	}
	for in, want := range cases {
		got, err := absint.ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := absint.ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus): want error")
	}
}

// TestEvalTraceMatchesEval pins the trace evaluator bit-for-bit against
// lang.Eval over adversarial values, and checks that only the selected
// If branch contributes trace events.
func TestEvalTraceMatchesEval(t *testing.T) {
	exprs := []lang.Expr{
		lang.Div(lang.V("a"), lang.V("b")),
		lang.Add(lang.Mul(lang.V("a"), lang.V("b")), lang.Sub(lang.V("c"), lang.V("a"))),
		lang.Max(lang.V("a"), lang.Min(lang.V("b"), lang.V("c"))),
		lang.Ite(lang.Gt(lang.V("a"), lang.C(0)), lang.Div(lang.C(1), lang.V("a")), lang.C(0)),
		lang.Ite(lang.V("a"), lang.V("b"), lang.Div(lang.V("c"), lang.V("b"))),
		lang.And(lang.Le(lang.V("a"), lang.V("b")), lang.Or(lang.V("c"), lang.C(1))),
		lang.Div(lang.C(1), lang.Max(lang.V("a"), lang.C(1e-9))),
	}
	specials := []float64{0, math.Copysign(0, -1), 1, -1, math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, 5e-324, -2.5, 1e300}
	vals := map[string]float64{}
	env := func(name string) (float64, bool) { v, ok := vals[name]; return v, ok }
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return specials[rng%uint64(len(specials))]
	}
	for trial := 0; trial < 500; trial++ {
		vals["a"], vals["b"], vals["c"] = next(), next(), next()
		for _, e := range exprs {
			want, err1 := lang.Eval(e, env)
			got, _, err2 := absint.EvalTrace(e, env)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error divergence on %s: %v vs %v", e, err1, err2)
			}
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("value divergence on %s with a=%v b=%v c=%v: Eval=%v EvalTrace=%v",
					e, vals["a"], vals["b"], vals["c"], want, got)
			}
		}
	}

	// Branch selection: an unselected division by zero leaves no trace.
	env0 := func(string) (float64, bool) { return 0, true }
	_, tr, err := absint.EvalTrace(lang.Ite(lang.C(0), lang.Div(lang.C(1), lang.C(0)), lang.C(5)), env0)
	if err != nil || tr.DivZero != 0 {
		t.Errorf("unselected branch leaked trace events: %+v, %v", tr, err)
	}
	_, tr, err = absint.EvalTrace(lang.Ite(lang.C(1), lang.Div(lang.C(1), lang.C(0)), lang.C(5)), env0)
	if err != nil || tr.DivZero != 1 {
		t.Errorf("selected branch div-zero not traced: %+v, %v", tr, err)
	}
	// A NaN condition is truthy: the then branch is the selected one.
	envNaN := func(string) (float64, bool) { return math.NaN(), true }
	_, tr, err = absint.EvalTrace(lang.Ite(lang.V("x"), lang.Div(lang.C(1), lang.C(0)), lang.C(5)), envNaN)
	if err != nil || tr.DivZero != 1 {
		t.Errorf("NaN condition must select then branch: %+v, %v", tr, err)
	}
}
