package absint

import "fmt"

// Mode is the verification policy shared by the datapath Install gate and
// the agent-side pre-send check: strict refuses programs with error-level
// findings, warn only counts them, off skips verification entirely.
// ModeDefault (the zero value) defers to the embedding component's default
// — strict in the datapath, off at the agent (where the datapath gate
// already covers every installed program).
type Mode uint8

const (
	ModeDefault Mode = iota
	ModeStrict
	ModeWarn
	ModeOff
)

func (m Mode) String() string {
	switch m {
	case ModeDefault:
		return "default"
	case ModeStrict:
		return "strict"
	case ModeWarn:
		return "warn"
	case ModeOff:
		return "off"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode parses a -verify flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "strict":
		return ModeStrict, nil
	case "warn":
		return ModeWarn, nil
	case "off":
		return ModeOff, nil
	case "", "default":
		return ModeDefault, nil
	}
	return ModeDefault, fmt.Errorf("absint: unknown verify mode %q (want strict|warn|off)", s)
}
