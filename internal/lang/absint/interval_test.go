package absint

import (
	"math"
	"testing"

	"github.com/ccp-repro/ccp/internal/lang"
)

func TestIntervalLattice(t *testing.T) {
	a, b := Interval{0, 5}, Interval{3, 10}
	if j := a.Join(b); j != (Interval{0, 10}) {
		t.Errorf("Join = %v", j)
	}
	if m := a.Meet(b); m != (Interval{3, 5}) {
		t.Errorf("Meet = %v", m)
	}
	if m := a.Meet(Interval{6, 7}); !m.IsEmpty() {
		t.Errorf("disjoint Meet not empty: %v", m)
	}
	if j := Empty().Join(a); j != a {
		t.Errorf("Empty Join = %v", j)
	}
	if !Point(0).Contains(0) || Point(0).IsEmpty() {
		t.Errorf("Point(0) malformed")
	}
}

func TestWidenThresholds(t *testing.T) {
	cases := []struct {
		prev, next, want Interval
	}{
		{Interval{0, 100}, Interval{0, 101}, Interval{0, 1024}},
		{Interval{0, 1024}, Interval{0, 2000}, Interval{0, 65536}},
		{Interval{0, 65536}, Interval{0, 1e7}, Interval{0, 1 << 30}},
		{Interval{0, 1 << 30}, Interval{0, 2e12}, Interval{0, math.Inf(1)}},
		{Interval{0, 5}, Interval{0, 5}, Interval{0, 5}},       // stable: untouched
		{Interval{0, 5}, Interval{-2, 5}, Interval{-65536, 5}}, // only the moved endpoint widens
		{Interval{0, 0.5}, Interval{0, 0.8}, Interval{0, 1}},
	}
	for _, c := range cases {
		if got := c.prev.Widen(c.next); got != c.want {
			t.Errorf("Widen(%v, %v) = %v, want %v", c.prev, c.next, got, c.want)
		}
	}
}

func TestDivTransfer(t *testing.T) {
	// Denominator excluding zero: plain interval division.
	if got := iDiv(Interval{1, 1}, Interval{2, 4}); got != (Interval{0.25, 0.5}) {
		t.Errorf("iDiv = %v", got)
	}
	// Denominator containing zero degrades to Top (which contains the
	// runtime's x/0 == 0 substitute).
	if got := iDiv(Interval{1, 1}, Interval{0, 4}); !got.Contains(0) || !got.HasInf() {
		t.Errorf("iDiv over zero = %v, want Top", got)
	}
	// Exactly-zero denominator: the result is exactly 0.
	if got := iDiv(Interval{1, 1}, Point(0)); got != Point(0) {
		t.Errorf("iDiv by {0} = %v, want {0}", got)
	}
}

// TestSquashTransfer: arithmetic results are never NaN/Inf at runtime —
// any abstract path to one must fold 0 into the interval and clear NaN.
func TestSquashTransfer(t *testing.T) {
	inf := AbsVal{I: Interval{0, math.Inf(1)}}
	one := ConstVal(1)
	got := binTransfer(lang.OpAdd, inf, one)
	if got.NaN || !got.I.Contains(0) {
		t.Errorf("Inf+1 transfer = %v: want 0 folded in (overflow squash), no NaN", got)
	}
	nan := AbsVal{I: Empty(), NaN: true}
	got = binTransfer(lang.OpMax, nan, ConstVal(5))
	if got.NaN || !got.I.Contains(0) {
		t.Errorf("max(NaN, 5) transfer = %v: runtime yields 0, abstract must contain it", got)
	}
	// A NaN-free finite op stays exact.
	got = binTransfer(lang.OpMul, ConstVal(3), ConstVal(4))
	if got.NaN || got.I != Point(12) {
		t.Errorf("3*4 transfer = %v", got)
	}
}

func TestCompareWithNaN(t *testing.T) {
	nan := AbsVal{I: Empty(), NaN: true}
	five := ConstVal(5)
	if c := compare(lang.OpLt, nan, five); c != tFalse {
		t.Errorf("NaN < 5 = %d, want definitely false", c)
	}
	if c := compare(lang.OpNe, nan, five); c != tTrue {
		t.Errorf("NaN != 5 = %d, want definitely true", c)
	}
	mayNaN := AbsVal{I: Interval{0, 1}, NaN: true}
	if c := compare(lang.OpLt, mayNaN, ConstVal(10)); c != tUnknown {
		t.Errorf("maybe-NaN < 10 = %d, want unknown (NaN compares false)", c)
	}
	if c := compare(lang.OpLt, mayNaN, ConstVal(-1)); c != tFalse {
		t.Errorf("maybe-NaN in [0,1] < -1 = %d, want false (NaN also false)", c)
	}
}
