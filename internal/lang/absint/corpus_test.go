package absint_test

import (
	"math"
	"strings"
	"testing"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/lang/absint"
)

// TestRegisteredAlgorithmsVerifyClean is the corpus gate: every Install-time
// program of every bundled algorithm must verify with no install-blocking
// findings under the datapath profile — the same check the datapath runs in
// strict mode, so a regression here is a flow that silently keeps its
// previous program in production.
func TestRegisteredAlgorithmsVerifyClean(t *testing.T) {
	for _, info := range algorithms.All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			progs, _ := core.Describe(info.Factory, 1448)
			for i, p := range progs {
				rep, err := absint.Analyze(p, absint.Datapath())
				if err != nil {
					t.Fatalf("program %d: %v", i, err)
				}
				for _, f := range rep.Errors() {
					t.Errorf("program %d: %s", i, f.String())
				}
			}
		})
	}
}

// TestRejectionTable pins the verifier's refusals: each minimal bad program
// must be refused with the right check at the right location. These are the
// programs the Install gate exists to keep out of the datapath.
func TestRejectionTable(t *testing.T) {
	countingFold := &lang.FoldSpec{
		Regs:    []lang.RegDef{{Name: "acked", Init: 0}},
		Updates: []lang.Assign{{Dst: "acked", E: lang.Add(lang.V("acked"), lang.V("pkt.acked"))}},
	}
	cases := []struct {
		name      string
		prog      *lang.Program
		check     string
		whereKind string // substring of Finding.Where.String()
	}{
		{
			name: "unguarded division",
			prog: lang.NewProgram().
				Rate(lang.Div(lang.C(1e6), lang.V("pkt.rtt"))).
				WaitRtts(1).Report().MustBuild(),
			check:     absint.CheckDivZero,
			whereKind: "instr 0 Rate",
		},
		{
			name: "NaN to cwnd",
			prog: lang.NewProgram().
				Cwnd(lang.C(math.NaN())).
				WaitRtts(1).Report().MustBuild(),
			check:     absint.CheckNaNWrite,
			whereKind: "instr 0 Cwnd",
		},
		{
			name: "unbounded rate",
			prog: lang.NewProgram().
				Rate(lang.Mul(lang.V("rate"), lang.C(2))).
				WaitRtts(1).Report().MustBuild(),
			check:     absint.CheckBounds,
			whereKind: "instr 0 Rate",
		},
		{
			name: "fold with no report",
			prog: lang.NewProgram().
				MeasureFold(countingFold).
				Cwnd(lang.C(14480)).
				WaitRtts(1).MustBuild(),
			check:     absint.CheckNoReport,
			whereKind: "program",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep, err := absint.Analyze(tc.prog, absint.Datapath())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.HasErrors() {
				t.Fatalf("program accepted; findings: %v", rep.Findings)
			}
			found := false
			for _, f := range rep.Errors() {
				if f.Check == tc.check {
					found = true
					if !strings.Contains(f.Where.String(), tc.whereKind) {
						t.Errorf("finding at %q, want location containing %q", f.Where.String(), tc.whereKind)
					}
				}
			}
			if !found {
				t.Fatalf("no %s error; got %v", tc.check, rep.Errors())
			}
		})
	}
}
