package absint

import (
	"fmt"
	"math"

	"github.com/ccp-repro/ccp/internal/lang"
)

// AbsVal is the abstract value of one variable-table slot or expression:
// the interval of non-NaN values it may take, whether it may additionally
// be NaN, and whether it is (transitively) derived from a per-packet
// measurement field. "Definitely NaN" is the empty interval with NaN set.
type AbsVal struct {
	I     Interval
	NaN   bool
	Fresh bool
}

// TopVal is the unconstrained abstract value: any float64 including NaN.
func TopVal() AbsVal { return AbsVal{I: Top(), NaN: true} }

// ConstVal abstracts a literal constant.
func ConstVal(v float64) AbsVal {
	if math.IsNaN(v) {
		return AbsVal{I: Empty(), NaN: true}
	}
	return AbsVal{I: Point(v)}
}

// Finite is the abstract value [lo, hi] with no NaN possibility.
func Finite(lo, hi float64) AbsVal { return AbsVal{I: Interval{lo, hi}} }

// Join is the lattice join (may-analysis union).
func (v AbsVal) Join(o AbsVal) AbsVal {
	return AbsVal{I: v.I.Join(o.I), NaN: v.NaN || o.NaN, Fresh: v.Fresh || o.Fresh}
}

// MayBeZero reports whether the concrete value can compare equal to zero.
// NaN is not zero (NaN == 0 is false), so only the interval part matters.
func (v AbsVal) MayBeZero() bool { return v.I.Contains(0) }

// unreachable is the bottom value produced for expressions on infeasible
// paths: no concrete value at all.
func unreachable() AbsVal { return AbsVal{I: Empty()} }

func (v AbsVal) String() string {
	s := "[" + trim(v.I.Lo) + ", " + trim(v.I.Hi) + "]"
	if v.I.IsEmpty() {
		s = "∅"
	}
	if v.NaN {
		s += "∪NaN"
	}
	if v.Fresh {
		s += " fresh"
	}
	return s
}

func trim(f float64) string { return fmt.Sprintf("%g", f) }

// truth values for three-valued boolean reasoning.
const (
	tFalse = iota
	tTrue
	tUnknown
)

// truthiness classifies v under lang's truth rule (non-zero is true; NaN is
// non-zero and therefore true).
func truthiness(v AbsVal) int {
	if v.I.IsEmpty() {
		if v.NaN {
			return tTrue // definitely NaN: NaN != 0
		}
		return tUnknown // unreachable; stay conservative
	}
	if !v.I.Contains(0) {
		return tTrue
	}
	if v.I.IsPoint() && !v.NaN { // exactly {0}, no NaN
		return tFalse
	}
	return tUnknown
}

func boolVal(t int, fresh bool) AbsVal {
	switch t {
	case tTrue:
		return AbsVal{I: Point(1), Fresh: fresh}
	case tFalse:
		return AbsVal{I: Point(0), Fresh: fresh}
	}
	return AbsVal{I: Interval{0, 1}, Fresh: fresh}
}

// binTransfer is the abstract image of lang's applyBin. It reproduces the
// runtime's total-arithmetic semantics:
//
//   - the final NaN/Inf→0 squash: an arithmetic result is never NaN or
//     ±Inf at runtime, so whenever the abstract computation admits either
//     (NaN operand propagating, overflow to ±Inf, or an infinite operand),
//     0 is folded into the result interval and the NaN bit is cleared;
//   - x/0 == 0 (handled by iDiv degrading to Top, which contains 0);
//   - comparisons yield exactly 0 or 1, with NaN operands forcing 0
//     (except !=, which NaN forces to 1).
func binTransfer(op lang.BinKind, l, r AbsVal) AbsVal {
	fresh := l.Fresh || r.Fresh
	switch op {
	case lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe:
		return boolVal(compare(op, l, r), fresh)
	case lang.OpAnd:
		lt, rt := truthiness(l), truthiness(r)
		switch {
		case lt == tFalse || rt == tFalse:
			return boolVal(tFalse, fresh)
		case lt == tTrue && rt == tTrue:
			return boolVal(tTrue, fresh)
		}
		return boolVal(tUnknown, fresh)
	case lang.OpOr:
		lt, rt := truthiness(l), truthiness(r)
		switch {
		case lt == tTrue || rt == tTrue:
			return boolVal(tTrue, fresh)
		case lt == tFalse && rt == tFalse:
			return boolVal(tFalse, fresh)
		}
		return boolVal(tUnknown, fresh)
	}

	// Arithmetic. Empty operand intervals with the NaN bit set still reach
	// the runtime as concrete NaNs; the squash turns those results into 0.
	var raw Interval
	switch {
	case l.I.IsEmpty() || r.I.IsEmpty():
		raw = Empty()
	case op == lang.OpDiv:
		raw = iDiv(l.I, r.I)
	case op == lang.OpMin:
		raw = iArith(math.Min, l.I, r.I)
	case op == lang.OpMax:
		raw = iArith(math.Max, l.I, r.I)
	case op == lang.OpAdd:
		raw = iArith(func(a, b float64) float64 { return a + b }, l.I, r.I)
	case op == lang.OpSub:
		raw = iArith(func(a, b float64) float64 { return a - b }, l.I, r.I)
	case op == lang.OpMul:
		raw = iArith(func(a, b float64) float64 { return a * b }, l.I, r.I)
	default:
		raw = Top()
	}
	// The squash: any path to a NaN or infinite result lands on 0 instead.
	squashable := l.NaN || r.NaN || l.I.HasInf() || r.I.HasInf() || raw.HasInf()
	if op == lang.OpDiv && (r.MayBeZero() || r.NaN) {
		squashable = true // x/0 == 0; x/NaN squashes to 0
	}
	if squashable {
		raw = raw.Join(Point(0))
	}
	return AbsVal{I: raw, Fresh: fresh}
}

// compare decides a comparison over abstract operands, returning
// tTrue/tFalse when every concrete pair agrees and tUnknown otherwise.
func compare(op lang.BinKind, l, r AbsVal) int {
	lNaN, rNaN := l.NaN, r.NaN
	lEmpty, rEmpty := l.I.IsEmpty(), r.I.IsEmpty()
	defNaN := (lEmpty && lNaN) || (rEmpty && rNaN)
	if op == lang.OpNe {
		if defNaN {
			return tTrue // NaN != x is always true
		}
		switch compare(lang.OpEq, l, r) {
		case tTrue:
			return tFalse
		case tFalse:
			return tTrue
		}
		return tUnknown
	}
	if defNaN {
		return tFalse // NaN compares false under <, <=, >, >=, ==
	}
	if lEmpty || rEmpty {
		return tUnknown // unreachable operand; stay conservative
	}
	mayNaN := lNaN || rNaN
	switch op {
	case lang.OpLt:
		if !mayNaN && l.I.Hi < r.I.Lo {
			return tTrue
		}
		if l.I.Lo >= r.I.Hi {
			return tFalse // false for all non-NaN pairs, and NaN gives false too
		}
	case lang.OpLe:
		if !mayNaN && l.I.Hi <= r.I.Lo {
			return tTrue
		}
		if l.I.Lo > r.I.Hi {
			return tFalse
		}
	case lang.OpGt:
		if !mayNaN && l.I.Lo > r.I.Hi {
			return tTrue
		}
		if l.I.Hi <= r.I.Lo {
			return tFalse
		}
	case lang.OpGe:
		if !mayNaN && l.I.Lo >= r.I.Hi {
			return tTrue
		}
		if l.I.Hi < r.I.Lo {
			return tFalse
		}
	case lang.OpEq:
		if !mayNaN && l.I.IsPoint() && r.I.IsPoint() && l.I.Lo == r.I.Lo {
			return tTrue
		}
		if l.I.Hi < r.I.Lo || l.I.Lo > r.I.Hi {
			return tFalse
		}
	}
	return tUnknown
}
