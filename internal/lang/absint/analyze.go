package absint

import (
	"errors"
	"fmt"
	"math"

	"github.com/ccp-repro/ccp/internal/lang"
)

// Check identifiers, one per verifier rule.
const (
	CheckDivZero    = "div-zero"          // denominator interval contains zero on a feasible path
	CheckNaNWrite   = "nan-write"         // NaN taint reaches a Cwnd/Rate write
	CheckBounds     = "bounds"            // Cwnd/Rate write escapes the configured clamp bounds
	CheckDeadUpdate = "dead-update"       // fold update overwritten before any read
	CheckUnreadReg  = "unread-register"   // register written but never read by any expression
	CheckNoReport   = "no-report"         // control program never reports
	CheckNoFresh    = "no-fresh-input"    // fold state never derives from a packet field
	CheckWait       = "non-positive-wait" // wait duration provably <= 0 (or NaN)
)

// Severity splits findings into install-blocking errors and advisories.
type Severity uint8

const (
	SevWarn Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Where locates a finding inside a program.
type Where struct {
	Kind  string // "update", "instr", "fold", "program"
	Index int    // update or instruction index (Kind "update"/"instr")
	Name  string // register name or instruction mnemonic
}

func (w Where) String() string {
	switch w.Kind {
	case "update":
		return fmt.Sprintf("fold update %d (%s)", w.Index, w.Name)
	case "instr":
		return fmt.Sprintf("instr %d %s", w.Index, w.Name)
	case "fold":
		return fmt.Sprintf("fold register %s", w.Name)
	}
	return "program"
}

// Finding is one verifier diagnostic with a source span: Where names the
// update or instruction, Path the position inside its expression tree
// ("$.then.r" = right operand of the then-branch), Expr the offending
// subexpression rendered in the DSL's syntax.
type Finding struct {
	Check    string
	Severity Severity
	Where    Where
	Path     string
	Expr     string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s at %s: %s", f.Severity, f.Check, f.Where, f.Path, f.Message)
}

// Report is the result of verifying one program.
type Report struct {
	Findings []Finding
}

// HasErrors reports whether any finding is install-blocking.
func (r *Report) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == SevError {
			return true
		}
	}
	return false
}

// Errors returns the install-blocking findings.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == SevError {
			out = append(out, f)
		}
	}
	return out
}

// Warnings returns the advisory findings.
func (r *Report) Warnings() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == SevWarn {
			out = append(out, f)
		}
	}
	return out
}

// Err returns nil if the report has no errors, else an error naming the
// first one (and how many more there are).
func (r *Report) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	if len(errs) == 1 {
		return errors.New(errs[0].String())
	}
	return fmt.Errorf("%s (and %d more)", errs[0], len(errs)-1)
}

// Config parameterizes the abstract interpretation: the assumed abstract
// values of packet fields and flow variables, the write bounds that mirror
// the datapath's runtime clamps, and the fixpoint budget.
type Config struct {
	// Assume maps variable names ("pkt.rtt", "cwnd") to their assumed
	// abstract values. Unlisted variables are unconstrained (any float64
	// including NaN). Packet fields are always treated as fresh.
	Assume map[string]AbsVal
	// Write bounds; zero values default to the datapath clamps
	// [0, 2^30] bytes for cwnd and [0, 1e12] bytes/sec for rate.
	CwndMin, CwndMax float64
	RateMin, RateMax float64
	// Fixpoint budget: widening starts after WidenAfter iterations
	// (default 4); after MaxIters (default 64) surviving unstable
	// registers degrade to Top. Termination does not depend on MaxIters —
	// widening guarantees it — the cap is a backstop.
	MaxIters, WidenAfter int
}

func (c Config) withDefaults() Config {
	if c.CwndMax == 0 {
		c.CwndMax = 1 << 30
	}
	if c.RateMax == 0 {
		c.RateMax = 1e12
	}
	if c.MaxIters == 0 {
		c.MaxIters = 64
	}
	if c.WidenAfter == 0 {
		c.WidenAfter = 4
	}
	return c
}

// Datapath returns the profile the Install gate verifies under: physically
// plausible measurement ranges (RTTs under an hour, byte counts within the
// cwnd clamp, rates within the rate clamp, a positive MSS) and non-NaN
// flow variables, matching what the simulated datapath actually produces.
func Datapath() Config {
	return Config{Assume: map[string]AbsVal{
		"pkt.rtt":      Finite(0, 3600),
		"pkt.acked":    Finite(0, 1<<30),
		"pkt.sacked":   Finite(0, 1<<30),
		"pkt.lost":     Finite(0, 1<<30),
		"pkt.ecn":      Finite(0, 1),
		"pkt.snd_rate": Finite(0, 1e12),
		"pkt.rcv_rate": Finite(0, 1e12),
		"pkt.inflight": Finite(0, 1<<30),
		"pkt.hdr_rate": Finite(0, 1e12),
		"pkt.now":      Finite(0, 1e9),
		"cwnd":         Finite(0, 1<<30),
		"rate":         Finite(0, 1e12),
		"mss":          Finite(1, 65536),
		"srtt":         Finite(0, 3600),
		"min_rtt":      Finite(0, 3600),
	}}
}

// Adversarial returns the profile the fuzz soundness harness verifies
// under: every input is unconstrained, including NaN and ±Inf. A program
// clean under this profile is safe against arbitrary measurement garbage.
func Adversarial() Config {
	return Config{}
}

// Analyze abstractly interprets p under cfg and returns the verifier
// report. The fold update list is iterated to a fixpoint (with widening)
// to obtain a per-register invariant; control-program expressions are then
// evaluated once against that invariant. An error is returned only for
// structurally invalid programs (Validate failures) — semantic problems
// are Findings, not errors.
func Analyze(p *lang.Program, cfg Config) (*Report, error) {
	if p == nil {
		return nil, errors.New("absint: nil program")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	var regs []lang.RegDef
	if p.Measure.Mode == lang.MeasureFold {
		regs = p.Measure.Fold.Regs
	}
	regNames := make([]string, len(regs))
	for i, r := range regs {
		regNames[i] = r.Name
	}
	a := &analyzer{
		cfg:     cfg,
		prog:    p,
		resolve: lang.StdResolver(regNames),
		rep:     &Report{},
	}

	st := a.baseState()
	if p.Measure.Mode == lang.MeasureFold {
		for i, r := range regs {
			st[lang.RegSlot(i)] = ConstVal(r.Init)
		}
		a.fixpoint(st, len(regs))
		// Findings are muted during fixpoint iteration; one final pass over
		// the stable invariant emits each at most once.
		a.emit = true
		a.step(cloneSt(st))
		a.emit = false
	}
	a.emit = true
	a.checkInstrs(st)
	a.checkDeadUpdates()
	a.checkUnreadRegisters(regNames)
	a.checkReportLiveness()
	a.checkFreshInput(st, len(regs))
	return a.rep, nil
}

type analyzer struct {
	cfg     Config
	prog    *lang.Program
	resolve lang.Resolver
	rep     *Report
	emit    bool
	where   Where
}

// baseState builds the abstract variable table from the assumption
// profile: packet fields (always fresh), then flow variables, then
// registers (filled in by the caller for fold mode).
func (a *analyzer) baseState() []AbsVal {
	nregs := 0
	if a.prog.Measure.Mode == lang.MeasureFold {
		nregs = len(a.prog.Measure.Fold.Regs)
	}
	st := make([]AbsVal, lang.VarTableSize(nregs))
	for i := range st {
		st[i] = TopVal()
	}
	for f := lang.Field(0); f < lang.NumPktFields; f++ {
		v := TopVal()
		if av, ok := a.cfg.Assume[f.String()]; ok {
			v = av
		}
		v.Fresh = true
		st[lang.PktFieldSlot(f)] = v
	}
	for fv := lang.FlowVar(0); fv < lang.NumFlowVars; fv++ {
		if av, ok := a.cfg.Assume[fv.String()]; ok {
			av.Fresh = false
			st[lang.FlowVarSlot(fv)] = av
		}
	}
	return st
}

// step applies one abstract fold step in place: updates run sequentially,
// later updates observing earlier results (matching CompiledFold.Step).
func (a *analyzer) step(st []AbsVal) {
	for i, u := range a.prog.Measure.Fold.Updates {
		a.where = Where{Kind: "update", Index: i, Name: u.Dst}
		v := a.eval(u.E, st, "$")
		if slot, ok := a.resolve(u.Dst); ok {
			st[slot] = v
		}
	}
}

// fixpoint iterates st's register slots to stability: the resulting state
// over-approximates every reachable register valuation (the initial values
// are part of the invariant because st only ever grows by joining).
func (a *analyzer) fixpoint(st []AbsVal, nregs int) {
	for iter := 0; ; iter++ {
		next := cloneSt(st)
		a.step(next)
		changed := false
		for i := 0; i < nregs; i++ {
			slot := lang.RegSlot(i)
			j := st[slot].Join(next[slot])
			if iter >= a.cfg.WidenAfter {
				j.I = st[slot].I.Widen(j.I)
			}
			if j != st[slot] {
				st[slot] = j
				changed = true
			}
		}
		if !changed {
			return
		}
		if iter >= a.cfg.MaxIters {
			for i := 0; i < nregs; i++ {
				slot := lang.RegSlot(i)
				st[slot] = AbsVal{I: Top(), NaN: true, Fresh: st[slot].Fresh}
			}
			return
		}
	}
}

// eval computes the abstract value of e in state st, emitting findings
// when a.emit is set. path is the span within the current expression tree.
func (a *analyzer) eval(e lang.Expr, st []AbsVal, path string) AbsVal {
	switch n := e.(type) {
	case lang.Const:
		return ConstVal(float64(n))
	case lang.Var:
		if slot, ok := a.resolve(string(n)); ok {
			return st[slot]
		}
		return TopVal()
	case *lang.Bin:
		l := a.eval(n.L, st, a.sub(path, ".l"))
		r := a.eval(n.R, st, a.sub(path, ".r"))
		if n.Op == lang.OpDiv && a.emit && r.MayBeZero() {
			a.report(CheckDivZero, SevError, a.sub(path, ".r"), n.R,
				fmt.Sprintf("denominator %s may be zero (x/0 == 0 silently); guard with a comparison or max(_, ε)", r))
		}
		return binTransfer(n.Op, l, r)
	case *lang.If:
		c := a.eval(n.Cond, st, a.sub(path, ".cond"))
		// The runtime evaluates both branches (purity) but selects on the
		// condition; value-wise only the selected branch matters, so each
		// branch is analyzed under the refined state and infeasible
		// branches contribute nothing.
		thenSt := a.refine(n.Cond, true, st)
		elseSt := a.refine(n.Cond, false, st)
		out := unreachable()
		if thenSt != nil {
			out = a.eval(n.Then, thenSt, a.sub(path, ".then"))
		}
		if elseSt != nil {
			ev := a.eval(n.Else, elseSt, a.sub(path, ".else"))
			if thenSt != nil {
				out = out.Join(ev)
			} else {
				out = ev
			}
		}
		out.Fresh = out.Fresh || c.Fresh
		return out
	}
	return TopVal()
}

func (a *analyzer) sub(path, seg string) string {
	if !a.emit {
		return path
	}
	return path + seg
}

func (a *analyzer) evalSilent(e lang.Expr, st []AbsVal) AbsVal {
	saved := a.emit
	a.emit = false
	v := a.eval(e, st, "")
	a.emit = saved
	return v
}

func (a *analyzer) report(check string, sev Severity, path string, e lang.Expr, msg string) {
	expr := ""
	if e != nil {
		expr = e.String()
	}
	a.rep.Findings = append(a.rep.Findings, Finding{
		Check: check, Severity: sev, Where: a.where, Path: path, Expr: expr, Message: msg,
	})
}

// refine narrows st under the assumption that cond evaluates to want.
// Returns nil when the branch is infeasible, st itself when nothing can be
// narrowed, or a narrowed copy. Never emits findings.
func (a *analyzer) refine(cond lang.Expr, want bool, st []AbsVal) []AbsVal {
	switch n := cond.(type) {
	case lang.Const:
		v := float64(n)
		if (v != 0 || math.IsNaN(v)) == want {
			return st
		}
		return nil
	case lang.Var:
		slot, ok := a.resolve(string(n))
		if !ok {
			return st
		}
		cur := st[slot]
		if want {
			if truthiness(cur) == tFalse {
				return nil
			}
			return st
		}
		// Condition false: the value compared equal to zero, so it is
		// exactly 0 and not NaN.
		if !cur.I.Contains(0) {
			return nil
		}
		out := cloneSt(st)
		out[slot] = AbsVal{I: Point(0), Fresh: cur.Fresh}
		return out
	case *lang.Bin:
		switch n.Op {
		case lang.OpAnd:
			if want {
				st1 := a.refine(n.L, true, st)
				if st1 == nil {
					return nil
				}
				return a.refine(n.R, true, st1)
			}
			if a.refine(n.L, false, st) == nil && a.refine(n.R, false, st) == nil {
				return nil
			}
			return st
		case lang.OpOr:
			if !want {
				st1 := a.refine(n.L, false, st)
				if st1 == nil {
					return nil
				}
				return a.refine(n.R, false, st1)
			}
			if a.refine(n.L, true, st) == nil && a.refine(n.R, true, st) == nil {
				return nil
			}
			return st
		case lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe:
			return a.refineCmp(n, want, st)
		}
	}
	// Generic fallback (arithmetic or nested-If conditions): check
	// feasibility of the requested truth value without narrowing.
	switch truthiness(a.evalSilent(cond, st)) {
	case tTrue:
		if !want {
			return nil
		}
	case tFalse:
		if want {
			return nil
		}
	}
	return st
}

// refineCmp narrows st under "L op R == want" for comparison ops.
func (a *analyzer) refineCmp(n *lang.Bin, want bool, st []AbsVal) []AbsVal {
	op := n.Op
	if !want {
		switch op {
		case lang.OpNe:
			op = lang.OpEq // !(l != r) ⇒ l == r (and both non-NaN)
		case lang.OpEq:
			// !(l == r) ⇒ l != r or NaN involved: nothing to narrow, but
			// definitely-equal non-NaN points make the branch infeasible.
			if compare(lang.OpEq, a.evalSilent(n.L, st), a.evalSilent(n.R, st)) == tTrue {
				return nil
			}
			return st
		default:
			// A false ordered comparison may be explained by a NaN operand;
			// only narrow when neither side can be NaN.
			if a.evalSilent(n.L, st).NaN || a.evalSilent(n.R, st).NaN {
				return st
			}
			switch op {
			case lang.OpLt:
				op = lang.OpGe
			case lang.OpLe:
				op = lang.OpGt
			case lang.OpGt:
				op = lang.OpLe
			case lang.OpGe:
				op = lang.OpLt
			}
		}
	}

	lv, rv := a.evalSilent(n.L, st), a.evalSilent(n.R, st)
	if op == lang.OpNe {
		// "l != r" holds: unrepresentable as an interval, but definitely
		// -equal points make it infeasible.
		if compare(lang.OpEq, lv, rv) == tTrue {
			return nil
		}
		return st
	}
	// A true ordered comparison (or equality) implies both operands are
	// non-NaN; a definitely-NaN side makes the branch infeasible.
	if (lv.I.IsEmpty() && lv.NaN) || (rv.I.IsEmpty() && rv.NaN) {
		return nil
	}
	out := a.refineVarSide(st, n.L, op, rv)
	if out == nil {
		return nil
	}
	out = a.refineVarSide(out, n.R, flipCmp(op), lv)
	if out == nil {
		return nil
	}
	if compare(op, a.evalSilent(n.L, out), a.evalSilent(n.R, out)) == tFalse {
		return nil
	}
	return out
}

// refineVarSide narrows a bare-Var operand e under "e op other == true".
// The comparison being true clears the operand's NaN possibility; interval
// endpoints use Nextafter for the strict comparisons so the refinement is
// float-exact.
func (a *analyzer) refineVarSide(st []AbsVal, e lang.Expr, op lang.BinKind, other AbsVal) []AbsVal {
	v, ok := e.(lang.Var)
	if !ok {
		return st
	}
	slot, ok := a.resolve(string(v))
	if !ok {
		return st
	}
	cur := st[slot]
	nv := cur
	nv.NaN = false
	if !other.I.IsEmpty() {
		switch op {
		case lang.OpLt:
			nv.I.Hi = math.Min(nv.I.Hi, math.Nextafter(other.I.Hi, math.Inf(-1)))
		case lang.OpLe:
			nv.I.Hi = math.Min(nv.I.Hi, other.I.Hi)
		case lang.OpGt:
			nv.I.Lo = math.Max(nv.I.Lo, math.Nextafter(other.I.Lo, math.Inf(1)))
		case lang.OpGe:
			nv.I.Lo = math.Max(nv.I.Lo, other.I.Lo)
		case lang.OpEq:
			nv.I = nv.I.Meet(other.I)
		}
	}
	if nv.I.IsEmpty() && !nv.NaN {
		return nil
	}
	if nv == cur {
		return st
	}
	out := cloneSt(st)
	out[slot] = nv
	return out
}

func flipCmp(op lang.BinKind) lang.BinKind {
	switch op {
	case lang.OpLt:
		return lang.OpGt
	case lang.OpLe:
		return lang.OpGe
	case lang.OpGt:
		return lang.OpLt
	case lang.OpGe:
		return lang.OpLe
	}
	return op // Eq is symmetric
}

// checkInstrs evaluates every control-program expression against the
// stable invariant and applies the write/wait checks.
func (a *analyzer) checkInstrs(st []AbsVal) {
	for i, in := range a.prog.Instrs {
		switch n := in.(type) {
		case lang.SetCwnd:
			a.where = Where{Kind: "instr", Index: i, Name: "Cwnd"}
			v := a.eval(n.E, st, "$")
			a.checkWrite("cwnd", v, a.cfg.CwndMin, a.cfg.CwndMax, n.E)
		case lang.SetRate:
			a.where = Where{Kind: "instr", Index: i, Name: "Rate"}
			v := a.eval(n.E, st, "$")
			a.checkWrite("rate", v, a.cfg.RateMin, a.cfg.RateMax, n.E)
		case lang.Wait:
			a.where = Where{Kind: "instr", Index: i, Name: "Wait"}
			a.checkWait(a.eval(n.Seconds, st, "$"), n.Seconds)
		case lang.WaitRtts:
			a.where = Where{Kind: "instr", Index: i, Name: "WaitRtts"}
			a.checkWait(a.eval(n.Rtts, st, "$"), n.Rtts)
		}
	}
}

func (a *analyzer) checkWrite(what string, v AbsVal, lo, hi float64, e lang.Expr) {
	if v.NaN {
		a.report(CheckNaNWrite, SevError, "$", e,
			fmt.Sprintf("%s write may be NaN (%s): the runtime clamp does not catch NaN; guard the inputs", what, v))
	}
	if !v.I.IsEmpty() && (v.I.Lo < lo || v.I.Hi > hi) {
		a.report(CheckBounds, SevError, "$", e,
			fmt.Sprintf("%s write %s escapes [%g, %g]; wrap in an explicit min/max clamp", what, v, lo, hi))
	}
}

func (a *analyzer) checkWait(v AbsVal, e lang.Expr) {
	if v.NaN {
		a.report(CheckWait, SevWarn, "$", e, fmt.Sprintf("wait duration may be NaN (%s)", v))
	}
	if !v.I.IsEmpty() && v.I.Hi <= 0 {
		a.report(CheckWait, SevWarn, "$", e,
			fmt.Sprintf("wait duration %s is never positive: the program busy-loops its instruction list", v))
	}
}

// checkDeadUpdates flags a fold update whose result is overwritten by a
// later update to the same register in the same step with no intervening
// read: the computation is dead per-packet.
func (a *analyzer) checkDeadUpdates() {
	if a.prog.Measure.Mode != lang.MeasureFold {
		return
	}
	ups := a.prog.Measure.Fold.Updates
	for i, u := range ups {
		for j := i + 1; j < len(ups); j++ {
			if exprReads(ups[j].E, u.Dst) {
				break // a later update in the same step observes the value
			}
			if ups[j].Dst == u.Dst {
				a.where = Where{Kind: "update", Index: i, Name: u.Dst}
				a.report(CheckDeadUpdate, SevWarn, "$", u.E,
					fmt.Sprintf("value is overwritten by update %d before any read", j))
				break
			}
		}
	}
}

// checkUnreadRegisters flags registers no expression ever reads. They are
// still shipped in reports (write-only telemetry is legitimate), hence a
// warning, not an error.
func (a *analyzer) checkUnreadRegisters(regNames []string) {
	if a.prog.Measure.Mode != lang.MeasureFold {
		return
	}
	for _, name := range regNames {
		read := false
		for _, u := range a.prog.Measure.Fold.Updates {
			if exprReads(u.E, name) {
				read = true
				break
			}
		}
		if !read {
			for _, in := range a.prog.Instrs {
				if e := instrExpr(in); e != nil && exprReads(e, name) {
					read = true
					break
				}
			}
		}
		if !read {
			a.where = Where{Kind: "fold", Name: name}
			a.report(CheckUnreadReg, SevWarn, "$", nil,
				"register is written but never read by any expression (it is still shipped in reports)")
		}
	}
}

// checkReportLiveness: a program with no Report never ships measurements;
// in fold mode the registers also never reset, and in vector mode the
// sample buffer grows without bound — install-blocking. EWMA mode merely
// wastes the measurement machinery — advisory.
func (a *analyzer) checkReportLiveness() {
	for _, in := range a.prog.Instrs {
		if _, ok := in.(lang.Report); ok {
			return
		}
	}
	a.where = Where{Kind: "program"}
	switch a.prog.Measure.Mode {
	case lang.MeasureFold:
		a.report(CheckNoReport, SevError, "$", nil,
			"fold program never reports: registers accumulate forever and measurements never reach the agent")
	case lang.MeasureVector:
		a.report(CheckNoReport, SevError, "$", nil,
			"vector program never reports: the per-packet sample buffer grows without bound")
	default:
		a.report(CheckNoReport, SevWarn, "$", nil,
			"program never reports: measurements never reach the agent")
	}
}

// checkFreshInput warns when no register's stable value derives from a
// packet field: the fold summarizes nothing the datapath measured.
func (a *analyzer) checkFreshInput(st []AbsVal, nregs int) {
	if a.prog.Measure.Mode != lang.MeasureFold || nregs == 0 {
		return
	}
	for i := 0; i < nregs; i++ {
		if st[lang.RegSlot(i)].Fresh {
			return
		}
	}
	a.where = Where{Kind: "program"}
	a.report(CheckNoFresh, SevWarn, "$", nil,
		"no fold register derives from a pkt.* field: the fold never incorporates fresh measurements")
}

func exprReads(e lang.Expr, name string) bool {
	for _, v := range lang.Vars(e) {
		if v == name {
			return true
		}
	}
	return false
}

func instrExpr(in lang.Instr) lang.Expr {
	switch n := in.(type) {
	case lang.SetRate:
		return n.E
	case lang.SetCwnd:
		return n.E
	case lang.Wait:
		return n.Seconds
	case lang.WaitRtts:
		return n.Rtts
	}
	return nil
}

func cloneSt(st []AbsVal) []AbsVal {
	out := make([]AbsVal, len(st))
	copy(out, st)
	return out
}
