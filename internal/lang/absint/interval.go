// Package absint is an abstract interpreter over the datapath DSL
// (internal/lang): fold update lists and control-program expressions are
// evaluated over an interval lattice with NaN-taint and fresh-measurement
// provenance bits, iterated to a fixpoint across fold steps with threshold
// widening. The resulting invariant proves, at install time, the properties
// the datapath otherwise only checks defensively per ACK: division by a
// denominator that may be zero, NaN reaching a cwnd/rate write, and
// cwnd/rate writes escaping the runtime clamp bounds. See DESIGN.md §13.
//
// The abstract semantics mirror lang's concrete semantics exactly,
// including the total-arithmetic squash: every binary arithmetic result
// that would be NaN or ±Inf evaluates to 0 at runtime, so the transfer
// functions fold 0 into any result interval that could overflow or absorb
// a NaN operand. Soundness against the runtime is pinned by the
// FuzzStackVsRegister harness (verifier-silent locations never trip
// runtime defensive checks over NaN/Inf-biased packet streams).
package absint

import "math"

// Interval is a closed interval of float64 values with ±Inf endpoints
// allowed. The canonical empty interval is [+Inf, -Inf]; an empty interval
// combined with the NaN bit set (see AbsVal) represents "definitely NaN".
// Endpoints are never NaN.
type Interval struct {
	Lo, Hi float64
}

// Top is the interval of all non-NaN values.
func Top() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// Empty is the canonical empty interval.
func Empty() Interval { return Interval{math.Inf(1), math.Inf(-1)} }

// Point is the singleton interval {v}.
func Point(v float64) Interval { return Interval{v, v} }

// IsEmpty reports whether the interval contains no values.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsPoint reports whether the interval is a singleton.
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// HasInf reports whether either endpoint is infinite (the interval admits
// values of unbounded magnitude, or ±Inf itself).
func (iv Interval) HasInf() bool { return math.IsInf(iv.Lo, -1) || math.IsInf(iv.Hi, 1) }

// Join returns the smallest interval containing both operands.
func (iv Interval) Join(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi)}
}

// Meet returns the intersection.
func (iv Interval) Meet(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty()
	}
	m := Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
	if m.IsEmpty() {
		return Empty()
	}
	return m
}

// Widening thresholds: when a fold register keeps growing across fixpoint
// iterations, its bound jumps to the next threshold instead of creeping by
// one EWMA step per iteration (which would never terminate). The values are
// the natural scales of the domain: booleans/fractions (1), RTT-ish seconds
// and packet counts (1024, 65536), the cwnd clamp (2^30 bytes), the rate
// clamp (1e12 bytes/sec), and finally ±Inf.
var (
	hiThresholds = []float64{0, 1, 1024, 65536, 1 << 30, 1e12, math.Inf(1)}
	loThresholds = []float64{0, -1, -65536, -1e12, math.Inf(-1)}
)

// Widen accelerates convergence: endpoints of next that moved past the
// corresponding endpoint of prev are pushed outward to the nearest
// threshold. Endpoints that did not move are kept exact.
func (iv Interval) Widen(next Interval) Interval {
	if iv.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return iv
	}
	out := next
	if next.Hi > iv.Hi {
		out.Hi = math.Inf(1)
		for _, t := range hiThresholds {
			if t >= next.Hi {
				out.Hi = t
				break
			}
		}
	}
	if next.Lo < iv.Lo {
		out.Lo = math.Inf(-1)
		for _, t := range loThresholds {
			if t <= next.Lo {
				out.Lo = t
				break
			}
		}
	}
	return out
}

// iArith computes the interval image of a total (but possibly overflowing)
// binary arithmetic op from the endpoint candidates. A NaN candidate
// (Inf-Inf, 0·Inf, Inf/Inf) means the op is discontinuous across the
// operand boxes, so the result degrades to Top; the caller separately folds
// in the runtime's NaN/Inf→0 squash.
func iArith(f func(a, b float64) float64, l, r Interval) Interval {
	if l.IsEmpty() || r.IsEmpty() {
		return Empty()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, a := range [2]float64{l.Lo, l.Hi} {
		for _, b := range [2]float64{r.Lo, r.Hi} {
			v := f(a, b)
			if math.IsNaN(v) {
				return Top()
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	return Interval{lo, hi}
}

// iDiv is the interval image of l / r for denominators that exclude zero;
// denominators containing zero degrade to Top (the caller has already
// flagged the potential zero and the runtime substitutes 0, which Top
// contains). A denominator that is exactly {0} yields exactly {0}.
func iDiv(l, r Interval) Interval {
	if l.IsEmpty() || r.IsEmpty() {
		return Empty()
	}
	if r.Lo == 0 && r.Hi == 0 {
		return Point(0)
	}
	if r.Contains(0) {
		return Top()
	}
	return iArith(func(a, b float64) float64 { return a / b }, l, r)
}
