package lang

import "fmt"

// The datapath executes expressions as compiled stack bytecode rather than
// walking the AST: per-ACK work must be cheap and allocation-free (§2.3,
// §2.4), and constrained datapaths (the paper's SmartNIC/FPGA targets) would
// realistically consume exactly this kind of flat instruction stream.

// OpCode is a bytecode operation.
type OpCode uint8

// Bytecode operations. Binary ops pop two operands and push one; opSelect
// pops (cond, then, else) and pushes the selected value.
const (
	opConst  OpCode = iota // push consts[arg]
	opVar                  // push vars[arg]
	opBin                  // apply BinKind(arg) to top two stack slots
	opSelect               // ternary select
)

// Inst is a single bytecode instruction.
type Inst struct {
	Op  OpCode
	Arg uint16
}

// Code is a compiled expression: a flat instruction stream plus a constant
// pool. Eval is allocation-free given a scratch stack of MaxStack slots.
type Code struct {
	Insts    []Inst
	Consts   []float64
	MaxStack int
	// maxVarPlus1 is one past the highest variable slot the program reads;
	// Eval hoists its per-instruction table bounds check to a single
	// comparison against it.
	maxVarPlus1 int
	// verified records that verifyStack proved the stream well-formed
	// (operand depths sufficient, const indexes in pool, final depth one),
	// unlocking the checkless fast loop. Hand-assembled Code values leave
	// it false and always take the defensive interpreter.
	verified bool
}

// Resolver maps variable names to slots in the datapath's variable table.
type Resolver func(name string) (slot int, ok bool)

// Compile lowers e to bytecode, resolving variable names to slots, and
// verifies the result: the stream must leave exactly one value and every
// opBin/opSelect must have its operands, so Eval's defensive underflow
// paths are unreachable-by-construction for compiled programs.
func Compile(e Expr, resolve Resolver) (*Code, error) {
	c := &Code{}
	depth, err := c.emit(e, resolve, 0)
	if err != nil {
		return nil, err
	}
	if depth != 1 {
		return nil, fmt.Errorf("lang: compiled expression leaves %d values on the stack, want 1", depth)
	}
	if err := c.verifyStack(); err != nil {
		return nil, err
	}
	c.verified = true
	return c, nil
}

// verifyStack replays the instruction stream symbolically: every operand
// pop is backed by a prior push, every const index is inside the pool,
// every opBin carries a valid operator, and exactly one value remains.
func (c *Code) verifyStack() error {
	depth := 0
	for i, in := range c.Insts {
		switch in.Op {
		case opConst:
			if int(in.Arg) >= len(c.Consts) {
				return fmt.Errorf("lang: inst %d: const index %d outside pool of %d", i, in.Arg, len(c.Consts))
			}
			depth++
		case opVar:
			depth++
		case opBin:
			if BinKind(in.Arg) >= numBinKinds {
				return fmt.Errorf("lang: inst %d: invalid binary op %d", i, in.Arg)
			}
			if depth < 2 {
				return fmt.Errorf("lang: inst %d: binary op over %d operands", i, depth)
			}
			depth--
		case opSelect:
			if depth < 3 {
				return fmt.Errorf("lang: inst %d: select over %d operands", i, depth)
			}
			depth -= 2
		default:
			return fmt.Errorf("lang: inst %d: unknown opcode %d", i, in.Op)
		}
		if depth > c.MaxStack {
			return fmt.Errorf("lang: inst %d: stack depth %d exceeds MaxStack %d", i, depth, c.MaxStack)
		}
	}
	if depth != 1 {
		return fmt.Errorf("lang: instruction stream leaves %d values, want 1", depth)
	}
	return nil
}

// emit compiles e and returns the stack depth after its value is pushed,
// updating MaxStack. cur is the depth before evaluation.
func (c *Code) emit(e Expr, resolve Resolver, cur int) (int, error) {
	switch n := e.(type) {
	case Const:
		idx := c.constIndex(float64(n))
		c.Insts = append(c.Insts, Inst{opConst, idx})
		return c.bump(cur + 1), nil
	case Var:
		slot, ok := resolve(string(n))
		if !ok {
			return 0, fmt.Errorf("lang: unknown variable %q", string(n))
		}
		if slot < 0 || slot > 0xFFFF {
			return 0, fmt.Errorf("lang: variable slot %d out of range", slot)
		}
		if slot+1 > c.maxVarPlus1 {
			c.maxVarPlus1 = slot + 1
		}
		c.Insts = append(c.Insts, Inst{opVar, uint16(slot)})
		return c.bump(cur + 1), nil
	case *Bin:
		if n.Op >= numBinKinds {
			return 0, fmt.Errorf("lang: invalid binary op %d", n.Op)
		}
		d, err := c.emit(n.L, resolve, cur)
		if err != nil {
			return 0, err
		}
		d, err = c.emit(n.R, resolve, d)
		if err != nil {
			return 0, err
		}
		c.Insts = append(c.Insts, Inst{opBin, uint16(n.Op)})
		return d - 1, nil
	case *If:
		d, err := c.emit(n.Cond, resolve, cur)
		if err != nil {
			return 0, err
		}
		d, err = c.emit(n.Then, resolve, d)
		if err != nil {
			return 0, err
		}
		d, err = c.emit(n.Else, resolve, d)
		if err != nil {
			return 0, err
		}
		c.Insts = append(c.Insts, Inst{opSelect, 0})
		return d - 2, nil
	default:
		return 0, fmt.Errorf("lang: cannot compile %T", e)
	}
}

func (c *Code) bump(d int) int {
	if d > c.MaxStack {
		c.MaxStack = d
	}
	return d
}

func (c *Code) constIndex(v float64) uint16 {
	for i, existing := range c.Consts {
		if existing == v {
			return uint16(i)
		}
	}
	c.Consts = append(c.Consts, v)
	return uint16(len(c.Consts) - 1)
}

// Eval executes the bytecode against the variable table. stack must have at
// least MaxStack capacity; pass nil to allocate one. Out-of-range variable
// slots read as 0 (the datapath must be total, never trap).
//
// Compiled programs whose variable reads all land inside vars take a fast
// loop with the per-instruction checks hoisted out: verifyStack proved the
// const indexes and operand depths at compile time, and a single
// len(vars) comparison covers every variable read.
func (c *Code) Eval(vars []float64, stack []float64) float64 {
	if cap(stack) < c.MaxStack {
		stack = make([]float64, 0, c.MaxStack)
	}
	if c.verified && len(vars) >= c.maxVarPlus1 {
		return c.evalFast(vars, stack[:0])
	}
	s := stack[:0]
	for _, in := range c.Insts {
		switch in.Op {
		case opConst:
			if int(in.Arg) < len(c.Consts) {
				s = append(s, c.Consts[in.Arg])
			} else {
				s = append(s, 0)
			}
		case opVar:
			if int(in.Arg) < len(vars) {
				s = append(s, vars[in.Arg])
			} else {
				s = append(s, 0)
			}
		case opBin:
			n := len(s)
			if n < 2 {
				return 0
			}
			s[n-2] = applyBin(BinKind(in.Arg), s[n-2], s[n-1])
			s = s[:n-1]
		case opSelect:
			n := len(s)
			if n < 3 {
				return 0
			}
			cond, then, els := s[n-3], s[n-2], s[n-1]
			if cond != 0 {
				s[n-3] = then
			} else {
				s[n-3] = els
			}
			s = s[:n-2]
		}
	}
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// evalFast is the checked loop minus the checks verifyStack made
// redundant. Only reachable from Eval for verified programs with a large
// enough variable table.
func (c *Code) evalFast(vars []float64, s []float64) float64 {
	for _, in := range c.Insts {
		switch in.Op {
		case opConst:
			s = append(s, c.Consts[in.Arg])
		case opVar:
			s = append(s, vars[in.Arg])
		case opBin:
			n := len(s)
			s[n-2] = applyBin(BinKind(in.Arg), s[n-2], s[n-1])
			s = s[:n-1]
		case opSelect:
			n := len(s)
			if s[n-3] != 0 {
				s[n-3] = s[n-2]
			} else {
				s[n-3] = s[n-1]
			}
			s = s[:n-2]
		}
	}
	return s[len(s)-1]
}
