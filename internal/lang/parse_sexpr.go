package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseFold parses the S-expression fold dialect. Grammar:
//
//	fold    := '(' 'def' reg+ ')' update*
//	reg     := '(' name init ')'
//	update  := '(' ':=' name expr ')'
//	expr    := number | ident
//	        | '(' binop expr expr ')'
//	        | '(' 'if' expr expr expr ')'
//	binop   := + - * / min max < <= > >= == != and or
//
// Example (the paper's Vegas fold, §2.4):
//
//	(def (base_rtt 1e9) (delta 0))
//	(:= base_rtt (min base_rtt pkt.rtt))
//	(:= delta (if (< (/ (* (- pkt.rtt base_rtt) cwnd) (max base_rtt 1e-9)) 2)
//	              (+ delta 1)
//	              (if (> (/ (* (- pkt.rtt base_rtt) cwnd) (max base_rtt 1e-9)) 4)
//	                  (- delta 1)
//	                  delta)))
func ParseFold(src string) (*FoldSpec, error) {
	nodes, err := parseSexprs(src)
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("lang: empty fold")
	}
	spec := &FoldSpec{}
	defs, ok := nodes[0].(sexprList)
	if !ok || len(defs) == 0 || atomOf(defs[0]) != "def" {
		return nil, fmt.Errorf("lang: fold must start with a (def ...) form")
	}
	for _, d := range defs[1:] {
		pair, ok := d.(sexprList)
		if !ok || len(pair) != 2 {
			return nil, fmt.Errorf("lang: register definition must be (name init), got %v", d)
		}
		name := atomOf(pair[0])
		if name == "" {
			return nil, fmt.Errorf("lang: bad register name in %v", d)
		}
		init, err := atomNumber(pair[1])
		if err != nil {
			return nil, fmt.Errorf("lang: bad register init for %q: %v", name, err)
		}
		spec.Regs = append(spec.Regs, RegDef{Name: name, Init: init})
	}
	for _, n := range nodes[1:] {
		upd, ok := n.(sexprList)
		if !ok || len(upd) != 3 || atomOf(upd[0]) != ":=" {
			return nil, fmt.Errorf("lang: update must be (:= name expr), got %v", n)
		}
		dst := atomOf(upd[1])
		if dst == "" {
			return nil, fmt.Errorf("lang: bad assignment target in %v", n)
		}
		e, err := sexprToExpr(upd[2])
		if err != nil {
			return nil, err
		}
		spec.Updates = append(spec.Updates, Assign{Dst: dst, E: e})
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ParseExpr parses a single S-expression expression, for tests and tools.
func ParseExpr(src string) (Expr, error) {
	nodes, err := parseSexprs(src)
	if err != nil {
		return nil, err
	}
	if len(nodes) != 1 {
		return nil, fmt.Errorf("lang: expected one expression, got %d", len(nodes))
	}
	return sexprToExpr(nodes[0])
}

var sexprBinOps = map[string]BinKind{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv,
	"min": OpMin, "max": OpMax,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "==": OpEq, "!=": OpNe,
	"and": OpAnd, "or": OpOr,
}

func sexprToExpr(n sexpr) (Expr, error) {
	switch v := n.(type) {
	case sexprAtom:
		if f, err := strconv.ParseFloat(string(v), 64); err == nil {
			return Const(f), nil
		}
		return Var(string(v)), nil
	case sexprList:
		if len(v) == 0 {
			return nil, fmt.Errorf("lang: empty list expression")
		}
		head := atomOf(v[0])
		if head == "if" {
			if len(v) != 4 {
				return nil, fmt.Errorf("lang: (if cond then else) needs 3 arguments, got %d", len(v)-1)
			}
			cond, err := sexprToExpr(v[1])
			if err != nil {
				return nil, err
			}
			then, err := sexprToExpr(v[2])
			if err != nil {
				return nil, err
			}
			els, err := sexprToExpr(v[3])
			if err != nil {
				return nil, err
			}
			return &If{cond, then, els}, nil
		}
		op, ok := sexprBinOps[head]
		if !ok {
			return nil, fmt.Errorf("lang: unknown operator %q", head)
		}
		if len(v) != 3 {
			return nil, fmt.Errorf("lang: operator %q needs 2 arguments, got %d", head, len(v)-1)
		}
		l, err := sexprToExpr(v[1])
		if err != nil {
			return nil, err
		}
		r, err := sexprToExpr(v[2])
		if err != nil {
			return nil, err
		}
		return &Bin{op, l, r}, nil
	default:
		return nil, fmt.Errorf("lang: bad S-expression node %T", n)
	}
}

// S-expression reader.

type sexpr interface{ sexprNode() }
type sexprAtom string
type sexprList []sexpr

func (sexprAtom) sexprNode() {}
func (sexprList) sexprNode() {}

func atomOf(n sexpr) string {
	if a, ok := n.(sexprAtom); ok {
		return string(a)
	}
	return ""
}

func atomNumber(n sexpr) (float64, error) {
	a, ok := n.(sexprAtom)
	if !ok {
		return 0, fmt.Errorf("expected number, got list")
	}
	return strconv.ParseFloat(string(a), 64)
}

func parseSexprs(src string) ([]sexpr, error) {
	toks, err := sexprTokens(src)
	if err != nil {
		return nil, err
	}
	var nodes []sexpr
	pos := 0
	for pos < len(toks) {
		n, next, err := parseSexprAt(toks, pos)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
		pos = next
	}
	return nodes, nil
}

func parseSexprAt(toks []string, pos int) (sexpr, int, error) {
	if pos >= len(toks) {
		return nil, pos, fmt.Errorf("lang: unexpected end of input")
	}
	tok := toks[pos]
	switch tok {
	case "(":
		var list sexprList
		pos++
		for {
			if pos >= len(toks) {
				return nil, pos, fmt.Errorf("lang: unclosed parenthesis")
			}
			if toks[pos] == ")" {
				return list, pos + 1, nil
			}
			n, next, err := parseSexprAt(toks, pos)
			if err != nil {
				return nil, pos, err
			}
			list = append(list, n)
			pos = next
		}
	case ")":
		return nil, pos, fmt.Errorf("lang: unexpected ')'")
	default:
		return sexprAtom(tok), pos + 1, nil
	}
}

func sexprTokens(src string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range src {
		switch {
		case r == '(' || r == ')':
			flush()
			toks = append(toks, string(r))
		case unicode.IsSpace(r):
			flush()
		case r == ';':
			// Comments run to end of line; but we tokenize rune-by-rune, so
			// mark and skip via state below.
			flush()
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	// Strip comment tokens (; to end of line handled coarsely: any token
	// starting with ';' and subsequent tokens on the same line are rare in
	// practice; we simply reject ';' to keep the grammar unambiguous).
	for _, t := range toks {
		if strings.HasPrefix(t, ";") {
			return nil, fmt.Errorf("lang: comments are not supported in fold source")
		}
	}
	return toks, nil
}
