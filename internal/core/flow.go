package core

import (
	"fmt"
	"time"

	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/lang/absint"
	"github.com/ccp-repro/ccp/internal/proto"
)

// FlowInfo describes a flow as announced by its datapath.
type FlowInfo struct {
	SID      uint32
	MSS      int
	InitCwnd int // bytes
	SrcAddr  string
	DstAddr  string
	// Alg is the algorithm the datapath requested (may be empty).
	Alg string
}

// Policy is the agent-imposed clamp on a flow's decisions (§2: "the agent
// ... imposes policies on the decisions of the congestion control
// algorithms, e.g., per-connection maximum transmission rates").
type Policy struct {
	// MaxRateBps caps the pacing rate in bytes/sec (0 = unlimited).
	MaxRateBps float64
	// MaxCwndBytes caps the congestion window (0 = unlimited).
	MaxCwndBytes int
}

// PolicyFunc selects the policy for a new flow.
type PolicyFunc func(info FlowInfo) Policy

// Flow is the algorithm's handle on one datapath flow: it carries flow
// metadata and the Install/SetCwnd/SetRate channel back to the datapath,
// with the agent's policy applied.
type Flow struct {
	Info   FlowInfo
	policy Policy
	send   func(proto.Msg) error

	installed *lang.Program
	// progBytes is the wire encoding of installed, kept so snapshots carry
	// the program without re-marshalling it per snapshot tick.
	progBytes []byte
	created   time.Duration

	// verify pre-flights programs at Install (AgentConfig.Verify); logf
	// carries the agent's diagnostic sink (nil on probe flows).
	verify absint.Mode
	logf   func(format string, args ...any)

	// Datapath install-refusal tracking: prevInstalled/prevProgBytes hold the
	// program the datapath was running before the newest Install, so an
	// InstallErr for that Install rolls the agent's view back to what is
	// actually live (report-name alignment depends on it). lastInstallSeq is
	// the control sequence of the newest Install sent.
	prevInstalled  *lang.Program
	prevProgBytes  []byte
	lastInstallSeq uint32
	installErrs    int
	lastInstallErr string

	// ctrlSeq numbers outgoing control messages (Install, SetCwnd, SetRate)
	// in one shared sequence space, so the datapath can discard reordered or
	// duplicated copies of superseded decisions. It starts from the Seq the
	// datapath announced in Create, which on a resync is the newest sequence
	// it has applied — a restarted agent resumes numbering above it instead
	// of looking stale.
	ctrlSeq uint32

	// Stats observed by the agent for this flow.
	reports int
	urgents int

	// names caches reportNames' result: report dispatch is the agent's hot
	// path and the name list only changes on Install.
	names []string
}

// nextSeq allocates the next control sequence number, skipping 0 on wrap
// (seq 0 marks an unsequenced message on the wire).
func (f *Flow) nextSeq() uint32 {
	f.ctrlSeq++
	if f.ctrlSeq == 0 {
		f.ctrlSeq = 1
	}
	return f.ctrlSeq
}

// emit transmits one agent→datapath message. A flow restored from a
// snapshot has no channel until its datapath's first message reaches the
// promoted agent (see Agent.RestoreFlow); decisions made before that are
// dropped — the datapath keeps enforcing the last state it applied.
func (f *Flow) emit(m proto.Msg) error {
	if f.send == nil {
		return nil
	}
	return f.send(m)
}

// Install sends a control program to the datapath, first rewriting it under
// the flow's policy: every Rate expression is clamped with min(e, maxRate)
// and every Cwnd expression with min(e, maxCwnd). Expression rewriting means
// the policy holds even between agent decisions, inside the datapath.
func (f *Flow) Install(p *lang.Program) error {
	if p == nil {
		return fmt.Errorf("core: nil program")
	}
	clamped := f.applyPolicy(p)
	if err := clamped.Validate(); err != nil {
		return err
	}
	if f.verify == absint.ModeStrict || f.verify == absint.ModeWarn {
		rep, err := absint.Analyze(clamped, absint.Datapath())
		if err != nil {
			return err
		}
		if rep.HasErrors() {
			if f.verify == absint.ModeStrict {
				return fmt.Errorf("core: flow %d: program refused by verifier: %w",
					f.Info.SID, rep.Err())
			}
			f.logfSafe("core: flow %d: verifier: %v", f.Info.SID, rep.Err())
		}
	}
	data, err := lang.MarshalProgram(clamped)
	if err != nil {
		return err
	}
	seq := f.nextSeq()
	if err := f.emit(&proto.Install{SID: f.Info.SID, Seq: seq, Prog: data}); err != nil {
		return err
	}
	f.prevInstalled, f.prevProgBytes = f.installed, f.progBytes
	f.lastInstallSeq = seq
	f.installed = clamped
	f.progBytes = data
	f.names = nil // report field names follow the installed program
	return nil
}

func (f *Flow) logfSafe(format string, args ...any) {
	if f.logf != nil {
		f.logf(format, args...)
	}
}

// noteInstallErr records a datapath install refusal. A refusal of the newest
// Install rolls the agent's view of the installed program back to the one the
// datapath actually kept, so report-field naming stays aligned; a refusal of
// an older, already-superseded Install only counts.
func (f *Flow) noteInstallErr(seq uint32, reason string) {
	f.installErrs++
	f.lastInstallErr = reason
	if seq != 0 && seq == f.lastInstallSeq {
		f.installed, f.progBytes = f.prevInstalled, f.prevProgBytes
		f.names = nil
	}
}

// InstallErrs returns how many of this flow's installs the datapath refused;
// LastInstallErr is the most recent refusal diagnostic.
func (f *Flow) InstallErrs() int       { return f.installErrs }
func (f *Flow) LastInstallErr() string { return f.lastInstallErr }

// SetCwnd directly sets the congestion window (bytes), clamped by policy.
// It is the degenerate control path for datapaths without program support.
func (f *Flow) SetCwnd(bytes int) error {
	if f.policy.MaxCwndBytes > 0 && bytes > f.policy.MaxCwndBytes {
		bytes = f.policy.MaxCwndBytes
	}
	if bytes < 0 {
		bytes = 0
	}
	return f.emit(&proto.SetCwnd{SID: f.Info.SID, Seq: f.nextSeq(), Bytes: uint32(bytes)})
}

// SetRate directly sets the pacing rate (bytes/sec), clamped by policy.
func (f *Flow) SetRate(bps float64) error {
	if f.policy.MaxRateBps > 0 && bps > f.policy.MaxRateBps {
		bps = f.policy.MaxRateBps
	}
	if bps < 0 {
		bps = 0
	}
	return f.emit(&proto.SetRate{SID: f.Info.SID, Seq: f.nextSeq(), Bps: bps})
}

// Backoff asks the flow's datapath to stretch its report interval by
// factor — the overload-degradation signal an algorithm (or the sharded
// runtime, which sends it directly when it sheds a report) uses to coarsen
// measurement frequency instead of dropping decisions. Advisory: it carries
// no control sequence number and does not count as control liveness at the
// datapath. Factors below 1 are rejected by the wire codec, so clamp here.
func (f *Flow) Backoff(factor float64) error {
	if factor < 1 {
		factor = 1
	}
	return f.emit(&proto.Backoff{SID: f.Info.SID, Factor: factor})
}

// Installed returns the most recently installed (policy-rewritten) program,
// or nil before the first Install.
func (f *Flow) Installed() *lang.Program { return f.installed }

// Policy returns the agent policy governing this flow.
func (f *Flow) Policy() Policy { return f.policy }

// applyPolicy rewrites p's control expressions under the flow policy.
func (f *Flow) applyPolicy(p *lang.Program) *lang.Program {
	if f.policy.MaxRateBps <= 0 && f.policy.MaxCwndBytes <= 0 {
		return p
	}
	out := *p
	out.Instrs = make([]lang.Instr, len(p.Instrs))
	for i, in := range p.Instrs {
		switch n := in.(type) {
		case lang.SetRate:
			if f.policy.MaxRateBps > 0 {
				out.Instrs[i] = lang.SetRate{E: lang.Min(n.E, lang.C(f.policy.MaxRateBps))}
			} else {
				out.Instrs[i] = n
			}
		case lang.SetCwnd:
			if f.policy.MaxCwndBytes > 0 {
				out.Instrs[i] = lang.SetCwnd{E: lang.Min(n.E, lang.C(float64(f.policy.MaxCwndBytes)))}
			} else {
				out.Instrs[i] = n
			}
		default:
			out.Instrs[i] = in
		}
	}
	return &out
}

// reportNames returns the field names for incoming scalar measurements,
// based on the installed program (EWMA defaults before any install). The
// list is cached until the next Install.
func (f *Flow) reportNames() []string {
	if f.names == nil {
		if f.installed == nil {
			f.names = lang.EWMAReportNames()
		} else {
			f.names = f.installed.RegNames()
		}
	}
	return f.names
}

// vectorFields returns the per-packet fields for vector measurements.
func (f *Flow) vectorFields() []lang.Field {
	if f.installed == nil {
		return nil
	}
	return f.installed.Measure.Fields
}
