// Package core implements the paper's primary contribution: the congestion
// control plane (CCP) agent and the user-space API congestion control
// algorithms are written against (Table 3).
//
// An algorithm implements Alg — Init, OnMeasurement, OnUrgent — and modifies
// sending behaviour by calling Install (or the SetCwnd/SetRate shorthands)
// on its Flow handle. The agent glues algorithms to datapaths: it speaks the
// proto wire protocol, instantiates one algorithm per flow (different flows
// may run different algorithms, §2), and imposes operator policies on
// algorithm decisions before they reach the datapath.
package core

import (
	"fmt"
	"sort"

	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// Measurement is a batch of datapath measurements delivered to
// OnMeasurement: named scalar fields (fold registers or the EWMA defaults)
// and, in vector mode, per-packet samples.
//
// Ownership: Values and Samples alias decode scratch that the agent reuses
// for the next report — they are valid only for the duration of the
// OnMeasurement call. An algorithm that needs history must copy the numbers
// it cares about into its own state.
type Measurement struct {
	// Seq is the per-flow report sequence number.
	Seq uint32
	// Names are the scalar field names, parallel to Values.
	Names []string
	// Values are the scalar field values.
	Values []float64
	// Samples holds per-packet rows in vector mode, nil otherwise.
	Samples []PktSample
}

// Get returns the named scalar field.
func (m *Measurement) Get(name string) (float64, bool) {
	for i, n := range m.Names {
		if n == name && i < len(m.Values) {
			return m.Values[i], true
		}
	}
	return 0, false
}

// GetOr returns the named scalar field or def if absent.
func (m *Measurement) GetOr(name string, def float64) float64 {
	if v, ok := m.Get(name); ok {
		return v
	}
	return def
}

// PktSample is one packet's measurements in a vector report.
type PktSample struct {
	fields []lang.Field
	row    []float64
}

// Get returns the sample's value for field f (0 if the field was not in the
// installed vector specification).
func (p PktSample) Get(f lang.Field) float64 {
	for i, pf := range p.fields {
		if pf == f && i < len(p.row) {
			return p.row[i]
		}
	}
	return 0
}

// UrgentEvent is an urgent datapath notification (§2.1): congestion signals
// delivered immediately rather than on the batching schedule.
type UrgentEvent struct {
	// Kind is the event class: dupack (loss), timeout, or ecn.
	Kind proto.UrgentKind
	// Value is event-specific: bytes lost for dupack/timeout.
	Value float64
}

// Alg is the CCP congestion control API (Table 3). One instance exists per
// flow; the agent serializes all calls for a given flow.
type Alg interface {
	// Name identifies the algorithm (used for per-flow selection).
	Name() string
	// Init is called when the datapath announces a new flow. Typical
	// implementations Install their measurement/control program here.
	Init(f *Flow)
	// OnMeasurement is called when a batched measurement report arrives.
	OnMeasurement(f *Flow, m Measurement)
	// OnUrgent is called when an urgent event arrives.
	OnUrgent(f *Flow, u UrgentEvent)
}

// Releaser is an optional extension: algorithms that hold external
// resources are released when their flow closes.
type Releaser interface {
	Release(f *Flow)
}

// AlgFactory constructs a fresh per-flow algorithm instance.
type AlgFactory func() Alg

// Registry maps algorithm names to factories. The same registry can back
// multiple agents.
type Registry struct {
	factories map[string]AlgFactory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]AlgFactory)}
}

// Register adds a factory under name; registering a duplicate name panics
// (it is a programming error, like registering duplicate HTTP routes).
func (r *Registry) Register(name string, f AlgFactory) {
	if name == "" || f == nil {
		panic("core: Register requires a name and factory")
	}
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("core: algorithm %q registered twice", name))
	}
	r.factories[name] = f
}

// New instantiates the named algorithm.
func (r *Registry) New(name string) (Alg, bool) {
	f, ok := r.factories[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// Names returns the registered algorithm names, sorted. Sorted — not
// registration — order makes every listing (CLI output, experiment tables,
// logs) stable regardless of how the registry was assembled, so run output
// diffs cleanly across refactors that shuffle registration.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
