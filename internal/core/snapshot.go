package core

import (
	"fmt"
	"sort"

	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// SnapshotExporter is an optional Alg extension for high availability: an
// algorithm that implements it can have its private registers carried to a
// warm-standby agent and resumed there, so a flow survives an agent failure
// without cold-starting (re-entering slow start / BBR startup).
//
// ExportState appends the registers to dst in a fixed, documented order and
// returns the extended slice; ImportState reads the same order back. The two
// must stay in lockstep within one build — the wire snapshot is versioned,
// so cross-build restores are rejected before ImportState ever runs.
// ImportState returns false when src's shape is not one it understands; the
// restoring agent then keeps the freshly-Init'd state instead.
type SnapshotExporter interface {
	ExportState(dst []float64) []float64
	ImportState(src []float64) bool
}

// ctrlSeqSkip is how far a restored flow's control sequence jumps ahead of
// the last sequence number recorded in its snapshot. The primary may have
// issued decisions after the snapshot was taken, so the datapath's "newest
// applied" counter can be ahead of the snapshot — without the skip, the
// standby's first decisions would be discarded as stale. The skip is far
// larger than any plausible snapshot-age decision count and far smaller than
// the 2^31 wraparound horizon, so ordering against genuinely stale messages
// is preserved. See DESIGN.md §10.
const ctrlSeqSkip = 1 << 16

// SnapshotInto streams the agent's per-flow state as proto.Snapshot
// messages: first tombstones for flows closed since the previous call, then
// one snapshot per live flow. With full=false only flows that saw activity
// since their last export are emitted (the steady-state incremental delta);
// full=true re-emits everything, which a freshly attached standby needs
// once. It returns the number of messages emitted.
//
// The *proto.Snapshot handed to sink is reusable scratch owned by the
// agent: it is valid only for the duration of the call, and sink must Clone
// it to retain it. sink must not call back into the agent (a.mu is held).
// Iteration is in ascending SID order so replication streams are
// deterministic under the simulator.
func (a *Agent) SnapshotInto(full bool, sink func(*proto.Snapshot) error) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.snapshotting = true

	emitted := 0
	if len(a.closedSIDs) > 0 {
		sort.Slice(a.closedSIDs, func(i, j int) bool { return a.closedSIDs[i] < a.closedSIDs[j] })
		for _, sid := range a.closedSIDs {
			a.snapScratch = proto.Snapshot{SID: sid, Closed: true,
				Prog: a.snapScratch.Prog[:0], State: a.snapScratch.State[:0]}
			if err := sink(&a.snapScratch); err != nil {
				return emitted, err
			}
			emitted++
		}
		a.closedSIDs = a.closedSIDs[:0]
	}

	a.sidScratch = a.sidScratch[:0]
	for sid, st := range a.flows {
		if !full && st.snapped &&
			st.flow.reports == st.snapReports && st.flow.urgents == st.snapUrgents {
			continue
		}
		a.sidScratch = append(a.sidScratch, sid)
	}
	sort.Slice(a.sidScratch, func(i, j int) bool { return a.sidScratch[i] < a.sidScratch[j] })

	for _, sid := range a.sidScratch {
		st := a.flows[sid]
		f := st.flow
		snap := &a.snapScratch
		*snap = proto.Snapshot{
			SID:       sid,
			Installed: f.installed != nil,
			MSS:       uint32(f.Info.MSS),
			InitCwnd:  uint32(f.Info.InitCwnd),
			CtrlSeq:   f.ctrlSeq,
			CreateSeq: st.createSeq,
			ReportSeq: st.lastReportSeq,
			UrgentSeq: st.lastUrgentSeq,
			SrcAddr:   f.Info.SrcAddr,
			DstAddr:   f.Info.DstAddr,
			Alg:       st.alg.Name(),
			Prog:      append(snap.Prog[:0], f.progBytes...),
			State:     snap.State[:0],
		}
		if exp, ok := st.alg.(SnapshotExporter); ok {
			snap.State = exp.ExportState(snap.State)
		}
		if err := sink(snap); err != nil {
			return emitted, err
		}
		st.snapped = true
		st.snapReports, st.snapUrgents = f.reports, f.urgents
		emitted++
	}
	return emitted, nil
}

// RestoreFlow rebuilds one flow from a snapshot — the standby half of the HA
// pair. The restored flow resumes the snapshot's sequence-dedup state, keeps
// its installed program (so fold reports decode by name without a datapath
// round trip), and numbers future decisions ctrlSeqSkip above the snapshot's
// last issued sequence. The algorithm is freshly instantiated, Init'd
// against a silent flow handle, then overwritten via ImportState when both
// sides support it — so an algorithm without snapshot support degrades to a
// cold start rather than an error.
//
// The flow has no reply channel yet; it binds lazily to the first datapath
// message that reaches it after promotion (decisions made before that are
// dropped, not queued). Tombstone snapshots remove the flow instead.
func (a *Agent) RestoreFlow(snap *proto.Snapshot) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if snap.Closed {
		if st, ok := a.flows[snap.SID]; ok {
			if r, ok := st.alg.(Releaser); ok {
				r.Release(st.flow)
			}
			delete(a.flows, snap.SID)
			a.mLiveFlows.Set(int64(len(a.flows)))
		}
		return nil
	}
	name := snap.Alg
	if name == "" {
		name = a.cfg.DefaultAlg
	}
	alg, ok := a.cfg.Registry.New(name)
	if !ok {
		a.stats.UnknownAlgReq++
		alg, _ = a.cfg.Registry.New(a.cfg.DefaultAlg)
	}
	info := FlowInfo{
		SID:      snap.SID,
		MSS:      int(snap.MSS),
		InitCwnd: int(snap.InitCwnd),
		SrcAddr:  snap.SrcAddr,
		DstAddr:  snap.DstAddr,
		Alg:      name,
	}
	var policy Policy
	if a.cfg.Policy != nil {
		policy = a.cfg.Policy(info)
	}
	flow := &Flow{Info: info, policy: policy, ctrlSeq: snap.CtrlSeq + ctrlSeqSkip,
		verify: a.cfg.Verify, logf: a.logf}
	var restoredProg *lang.Program
	if snap.Installed && len(snap.Prog) > 0 {
		p, err := lang.UnmarshalProgram(snap.Prog)
		if err != nil {
			return fmt.Errorf("core: snapshot for flow %d carries a bad program: %w", snap.SID, err)
		}
		restoredProg = p
	}
	if old, exists := a.flows[snap.SID]; exists {
		if r, ok := old.alg.(Releaser); ok {
			r.Release(old.flow)
		}
	}
	// Init runs against the still-silent flow: anything it sends (its own
	// Install, an initial cwnd) is dropped, and the imported state below
	// overwrites what it initialized. If the import is refused, the Init'd
	// cold-start state is exactly the right fallback. The snapshot's program
	// is applied after Init — Init's own Install would otherwise clobber it,
	// and the datapath is still running the snapshot's program, not the
	// cold-start one.
	alg.Init(flow)
	if restoredProg != nil {
		flow.installed = restoredProg
		flow.progBytes = append([]byte(nil), snap.Prog...)
		flow.names = nil
	}
	if exp, ok := alg.(SnapshotExporter); ok && len(snap.State) > 0 {
		exp.ImportState(snap.State)
	}
	a.flows[snap.SID] = &flowState{
		flow:          flow,
		alg:           alg,
		createSeq:     snap.CreateSeq,
		lastReportSeq: snap.ReportSeq,
		lastUrgentSeq: snap.UrgentSeq,
		restored:      true,
	}
	a.stats.Restores++
	a.mLiveFlows.Set(int64(len(a.flows)))
	return nil
}
