package core

import (
	"fmt"
	"sync"

	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/lang/absint"
	"github.com/ccp-repro/ccp/internal/metrics"
	"github.com/ccp-repro/ccp/internal/proto"
)

// AgentConfig configures an Agent.
type AgentConfig struct {
	// Registry supplies algorithm factories. Required.
	Registry *Registry
	// DefaultAlg is used when a flow does not request an algorithm. It must
	// be registered. Required.
	DefaultAlg string
	// Policy selects per-flow clamps; nil means no policy.
	Policy PolicyFunc
	// Logf, if set, receives diagnostic messages.
	Logf func(format string, args ...any)
	// Metrics, if set, receives agent counters (reports processed, batch
	// sizes, flow churn) alongside the AgentStats snapshot. Nil is valid.
	Metrics *metrics.Registry
	// Verify pre-flights programs at Flow.Install with the internal/lang/absint
	// verifier, before they ever reach the wire: strict makes Install return an
	// error, warn logs the findings and sends anyway. The default is off — the
	// datapath's own install gate is authoritative and the agent-side check
	// only buys an earlier, richer diagnostic.
	Verify absint.Mode
}

// AgentStats counts the agent's activity.
type AgentStats struct {
	FlowsCreated   int
	FlowsClosed    int
	Measurements   int
	Vectors        int
	Urgents        int
	UnknownFlowMsg int
	UnknownAlgReq  int
	Errors         int
	// DupCreates counts duplicated Create deliveries for a flow the agent
	// already tracks (same announcement replayed by a faulty channel).
	DupCreates int
	// DupUrgents counts urgent events discarded because their sequence
	// number had already been seen — a duplicated or reordered delivery.
	DupUrgents int
	// ResyncAdopts counts datapath resync Creates absorbed by a restored
	// flow: after failover the datapath's CC state is intact, so the
	// promoted agent adopts the channel instead of cold-rebuilding the flow.
	ResyncAdopts int
	// StaleReports counts measurements and vectors discarded because a newer
	// report had already been processed.
	StaleReports int
	// Batches counts multi-report frames unpacked; BatchedMsgs counts the
	// messages they carried.
	Batches     int
	BatchedMsgs int
	// Restores counts flows rebuilt from snapshots (standby promotion).
	Restores int
	// Heartbeats counts supervision probes echoed.
	Heartbeats int
	// InstallErrs counts datapath refusals of installed programs (verifier
	// rejections, malformed encodings). Each one means the refusing flow kept
	// running its previous program.
	InstallErrs int
}

// Agent is the user-space congestion control plane: it multiplexes flows
// from one or more datapaths onto per-flow algorithm instances and relays
// their decisions back. Dispatch is a synchronous state transition, so the
// agent runs identically on the simulator event loop (deterministic) and
// behind a transport goroutine (ServeTransport).
type Agent struct {
	cfg AgentConfig

	mu    sync.Mutex
	flows map[uint32]*flowState
	stats AgentStats

	// HA snapshot state (see snapshot.go). snapshotting turns on tombstone
	// recording the first time SnapshotInto runs, so an agent nobody
	// replicates never accumulates closed-flow history. The scratch fields
	// make the steady-state snapshot pass allocation-free.
	snapshotting bool
	closedSIDs   []uint32
	snapScratch  proto.Snapshot
	sidScratch   []uint32

	// Cached metrics instruments (detached no-ops when cfg.Metrics is nil),
	// so the hot path never does a registry lookup.
	mReports   *metrics.Counter
	mUrgents   *metrics.Counter
	mCreated   *metrics.Counter
	mClosed    *metrics.Counter
	mBatchSize *metrics.Histogram
	mLiveFlows *metrics.Gauge
}

type flowState struct {
	flow *Flow
	alg  Alg
	// createSeq is the Seq carried by the Create that made this state, used
	// to recognize duplicated deliveries of the same announcement.
	createSeq uint32
	// lastReportSeq / lastUrgentSeq are the newest datapath-stamped sequence
	// numbers processed, for discarding duplicated or reordered deliveries.
	// Zero-Seq messages (unsequenced) bypass the checks.
	lastReportSeq uint32
	lastUrgentSeq uint32
	// samples is vector-mode scratch, reused across reports (OnMeasurement
	// must not retain it; see Measurement).
	samples []PktSample
	// Snapshot dirty tracking: snapped marks a state exported at least once;
	// snapReports/snapUrgents are the flow's activity counters as of that
	// export, so an idle flow is skipped by incremental snapshots.
	snapped     bool
	snapReports int
	snapUrgents int
	// restored marks a flow rebuilt from a snapshot whose datapath has not
	// spoken to this agent yet; the first resync Create is adopted rather
	// than treated as a datapath restart (see handleCreate).
	restored bool
}

// staleSeq reports whether a datapath-stamped sequence number has already
// been seen, advancing *last when it is fresh. Seq 0 is unsequenced and
// always fresh.
func staleSeq(seq uint32, last *uint32) bool {
	if seq == 0 {
		return false
	}
	if !proto.SeqNewer(seq, *last) {
		return true
	}
	*last = seq
	return false
}

// NewAgent validates cfg and returns an agent.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("core: AgentConfig.Registry is required")
	}
	if _, ok := cfg.Registry.New(cfg.DefaultAlg); !ok {
		return nil, fmt.Errorf("core: default algorithm %q not registered", cfg.DefaultAlg)
	}
	return &Agent{
		cfg:        cfg,
		flows:      make(map[uint32]*flowState),
		mReports:   cfg.Metrics.Counter("agent_reports_total"),
		mUrgents:   cfg.Metrics.Counter("agent_urgents_total"),
		mCreated:   cfg.Metrics.Counter("agent_flows_created_total"),
		mClosed:    cfg.Metrics.Counter("agent_flows_closed_total"),
		mBatchSize: cfg.Metrics.Histogram("agent_batch_size"),
		mLiveFlows: cfg.Metrics.Gauge("agent_live_flows"),
	}, nil
}

// Stats returns a snapshot of the agent counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// FlowCount returns the number of live flows.
func (a *Agent) FlowCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.flows)
}

// HandleMessage processes one datapath→agent message. reply transmits
// agent→datapath messages for the flow's datapath (it is captured by the
// flow created on Create, so each datapath keeps its own channel).
//
// A *proto.Batch is unpacked here and processed in order under one lock
// acquisition — the agent-side half of the §4 batching amortization.
func (a *Agent) HandleMessage(m proto.Msg, reply func(proto.Msg) error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := m.(*proto.Batch); ok {
		a.stats.Batches++
		a.stats.BatchedMsgs += len(b.Msgs)
		a.mBatchSize.Observe(float64(len(b.Msgs)))
		for _, sub := range b.Msgs {
			if _, nested := sub.(*proto.Batch); nested {
				a.stats.Errors++ // the decoder rejects these; defend anyway
				continue
			}
			a.handleLocked(sub, reply)
		}
		return
	}
	a.handleLocked(m, reply)
}

// handleLocked dispatches one non-batch message; a.mu must be held.
func (a *Agent) handleLocked(m proto.Msg, reply func(proto.Msg) error) {
	switch v := m.(type) {
	case *proto.Create:
		a.handleCreate(v, reply)
	case *proto.Measurement:
		st, ok := a.flows[v.SID]
		if !ok {
			a.stats.UnknownFlowMsg++
			return
		}
		if staleSeq(v.Seq, &st.lastReportSeq) {
			a.stats.StaleReports++
			return
		}
		if st.flow.send == nil {
			st.flow.send = reply // restored flow adopts its datapath lazily
		}
		a.stats.Measurements++
		a.mReports.Inc()
		st.flow.reports++
		names := st.flow.reportNames()
		meas := Measurement{Seq: v.Seq, Names: names, Values: v.Fields}
		st.alg.OnMeasurement(st.flow, meas)
	case *proto.Vector:
		st, ok := a.flows[v.SID]
		if !ok {
			a.stats.UnknownFlowMsg++
			return
		}
		if staleSeq(v.Seq, &st.lastReportSeq) {
			a.stats.StaleReports++
			return
		}
		if st.flow.send == nil {
			st.flow.send = reply
		}
		a.stats.Vectors++
		a.mReports.Inc()
		st.flow.reports++
		fields := st.flow.vectorFields()
		meas := Measurement{Seq: v.Seq, Names: st.flow.reportNames()}
		if int(v.NumFields) == len(fields) {
			samples := st.samples[:0]
			for i := 0; i < v.Rows(); i++ {
				samples = append(samples, PktSample{fields: fields, row: v.Row(i)})
			}
			st.samples = samples
			meas.Samples = samples
		}
		st.alg.OnMeasurement(st.flow, meas)
	case *proto.Urgent:
		st, ok := a.flows[v.SID]
		if !ok {
			a.stats.UnknownFlowMsg++
			return
		}
		if staleSeq(v.Seq, &st.lastUrgentSeq) {
			a.stats.DupUrgents++
			return
		}
		if st.flow.send == nil {
			st.flow.send = reply
		}
		a.stats.Urgents++
		a.mUrgents.Inc()
		st.flow.urgents++
		st.alg.OnUrgent(st.flow, UrgentEvent{Kind: v.Kind, Value: v.Value})
	case *proto.Close:
		st, ok := a.flows[v.SID]
		if !ok {
			a.stats.UnknownFlowMsg++
			return
		}
		if r, ok := st.alg.(Releaser); ok {
			r.Release(st.flow)
		}
		delete(a.flows, v.SID)
		if a.snapshotting && st.snapped {
			a.closedSIDs = append(a.closedSIDs, v.SID)
		}
		a.stats.FlowsClosed++
		a.mClosed.Inc()
		a.mLiveFlows.Set(int64(len(a.flows)))
	case *proto.InstallErr:
		// The datapath refused an Install (its §9 verifier gate, or a
		// malformed encoding). The flow is fail-safe — the datapath keeps its
		// previous program — so the agent's job is to surface the diagnostic
		// and stop trusting that the refused program is live.
		a.stats.InstallErrs++
		st, ok := a.flows[v.SID]
		if !ok {
			a.stats.UnknownFlowMsg++
			return
		}
		st.flow.noteInstallErr(v.Seq, v.Reason)
		a.logf("agent: flow %d: datapath refused install seq %d: %s", v.SID, v.Seq, v.Reason)
	case *proto.Heartbeat:
		// Supervision probe: echo it so the sender measures true
		// request→response latency through this agent's dispatch path. The
		// echo is a copy — v is decode scratch the reply must outlive.
		a.stats.Heartbeats++
		if reply != nil {
			if err := reply(&proto.Heartbeat{SID: v.SID, Seq: v.Seq, SentAt: v.SentAt}); err != nil {
				a.stats.Errors++
			}
		}
	default:
		a.stats.Errors++
		a.logf("agent: unexpected message %T", m)
	}
}

func (a *Agent) handleCreate(v *proto.Create, reply func(proto.Msg) error) {
	// A faulty channel can deliver the same announcement twice; recreating
	// the flow would discard live algorithm state, so replays of the Create
	// this state was built from are ignored. (A Create with a *different*
	// Seq is a real resync and does rebuild the flow.)
	if old, exists := a.flows[v.SID]; exists {
		if v.Seq != 0 && v.Seq == old.createSeq {
			a.stats.DupCreates++
			return
		}
		if old.restored && v.Seq != 0 {
			// Resync reaching a snapshot-restored flow: the datapath's CC
			// state is intact (only the agent changed), so rebuilding would
			// throw away the warm-restored algorithm for a cold start. Adopt
			// instead: bind the channel, record the resync's Seq, and keep
			// decision numbering ahead of the newest sequence the datapath
			// has applied. The mark is sticky — a fallback-mode datapath
			// resyncs every liveness tick with an advancing Seq, and each
			// must adopt, not rebuild. A Seq-0 Create is a genuinely
			// restarted datapath (fresh CC state) and takes the rebuild path
			// below.
			old.flow.send = reply
			old.createSeq = v.Seq
			if !proto.SeqNewer(old.flow.ctrlSeq, v.Seq) {
				old.flow.ctrlSeq = v.Seq + ctrlSeqSkip
			}
			a.stats.ResyncAdopts++
			return
		}
	}
	name := v.Alg
	if name == "" {
		name = a.cfg.DefaultAlg
	}
	alg, ok := a.cfg.Registry.New(name)
	if !ok {
		a.stats.UnknownAlgReq++
		a.logf("agent: flow %d requested unknown algorithm %q; using default %q",
			v.SID, name, a.cfg.DefaultAlg)
		alg, _ = a.cfg.Registry.New(a.cfg.DefaultAlg)
	}
	info := FlowInfo{
		SID:      v.SID,
		MSS:      int(v.MSS),
		InitCwnd: int(v.InitCwnd),
		SrcAddr:  v.SrcAddr,
		DstAddr:  v.DstAddr,
		Alg:      name,
	}
	var policy Policy
	if a.cfg.Policy != nil {
		policy = a.cfg.Policy(info)
	}
	// The Create's Seq is the newest control sequence the datapath has
	// applied (nonzero on resync); the flow numbers its decisions above it.
	flow := &Flow{Info: info, policy: policy, send: reply, ctrlSeq: v.Seq,
		verify: a.cfg.Verify, logf: a.logf}
	// Replacing an existing SID (datapath restart or resync) releases the
	// old state.
	if old, exists := a.flows[v.SID]; exists {
		if r, ok := old.alg.(Releaser); ok {
			r.Release(old.flow)
		}
	}
	a.flows[v.SID] = &flowState{flow: flow, alg: alg, createSeq: v.Seq}
	a.stats.FlowsCreated++
	a.mCreated.Inc()
	a.mLiveFlows.Set(int64(len(a.flows)))
	alg.Init(flow)
}

// ServeTransport reads wire messages from t until Recv fails, dispatching
// each through HandleMessage with replies marshalled back onto t. It is the
// agent's main loop when deployed as a separate process (Figure 1).
//
// The loop is pooled end to end: frames are received into pool buffers,
// decoded into a loop-local Decoder's scratch (HandleMessage is synchronous
// and does not retain the message), and released before the next read.
func (a *Agent) ServeTransport(t ipc.Transport) error {
	reply := func(m proto.Msg) error {
		f, err := proto.MarshalFrame(m)
		if err != nil {
			return err
		}
		err = t.Send(f.B)
		f.Release()
		return err
	}
	var dec proto.Decoder
	for {
		f, err := ipc.RecvFrame(t)
		if err != nil {
			return err
		}
		m, err := dec.Unmarshal(f.B)
		if err != nil {
			f.Release()
			a.mu.Lock()
			a.stats.Errors++
			a.mu.Unlock()
			a.logf("agent: bad message: %v", err)
			continue
		}
		a.HandleMessage(m, reply)
		f.Release()
	}
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Describe returns a human-readable summary of an algorithm's capability
// requirements by instantiating it against a probe flow; used by the
// Table 1 experiment. The probe flow records the installed program without
// any datapath attached.
func Describe(factory AlgFactory, mss int) (progs []*lang.Program, direct []string) {
	alg := factory()
	var captured []*lang.Program
	var directMsgs []string
	probe := &Flow{
		Info: FlowInfo{SID: 0, MSS: mss, InitCwnd: 10 * mss},
		send: func(m proto.Msg) error {
			switch v := m.(type) {
			case *proto.Install:
				if p, err := lang.UnmarshalProgram(v.Prog); err == nil {
					captured = append(captured, p)
				}
			case *proto.SetCwnd:
				directMsgs = append(directMsgs, "cwnd")
			case *proto.SetRate:
				directMsgs = append(directMsgs, "rate")
			}
			return nil
		},
	}
	alg.Init(probe)
	return captured, directMsgs
}
