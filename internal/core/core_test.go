package core

import (
	"testing"

	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/lang/absint"
	"github.com/ccp-repro/ccp/internal/proto"
)

// recordAlg records every callback for assertions.
type recordAlg struct {
	inits    int
	measures []Measurement
	urgents  []UrgentEvent
	releases int
	onInit   func(f *Flow)
}

func (r *recordAlg) Name() string { return "record" }
func (r *recordAlg) Init(f *Flow) {
	r.inits++
	if r.onInit != nil {
		r.onInit(f)
	}
}
func (r *recordAlg) OnMeasurement(f *Flow, m Measurement) { r.measures = append(r.measures, m) }
func (r *recordAlg) OnUrgent(f *Flow, u UrgentEvent)      { r.urgents = append(r.urgents, u) }
func (r *recordAlg) Release(f *Flow)                      { r.releases++ }

// capture collects agent→datapath messages.
type capture struct {
	msgs []proto.Msg
}

func (c *capture) send(m proto.Msg) error {
	c.msgs = append(c.msgs, m)
	return nil
}

func newTestAgent(t *testing.T, alg *recordAlg, policy PolicyFunc) *Agent {
	t.Helper()
	reg := NewRegistry()
	reg.Register("record", func() Alg { return alg })
	a, err := NewAgent(AgentConfig{Registry: reg, DefaultAlg: "record", Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func createMsg(sid uint32) *proto.Create {
	return &proto.Create{SID: sid, MSS: 1448, InitCwnd: 14480, SrcAddr: "a", DstAddr: "b"}
}

func TestAgentCreateDispatchesInit(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)
	if alg.inits != 1 {
		t.Fatalf("inits=%d", alg.inits)
	}
	if a.FlowCount() != 1 || a.Stats().FlowsCreated != 1 {
		t.Fatalf("flow accounting wrong: %+v", a.Stats())
	}
}

func TestAgentMeasurementNaming(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)
	// Before any install, EWMA names apply.
	a.HandleMessage(&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{0.01, 2, 3, 4, 5, 0.5, 0.011}}, cap.send)
	if len(alg.measures) != 1 {
		t.Fatalf("measures=%d", len(alg.measures))
	}
	m := alg.measures[0]
	if v, ok := m.Get("rtt"); !ok || v != 0.01 {
		t.Fatalf("rtt=%v ok=%v", v, ok)
	}
	if v, ok := m.Get("ecn_frac"); !ok || v != 0.5 {
		t.Fatalf("ecn_frac=%v ok=%v", v, ok)
	}
	if _, ok := m.Get("bogus"); ok {
		t.Fatal("bogus field resolved")
	}
	if m.GetOr("bogus", 42) != 42 {
		t.Fatal("GetOr default wrong")
	}
}

func TestAgentFoldNamesAfterInstall(t *testing.T) {
	alg := &recordAlg{}
	alg.onInit = func(f *Flow) {
		fold := &lang.FoldSpec{
			Regs:    []lang.RegDef{{Name: "m1", Init: 0}, {Name: "m2", Init: 0}},
			Updates: []lang.Assign{{Dst: "m1", E: lang.Add(lang.V("m1"), lang.V("pkt.acked"))}},
		}
		p := lang.NewProgram().MeasureFold(fold).WaitRtts(1).Report().MustBuild()
		if err := f.Install(p); err != nil {
			t.Errorf("install: %v", err)
		}
	}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)
	a.HandleMessage(&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{7, 9}}, cap.send)
	m := alg.measures[0]
	if v, _ := m.Get("m1"); v != 7 {
		t.Fatalf("m1=%v", v)
	}
	if v, _ := m.Get("m2"); v != 9 {
		t.Fatalf("m2=%v", v)
	}
}

func TestAgentVectorDispatch(t *testing.T) {
	alg := &recordAlg{}
	alg.onInit = func(f *Flow) {
		p := lang.NewProgram().MeasureVector(lang.FieldRTT, lang.FieldAcked).
			WaitRtts(1).Report().MustBuild()
		f.Install(p)
	}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)
	a.HandleMessage(&proto.Vector{SID: 1, Seq: 1, NumFields: 2,
		Data: []float64{0.01, 1448, 0.02, 1448}}, cap.send)
	m := alg.measures[0]
	if len(m.Samples) != 2 {
		t.Fatalf("samples=%d", len(m.Samples))
	}
	if m.Samples[1].Get(lang.FieldRTT) != 0.02 {
		t.Fatalf("rtt=%v", m.Samples[1].Get(lang.FieldRTT))
	}
	if m.Samples[0].Get(lang.FieldAcked) != 1448 {
		t.Fatalf("acked=%v", m.Samples[0].Get(lang.FieldAcked))
	}
	if m.Samples[0].Get(lang.FieldECN) != 0 {
		t.Fatal("absent field should read 0")
	}
}

func TestAgentUrgentDispatch(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)
	a.HandleMessage(&proto.Urgent{SID: 1, Kind: proto.UrgentDupAck, Value: 1448}, cap.send)
	if len(alg.urgents) != 1 || alg.urgents[0].Kind != proto.UrgentDupAck || alg.urgents[0].Value != 1448 {
		t.Fatalf("urgents=%+v", alg.urgents)
	}
}

func TestAgentCloseReleases(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)
	a.HandleMessage(&proto.Close{SID: 1}, cap.send)
	if alg.releases != 1 {
		t.Fatalf("releases=%d", alg.releases)
	}
	if a.FlowCount() != 0 {
		t.Fatal("flow not removed")
	}
	// Messages for closed flows are counted, not crashed on.
	a.HandleMessage(&proto.Urgent{SID: 1, Kind: proto.UrgentECN}, cap.send)
	if a.Stats().UnknownFlowMsg != 1 {
		t.Fatalf("stats=%+v", a.Stats())
	}
}

func TestAgentUnknownAlgFallsBack(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	msg := createMsg(1)
	msg.Alg = "who-knows"
	a.HandleMessage(msg, cap.send)
	if alg.inits != 1 {
		t.Fatal("default algorithm not used")
	}
	if a.Stats().UnknownAlgReq != 1 {
		t.Fatalf("stats=%+v", a.Stats())
	}
}

func TestAgentRequiresRegisteredDefault(t *testing.T) {
	if _, err := NewAgent(AgentConfig{Registry: NewRegistry(), DefaultAlg: "ghost"}); err == nil {
		t.Fatal("unregistered default accepted")
	}
	if _, err := NewAgent(AgentConfig{DefaultAlg: "x"}); err == nil {
		t.Fatal("nil registry accepted")
	}
}

func TestPolicyClampsDirectControls(t *testing.T) {
	alg := &recordAlg{}
	policy := func(info FlowInfo) Policy {
		return Policy{MaxRateBps: 1000, MaxCwndBytes: 5000}
	}
	a := newTestAgent(t, alg, policy)
	cap := &capture{}
	alg.onInit = func(f *Flow) {
		f.SetRate(99999)
		f.SetCwnd(99999)
	}
	a.HandleMessage(createMsg(1), cap.send)
	var rate *proto.SetRate
	var cwnd *proto.SetCwnd
	for _, m := range cap.msgs {
		switch v := m.(type) {
		case *proto.SetRate:
			rate = v
		case *proto.SetCwnd:
			cwnd = v
		}
	}
	if rate == nil || rate.Bps != 1000 {
		t.Fatalf("rate=%+v", rate)
	}
	if cwnd == nil || cwnd.Bytes != 5000 {
		t.Fatalf("cwnd=%+v", cwnd)
	}
}

func TestPolicyRewritesPrograms(t *testing.T) {
	alg := &recordAlg{}
	policy := func(info FlowInfo) Policy { return Policy{MaxRateBps: 1e6} }
	a := newTestAgent(t, alg, policy)
	cap := &capture{}
	alg.onInit = func(f *Flow) {
		p := lang.NewProgram().Rate(lang.Mul(lang.C(2), lang.V("rate"))).
			WaitRtts(1).Report().MustBuild()
		if err := f.Install(p); err != nil {
			t.Errorf("install: %v", err)
		}
	}
	a.HandleMessage(createMsg(1), cap.send)
	var inst *proto.Install
	for _, m := range cap.msgs {
		if v, ok := m.(*proto.Install); ok {
			inst = v
		}
	}
	if inst == nil {
		t.Fatal("no install sent")
	}
	p, err := lang.UnmarshalProgram(inst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	sr := p.Instrs[0].(lang.SetRate)
	// The rewritten expression must clamp: with rate=1e9, result is 1e6.
	got, err := lang.Eval(sr.E, func(n string) (float64, bool) {
		if n == "rate" {
			return 1e9, true
		}
		return 0, false
	})
	if err != nil || got != 1e6 {
		t.Fatalf("clamped rate=%v err=%v", got, err)
	}
}

func TestServeTransport(t *testing.T) {
	alg := &recordAlg{}
	alg.onInit = func(f *Flow) { f.SetCwnd(1000) }
	a := newTestAgent(t, alg, nil)
	agentSide, dpSide := ipc.ChanPair(16)
	done := make(chan error, 1)
	go func() { done <- a.ServeTransport(agentSide) }()

	data, err := proto.Marshal(createMsg(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := dpSide.Send(data); err != nil {
		t.Fatal(err)
	}
	reply, err := dpSide.Recv()
	if err != nil {
		t.Fatal(err)
	}
	m, err := proto.Unmarshal(reply)
	if err != nil {
		t.Fatal(err)
	}
	if sc, ok := m.(*proto.SetCwnd); !ok || sc.Bytes != 1000 || sc.SID != 9 {
		t.Fatalf("reply=%#v", m)
	}
	// Malformed frames are skipped, not fatal.
	if err := dpSide.Send([]byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	dpSide.Close()
	if err := <-done; err == nil {
		t.Fatal("ServeTransport should return an error when the peer closes")
	}
	if a.Stats().Errors == 0 {
		t.Fatal("bad frame not counted")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate registration")
		}
	}()
	reg := NewRegistry()
	reg.Register("x", func() Alg { return &recordAlg{} })
	reg.Register("x", func() Alg { return &recordAlg{} })
}

func TestRegistryNames(t *testing.T) {
	// Sorted regardless of registration order, so listings are stable.
	reg := NewRegistry()
	reg.Register("b", func() Alg { return &recordAlg{} })
	reg.Register("a", func() Alg { return &recordAlg{} })
	names := reg.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names=%v (want sorted order)", names)
	}
}

func TestDescribeCapturesPrograms(t *testing.T) {
	factory := func() Alg {
		a := &recordAlg{}
		a.onInit = func(f *Flow) {
			p := lang.NewProgram().Rate(lang.C(100)).WaitRtts(1).Report().MustBuild()
			f.Install(p)
			f.SetCwnd(5000)
		}
		return a
	}
	progs, direct := Describe(factory, 1448)
	if len(progs) != 1 {
		t.Fatalf("progs=%d", len(progs))
	}
	if len(direct) != 1 || direct[0] != "cwnd" {
		t.Fatalf("direct=%v", direct)
	}
}

func TestFlowStampsControlSequence(t *testing.T) {
	// Install, SetCwnd, and SetRate share one ascending sequence space so
	// the datapath can discard reordered copies of superseded decisions.
	cap := &capture{}
	f := &Flow{Info: FlowInfo{SID: 1, MSS: 1448}, send: cap.send}
	if err := f.Install(lang.NewProgram().Cwnd(lang.C(10000)).WaitRtts(1).MustBuild()); err != nil {
		t.Fatal(err)
	}
	f.SetCwnd(5000)
	f.SetRate(1e6)
	want := []uint32{1, 2, 3}
	for i, m := range cap.msgs {
		var got uint32
		switch v := m.(type) {
		case *proto.Install:
			got = v.Seq
		case *proto.SetCwnd:
			got = v.Seq
		case *proto.SetRate:
			got = v.Seq
		}
		if got != want[i] {
			t.Fatalf("msg %d (%T) seq=%d want %d", i, m, got, want[i])
		}
	}
}

func TestFlowSequenceResumesFromCreate(t *testing.T) {
	// A resync Create carries the datapath's newest applied sequence; the
	// (possibly restarted) agent must number its decisions above it, or
	// everything it sends would look stale.
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	c := createMsg(1)
	c.Seq = 1042
	a.HandleMessage(c, cap.send)
	st := a.flows[1]
	st.flow.SetCwnd(5000)
	sc := cap.msgs[len(cap.msgs)-1].(*proto.SetCwnd)
	if sc.Seq != 1043 {
		t.Fatalf("seq=%d, want 1043 (resume above Create's 1042)", sc.Seq)
	}
}

func TestNextSeqSkipsZeroOnWrap(t *testing.T) {
	f := &Flow{ctrlSeq: ^uint32(0) - 1}
	if s := f.nextSeq(); s != ^uint32(0) {
		t.Fatalf("seq=%d", s)
	}
	if s := f.nextSeq(); s != 1 {
		t.Fatalf("seq after wrap=%d, want 1 (0 is reserved for unsequenced)", s)
	}
}

func TestStaleSeqWraparound(t *testing.T) {
	last := ^uint32(0)
	if staleSeq(1, &last) {
		t.Fatal("wrapped seq 1 treated as stale after 2^32-1")
	}
	if last != 1 {
		t.Fatalf("last=%d after wrap, want 1", last)
	}
	if !staleSeq(^uint32(0), &last) {
		t.Fatal("replayed pre-wrap seq accepted after the wrap")
	}
	if staleSeq(0, &last) || last != 1 {
		t.Fatal("seq 0 must stay unsequenced and always fresh")
	}
}

func TestAgentReportsSurviveSeqWraparound(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)
	a.flows[1].lastReportSeq = ^uint32(0) - 1
	a.HandleMessage(&proto.Measurement{SID: 1, Seq: ^uint32(0), Fields: []float64{1}}, cap.send)
	// The datapath skips 0 on wrap, so the next report arrives as seq 1; it
	// must be accepted or the flow's telemetry blackholes at the rollover.
	a.HandleMessage(&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{2}}, cap.send)
	a.HandleMessage(&proto.Measurement{SID: 1, Seq: 2, Fields: []float64{3}}, cap.send)
	if len(alg.measures) != 3 {
		t.Fatalf("alg saw %d reports across the wrap, want 3", len(alg.measures))
	}
	if st := a.Stats(); st.StaleReports != 0 {
		t.Fatalf("stats=%+v, want no stale drops", st)
	}
}

func TestAgentDedupsUrgents(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)
	a.HandleMessage(&proto.Urgent{SID: 1, Seq: 1, Kind: proto.UrgentDupAck, Value: 1448}, cap.send)
	a.HandleMessage(&proto.Urgent{SID: 1, Seq: 1, Kind: proto.UrgentDupAck, Value: 1448}, cap.send) // duplicate
	a.HandleMessage(&proto.Urgent{SID: 1, Seq: 2, Kind: proto.UrgentTimeout, Value: 0}, cap.send)
	a.HandleMessage(&proto.Urgent{SID: 1, Seq: 1, Kind: proto.UrgentDupAck, Value: 1448}, cap.send) // reordered
	if len(alg.urgents) != 2 {
		t.Fatalf("alg saw %d urgents, want 2", len(alg.urgents))
	}
	st := a.Stats()
	if st.Urgents != 2 || st.DupUrgents != 2 {
		t.Fatalf("stats=%+v", st)
	}
	// Unsequenced urgents always pass (pre-protocol datapaths).
	a.HandleMessage(&proto.Urgent{SID: 1, Kind: proto.UrgentDupAck, Value: 1}, cap.send)
	if len(alg.urgents) != 3 {
		t.Fatal("unsequenced urgent dropped")
	}
}

func TestAgentDropsStaleReports(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)
	a.HandleMessage(&proto.Measurement{SID: 1, Seq: 2, Fields: []float64{1}}, cap.send)
	a.HandleMessage(&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{2}}, cap.send) // reordered
	a.HandleMessage(&proto.Measurement{SID: 1, Seq: 2, Fields: []float64{1}}, cap.send) // duplicate
	a.HandleMessage(&proto.Vector{SID: 1, Seq: 2, NumFields: 1, Data: []float64{3}}, cap.send)
	if len(alg.measures) != 1 {
		t.Fatalf("alg saw %d reports, want 1", len(alg.measures))
	}
	st := a.Stats()
	if st.Measurements != 1 || st.StaleReports != 3 {
		t.Fatalf("stats=%+v", st)
	}
	// A newer vector still lands (shared report sequence space).
	a.HandleMessage(&proto.Vector{SID: 1, Seq: 3, NumFields: 0, Data: nil}, cap.send)
	if a.Stats().Vectors != 1 {
		t.Fatalf("stats=%+v", a.Stats())
	}
}

func TestAgentDedupsCreates(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	c := createMsg(1)
	c.Seq = 7
	a.HandleMessage(c, cap.send)
	a.HandleMessage(c, cap.send) // duplicated delivery: same announcement
	if alg.inits != 1 || alg.releases != 0 {
		t.Fatalf("duplicate Create rebuilt the flow: inits=%d releases=%d", alg.inits, alg.releases)
	}
	if a.Stats().DupCreates != 1 {
		t.Fatalf("stats=%+v", a.Stats())
	}
	// A Create with a different Seq is a genuine resync: rebuild.
	c2 := createMsg(1)
	c2.Seq = 9
	a.HandleMessage(c2, cap.send)
	if alg.inits != 2 || alg.releases != 1 {
		t.Fatalf("resync Create ignored: inits=%d releases=%d", alg.inits, alg.releases)
	}
	// Unsequenced Creates always rebuild (pre-protocol behaviour).
	a.HandleMessage(createMsg(1), cap.send)
	a.HandleMessage(createMsg(1), cap.send)
	if alg.inits != 4 {
		t.Fatalf("inits=%d", alg.inits)
	}
}

func TestAgentSurfacesInstallErr(t *testing.T) {
	alg := &recordAlg{}
	a := newTestAgent(t, alg, nil)
	cap := &capture{}
	a.HandleMessage(createMsg(1), cap.send)

	var flow *Flow
	a.mu.Lock()
	flow = a.flows[1].flow
	a.mu.Unlock()

	first := lang.NewProgram().Cwnd(lang.C(20000)).WaitRtts(1).Report().MustBuild()
	second := lang.NewProgram().Cwnd(lang.C(30000)).WaitRtts(1).Report().MustBuild()
	if err := flow.Install(first); err != nil {
		t.Fatal(err)
	}
	if err := flow.Install(second); err != nil {
		t.Fatal(err)
	}
	refusedSeq := cap.msgs[len(cap.msgs)-1].(*proto.Install).Seq

	// The datapath refuses the second install: the agent must count it, keep
	// the diagnostic, and roll its program view back to the first program —
	// the one actually still live in the datapath.
	a.HandleMessage(&proto.InstallErr{SID: 1, Seq: refusedSeq, Reason: "bounds: instr 0"}, cap.send)
	if a.Stats().InstallErrs != 1 {
		t.Fatalf("InstallErrs=%d", a.Stats().InstallErrs)
	}
	if flow.InstallErrs() != 1 || flow.LastInstallErr() != "bounds: instr 0" {
		t.Fatalf("flow refusal state: n=%d reason=%q", flow.InstallErrs(), flow.LastInstallErr())
	}
	got := float64(flow.Installed().Instrs[0].(lang.SetCwnd).E.(lang.Const))
	if got != 20000 {
		t.Fatalf("installed view not rolled back: cwnd const = %v", got)
	}

	// A refusal of an already-superseded install counts but must not roll back.
	a.HandleMessage(&proto.InstallErr{SID: 1, Seq: refusedSeq - 1, Reason: "stale"}, cap.send)
	if float64(flow.Installed().Instrs[0].(lang.SetCwnd).E.(lang.Const)) != 20000 {
		t.Fatal("stale refusal moved the installed view")
	}

	// Refusals for unknown flows are counted as unknown-flow noise.
	a.HandleMessage(&proto.InstallErr{SID: 99, Reason: "x"}, cap.send)
	if a.Stats().UnknownFlowMsg == 0 {
		t.Fatal("unknown-flow InstallErr not counted")
	}
}

func TestFlowVerifyStrictRefusesUnsafeProgram(t *testing.T) {
	f := &Flow{Info: FlowInfo{SID: 1, MSS: 1448}, verify: absint.ModeStrict}
	unsafe := lang.NewProgram().
		Rate(lang.Div(lang.C(1e6), lang.V("pkt.rtt"))).
		WaitRtts(1).Report().MustBuild()
	if err := f.Install(unsafe); err == nil {
		t.Fatal("strict agent-side verify accepted an unsafe program")
	}
	safe := lang.NewProgram().Cwnd(lang.C(20000)).WaitRtts(1).Report().MustBuild()
	if err := f.Install(safe); err != nil {
		t.Fatal(err)
	}
}
