// Package stats provides the small statistical building blocks used by the
// datapath (rate estimation, RTT filtering) and by the experiment harnesses
// (percentiles, CDFs, summaries).
package stats

import "math"

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: higher alpha weights new samples more heavily. The zero
// value is not usable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha is clamped
// to (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 1e-9
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Update folds a new sample into the average and returns the new value. The
// first sample initializes the average directly.
func (e *EWMA) Update(sample float64) float64 {
	if !e.init {
		e.value = sample
		e.init = true
		return e.value
	}
	e.value = e.alpha*sample + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average, or 0 if no samples have been folded in.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been observed.
func (e *EWMA) Initialized() bool { return e.init }

// Reset discards all state.
func (e *EWMA) Reset() { e.value, e.init = 0, false }

// MeanVar accumulates an online mean and variance (Welford's algorithm).
// The zero value is ready to use.
type MeanVar struct {
	n    int
	mean float64
	m2   float64
}

// Add folds in one sample.
func (m *MeanVar) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Count returns the number of samples observed.
func (m *MeanVar) Count() int { return m.n }

// Mean returns the sample mean, or 0 with no samples.
func (m *MeanVar) Mean() float64 { return m.mean }

// Var returns the (population) variance, or 0 with fewer than two samples.
func (m *MeanVar) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Stddev returns the population standard deviation.
func (m *MeanVar) Stddev() float64 { return math.Sqrt(m.Var()) }
