package stats_test

import (
	"fmt"
	"time"

	"github.com/ccp-repro/ccp/internal/stats"
)

// ExampleWindowedMinMax shows the BBR-style windowed filters.
func ExampleWindowedMinMax() {
	minRTT := stats.NewWindowedMin(10 * time.Second)
	minRTT.Update(0*time.Second, 0.025)
	minRTT.Update(2*time.Second, 0.012)
	minRTT.Update(4*time.Second, 0.030)
	fmt.Printf("min within window: %.3f\n", minRTT.Value(4*time.Second))
	// The 12ms sample expires after 10s; the window keeps its best survivor.
	fmt.Printf("min after expiry:  %.3f\n", minRTT.Value(13*time.Second))
	// Output:
	// min within window: 0.012
	// min after expiry:  0.030
}

// ExampleSamples computes the percentile summary used by the Figure 2
// report.
func ExampleSamples() {
	var rtts stats.Samples
	for _, us := range []float64{11, 12, 12, 13, 14, 48, 80} {
		rtts.Add(us)
	}
	fmt.Printf("p50=%.0fµs p99=%.0fµs\n", rtts.Median(), rtts.Percentile(99))
	// Output:
	// p50=13µs p99=78µs
}
