package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEWMAFirstSampleInitializes(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA reports initialized")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first sample: got %v, want 10", got)
	}
	if !e.Initialized() {
		t.Fatal("EWMA not initialized after first sample")
	}
}

func TestEWMASmoothing(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(10)
	if got := e.Update(20); got != 15 {
		t.Fatalf("got %v, want 15", got)
	}
	if got := e.Update(15); got != 15 {
		t.Fatalf("got %v, want 15", got)
	}
}

func TestEWMAAlphaClamped(t *testing.T) {
	for _, alpha := range []float64{-1, 0, 2} {
		e := NewEWMA(alpha)
		e.Update(1)
		e.Update(3)
		v := e.Value()
		if v < 1 || v > 3 {
			t.Fatalf("alpha=%v: value %v outside sample range", alpha, v)
		}
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.3)
	e.Update(5)
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.25)
	for i := 0; i < 200; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("did not converge: %v", e.Value())
	}
}

func TestEWMABetweenMinAndMax(t *testing.T) {
	// Property: EWMA value always lies within [min, max] of samples seen.
	f := func(samples []float64, alphaRaw uint8) bool {
		if len(samples) == 0 {
			return true
		}
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return true
			}
		}
		alpha := float64(alphaRaw%100+1) / 100
		e := NewEWMA(alpha)
		lo, hi := samples[0], samples[0]
		for _, s := range samples {
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
			e.Update(s)
		}
		v := e.Value()
		const eps = 1e-6
		return v >= lo-eps-math.Abs(lo)*eps && v <= hi+eps+math.Abs(hi)*eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVar(t *testing.T) {
	var m MeanVar
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.Count() != 8 {
		t.Fatalf("count=%d", m.Count())
	}
	if math.Abs(m.Mean()-5) > 1e-9 {
		t.Fatalf("mean=%v, want 5", m.Mean())
	}
	if math.Abs(m.Var()-4) > 1e-9 {
		t.Fatalf("var=%v, want 4", m.Var())
	}
	if math.Abs(m.Stddev()-2) > 1e-9 {
		t.Fatalf("stddev=%v, want 2", m.Stddev())
	}
}

func TestMeanVarFewSamples(t *testing.T) {
	var m MeanVar
	if m.Mean() != 0 || m.Var() != 0 {
		t.Fatal("empty MeanVar not zero")
	}
	m.Add(3)
	if m.Mean() != 3 || m.Var() != 0 {
		t.Fatal("single-sample MeanVar wrong")
	}
}

func TestWindowedMinBasic(t *testing.T) {
	w := NewWindowedMin(10 * time.Second)
	w.Update(0, 5)
	w.Update(1*time.Second, 3)
	if got := w.Value(1 * time.Second); got != 3 {
		t.Fatalf("min=%v, want 3", got)
	}
	w.Update(2*time.Second, 7)
	if got := w.Value(2 * time.Second); got != 3 {
		t.Fatalf("min=%v, want 3", got)
	}
	// After the 3 expires, the 7 remains.
	if got := w.Value(12 * time.Second); got != 7 {
		t.Fatalf("min after expiry=%v, want 7", got)
	}
}

func TestWindowedMaxBasic(t *testing.T) {
	w := NewWindowedMax(5 * time.Second)
	w.Update(0, 100)
	w.Update(1*time.Second, 50)
	if got := w.Value(1 * time.Second); got != 100 {
		t.Fatalf("max=%v, want 100", got)
	}
	if got := w.Value(6 * time.Second); got != 50 {
		t.Fatalf("max after expiry=%v, want 50", got)
	}
}

func TestWindowedKeepsLastSample(t *testing.T) {
	// Even when everything has expired, the most recent sample is retained
	// so Value never goes to zero spuriously mid-flow.
	w := NewWindowedMin(time.Second)
	w.Update(0, 9)
	if got := w.Value(100 * time.Second); got != 9 {
		t.Fatalf("last sample dropped: %v", got)
	}
	if w.Empty(100 * time.Second) {
		t.Fatal("reported empty while retaining a sample")
	}
}

func TestWindowedReset(t *testing.T) {
	w := NewWindowedMax(time.Second)
	w.Update(0, 1)
	w.Reset()
	if !w.Empty(0) || w.Value(0) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestWindowedMinMatchesBruteForce(t *testing.T) {
	// Property: deque implementation matches a brute-force window scan.
	rng := rand.New(rand.NewSource(7))
	type sample struct {
		at time.Duration
		v  float64
	}
	window := 500 * time.Millisecond
	w := NewWindowedMin(window)
	var hist []sample
	now := time.Duration(0)
	for i := 0; i < 5000; i++ {
		now += time.Duration(rng.Intn(50)) * time.Millisecond
		v := rng.Float64() * 1000
		hist = append(hist, sample{now, v})
		got := w.Update(now, v)

		// Brute force: min over samples in (now-window, now], but always
		// including the latest sample (deque keeps >=1 element).
		best := v
		for _, s := range hist {
			if s.at >= now-window {
				best = math.Min(best, s.v)
			}
		}
		if got != best {
			t.Fatalf("step %d: deque=%v brute=%v", i, got, best)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	var s Samples
	if s.Percentile(50) != 0 || s.Median() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty Samples should return zeros")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestPercentileExact(t *testing.T) {
	var s Samples
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%v=%v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	var s Samples
	s.Add(0)
	s.Add(10)
	if got := s.Percentile(50); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p50=%v, want 5", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var s Samples
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		if s.Len() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFIsNondecreasing(t *testing.T) {
	var s Samples
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		s.Add(rng.NormFloat64())
	}
	pts := s.CDF(100)
	if len(pts) != 100 {
		t.Fatalf("len=%d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1].F != 1 {
		t.Fatalf("last F=%v, want 1", pts[len(pts)-1].F)
	}
}

func TestCDFMatchesSortedData(t *testing.T) {
	var s Samples
	data := []float64{9, 1, 5, 3, 7}
	for _, x := range data {
		s.Add(x)
	}
	sort.Float64s(data)
	pts := s.CDF(5)
	for i, p := range pts {
		if p.X != data[i] {
			t.Fatalf("point %d: X=%v, want %v", i, p.X, data[i])
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	var s Samples
	s.Add(1)
	s.Add(2)
	got := s.Summary(nil)
	if got == "" {
		t.Fatal("empty summary")
	}
	if want := "n=2"; got[:len(want)] != want {
		t.Fatalf("summary %q does not start with %q", got, want)
	}
}
