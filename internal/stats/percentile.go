package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Samples collects float64 observations for percentile and CDF reporting.
// The zero value is ready to use. It is not safe for concurrent use.
type Samples struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Samples) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Samples) Len() int { return len(s.xs) }

// Merge folds every observation of other into s, leaving other unchanged.
// It is how per-shard latency collections are combined after the shards
// quiesce: each shard accumulates into its own Samples with no locking, and
// the coordinator merges once at the end. Merging nil or an empty set is a
// no-op.
func (s *Samples) Merge(other *Samples) {
	if other == nil || len(other.xs) == 0 {
		return
	}
	s.xs = append(s.xs, other.xs...)
	s.sorted = false
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Returns 0 for an empty set.
func (s *Samples) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Samples) Median() float64 { return s.Percentile(50) }

// Mean returns the arithmetic mean, or 0 for an empty set.
func (s *Samples) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation, or 0 for an empty set.
func (s *Samples) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty set.
func (s *Samples) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// CDFPoint is one point of an empirical CDF: fraction F of samples are <= X.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical CDF evaluated at n evenly spaced cumulative
// fractions (1/n, 2/n, ..., 1). Returns nil for an empty set.
func (s *Samples) CDF(n int) []CDFPoint {
	if len(s.xs) == 0 || n <= 0 {
		return nil
	}
	s.sort()
	pts := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		idx := int(math.Ceil(f*float64(len(s.xs)))) - 1
		if idx < 0 {
			idx = 0
		}
		pts = append(pts, CDFPoint{X: s.xs[idx], F: f})
	}
	return pts
}

// Summary formats min/median/p95/p99/max using the given unit formatter.
func (s *Samples) Summary(format func(float64) string) string {
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.3g", v) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d min=%s p50=%s p95=%s p99=%s max=%s",
		s.Len(), format(s.Min()), format(s.Median()),
		format(s.Percentile(95)), format(s.Percentile(99)), format(s.Max()))
	return b.String()
}

func (s *Samples) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}
