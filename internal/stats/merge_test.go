package stats

import (
	"math/rand"
	"testing"
	"time"
)

// TestSamplesMergeEmpty covers the degenerate merges: empty into empty,
// empty into populated, populated into empty, and nil.
func TestSamplesMergeEmpty(t *testing.T) {
	var a, b Samples
	a.Merge(&b)
	if a.Len() != 0 {
		t.Fatal("empty+empty should stay empty")
	}
	a.Merge(nil)
	if a.Len() != 0 {
		t.Fatal("nil merge should be a no-op")
	}

	b.Add(3)
	a.Merge(&b)
	if a.Len() != 1 || a.Median() != 3 {
		t.Fatalf("empty.Merge(single): len=%d median=%v", a.Len(), a.Median())
	}
	var c Samples
	a.Merge(&c)
	if a.Len() != 1 {
		t.Fatal("merging empty changed the receiver")
	}
	if b.Len() != 1 {
		t.Fatal("merge mutated the source")
	}
}

// TestSamplesMergeSingle merges two singletons and checks order statistics.
func TestSamplesMergeSingle(t *testing.T) {
	var a, b Samples
	a.Add(10)
	b.Add(2)
	a.Merge(&b)
	if a.Len() != 2 || a.Min() != 2 || a.Max() != 10 || a.Median() != 6 {
		t.Fatalf("len=%d min=%v max=%v median=%v", a.Len(), a.Min(), a.Max(), a.Median())
	}
}

// TestSamplesMergeSkewed merges a heavily skewed pair of shards and checks
// the merged percentiles equal those of the union computed directly —
// merging must be indistinguishable from having observed everything in one
// collection.
func TestSamplesMergeSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var shard1, shard2, direct Samples
	for i := 0; i < 1000; i++ { // shard 1: tight cluster near 1ms
		v := 0.001 + rng.Float64()*0.0001
		shard1.Add(v)
		direct.Add(v)
	}
	for i := 0; i < 10; i++ { // shard 2: rare 100ms outliers
		v := 0.1 + rng.Float64()*0.01
		shard2.Add(v)
		direct.Add(v)
	}
	shard1.Merge(&shard2)
	for _, p := range []float64{0, 50, 95, 99, 99.9, 100} {
		if got, want := shard1.Percentile(p), direct.Percentile(p); got != want {
			t.Errorf("p%v: merged=%v direct=%v", p, got, want)
		}
	}
	if shard1.Mean() != direct.Mean() {
		t.Errorf("mean: merged=%v direct=%v", shard1.Mean(), direct.Mean())
	}
}

// TestSamplesMergeAfterSort verifies merging into an already-sorted receiver
// re-sorts correctly (the sorted flag must be invalidated).
func TestSamplesMergeAfterSort(t *testing.T) {
	var a, b Samples
	a.Add(5)
	a.Add(1)
	_ = a.Median() // forces sort
	b.Add(0.5)
	a.Merge(&b)
	if a.Min() != 0.5 {
		t.Fatalf("min=%v, merge after sort lost ordering", a.Min())
	}
}

// TestWindowMergeEmpty covers empty/nil window merges.
func TestWindowMergeEmpty(t *testing.T) {
	a := NewWindowedMin(time.Second)
	b := NewWindowedMin(time.Second)
	a.Merge(b)
	if !a.Empty(0) {
		t.Fatal("empty+empty should stay empty")
	}
	a.Merge(nil)
	b.Update(10*time.Millisecond, 4)
	a.Merge(b)
	if got := a.Value(20 * time.Millisecond); got != 4 {
		t.Fatalf("value=%v want 4", got)
	}
	empty := NewWindowedMin(time.Second)
	a.Merge(empty)
	if got := a.Value(20 * time.Millisecond); got != 4 {
		t.Fatalf("merging empty changed value to %v", got)
	}
}

// TestWindowMergeSkewed interleaves two shards' observation streams and
// checks the merged filter answers like a single filter that saw the union.
func TestWindowMergeSkewed(t *testing.T) {
	const window = 100 * time.Millisecond
	rng := rand.New(rand.NewSource(11))
	a := NewWindowedMax(window)
	b := NewWindowedMax(window)
	direct := NewWindowedMax(window)

	type obs struct {
		at time.Duration
		v  float64
	}
	var all []obs
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		now += time.Duration(rng.Intn(1000)) * time.Microsecond
		v := rng.Float64() * 100
		if i%10 == 0 {
			v *= 50 // occasional spike, skewing one shard
		}
		all = append(all, obs{now, v})
	}
	for i, o := range all {
		if i%3 == 0 {
			b.Update(o.at, o.v)
		} else {
			a.Update(o.at, o.v)
		}
		direct.Update(o.at, o.v)
	}
	a.Merge(b)
	if got, want := a.Value(now), direct.Value(now); got != want {
		t.Fatalf("merged=%v direct=%v", got, want)
	}
	// After the window slides past every sample, both agree on emptiness.
	later := now + 2*window
	if a.Empty(later) != direct.Empty(later) {
		t.Fatal("expiry behaviour diverged after merge")
	}
}

// TestWindowMergeSingle merges singleton filters in both orders.
func TestWindowMergeSingle(t *testing.T) {
	for _, swap := range []bool{false, true} {
		a := NewWindowedMin(time.Second)
		b := NewWindowedMin(time.Second)
		a.Update(time.Millisecond, 5)
		b.Update(2*time.Millisecond, 3)
		x, y := a, b
		if swap {
			x, y = b, a
		}
		x.Merge(y)
		if got := x.Value(3 * time.Millisecond); got != 3 {
			t.Fatalf("swap=%v: min=%v want 3", swap, got)
		}
	}
}

// TestWindowMergeKindMismatch ensures min/max cross-merges panic loudly.
func TestWindowMergeKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic merging min into max")
		}
	}()
	a := NewWindowedMax(time.Second)
	b := NewWindowedMin(time.Second)
	b.Update(0, 1)
	a.Merge(b)
}
