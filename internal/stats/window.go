package stats

import "time"

// WindowedMinMax tracks the minimum or maximum of a stream of samples over a
// sliding time window, in O(1) amortized time per sample, using a monotonic
// deque. It is the structure BBR-style algorithms use for windowed-max
// bandwidth and windowed-min RTT filters.
type WindowedMinMax struct {
	window time.Duration
	isMin  bool
	q      []wmSample // monotonic: best at q[0]
}

type wmSample struct {
	at time.Duration
	v  float64
}

// NewWindowedMin returns a sliding-window minimum over the given window.
func NewWindowedMin(window time.Duration) *WindowedMinMax {
	return &WindowedMinMax{window: window, isMin: true}
}

// NewWindowedMax returns a sliding-window maximum over the given window.
func NewWindowedMax(window time.Duration) *WindowedMinMax {
	return &WindowedMinMax{window: window}
}

// Update folds in a sample observed at time now (monotonically
// non-decreasing) and returns the current windowed value.
func (w *WindowedMinMax) Update(now time.Duration, v float64) float64 {
	// Drop dominated samples from the back.
	for len(w.q) > 0 {
		last := w.q[len(w.q)-1]
		if (w.isMin && last.v >= v) || (!w.isMin && last.v <= v) {
			w.q = w.q[:len(w.q)-1]
		} else {
			break
		}
	}
	w.q = append(w.q, wmSample{at: now, v: v})
	w.expire(now)
	return w.q[0].v
}

// Value returns the current windowed value at time now, expiring stale
// samples first. Returns 0 if the window is empty.
func (w *WindowedMinMax) Value(now time.Duration) float64 {
	w.expire(now)
	if len(w.q) == 0 {
		return 0
	}
	return w.q[0].v
}

// Empty reports whether no unexpired samples remain as of time now.
func (w *WindowedMinMax) Empty(now time.Duration) bool {
	w.expire(now)
	return len(w.q) == 0
}

// Reset discards all samples.
func (w *WindowedMinMax) Reset() { w.q = w.q[:0] }

func (w *WindowedMinMax) expire(now time.Duration) {
	cutoff := now - w.window
	for len(w.q) > 1 && w.q[0].at < cutoff {
		w.q = w.q[1:]
	}
}
