package stats

import "time"

// WindowedMinMax tracks the minimum or maximum of a stream of samples over a
// sliding time window, in O(1) amortized time per sample, using a monotonic
// deque. It is the structure BBR-style algorithms use for windowed-max
// bandwidth and windowed-min RTT filters.
type WindowedMinMax struct {
	window time.Duration
	isMin  bool
	q      []wmSample // monotonic: best at q[0]
}

type wmSample struct {
	at time.Duration
	v  float64
}

// NewWindowedMin returns a sliding-window minimum over the given window.
func NewWindowedMin(window time.Duration) *WindowedMinMax {
	return &WindowedMinMax{window: window, isMin: true}
}

// NewWindowedMax returns a sliding-window maximum over the given window.
func NewWindowedMax(window time.Duration) *WindowedMinMax {
	return &WindowedMinMax{window: window}
}

// Update folds in a sample observed at time now (monotonically
// non-decreasing) and returns the current windowed value.
func (w *WindowedMinMax) Update(now time.Duration, v float64) float64 {
	// Drop dominated samples from the back.
	for len(w.q) > 0 {
		last := w.q[len(w.q)-1]
		if (w.isMin && last.v >= v) || (!w.isMin && last.v <= v) {
			w.q = w.q[:len(w.q)-1]
		} else {
			break
		}
	}
	w.q = append(w.q, wmSample{at: now, v: v})
	w.expire(now)
	return w.q[0].v
}

// Value returns the current windowed value at time now, expiring stale
// samples first. Returns 0 if the window is empty.
func (w *WindowedMinMax) Value(now time.Duration) float64 {
	w.expire(now)
	if len(w.q) == 0 {
		return 0
	}
	return w.q[0].v
}

// Empty reports whether no unexpired samples remain as of time now.
func (w *WindowedMinMax) Empty(now time.Duration) bool {
	w.expire(now)
	return len(w.q) == 0
}

// Reset discards all samples.
func (w *WindowedMinMax) Reset() { w.q = w.q[:0] }

// Merge folds other's retained samples into w, as if every sample either
// filter had kept were observed by one filter. Both must track the same
// kind of extremum (min with min); Merge panics otherwise, since silently
// mixing a min filter into a max filter yields garbage. The receiver's
// window length is kept. Merging nil or an empty filter is a no-op.
//
// Each deque holds only its non-dominated samples in ascending time order,
// so replaying the merge-sorted union through Update rebuilds a correct
// combined deque: dominated entries are discarded exactly as if the samples
// had arrived interleaved.
func (w *WindowedMinMax) Merge(other *WindowedMinMax) {
	if other == nil || len(other.q) == 0 {
		return
	}
	if w.isMin != other.isMin {
		panic("stats: WindowedMinMax.Merge of min and max filters")
	}
	mine := w.q
	theirs := other.q
	w.q = make([]wmSample, 0, len(mine)+len(theirs))
	merged := mergeByTime(mine, theirs)
	for _, s := range merged {
		// Update, minus the expiry: expiring here against the last sample's
		// timestamp would discard history a caller-supplied later "now" may
		// still consider fresh relative to queries it has already made.
		for len(w.q) > 0 {
			last := w.q[len(w.q)-1]
			if (w.isMin && last.v >= s.v) || (!w.isMin && last.v <= s.v) {
				w.q = w.q[:len(w.q)-1]
			} else {
				break
			}
		}
		w.q = append(w.q, s)
	}
}

// mergeByTime merge-sorts two time-ascending sample slices.
func mergeByTime(a, b []wmSample) []wmSample {
	out := make([]wmSample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].at <= b[j].at {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func (w *WindowedMinMax) expire(now time.Duration) {
	cutoff := now - w.window
	for len(w.q) > 1 && w.q[0].at < cutoff {
		w.q = w.q[1:]
	}
}
