package netsim

import (
	"fmt"
	"time"
)

// LinkConfig describes a unidirectional link with a drop-tail queue.
type LinkConfig struct {
	// RateBps is the link rate in bits per second.
	RateBps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueBytes is the drop-tail buffer capacity in bytes. Zero means a
	// generous default (16 BDP-ish is not computable here, so 1 MiB).
	QueueBytes int
	// ECNThresholdBytes, when >0, marks ECN-capable packets CE when the
	// instantaneous queue occupancy at enqueue is at or above the threshold
	// (DCTCP-style step marking).
	ECNThresholdBytes int
	// LossProb drops packets at random with this probability (applied on
	// enqueue, before the buffer), modelling non-congestive loss.
	LossProb float64
}

// LinkStats aggregates what the link observed.
type LinkStats struct {
	Enqueued        int
	DeliveredPkts   int
	DeliveredBytes  int64 // wire bytes delivered
	DroppedOverflow int
	DroppedRandom   int
	Marked          int
	MaxQueueBytes   int
}

// Link is a unidirectional link: serialization at RateBps, then propagation
// Delay, then delivery to Dst. Enqueue may drop (buffer overflow or random
// loss) or CE-mark packets. All scheduling happens on the owning Sim.
type Link struct {
	sim *Sim
	cfg LinkConfig
	dst Handler

	q      []*Packet
	qBytes int
	busy   bool
	stats  LinkStats

	// OnDequeue, if set, observes each packet as it begins transmission; it is
	// the hook routers use to stamp XCP-style header feedback.
	OnDequeue func(p *Packet, queueBytes int)
}

// NewLink creates a link on sim delivering to dst.
func NewLink(sim *Sim, cfg LinkConfig, dst Handler) *Link {
	if cfg.RateBps <= 0 {
		panic("netsim: link rate must be positive")
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 1 << 20
	}
	return &Link{sim: sim, cfg: cfg, dst: dst}
}

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetRate changes the link rate at runtime (packets already in service
// finish at the old rate). Used to model variable links — cellular
// capacity swings, mid-experiment bandwidth changes.
func (l *Link) SetRate(bps float64) {
	if bps > 0 {
		l.cfg.RateBps = bps
	}
}

// OscillateRate varies the link rate sinusoidally around base with the
// given relative amplitude (0..1) and period, re-evaluated every period/16.
// It models a cellular-style variable link. Returns a stop function.
func OscillateRate(sim *Sim, l *Link, base, amplitude float64, period time.Duration) (stop func()) {
	if amplitude < 0 {
		amplitude = 0
	}
	if amplitude > 0.95 {
		amplitude = 0.95
	}
	stopped := false
	step := period / 16
	var tick func()
	phase := 0
	tick = func() {
		if stopped {
			return
		}
		// Piecewise-sinusoid via a 16-point table (no math import needed).
		f := sin16[phase%16]
		phase++
		l.SetRate(base * (1 + amplitude*f))
		sim.Schedule(step, tick)
	}
	sim.Schedule(0, tick)
	return func() { stopped = true }
}

// sin16 is one period of a sine wave sampled at 16 points.
var sin16 = [16]float64{
	0, 0.3827, 0.7071, 0.9239, 1, 0.9239, 0.7071, 0.3827,
	0, -0.3827, -0.7071, -0.9239, -1, -0.9239, -0.7071, -0.3827,
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueBytes returns the current queue occupancy in wire bytes.
func (l *Link) QueueBytes() int { return l.qBytes }

// SetDst replaces the delivery handler (used when wiring topologies).
func (l *Link) SetDst(dst Handler) { l.dst = dst }

// Enqueue offers a packet to the link. It may be dropped or marked.
func (l *Link) Enqueue(p *Packet) {
	l.stats.Enqueued++
	if l.cfg.LossProb > 0 && l.sim.Rand().Float64() < l.cfg.LossProb {
		l.stats.DroppedRandom++
		return
	}
	wire := p.Wire()
	if l.qBytes+wire > l.cfg.QueueBytes {
		l.stats.DroppedOverflow++
		return
	}
	if l.cfg.ECNThresholdBytes > 0 && p.ECNCapable && l.qBytes >= l.cfg.ECNThresholdBytes {
		p.Marked = true
		l.stats.Marked++
	}
	l.q = append(l.q, p)
	l.qBytes += wire
	if l.qBytes > l.stats.MaxQueueBytes {
		l.stats.MaxQueueBytes = l.qBytes
	}
	if !l.busy {
		l.busy = true
		l.transmitNext()
	}
}

// transmitNext serializes the head-of-line packet and schedules its delivery.
func (l *Link) transmitNext() {
	if len(l.q) == 0 {
		l.busy = false
		return
	}
	p := l.q[0]
	l.q = l.q[1:]
	wire := p.Wire()
	l.qBytes -= wire
	if l.OnDequeue != nil {
		l.OnDequeue(p, l.qBytes)
	}
	serialization := time.Duration(float64(wire*8) / l.cfg.RateBps * float64(time.Second))
	if serialization <= 0 {
		serialization = time.Nanosecond
	}
	l.sim.Schedule(serialization, func() {
		l.stats.DeliveredPkts++
		l.stats.DeliveredBytes += int64(wire)
		dst := l.dst
		l.sim.Schedule(l.cfg.Delay, func() {
			if dst != nil {
				dst.Handle(p)
			}
		})
		l.transmitNext()
	})
}

// Utilization returns delivered wire bytes as a fraction of link capacity
// over the elapsed duration.
func (l *Link) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	capacity := l.cfg.RateBps / 8 * elapsed.Seconds()
	if capacity <= 0 {
		return 0
	}
	return float64(l.stats.DeliveredBytes) / capacity
}

// String describes the link for logs.
func (l *Link) String() string {
	return fmt.Sprintf("link(%.0fbps, %v, buf=%dB)", l.cfg.RateBps, l.cfg.Delay, l.cfg.QueueBytes)
}
