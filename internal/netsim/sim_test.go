package netsim

import (
	"testing"
	"time"
)

func TestSimRunsEventsInTimeOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	n := s.Run(time.Second)
	if n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order=%v", order)
		}
	}
}

func TestSimSameTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := New(1)
	var at []time.Duration
	s.Schedule(time.Millisecond, func() {
		at = append(at, s.Now())
		s.Schedule(time.Millisecond, func() {
			at = append(at, s.Now())
		})
	})
	s.Run(time.Second)
	if len(at) != 2 || at[0] != time.Millisecond || at[1] != 2*time.Millisecond {
		t.Fatalf("at=%v", at)
	}
}

func TestSimRunHorizon(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(2*time.Second, func() { ran = true })
	s.Run(time.Second)
	if ran {
		t.Fatal("event beyond horizon executed")
	}
	if s.Now() != time.Second {
		t.Fatalf("clock=%v, want 1s", s.Now())
	}
	s.Run(3 * time.Second)
	if !ran {
		t.Fatal("event not executed on later run")
	}
}

func TestSimTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.Schedule(time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop reported not-pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported pending")
	}
	s.Run(time.Second)
	if ran {
		t.Fatal("stopped timer fired")
	}
}

func TestSimHalt(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				s.Halt()
			}
		})
	}
	s.Run(time.Second)
	if count != 2 {
		t.Fatalf("count=%d, want 2", count)
	}
}

func TestSimScheduleInPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	New(1).Schedule(-time.Second, func() {})
}

func TestSimDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New(42)
		var vals []float64
		var step func()
		step = func() {
			vals = append(vals, s.Rand().Float64())
			if len(vals) < 100 {
				s.Schedule(time.Duration(s.Rand().Intn(1000))*time.Microsecond, step)
			}
		}
		s.Schedule(0, step)
		s.Run(time.Hour)
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	c := NewRealClock()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
	if c.Now() <= 0 {
		t.Fatal("real clock did not advance")
	}
}

func TestRealClockTimerStop(t *testing.T) {
	c := NewRealClock()
	fired := make(chan struct{}, 1)
	tm := c.AfterFunc(50*time.Millisecond, func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Fatal("stop failed")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(100 * time.Millisecond):
	}
}
