package netsim

// FairStamper is an XCP-style router assist: attached to a link's OnDequeue
// hook, it stamps each data packet's header-rate field with the flow's
// fair share of the link — capacity divided by the number of recently
// active flows, shaded down when the queue is standing. Receivers echo the
// stamp on ACKs, giving explicit rate feedback to the sender.
type FairStamper struct {
	link *Link
	// active tracks flows seen in the current accounting window.
	active map[FlowID]struct{}
	count  int // flow count frozen from the previous window
	seen   int // dequeues since the window began
	window int // dequeues per accounting window
}

// NewFairStamper attaches a stamper to link and returns it.
func NewFairStamper(link *Link) *FairStamper {
	s := &FairStamper{
		link:   link,
		active: make(map[FlowID]struct{}),
		count:  1,
		window: 64,
	}
	link.OnDequeue = s.stamp
	return s
}

// stamp computes the per-flow fair rate at dequeue time.
func (s *FairStamper) stamp(p *Packet, queueBytes int) {
	if p.IsAck {
		return
	}
	s.active[p.Flow] = struct{}{}
	s.seen++
	if s.seen >= s.window {
		s.count = len(s.active)
		if s.count < 1 {
			s.count = 1
		}
		s.active = make(map[FlowID]struct{})
		s.seen = 0
	}
	// Fair share of capacity in bytes/sec, reduced when a queue is
	// standing so that queues drain (XCP's efficiency controller in
	// miniature: shed 10% while backlogged beyond one packet).
	share := s.link.cfg.RateBps / 8 / float64(s.count)
	if queueBytes > 2*p.Wire() {
		share *= 0.90
	}
	p.HdrRate = share
}

// FlowCount returns the current active-flow estimate.
func (s *FairStamper) FlowCount() int { return s.count }
