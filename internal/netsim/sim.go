// Package netsim is a deterministic discrete-event network simulator. It
// provides a virtual clock, an event queue, links with serialization and
// propagation delay, and drop-tail queues with optional ECN marking. It is
// the substrate on which the simulated datapath (internal/tcp) and all
// simulation experiments run.
//
// Determinism: all randomness flows from the simulator's seeded RNG, and
// events scheduled for the same instant run in scheduling order, so a run is
// a pure function of its inputs.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Clock is the time source shared by the datapath and agent so that they run
// unchanged under simulation (virtual time) and over real transports
// (wall-clock time).
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.
	Now() time.Duration
	// AfterFunc schedules fn to run after d. The returned timer can stop it.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a cancellable pending callback, analogous to *time.Timer.
type Timer interface {
	// Stop cancels the callback and reports whether it was still pending.
	Stop() bool
}

// Sim is a discrete-event simulator. Create with New, schedule work with
// Schedule/AfterFunc, and drive it with Run or Step. Sim is not safe for
// concurrent use: everything runs on the caller's goroutine.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	halted bool
}

// New returns a simulator whose randomness is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time. Sim implements Clock.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's seeded random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn at the current time plus d. A negative d panics: the
// simulator cannot travel backwards.
func (s *Sim) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: schedule in the past (d=%v)", d))
	}
	ev := &event{at: s.now + d, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// AfterFunc implements Clock; it is Schedule under the standard-library name.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	return s.Schedule(d, fn)
}

// Run executes events in time order until the event queue is empty, the
// virtual clock passes until, or Halt is called. It returns the number of
// events executed.
func (s *Sim) Run(until time.Duration) int {
	n := 0
	s.halted = false
	for len(s.events) > 0 && !s.halted {
		ev := s.events[0]
		if ev.at > until {
			break
		}
		heap.Pop(&s.events)
		if ev.stopped {
			continue
		}
		s.now = ev.at
		ev.fn()
		n++
	}
	if s.now < until && !s.halted {
		// Advance the clock to the horizon even if events ran dry.
		s.now = until
	}
	return n
}

// Step executes the single next pending event, if any, and reports whether
// one ran.
func (s *Sim) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.stopped {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Halt stops Run after the currently executing event returns.
func (s *Sim) Halt() { s.halted = true }

// Pending returns the number of scheduled (possibly stopped) events.
func (s *Sim) Pending() int { return len(s.events) }

type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	index   int
}

// Stop implements Timer.
func (e *event) Stop() bool {
	if e.stopped {
		return false
	}
	e.stopped = true
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
