// Package netsim is a deterministic discrete-event network simulator. It
// provides a virtual clock, an event queue, links with serialization and
// propagation delay, and drop-tail queues with optional ECN marking. It is
// the substrate on which the simulated datapath (internal/tcp) and all
// simulation experiments run.
//
// Determinism: all randomness flows from the simulator's seeded RNG, and
// events scheduled for the same instant run in scheduling order, so a run is
// a pure function of its inputs.
package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// Clock is the time source shared by the datapath and agent so that they run
// unchanged under simulation (virtual time) and over real transports
// (wall-clock time).
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.
	Now() time.Duration
	// AfterFunc schedules fn to run after d. The returned timer can stop it.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a cancellable pending callback, analogous to *time.Timer.
//
// Lifetime: a Timer handle is live only while its callback is pending. Once
// the callback has fired, or Stop has returned true, the handle is dead and
// must be dropped — the simulator recycles the underlying event slot, so a
// retained dead handle may observe (and a Stop on it may cancel) an
// unrelated later event. The idiom throughout this repo is to nil the
// holding field inside the callback and after every Stop.
type Timer interface {
	// Stop cancels the callback and reports whether it was still pending.
	Stop() bool
}

// Sim is a discrete-event simulator. Create with New, schedule work with
// Schedule/AfterFunc, and drive it with Run or Step. Sim is not safe for
// concurrent use: everything runs on the caller's goroutine.
//
// The event queue is an index-based 4-ary min-heap over a free-listed event
// arena: Schedule reuses arena slots and per-slot Timer handles, so the
// steady-state schedule/dispatch cycle performs no heap allocation (the
// container/heap predecessor allocated one *event per Schedule and boxed it
// on every push/pop). Ordering is by (at, seq) — a total order — so dispatch
// order is bit-identical to the binary-heap implementation's.
type Sim struct {
	now    time.Duration
	seq    uint64
	rng    *rand.Rand
	halted bool

	heap    []int32 // slot indices, 4-ary min-heap ordered by (at, seq)
	arena   []slot
	free    []int32 // recycled arena slots
	stopped int     // lazily-cancelled events still occupying the heap
}

// slot is one arena entry. gen distinguishes successive occupancies of the
// slot, so a stale Timer handle (retained past its event's lifetime) fails
// its Stop instead of cancelling the slot's next occupant.
type slot struct {
	at      time.Duration
	seq     uint64
	fn      func()
	gen     uint32
	stopped bool
	// handle is this slot's reusable Timer, allocated on the slot's first
	// use and re-armed (gen updated) on every reuse.
	handle *simTimer
}

// simTimer implements Timer for one occupancy of an arena slot.
type simTimer struct {
	s   *Sim
	idx int32
	gen uint32
}

// Stop implements Timer. Cancellation is lazy — the event keeps its heap
// position until it reaches the root or a compaction sweeps it — but when
// cancelled events exceed half the heap they are compacted away, so mass
// cancellation (e.g. one abandoned RTO per ACK) cannot bloat the queue.
func (t *simTimer) Stop() bool {
	sl := &t.s.arena[t.idx]
	if sl.gen != t.gen || sl.stopped {
		return false
	}
	sl.stopped = true
	sl.fn = nil
	t.s.stopped++
	if t.s.stopped > len(t.s.heap)/2 {
		t.s.compact()
	}
	return true
}

// New returns a simulator whose randomness is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time. Sim implements Clock.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's seeded random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn at the current time plus d. A negative d panics: the
// simulator cannot travel backwards. Steady state (slots recycling through
// the free list, heap within capacity) this allocates nothing.
func (s *Sim) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("netsim: schedule in the past (d=%v)", d))
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.arena = append(s.arena, slot{})
		idx = int32(len(s.arena) - 1)
	}
	sl := &s.arena[idx]
	sl.at = s.now + d
	sl.seq = s.seq
	s.seq++
	sl.fn = fn
	sl.stopped = false
	if sl.handle == nil {
		sl.handle = &simTimer{s: s, idx: idx}
	}
	sl.handle.gen = sl.gen
	s.heap = append(s.heap, idx)
	s.siftUp(len(s.heap) - 1)
	return sl.handle
}

// AfterFunc implements Clock; it is Schedule under the standard-library name.
func (s *Sim) AfterFunc(d time.Duration, fn func()) Timer {
	return s.Schedule(d, fn)
}

// Run executes events in time order until the event queue is empty, the
// virtual clock passes until, or Halt is called. It returns the number of
// events executed.
func (s *Sim) Run(until time.Duration) int {
	n := 0
	s.halted = false
	for len(s.heap) > 0 && !s.halted {
		idx := s.heap[0]
		sl := &s.arena[idx]
		if sl.at > until {
			break
		}
		s.popRoot()
		if sl.stopped {
			s.stopped--
			s.freeSlot(idx)
			continue
		}
		at, fn := sl.at, sl.fn
		s.freeSlot(idx)
		s.now = at
		fn()
		n++
	}
	if s.now < until && !s.halted {
		// Advance the clock to the horizon even if events ran dry.
		s.now = until
	}
	return n
}

// Step executes the single next pending event, if any, and reports whether
// one ran.
func (s *Sim) Step() bool {
	for len(s.heap) > 0 {
		idx := s.heap[0]
		sl := &s.arena[idx]
		s.popRoot()
		if sl.stopped {
			s.stopped--
			s.freeSlot(idx)
			continue
		}
		at, fn := sl.at, sl.fn
		s.freeSlot(idx)
		s.now = at
		fn()
		return true
	}
	return false
}

// Halt stops Run after the currently executing event returns.
func (s *Sim) Halt() { s.halted = true }

// Pending returns the number of scheduled events still occupying the queue
// (including lazily-cancelled ones not yet compacted away).
func (s *Sim) Pending() int { return len(s.heap) }

// freeSlot retires an arena slot for reuse. Bumping gen invalidates any
// Timer handle still pointing at the finished occupancy.
func (s *Sim) freeSlot(idx int32) {
	sl := &s.arena[idx]
	sl.fn = nil
	sl.stopped = false
	sl.gen++
	s.free = append(s.free, idx)
}

// compact removes every cancelled event from the heap in one sweep and
// re-establishes the heap property bottom-up. Triggered by Stop once
// cancelled events outnumber live ones; dispatch order is unaffected because
// (at, seq) is a total order.
func (s *Sim) compact() {
	keep := s.heap[:0]
	for _, idx := range s.heap {
		if s.arena[idx].stopped {
			s.freeSlot(idx)
		} else {
			keep = append(keep, idx)
		}
	}
	s.heap = keep
	s.stopped = 0
	for i := (len(s.heap) - 2) / 4; i >= 0; i-- {
		s.siftDown(i)
	}
}

// less orders heap entries by (at, seq): earlier deadline first, scheduling
// order breaking ties.
func (s *Sim) less(a, b int32) bool {
	sa, sb := &s.arena[a], &s.arena[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (s *Sim) siftUp(i int) {
	h := s.heap
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (s *Sim) siftDown(i int) {
	h := s.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(h[c], h[min]) {
				min = c
			}
		}
		if !s.less(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// popRoot removes the minimum entry from the heap (the caller has already
// read s.heap[0]).
func (s *Sim) popRoot() {
	h := s.heap
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	if n > 0 {
		s.siftDown(0)
	}
}
