package netsim

import (
	"sync"
	"time"
)

// RealClock is a Clock backed by the wall clock, for running the CCP agent
// and datapath runtime over real transports (e.g. Unix sockets) outside the
// simulator. Now is reported relative to the clock's creation.
type RealClock struct {
	epoch time.Time
}

// NewRealClock returns a wall-clock Clock with its epoch set to now.
func NewRealClock() *RealClock {
	return &RealClock{epoch: time.Now()} //lint:ownership RealClock is the explicit wall-clock adapter for runs outside the simulator
}

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) } //lint:ownership wall-clock time is this type's contract

// AfterFunc implements Clock using time.AfterFunc.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) Timer {
	return &realTimer{t: time.AfterFunc(d, fn)} //lint:ownership wall-clock timers are this type's contract
}

type realTimer struct {
	mu sync.Mutex
	t  *time.Timer
}

func (r *realTimer) Stop() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t.Stop()
}
