package netsim

import (
	"testing"
	"time"
)

func TestFairStamperStampsDataPackets(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	// 8 Mbit/s = 1e6 bytes/sec capacity.
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0}, dst)
	NewFairStamper(l)
	for i := 0; i < 10; i++ {
		l.Enqueue(mkPkt(1, 960))
	}
	s.Run(time.Second)
	for i, p := range dst.pkts {
		if p.HdrRate <= 0 {
			t.Fatalf("packet %d unstamped", i)
		}
		// Single flow: the share is the (possibly shaded) full capacity.
		if p.HdrRate > 1e6 || p.HdrRate < 0.8e6 {
			t.Fatalf("packet %d share=%v, want ~1e6", i, p.HdrRate)
		}
	}
}

func TestFairStamperSplitsAcrossFlows(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0, QueueBytes: 1 << 22}, dst)
	st := NewFairStamper(l)
	st.FlowCount() // exercise accessor
	// Interleave two flows past the accounting window (64 dequeues).
	for i := 0; i < 200; i++ {
		l.Enqueue(mkPkt(FlowID(1+i%2), 960))
	}
	s.Run(time.Second)
	if st.FlowCount() != 2 {
		t.Fatalf("flow count=%d, want 2", st.FlowCount())
	}
	// After the first window, stamps reflect a half share.
	last := dst.pkts[len(dst.pkts)-1]
	if last.HdrRate > 0.55e6 || last.HdrRate < 0.4e6 {
		t.Fatalf("late stamp %v, want ~0.5e6", last.HdrRate)
	}
}

func TestFairStamperIgnoresAcks(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0}, dst)
	NewFairStamper(l)
	l.Enqueue(&Packet{Flow: 1, IsAck: true})
	s.Run(time.Second)
	if dst.pkts[0].HdrRate != 0 {
		t.Fatal("ACK was stamped")
	}
}

func TestFairStamperShadesUnderBacklog(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0, QueueBytes: 1 << 22}, dst)
	NewFairStamper(l)
	// A deep standing queue: stamps shade below the full share.
	for i := 0; i < 50; i++ {
		l.Enqueue(mkPkt(1, 960))
	}
	s.Run(time.Second)
	early := dst.pkts[1] // queue standing behind it
	if early.HdrRate >= 1e6 {
		t.Fatalf("backlogged stamp %v not shaded below capacity", early.HdrRate)
	}
}
