package netsim

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/testenv"
)

// TestAllocsScheduleDispatch locks in the event queue's zero-allocation
// steady state: once the arena, heap, free list, and per-slot timer handles
// have warmed up, a schedule+dispatch cycle must not touch the heap.
func TestAllocsScheduleDispatch(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := New(1)
	// Precomputed callback: closures allocated per iteration would be charged
	// to the test, not the simulator.
	var fired int
	fn := func() { fired++ }

	// Warm up the arena and heap capacity.
	for i := 0; i < 64; i++ {
		s.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	s.Run(time.Second)

	allocs := testing.AllocsPerRun(1000, func() {
		s.Schedule(time.Microsecond, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+dispatch allocated %.1f times per op, want 0", allocs)
	}

	// Stop path: schedule, cancel, let compaction recycle — also free.
	allocs = testing.AllocsPerRun(1000, func() {
		tm := s.Schedule(time.Millisecond, fn)
		tm.Stop()
	})
	if allocs != 0 {
		t.Fatalf("schedule+stop allocated %.1f times per op, want 0", allocs)
	}
}

// TestPendingShrinksAfterMassCancellation is the stopped-timer retention
// regression test: cancelling most of the queue must compact it well before
// the deadlines pass (previously every cancelled RTO sat in the heap until
// its deadline, so Pending() grew without bound).
func TestPendingShrinksAfterMassCancellation(t *testing.T) {
	s := New(1)
	const n = 1000
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		// Long deadlines: none of these fire during the test.
		timers = append(timers, s.Schedule(time.Hour, func() {}))
	}
	if got := s.Pending(); got != n {
		t.Fatalf("Pending=%d, want %d", got, n)
	}
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop reported not-pending for a pending timer")
		}
	}
	if got := s.Pending(); got > n/2 {
		t.Fatalf("Pending=%d after cancelling all %d timers; compaction did not run", got, n)
	}
}

// TestCompactionPreservesOrder cancels interleaved timers and checks the
// survivors still dispatch in exact (at, seq) order.
func TestCompactionPreservesOrder(t *testing.T) {
	s := New(1)
	var got []int
	var cancel []Timer
	for i := 0; i < 200; i++ {
		i := i
		tm := s.Schedule(time.Duration(200-i)*time.Millisecond, func() { got = append(got, i) })
		if i%2 == 0 {
			cancel = append(cancel, tm)
		}
	}
	for _, tm := range cancel {
		tm.Stop()
	}
	s.Run(time.Hour)
	if len(got) != 100 {
		t.Fatalf("ran %d events, want 100", len(got))
	}
	for j := 1; j < len(got); j++ {
		// Deadline 200-i ms: later i fires earlier, so got must be strictly
		// decreasing.
		if got[j] >= got[j-1] {
			t.Fatalf("dispatch out of order at %d: %v", j, got[:j+1])
		}
	}
}

// TestStaleHandleStopIsNoop checks the generation guard: Stop on a handle
// whose event already fired is a no-op while the slot sits on the free list.
// (Once the slot is *reused* the handle is re-armed for the new occupant —
// that is why the Timer contract forbids retaining dead handles.)
func TestStaleHandleStopIsNoop(t *testing.T) {
	s := New(1)
	stale := s.Schedule(time.Millisecond, func() {})
	s.Run(time.Second) // fires; slot freed, handle now stale
	if stale.Stop() {
		t.Fatal("stale handle Stop reported pending")
	}
}
