package netsim

import "time"

// PathConfig describes a symmetric two-way path: a forward bottleneck link
// (data direction) and a reverse link for ACKs. The reverse link is
// provisioned at the same rate with an ample buffer so ACKs never queue —
// the common dumbbell-evaluation assumption.
type PathConfig struct {
	// Bottleneck is the forward (data) link.
	Bottleneck LinkConfig
	// ReverseDelay is the one-way delay of the ACK path. Zero means "same
	// as the bottleneck's delay", yielding RTTmin = 2 * Delay.
	ReverseDelay time.Duration
}

// Path wires a forward bottleneck and a reverse ACK link between two
// handlers. Multiple senders may share the same Path's bottleneck (dumbbell).
type Path struct {
	Forward *Link
	Reverse *Link
}

// NewPath builds a path on sim. Forward traffic is delivered to fwdDst
// (the receiver side); reverse traffic to revDst (the sender side). For
// multi-flow dumbbells, use a Demux handler on each side.
func NewPath(sim *Sim, cfg PathConfig, fwdDst, revDst Handler) *Path {
	rev := cfg.Bottleneck
	rev.Delay = cfg.ReverseDelay
	if rev.Delay == 0 {
		rev.Delay = cfg.Bottleneck.Delay
	}
	// The ACK path should not itself be a bottleneck: scale its rate and
	// buffer up and disable loss/marking.
	rev.RateBps = cfg.Bottleneck.RateBps * 4
	rev.QueueBytes = 64 << 20
	rev.ECNThresholdBytes = 0
	rev.LossProb = 0
	return &Path{
		Forward: NewLink(sim, cfg.Bottleneck, fwdDst),
		Reverse: NewLink(sim, rev, revDst),
	}
}

// BDPBytes returns the bandwidth-delay product of cfg in bytes, using the
// full round-trip (forward + reverse propagation delay).
func (cfg PathConfig) BDPBytes() int {
	rtt := cfg.Bottleneck.Delay + cfg.ReverseDelay
	if cfg.ReverseDelay == 0 {
		rtt = 2 * cfg.Bottleneck.Delay
	}
	return int(cfg.Bottleneck.RateBps / 8 * rtt.Seconds())
}

// Demux routes packets to per-flow handlers, with an optional default.
type Demux struct {
	byFlow map[FlowID]Handler
	// Default handles packets for unknown flows; nil drops them.
	Default Handler
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux {
	return &Demux{byFlow: make(map[FlowID]Handler)}
}

// Register routes packets of flow id to h.
func (d *Demux) Register(id FlowID, h Handler) { d.byFlow[id] = h }

// Handle implements Handler.
func (d *Demux) Handle(p *Packet) {
	if h, ok := d.byFlow[p.Flow]; ok {
		h.Handle(p)
		return
	}
	if d.Default != nil {
		d.Default.Handle(p)
	}
}
