package netsim

import (
	"testing"
	"time"
)

// collect gathers delivered packets with their delivery times.
type collect struct {
	sim  *Sim
	pkts []*Packet
	at   []time.Duration
}

func (c *collect) Handle(p *Packet) {
	c.pkts = append(c.pkts, p)
	c.at = append(c.at, c.sim.Now())
}

func mkPkt(flow FlowID, length int) *Packet {
	return &Packet{Flow: flow, Len: length, Segs: 1}
}

func TestLinkDeliveryTiming(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	// 8 Mbit/s => 1e6 bytes/sec; a 960-byte payload +40 header = 1000 wire
	// bytes => 1ms serialization; +5ms propagation = 6ms delivery.
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond}, dst)
	l.Enqueue(mkPkt(1, 960))
	s.Run(time.Second)
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(dst.pkts))
	}
	if got, want := dst.at[0], 6*time.Millisecond; got != want {
		t.Fatalf("delivered at %v, want %v", got, want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0}, dst)
	l.Enqueue(mkPkt(1, 960))
	l.Enqueue(mkPkt(1, 960))
	s.Run(time.Second)
	if len(dst.pkts) != 2 {
		t.Fatalf("delivered %d packets", len(dst.pkts))
	}
	if dst.at[0] != time.Millisecond || dst.at[1] != 2*time.Millisecond {
		t.Fatalf("delivery times %v", dst.at)
	}
}

func TestLinkDropTail(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	// Queue fits exactly two wire packets of 1000B.
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0, QueueBytes: 2000}, dst)
	for i := 0; i < 5; i++ {
		l.Enqueue(mkPkt(1, 960))
	}
	s.Run(time.Second)
	st := l.Stats()
	// The first packet starts transmitting immediately (leaves the queue),
	// so 3 fit (1 in service + 2 queued) and 2 drop.
	if len(dst.pkts) != 3 || st.DroppedOverflow != 2 {
		t.Fatalf("delivered=%d dropped=%d", len(dst.pkts), st.DroppedOverflow)
	}
}

func TestLinkECNMarking(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0, QueueBytes: 1 << 20, ECNThresholdBytes: 1500}, dst)
	for i := 0; i < 4; i++ {
		p := mkPkt(1, 960)
		p.ECNCapable = true
		l.Enqueue(p)
	}
	s.Run(time.Second)
	marked := 0
	for _, p := range dst.pkts {
		if p.Marked {
			marked++
		}
	}
	// Packet 0 enters service immediately (queue 0), packet 1 sees 0 queued
	// bytes... wait: packet 0 dequeues synchronously, so packet 1 sees
	// qBytes=0? No: transmitNext pops packet 0 immediately, so packet 1
	// enqueues with qBytes=0, packet 2 with 1000, packet 3 with 2000. With
	// threshold 1500, only packet 3 is marked.
	if marked != 1 {
		t.Fatalf("marked=%d, want 1", marked)
	}
	if l.Stats().Marked != 1 {
		t.Fatalf("stats.Marked=%d", l.Stats().Marked)
	}
}

func TestLinkECNIgnoresNonCapable(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0, ECNThresholdBytes: 1}, dst)
	for i := 0; i < 4; i++ {
		l.Enqueue(mkPkt(1, 960)) // not ECN capable
	}
	s.Run(time.Second)
	if l.Stats().Marked != 0 {
		t.Fatal("marked non-ECN-capable packets")
	}
}

func TestLinkRandomLossDeterministic(t *testing.T) {
	run := func() int {
		s := New(99)
		dst := &collect{sim: s}
		l := NewLink(s, LinkConfig{RateBps: 8e9, Delay: 0, LossProb: 0.3}, dst)
		for i := 0; i < 1000; i++ {
			l.Enqueue(mkPkt(1, 960))
		}
		s.Run(time.Second)
		return len(dst.pkts)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("loss not deterministic: %d vs %d", a, b)
	}
	if a < 550 || a > 850 {
		t.Fatalf("delivered %d of 1000 with p=0.3; implausible", a)
	}
}

func TestLinkUtilization(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0}, dst)
	// Saturate for 100ms: capacity = 1e6 B/s * 0.1s = 100000 B = 100 pkts.
	for i := 0; i < 100; i++ {
		l.Enqueue(mkPkt(1, 960))
	}
	s.Run(100 * time.Millisecond)
	u := l.Utilization(100 * time.Millisecond)
	if u < 0.99 || u > 1.01 {
		t.Fatalf("utilization=%v, want ~1", u)
	}
}

func TestLinkOnDequeueHook(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0}, dst)
	var seen int
	l.OnDequeue = func(p *Packet, qb int) { seen++ }
	l.Enqueue(mkPkt(1, 100))
	l.Enqueue(mkPkt(1, 100))
	s.Run(time.Second)
	if seen != 2 {
		t.Fatalf("hook saw %d packets", seen)
	}
}

func TestLinkMaxQueueStat(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0, QueueBytes: 1 << 20}, dst)
	for i := 0; i < 10; i++ {
		l.Enqueue(mkPkt(1, 960))
	}
	if l.Stats().MaxQueueBytes != 9000 {
		// Packet 0 in service; 9 queued x 1000B.
		t.Fatalf("MaxQueueBytes=%d, want 9000", l.Stats().MaxQueueBytes)
	}
	s.Run(time.Second)
}

func TestPathRoundTrip(t *testing.T) {
	s := New(1)
	var gotFwd, gotRev *Packet
	var fwdAt, revAt time.Duration
	cfg := PathConfig{Bottleneck: LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond}}
	var p *Path
	p = NewPath(s, cfg,
		HandlerFunc(func(pk *Packet) {
			gotFwd, fwdAt = pk, s.Now()
			ack := &Packet{Flow: pk.Flow, IsAck: true, CumAck: pk.Seq + uint64(pk.Len)}
			p.Reverse.Enqueue(ack)
		}),
		HandlerFunc(func(pk *Packet) { gotRev, revAt = pk, s.Now() }))
	p.Forward.Enqueue(mkPkt(7, 960))
	s.Run(time.Second)
	if gotFwd == nil || gotRev == nil {
		t.Fatal("packet or ack not delivered")
	}
	if gotRev.CumAck != 960 {
		t.Fatalf("ack=%d", gotRev.CumAck)
	}
	// Forward: 1ms serialization + 5ms prop. Reverse: 40B at 32Mbps = 10µs,
	// +5ms prop.
	if fwdAt != 6*time.Millisecond {
		t.Fatalf("fwdAt=%v", fwdAt)
	}
	if revAt <= fwdAt || revAt > fwdAt+6*time.Millisecond {
		t.Fatalf("revAt=%v", revAt)
	}
}

func TestPathBDP(t *testing.T) {
	cfg := PathConfig{Bottleneck: LinkConfig{RateBps: 1e9, Delay: 5 * time.Millisecond}}
	// 1Gbps * 10ms RTT = 1.25e6 bytes.
	if got := cfg.BDPBytes(); got != 1250000 {
		t.Fatalf("BDP=%d", got)
	}
}

func TestDemuxRouting(t *testing.T) {
	d := NewDemux()
	var a, b, def int
	d.Register(1, HandlerFunc(func(*Packet) { a++ }))
	d.Register(2, HandlerFunc(func(*Packet) { b++ }))
	d.Handle(&Packet{Flow: 1})
	d.Handle(&Packet{Flow: 2})
	d.Handle(&Packet{Flow: 3}) // dropped: no default
	d.Default = HandlerFunc(func(*Packet) { def++ })
	d.Handle(&Packet{Flow: 9})
	if a != 1 || b != 1 || def != 1 {
		t.Fatalf("a=%d b=%d def=%d", a, b, def)
	}
}

func TestPacketWire(t *testing.T) {
	p := &Packet{Len: 1460}
	if p.Wire() != 1500 {
		t.Fatalf("wire=%d", p.Wire())
	}
	p.WireLen = 777
	if p.Wire() != 777 {
		t.Fatalf("wire override=%d", p.Wire())
	}
	ack := &Packet{IsAck: true}
	if ack.Wire() != HeaderBytes {
		t.Fatalf("ack wire=%d", ack.Wire())
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0}, dst)
	l.Enqueue(mkPkt(1, 960)) // serializes in 1ms at 8Mbps
	s.Run(time.Second)
	l.SetRate(80e6)
	l.Enqueue(mkPkt(1, 960)) // 0.1ms at 80Mbps
	s.Run(2 * time.Second)
	if len(dst.at) != 2 {
		t.Fatalf("delivered=%d", len(dst.at))
	}
	if got := dst.at[1] - time.Second; got != 100*time.Microsecond {
		t.Fatalf("fast-rate delivery took %v, want 100µs", got)
	}
	// Non-positive rates are ignored.
	l.SetRate(0)
	if l.Config().RateBps != 80e6 {
		t.Fatal("zero rate applied")
	}
}

func TestOscillateRateVaries(t *testing.T) {
	s := New(1)
	dst := &collect{sim: s}
	l := NewLink(s, LinkConfig{RateBps: 8e6, Delay: 0}, dst)
	stop := OscillateRate(s, l, 8e6, 0.5, 100*time.Millisecond)
	lo, hi := 1e18, 0.0
	for ms := 5; ms <= 200; ms += 5 {
		s.Run(time.Duration(ms) * time.Millisecond)
		r := l.Config().RateBps
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo > 4.5e6 || hi < 11.5e6 {
		t.Fatalf("oscillation range [%.3g, %.3g], want ~[4e6, 12e6]", lo, hi)
	}
	stop()
	at := l.Config().RateBps
	s.Run(time.Second)
	if l.Config().RateBps != at {
		t.Fatal("oscillation continued after stop")
	}
}
