package netsim

import (
	"testing"
	"time"
)

// Benchmarks for the event-queue hot cycle. Schedule/dispatch runs once per
// simulated packet arrival, so its constant factor dominates large
// simulations. `make benchstat` compares these against bench/baseline.txt.

// BenchmarkScheduleDispatch measures the steady-state cycle at a realistic
// queue depth: 256 pending events, each dispatch scheduling its successor.
func BenchmarkScheduleDispatch(b *testing.B) {
	s := New(1)
	const depth = 256
	var fn func()
	fn = func() { s.Schedule(time.Microsecond, fn) }
	for i := 0; i < depth; i++ {
		s.Schedule(time.Duration(i)*time.Nanosecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkScheduleStopChurn measures the RTO idiom: each dispatched event
// arms a long timer that is then abandoned, exercising the lazy-stop and
// compaction machinery that keeps mass cancellation from bloating the heap.
func BenchmarkScheduleStopChurn(b *testing.B) {
	s := New(1)
	noop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rto := s.Schedule(time.Second, noop)
		s.Schedule(0, noop)
		s.Step()
		rto.Stop()
	}
}
