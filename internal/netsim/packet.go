package netsim

import "time"

// FlowID identifies a transport flow within a simulation.
type FlowID uint32

// Packet is the unit of transmission in the simulator. Data packets carry
// payload bytes identified by [Seq, Seq+Len); ACK packets carry a cumulative
// acknowledgment. Fields the paper's API exposes as per-packet measurements
// (timestamps, ECN, router-stamped header rate) travel with the packet.
type Packet struct {
	Flow FlowID

	// Data direction.
	Seq        uint64 // first payload byte carried
	Len        int    // payload bytes (0 for a pure ACK)
	Segs       int    // MSS-sized segments represented (>=1); >1 models TSO/GRO aggregation
	IsRetx     bool   // retransmission (excluded from RTT sampling)
	WireLen    int    // bytes on the wire including header overhead
	SentAt     time.Duration
	ECNCapable bool
	Marked     bool // CE mark set by a congested queue

	// ACK direction.
	IsAck     bool
	CumAck    uint64        // next byte expected by the receiver
	EchoTS    time.Duration // SentAt of the packet that triggered this ACK
	EchoValid bool          // EchoTS carries a real timestamp (t=0 is valid)
	EchoRetx  bool          // the echoed timestamp came from a retransmission
	ECNEcho   bool          // receiver saw CE since last ACK
	// Sacks advertises up to MaxSackRanges received-but-out-of-order byte
	// ranges [start, end), most recently changed first, like TCP SACK.
	Sacks [][2]uint64

	// Router-stamped feedback for XCP-style algorithms: the bottleneck
	// annotates the allowed per-flow rate (bytes/sec); the receiver echoes
	// it back on ACKs.
	HdrRate float64
}

// HeaderBytes is the per-packet header overhead (IP+TCP-like) charged on the
// wire for every packet, data or ACK.
const HeaderBytes = 40

// MaxSackRanges bounds the SACK blocks an ACK can carry, as TCP option
// space does.
const MaxSackRanges = 3

// Wire returns the packet's size on the wire.
func (p *Packet) Wire() int {
	if p.WireLen > 0 {
		return p.WireLen
	}
	return p.Len + HeaderBytes
}

// Handler consumes packets delivered by a link.
type Handler interface {
	Handle(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// Handle implements Handler.
func (f HandlerFunc) Handle(p *Packet) { f(p) }
