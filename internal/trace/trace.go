// Package trace records and renders experiment time series: congestion
// window and throughput traces, CSV output for external plotting, compact
// ASCII charts for terminal reports, and run summaries (utilization, median
// RTT, fairness) matching the metrics the paper reports.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Point is one time-series observation.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named time series. Append-only; points must arrive in time
// order.
type Series struct {
	Name   string
	Unit   string
	points []Point
}

// NewSeries creates an empty series.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Add appends an observation.
func (s *Series) Add(t time.Duration, v float64) {
	s.points = append(s.points, Point{T: t, V: v})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// Points returns the underlying points (read-only by convention).
func (s *Series) Points() []Point { return s.points }

// At returns the last value at or before t (0 if none).
func (s *Series) At(t time.Duration) float64 {
	v := 0.0
	for _, p := range s.points {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// Max returns the maximum value (0 for empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values (0 for empty).
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.V
	}
	return sum / float64(len(s.points))
}

// MeanOver returns the mean of values with from <= T < to.
func (s *Series) MeanOver(from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, p := range s.points {
		if p.T >= from && p.T < to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Bin resamples the series into fixed-width bins by averaging, producing
// one point per bin at the bin's start time.
func (s *Series) Bin(width time.Duration) *Series {
	out := NewSeries(s.Name, s.Unit)
	if width <= 0 || len(s.points) == 0 {
		out.points = append(out.points, s.points...)
		return out
	}
	var binStart time.Duration
	sum, n := 0.0, 0
	flush := func() {
		if n > 0 {
			out.Add(binStart, sum/float64(n))
		}
	}
	binStart = s.points[0].T / width * width
	for _, p := range s.points {
		b := p.T / width * width
		if b != binStart {
			flush()
			binStart = b
			sum, n = 0, 0
		}
		sum += p.V
		n++
	}
	flush()
	return out
}

// RMSE computes the root-mean-square difference between two series sampled
// on a fixed grid — the fidelity metric the batching ablation reports.
func RMSE(a, b *Series, step, from, to time.Duration) float64 {
	if step <= 0 || to <= from {
		return 0
	}
	sum, n := 0.0, 0
	for t := from; t < to; t += step {
		d := a.At(t) - b.At(t)
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// WriteCSV writes "seconds,value" rows with a header.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_s,%s_%s\n", s.Name, s.Unit); err != nil {
		return err
	}
	for _, p := range s.points {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", p.T.Seconds(), p.V); err != nil {
			return err
		}
	}
	return nil
}

// WriteMultiCSV writes several series on a shared time grid (union of
// timestamps, last-value-holds).
func WriteMultiCSV(w io.Writer, step time.Duration, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	header := []string{"time_s"}
	var end time.Duration
	for _, s := range series {
		header = append(header, s.Name)
		if n := s.Len(); n > 0 && s.points[n-1].T > end {
			end = s.points[n-1].T
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for t := time.Duration(0); t <= end; t += step {
		row := []string{fmt.Sprintf("%.6f", t.Seconds())}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.6f", s.At(t)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ASCII renders the series as a compact terminal chart: rows top-down from
// max to 0, one column per time bin.
func (s *Series) ASCII(width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 12
	}
	if len(s.points) == 0 {
		return "(no data)\n"
	}
	start := s.points[0].T
	end := s.points[len(s.points)-1].T
	span := end - start
	if span <= 0 {
		span = time.Second
	}
	// Column values: mean per bin.
	sums := make([]float64, width)
	counts := make([]int, width)
	for _, p := range s.points {
		col := int(float64(p.T-start) / float64(span) * float64(width-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		sums[col] += p.V
		counts[col]++
	}
	cols := make([]float64, width)
	maxV := 0.0
	last := 0.0
	for i := range cols {
		if counts[i] > 0 {
			cols[i] = sums[i] / float64(counts[i])
			last = cols[i]
		} else {
			cols[i] = last
		}
		if cols[i] > maxV {
			maxV = cols[i]
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s), max=%.4g\n", s.Name, s.Unit, maxV)
	for row := height; row >= 1; row-- {
		threshold := maxV * (float64(row) - 0.5) / float64(height)
		b.WriteString("|")
		for _, v := range cols {
			if v >= threshold {
				b.WriteString("#")
			} else {
				b.WriteString(" ")
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " %-10s%*s\n", fmtDur(start), width-10, fmtDur(end))
	return b.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// JainFairness computes Jain's fairness index over per-flow allocations.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}
