package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestSeriesAtHoldsLastValue(t *testing.T) {
	s := NewSeries("cwnd", "bytes")
	s.Add(secs(1), 10)
	s.Add(secs(2), 20)
	s.Add(secs(3), 30)
	cases := []struct {
		t time.Duration
		v float64
	}{
		{0, 0}, {secs(1), 10}, {secs(1.5), 10}, {secs(2), 20}, {secs(10), 30},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.v {
			t.Errorf("At(%v)=%v, want %v", c.t, got, c.v)
		}
	}
}

func TestSeriesStats(t *testing.T) {
	s := NewSeries("x", "u")
	for i, v := range []float64{1, 5, 3} {
		s.Add(secs(float64(i)), v)
	}
	if s.Max() != 5 || s.Mean() != 3 || s.Len() != 3 {
		t.Fatalf("max=%v mean=%v len=%d", s.Max(), s.Mean(), s.Len())
	}
	if got := s.MeanOver(secs(0.5), secs(2.5)); got != 4 {
		t.Fatalf("MeanOver=%v, want 4", got)
	}
	if got := s.MeanOver(secs(10), secs(20)); got != 0 {
		t.Fatalf("empty MeanOver=%v", got)
	}
}

func TestBin(t *testing.T) {
	s := NewSeries("x", "u")
	s.Add(100*time.Millisecond, 1)
	s.Add(150*time.Millisecond, 3)
	s.Add(250*time.Millisecond, 10)
	b := s.Bin(100 * time.Millisecond)
	if b.Len() != 2 {
		t.Fatalf("bins=%d", b.Len())
	}
	if b.Points()[0].V != 2 || b.Points()[1].V != 10 {
		t.Fatalf("bins=%+v", b.Points())
	}
	if b.Points()[0].T != 100*time.Millisecond || b.Points()[1].T != 200*time.Millisecond {
		t.Fatalf("bin times=%+v", b.Points())
	}
}

func TestRMSE(t *testing.T) {
	a := NewSeries("a", "u")
	b := NewSeries("b", "u")
	for i := 0; i < 10; i++ {
		a.Add(secs(float64(i)), 5)
		b.Add(secs(float64(i)), 8)
	}
	got := RMSE(a, b, time.Second, 0, secs(10))
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("rmse=%v, want 3", got)
	}
	if RMSE(a, a, time.Second, 0, secs(10)) != 0 {
		t.Fatal("self-rmse nonzero")
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSeries("cwnd", "bytes")
	s.Add(secs(1), 42)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time_s,cwnd_bytes\n") || !strings.Contains(out, "1.000000,42.000000") {
		t.Fatalf("csv=%q", out)
	}
}

func TestWriteMultiCSV(t *testing.T) {
	a := NewSeries("a", "u")
	b := NewSeries("b", "u")
	a.Add(0, 1)
	a.Add(secs(2), 2)
	b.Add(secs(1), 9)
	var sb strings.Builder
	if err := WriteMultiCSV(&sb, time.Second, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d: %q", len(lines), sb.String())
	}
	if lines[0] != "time_s,a,b" {
		t.Fatalf("header=%q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1.000000,1.000000,9.000000") {
		t.Fatalf("row=%q", lines[2])
	}
}

func TestASCIIChart(t *testing.T) {
	s := NewSeries("ramp", "u")
	for i := 0; i <= 100; i++ {
		s.Add(secs(float64(i)/10), float64(i))
	}
	out := s.ASCII(40, 8)
	if !strings.Contains(out, "ramp (u)") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
	// A ramp fills the bottom row more than the top row.
	top := strings.Count(lines[1], "#")
	bottom := strings.Count(lines[8], "#")
	if bottom <= top {
		t.Fatalf("ramp shape wrong: top=%d bottom=%d", top, bottom)
	}
}

func TestASCIIEmpty(t *testing.T) {
	if out := NewSeries("e", "u").ASCII(10, 4); out != "(no data)\n" {
		t.Fatalf("empty chart=%q", out)
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{1, 1, 1}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("equal shares: %v", got)
	}
	if got := JainFairness([]float64{1, 0, 0}); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("one hog: %v", got)
	}
	if JainFairness(nil) != 0 || JainFairness([]float64{0, 0}) != 0 {
		t.Fatal("degenerate cases")
	}
}
