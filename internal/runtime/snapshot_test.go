package runtime_test

import (
	"sync"
	"testing"

	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/runtime"
	"github.com/ccp-repro/ccp/internal/supervise"
)

func TestSnapshotIntoAggregatesShards(t *testing.T) {
	rt, err := runtime.New(runtime.Config{Shards: 4, Agent: agentCfg(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	reply := func(proto.Msg) error { return nil }
	const flows = 10
	for i := 1; i <= flows; i++ {
		rt.HandleMessage(&proto.Create{SID: uint32(i), MSS: 1448, InitCwnd: 14480}, reply)
	}
	rt.Drain()

	seen := map[uint32]bool{}
	var mu sync.Mutex
	n, err := rt.SnapshotInto(true, func(s *proto.Snapshot) error {
		mu.Lock()
		seen[s.SID] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != flows || len(seen) != flows {
		t.Fatalf("snapshot pass emitted %d (distinct %d), want %d", n, len(seen), flows)
	}
	// A second incremental pass over quiescent flows emits nothing.
	n, err = rt.SnapshotInto(false, func(*proto.Snapshot) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("incremental pass over idle flows emitted %d, want 0", n)
	}
}

// The HA snapshot pump runs against a live sharded runtime, so a snapshot
// pass must be safe while shards are shedding reports (Backoffs in flight
// on reply paths) and while the flow table churns — and the state it
// captures mid-storm must still promote into a working replacement agent,
// which is exactly what a shard restart does. The -race lane is the real
// assertion here; see `make test-race-robust`.
func TestRaceShardRestartDuringShedding(t *testing.T) {
	gate := make(chan struct{})
	rt, err := runtime.New(runtime.Config{
		Shards:        4,
		Agent:         agentCfg(gate),
		MailboxSize:   8,
		ShedWatermark: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	reply := func(proto.Msg) error { return nil }
	const flows = 16
	for i := 1; i <= flows; i++ {
		rt.HandleMessage(&proto.Create{SID: uint32(i), MSS: 1448, InitCwnd: 14480}, reply)
	}
	rt.Drain()

	stop := make(chan struct{})
	// Feeder: drip processing tokens so the shards crawl — mailboxes stay
	// near the watermark and shedding stays continuously active.
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		for {
			select {
			case gate <- struct{}{}:
			case <-stop:
				return
			}
		}
	}()
	// Producers: pour sequenced reports over every flow. Shedding evicts
	// older reports to admit these, sending proto.Backoff on our reply path
	// concurrently with everything else.
	var prodWG sync.WaitGroup
	for p := 0; p < 4; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for seq := uint32(1); seq <= 50; seq++ {
				for i := 1; i <= flows; i++ {
					rt.HandleMessage(&proto.Measurement{
						SID: uint32(i), Seq: seq + uint32(p)*50, Fields: []float64{1},
					}, reply)
				}
			}
		}(p)
	}
	// Replicator: snapshot passes race the producers and the shard loops;
	// the standby keeps whatever the last pass saw.
	sb := supervise.NewStandby()
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		full := true
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := rt.SnapshotInto(full, func(s *proto.Snapshot) error {
				sb.Apply(s)
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			full = false
		}
	}()

	prodWG.Wait()
	close(stop)
	feedWG.Wait()
	// Unwedge before waiting on the replicator: a snapshot pass already in
	// flight blocks on a shard agent's lock, which the shard only drops once
	// its gated OnMeasurement returns.
	close(gate)
	snapWG.Wait()
	rt.Drain()

	// One final quiescent pass so the standby holds every live flow, then
	// "restart the shards": promote the standby into a fresh agent.
	if _, err := rt.SnapshotInto(true, func(s *proto.Snapshot) error {
		sb.Apply(s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rt.Close()

	st := rt.Stats()
	if st.ReportsShed == 0 || st.BackoffsSent == 0 {
		t.Fatalf("the race never exercised shedding: %+v", st)
	}
	promoted, err := sb.Promote(agentCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := promoted.FlowCount(); got != flows {
		t.Fatalf("promoted agent has %d flows, want %d", got, flows)
	}
	if got := promoted.Stats().Restores; got != flows {
		t.Fatalf("restores = %d, want %d", got, flows)
	}
}
