package runtime_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/runtime"
)

// echoAlg acknowledges every report with a SetCwnd derived from the report,
// so tests can observe per-flow processing order in the reply stream.
type echoAlg struct {
	gate chan struct{} // when non-nil, OnMeasurement blocks on it
}

func (a *echoAlg) Name() string      { return "echo" }
func (a *echoAlg) Init(f *core.Flow) { _ = f.SetCwnd(f.Info.InitCwnd) }
func (a *echoAlg) OnMeasurement(f *core.Flow, m core.Measurement) {
	if a.gate != nil {
		<-a.gate
	}
	_ = f.SetCwnd(int(m.Seq) * 100)
}
func (a *echoAlg) OnUrgent(f *core.Flow, u core.UrgentEvent) { _ = f.SetCwnd(1) }

func testRegistry(gate chan struct{}) *core.Registry {
	reg := core.NewRegistry()
	reg.Register("echo", func() core.Alg { return &echoAlg{gate: gate} })
	return reg
}

func agentCfg(gate chan struct{}) core.AgentConfig {
	return core.AgentConfig{Registry: testRegistry(gate), DefaultAlg: "echo"}
}

// script builds a deterministic mixed message sequence over n flows.
func script(n int) []proto.Msg {
	var msgs []proto.Msg
	for i := 1; i <= n; i++ {
		msgs = append(msgs, &proto.Create{SID: uint32(i), MSS: 1448, InitCwnd: 14480})
	}
	for seq := uint32(1); seq <= 3; seq++ {
		var batch []proto.Msg
		for i := 1; i <= n; i++ {
			batch = append(batch, &proto.Measurement{SID: uint32(i), Seq: seq, Fields: []float64{float64(seq)}})
		}
		msgs = append(msgs, &proto.Batch{Msgs: batch})
	}
	for i := 1; i <= n; i++ {
		msgs = append(msgs, &proto.Urgent{SID: uint32(i), Seq: 1, Kind: proto.UrgentDupAck, Value: 1448})
	}
	for i := 1; i <= n; i++ {
		msgs = append(msgs, &proto.Close{SID: uint32(i)})
	}
	return msgs
}

// replies runs every message through h, collecting marshalled replies.
func replies(t *testing.T, h runtime.Handler, msgs []proto.Msg) [][]byte {
	t.Helper()
	var mu sync.Mutex
	var out [][]byte
	reply := func(m proto.Msg) error {
		data, err := proto.Marshal(m)
		if err != nil {
			return err
		}
		mu.Lock()
		out = append(out, data)
		mu.Unlock()
		return nil
	}
	for _, m := range msgs {
		h.HandleMessage(m, reply)
	}
	return out
}

func TestInlineModeBitIdenticalToAgent(t *testing.T) {
	msgs := script(8)
	direct, err := core.NewAgent(agentCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New(runtime.Config{Shards: 1, Agent: agentCfg(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	want := replies(t, direct, msgs)
	got := replies(t, rt, msgs)
	if len(want) != len(got) {
		t.Fatalf("reply counts diverged: agent=%d runtime=%d", len(want), len(got))
	}
	for i := range want {
		if string(want[i]) != string(got[i]) {
			t.Fatalf("reply %d diverged:\nagent   %x\nruntime %x", i, want[i], got[i])
		}
	}
	if da, ra := direct.Stats(), rt.Stats().Agent; da != ra {
		t.Fatalf("stats diverged:\nagent   %+v\nruntime %+v", da, ra)
	}
}

func TestShardedPartitionPreservesPerFlowOrder(t *testing.T) {
	const flows, reports = 32, 50
	rt, err := runtime.New(runtime.Config{Shards: 4, Agent: agentCfg(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var mu sync.Mutex
	lastCwnd := make(map[uint32]int64) // per-flow last observed decision
	outOfOrder := 0
	reply := func(m proto.Msg) error {
		sc, ok := m.(*proto.SetCwnd)
		if !ok {
			return nil
		}
		mu.Lock()
		if int64(sc.Bytes) < lastCwnd[sc.SID] {
			outOfOrder++
		}
		lastCwnd[sc.SID] = int64(sc.Bytes)
		mu.Unlock()
		return nil
	}
	for i := 1; i <= flows; i++ {
		rt.HandleMessage(&proto.Create{SID: uint32(i), MSS: 1448, InitCwnd: 1}, reply)
	}
	for seq := uint32(1); seq <= reports; seq++ {
		for i := 1; i <= flows; i++ {
			rt.HandleMessage(&proto.Measurement{SID: uint32(i), Seq: seq, Fields: []float64{1}}, reply)
		}
	}
	rt.Drain()
	st := rt.Stats()
	if st.Agent.FlowsCreated != flows || st.Agent.Measurements != flows*reports {
		t.Fatalf("stats=%+v", st.Agent)
	}
	if rt.FlowCount() != flows {
		t.Fatalf("flow count=%d", rt.FlowCount())
	}
	if outOfOrder != 0 {
		t.Fatalf("%d per-flow decisions observed out of order", outOfOrder)
	}
	if st.Dropped != 0 || st.ShutdownDropped != 0 {
		t.Fatalf("blocking policy dropped messages: %+v", st)
	}
}

func TestMixedBatchSplitsAcrossShards(t *testing.T) {
	rt, err := runtime.New(runtime.Config{Shards: 4, Agent: agentCfg(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	reply := func(proto.Msg) error { return nil }
	for i := 1; i <= 8; i++ {
		rt.HandleMessage(&proto.Create{SID: uint32(i)}, reply)
	}
	rt.Drain()
	// One frame spanning all shards, one confined to a single shard.
	var mixed, uniform []proto.Msg
	for i := 1; i <= 8; i++ {
		mixed = append(mixed, &proto.Measurement{SID: uint32(i), Seq: 1, Fields: []float64{1}})
	}
	for seq := uint32(2); seq <= 4; seq++ {
		uniform = append(uniform, &proto.Measurement{SID: 4, Seq: seq, Fields: []float64{1}})
	}
	rt.HandleMessage(&proto.Batch{Msgs: mixed}, reply)
	rt.HandleMessage(&proto.Batch{Msgs: uniform}, reply)
	rt.Drain()
	st := rt.Stats()
	if st.BatchesSplit != 1 {
		t.Fatalf("splits=%d, want 1 (uniform frame must pass intact)", st.BatchesSplit)
	}
	if st.Agent.Measurements != 8+3 {
		t.Fatalf("measurements=%d", st.Agent.Measurements)
	}
	if st.Agent.UnknownFlowMsg != 0 {
		t.Fatalf("misrouted messages: %+v", st.Agent)
	}
}

func TestDropPolicyUnderOverload(t *testing.T) {
	gate := make(chan struct{})
	rt, err := runtime.New(runtime.Config{
		Shards:      2,
		Agent:       agentCfg(gate),
		MailboxSize: 2,
		Overflow:    runtime.Drop,
	})
	if err != nil {
		t.Fatal(err)
	}
	reply := func(proto.Msg) error { return nil }
	// Init also blocks on the gate? No: Init doesn't consult the gate. Fill
	// shard 0 (SIDs 2,4,...) while its agent is wedged in OnMeasurement.
	rt.HandleMessage(&proto.Create{SID: 2}, reply)
	rt.Drain()
	for seq := uint32(1); seq <= 20; seq++ {
		rt.HandleMessage(&proto.Measurement{SID: 2, Seq: seq, Fields: []float64{1}}, reply)
	}
	st := rt.Stats()
	if st.Dropped == 0 {
		t.Fatalf("no drops despite wedged shard: %+v", st)
	}
	close(gate)
	rt.Close()
	final := rt.Stats()
	if final.Dropped+int64(final.Agent.Measurements) != 20 {
		t.Fatalf("dropped=%d processed=%d, want 20 total", final.Dropped, final.Agent.Measurements)
	}
}

func TestCloseDrainsQueuedWork(t *testing.T) {
	rt, err := runtime.New(runtime.Config{Shards: 3, Agent: agentCfg(nil)})
	if err != nil {
		t.Fatal(err)
	}
	reply := func(proto.Msg) error { return nil }
	const flows, reports = 9, 100
	for i := 1; i <= flows; i++ {
		rt.HandleMessage(&proto.Create{SID: uint32(i)}, reply)
	}
	for seq := uint32(1); seq <= reports; seq++ {
		for i := 1; i <= flows; i++ {
			rt.HandleMessage(&proto.Measurement{SID: uint32(i), Seq: seq, Fields: []float64{1}}, reply)
		}
	}
	rt.Close() // must drain everything already accepted
	st := rt.Stats()
	if got := st.Agent.Measurements + int(st.ShutdownDropped); got != flows*reports {
		t.Fatalf("processed+shutdownDropped=%d, want %d (stats=%+v)", got, flows*reports, st)
	}
	if st.Dropped != 0 {
		t.Fatalf("blocking policy dropped: %+v", st)
	}
}

func TestConcurrentDispatchManyGoroutines(t *testing.T) {
	// The -race run in make check leans on this test: many producers, four
	// shards, mixed singles and batches.
	rt, err := runtime.New(runtime.Config{Shards: 4, Agent: agentCfg(nil)})
	if err != nil {
		t.Fatal(err)
	}
	reply := func(proto.Msg) error { return nil }
	const producers, flowsPer, reports = 8, 4, 50
	for p := 0; p < producers; p++ {
		for f := 0; f < flowsPer; f++ {
			rt.HandleMessage(&proto.Create{SID: uint32(p*flowsPer + f + 1)}, reply)
		}
	}
	rt.Drain()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := uint32(p * flowsPer)
			for seq := uint32(1); seq <= reports; seq++ {
				var batch []proto.Msg
				for f := 0; f < flowsPer; f++ {
					batch = append(batch, &proto.Measurement{SID: base + uint32(f) + 1, Seq: seq, Fields: []float64{1}})
				}
				rt.HandleMessage(&proto.Batch{Msgs: batch}, reply)
			}
		}(p)
	}
	wg.Wait()
	rt.Close()
	st := rt.Stats()
	if st.Agent.Measurements != producers*flowsPer*reports {
		t.Fatalf("measurements=%d, want %d (stats=%+v)", st.Agent.Measurements, producers*flowsPer*reports, st)
	}
	if st.Agent.StaleReports != 0 || st.Agent.UnknownFlowMsg != 0 {
		t.Fatalf("routing errors: %+v", st.Agent)
	}
}

func TestShedUnderOverloadSendsBackoff(t *testing.T) {
	gate := make(chan struct{})
	rt, err := runtime.New(runtime.Config{
		Shards:        2,
		Agent:         agentCfg(gate),
		MailboxSize:   4,
		ShedWatermark: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var backoffs []*proto.Backoff
	reply := func(m proto.Msg) error {
		if b, ok := m.(*proto.Backoff); ok {
			mu.Lock()
			backoffs = append(backoffs, b)
			mu.Unlock()
		}
		return nil
	}
	rt.HandleMessage(&proto.Create{SID: 2}, reply)
	rt.Drain()
	// Wedge shard 0 (SID 2) in OnMeasurement and pour reports in. Shedding
	// must keep making room, so the blocking overflow policy never engages
	// and the producer never stalls.
	const reports = 20
	for seq := uint32(1); seq <= reports; seq++ {
		rt.HandleMessage(&proto.Measurement{SID: 2, Seq: seq, Fields: []float64{1}}, reply)
	}
	st := rt.Stats()
	if st.ReportsShed == 0 {
		t.Fatalf("no reports shed despite wedged shard: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("shedding path dropped outright: %+v", st)
	}
	close(gate)
	rt.Close()
	final := rt.Stats()
	// Conservation: every report was either processed or shed, none lost.
	if got := int64(final.Agent.Measurements) + final.ReportsShed; got != reports {
		t.Fatalf("processed+shed=%d, want %d (stats=%+v)", got, reports, final)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(len(backoffs)) != final.BackoffsSent {
		t.Fatalf("captured %d backoffs, stats say %d", len(backoffs), final.BackoffsSent)
	}
	if len(backoffs) == 0 {
		t.Fatal("no Backoff degradation signal sent to the shed flow")
	}
	for _, b := range backoffs {
		if b.SID != 2 || b.Factor != 2 {
			t.Fatalf("backoff=%+v, want SID 2 factor 2 (default)", b)
		}
	}
}

func TestShedNeverTouchesControlMessages(t *testing.T) {
	gate := make(chan struct{})
	rt, err := runtime.New(runtime.Config{
		Shards:        2,
		Agent:         agentCfg(gate),
		MailboxSize:   4,
		ShedWatermark: 0.25, // watermark of 1: maximum shedding pressure
		ShedBackoff:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reply := func(proto.Msg) error { return nil }
	rt.HandleMessage(&proto.Create{SID: 2}, reply)
	rt.Drain()
	// Interleave reports with urgents and a second flow's Create while the
	// shard is wedged; only reports may be shed.
	for seq := uint32(1); seq <= 6; seq++ {
		rt.HandleMessage(&proto.Measurement{SID: 2, Seq: seq, Fields: []float64{1}}, reply)
	}
	rt.HandleMessage(&proto.Urgent{SID: 2, Seq: 1, Kind: proto.UrgentDupAck, Value: 1448}, reply)
	rt.HandleMessage(&proto.Create{SID: 4}, reply)
	rt.HandleMessage(&proto.Close{SID: 4}, reply)
	close(gate)
	rt.Close()
	st := rt.Stats()
	if st.Agent.FlowsCreated != 2 || st.Agent.FlowsClosed != 1 || st.Agent.Urgents != 1 {
		t.Fatalf("control-plane message lost under shedding: %+v", st.Agent)
	}
	if st.ReportsShed == 0 {
		t.Fatalf("expected report shedding at watermark 1: %+v", st)
	}
}

func TestInlineModeUnaffectedByShedConfig(t *testing.T) {
	// Inline mode (shards <= 1) has no queue: a shed config must change
	// nothing — replies stay bit-identical to a bare agent and the shed
	// counters never move.
	msgs := script(8)
	direct, err := core.NewAgent(agentCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New(runtime.Config{
		Shards:        1,
		Agent:         agentCfg(nil),
		ShedWatermark: 0.5,
		ShedBackoff:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	want := replies(t, direct, msgs)
	got := replies(t, rt, msgs)
	if len(want) != len(got) {
		t.Fatalf("reply counts diverged: agent=%d runtime=%d", len(want), len(got))
	}
	for i := range want {
		if string(want[i]) != string(got[i]) {
			t.Fatalf("reply %d diverged under shed config", i)
		}
	}
	st := rt.Stats()
	if st.ReportsShed != 0 || st.BackoffsSent != 0 {
		t.Fatalf("inline mode shed something: %+v", st)
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := runtime.New(runtime.Config{Shards: -1, Agent: agentCfg(nil)}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := runtime.New(runtime.Config{Shards: 2}); err == nil {
		t.Fatal("missing registry accepted")
	}
	if _, err := runtime.New(runtime.Config{Shards: 2, Agent: agentCfg(nil), ShedWatermark: -0.1}); err == nil {
		t.Fatal("negative shed watermark accepted")
	}
	if _, err := runtime.New(runtime.Config{Shards: 2, Agent: agentCfg(nil), ShedWatermark: 1.5}); err == nil {
		t.Fatal("shed watermark above 1 accepted")
	}
}

func ExampleRuntime() {
	rt, _ := runtime.New(runtime.Config{Shards: 2, Agent: agentCfg(nil)})
	defer rt.Close()
	rt.HandleMessage(&proto.Create{SID: 7}, func(m proto.Msg) error { return nil })
	rt.Drain()
	fmt.Println(rt.FlowCount())
	// Output: 1
}
