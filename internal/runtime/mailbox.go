package runtime

import (
	"sync"

	"github.com/ccp-repro/ccp/internal/proto"
)

// mailbox is a shard's bounded queue: a mutex-guarded ring buffer rather
// than a channel, because overload-aware degradation needs an operation a
// channel cannot express — evicting the *oldest sheddable* entry to admit a
// new one. Measurement traffic is time-series data: when the agent falls
// behind, the newest report is worth more than the oldest, so pressure
// sheds from the front. Control-plane traffic (Create, Close, Urgent,
// Install acks via reply, drain sentinels) is never shed — losing it would
// corrupt flow state rather than merely coarsen it.
type mailbox struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []item
	head     int
	n        int
	closed   bool
	// shedMark is the occupancy at or above which a push may evict the
	// oldest sheddable entry instead of blocking/dropping; 0 disables
	// shedding (pure channel semantics).
	shedMark int
}

func newMailbox(size, shedMark int) *mailbox {
	mb := &mailbox{buf: make([]item, size), shedMark: shedMark}
	mb.notFull = sync.NewCond(&mb.mu)
	mb.notEmpty = sync.NewCond(&mb.mu)
	return mb
}

// push enqueues it. When occupancy has reached the shed watermark and an
// older sheddable entry exists, that entry is evicted to make room and
// returned. With no room and nothing sheddable, push blocks for space when
// block is true, otherwise reports dropped. ok is false only when the
// mailbox is closed.
func (mb *mailbox) push(it item, block bool) (shed item, didShed, dropped, ok bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.closed {
			return item{}, false, false, false
		}
		if mb.shedMark > 0 && mb.n >= mb.shedMark {
			if s, evicted := mb.shedOldestLocked(); evicted {
				mb.insertLocked(it)
				return s, true, false, true
			}
		}
		if mb.n < len(mb.buf) {
			mb.insertLocked(it)
			return item{}, false, false, true
		}
		if !block {
			return item{}, false, true, true
		}
		mb.notFull.Wait()
	}
}

// pop dequeues the oldest entry, blocking while the mailbox is open and
// empty. ok is false once the mailbox is closed and fully drained.
func (mb *mailbox) pop() (it item, ok bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.n == 0 {
		if mb.closed {
			return item{}, false
		}
		mb.notEmpty.Wait()
	}
	it = mb.buf[mb.head]
	mb.buf[mb.head] = item{}
	mb.head = (mb.head + 1) % len(mb.buf)
	mb.n--
	mb.notFull.Signal()
	return it, true
}

// close refuses further pushes; queued entries remain poppable so the shard
// drains them before exiting (matching the channel runtime's shutdown
// semantics).
func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.notFull.Broadcast()
	mb.notEmpty.Broadcast()
}

func (mb *mailbox) len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.n
}

func (mb *mailbox) insertLocked(it item) {
	mb.buf[(mb.head+mb.n)%len(mb.buf)] = it
	mb.n++
	mb.notEmpty.Signal()
}

// shedOldestLocked evicts the oldest sheddable entry, compacting the ring.
func (mb *mailbox) shedOldestLocked() (item, bool) {
	for off := 0; off < mb.n; off++ {
		i := (mb.head + off) % len(mb.buf)
		if !sheddable(mb.buf[i]) {
			continue
		}
		s := mb.buf[i]
		// Shift everything after the hole forward one slot.
		for j := off; j < mb.n-1; j++ {
			from := (mb.head + j + 1) % len(mb.buf)
			to := (mb.head + j) % len(mb.buf)
			mb.buf[to] = mb.buf[from]
		}
		mb.buf[(mb.head+mb.n-1)%len(mb.buf)] = item{}
		mb.n--
		mb.notFull.Signal()
		return s, true
	}
	return item{}, false
}

// sheddable reports whether an entry carries only measurement reports.
// Urgents, Create/Close, drain sentinels, and mixed batches are load-bearing
// control state and never shed.
func sheddable(it item) bool {
	if it.done != nil {
		return false
	}
	switch m := it.m.(type) {
	case *proto.Measurement, *proto.Vector:
		return true
	case *proto.Batch:
		for _, sub := range m.Msgs {
			switch sub.(type) {
			case *proto.Measurement, *proto.Vector:
			default:
				return false
			}
		}
		return len(m.Msgs) > 0
	}
	return false
}

// reportCount is how many reports an entry carries, for the shed counter.
func reportCount(m proto.Msg) int {
	if b, ok := m.(*proto.Batch); ok {
		return len(b.Msgs)
	}
	return 1
}

// backoffSID picks the flow a shed entry's Backoff should target.
func backoffSID(m proto.Msg) uint32 {
	if b, ok := m.(*proto.Batch); ok && len(b.Msgs) > 0 {
		return b.Msgs[0].FlowSID()
	}
	return m.FlowSID()
}
