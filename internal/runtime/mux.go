package runtime

import (
	"fmt"
	stdruntime "runtime"
	"sync"

	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/proto"
)

// ServeSet services every connection in set from the calling goroutine: it
// round-robins TryRecvFrame over the members (a bounded drain quota per
// member per sweep, so one firehose connection cannot starve the rest) and
// parks on the set's shared doorbell only after a full sweep finds nothing.
// This is the agent-side answer to goroutine-per-connection: with
// shared-memory rings, 100k datapath connections are serviced by a handful
// of serve loops, each a single goroutine polling readiness instead of
// 100k blocked readers.
//
// Every member must implement ipc.TryRecver. Decode errors skip the frame,
// like ServeTransport; a member whose receive fails (peer closed, ring
// corrupted) is dropped from the rotation. ServeSet returns nil once every
// member is dropped, or WaitAny's error if the set itself fails first.
// Replies are serialized per-connection; shard goroutines may invoke them
// concurrently with the loop.
//
// Run exactly one ServeSet per set: the doorbell has one waiter by contract
// (see shmring.Mux).
func (r *Runtime) ServeSet(set ipc.RecvSet) error {
	type conn struct {
		t      ipc.TryRecver
		reply  func(proto.Msg) error
		closed bool
	}
	ts := set.Transports()
	conns := make([]*conn, len(ts))
	for i, t := range ts {
		tr, ok := t.(ipc.TryRecver)
		if !ok {
			return fmt.Errorf("runtime: ServeSet member %d (%T) is not pollable", i, t)
		}
		conns[i] = &conn{t: tr, reply: lockedReply(t)}
	}
	// drainQuota bounds how many frames one connection may deliver per sweep.
	// Big enough to amortize the sweep over a batch, small enough that a
	// saturated ring cannot monopolize the loop.
	const drainQuota = 64
	var dec proto.Decoder
	live := len(conns)
	idleSweeps := 0
	for live > 0 {
		progress := false
		for _, c := range conns {
			if c.closed {
				continue
			}
			for q := 0; q < drainQuota; q++ {
				f, err := c.t.TryRecvFrame()
				if err != nil {
					c.closed = true
					live--
					break
				}
				if f == nil {
					break
				}
				progress = true
				m, derr := dec.Unmarshal(f.B)
				if derr == nil {
					// Frames and decode scratch are reclaimed right after
					// dispatch; HandleMessage clones when it must queue.
					r.HandleMessage(m, c.reply)
				}
				f.Release()
			}
		}
		if progress {
			idleSweeps = 0
			continue
		}
		// A few yielding sweeps before parking: handoffs in flight (a
		// producer between publish and ding) land without a syscall.
		idleSweeps++
		if idleSweeps < 8 {
			stdruntime.Gosched()
			continue
		}
		idleSweeps = 0
		if err := set.WaitAny(); err != nil {
			if live > 0 {
				return err
			}
		}
	}
	return nil
}

// lockedReply serializes replies onto one transport, same contract as
// ServeTransport's inline reply func.
func lockedReply(t ipc.Transport) func(proto.Msg) error {
	var mu sync.Mutex
	return func(m proto.Msg) error {
		f, err := proto.MarshalFrame(m)
		if err != nil {
			return err
		}
		mu.Lock()
		err = t.Send(f.B)
		mu.Unlock()
		f.Release()
		return err
	}
}
