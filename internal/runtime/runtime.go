// Package runtime scales the user-space agent across cores: a sharded
// executor that partitions flows over N independent core.Agent instances by
// flow ID, so report processing for different flows proceeds in parallel
// with no cross-shard locking on the hot path (§4's "congestion control
// plane as a scalable service" direction).
//
// Sharding is by affinity — shard(SID) = SID mod N — so every message for a
// flow lands on the same shard and per-flow ordering is preserved without
// any global coordination. Each shard owns its agent (flow map, algorithm
// instances) outright; the only shared state is the dispatch table, which is
// immutable after New.
//
// With Shards <= 1 the runtime degenerates to a synchronous pass-through
// around a single agent: no goroutines, no mailboxes, bit-identical to
// calling core.Agent directly. Deterministic simulations use that mode; the
// goroutine-per-shard mode serves real transports and the flow-scale
// benchmark.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/metrics"
	"github.com/ccp-repro/ccp/internal/proto"
)

// Handler is anything that consumes datapath→agent messages: a bare
// core.Agent, or this package's sharded Runtime. Bridges and transports
// dispatch into a Handler without caring which.
//
// Ownership: m is borrowed for the duration of the call — callers decode
// into reusable scratch and reclaim it after HandleMessage returns. An
// implementation that queues m must take its own copy (proto.Clone); the
// sharded Runtime does exactly that.
type Handler interface {
	HandleMessage(m proto.Msg, reply func(proto.Msg) error)
}

// OverflowPolicy selects what a full shard mailbox does to new messages.
type OverflowPolicy int

const (
	// Block applies backpressure: the dispatching goroutine waits for
	// mailbox space (or shutdown). This is the default — congestion report
	// loss degrades control quality silently, so the datapath channel should
	// slow down instead.
	Block OverflowPolicy = iota
	// Drop discards the message immediately and counts it. Use when the
	// dispatcher must never stall (e.g. it is also serving other shards).
	Drop
)

// Config configures a Runtime.
type Config struct {
	// Shards is the number of parallel agent shards. 0 or 1 selects the
	// inline synchronous mode.
	Shards int
	// Agent configures every shard's agent (they share the registry, policy,
	// and metrics; each shard instantiates its own flow table).
	Agent core.AgentConfig
	// MailboxSize bounds each shard's queue (default 1024).
	MailboxSize int
	// Overflow selects the full-mailbox policy (default Block).
	Overflow OverflowPolicy
	// ShedWatermark, when in (0, 1], turns on overload shedding: once a
	// shard's queue occupancy reaches watermark×MailboxSize, enqueues evict
	// the oldest queued *report* (Measurement, Vector, or all-report Batch)
	// to make room, and the evicted flow is sent a proto.Backoff asking its
	// datapath to stretch its report interval. Urgents, Create/Close, and
	// mixed batches are never shed. 0 disables (the pre-shedding
	// behaviour). Inline mode (Shards <= 1) has no queue and is unaffected.
	ShedWatermark float64
	// ShedBackoff is the report-interval stretch factor carried by the
	// Backoff sent to a shed flow (default 2).
	ShedBackoff float64
	// Metrics optionally receives runtime counters. Nil is valid; this is
	// normally the same registry as Agent.Metrics.
	Metrics *metrics.Registry
}

// Stats counts the runtime's dispatch activity. Agent aggregates the
// per-shard agent counters.
type Stats struct {
	// Dispatched counts messages accepted for processing (inline calls or
	// mailbox enqueues; a batch counts once per enqueued frame).
	Dispatched int64
	// Dropped counts messages discarded by the Drop overflow policy.
	Dropped int64
	// ShutdownDropped counts messages that arrived during or after Close.
	ShutdownDropped int64
	// BatchesSplit counts batch frames that spanned shards and were split
	// into per-shard sub-batches.
	BatchesSplit int64
	// ReportsShed counts reports evicted by overload shedding (a shed batch
	// counts each report it carried); BackoffsSent counts the degradation
	// signals sent to the affected flows.
	ReportsShed  int64
	BackoffsSent int64
	// Agent is the sum of every shard's core.AgentStats.
	Agent core.AgentStats
}

type item struct {
	m     proto.Msg
	reply func(proto.Msg) error
	// done, when non-nil, marks a drain sentinel: the shard closes it instead
	// of dispatching.
	done chan struct{}
}

type shard struct {
	agent *core.Agent
	mail  *mailbox
}

// Runtime is the sharded agent executor. It implements Handler.
type Runtime struct {
	cfg    Config
	shards []*shard
	inline *core.Agent // non-nil iff Shards <= 1

	wg sync.WaitGroup

	closeOnce sync.Once

	dispatched      atomic.Int64
	dropped         atomic.Int64
	shutdownDropped atomic.Int64
	batchesSplit    atomic.Int64
	reportsShed     atomic.Int64
	backoffsSent    atomic.Int64

	mDispatched *metrics.Counter
	mDropped    *metrics.Counter
	mSplits     *metrics.Counter
	mShed       *metrics.Counter
	mBackoffs   *metrics.Counter
}

// New validates cfg and returns a runtime. Shard goroutines (if any) start
// immediately.
func New(cfg Config) (*Runtime, error) {
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("runtime: negative shard count %d", cfg.Shards)
	}
	if cfg.MailboxSize <= 0 {
		cfg.MailboxSize = 1024
	}
	if cfg.ShedWatermark < 0 || cfg.ShedWatermark > 1 {
		return nil, fmt.Errorf("runtime: shed watermark %v outside [0, 1]", cfg.ShedWatermark)
	}
	if cfg.ShedBackoff <= 1 {
		cfg.ShedBackoff = 2
	}
	r := &Runtime{
		cfg:         cfg,
		mDispatched: cfg.Metrics.Counter("runtime_dispatched_total"),
		mDropped:    cfg.Metrics.Counter("runtime_dropped_total"),
		mSplits:     cfg.Metrics.Counter("runtime_batches_split_total"),
		mShed:       cfg.Metrics.Counter("runtime_reports_shed_total"),
		mBackoffs:   cfg.Metrics.Counter("runtime_backoffs_sent_total"),
	}
	if cfg.Shards <= 1 {
		a, err := core.NewAgent(cfg.Agent)
		if err != nil {
			return nil, err
		}
		r.inline = a
		return r, nil
	}
	shedMark := 0
	if cfg.ShedWatermark > 0 {
		shedMark = int(cfg.ShedWatermark * float64(cfg.MailboxSize))
		if shedMark < 1 {
			shedMark = 1
		}
	}
	r.shards = make([]*shard, cfg.Shards)
	for i := range r.shards {
		a, err := core.NewAgent(cfg.Agent)
		if err != nil {
			return nil, err
		}
		sh := &shard{agent: a, mail: newMailbox(cfg.MailboxSize, shedMark)}
		r.shards[i] = sh
		r.wg.Add(1)
		go r.run(sh)
	}
	return r, nil
}

// run is one shard's loop: pop the mailbox until it closes and drains.
// Only this goroutine touches the shard's agent, so the agent's internal
// mutex never contends. The mailbox keeps queued entries poppable after
// close, so shutdown still drains in-flight work before the shard exits.
func (r *Runtime) run(sh *shard) {
	defer r.wg.Done()
	for {
		it, ok := sh.mail.pop()
		if !ok {
			return
		}
		if it.done != nil {
			close(it.done)
			continue
		}
		sh.agent.HandleMessage(it.m, it.reply)
	}
}

// Shards returns the number of parallel shards (1 in inline mode).
func (r *Runtime) Shards() int {
	if r.inline != nil {
		return 1
	}
	return len(r.shards)
}

func (r *Runtime) shardFor(sid uint32) *shard {
	return r.shards[int(sid)%len(r.shards)]
}

// HandleMessage implements Handler: it routes the message to its flow's
// shard. In inline mode it is a direct synchronous call. Batches whose
// messages span shards are split into per-shard sub-batches, preserving
// per-flow order (each flow's messages stay on one shard, in arrival order).
//
// In sharded mode the message outlives this call in a shard mailbox, while
// the Handler contract lets the caller reuse m as soon as we return — so the
// sharded path deep-copies m before enqueueing. Callers that already own the
// message (ServeTransport) dispatch through handleOwned and skip the copy.
func (r *Runtime) HandleMessage(m proto.Msg, reply func(proto.Msg) error) {
	if r.inline != nil {
		r.dispatched.Add(1)
		r.mDispatched.Inc()
		r.inline.HandleMessage(m, reply)
		return
	}
	r.handleOwned(proto.Clone(m), reply)
}

// handleOwned routes a message the runtime owns outright (no aliasing of
// caller scratch) to its shard.
func (r *Runtime) handleOwned(m proto.Msg, reply func(proto.Msg) error) {
	if b, ok := m.(*proto.Batch); ok {
		r.routeBatch(b, reply)
		return
	}
	r.enqueue(r.shardFor(m.FlowSID()), m, reply)
}

// routeBatch regroups a batch frame by destination shard. A frame whose
// messages all share one shard is forwarded intact (the agent unpacks it
// under a single lock acquisition); a mixed frame is split.
func (r *Runtime) routeBatch(b *proto.Batch, reply func(proto.Msg) error) {
	if len(b.Msgs) == 0 {
		return
	}
	first := r.shardFor(b.Msgs[0].FlowSID())
	uniform := true
	for _, sub := range b.Msgs[1:] {
		if r.shardFor(sub.FlowSID()) != first {
			uniform = false
			break
		}
	}
	if uniform {
		r.enqueue(first, b, reply)
		return
	}
	r.batchesSplit.Add(1)
	r.mSplits.Inc()
	groups := make(map[*shard][]proto.Msg, len(r.shards))
	order := make([]*shard, 0, len(r.shards))
	for _, sub := range b.Msgs {
		sh := r.shardFor(sub.FlowSID())
		if _, seen := groups[sh]; !seen {
			order = append(order, sh)
		}
		groups[sh] = append(groups[sh], sub)
	}
	for _, sh := range order {
		g := groups[sh]
		if len(g) == 1 {
			r.enqueue(sh, g[0], reply)
		} else {
			r.enqueue(sh, &proto.Batch{Msgs: g}, reply)
		}
	}
}

func (r *Runtime) enqueue(sh *shard, m proto.Msg, reply func(proto.Msg) error) {
	it := item{m: m, reply: reply}
	shed, didShed, dropped, ok := sh.mail.push(it, r.cfg.Overflow == Block)
	switch {
	case !ok:
		r.shutdownDropped.Add(1)
		return
	case dropped:
		r.dropped.Add(1)
		r.mDropped.Inc()
		return
	}
	r.dispatched.Add(1)
	r.mDispatched.Inc()
	if didShed {
		r.onShed(shed)
	}
}

// onShed accounts for an evicted report and asks the shed flow's datapath
// to back off its report interval, so measurement frequency degrades at the
// source before correctness does. The Backoff rides the shed entry's reply
// path (the channel back to the datapath that sent the report); a send
// failure is ignored — the signal is advisory and the next shed retries.
func (r *Runtime) onShed(shed item) {
	r.reportsShed.Add(int64(reportCount(shed.m)))
	r.mShed.Inc()
	if shed.reply == nil {
		return
	}
	if err := shed.reply(&proto.Backoff{SID: backoffSID(shed.m), Factor: r.cfg.ShedBackoff}); err == nil {
		r.backoffsSent.Add(1)
		r.mBackoffs.Inc()
	}
}

// Close shuts the runtime down: new messages are refused, queued messages
// are drained, and all shard goroutines exit before Close returns. Inline
// mode has nothing to stop. Safe to call more than once.
func (r *Runtime) Close() {
	r.closeOnce.Do(func() {
		for _, sh := range r.shards {
			sh.mail.close()
		}
	})
	r.wg.Wait()
}

// Drain blocks until every message dispatched before the call has been
// handed to its shard's agent, by pushing a sentinel through each mailbox.
// It does not stop new messages from arriving; callers quiesce their senders
// first (the benchmark does this between load steps).
func (r *Runtime) Drain() {
	if r.inline != nil {
		return
	}
	for _, sh := range r.shards {
		done := make(chan struct{})
		if _, _, _, ok := sh.mail.push(item{done: done}, true); !ok {
			return // closed: the shards are draining to exit anyway
		}
		// The sentinel is queued, so the shard is guaranteed to pop it even
		// if Close races in (close keeps queued entries poppable).
		<-done
	}
}

// Stats aggregates dispatch counters and every shard's agent counters.
func (r *Runtime) Stats() Stats {
	s := Stats{
		Dispatched:      r.dispatched.Load(),
		Dropped:         r.dropped.Load(),
		ShutdownDropped: r.shutdownDropped.Load(),
		BatchesSplit:    r.batchesSplit.Load(),
		ReportsShed:     r.reportsShed.Load(),
		BackoffsSent:    r.backoffsSent.Load(),
	}
	if r.inline != nil {
		s.Agent = r.inline.Stats()
		return s
	}
	for _, sh := range r.shards {
		addAgentStats(&s.Agent, sh.agent.Stats())
	}
	return s
}

// FlowCount sums live flows across shards.
func (r *Runtime) FlowCount() int {
	if r.inline != nil {
		return r.inline.FlowCount()
	}
	n := 0
	for _, sh := range r.shards {
		n += sh.agent.FlowCount()
	}
	return n
}

// ServeTransport reads wire messages from t until Recv fails, dispatching
// each through HandleMessage. Replies from all shards are serialized onto t
// with a mutex (the wire is one stream; Transport.Send is already safe, the
// mutex just keeps reply bursts from interleaving with each other
// mid-shutdown). Close the runtime separately; ServeTransport returning does
// not stop the shards.
func (r *Runtime) ServeTransport(t ipc.Transport) error {
	var sendMu sync.Mutex
	reply := func(m proto.Msg) error {
		f, err := proto.MarshalFrame(m)
		if err != nil {
			return err
		}
		sendMu.Lock()
		err = t.Send(f.B)
		sendMu.Unlock()
		f.Release()
		return err
	}
	if r.inline != nil {
		// Inline dispatch is synchronous, so frames and decode scratch can be
		// reclaimed between reads.
		var dec proto.Decoder
		for {
			f, err := ipc.RecvFrame(t)
			if err != nil {
				return err
			}
			m, err := dec.Unmarshal(f.B)
			if err != nil {
				f.Release()
				continue
			}
			r.HandleMessage(m, reply)
			f.Release()
		}
	}
	for {
		// Sharded mode: mailboxes retain the message past this iteration, so
		// take an owned copy off the wire and skip HandleMessage's Clone.
		data, err := t.Recv()
		if err != nil {
			return err
		}
		m, err := proto.Unmarshal(data)
		if err != nil {
			continue
		}
		r.handleOwned(m, reply)
	}
}

func addAgentStats(dst *core.AgentStats, s core.AgentStats) {
	dst.FlowsCreated += s.FlowsCreated
	dst.FlowsClosed += s.FlowsClosed
	dst.Measurements += s.Measurements
	dst.Vectors += s.Vectors
	dst.Urgents += s.Urgents
	dst.UnknownFlowMsg += s.UnknownFlowMsg
	dst.UnknownAlgReq += s.UnknownAlgReq
	dst.Errors += s.Errors
	dst.DupCreates += s.DupCreates
	dst.DupUrgents += s.DupUrgents
	dst.StaleReports += s.StaleReports
	dst.Batches += s.Batches
	dst.BatchedMsgs += s.BatchedMsgs
	dst.Restores += s.Restores
	dst.Heartbeats += s.Heartbeats
	dst.ResyncAdopts += s.ResyncAdopts
}

// SnapshotInto streams every shard's flow state through sink (see
// core.Agent.SnapshotInto for the contract: the snapshot is scratch, clone
// to retain; full=false emits only the incremental delta). Shards are
// visited in index order, and each shard emits its flows in ascending SID
// order, so the stream is deterministic given quiescent shards. It is safe
// against concurrent dispatch — each shard agent's own lock serializes the
// export against that shard's message processing, and a flow mutated
// mid-pass is simply picked up by the next incremental round.
func (r *Runtime) SnapshotInto(full bool, sink func(*proto.Snapshot) error) (int, error) {
	if r.inline != nil {
		return r.inline.SnapshotInto(full, sink)
	}
	total := 0
	for _, sh := range r.shards {
		n, err := sh.agent.SnapshotInto(full, sink)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
