package runtime_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/ipc/shmring"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/runtime"
)

// TestServeSetMultiplexesConnections drives several shared-memory datapath
// connections through one ServeSet goroutine: every connection's flows must
// be processed and every reply must come back on the connection that owns
// the flow (no cross-wiring), in both inline and sharded dispatch modes.
func TestServeSetMultiplexesConnections(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const conns, flows, reports = 4, 2, 5
			dir := t.TempDir()
			mux, err := shmring.NewMux(filepath.Join(dir, "mux.bell"))
			if err != nil {
				t.Fatal(err)
			}
			defer mux.Close()
			dp := make([]ipc.Transport, conns)
			for i := 0; i < conns; i++ {
				a, b, err := shmring.Pair(filepath.Join(dir, fmt.Sprintf("ring%d", i)),
					shmring.Options{}, shmring.Options{Bell: mux.Bell()})
				if err != nil {
					t.Fatal(err)
				}
				if err := mux.Adopt(b); err != nil {
					t.Fatal(err)
				}
				dp[i] = a
				defer a.Close()
				defer b.Close()
			}
			rt, err := runtime.New(runtime.Config{Shards: shards, Agent: agentCfg(nil)})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			served := make(chan error, 1)
			go func() { served <- rt.ServeSet(mux) }()

			// Each connection owns SIDs ci*100+1 ... ci*100+flows.
			for ci, d := range dp {
				for f := 1; f <= flows; f++ {
					sid := uint32(ci*100 + f)
					send(t, d, &proto.Create{SID: sid, MSS: 1448, InitCwnd: 14480})
					for seq := uint32(1); seq <= reports; seq++ {
						send(t, d, &proto.Measurement{SID: sid, Seq: seq, Fields: []float64{float64(seq)}})
					}
				}
			}
			// One SetCwnd per Create (echoAlg.Init) plus one per Measurement.
			const wantReplies = flows * (1 + reports)
			for ci, d := range dp {
				lo, hi := uint32(ci*100+1), uint32(ci*100+flows)
				for n := 0; n < wantReplies; n++ {
					m := recvMsg(t, d, ci, n)
					if sid := m.FlowSID(); sid < lo || sid > hi {
						t.Fatalf("conn %d received reply for SID %d (owns %d..%d): cross-wired reply",
							ci, sid, lo, hi)
					}
				}
			}
			// Closing the agent-side endpoints winds the loop down.
			for _, tr := range mux.Transports() {
				tr.Close()
			}
			select {
			case err := <-served:
				if err != nil && !errors.Is(err, ipc.ErrClosed) {
					t.Fatalf("ServeSet returned %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("ServeSet did not return after all endpoints closed")
			}
			if got := rt.Stats().Dispatched; got < int64(conns*flows*(1+reports)) {
				t.Fatalf("dispatched %d messages, want at least %d", got, conns*flows*(1+reports))
			}
		})
	}
}

// TestServeSetRejectsUnpollable pins the error contract for transports that
// cannot be polled (no TryRecvFrame).
func TestServeSetRejectsUnpollable(t *testing.T) {
	a, b := ipc.ChanPair(4)
	defer a.Close()
	defer b.Close()
	rt, err := runtime.New(runtime.Config{Shards: 1, Agent: agentCfg(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.ServeSet(staticSet{a}); err == nil {
		t.Fatal("ServeSet accepted a transport without TryRecvFrame")
	}
}

type staticSet []ipc.Transport

func (s staticSet) Transports() []ipc.Transport { return s }
func (s staticSet) WaitAny() error              { return nil }

func send(t *testing.T, tr ipc.Transport, m proto.Msg) {
	t.Helper()
	data, err := proto.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(data); err != nil {
		t.Fatal(err)
	}
}

func recvMsg(t *testing.T, tr ipc.Transport, ci, n int) proto.Msg {
	t.Helper()
	data, err := tr.Recv()
	if err != nil {
		t.Fatalf("conn %d reply %d: %v", ci, n, err)
	}
	m, err := proto.Unmarshal(data)
	if err != nil {
		t.Fatalf("conn %d reply %d: %v", ci, n, err)
	}
	return m
}
