package runtime

import (
	"testing"

	"github.com/ccp-repro/ccp/internal/proto"
)

func meas(sid, seq uint32) item {
	return item{m: &proto.Measurement{SID: sid, Seq: seq, Fields: []float64{1}}}
}

func mustPush(t *testing.T, mb *mailbox, it item) (item, bool) {
	t.Helper()
	shed, didShed, dropped, ok := mb.push(it, false)
	if !ok || dropped {
		t.Fatalf("push failed: dropped=%v ok=%v", dropped, ok)
	}
	return shed, didShed
}

func TestMailboxShedsOldestReportAtWatermark(t *testing.T) {
	mb := newMailbox(4, 2)
	mustPush(t, mb, meas(1, 1))
	mustPush(t, mb, item{m: &proto.Urgent{SID: 1, Seq: 1}})
	// Occupancy is at the watermark: this push must evict the oldest
	// sheddable entry (the seq-1 measurement), not the urgent in front of it.
	shed, didShed := mustPush(t, mb, meas(1, 2))
	if !didShed {
		t.Fatal("no shed at watermark occupancy")
	}
	if m, ok := shed.m.(*proto.Measurement); !ok || m.Seq != 1 {
		t.Fatalf("shed %T %+v, want the seq-1 measurement", shed.m, shed.m)
	}
	// Survivors pop in FIFO order: urgent first, then the new measurement.
	it, _ := mb.pop()
	if _, ok := it.m.(*proto.Urgent); !ok {
		t.Fatalf("first survivor is %T, want Urgent", it.m)
	}
	it, _ = mb.pop()
	if m, ok := it.m.(*proto.Measurement); !ok || m.Seq != 2 {
		t.Fatalf("second survivor is %T %+v, want seq-2 measurement", it.m, it.m)
	}
	if mb.len() != 0 {
		t.Fatalf("len=%d after draining", mb.len())
	}
}

func TestMailboxNeverShedsControl(t *testing.T) {
	mb := newMailbox(3, 1)
	mixed := &proto.Batch{Msgs: []proto.Msg{
		&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{1}},
		&proto.Close{SID: 1},
	}}
	mustPush(t, mb, item{m: &proto.Create{SID: 1}})
	mustPush(t, mb, item{m: &proto.Urgent{SID: 1, Seq: 1}})
	mustPush(t, mb, item{m: mixed})
	// Full of control-plane entries: a non-blocking push has nothing to
	// evict and must drop the newcomer, never a control entry.
	_, didShed, dropped, ok := mb.push(meas(1, 9), false)
	if didShed || !dropped || !ok {
		t.Fatalf("shed=%v dropped=%v ok=%v, want drop with no eviction", didShed, dropped, ok)
	}
	for _, want := range []string{"*proto.Create", "*proto.Urgent", "*proto.Batch"} {
		it, popOK := mb.pop()
		if !popOK {
			t.Fatal("queue lost a control entry")
		}
		if got := typeName(it.m); got != want {
			t.Fatalf("popped %s, want %s", got, want)
		}
	}
}

func typeName(m proto.Msg) string {
	switch m.(type) {
	case *proto.Create:
		return "*proto.Create"
	case *proto.Urgent:
		return "*proto.Urgent"
	case *proto.Batch:
		return "*proto.Batch"
	}
	return "other"
}

func TestSheddableClassification(t *testing.T) {
	report := &proto.Measurement{SID: 1, Seq: 1}
	cases := []struct {
		name string
		it   item
		want bool
	}{
		{"measurement", item{m: report}, true},
		{"vector", item{m: &proto.Vector{SID: 1, Seq: 1}}, true},
		{"report batch", item{m: &proto.Batch{Msgs: []proto.Msg{report, &proto.Vector{SID: 2, Seq: 1}}}}, true},
		{"empty batch", item{m: &proto.Batch{}}, false},
		{"mixed batch", item{m: &proto.Batch{Msgs: []proto.Msg{report, &proto.Create{SID: 2}}}}, false},
		{"create", item{m: &proto.Create{SID: 1}}, false},
		{"close", item{m: &proto.Close{SID: 1}}, false},
		{"urgent", item{m: &proto.Urgent{SID: 1, Seq: 1}}, false},
		{"drain sentinel", item{done: make(chan struct{})}, false},
	}
	for _, c := range cases {
		if got := sheddable(c.it); got != c.want {
			t.Errorf("sheddable(%s)=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestMailboxShedThenRecover(t *testing.T) {
	mb := newMailbox(4, 3)
	for seq := uint32(1); seq <= 3; seq++ {
		mustPush(t, mb, meas(1, seq))
	}
	if _, didShed := mustPush(t, mb, meas(1, 4)); !didShed {
		t.Fatal("no shed at watermark")
	}
	// Drain fully: pressure is gone, so subsequent pushes below the
	// watermark must not shed and must preserve FIFO order.
	for mb.len() > 0 {
		mb.pop()
	}
	for seq := uint32(10); seq < 12; seq++ {
		if _, didShed := mustPush(t, mb, meas(1, seq)); didShed {
			t.Fatalf("shed below watermark after recovery (seq %d)", seq)
		}
	}
	for seq := uint32(10); seq < 12; seq++ {
		it, _ := mb.pop()
		if m := it.m.(*proto.Measurement); m.Seq != seq {
			t.Fatalf("popped seq %d, want %d (order broken after recovery)", m.Seq, seq)
		}
	}
}

func TestMailboxCloseSemantics(t *testing.T) {
	mb := newMailbox(4, 0)
	mustPush(t, mb, meas(1, 1))
	mb.close()
	if _, _, _, ok := mb.push(meas(1, 2), true); ok {
		t.Fatal("push accepted after close")
	}
	// Entries queued before close stay poppable (shutdown drains them).
	if it, ok := mb.pop(); !ok || it.m.(*proto.Measurement).Seq != 1 {
		t.Fatalf("queued entry lost on close: ok=%v", ok)
	}
	if _, ok := mb.pop(); ok {
		t.Fatal("pop reported an entry on a closed empty mailbox")
	}
}
