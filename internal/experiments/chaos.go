package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/faults"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// AblChaosRow is one fault-intensity setting's outcome.
type AblChaosRow struct {
	Rate        float64 // per-message probability of each fault kind
	Utilization float64
	Goodput     float64 // payload bytes/sec
	MedianRTT   time.Duration
	// Fallback and recovery activity (datapath side).
	FallbackOn, FallbackOff int
	Resyncs                 int
	StaleCtrlDropped        int
	// AgentDiscards sums agent-side protections: duplicated Creates and
	// urgents, and stale reports, all silently discarded.
	AgentDiscards int
	// Injected is the injector's total fault accounting (both directions).
	Injected faults.DirStats
}

// AblChaosResult sweeps channel fault intensity over the agent↔datapath
// channel: at zero the wrapped channel must be bit-identical to the plain
// one; as faults grow the sequence protocol and the §5 fallback must keep
// the flow alive and its utilization bounded away from zero.
type AblChaosResult struct {
	Rows []AblChaosRow
	// ZeroMatchesBaseline is true when the rate-0 run's summary, datapath
	// counters, and agent counters all equal a run with no fault layer at
	// all — the injector at rate 0 is provably transparent.
	ZeroMatchesBaseline bool
}

// AblChaos runs CCP Cubic under uniform drop/corrupt/duplicate/reorder rates
// with 2ms delay jitter, both directions, on the canonical evaluation link.
// All randomness comes from the simulator seed, so the sweep is
// deterministic end to end.
func AblChaos() AblChaosResult {
	link := oneBDPLink(48e6, 10*time.Millisecond)
	dur := 10 * time.Second

	type outcome struct {
		sum   RunSummary
		dp    datapath.Stats
		agent core.AgentStats
		fault faults.Stats
	}
	runOne := func(plan *faults.Plan) outcome {
		net := harness.New(harness.Config{Seed: 1, Link: link, Faults: plan})
		f := net.AddCCPFlowCfg(1, "cubic", tcp.Options{},
			datapath.Config{FallbackAfter: 500 * time.Millisecond})
		rtt := sampleRTT(net, f.Conn, 50*time.Millisecond, dur)
		f.Conn.Start()
		net.Run(dur)
		o := outcome{sum: summarize(net, f.Flow, rtt, dur), dp: f.DP.Stats(), agent: net.Agent.Stats()}
		if net.FaultBridge != nil {
			o.fault = net.FaultBridge.Stats()
		}
		return o
	}

	base := runOne(nil)
	var res AblChaosResult
	for _, rate := range []float64{0, 0.05, 0.2, 0.5, 0.9} {
		// Rate 0 is the fully zero plan (no jitter either): the injector is
		// in the path but must be a no-op.
		plan := faults.Plan{}
		if rate > 0 {
			plan = faults.Uniform(rate, 2*time.Millisecond)
		}
		o := runOne(&plan)
		if rate == 0 {
			res.ZeroMatchesBaseline = o.sum == base.sum && o.dp == base.dp && o.agent == base.agent
		}
		res.Rows = append(res.Rows, AblChaosRow{
			Rate:             rate,
			Utilization:      o.sum.Utilization,
			Goodput:          o.sum.Goodput,
			MedianRTT:        o.sum.MedianRTT,
			FallbackOn:       o.dp.FallbackOn,
			FallbackOff:      o.dp.FallbackOff,
			Resyncs:          o.dp.Resyncs,
			StaleCtrlDropped: o.dp.StaleCtrlDropped,
			AgentDiscards:    o.agent.DupCreates + o.agent.DupUrgents + o.agent.StaleReports,
			Injected:         o.fault.Total(),
		})
	}
	return res
}

// String renders the sweep.
func (r AblChaosResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation (robustness): agent↔datapath channel under injected faults — CCP Cubic, 48 Mbit/s, 1 BDP buffer\n")
	b.WriteString("  uniform drop/corrupt/dup/reorder at the given rate, 2ms jitter, both directions\n\n")
	fmt.Fprintf(&b, "  %-6s %12s %10s %11s %9s %8s %10s %10s %9s %8s\n",
		"rate", "utilization", "medianRTT", "fallback", "resyncs", "stale", "agtDiscard", "injDrops", "injCorr", "killed")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-6.2f %11.1f%% %10v %5don/%doff %9d %8d %10d %10d %9d %8d\n",
			row.Rate, row.Utilization*100, row.MedianRTT,
			row.FallbackOn, row.FallbackOff, row.Resyncs, row.StaleCtrlDropped,
			row.AgentDiscards, row.Injected.Dropped, row.Injected.Corrupted,
			row.Injected.DecodeKilled)
	}
	fmt.Fprintf(&b, "\n  rate-0 run bit-identical to fault-free channel: %v\n", r.ZeroMatchesBaseline)
	return b.String()
}
