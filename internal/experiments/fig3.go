package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/nativecc"
	"github.com/ccp-repro/ccp/internal/tcp"
	"github.com/ccp-repro/ccp/internal/trace"
)

// Fig3Config parameterizes the Figure 3 reproduction: Cubic window dynamics
// under CCP vs. the native in-datapath implementation on one flow.
type Fig3Config struct {
	// RateBps is the bottleneck rate (paper: 1 Gbit/s).
	RateBps float64
	// RTT is the two-way propagation delay (paper: 10 ms).
	RTT time.Duration
	// Duration is the flow length (default 30 s).
	Duration time.Duration
	// IPCLatency is the simulated agent↔datapath one-way latency.
	IPCLatency time.Duration
	// SampleEvery sets the cwnd sampling grid (default 50 ms).
	SampleEvery time.Duration
	Seed        int64
}

func (c Fig3Config) withDefaults() Fig3Config {
	if c.RateBps == 0 {
		c.RateBps = 1e9
	}
	if c.RTT == 0 {
		c.RTT = 10 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.IPCLatency == 0 {
		c.IPCLatency = 25 * time.Microsecond
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 50 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig3Result compares the two implementations.
type Fig3Result struct {
	Config       Fig3Config
	CCP          RunSummary
	Native       RunSummary
	CCPCwnd      *trace.Series
	NativeCwnd   *trace.Series
	CwndRMSESegs float64 // RMSE between the two window traces, in segments
}

// Fig3 runs the experiment: one CCP Cubic run and one native Cubic run on
// identical links and seeds.
func Fig3(cfg Fig3Config) Fig3Result {
	cfg = cfg.withDefaults()
	link := oneBDPLink(cfg.RateBps, cfg.RTT)

	runOne := func(ccp bool) (RunSummary, *trace.Series) {
		net := harness.New(harness.Config{
			Seed:       cfg.Seed,
			Link:       link,
			IPCLatency: cfg.IPCLatency,
		})
		var flow *tcp.Flow
		if ccp {
			flow = net.AddCCPFlow(1, "cubic", tcp.Options{}).Flow
		} else {
			flow = net.AddNativeFlow(1, nativecc.NewCubic(), tcp.Options{})
		}
		cwnd := sampleCwnd(net, flow.Conn, cfg.SampleEvery, cfg.Duration)
		rtts := sampleRTT(net, flow.Conn, cfg.SampleEvery, cfg.Duration)
		flow.Conn.Start()
		net.Run(cfg.Duration)
		return summarize(net, flow, rtts, cfg.Duration), cwnd
	}

	ccpSum, ccpCwnd := runOne(true)
	natSum, natCwnd := runOne(false)

	mss := 1448.0
	return Fig3Result{
		Config:       cfg,
		CCP:          ccpSum,
		Native:       natSum,
		CCPCwnd:      ccpCwnd,
		NativeCwnd:   natCwnd,
		CwndRMSESegs: trace.RMSE(ccpCwnd, natCwnd, cfg.SampleEvery, cfg.Duration/10, cfg.Duration) / mss,
	}
}

// String renders the paper-style comparison.
func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: Cubic window dynamics — %.0f Mbit/s, %v RTT, 1 BDP buffer, %v\n",
		r.Config.RateBps/1e6, r.Config.RTT, r.Config.Duration)
	fmt.Fprintf(&b, "  (paper: Linux 94.4%% util / 15.8 ms median RTT; CCP 95.4%% / 16.1 ms)\n")
	fmt.Fprintf(&b, "  ccp-cubic:    %s\n", r.CCP)
	fmt.Fprintf(&b, "  linux-cubic:  %s\n", r.Native)
	fmt.Fprintf(&b, "  cwnd RMSE (steady state): %.1f segments\n", r.CwndRMSESegs)
	b.WriteString("\n(a) CCP Cubic\n")
	b.WriteString(r.CCPCwnd.ASCII(72, 10))
	b.WriteString("\n(b) Native (Linux-style) Cubic\n")
	b.WriteString(r.NativeCwnd.ASCII(72, 10))
	return b.String()
}
