package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/nativecc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
	"github.com/ccp-repro/ccp/internal/trace"
)

// AblBatchingRow is one report-interval setting's outcome.
type AblBatchingRow struct {
	IntervalRtts float64 // 0 means per-ACK-approximating (0.05 RTT)
	Utilization  float64
	CwndRMSESegs float64 // fidelity vs. native Reno, segments
	MsgsPerSec   float64 // agent messages per second (both directions)
	MedianRTT    time.Duration
}

// AblBatchingResult sweeps the measurement batching interval (§2.3): how
// coarse can the CCP's control loop be before behaviour degrades, and what
// does fine-grained reporting cost in messages?
type AblBatchingResult struct {
	Rows []AblBatchingRow
}

// AblBatching runs CCP Reno with report intervals from ~per-ACK to 4 RTTs
// against a native Reno reference on the same link.
func AblBatching() AblBatchingResult {
	link := oneBDPLink(48e6, 10*time.Millisecond)
	dur := 20 * time.Second
	sample := 50 * time.Millisecond

	// Native reference trace.
	ref := harness.New(harness.Config{Seed: 1, Link: link})
	refFlow := ref.AddNativeFlow(1, nativecc.NewRenoCC(), tcp.Options{})
	refCwnd := sampleCwnd(ref, refFlow.Conn, sample, dur)
	refFlow.Conn.Start()
	ref.Run(dur)

	var res AblBatchingResult
	for _, rtts := range []float64{0.05, 0.1, 0.5, 1, 2, 4} {
		net := harness.New(harness.Config{Seed: 1, Link: link})
		prog := lang.NewProgram().MeasureEWMA().WaitRtts(rtts).Report().MustBuild()
		f := net.AddCCPFlowCfg(1, "reno", tcp.Options{}, datapath.Config{DefaultProgram: prog})
		cwnd := sampleCwnd(net, f.Conn, sample, dur)
		rtt := sampleRTT(net, f.Conn, sample, dur)
		f.Conn.Start()
		net.Run(dur)

		bst := net.Bridge.Stats()
		sum := summarize(net, f.Flow, rtt, dur)
		res.Rows = append(res.Rows, AblBatchingRow{
			IntervalRtts: rtts,
			Utilization:  sum.Utilization,
			CwndRMSESegs: trace.RMSE(cwnd, refCwnd, sample, dur/10, dur) / 1448,
			MsgsPerSec:   float64(bst.ToAgentMsgs+bst.ToDpMsgs) / dur.Seconds(),
			MedianRTT:    sum.MedianRTT,
		})
	}
	return res
}

// String renders the sweep.
func (r AblBatchingResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation (§2.3): measurement batching interval — CCP Reno vs native Reno reference\n\n")
	fmt.Fprintf(&b, "  %-14s %12s %16s %12s %12s\n",
		"interval(RTTs)", "utilization", "cwndRMSE(segs)", "msgs/sec", "medianRTT")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14.2f %11.1f%% %16.1f %12.1f %12v\n",
			row.IntervalRtts, row.Utilization*100, row.CwndRMSESegs,
			row.MsgsPerSec, row.MedianRTT)
	}
	return b.String()
}

// AblLowRTTCell is one (RTT, IPC latency) point.
type AblLowRTTCell struct {
	RTT         time.Duration
	IPCLatency  time.Duration
	Utilization float64
	// SRTTInflation is the final smoothed RTT over the propagation RTT: it
	// exposes the queueing cost of a lagging control loop even when raw
	// utilization stays high.
	SRTTInflation float64
}

// AblLowRTTResult probes §5's open question: does per-RTT off-datapath
// control survive very low RTTs, as IPC latency becomes comparable to the
// network RTT?
type AblLowRTTResult struct {
	Cells []AblLowRTTCell
}

// AblLowRTT sweeps RTT × IPC latency for CCP Cubic on a 2.5 Gbit/s link
// (datacenter-class RTTs; the rate is kept moderate so the sweep stays
// tractable — the RTT-to-IPC-latency *ratio* is what §5 asks about).
func AblLowRTT() AblLowRTTResult {
	var res AblLowRTTResult
	for _, rtt := range []time.Duration{
		50 * time.Microsecond, 200 * time.Microsecond,
		1 * time.Millisecond, 10 * time.Millisecond,
	} {
		for _, ipcLat := range []time.Duration{
			time.Microsecond, 10 * time.Microsecond,
			100 * time.Microsecond, time.Millisecond,
		} {
			link := oneBDPLink(2.5e9, rtt)
			net := harness.New(harness.Config{Seed: 1, Link: link, IPCLatency: ipcLat})
			minRTO := 4 * rtt
			if minRTO < time.Millisecond {
				minRTO = time.Millisecond
			}
			f := net.AddCCPFlow(1, "cubic", tcp.Options{MinRTO: minRTO, AckEvery: 2})
			f.Conn.Start()
			dur := 3000 * rtt // scale run length with the RTT
			if dur < 50*time.Millisecond {
				dur = 50 * time.Millisecond
			}
			if dur > 1500*time.Millisecond {
				dur = 1500 * time.Millisecond
			}
			net.Run(dur)
			inflation := 0.0
			if srtt := f.Conn.SRTT(); srtt > 0 {
				inflation = float64(srtt) / float64(rtt)
			}
			res.Cells = append(res.Cells, AblLowRTTCell{
				RTT: rtt, IPCLatency: ipcLat,
				Utilization:   net.Utilization(dur),
				SRTTInflation: inflation,
			})
		}
	}
	return res
}

// String renders the matrix.
func (r AblLowRTTResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation (§5): CCP at low RTTs — CCP Cubic on 2.5 Gbit/s, 1 BDP buffer\n")
	b.WriteString("  cell: utilization (smoothed-RTT inflation over propagation)\n\n")
	fmt.Fprintf(&b, "  %-10s", "RTT \\ IPC")
	var ipcs []time.Duration
	seen := map[time.Duration]bool{}
	for _, c := range r.Cells {
		if !seen[c.IPCLatency] {
			seen[c.IPCLatency] = true
			ipcs = append(ipcs, c.IPCLatency)
			fmt.Fprintf(&b, " %10v", c.IPCLatency)
		}
	}
	b.WriteString("\n")
	var curRTT time.Duration = -1
	for _, c := range r.Cells {
		if c.RTT != curRTT {
			if curRTT >= 0 {
				b.WriteString("\n")
			}
			curRTT = c.RTT
			fmt.Fprintf(&b, "  %-10v", c.RTT)
		}
		fmt.Fprintf(&b, " %4.0f%%(%3.1fx)", c.Utilization*100, c.SRTTInflation)
	}
	b.WriteString("\n")
	return b.String()
}

// AblFoldVecResult compares the two §2.4 batching designs on the same
// algorithm (Vegas).
type AblFoldVecResult struct {
	Fold, Vector struct {
		Utilization float64
		MedianRTT   time.Duration
		MsgsPerSec  float64
		BytesPerSec float64 // agent-bound measurement traffic
		RowsPerSec  float64 // per-packet rows shipped (vector only)
	}
}

// AblFoldVec runs fold- and vector-Vegas on identical links.
func AblFoldVec() AblFoldVecResult {
	// Deep buffer so the delay-based algorithm, not drops, governs.
	link := netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 22}
	dur := 20 * time.Second
	var res AblFoldVecResult
	for i, alg := range []string{"vegas", "vegas-vector"} {
		net := harness.New(harness.Config{Seed: 1, Link: link})
		f := net.AddCCPFlow(1, alg, tcp.Options{})
		rtt := sampleRTT(net, f.Conn, 50*time.Millisecond, dur)
		f.Conn.Start()
		net.Run(dur)
		sum := summarize(net, f.Flow, rtt, dur)
		bst := net.Bridge.Stats()
		dst := f.DP.Stats()
		out := &res.Fold
		if i == 1 {
			out = &res.Vector
		}
		out.Utilization = sum.Utilization
		out.MedianRTT = sum.MedianRTT
		out.MsgsPerSec = float64(bst.ToAgentMsgs) / dur.Seconds()
		out.BytesPerSec = float64(bst.ToAgentBytes) / dur.Seconds()
		out.RowsPerSec = float64(dst.VectorRowsSent) / dur.Seconds()
	}
	return res
}

// String renders the comparison.
func (r AblFoldVecResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation (§2.4): fold vs. vector batching — Vegas, identical links\n\n")
	fmt.Fprintf(&b, "  %-10s %12s %12s %10s %14s %12s\n",
		"mode", "utilization", "medianRTT", "msgs/sec", "bytes/sec→CCP", "pkt rows/sec")
	fmt.Fprintf(&b, "  %-10s %11.1f%% %12v %10.1f %14.0f %12.1f\n",
		"fold", r.Fold.Utilization*100, r.Fold.MedianRTT, r.Fold.MsgsPerSec,
		r.Fold.BytesPerSec, r.Fold.RowsPerSec)
	fmt.Fprintf(&b, "  %-10s %11.1f%% %12v %10.1f %14.0f %12.1f\n",
		"vector", r.Vector.Utilization*100, r.Vector.MedianRTT, r.Vector.MsgsPerSec,
		r.Vector.BytesPerSec, r.Vector.RowsPerSec)
	return b.String()
}

// AblFallbackResult verifies the §5 safety story: the datapath survives an
// agent crash and recovers when it returns.
type AblFallbackResult struct {
	UtilBefore, UtilDuring, UtilAfter float64
	Activations, Deactivations        int
	// Recovery accounting: the datapath re-announces the flow while the
	// agent is silent (Resyncs), the returning agent re-adopts it
	// (AgentFlowsCreated > 1) and re-installs its program (Installs > 1),
	// so no stale native-fallback state leaks into the recovered CCP window.
	Resyncs           int
	Installs          int
	AgentFlowsCreated int
}

// AblFallback kills the bridge (agent crash) from t=5s to t=15s.
func AblFallback() AblFallbackResult {
	link := oneBDPLink(48e6, 10*time.Millisecond)
	dur := 25 * time.Second
	net := harness.New(harness.Config{Seed: 1, Link: link})
	f := net.AddCCPFlowCfg(1, "cubic", tcp.Options{},
		datapath.Config{FallbackAfter: 500 * time.Millisecond})
	thr := sampleThroughput(net, f.Receiver, 100*time.Millisecond, dur)
	f.Conn.Start()
	net.Sim.Schedule(5*time.Second, net.Bridge.Stop)
	net.Sim.Schedule(15*time.Second, net.Bridge.Start)
	net.Run(dur)

	cap := link.RateBps / 8
	st := f.DP.Stats()
	return AblFallbackResult{
		UtilBefore:        thr.MeanOver(1*time.Second, 5*time.Second) / cap,
		UtilDuring:        thr.MeanOver(6*time.Second, 15*time.Second) / cap,
		UtilAfter:         thr.MeanOver(16*time.Second, 25*time.Second) / cap,
		Activations:       st.FallbackOn,
		Deactivations:     st.FallbackOff,
		Resyncs:           st.Resyncs,
		Installs:          st.InstallsRecvd,
		AgentFlowsCreated: net.Agent.Stats().FlowsCreated,
	}
}

// String renders the phases.
func (r AblFallbackResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation (§5): datapath fallback on agent crash — CCP Cubic, agent dead 5s–15s\n\n")
	fmt.Fprintf(&b, "  utilization before crash: %.1f%%\n", r.UtilBefore*100)
	fmt.Fprintf(&b, "  utilization during crash (fallback NewReno): %.1f%%\n", r.UtilDuring*100)
	fmt.Fprintf(&b, "  utilization after recovery: %.1f%%\n", r.UtilAfter*100)
	fmt.Fprintf(&b, "  fallback activations=%d deactivations=%d\n", r.Activations, r.Deactivations)
	fmt.Fprintf(&b, "  recovery: resync Creates=%d, agent flow adoptions=%d, programs installed=%d\n",
		r.Resyncs, r.AgentFlowsCreated, r.Installs)
	return b.String()
}

// AblUrgentResult compares urgent vs. purely batched congestion signals
// (§2.1): how much does immediate loss notification matter?
type AblUrgentResult struct {
	Urgent, Batched struct {
		Utilization float64
		MedianRTT   time.Duration
		Drops       int
	}
}

// AblUrgent runs CCP Reno with and without the urgent path on a small
// buffer where loss reaction latency matters.
func AblUrgent() AblUrgentResult {
	link := oneBDPLink(48e6, 10*time.Millisecond)
	dur := 20 * time.Second

	runOne := func(urgent bool) (RunSummary, int) {
		reg := core.NewRegistry()
		reg.Register("reno-abl", func() core.Alg {
			return &ablReno{useUrgent: urgent}
		})
		net := harness.New(harness.Config{
			Seed: 1, Link: link, Registry: reg, DefaultAlg: "reno-abl",
		})
		f := net.AddCCPFlow(1, "reno-abl", tcp.Options{})
		rtt := sampleRTT(net, f.Conn, 50*time.Millisecond, dur)
		f.Conn.Start()
		net.Run(dur)
		drops := net.Path.Forward.Stats().DroppedOverflow
		return summarize(net, f.Flow, rtt, dur), drops
	}

	var res AblUrgentResult
	sum, drops := runOne(true)
	res.Urgent.Utilization = sum.Utilization
	res.Urgent.MedianRTT = sum.MedianRTT
	res.Urgent.Drops = drops
	sum, drops = runOne(false)
	res.Batched.Utilization = sum.Utilization
	res.Batched.MedianRTT = sum.MedianRTT
	res.Batched.Drops = drops
	return res
}

// ablReno is Reno with a switchable loss path: urgent (immediate halving)
// or batched (halve when a report shows lost bytes).
type ablReno struct {
	useUrgent bool
	cwnd      float64
	ssthresh  float64
	mss       float64
}

func (a *ablReno) Name() string { return "reno-abl" }

func (a *ablReno) Init(f *core.Flow) {
	a.mss = float64(f.Info.MSS)
	a.cwnd = float64(f.Info.InitCwnd)
	a.ssthresh = 1 << 30
	f.SetCwnd(int(a.cwnd))
}

func (a *ablReno) OnMeasurement(f *core.Flow, m core.Measurement) {
	if !a.useUrgent {
		if lost := m.GetOr("lost", 0); lost > 0 {
			a.ssthresh = a.cwnd / 2
			a.cwnd = a.ssthresh
			if a.cwnd < 2*a.mss {
				a.cwnd = 2 * a.mss
			}
			f.SetCwnd(int(a.cwnd))
			return
		}
	}
	acked := m.GetOr("acked", 0)
	if acked <= 0 {
		return
	}
	if a.cwnd < a.ssthresh {
		a.cwnd += acked
	} else {
		a.cwnd += a.mss * (acked / a.cwnd)
	}
	f.SetCwnd(int(a.cwnd))
}

func (a *ablReno) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	if !a.useUrgent {
		return // loss handled (late) via reports
	}
	switch u.Kind {
	case proto.UrgentDupAck, proto.UrgentECN:
		a.ssthresh = a.cwnd / 2
		a.cwnd = a.ssthresh
	case proto.UrgentTimeout:
		a.ssthresh = a.cwnd / 2
		a.cwnd = a.mss
	}
	if a.cwnd < 2*a.mss {
		a.cwnd = 2 * a.mss
	}
	f.SetCwnd(int(a.cwnd))
}

// String renders the comparison.
func (r AblUrgentResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation (§2.1): urgent vs. batched congestion signals — CCP Reno, 1 BDP buffer\n\n")
	fmt.Fprintf(&b, "  %-10s %12s %12s %10s\n", "mode", "utilization", "medianRTT", "drops")
	fmt.Fprintf(&b, "  %-10s %11.1f%% %12v %10d\n",
		"urgent", r.Urgent.Utilization*100, r.Urgent.MedianRTT, r.Urgent.Drops)
	fmt.Fprintf(&b, "  %-10s %11.1f%% %12v %10d\n",
		"batched", r.Batched.Utilization*100, r.Batched.MedianRTT, r.Batched.Drops)
	return b.String()
}
