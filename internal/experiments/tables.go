package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// Table1Row is one algorithm's capability row, as in the paper's Table 1.
type Table1Row struct {
	Name         string
	Measurements string
	Controls     string
	Batching     string
	// Programs is the number of control programs the implementation
	// installs at Init (verified by probing the real factory).
	Programs int
	// DirectOps lists direct SetCwnd/SetRate use at Init.
	DirectOps string
}

// Table1Result reproduces Table 1 from the live registry: the primitives
// each bundled algorithm actually uses, verified by instantiating it.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 builds the table.
func Table1() Table1Result {
	var res Table1Result
	for _, info := range algorithms.All() {
		progs, direct := core.Describe(info.Factory, 1448)
		res.Rows = append(res.Rows, Table1Row{
			Name:         info.Name,
			Measurements: strings.Join(info.Measurements, ", "),
			Controls:     strings.Join(info.Controls, ", "),
			Batching:     info.Batching,
			Programs:     len(progs),
			DirectOps:    strings.Join(direct, ","),
		})
	}
	return res
}

// String renders the table.
func (r Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: measurement and control primitives per algorithm (verified against the registry)\n\n")
	fmt.Fprintf(&b, "  %-14s %-42s %-24s %-8s %-5s %s\n",
		"Protocol", "Measurement", "Control Knobs", "Batching", "Progs", "Direct")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %-42s %-24s %-8s %-5d %s\n",
			row.Name, row.Measurements, row.Controls, row.Batching, row.Programs, row.DirectOps)
	}
	return b.String()
}

// Table2Row verifies one control-language primitive end-to-end.
type Table2Row struct {
	Operation   string
	Description string
	Verified    bool
}

// Table2Result reproduces Table 2: each primitive of the control language,
// exercised against a live simulated datapath.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 installs a program using every primitive on a real simulated flow
// and checks each primitive's observable effect.
func Table2() Table2Result {
	net := harness.New(harness.Config{
		Link: oneBDPLink(48e6, 10*time.Millisecond),
	})
	f := net.AddCCPFlow(1, "reno", tcp.Options{})
	f.Conn.Start()
	net.Run(500 * time.Millisecond)

	// A program exercising Measure(fold) + Rate + Cwnd + Wait + WaitRtts +
	// Report in one loop.
	fold := &lang.FoldSpec{
		Regs:    []lang.RegDef{{Name: "acked_t2", Init: 0}},
		Updates: []lang.Assign{{Dst: "acked_t2", E: lang.Add(lang.V("acked_t2"), lang.V("pkt.acked"))}},
	}
	prog := lang.NewProgram().
		MeasureFold(fold).
		Rate(lang.C(2e6)).
		Cwnd(lang.C(40000)).
		Wait(0.005).
		WaitRtts(1).
		Report().
		MustBuild()
	data, err := lang.MarshalProgram(prog)
	if err != nil {
		panic("table2: " + err.Error())
	}
	preReports := f.DP.Stats().ReportsSent
	f.DP.Deliver(&proto.Install{SID: 1, Prog: data})
	net.Run(1500 * time.Millisecond)

	rateOK := f.Conn.PacingRate() == 2e6
	cwndOK := f.Conn.Cwnd() == 40000
	reports := f.DP.Stats().ReportsSent - preReports
	// Wait(5ms)+WaitRtts(~12ms) per cycle => ~55 reports/sec over 1.5s;
	// check the cadence is in that ballpark (both waits active).
	waitsOK := reports > 20 && reports < 180

	return Table2Result{Rows: []Table2Row{
		{"Measure(·)", "fold per-packet metric into bounded state", reports > 0},
		{"Rate(r)", "rate <- r (pacing observed in datapath)", rateOK},
		{"Cwnd(c)", "cwnd <- c (window observed in datapath)", cwndOK},
		{"Wait(time)", "gather measurements for an absolute duration", waitsOK},
		{"WaitRtts(α)", "wait α·RTT (RTT-relative cadence)", waitsOK},
		{"Report()", "send measurements to the CCP", reports > 0},
	}}
}

// String renders the table.
func (r Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: control-language primitives, exercised on a live simulated datapath\n\n")
	fmt.Fprintf(&b, "  %-12s %-52s %s\n", "Operation", "Description", "Verified")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %-52s %v\n", row.Operation, row.Description, row.Verified)
	}
	return b.String()
}

// Table3Row verifies one CCP API function.
type Table3Row struct {
	Function    string
	Description string
	Calls       int
}

// Table3Result reproduces Table 3: the user-space event handlers, counted
// over a real lossy run so every handler fires.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs a CCP flow over a lossy link and counts API activity.
func Table3() Table3Result {
	link := oneBDPLink(16e6, 10*time.Millisecond)
	link.LossProb = 0.005
	net := harness.New(harness.Config{Link: link})
	f := net.AddCCPFlow(1, "cubic", tcp.Options{})
	f.Conn.Start()
	net.Run(10 * time.Second)

	ast := net.Agent.Stats()
	dst := f.DP.Stats()
	return Table3Result{Rows: []Table3Row{
		{"Init(seq, flow)", "initialize flow state", ast.FlowsCreated},
		{"OnMeasurement(m)", "measurements have arrived", ast.Measurements + ast.Vectors},
		{"OnUrgent(type)", "an urgent event has occurred", ast.Urgents},
		{"Install(p)", "send new control program to the datapath", dst.InstallsRecvd},
	}}
}

// String renders the table.
func (r Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3: CCP API handlers, invocation counts over a 10 s lossy run\n\n")
	fmt.Fprintf(&b, "  %-18s %-46s %s\n", "Function", "Description", "Calls")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %-46s %d\n", row.Function, row.Description, row.Calls)
	}
	return b.String()
}
