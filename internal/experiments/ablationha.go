package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/supervise"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// HACell is one (fault, recovery-mode) cell of the agent high-availability
// ablation. Three recovery modes bracket the design space:
//
//   - "none":     no liveness layer at all — an agent failure strands flows
//     (established flows coast on a frozen window, newborn flows pin at
//     InitCwnd).
//   - "fallback": the PR 6 fail-safe — per-flow staleness clocks hand
//     control to an in-datapath fallback, replaying a multiplicative
//     decrease on entry; the flow survives but pays the MD cut and runs on
//     generic AIMD until the agent heals.
//   - "warm":     this PR's HA layer — a warm standby fed by snapshot
//     deltas plus a heartbeat supervisor. Failure is resolved by promoting
//     the standby before the datapath's staleness budget ever trips: no
//     fallback entry, no MD replay, fresh algorithm decisions within a few
//     RTTs of promotion.
type HACell struct {
	Fault string // "kill", "pause", or "slow"
	Mode  string // "none", "fallback", or "warm"

	// UtilSpanning is flow A's utilization over the fault transition
	// (faultAt .. faultAt+1s, before flow B is born): A is established when
	// the fault lands, so this window prices the recovery path itself —
	// coast, MD replay, or seamless promotion. The link's buffer is shallow
	// (1/4 BDP), so an unforced multiplicative decrease actually drains the
	// pipe instead of hiding in the queue.
	UtilSpanning float64
	// UtilNewborn is flow B's utilization mid-outage (11s .. 16s); B is
	// born during the outage, the worst case from the agent-chaos ablation.
	UtilNewborn float64
	// UtilAfter is combined A+B utilization after the heal point (17s .. 24s).
	UtilAfter float64

	// Datapath fallback transitions for the spanning flow (A) and the
	// newborn (B). The headline warm-standby property is both staying zero.
	FallbackOnA  int
	FallbackOffA int
	FallbackOnB  int

	// Supervisor/agent accounting (zero outside "warm" mode).
	Failovers    int
	Restores     int
	ResyncAdopts int
	// FailoverDelayMs is fault → promotion (supervisor detection time).
	FailoverDelayMs float64
	// FreshDecisionRTTs counts RTTs from promotion until flow A's datapath
	// applies a control decision from the promoted agent (install, SetCwnd,
	// or SetRate) — the warm-restart time-to-recovery.
	FreshDecisionRTTs float64
}

// AblHAResult is the full kill/pause/slow × none/fallback/warm matrix.
type AblHAResult struct {
	Cells []HACell
}

// haRTT is the scenario's base RTT; TTR is reported in units of it.
const haRTT = 10 * time.Millisecond

// AblHA runs the matrix on the canonical evaluation link (48 Mbit/s, 10 ms
// RTT, 1 BDP buffer), reusing the agent-chaos timeline: fault at t=8s, flow
// B born mid-outage at t=9s, heal at t=16s. In "warm" mode the heal point is
// moot — the supervisor has already replaced the agent within tens of
// milliseconds of the fault.
func AblHA() AblHAResult {
	var res AblHAResult
	for _, fault := range []string{"kill", "pause", "slow"} {
		for _, mode := range []string{"none", "fallback", "warm"} {
			res.Cells = append(res.Cells, runHACell(fault, mode))
		}
	}
	return res
}

func haDatapathCfg(mode string) datapath.Config {
	switch mode {
	case "fallback":
		// PR 6 configuration: staleness clocks only.
		return datapath.Config{Liveness: datapath.LivenessConfig{
			StalenessBudget: 500 * time.Millisecond,
		}}
	case "warm":
		// Same staleness budget as the fallback arm (it is the safety net
		// under the HA layer), plus heartbeat probes for hysteresis.
		return datapath.Config{Liveness: datapath.LivenessConfig{
			StalenessBudget: 500 * time.Millisecond,
			ProbeInterval:   5 * time.Millisecond,
		}}
	}
	return datapath.Config{}
}

func runHACell(fault, mode string) HACell {
	// Shallow buffer (1/4 BDP): deep queues absorb a replayed multiplicative
	// decrease for free, which would hide exactly the cost this ablation
	// prices.
	link := oneBDPLink(48e6, haRTT)
	link.QueueBytes /= 4
	cfg := harness.Config{Seed: 1, Link: link, AgentFaults: true}
	if mode == "warm" {
		cfg.HA = &harness.HAConfig{
			SnapshotInterval: 50 * time.Millisecond,
			Supervisor: supervise.Config{
				Interval:      5 * time.Millisecond,
				LatencyBudget: 100 * time.Millisecond,
				MissBudget:    3,
			},
		}
	}
	net := harness.New(cfg)
	dpCfg := haDatapathCfg(mode)

	a := net.AddCCPFlowCfg(1, "cubic", tcp.Options{}, dpCfg)
	b := net.AddCCPFlowCfg(2, "cubic", tcp.Options{}, dpCfg)
	thrA := sampleThroughput(net, a.Receiver, 100*time.Millisecond, chaosDur)
	thrB := sampleThroughput(net, b.Receiver, 100*time.Millisecond, chaosDur)

	a.Conn.Start() // A spans the whole run
	net.StartAt(b.Flow, chaosBStartAt)

	net.Sim.Schedule(chaosFaultAt, func() {
		switch fault {
		case "kill":
			net.AgentInj.Kill()
		case "pause":
			net.AgentInj.Pause()
		case "slow":
			net.AgentInj.SlowDown(700 * time.Millisecond)
		}
	})
	if mode != "warm" {
		// Heal at t=16s. In warm mode the supervisor's promotion already
		// replaced the process (Restart drops the corpse's backlog), so
		// there is nothing left to heal.
		net.Sim.Schedule(chaosHealAt, func() {
			switch fault {
			case "kill":
				net.RestartAgent()
			case "pause":
				net.AgentInj.Resume()
			case "slow":
				net.AgentInj.SlowDown(0)
			}
		})
	}

	// Time-to-recovery probe: from the fault onward, watch (on the sim
	// clock) for the supervisor's promotion, then for the first control
	// decision flow A's datapath applies from the promoted agent.
	var failoverAt, freshAt time.Duration
	var appliedAtFailover int
	applied := func() int {
		st := a.DP.Stats()
		return st.InstallsRecvd + st.SetCwndRecvd + st.SetRateRecvd
	}
	if mode == "warm" {
		var poll func()
		poll = func() {
			now := net.Sim.Now()
			if failoverAt == 0 {
				if net.Supervisor.Stats().Failovers > 0 {
					failoverAt = now
					appliedAtFailover = applied()
				}
			} else if applied() > appliedAtFailover {
				freshAt = now
				return
			}
			if now < chaosDur {
				net.Sim.Schedule(time.Millisecond, poll)
			}
		}
		net.Sim.Schedule(chaosFaultAt, poll)
	}

	net.Run(chaosDur)

	capBps := link.RateBps / 8
	stA, stB := a.DP.Stats(), b.DP.Stats()
	cell := HACell{
		Fault:        fault,
		Mode:         mode,
		UtilSpanning: thrA.MeanOver(chaosFaultAt, chaosBStartAt) / capBps,
		UtilNewborn:  thrB.MeanOver(11*time.Second, chaosHealAt) / capBps,
		UtilAfter: (thrA.MeanOver(17*time.Second, chaosDur) +
			thrB.MeanOver(17*time.Second, chaosDur)) / capBps,
		FallbackOnA:  stA.FallbackOn,
		FallbackOffA: stA.FallbackOff,
		FallbackOnB:  stB.FallbackOn,
		Restores:     net.Agent.Stats().Restores,
		ResyncAdopts: net.Agent.Stats().ResyncAdopts,
	}
	if mode == "warm" {
		cell.Failovers = net.Supervisor.Stats().Failovers
		if failoverAt > 0 {
			cell.FailoverDelayMs = (failoverAt - chaosFaultAt).Seconds() * 1e3
		}
		if freshAt > 0 {
			cell.FreshDecisionRTTs = float64(freshAt-failoverAt) / float64(haRTT)
		}
	}
	return cell
}

// String renders the matrix.
func (r AblHAResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation (§5): agent high availability — fault at t=8s, flow B born\n")
	b.WriteString("mid-outage (t=9s), heal at t=16s; 48 Mbit/s, 10 ms RTT, 1/4 BDP buffer.\n")
	b.WriteString("span = established flow A over the fault transition (8s-9s);\n")
	b.WriteString("newborn = flow B mid-outage (11s-16s); after = A+B post-heal (17s-24s).\n\n")
	fmt.Fprintf(&b, "  %-6s %-9s %6s %8s %6s %6s %6s %5s %9s %8s %8s\n",
		"fault", "mode", "span", "newborn", "after",
		"fb-onA", "fb-onB", "fails", "detect-ms", "ttr-rtts", "restores")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-6s %-9s %5.1f%% %7.1f%% %5.1f%% %6d %6d %5d %9.1f %8.1f %8d\n",
			c.Fault, c.Mode, c.UtilSpanning*100, c.UtilNewborn*100, c.UtilAfter*100,
			c.FallbackOnA, c.FallbackOnB, c.Failovers,
			c.FailoverDelayMs, c.FreshDecisionRTTs, c.Restores)
	}
	b.WriteString("\n  warm standby resolves every fault by promotion: zero fallback entries,\n")
	b.WriteString("  no multiplicative-decrease replay, fresh decisions within a few RTTs.\n")
	return b.String()
}
