package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
	"github.com/ccp-repro/ccp/internal/trace"
)

// This file implements the paper's stated future-work items as experiments:
// §3's smooth window transitions, §5's in-datapath synthesis, and §5's
// group congestion management.

// AblSmoothResult measures the §3 future-work fix: smoothing per-RTT window
// jumps in the datapath.
type AblSmoothResult struct {
	Step, Smooth struct {
		PeakQueueBytes int
		Drops          int
		Utilization    float64
	}
}

// AblSmooth isolates the step response: a flow holds a small window, then
// the agent raises it to one BDP in a single update — the per-RTT jump the
// paper worried about. The queue spike that follows is the burst.
func AblSmooth() AblSmoothResult {
	var res AblSmoothResult
	for _, smooth := range []bool{false, true} {
		const rate = 48e6
		rtt := 10 * time.Millisecond
		bdp := harness.BDPBytes(rate, rtt)
		link := netsim.LinkConfig{RateBps: rate, Delay: rtt / 2, QueueBytes: 1 << 22}
		reg := core.NewRegistry()
		reg.Register("hold", func() core.Alg { return holdAlg{} })
		net := harness.New(harness.Config{Seed: 1, Link: link, Registry: reg, DefaultAlg: "hold"})
		f := net.AddCCPFlowCfg(1, "hold", tcp.Options{}, datapath.Config{
			SmoothCwnd: smooth,
		})
		f.Conn.Start()
		// Let the small initial window reach steady state, then jump.
		net.Run(time.Second)
		pre := net.Path.Forward.Stats().MaxQueueBytes
		f.DP.Deliver(&proto.SetCwnd{SID: 1, Bytes: uint32(bdp)})
		dur := 1500 * time.Millisecond
		net.Run(dur)
		out := &res.Step
		if smooth {
			out = &res.Smooth
		}
		st := net.Path.Forward.Stats()
		out.PeakQueueBytes = st.MaxQueueBytes - pre
		out.Drops = st.DroppedOverflow
		out.Utilization = net.Utilization(dur)
	}
	return res
}

// holdAlg leaves the window alone entirely; the experiment injects the
// single step itself.
type holdAlg struct{}

func (holdAlg) Name() string                                   { return "hold" }
func (holdAlg) Init(f *core.Flow)                              {}
func (holdAlg) OnMeasurement(f *core.Flow, m core.Measurement) {}
func (holdAlg) OnUrgent(f *core.Flow, u core.UrgentEvent)      {}

// String renders the comparison.
func (r AblSmoothResult) String() string {
	var b strings.Builder
	b.WriteString("Extension (§3 future work): smooth cwnd transitions — single 1-BDP window step\n\n")
	fmt.Fprintf(&b, "  %-10s %16s %8s %12s\n", "mode", "peak queue (B)", "drops", "utilization")
	fmt.Fprintf(&b, "  %-10s %16d %8d %11.1f%%\n", "step", r.Step.PeakQueueBytes, r.Step.Drops, r.Step.Utilization*100)
	fmt.Fprintf(&b, "  %-10s %16d %8d %11.1f%%\n", "smooth", r.Smooth.PeakQueueBytes, r.Smooth.Drops, r.Smooth.Utilization*100)
	return b.String()
}

// AblSynthesisResult measures §5's synthesis idea: AIMD compiled entirely
// into the datapath vs. the same AIMD run off-datapath, as the IPC latency
// grows past the network RTT.
type AblSynthesisResult struct {
	Rows []AblSynthesisRow
}

// AblSynthesisRow is one IPC-latency point.
type AblSynthesisRow struct {
	IPCLatency time.Duration
	OffDP      struct {
		Utilization float64
		Drops       int
	}
	InDP struct {
		Utilization float64
		Drops       int
	}
}

// AblSynthesis sweeps IPC latency at a 200µs network RTT.
func AblSynthesis() AblSynthesisResult {
	var res AblSynthesisResult
	rtt := 200 * time.Microsecond
	for _, ipcLat := range []time.Duration{
		10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 4 * time.Millisecond,
	} {
		row := AblSynthesisRow{IPCLatency: ipcLat}
		for i, alg := range []string{"aimd", "aimd-dp"} {
			link := oneBDPLink(2.5e9, rtt)
			net := harness.New(harness.Config{Seed: 1, Link: link, IPCLatency: ipcLat})
			f := net.AddCCPFlow(1, alg, tcp.Options{MinRTO: 5 * time.Millisecond})
			f.Conn.Start()
			dur := 2 * time.Second
			net.Run(dur)
			out := &row.OffDP
			if i == 1 {
				out = &row.InDP
			}
			out.Utilization = net.Utilization(dur)
			out.Drops = net.Path.Forward.Stats().DroppedOverflow
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the sweep.
func (r AblSynthesisResult) String() string {
	var b strings.Builder
	b.WriteString("Extension (§5): synthesizing the controller into the datapath — AIMD at 200µs RTT\n\n")
	fmt.Fprintf(&b, "  %-12s %22s %22s\n", "IPC latency", "off-datapath (util/drops)", "in-datapath (util/drops)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12v %14.1f%% /%6d %16.1f%% /%6d\n",
			row.IPCLatency,
			row.OffDP.Utilization*100, row.OffDP.Drops,
			row.InDP.Utilization*100, row.InDP.Drops)
	}
	return b.String()
}

// AblGroupResult measures §5's group congestion management: N flows under
// one Congestion-Manager-style aggregate vs. N independent loops.
type AblGroupResult struct {
	Flows              int
	Group, Independent struct {
		Utilization float64
		Fairness    float64
		Drops       int
		MedianRTT   time.Duration
	}
}

// AblGroup compares 4 flows through one bottleneck under the cm aggregate
// against 4 independent CCP Reno loops.
func AblGroup() AblGroupResult {
	const n = 4
	res := AblGroupResult{Flows: n}
	link := netsim.LinkConfig{RateBps: 48e6, Delay: 5 * time.Millisecond, QueueBytes: 60000}
	dur := 20 * time.Second

	run := func(group bool) (float64, float64, int, time.Duration) {
		reg := core.NewRegistry()
		algorithms.Register(reg)
		reg.Register("cm", algorithms.NewGroupCM())
		alg := "reno"
		if group {
			alg = "cm"
		}
		net := harness.New(harness.Config{Seed: 1, Link: link, Registry: reg, DefaultAlg: "reno"})
		var flows []*harness.CCPFlow
		for i := 1; i <= n; i++ {
			f := net.AddCCPFlow(netsim.FlowID(i), alg, tcp.Options{})
			flows = append(flows, f)
			f.Conn.Start()
		}
		var rtts *trace.Series
		rtts = sampleRTT(net, flows[0].Conn, 50*time.Millisecond, dur)
		net.Run(dur)
		var shares []float64
		for _, f := range flows {
			shares = append(shares, float64(f.Receiver.Delivered()))
		}
		var med time.Duration
		if rtts.Len() > 0 {
			var xs []float64
			for _, p := range rtts.Points() {
				xs = append(xs, p.V)
			}
			med = time.Duration(median(xs) * float64(time.Second))
		}
		return net.Utilization(dur), trace.JainFairness(shares),
			net.Path.Forward.Stats().DroppedOverflow, med
	}

	res.Group.Utilization, res.Group.Fairness, res.Group.Drops, res.Group.MedianRTT = run(true)
	res.Independent.Utilization, res.Independent.Fairness, res.Independent.Drops, res.Independent.MedianRTT = run(false)
	return res
}

// String renders the comparison.
func (r AblGroupResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (§5): group congestion management — %d flows, one bottleneck\n\n", r.Flows)
	fmt.Fprintf(&b, "  %-14s %12s %10s %8s %12s\n", "mode", "utilization", "fairness", "drops", "medianRTT")
	fmt.Fprintf(&b, "  %-14s %11.1f%% %10.3f %8d %12v\n", "cm aggregate",
		r.Group.Utilization*100, r.Group.Fairness, r.Group.Drops, r.Group.MedianRTT)
	fmt.Fprintf(&b, "  %-14s %11.1f%% %10.3f %8d %12v\n", "independent",
		r.Independent.Utilization*100, r.Independent.Fairness, r.Independent.Drops, r.Independent.MedianRTT)
	return b.String()
}
