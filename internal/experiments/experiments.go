// Package experiments reproduces every table and figure in the paper's
// evaluation (§3), plus the ablations DESIGN.md calls out. Each experiment
// is a pure function from a config to a result struct with a String()
// rendering, so the same code backs `cmd/ccp-sim`, the test suite, and the
// root benchmarks.
package experiments

import (
	"fmt"
	"time"

	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
	"github.com/ccp-repro/ccp/internal/trace"
)

// RunSummary is the per-run metric set Figure 3's caption reports:
// utilization, median RTT, and goodput.
type RunSummary struct {
	Utilization float64
	MedianRTT   time.Duration
	Goodput     float64 // payload bytes/sec
	Retransmits int
	Timeouts    int
}

func (r RunSummary) String() string {
	return fmt.Sprintf("util=%.1f%% medianRTT=%.1fms goodput=%.2fMbps retx=%d",
		r.Utilization*100, float64(r.MedianRTT)/float64(time.Millisecond),
		r.Goodput*8/1e6, r.Retransmits)
}

// sampleCwnd records a flow's congestion window every interval.
func sampleCwnd(net *harness.Net, conn *tcp.Conn, interval, until time.Duration) *trace.Series {
	s := trace.NewSeries("cwnd", "bytes")
	var tick func()
	tick = func() {
		s.Add(net.Sim.Now(), float64(conn.Cwnd()))
		if net.Sim.Now() < until {
			net.Sim.Schedule(interval, tick)
		}
	}
	net.Sim.Schedule(0, tick)
	return s
}

// sampleRTT records a flow's smoothed RTT every interval (a proxy for the
// per-packet RTT distribution the paper's median comes from).
func sampleRTT(net *harness.Net, conn *tcp.Conn, interval, until time.Duration) *trace.Series {
	s := trace.NewSeries("srtt", "seconds")
	var tick func()
	tick = func() {
		if rtt := conn.SRTT(); rtt > 0 {
			s.Add(net.Sim.Now(), rtt.Seconds())
		}
		if net.Sim.Now() < until {
			net.Sim.Schedule(interval, tick)
		}
	}
	net.Sim.Schedule(0, tick)
	return s
}

// sampleThroughput records a receiver's delivery rate in fixed bins.
func sampleThroughput(net *harness.Net, recv *tcp.Receiver, bin, until time.Duration) *trace.Series {
	s := trace.NewSeries("throughput", "bytes_per_sec")
	var prev int64
	var tick func()
	tick = func() {
		cur := recv.Delivered()
		s.Add(net.Sim.Now(), float64(cur-prev)/bin.Seconds())
		prev = cur
		if net.Sim.Now() < until {
			net.Sim.Schedule(bin, tick)
		}
	}
	net.Sim.Schedule(bin, tick)
	return s
}

// summarize computes the RunSummary for one flow after a run of dur.
func summarize(net *harness.Net, f *tcp.Flow, rtts *trace.Series, dur time.Duration) RunSummary {
	var med time.Duration
	if rtts != nil && rtts.Len() > 0 {
		var samples []float64
		for _, p := range rtts.Points() {
			samples = append(samples, p.V)
		}
		med = time.Duration(median(samples) * float64(time.Second))
	}
	st := f.Conn.Stats()
	return RunSummary{
		Utilization: net.Utilization(dur),
		MedianRTT:   med,
		Goodput:     float64(f.Receiver.Delivered()) / dur.Seconds(),
		Retransmits: st.Retransmits,
		Timeouts:    st.Timeouts,
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// insertion sort: series are small (thousands)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}

// oneBDPLink builds the canonical evaluation link: rate, RTT/2 propagation
// each way, one BDP of drop-tail buffer.
func oneBDPLink(rateBps float64, rtt time.Duration) netsim.LinkConfig {
	return netsim.LinkConfig{
		RateBps:    rateBps,
		Delay:      rtt / 2,
		QueueBytes: harness.BDPBytes(rateBps, rtt),
	}
}
