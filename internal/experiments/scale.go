package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/proto"
	ccpruntime "github.com/ccp-repro/ccp/internal/runtime"
	"github.com/ccp-repro/ccp/internal/stats"
)

// ScaleConfig parameterizes the flow-scale benchmark: the §4 argument that a
// user-space agent scales to many flows once per-report IPC cost is
// amortized by batching. Unlike the figure experiments this is a real
// measurement (wall clock, goroutines, a real transport), not a simulation:
// a closed-loop load generator drives 1→1000 flows through the sharded
// agent runtime over an in-process transport and measures report throughput,
// report-to-decision latency, and the IPC message reduction batching buys.
type ScaleConfig struct {
	// FlowCounts are the load steps (default 1, 10, 100, 1000).
	FlowCounts []int
	// ReportsPerFlow is the closed-loop depth per flow per step (default 200).
	ReportsPerFlow int
	// Shards is the runtime's shard count (default GOMAXPROCS, min 2).
	Shards int
	// BatchInterval is the datapath-side coalescing window for the batched
	// condition (default 1ms — roughly one datacenter RTT, the paper's
	// natural control interval).
	BatchInterval time.Duration
	// MaxBatchMsgs caps a coalesced frame (default 64).
	MaxBatchMsgs int
	// Seed makes generated report contents deterministic (default 1).
	Seed int64
	// Timeout aborts a wedged step (default 60s).
	Timeout time.Duration
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.FlowCounts) == 0 {
		c.FlowCounts = []int{1, 10, 100, 1000}
	}
	if c.ReportsPerFlow == 0 {
		c.ReportsPerFlow = 200
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards < 2 {
			c.Shards = 2
		}
	}
	if c.BatchInterval == 0 {
		c.BatchInterval = time.Millisecond
	}
	if c.MaxBatchMsgs == 0 {
		c.MaxBatchMsgs = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// ScalePoint is one load step's measurements.
type ScalePoint struct {
	Flows   int `json:"flows"`
	Reports int `json:"reports"` // total reports processed at this step

	// Setup throughput: flow announcements per second.
	SetupSec    float64 `json:"setup_sec"`
	FlowsPerSec float64 `json:"flows_per_sec"`

	// Steady-state report throughput (batched condition).
	ElapsedSec    float64 `json:"elapsed_sec"`
	ReportsPerSec float64 `json:"reports_per_sec"`

	// Report-to-decision latency in microseconds (batched condition):
	// the closed-loop time from generating a report to observing the
	// agent's decision for it, including coalescing staleness.
	LatencyP50Us float64 `json:"latency_p50_us"`
	LatencyP99Us float64 `json:"latency_p99_us"`
	LatencyMaxUs float64 `json:"latency_max_us"`

	// IPC accounting: wire frames carrying the same logical report stream
	// without and with coalescing, and the resulting reduction factor.
	WireMsgsUnbatched int64   `json:"wire_msgs_unbatched"`
	WireMsgsBatched   int64   `json:"wire_msgs_batched"`
	IPCReduction      float64 `json:"ipc_reduction"`

	// MeanBatch is the average reports per batched frame.
	MeanBatch float64 `json:"mean_batch"`
}

// ScaleResult is the benchmark output (serialized to BENCH_scale.json).
type ScaleResult struct {
	Config         ScaleConfig `json:"-"`
	Shards         int         `json:"shards"`
	GOMAXPROCS     int         `json:"gomaxprocs"`
	BatchMs        float64     `json:"batch_interval_ms"`
	ReportsPerFlow int         `json:"reports_per_flow"`
	Seed           int64       `json:"seed"`
	// GitSHA records the commit the benchmark ran at, so a committed
	// BENCH_scale.json can be traced to the code that produced it. Filled in
	// by cmd/ccp-loadgen; empty when the tree's commit is unknown.
	GitSHA string       `json:"git_sha,omitempty"`
	Points []ScalePoint `json:"points"`
}

// loadAlg is the benchmark's algorithm: exactly one decision per report, so
// the closed loop is well defined.
type loadAlg struct{}

func (loadAlg) Name() string                                   { return "load" }
func (loadAlg) Init(f *core.Flow)                              {}
func (loadAlg) OnMeasurement(f *core.Flow, m core.Measurement) { _ = f.SetCwnd(int(m.Seq)*1448 + 1448) }
func (loadAlg) OnUrgent(f *core.Flow, u core.UrgentEvent)      {}

// Scale runs every load step under both IPC conditions.
func Scale(cfg ScaleConfig) (ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := ScaleResult{
		Config:         cfg,
		Shards:         cfg.Shards,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		BatchMs:        float64(cfg.BatchInterval) / float64(time.Millisecond),
		ReportsPerFlow: cfg.ReportsPerFlow,
		Seed:           cfg.Seed,
	}
	for _, flows := range cfg.FlowCounts {
		plain, err := scaleStep(cfg, flows, false)
		if err != nil {
			return res, fmt.Errorf("scale %d flows unbatched: %w", flows, err)
		}
		batched, err := scaleStep(cfg, flows, true)
		if err != nil {
			return res, fmt.Errorf("scale %d flows batched: %w", flows, err)
		}
		p := batched.point
		p.WireMsgsUnbatched = plain.wireMsgs
		p.WireMsgsBatched = batched.wireMsgs
		if batched.wireMsgs > 0 {
			p.IPCReduction = float64(plain.wireMsgs) / float64(batched.wireMsgs)
		}
		if batched.wireMsgs > 0 {
			p.MeanBatch = float64(p.Reports) / float64(batched.wireMsgs)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// stepResult is one condition's raw numbers.
type stepResult struct {
	point    ScalePoint
	wireMsgs int64
}

// scaleStep drives one load step: flows × reportsPerFlow closed-loop reports
// through the sharded runtime over a channel transport.
func scaleStep(cfg ScaleConfig, flows int, batch bool) (stepResult, error) {
	reg := core.NewRegistry()
	reg.Register("load", func() core.Alg { return loadAlg{} })
	rt, err := ccpruntime.New(ccpruntime.Config{
		Shards: cfg.Shards,
		Agent:  core.AgentConfig{Registry: reg, DefaultAlg: "load"},
	})
	if err != nil {
		return stepResult{}, err
	}
	defer rt.Close()

	depth := flows + cfg.MaxBatchMsgs + 64
	dpSide, agentSide := ipc.ChanPair(depth)
	defer dpSide.Close()
	defer agentSide.Close()
	go rt.ServeTransport(agentSide) //lint:ownership runtime serves a real transport in this wall-clock benchmark

	// out feeds the sender goroutine, which owns coalescing and the wire.
	out := make(chan proto.Msg, depth)
	var wireMsgs int64
	senderDone := make(chan error, 1)
	go func() { //lint:ownership sender goroutine owns the wire in this wall-clock benchmark
		senderDone <- runSender(dpSide, out, batch, cfg.BatchInterval, cfg.MaxBatchMsgs, &wireMsgs)
	}()

	// Announce all flows and wait until the runtime has adopted them; Init
	// sends no reply, so adoption is observed via FlowCount.
	setupStart := time.Now() //lint:ownership wall-clock measurement is the benchmark output
	for sid := 1; sid <= flows; sid++ {
		out <- &proto.Create{SID: uint32(sid), MSS: 1448, InitCwnd: 14480}
	}
	deadline := time.Now().Add(cfg.Timeout) //lint:ownership wall-clock deadline for wedge detection
	for rt.FlowCount() < flows {
		if time.Now().After(deadline) { //lint:ownership wall-clock deadline for wedge detection
			return stepResult{}, fmt.Errorf("flow setup wedged at %d/%d", rt.FlowCount(), flows)
		}
		runtime.Gosched()
	}
	setupSec := time.Since(setupStart).Seconds() //lint:ownership wall-clock measurement is the benchmark output

	// Closed loop: one outstanding report per flow. The receiver routes each
	// decision back to its flow, records the report→decision latency, and
	// kicks the flow's next report. Latency samples accumulate per shard and
	// merge after the loop (stats.Samples.Merge).
	sentAt := make([]time.Time, flows+1)
	seq := make([]uint32, flows+1)
	done := make([]bool, flows+1)
	perShard := make([]*stats.Samples, cfg.Shards)
	for i := range perShard {
		perShard[i] = &stats.Samples{}
	}
	rng := cfg.Seed
	nextField := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(uint64(rng)>>40) / float64(1<<24)
	}
	kick := func(sid int) {
		seq[sid]++
		sentAt[sid] = time.Now() //lint:ownership report-to-decision latency is measured in wall time
		out <- &proto.Measurement{
			SID: uint32(sid), Seq: seq[sid],
			Fields: []float64{nextField(), nextField(), nextField(), 1448, 0, 0, nextField()},
		}
	}

	loopStart := time.Now() //lint:ownership wall-clock measurement is the benchmark output
	for sid := 1; sid <= flows; sid++ {
		kick(sid)
	}
	remaining := flows
	for remaining > 0 {
		if time.Now().After(deadline) { //lint:ownership wall-clock deadline for wedge detection
			return stepResult{}, fmt.Errorf("closed loop wedged with %d flows outstanding", remaining)
		}
		data, err := dpSide.Recv()
		if err != nil {
			return stepResult{}, fmt.Errorf("loadgen recv: %w", err)
		}
		m, err := proto.Unmarshal(data)
		if err != nil {
			return stepResult{}, fmt.Errorf("loadgen decode: %w", err)
		}
		for _, sub := range proto.Split(m) {
			sc, ok := sub.(*proto.SetCwnd)
			if !ok {
				continue
			}
			sid := int(sc.SID)
			if sid < 1 || sid > flows || done[sid] {
				continue
			}
			perShard[sid%cfg.Shards].Add(float64(time.Since(sentAt[sid]).Microseconds())) //lint:ownership report-to-decision latency is measured in wall time
			if seq[sid] >= uint32(cfg.ReportsPerFlow) {
				done[sid] = true
				remaining--
				continue
			}
			kick(sid)
		}
	}
	elapsed := time.Since(loopStart).Seconds() //lint:ownership wall-clock measurement is the benchmark output

	close(out)
	if err := <-senderDone; err != nil {
		return stepResult{}, err
	}
	rt.Drain()
	st := rt.Stats()
	wantReports := flows * cfg.ReportsPerFlow
	if st.Agent.Measurements != wantReports {
		return stepResult{}, fmt.Errorf("runtime processed %d/%d reports (stats=%+v)",
			st.Agent.Measurements, wantReports, st)
	}

	lat := &stats.Samples{}
	for _, s := range perShard {
		lat.Merge(s)
	}
	return stepResult{
		point: ScalePoint{
			Flows:         flows,
			Reports:       wantReports,
			SetupSec:      setupSec,
			FlowsPerSec:   float64(flows) / setupSec,
			ElapsedSec:    elapsed,
			ReportsPerSec: float64(wantReports) / elapsed,
			LatencyP50Us:  lat.Percentile(50),
			LatencyP99Us:  lat.Percentile(99),
			LatencyMaxUs:  lat.Max(),
		},
		wireMsgs: wireMsgs,
	}, nil
}

// runSender owns the datapath side of the wire: it coalesces queued reports
// into batch frames (batch condition) or ships every message individually,
// counting wire frames either way. Creates always ship immediately — only
// reports coalesce, mirroring the datapath runtime's policy.
func runSender(tr ipc.Transport, out <-chan proto.Msg, batch bool, interval time.Duration, maxBatch int, wireMsgs *int64) error {
	var pending []proto.Msg
	var timer *time.Timer
	var timerC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	ship := func(m proto.Msg) error {
		data, err := proto.Marshal(m)
		if err != nil {
			return err
		}
		*wireMsgs++
		return tr.Send(data)
	}
	flush := func() error {
		stopTimer()
		if len(pending) == 0 {
			return nil
		}
		var err error
		if len(pending) == 1 {
			err = ship(pending[0])
		} else {
			msgs := make([]proto.Msg, len(pending))
			copy(msgs, pending)
			err = ship(&proto.Batch{Msgs: msgs})
		}
		pending = pending[:0]
		return err
	}
	for {
		select {
		case m, ok := <-out:
			if !ok {
				return flush()
			}
			if !batch {
				if err := ship(m); err != nil {
					return err
				}
				continue
			}
			if _, isCreate := m.(*proto.Create); isCreate {
				if err := flush(); err != nil {
					return err
				}
				if err := ship(m); err != nil {
					return err
				}
				continue
			}
			pending = append(pending, m)
			if len(pending) >= maxBatch {
				if err := flush(); err != nil {
					return err
				}
				continue
			}
			if timer == nil {
				timer = time.NewTimer(interval) //lint:ownership batch flush interval over a real transport
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			if err := flush(); err != nil {
				return err
			}
		}
	}
}

// WriteJSON serializes the result (indented, stable field order) to path.
func (r ScaleResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the scaling table.
func (r ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Flow-scale benchmark: sharded runtime (%d shards), batch interval %.2fms\n",
		r.Shards, r.BatchMs)
	fmt.Fprintf(&b, "  %-7s %12s %12s %12s %12s %10s %10s\n",
		"flows", "reports/s", "p50 lat", "p99 lat", "ipc msgs", "reduction", "meanbatch")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-7d %12.0f %10.0fµs %10.0fµs %12d %9.1fx %10.1f\n",
			p.Flows, p.ReportsPerSec, p.LatencyP50Us, p.LatencyP99Us,
			p.WireMsgsBatched, p.IPCReduction, p.MeanBatch)
	}
	return b.String()
}
