package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/ipc/shmring"
	"github.com/ccp-repro/ccp/internal/proto"
	ccpruntime "github.com/ccp-repro/ccp/internal/runtime"
	"github.com/ccp-repro/ccp/internal/stats"
)

// ScaleConfig parameterizes the flow-scale benchmark: the §4 argument that a
// user-space agent scales to many flows once per-report IPC cost is
// amortized by batching. Unlike the figure experiments this is a real
// measurement (wall clock, goroutines, a real transport), not a simulation:
// a closed-loop load generator drives the configured flow counts through the
// sharded agent runtime and measures report throughput, report-to-decision
// latency, and the IPC message reduction batching buys.
//
// Two transports are supported. "chan" is the original in-process channel
// pair, one connection, served by a dedicated goroutine. "shmring" is the
// shared-memory ring lane: Conns connections striped across the flows
// (flow sid lands on connection (sid-1) mod Conns), all served by ONE
// agent-side goroutine multiplexed over the rings' doorbells
// (Runtime.ServeSet) — the 100k-flow serve topology.
type ScaleConfig struct {
	// FlowCounts are the load steps (default 1, 10, 100, 1000).
	FlowCounts []int
	// ReportsPerFlow is the closed-loop depth per flow per step (default 200).
	ReportsPerFlow int
	// Shards is the runtime's shard count (default GOMAXPROCS, min 2).
	Shards int
	// Transport selects the lane: "chan" (default) or "shmring".
	Transport string
	// Conns is the number of datapath connections (shmring only; default 4).
	// "chan" always uses one connection.
	Conns int
	// MaxOutstanding caps the reports in flight across all flows. 0 keeps
	// the original closed loop — one outstanding report per flow — whose
	// queueing delay necessarily grows linearly with the flow count (10k
	// flows each awaiting one decision from a service that completes ~1M/s
	// is ~10ms of queue by Little's law, regardless of transport). A bounded
	// window holds offered load constant while the flow TABLE scales, which
	// is the ROADMAP metric: p99 report-to-decision latency flat as flows
	// grow. The committed BENCH_scale.json uses 256.
	MaxOutstanding int
	// BatchInterval is the datapath-side coalescing window for the batched
	// condition (default 1ms — roughly one datacenter RTT, the paper's
	// natural control interval).
	BatchInterval time.Duration
	// MaxBatchMsgs caps a coalesced frame (default 64).
	MaxBatchMsgs int
	// Seed makes generated report contents deterministic (default 1).
	Seed int64
	// Timeout aborts a wedged step (default 60s; raise it for 100k-flow
	// runs, which move millions of reports per condition).
	Timeout time.Duration
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.FlowCounts) == 0 {
		c.FlowCounts = []int{1, 10, 100, 1000}
	}
	if c.ReportsPerFlow == 0 {
		c.ReportsPerFlow = 200
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards < 2 {
			c.Shards = 2
		}
	}
	if c.Transport == "" {
		c.Transport = "chan"
	}
	if c.Transport == "chan" {
		c.Conns = 1
	} else if c.Conns == 0 {
		c.Conns = 4
	}
	if c.BatchInterval == 0 {
		c.BatchInterval = time.Millisecond
	}
	if c.MaxBatchMsgs == 0 {
		c.MaxBatchMsgs = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// ScalePoint is one load step's measurements.
type ScalePoint struct {
	Flows   int `json:"flows"`
	Reports int `json:"reports"` // total reports processed at this step

	// Setup throughput: flow announcements per second.
	SetupSec    float64 `json:"setup_sec"`
	FlowsPerSec float64 `json:"flows_per_sec"`

	// Steady-state report throughput (batched condition).
	ElapsedSec    float64 `json:"elapsed_sec"`
	ReportsPerSec float64 `json:"reports_per_sec"`

	// Report-to-decision latency in microseconds (batched condition):
	// the closed-loop time from generating a report to observing the
	// agent's decision for it, including coalescing staleness.
	LatencyP50Us float64 `json:"latency_p50_us"`
	LatencyP99Us float64 `json:"latency_p99_us"`
	LatencyMaxUs float64 `json:"latency_max_us"`

	// IPC accounting: wire frames carrying the same logical report stream
	// without and with coalescing, and the resulting reduction factor.
	WireMsgsUnbatched int64   `json:"wire_msgs_unbatched"`
	WireMsgsBatched   int64   `json:"wire_msgs_batched"`
	IPCReduction      float64 `json:"ipc_reduction"`

	// MeanBatch is the average reports per batched frame.
	MeanBatch float64 `json:"mean_batch"`
}

// ScaleResult is the benchmark output (serialized to BENCH_scale.json).
type ScaleResult struct {
	Config         ScaleConfig `json:"-"`
	Shards         int         `json:"shards"`
	GOMAXPROCS     int         `json:"gomaxprocs"`
	Transport      string      `json:"transport"`
	Conns          int         `json:"conns"`
	MaxOutstanding int         `json:"max_outstanding"`
	BatchMs        float64     `json:"batch_interval_ms"`
	ReportsPerFlow int         `json:"reports_per_flow"`
	Seed           int64       `json:"seed"`
	// GOGC records a non-default GC percent the run was taken with (the
	// loadgen's -gogc flag; 0 means the runtime default). On a small heap
	// the default GC cadence injects ~1ms pauses into the latency tail, so
	// tail-focused rows are taken with a higher setting — recorded here so
	// the number's provenance is explicit.
	GOGC int `json:"gogc,omitempty"`
	// GitSHA records the commit the benchmark ran at, so a committed
	// BENCH_scale.json can be traced to the code that produced it. Filled in
	// by cmd/ccp-loadgen; empty when the tree's commit is unknown.
	GitSHA string       `json:"git_sha,omitempty"`
	Points []ScalePoint `json:"points"`
}

// loadAlg is the benchmark's algorithm: exactly one decision per report, so
// the closed loop is well defined.
type loadAlg struct{}

func (loadAlg) Name() string                                   { return "load" }
func (loadAlg) Init(f *core.Flow)                              {}
func (loadAlg) OnMeasurement(f *core.Flow, m core.Measurement) { _ = f.SetCwnd(int(m.Seq)*1448 + 1448) }
func (loadAlg) OnUrgent(f *core.Flow, u core.UrgentEvent)      {}

// Scale runs every load step under both IPC conditions.
func Scale(cfg ScaleConfig) (ScaleResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport != "chan" && cfg.Transport != "shmring" {
		return ScaleResult{}, fmt.Errorf("unknown scale transport %q (want chan or shmring)", cfg.Transport)
	}
	res := ScaleResult{
		Config:         cfg,
		Shards:         cfg.Shards,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Transport:      cfg.Transport,
		Conns:          cfg.Conns,
		MaxOutstanding: cfg.MaxOutstanding,
		BatchMs:        float64(cfg.BatchInterval) / float64(time.Millisecond),
		ReportsPerFlow: cfg.ReportsPerFlow,
		Seed:           cfg.Seed,
	}
	for _, flows := range cfg.FlowCounts {
		plain, err := scaleStep(cfg, flows, false)
		if err != nil {
			return res, fmt.Errorf("scale %d flows unbatched: %w", flows, err)
		}
		batched, err := scaleStep(cfg, flows, true)
		if err != nil {
			return res, fmt.Errorf("scale %d flows batched: %w", flows, err)
		}
		p := batched.point
		p.WireMsgsUnbatched = plain.wireMsgs
		p.WireMsgsBatched = batched.wireMsgs
		if batched.wireMsgs > 0 {
			p.IPCReduction = float64(plain.wireMsgs) / float64(batched.wireMsgs)
		}
		if batched.wireMsgs > 0 {
			p.MeanBatch = float64(p.Reports) / float64(batched.wireMsgs)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// stepResult is one condition's raw numbers.
type stepResult struct {
	point    ScalePoint
	wireMsgs int64
}

// scaleStep drives one load step: flows × reportsPerFlow closed-loop reports
// through the sharded runtime over the configured transport. Flows are
// striped across connections; each connection runs an independent closed
// loop (its own sender, receiver, and latency samples) over its flow subset,
// and the results merge after every loop drains.
func scaleStep(cfg ScaleConfig, flows int, batch bool) (stepResult, error) {
	reg := core.NewRegistry()
	reg.Register("load", func() core.Alg { return loadAlg{} })
	rt, err := ccpruntime.New(ccpruntime.Config{
		Shards: cfg.Shards,
		Agent:  core.AgentConfig{Registry: reg, DefaultAlg: "load"},
	})
	if err != nil {
		return stepResult{}, err
	}
	defer rt.Close()

	dp, cleanup, err := startTransports(cfg, rt, flows)
	if err != nil {
		return stepResult{}, err
	}
	defer cleanup()

	deadline := time.Now().Add(cfg.Timeout) //lint:ownership wall-clock deadline for wedge detection
	sentAt := make([]time.Time, flows+1)
	seq := make([]uint32, flows+1)
	done := make([]bool, flows+1)

	workers := make([]*scaleWorker, len(dp))
	for ci, tr := range dp {
		w := &scaleWorker{
			tr:       tr,
			reports:  cfg.ReportsPerFlow,
			deadline: deadline,
			sentAt:   sentAt,
			seq:      seq,
			done:     done,
			lat:      &stats.Samples{},
			rng:      cfg.Seed + int64(ci),
		}
		// Stripe: flow sid belongs to connection (sid-1) mod Conns. Each
		// worker touches only its own flows' slots in the shared arrays, so
		// the workers never contend.
		for sid := ci + 1; sid <= flows; sid += len(dp) {
			w.sids = append(w.sids, sid)
		}
		if cfg.MaxOutstanding > 0 {
			w.window = cfg.MaxOutstanding / len(dp)
			if w.window < 1 {
				w.window = 1
			}
		} else {
			w.window = len(w.sids) // legacy: one outstanding report per flow
		}
		workers[ci] = w
	}

	// Workers announce their flows and run their closed loops; the main
	// goroutine measures setup throughput by watching flow adoption (Create
	// sends no reply). Per-flow ordering makes the overlap safe: a flow's
	// first report follows its Create on the same connection.
	setupStart := time.Now() //lint:ownership wall-clock measurement is the benchmark output
	var wg sync.WaitGroup
	errs := make(chan error, len(workers))
	for _, w := range workers {
		wg.Add(1)
		go func(w *scaleWorker) { //lint:ownership closed-loop workers drive a real transport in this wall-clock benchmark
			defer wg.Done()
			if err := w.run(batch, cfg.BatchInterval, cfg.MaxBatchMsgs); err != nil {
				errs <- err
			}
		}(w)
	}
	setupSec := 0.0
	for rt.FlowCount() < flows {
		if time.Now().After(deadline) { //lint:ownership wall-clock deadline for wedge detection
			return stepResult{}, fmt.Errorf("flow setup wedged at %d/%d", rt.FlowCount(), flows)
		}
		runtime.Gosched()
	}
	setupSec = time.Since(setupStart).Seconds() //lint:ownership wall-clock measurement is the benchmark output
	wg.Wait()
	elapsed := time.Since(setupStart).Seconds() //lint:ownership wall-clock measurement is the benchmark output
	close(errs)
	if err := <-errs; err != nil {
		return stepResult{}, err
	}

	rt.Drain()
	st := rt.Stats()
	wantReports := flows * cfg.ReportsPerFlow
	if st.Agent.Measurements != wantReports {
		return stepResult{}, fmt.Errorf("runtime processed %d/%d reports (stats=%+v)",
			st.Agent.Measurements, wantReports, st)
	}

	lat := &stats.Samples{}
	var wireMsgs int64
	for _, w := range workers {
		lat.Merge(w.lat)
		wireMsgs += w.wireMsgs
	}
	return stepResult{
		point: ScalePoint{
			Flows:         flows,
			Reports:       wantReports,
			SetupSec:      setupSec,
			FlowsPerSec:   float64(flows) / setupSec,
			ElapsedSec:    elapsed,
			ReportsPerSec: float64(wantReports) / elapsed,
			LatencyP50Us:  lat.Percentile(50),
			LatencyP99Us:  lat.Percentile(99),
			LatencyMaxUs:  lat.Max(),
		},
		wireMsgs: wireMsgs,
	}, nil
}

// startTransports builds the datapath-side connections and starts the
// agent-side serving: one goroutine per connection for "chan", one
// ServeSet goroutine multiplexing every ring for "shmring".
func startTransports(cfg ScaleConfig, rt *ccpruntime.Runtime, flows int) ([]ipc.Transport, func(), error) {
	switch cfg.Transport {
	case "chan":
		depth := flows + cfg.MaxBatchMsgs + 64
		dpSide, agentSide := ipc.ChanPair(depth)
		go rt.ServeTransport(agentSide) //lint:ownership runtime serves a real transport in this wall-clock benchmark
		return []ipc.Transport{dpSide}, func() {
			dpSide.Close()
			agentSide.Close()
		}, nil
	case "shmring":
		dir, err := os.MkdirTemp("", "ccp-scale-")
		if err != nil {
			return nil, nil, err
		}
		mux, err := shmring.NewMux(filepath.Join(dir, "mux.bell"))
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		dp := make([]ipc.Transport, 0, cfg.Conns)
		var agentEnds []*shmring.Endpoint
		cleanup := func() {
			for _, t := range dp {
				t.Close()
			}
			for _, e := range agentEnds {
				e.Close()
			}
			mux.Close()
			os.RemoveAll(dir)
		}
		for ci := 0; ci < cfg.Conns; ci++ {
			a, b, err := shmring.Pair(filepath.Join(dir, fmt.Sprintf("ring%d", ci)),
				shmring.Options{}, shmring.Options{Bell: mux.Bell()})
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			if err := mux.Adopt(b); err != nil {
				cleanup()
				return nil, nil, err
			}
			dp = append(dp, a)
			agentEnds = append(agentEnds, b)
		}
		go rt.ServeSet(mux) //lint:ownership runtime serves real transports in this wall-clock benchmark
		return dp, cleanup, nil
	default:
		return nil, nil, fmt.Errorf("unknown scale transport %q", cfg.Transport)
	}
}

// scaleWorker is one connection's closed loop: it announces its flow subset,
// keeps at most window reports in flight across them, and records a
// report-to-decision latency sample per decision. The sentAt/seq/done arrays
// are shared across workers but indexed only at this worker's flow IDs.
type scaleWorker struct {
	tr       ipc.Transport
	sids     []int
	window   int
	reports  int
	deadline time.Time
	sentAt   []time.Time
	seq      []uint32
	done     []bool
	lat      *stats.Samples
	rng      int64
	wireMsgs int64
}

func (w *scaleWorker) run(batch bool, interval time.Duration, maxBatch int) error {
	out := make(chan proto.Msg, w.window+len(w.sids)+64)
	senderDone := make(chan error, 1)
	go func() { //lint:ownership sender goroutine owns the wire in this wall-clock benchmark
		senderDone <- runSender(w.tr, out, batch, interval, maxBatch, &w.wireMsgs)
	}()
	loopErr := w.loop(out)
	close(out)
	sendErr := <-senderDone
	if loopErr != nil {
		return loopErr
	}
	return sendErr
}

func (w *scaleWorker) loop(out chan<- proto.Msg) error {
	for _, sid := range w.sids {
		out <- &proto.Create{SID: uint32(sid), MSS: 1448, InitCwnd: 14480}
	}
	nextField := func() float64 {
		w.rng = w.rng*6364136223846793005 + 1442695040888963407
		return float64(uint64(w.rng)>>40) / float64(1<<24)
	}
	kick := func(sid int) {
		w.seq[sid]++
		w.sentAt[sid] = time.Now() //lint:ownership report-to-decision latency is measured in wall time
		out <- &proto.Measurement{
			SID: uint32(sid), Seq: w.seq[sid],
			Fields: []float64{nextField(), nextField(), nextField(), 1448, 0, 0, nextField()},
		}
	}
	// ready is a fixed-capacity FIFO of flows awaiting their next kick; a
	// flow is queued at most once, so len(sids) bounds it.
	ready := newIntQueue(len(w.sids))
	for _, sid := range w.sids {
		ready.push(sid)
	}
	inflight := 0
	pump := func() {
		for inflight < w.window && ready.len() > 0 {
			kick(ready.pop())
			inflight++
		}
	}
	pump()
	var dec proto.Decoder
	remaining := len(w.sids)
	for remaining > 0 {
		if time.Now().After(w.deadline) { //lint:ownership wall-clock deadline for wedge detection
			return fmt.Errorf("closed loop wedged with %d flows unfinished", remaining)
		}
		f, err := ipc.RecvFrame(w.tr)
		if err != nil {
			return fmt.Errorf("loadgen recv: %w", err)
		}
		m, err := dec.Unmarshal(f.B)
		if err != nil {
			f.Release()
			return fmt.Errorf("loadgen decode: %w", err)
		}
		for _, sub := range proto.Split(m) {
			sc, ok := sub.(*proto.SetCwnd)
			if !ok {
				continue
			}
			sid := int(sc.SID)
			if sid < 1 || sid >= len(w.done) || w.done[sid] {
				continue
			}
			w.lat.Add(float64(time.Since(w.sentAt[sid]).Microseconds())) //lint:ownership report-to-decision latency is measured in wall time
			inflight--
			if w.seq[sid] >= uint32(w.reports) {
				w.done[sid] = true
				remaining--
				continue
			}
			ready.push(sid)
		}
		f.Release()
		pump()
	}
	return nil
}

// intQueue is a fixed-capacity ring-buffer FIFO (no per-push allocation; the
// closed loop pushes once per decision for millions of decisions).
type intQueue struct {
	buf        []int
	head, size int
}

func newIntQueue(capacity int) *intQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &intQueue{buf: make([]int, capacity)}
}

func (q *intQueue) len() int { return q.size }

func (q *intQueue) push(v int) {
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
}

func (q *intQueue) pop() int {
	v := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return v
}

// runSender owns the datapath side of the wire: it coalesces queued reports
// into batch frames (batch condition) or ships every message individually,
// counting wire frames either way. Creates always ship immediately — only
// reports coalesce, mirroring the datapath runtime's policy.
func runSender(tr ipc.Transport, out <-chan proto.Msg, batch bool, interval time.Duration, maxBatch int, wireMsgs *int64) error {
	var pending []proto.Msg
	var timer *time.Timer
	var timerC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	ship := func(m proto.Msg) error {
		data, err := proto.Marshal(m)
		if err != nil {
			return err
		}
		*wireMsgs++
		return tr.Send(data)
	}
	flush := func() error {
		stopTimer()
		if len(pending) == 0 {
			return nil
		}
		var err error
		if len(pending) == 1 {
			err = ship(pending[0])
		} else {
			msgs := make([]proto.Msg, len(pending))
			copy(msgs, pending)
			err = ship(&proto.Batch{Msgs: msgs})
		}
		pending = pending[:0]
		return err
	}
	for {
		select {
		case m, ok := <-out:
			if !ok {
				return flush()
			}
			if !batch {
				if err := ship(m); err != nil {
					return err
				}
				continue
			}
			if _, isCreate := m.(*proto.Create); isCreate {
				if err := flush(); err != nil {
					return err
				}
				if err := ship(m); err != nil {
					return err
				}
				continue
			}
			pending = append(pending, m)
			if len(pending) >= maxBatch {
				if err := flush(); err != nil {
					return err
				}
				continue
			}
			if timer == nil {
				timer = time.NewTimer(interval) //lint:ownership batch flush interval over a real transport
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			if err := flush(); err != nil {
				return err
			}
		}
	}
}

// WriteJSON serializes the result (indented, stable field order) to path.
func (r ScaleResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the scaling table.
func (r ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Flow-scale benchmark: sharded runtime (%d shards), %s transport (%d conns), batch interval %.2fms, window %d\n",
		r.Shards, r.Transport, r.Conns, r.BatchMs, r.MaxOutstanding)
	fmt.Fprintf(&b, "  %-7s %12s %12s %12s %12s %10s %10s\n",
		"flows", "reports/s", "p50 lat", "p99 lat", "ipc msgs", "reduction", "meanbatch")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-7d %12.0f %10.0fµs %10.0fµs %12d %9.1fx %10.1f\n",
			p.Flows, p.ReportsPerSec, p.LatencyP50Us, p.LatencyP99Us,
			p.WireMsgsBatched, p.IPCReduction, p.MeanBatch)
	}
	return b.String()
}
