package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/ipc/shmring"
	"github.com/ccp-repro/ccp/internal/stats"
)

// Fig2Config parameterizes the Figure 2 reproduction: the CDF of IPC
// round-trip times between the agent and datapath processes, with an idle
// and a heavily loaded CPU. The paper measured Netlink (kernel↔user) and
// Unix domain sockets; Netlink requires a kernel module we cannot load, so
// we measure Unix *datagram* sockets (the closest stdlib analog of
// Netlink's datagram semantics) alongside Unix stream sockets, plus the
// in-process channel transport as a floor. These are real measurements,
// not simulations.
type Fig2Config struct {
	// Samples per condition (paper: 60,000; default lower for test speed).
	Samples int
	// Warmup round trips discarded per condition.
	Warmup int
	// PayloadBytes per message (default 64, a small control message).
	PayloadBytes int
	// BusyWorkers for the loaded condition (default GOMAXPROCS).
	BusyWorkers int
}

func (c Fig2Config) withDefaults() Fig2Config {
	if c.Samples == 0 {
		c.Samples = 60000
	}
	if c.Warmup == 0 {
		c.Warmup = 200
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 64
	}
	return c
}

// Fig2Series is one CDF line of the figure.
type Fig2Series struct {
	Transport string // "unixgram" (netlink substitute), "unix-stream", "chan"
	Busy      bool
	Samples   *stats.Samples // RTTs in nanoseconds
}

// P returns the p-th percentile as a duration.
func (s Fig2Series) P(p float64) time.Duration {
	return time.Duration(s.Samples.Percentile(p))
}

// Fig2Result carries all measured series.
type Fig2Result struct {
	Config Fig2Config
	Series []Fig2Series
}

// Fig2 measures all transports under both CPU conditions.
func Fig2(cfg Fig2Config) (Fig2Result, error) {
	cfg = cfg.withDefaults()
	res := Fig2Result{Config: cfg}
	for _, busy := range []bool{false, true} {
		for _, transport := range []string{"shmring", "unixgram", "unix-stream", "chan"} {
			s, err := fig2Measure(cfg, transport, busy)
			if err != nil {
				return res, fmt.Errorf("fig2 %s busy=%v: %w", transport, busy, err)
			}
			res.Series = append(res.Series, Fig2Series{Transport: transport, Busy: busy, Samples: s})
		}
	}
	return res, nil
}

func fig2Measure(cfg Fig2Config, transport string, busy bool) (*stats.Samples, error) {
	client, cleanup, err := fig2Transport(transport)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if busy {
		stop := ipc.BusyLoad(cfg.BusyWorkers)
		defer stop()
		// Give the load a moment to spread across cores.
		time.Sleep(20 * time.Millisecond) //lint:ownership benchmark warmup: lets BusyLoad spread across cores before measuring
	}
	return ipc.MeasureRTT(client, cfg.Samples, cfg.Warmup, cfg.PayloadBytes)
}

// fig2Transport builds an echo server and client for the named transport.
func fig2Transport(transport string) (ipc.Transport, func(), error) {
	switch transport {
	case "chan":
		a, b := ipc.ChanPair(1)
		go ipc.Echo(b) //lint:ownership echo server for the real-IPC latency benchmark
		return a, func() { a.Close(); b.Close() }, nil
	case "shmring":
		dir, err := os.MkdirTemp("", "ccp-fig2-*")
		if err != nil {
			return nil, nil, err
		}
		a, b, err := shmring.Pair(filepath.Join(dir, "ring"), shmring.Options{}, shmring.Options{})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		go ipc.Echo(b) //lint:ownership echo server for the shared-memory ring latency benchmark
		return a, func() { a.Close(); b.Close(); os.RemoveAll(dir) }, nil
	case "unix-stream":
		dir, err := os.MkdirTemp("", "ccp-fig2-*")
		if err != nil {
			return nil, nil, err
		}
		path := filepath.Join(dir, "echo.sock")
		ln, err := ipc.ListenUnix(path)
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		go func() { //lint:ownership accept loop for the unix-stream echo benchmark
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			ipc.Echo(ipc.NewStream(conn))
		}()
		client, err := ipc.DialUnix(path)
		if err != nil {
			ln.Close()
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return client, func() { client.Close(); ln.Close(); os.RemoveAll(dir) }, nil
	case "unixgram":
		dir, err := os.MkdirTemp("", "ccp-fig2-*")
		if err != nil {
			return nil, nil, err
		}
		a, b, err := ipc.DgramPair(filepath.Join(dir, "a.sock"), filepath.Join(dir, "b.sock"))
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		go ipc.Echo(b) //lint:ownership echo server for the unixgram latency benchmark
		return a, func() { a.Close(); b.Close(); os.RemoveAll(dir) }, nil
	default:
		return nil, nil, fmt.Errorf("unknown transport %q", transport)
	}
}

// String renders percentile rows for each series (the figure's CDF reduced
// to its load-bearing quantiles).
func (r Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: IPC round-trip time CDFs (%d samples per condition)\n", r.Config.Samples)
	b.WriteString("  (paper, idle: p99 48µs netlink / 80µs unix; busy+TurboBoost: 18µs / 35µs)\n")
	b.WriteString("  netlink is substituted by unixgram (same datagram semantics; see DESIGN.md)\n\n")
	fmt.Fprintf(&b, "  %-14s %-6s %10s %10s %10s %10s %10s\n",
		"transport", "cpu", "p10", "p50", "p90", "p99", "p99.9")
	for _, s := range r.Series {
		cpu := "idle"
		if s.Busy {
			cpu = "busy"
		}
		fmt.Fprintf(&b, "  %-14s %-6s %10v %10v %10v %10v %10v\n",
			s.Transport, cpu, s.P(10), s.P(50), s.P(90), s.P(99), s.P(99.9))
	}
	return b.String()
}

// CDF returns n evenly spaced CDF points for the named series.
func (r Fig2Result) CDF(transport string, busy bool, n int) []stats.CDFPoint {
	for _, s := range r.Series {
		if s.Transport == transport && s.Busy == busy {
			return s.Samples.CDF(n)
		}
	}
	return nil
}
