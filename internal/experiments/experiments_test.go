package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/offload"
)

// Experiment tests use scaled-down configurations (lower rates, shorter
// runs) so the suite stays fast; cmd/ccp-sim runs the paper-scale versions.

func TestFig3ShapeHolds(t *testing.T) {
	res := Fig3(Fig3Config{
		RateBps:  100e6,
		Duration: 15 * time.Second,
	})
	// The paper's claim: CCP matches the native implementation — similar
	// utilization (within a few points) and similar median RTT.
	if res.Native.Utilization < 0.85 {
		t.Fatalf("native cubic utilization %.3f", res.Native.Utilization)
	}
	if res.CCP.Utilization < res.Native.Utilization-0.08 {
		t.Fatalf("ccp utilization %.3f far below native %.3f",
			res.CCP.Utilization, res.Native.Utilization)
	}
	dRTT := res.CCP.MedianRTT - res.Native.MedianRTT
	if dRTT < 0 {
		dRTT = -dRTT
	}
	if dRTT > 5*time.Millisecond {
		t.Fatalf("median RTT diverged: ccp=%v native=%v",
			res.CCP.MedianRTT, res.Native.MedianRTT)
	}
	if res.CCPCwnd.Len() == 0 || res.NativeCwnd.Len() == 0 {
		t.Fatal("missing cwnd series")
	}
	out := res.String()
	for _, frag := range []string{"Figure 3", "ccp-cubic", "linux-cubic"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("rendering missing %q", frag)
		}
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	res := Fig4(Fig4Config{
		RateBps:  48e6,
		Duration: 40 * time.Second,
		SecondAt: 15 * time.Second,
	})
	// Both implementations converge: the second flow reaches a fair share.
	if res.CCP.FairnessAfter < 0.85 {
		t.Fatalf("ccp fairness %.3f", res.CCP.FairnessAfter)
	}
	if res.Native.FairnessAfter < 0.85 {
		t.Fatalf("native fairness %.3f", res.Native.FairnessAfter)
	}
	if res.CCP.ConvergedAfter < 0 {
		t.Fatal("ccp flow 2 never converged")
	}
	if res.Native.ConvergedAfter < 0 {
		t.Fatal("native flow 2 never converged")
	}
	if res.CCP.Utilization < 0.85 || res.Native.Utilization < 0.85 {
		t.Fatalf("utilization ccp=%.3f native=%.3f",
			res.CCP.Utilization, res.Native.Utilization)
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	res := Fig5(Fig5Config{
		RateBps:  2e9, // scaled 10G -> 2G so per-packet runs stay fast
		Duration: 2 * time.Second,
		Runs:     1,
		Costs:    scaledCosts(5), // keep CPU-per-byte comparable at 1/5 rate
	})
	on := res.OffloadsOn
	tsoOff := res.TSOOff
	allOff := res.AllOff
	// Offloads on: both near line rate.
	if on[0].AchievedBps < 0.85*2e9 || on[1].AchievedBps < 0.8*2e9 {
		t.Fatalf("offloads on: kernel=%.2g ccp=%.2g", on[0].AchievedBps, on[1].AchievedBps)
	}
	// TSO off: CCP at least comparable to kernel (paper: slightly higher).
	if tsoOff[1].AchievedBps < 0.9*tsoOff[0].AchievedBps {
		t.Fatalf("tso off: ccp %.3g below kernel %.3g", tsoOff[1].AchievedBps, tsoOff[0].AchievedBps)
	}
	// All off: comparable (within 15%).
	lo, hi := allOff[0].AchievedBps, allOff[1].AchievedBps
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 0.8*hi {
		t.Fatalf("all off: kernel=%.3g ccp=%.3g diverge", allOff[0].AchievedBps, allOff[1].AchievedBps)
	}
	// GRO batches must be larger with offloads than without.
	if on[0].GROBatchSegs <= allOff[0].GROBatchSegs {
		t.Fatal("GRO accounting inverted")
	}
}

// scaledCosts divides the CPU budgets to match a rate-scaled link.
func scaledCosts(factor float64) offload.CostModel {
	m := offload.DefaultCosts()
	m.SenderBudget /= factor
	m.ReceiverBudget /= factor
	return m
}

func TestFig2SmokeSized(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time IPC measurement")
	}
	// BusyWorkers is kept small: in a core-constrained CI container a full
	// GOMAXPROCS spin load starves the echo processes entirely.
	res, err := Fig2(Fig2Config{Samples: 1000, Warmup: 100, BusyWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 8 {
		t.Fatalf("series=%d, want 8", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Samples.Len() != 1000 {
			t.Fatalf("%s busy=%v: %d samples", s.Transport, s.Busy, s.Samples.Len())
		}
		p50 := s.P(50)
		limit := 10 * time.Millisecond
		if s.Busy {
			limit = 500 * time.Millisecond // scheduler contention, not IPC cost
		}
		if p50 <= 0 || p50 > limit {
			t.Fatalf("%s busy=%v: implausible p50 %v", s.Transport, s.Busy, p50)
		}
	}
	// The paper's framing: IPC RTTs are negligible vs WAN RTTs (~10ms).
	for _, tr := range []string{"shmring", "unixgram", "unix-stream"} {
		if p99 := seriesOf(t, res, tr, false).P(99); p99 > 5*time.Millisecond {
			t.Fatalf("%s idle p99=%v, not negligible vs WAN RTTs", tr, p99)
		}
	}
	if pts := res.CDF("unixgram", false, 50); len(pts) != 50 {
		t.Fatalf("CDF points=%d", len(pts))
	}
	if !strings.Contains(res.String(), "unixgram") {
		t.Fatal("rendering missing transports")
	}
}

func seriesOf(t *testing.T, res Fig2Result, transport string, busy bool) Fig2Series {
	t.Helper()
	for _, s := range res.Series {
		if s.Transport == transport && s.Busy == busy {
			return s
		}
	}
	t.Fatalf("series %s busy=%v missing", transport, busy)
	return Fig2Series{}
}

func TestTable1Complete(t *testing.T) {
	res := Table1()
	if len(res.Rows) < 10 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Programs == 0 && row.DirectOps == "" {
			t.Fatalf("%s: exercises no control path at Init", row.Name)
		}
	}
	if !strings.Contains(res.String(), "Protocol") {
		t.Fatal("rendering broken")
	}
}

func TestTable2AllVerified(t *testing.T) {
	res := Table2()
	if len(res.Rows) != 6 {
		t.Fatalf("rows=%d, want 6 primitives", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Verified {
			t.Fatalf("primitive %s not verified", row.Operation)
		}
	}
}

func TestTable3AllHandlersFire(t *testing.T) {
	res := Table3()
	for _, row := range res.Rows {
		if row.Calls == 0 {
			t.Fatalf("handler %s never invoked", row.Function)
		}
	}
}

func TestAblBatchingShape(t *testing.T) {
	res := AblBatching()
	if len(res.Rows) != 6 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// §2.3's claim: per-RTT batching performs like (near) per-ACK.
	fine := res.Rows[0]   // 0.05 RTT
	perRTT := res.Rows[3] // 1 RTT
	if perRTT.Utilization < fine.Utilization-0.05 {
		t.Fatalf("per-RTT utilization %.3f well below fine-grained %.3f",
			perRTT.Utilization, fine.Utilization)
	}
	// ...at a fraction of the message cost.
	if perRTT.MsgsPerSec > fine.MsgsPerSec/5 {
		t.Fatalf("per-RTT msgs %.1f not much cheaper than %.1f",
			perRTT.MsgsPerSec, fine.MsgsPerSec)
	}
	// Message rate decreases monotonically with the interval.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].MsgsPerSec >= res.Rows[i-1].MsgsPerSec {
			t.Fatalf("msgs/sec not decreasing at row %d", i)
		}
	}
}

func TestAblFoldVecShape(t *testing.T) {
	res := AblFoldVec()
	// Equivalent behaviour...
	if d := res.Fold.Utilization - res.Vector.Utilization; d > 0.1 || d < -0.1 {
		t.Fatalf("fold/vector utilization diverged: %.3f vs %.3f",
			res.Fold.Utilization, res.Vector.Utilization)
	}
	// ...but the vector ships far more data and per-packet rows.
	if res.Vector.BytesPerSec < 2*res.Fold.BytesPerSec {
		t.Fatalf("vector bytes %.0f not >> fold bytes %.0f",
			res.Vector.BytesPerSec, res.Fold.BytesPerSec)
	}
	if res.Vector.RowsPerSec == 0 || res.Fold.RowsPerSec != 0 {
		t.Fatalf("row accounting wrong: fold=%.1f vector=%.1f",
			res.Fold.RowsPerSec, res.Vector.RowsPerSec)
	}
}

func TestAblFallbackShape(t *testing.T) {
	res := AblFallback()
	if res.Activations != 1 || res.Deactivations != 1 {
		t.Fatalf("fallback cycled %d/%d times", res.Activations, res.Deactivations)
	}
	// The flow must keep moving in all three phases.
	for _, u := range []float64{res.UtilBefore, res.UtilDuring, res.UtilAfter} {
		if u < 0.5 {
			t.Fatalf("a phase starved: %+v", res)
		}
	}
	// Recovery is active, not incidental: the datapath re-announced the flow
	// while the agent was gone, the agent re-adopted it on return, and the
	// algorithm's program was re-installed — the CCP window after recovery
	// is the fresh program's decision, not leftover fallback state.
	if res.Resyncs == 0 {
		t.Fatalf("no resync Creates during the outage: %+v", res)
	}
	if res.AgentFlowsCreated < 2 {
		t.Fatalf("agent never re-adopted the flow: %+v", res)
	}
	if res.Installs < 2 {
		t.Fatalf("program not re-installed after recovery: %+v", res)
	}
}

func TestAblChaosShape(t *testing.T) {
	res := AblChaos()
	if len(res.Rows) != 5 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// The fault layer at rate 0 must be provably transparent.
	if !res.ZeroMatchesBaseline {
		t.Fatalf("rate-0 run diverged from the fault-free channel: %+v", res.Rows[0])
	}
	for _, row := range res.Rows {
		// Bounded utilization at every intensity: the flow always completes
		// and keeps the link moving (the §5 fallback carries the worst case).
		if row.Utilization < 0.2 {
			t.Fatalf("flow starved at rate %.2f: %+v", row.Rate, row)
		}
		if row.Rate == 0 && (row.Injected.Dropped != 0 || row.FallbackOn != 0) {
			t.Fatalf("faults at rate 0: %+v", row)
		}
	}
	heavy := res.Rows[len(res.Rows)-1]
	// Under heavy faults the channel is effectively dead: the fallback must
	// engage and the datapath must be re-announcing the flow.
	if heavy.FallbackOn == 0 {
		t.Fatalf("fallback never engaged at rate %.2f: %+v", heavy.Rate, heavy)
	}
	if heavy.Resyncs == 0 {
		t.Fatalf("no resyncs under heavy faults: %+v", heavy)
	}
	if heavy.Injected.DecodeKilled == 0 {
		t.Fatalf("corruption never reached the decoders: %+v", heavy)
	}
}

func TestAblChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("double sweep in -short mode")
	}
	a, b := AblChaos(), AblChaos()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical sweeps diverged:\n%v\n%v", a, b)
	}
}

func TestAblUrgentShape(t *testing.T) {
	res := AblUrgent()
	// Urgent signals must not hurt; both configurations keep working.
	if res.Urgent.Utilization < 0.6 || res.Batched.Utilization < 0.5 {
		t.Fatalf("utilization collapsed: %+v", res)
	}
}

func TestAblLowRTTShape(t *testing.T) {
	res := AblLowRTT()
	if len(res.Cells) != 16 {
		t.Fatalf("cells=%d", len(res.Cells))
	}
	// At a WAN RTT (10ms), IPC latency up to 1ms must not matter much.
	var wanFast, wanSlow float64
	for _, c := range res.Cells {
		if c.RTT == 10*time.Millisecond {
			if c.IPCLatency == time.Microsecond {
				wanFast = c.Utilization
			}
			if c.IPCLatency == time.Millisecond {
				wanSlow = c.Utilization
			}
		}
	}
	if wanFast < 0.7 {
		t.Fatalf("WAN baseline weak: %.3f", wanFast)
	}
	if wanSlow < wanFast-0.15 {
		t.Fatalf("IPC latency hurt WAN case: fast=%.3f slow=%.3f", wanFast, wanSlow)
	}
}

func TestMedianHelper(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestAblSmoothShape(t *testing.T) {
	res := AblSmooth()
	if res.Smooth.PeakQueueBytes >= res.Step.PeakQueueBytes {
		t.Fatalf("smoothing did not reduce peak queue: %d vs %d",
			res.Smooth.PeakQueueBytes, res.Step.PeakQueueBytes)
	}
	if res.Smooth.Utilization < res.Step.Utilization-0.05 {
		t.Fatalf("smoothing cost utilization: %.3f vs %.3f",
			res.Smooth.Utilization, res.Step.Utilization)
	}
}

func TestAblSynthesisShape(t *testing.T) {
	res := AblSynthesis()
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// In-datapath drops must be (nearly) flat across IPC latencies...
	first, last := res.Rows[0].InDP.Drops, res.Rows[len(res.Rows)-1].InDP.Drops
	if last > first*2+100 {
		t.Fatalf("in-datapath drops grew with IPC latency: %d -> %d", first, last)
	}
	// ...while off-datapath drops blow up at high latency.
	worst := res.Rows[len(res.Rows)-1]
	if worst.OffDP.Drops < worst.InDP.Drops*2 {
		t.Fatalf("off-datapath (%d drops) should degrade well past in-datapath (%d) at %v IPC",
			worst.OffDP.Drops, worst.InDP.Drops, worst.IPCLatency)
	}
}

func TestAblGroupShape(t *testing.T) {
	res := AblGroup()
	// The aggregate trades some utilization for far fewer drops and lower
	// delay; both modes must stay fair.
	if res.Group.Drops >= res.Independent.Drops {
		t.Fatalf("aggregate did not reduce drops: %d vs %d",
			res.Group.Drops, res.Independent.Drops)
	}
	if res.Group.MedianRTT >= res.Independent.MedianRTT {
		t.Fatalf("aggregate did not reduce delay: %v vs %v",
			res.Group.MedianRTT, res.Independent.MedianRTT)
	}
	if res.Group.Fairness < 0.95 || res.Independent.Fairness < 0.9 {
		t.Fatalf("fairness: group=%.3f independent=%.3f",
			res.Group.Fairness, res.Independent.Fairness)
	}
	if res.Group.Utilization < 0.6 {
		t.Fatalf("aggregate utilization %.3f", res.Group.Utilization)
	}
}
