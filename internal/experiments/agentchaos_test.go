package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestAblAgentChaosKillShape(t *testing.T) {
	// The acceptance scenario: agent killed mid-run, a flow born during the
	// outage. With the fail-safe layer the flow must hold >= 80% utilization
	// and return to full CCP control after the restart; without it the flow
	// is demonstrably stalled at InitCwnd (~24% on this link), including
	// after the restart (nothing re-announces it).
	on := runAgentChaos("kill", true)
	if on.UtilDuring < 0.80 {
		t.Fatalf("fallback-on util during outage %.1f%% < 80%%", on.UtilDuring*100)
	}
	if on.UtilAfter < 0.80 {
		t.Fatalf("fallback-on util after recovery %.1f%% < 80%%", on.UtilAfter*100)
	}
	if on.FallbackOn < 1 || on.FallbackOff < 1 {
		t.Fatalf("fallback transitions on=%d off=%d, want >=1 each", on.FallbackOn, on.FallbackOff)
	}
	if on.HandoffRamps < 1 {
		t.Fatalf("no handoff ramp on fallback exit")
	}
	if on.Resyncs == 0 {
		t.Fatal("no resync Creates while degraded")
	}
	if on.AgentFlowsCreated < 1 {
		t.Fatal("restarted agent never adopted the mid-outage flow")
	}
	if on.InstallsRecvd < 1 {
		t.Fatal("recovered agent installed nothing: CCP control not restored")
	}
	// The registry counter aggregates both flows' datapaths (flow A may also
	// have entered fallback before stopping), so it is at least flow B's own.
	if on.MetricFallbackOn < int64(on.FallbackOn) {
		t.Fatalf("metrics fallback-on %d < stats %d", on.MetricFallbackOn, on.FallbackOn)
	}

	off := runAgentChaos("kill", false)
	if off.UtilDuring > 0.40 {
		t.Fatalf("fallback-off util during outage %.1f%%: expected a stall", off.UtilDuring*100)
	}
	if off.UtilAfter > 0.40 {
		t.Fatalf("fallback-off util after restart %.1f%%: flow should stay stranded", off.UtilAfter*100)
	}
	if off.FallbackOn != 0 {
		t.Fatalf("fallback engaged %d times with the layer disabled", off.FallbackOn)
	}
}

func TestAblAgentChaosPauseRecovers(t *testing.T) {
	// A paused (not killed) agent holds messages; resume replays them, so
	// even without the fail-safe layer the flow eventually recovers — but
	// only after the resume, which is the behavioural difference between
	// "stalled until healed" and "degraded but serviceable" the fail-safe
	// provides.
	on := runAgentChaos("pause", true)
	if on.UtilDuring < 0.80 {
		t.Fatalf("fallback-on util during pause %.1f%% < 80%%", on.UtilDuring*100)
	}
	off := runAgentChaos("pause", false)
	if off.UtilDuring > 0.40 {
		t.Fatalf("fallback-off util during pause %.1f%%: expected a stall", off.UtilDuring*100)
	}
	if off.UtilAfter < 0.80 {
		t.Fatalf("fallback-off util after resume %.1f%%: held Create should revive the flow", off.UtilAfter*100)
	}
	if off.Inj.Held == 0 || off.Inj.Replayed == 0 {
		t.Fatalf("pause held/replayed nothing: held=%d replayed=%d", off.Inj.Held, off.Inj.Replayed)
	}
}

func TestAblAgentChaosTransparency(t *testing.T) {
	if !agentChaosBaselineMatches() {
		t.Fatal("healthy injector with liveness disabled is not bit-identical to no injector")
	}
}

func TestAblAgentChaosDeterministic(t *testing.T) {
	a := runAgentChaos("kill", true)
	b := runAgentChaos("kill", true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("agent-chaos run not deterministic:\n a: %+v\n b: %+v", a, b)
	}
}

func TestAblAgentChaosStringRenders(t *testing.T) {
	r := AblAgentChaosResult{
		Scenarios:       []AgentChaosScenario{{Fault: "kill", Fallback: true, UtilDuring: 0.97}},
		BaselineMatches: true,
	}
	out := r.String()
	for _, want := range []string{"agent chaos", "kill", "97.0%", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
