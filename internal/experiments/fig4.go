package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/nativecc"
	"github.com/ccp-repro/ccp/internal/tcp"
	"github.com/ccp-repro/ccp/internal/trace"
)

// Fig4Config parameterizes the Figure 4 reproduction: NewReno reactivity.
// A 60-second flow starts at t=0; a competing flow of the same type starts
// at t=20s. The paper compares the convergence dynamics of CCP-based
// NewReno against the Linux implementation.
type Fig4Config struct {
	RateBps    float64       // default 96 Mbit/s
	RTT        time.Duration // default 20 ms
	Duration   time.Duration // default 60 s
	SecondAt   time.Duration // default 20 s
	IPCLatency time.Duration
	Bin        time.Duration // throughput binning (default 500 ms)
	Seed       int64
}

func (c Fig4Config) withDefaults() Fig4Config {
	if c.RateBps == 0 {
		c.RateBps = 96e6
	}
	if c.RTT == 0 {
		c.RTT = 20 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.SecondAt == 0 {
		c.SecondAt = 20 * time.Second
	}
	if c.IPCLatency == 0 {
		c.IPCLatency = 25 * time.Microsecond
	}
	if c.Bin == 0 {
		c.Bin = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig4Run is one implementation's outcome.
type Fig4Run struct {
	Flow1, Flow2   *trace.Series // binned throughput, bytes/sec
	Utilization    float64
	FairnessAfter  float64       // Jain index over the contended window
	ConvergedAfter time.Duration // time from flow-2 start to sustained fair share
}

// Fig4Result compares CCP and native NewReno.
type Fig4Result struct {
	Config Fig4Config
	CCP    Fig4Run
	Native Fig4Run
}

// Fig4 runs both variants.
func Fig4(cfg Fig4Config) Fig4Result {
	cfg = cfg.withDefaults()
	link := oneBDPLink(cfg.RateBps, cfg.RTT)

	runOne := func(ccp bool) Fig4Run {
		net := harness.New(harness.Config{
			Seed:       cfg.Seed,
			Link:       link,
			IPCLatency: cfg.IPCLatency,
		})
		var f1, f2 *tcp.Flow
		if ccp {
			f1 = net.AddCCPFlow(1, "newreno", tcp.Options{}).Flow
			f2 = net.AddCCPFlow(2, "newreno", tcp.Options{}).Flow
		} else {
			f1 = net.AddNativeFlow(1, nativecc.NewNewReno(), tcp.Options{})
			f2 = net.AddNativeFlow(2, nativecc.NewNewReno(), tcp.Options{})
		}
		t1 := sampleThroughput(net, f1.Receiver, cfg.Bin, cfg.Duration)
		t2 := sampleThroughput(net, f2.Receiver, cfg.Bin, cfg.Duration)
		f1.Conn.Start()
		net.StartAt(f2, cfg.SecondAt)
		net.Run(cfg.Duration)

		// Fairness over the second half of the contended period.
		evalFrom := cfg.SecondAt + (cfg.Duration-cfg.SecondAt)/2
		m1 := t1.MeanOver(evalFrom, cfg.Duration)
		m2 := t2.MeanOver(evalFrom, cfg.Duration)
		fair := trace.JainFairness([]float64{m1, m2})

		// Convergence: first time after flow-2 start when flow 2 sustains
		// >= 60% of flow 1's rate for 5 consecutive bins.
		var converged time.Duration = -1
		run := 0
		for _, p := range t2.Points() {
			if p.T <= cfg.SecondAt {
				continue
			}
			r1 := t1.At(p.T)
			if r1 > 0 && p.V >= 0.6*r1 {
				run++
				if run >= 5 {
					converged = p.T - time.Duration(4)*cfg.Bin - cfg.SecondAt
					break
				}
			} else {
				run = 0
			}
		}
		return Fig4Run{
			Flow1:          t1,
			Flow2:          t2,
			Utilization:    net.Utilization(cfg.Duration),
			FairnessAfter:  fair,
			ConvergedAfter: converged,
		}
	}

	return Fig4Result{Config: cfg, CCP: runOne(true), Native: runOne(false)}
}

// String renders the comparison.
func (r Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: NewReno reactivity — %.0f Mbit/s, %v RTT; flow 2 joins at %v\n",
		r.Config.RateBps/1e6, r.Config.RTT, r.Config.SecondAt)
	render := func(name string, run Fig4Run) {
		fmt.Fprintf(&b, "  %-12s util=%.1f%%  fairness(late)=%.3f  convergence=%v\n",
			name, run.Utilization*100, run.FairnessAfter, run.ConvergedAfter)
	}
	render("ccp-newreno:", r.CCP)
	render("linux-newreno:", r.Native)
	b.WriteString("\n(a) CCP NewReno — flow 1 throughput\n")
	b.WriteString(r.CCP.Flow1.ASCII(72, 8))
	b.WriteString("    flow 2 throughput\n")
	b.WriteString(r.CCP.Flow2.ASCII(72, 8))
	b.WriteString("\n(b) Native NewReno — flow 1 throughput\n")
	b.WriteString(r.Native.Flow1.ASCII(72, 8))
	b.WriteString("    flow 2 throughput\n")
	b.WriteString(r.Native.Flow2.ASCII(72, 8))
	return b.String()
}
