package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/faults"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/metrics"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// AgentChaosScenario is one (fault, fallback) cell's outcome.
//
// The scenario is built to expose the worst case for out-of-datapath
// control: flow B *starts during* the agent outage, so its Create never
// reaches a live agent and no control decision ever arrives. An established
// flow coasts on its last window when the agent dies; a newborn flow is
// pinned at InitCwnd (~10 segments) — on this link roughly a quarter of
// capacity — until something rescues it. The fail-safe layer is that
// something; without it the flow demonstrably stalls, including after the
// agent restarts (nothing re-announces the flow, so the fresh agent never
// learns it exists).
type AgentChaosScenario struct {
	Fault    string // "kill", "pause", or "slow"
	Fallback bool   // liveness layer + in-datapath fallback enabled

	// Utilization of flow B (born mid-outage): during the fault window and
	// after recovery.
	UtilDuring float64
	UtilAfter  float64

	// Datapath transition accounting for flow B.
	FallbackOn    int
	FallbackOff   int
	LivenessStale int
	HandoffRamps  int
	Resyncs       int
	InstallsRecvd int
	// AgentFlowsCreated counts the post-recovery agent's flow adoptions
	// (>= 1 proves the restarted agent re-adopted the mid-outage flow).
	AgentFlowsCreated int
	// Injected-fault accounting (held/replayed/dropped messages).
	Inj faults.AgentFaultStats
	// MetricFallbackOn/MetricAgentGone read the same transitions back from
	// the metrics registry, proving the counters are wired end to end.
	MetricFallbackOn int64
	MetricAgentGone  int64
}

// AblAgentChaosResult is the agent-chaos matrix: each process-level fault
// (kill, pause, slowdown) with the fail-safe layer on and off, plus a
// transparency check that a healthy injector with the layer disabled is
// bit-identical to no injector at all.
type AblAgentChaosResult struct {
	Scenarios []AgentChaosScenario
	// BaselineMatches reports that a run with the injector in the path
	// (healthy, liveness disabled) produced exactly the same summary and
	// datapath counters as a run without it — the guarantee that lets every
	// pre-existing experiment stay bit-identical.
	BaselineMatches bool
}

// Chaos timeline constants. Flow A warms the link and leaves; flow B is
// born mid-outage and carries the measurement windows.
const (
	chaosDur      = 24 * time.Second
	chaosFaultAt  = 8 * time.Second
	chaosBStartAt = 9 * time.Second
	chaosAStopAt  = 10 * time.Second
	chaosHealAt   = 16 * time.Second
)

// AblAgentChaos runs the matrix on the canonical evaluation link
// (48 Mbit/s, 10 ms RTT, 1 BDP buffer). Everything runs on the simulator
// clock with a fixed seed, so the result is deterministic.
func AblAgentChaos() AblAgentChaosResult {
	var res AblAgentChaosResult
	for _, fault := range []string{"kill", "pause", "slow"} {
		for _, fb := range []bool{true, false} {
			res.Scenarios = append(res.Scenarios, runAgentChaos(fault, fb))
		}
	}
	res.BaselineMatches = agentChaosBaselineMatches()
	return res
}

func runAgentChaos(fault string, fallback bool) AgentChaosScenario {
	link := oneBDPLink(48e6, 10*time.Millisecond)
	reg := metrics.NewRegistry()
	net := harness.New(harness.Config{
		Seed:        1,
		Link:        link,
		AgentFaults: true,
		Metrics:     reg,
	})
	var dpCfg datapath.Config
	if fallback {
		dpCfg.Liveness = datapath.LivenessConfig{StalenessBudget: 500 * time.Millisecond}
	}

	a := net.AddCCPFlowCfg(1, "cubic", tcp.Options{}, dpCfg)
	b := net.AddCCPFlowCfg(2, "cubic", tcp.Options{}, dpCfg)
	thr := sampleThroughput(net, b.Receiver, 100*time.Millisecond, chaosDur)

	a.Conn.Start()
	net.StartAt(b.Flow, chaosBStartAt)
	net.StopAt(a.Flow, chaosAStopAt)

	net.Sim.Schedule(chaosFaultAt, func() {
		switch fault {
		case "kill":
			net.AgentInj.Kill()
		case "pause":
			net.AgentInj.Pause()
		case "slow":
			net.AgentInj.SlowDown(700 * time.Millisecond)
		}
	})
	net.Sim.Schedule(chaosHealAt, func() {
		switch fault {
		case "kill":
			// A real process restart: fresh agent, empty flow table. Only
			// the datapaths' Resync Creates can repopulate it.
			net.RestartAgent()
		case "pause":
			net.AgentInj.Resume()
		case "slow":
			net.AgentInj.SlowDown(0)
		}
	})
	net.Run(chaosDur)

	capBps := link.RateBps / 8
	st := b.DP.Stats()
	return AgentChaosScenario{
		Fault:             fault,
		Fallback:          fallback,
		UtilDuring:        thr.MeanOver(11*time.Second, chaosHealAt) / capBps,
		UtilAfter:         thr.MeanOver(17*time.Second, chaosDur) / capBps,
		FallbackOn:        st.FallbackOn,
		FallbackOff:       st.FallbackOff,
		LivenessStale:     st.LivenessStale,
		HandoffRamps:      st.HandoffRamps,
		Resyncs:           st.Resyncs,
		InstallsRecvd:     st.InstallsRecvd,
		AgentFlowsCreated: net.Agent.Stats().FlowsCreated,
		Inj:               net.AgentInj.Stats(),
		MetricFallbackOn:  reg.Counter("dp_fallback_on_total").Value(),
		MetricAgentGone:   reg.Counter("dp_agent_gone_total").Value(),
	}
}

// agentChaosBaselineMatches runs the same healthy workload with and without
// the agent injector in the path (liveness disabled in both) and compares
// every observable: run summary, datapath counters, and agent counters. The
// injector's healthy mode is synchronous pass-through, so the two runs must
// be bit-identical.
func agentChaosBaselineMatches() bool {
	type outcome struct {
		sum   RunSummary
		dp    datapath.Stats
		agent int
	}
	run := func(injected bool) outcome {
		link := oneBDPLink(48e6, 10*time.Millisecond)
		dur := 10 * time.Second
		net := harness.New(harness.Config{Seed: 1, Link: link, AgentFaults: injected})
		f := net.AddCCPFlow(1, "cubic", tcp.Options{})
		rtt := sampleRTT(net, f.Conn, 50*time.Millisecond, dur)
		f.Conn.Start()
		net.Run(dur)
		return outcome{
			sum:   summarize(net, f.Flow, rtt, dur),
			dp:    f.DP.Stats(),
			agent: net.Agent.Stats().FlowsCreated,
		}
	}
	return run(false) == run(true)
}

// String renders the matrix.
func (r AblAgentChaosResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation (§5): agent chaos — process-level faults at t=8s, heal at t=16s;\n")
	b.WriteString("flow B born mid-outage (t=9s) on 48 Mbit/s, 10 ms RTT, 1 BDP buffer\n")
	b.WriteString("(util measured on flow B: during = 11s-16s, after = 17s-24s)\n\n")
	fmt.Fprintf(&b, "  %-6s %-9s %10s %10s %6s %6s %7s %8s %9s %7s\n",
		"fault", "failsafe", "util-during", "util-after", "fb-on", "fb-off", "resync", "installs", "adoptions", "ramps")
	for _, s := range r.Scenarios {
		mode := "off"
		if s.Fallback {
			mode = "on"
		}
		fmt.Fprintf(&b, "  %-6s %-9s %10.1f%% %9.1f%% %6d %6d %7d %8d %9d %7d\n",
			s.Fault, mode, s.UtilDuring*100, s.UtilAfter*100,
			s.FallbackOn, s.FallbackOff, s.Resyncs, s.InstallsRecvd,
			s.AgentFlowsCreated, s.HandoffRamps)
	}
	fmt.Fprintf(&b, "\n  healthy-injector transparency (bit-identical to no injector): %v\n",
		r.BaselineMatches)
	return b.String()
}
