package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestScaleSmoke is the short-mode gate for the flow-scale benchmark: tiny
// steps, but the full pipeline — sharded runtime, channel transport,
// closed-loop latency, batched vs unbatched IPC accounting, JSON output.
func TestScaleSmoke(t *testing.T) {
	cfg := ScaleConfig{
		FlowCounts:     []int{1, 16},
		ReportsPerFlow: 25,
		Shards:         2,
		BatchInterval:  200 * time.Microsecond,
		Timeout:        30 * time.Second,
	}
	res, err := Scale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points=%d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Reports != p.Flows*cfg.ReportsPerFlow {
			t.Fatalf("point %+v: wrong report count", p)
		}
		if p.ReportsPerSec <= 0 || p.FlowsPerSec <= 0 {
			t.Fatalf("point %+v: non-positive throughput", p)
		}
		if p.LatencyP50Us <= 0 || p.LatencyP99Us < p.LatencyP50Us {
			t.Fatalf("point %+v: implausible latency", p)
		}
		if p.WireMsgsUnbatched < int64(p.Reports) {
			t.Fatalf("point %+v: unbatched condition must ship every report", p)
		}
		if p.WireMsgsBatched > p.WireMsgsUnbatched {
			t.Fatalf("point %+v: batching increased wire messages", p)
		}
	}
	// With 16 concurrent closed-loop flows and a 200µs window, coalescing
	// must collapse multiple reports per frame.
	if last := res.Points[len(res.Points)-1]; last.IPCReduction < 1.5 {
		t.Fatalf("ipc reduction %.2f at %d flows, want >= 1.5", last.IPCReduction, last.Flows)
	}

	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	var back ScaleResult
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(res.Points) || back.Shards != res.Shards {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if res.String() == "" {
		t.Fatal("empty table rendering")
	}
}

// TestScaleSmokeShmring runs the same pipeline over the shared-memory ring
// lane: flows striped across ring connections, a bounded in-flight window,
// and the agent serving every ring from one multiplexed goroutine.
func TestScaleSmokeShmring(t *testing.T) {
	cfg := ScaleConfig{
		FlowCounts:     []int{1, 16},
		ReportsPerFlow: 25,
		Shards:         2,
		Transport:      "shmring",
		Conns:          2,
		MaxOutstanding: 8,
		BatchInterval:  200 * time.Microsecond,
		Timeout:        30 * time.Second,
	}
	res, err := Scale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != "shmring" || res.Conns != 2 || res.MaxOutstanding != 8 {
		t.Fatalf("config not reflected in result: %+v", res)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points=%d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Reports != p.Flows*cfg.ReportsPerFlow {
			t.Fatalf("point %+v: wrong report count", p)
		}
		if p.ReportsPerSec <= 0 || p.FlowsPerSec <= 0 {
			t.Fatalf("point %+v: non-positive throughput", p)
		}
		if p.LatencyP50Us <= 0 || p.LatencyP99Us < p.LatencyP50Us {
			t.Fatalf("point %+v: implausible latency", p)
		}
		if p.WireMsgsUnbatched < int64(p.Reports) {
			t.Fatalf("point %+v: unbatched condition must ship every report", p)
		}
	}
}

// TestScaleRejectsUnknownTransport pins the config validation.
func TestScaleRejectsUnknownTransport(t *testing.T) {
	_, err := Scale(ScaleConfig{Transport: "netlink", FlowCounts: []int{1}, ReportsPerFlow: 1})
	if err == nil {
		t.Fatal("unknown transport accepted")
	}
}
