package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/nativecc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/offload"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// Fig5Config parameterizes the Figure 5 reproduction: achieved throughput
// on a 10 Gbit/s path with NIC offloads enabled and disabled, CCP vs.
// kernel-native congestion control. Each configuration averages Runs runs
// (the paper averaged four).
type Fig5Config struct {
	RateBps  float64       // default 10 Gbit/s
	RTT      time.Duration // default 2 ms (LAN testbed)
	Duration time.Duration // default 3 s per run
	Runs     int           // default 4
	TSOSegs  int           // segments per wire packet with TSO on (default 44)
	Costs    offload.CostModel
	Seed     int64
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.RateBps == 0 {
		c.RateBps = 10e9
	}
	if c.RTT == 0 {
		c.RTT = 2 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	if c.Runs == 0 {
		c.Runs = 4
	}
	if c.TSOSegs == 0 {
		c.TSOSegs = 44
	}
	if c.Costs == (offload.CostModel{}) {
		c.Costs = offload.DefaultCosts()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fig5Cell is one bar of the figure: mean achieved throughput and the CPU
// loads behind it.
type Fig5Cell struct {
	AchievedBps  float64
	MeasuredBps  float64
	SenderCPU    float64
	ReceiverCPU  float64
	GROBatchSegs float64 // mean segments per receive batch
}

// Fig5Result holds the 3×2 grid.
type Fig5Result struct {
	Config Fig5Config
	// Rows: offload configuration; Cols: {native, ccp}.
	OffloadsOn [2]Fig5Cell
	TSOOff     [2]Fig5Cell
	AllOff     [2]Fig5Cell
}

// Fig5 runs the full grid.
func Fig5(cfg Fig5Config) Fig5Result {
	cfg = cfg.withDefaults()
	res := Fig5Result{Config: cfg}
	res.OffloadsOn = [2]Fig5Cell{
		fig5Cell(cfg, false, true, true),
		fig5Cell(cfg, true, true, true),
	}
	res.TSOOff = [2]Fig5Cell{
		fig5Cell(cfg, false, false, true),
		fig5Cell(cfg, true, false, true),
	}
	res.AllOff = [2]Fig5Cell{
		fig5Cell(cfg, false, false, false),
		fig5Cell(cfg, true, false, false),
	}
	return res
}

// fig5Cell averages Runs runs of one configuration.
func fig5Cell(cfg Fig5Config, ccp, tso, gro bool) Fig5Cell {
	var cell Fig5Cell
	for run := 0; run < cfg.Runs; run++ {
		r := fig5Run(cfg, ccp, tso, gro, cfg.Seed+int64(run))
		cell.AchievedBps += r.AchievedBps
		cell.MeasuredBps += r.MeasuredBps
		cell.SenderCPU += r.SenderCPU
		cell.ReceiverCPU += r.ReceiverCPU
		cell.GROBatchSegs += r.GROBatchSegs
	}
	n := float64(cfg.Runs)
	cell.AchievedBps /= n
	cell.MeasuredBps /= n
	cell.SenderCPU /= n
	cell.ReceiverCPU /= n
	cell.GROBatchSegs /= n
	return cell
}

func fig5Run(cfg Fig5Config, ccp, tso, gro bool, seed int64) Fig5Cell {
	link := oneBDPLink(cfg.RateBps, cfg.RTT)
	net := harness.New(harness.Config{Seed: seed, Link: link})
	opts := tcp.Options{AckEvery: 2}
	if tso {
		opts.TSOSegs = cfg.TSOSegs
	}
	var flow *tcp.Flow
	var isCCP *harness.CCPFlow
	if ccp {
		isCCP = net.AddCCPFlow(1, "cubic", opts)
		flow = isCCP.Flow
	} else {
		flow = net.AddNativeFlow(1, nativecc.NewCubic(), opts)
	}
	// Interpose the GRO counter between the demux and the receiver.
	groCounter := offload.NewGROCounter(net.Sim, asHandler(flow.Receiver), gro)
	net.Fwd.Register(netsim.FlowID(1), groCounter)

	flow.Conn.Start()
	net.Run(cfg.Duration)

	st := flow.Conn.Stats()
	rst := flow.Receiver.Stats()
	counts := offload.Counts{
		Duration:     cfg.Duration,
		PayloadBytes: flow.Receiver.Delivered(),
		SegsSent:     st.SegsSent,
		PktsSent:     st.PktsSent,
		AcksRcvd:     st.AcksRcvd,
		CCP:          ccp,
		RxWirePkts:   groCounter.Pkts(),
		RxBatches:    groCounter.Batches(),
		AcksSent:     rst.AcksSent,
	}
	if ccp {
		bst := net.Bridge.Stats()
		counts.AgentMsgs = bst.ToAgentMsgs + bst.ToDpMsgs
	}
	r := cfg.Costs.Evaluate(counts)
	return Fig5Cell{
		AchievedBps:  r.AchievedBps,
		MeasuredBps:  r.MeasuredBps,
		SenderCPU:    r.SenderCPU,
		ReceiverCPU:  r.ReceiverCPU,
		GROBatchSegs: groCounter.MeanBatchSegs(rst.SegsRcvd),
	}
}

func asHandler(r *tcp.Receiver) netsim.Handler { return r }

// String renders the grid, paper-style.
func (r Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: achieved throughput with NIC offloads — %.0f Gbit/s link, mean of %d runs\n",
		r.Config.RateBps/1e9, r.Config.Runs)
	fmt.Fprintf(&b, "  (paper: offloads on — both saturate; TSO off — CCP > kernel; all off — comparable)\n\n")
	fmt.Fprintf(&b, "  %-22s %12s %12s   %s\n", "configuration", "kernel", "ccp", "(Gbit/s; sender/receiver CPU)")
	row := func(name string, cells [2]Fig5Cell) {
		fmt.Fprintf(&b, "  %-22s %9.2f    %9.2f      [tx %.0f%%/%.0f%%  rx %.0f%%/%.0f%%  gro %.1f/%.1f segs]\n",
			name,
			cells[0].AchievedBps/1e9, cells[1].AchievedBps/1e9,
			cells[0].SenderCPU*100, cells[1].SenderCPU*100,
			cells[0].ReceiverCPU*100, cells[1].ReceiverCPU*100,
			cells[0].GROBatchSegs, cells[1].GROBatchSegs)
	}
	row("TSO+GRO enabled", r.OffloadsOn)
	row("TSO disabled", r.TSOOff)
	row("TSO+GRO disabled", r.AllOff)
	return b.String()
}
