package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestAblHAWarmKillRecovery(t *testing.T) {
	// The acceptance scenario: agent killed mid-run with an established flow
	// in flight. Warm standby must resolve the kill by promotion — no
	// datapath fallback entry (so no multiplicative-decrease replay), warm
	// state restored, and a fresh algorithm decision applied within 4 RTTs
	// of promotion.
	warm := runHACell("kill", "warm")
	if warm.Failovers != 1 {
		t.Fatalf("failovers = %d, want exactly 1: %+v", warm.Failovers, warm)
	}
	if warm.FallbackOnA != 0 || warm.FallbackOnB != 0 {
		t.Fatalf("datapath entered fallback despite warm failover: %+v", warm)
	}
	if warm.Restores == 0 {
		t.Fatalf("promoted agent restored no flows — cold start, not warm standby: %+v", warm)
	}
	if warm.FreshDecisionRTTs <= 0 || warm.FreshDecisionRTTs > 4 {
		t.Fatalf("fresh decision after %.1f RTTs, want within (0, 4]: %+v",
			warm.FreshDecisionRTTs, warm)
	}
	if warm.UtilNewborn < 0.40 {
		t.Fatalf("newborn flow under promoted agent at %.1f%% util", warm.UtilNewborn*100)
	}

	fb := runHACell("kill", "fallback")
	if fb.FallbackOnA < 1 {
		t.Fatalf("fallback-only spanning flow never entered fallback: %+v", fb)
	}
	// The headline utilization claim: for a flow spanning the kill, warm
	// standby beats the fallback arm's MD-replay-then-AIMD recovery.
	if warm.UtilSpanning <= fb.UtilSpanning {
		t.Fatalf("warm standby did not beat fallback for the spanning flow: warm %.1f%% vs fallback %.1f%%",
			warm.UtilSpanning*100, fb.UtilSpanning*100)
	}
}

func TestAblHAWarmHandlesPauseAndSlow(t *testing.T) {
	// Pause and slowdown are liveness failures too: the supervisor's miss
	// counting (pause) and latency EWMA (slow) both trip, and in each case
	// promotion replaces the sick process before the staleness budget does.
	for _, fault := range []string{"pause", "slow"} {
		c := runHACell(fault, "warm")
		if c.Failovers != 1 {
			t.Fatalf("%s: failovers = %d, want 1: %+v", fault, c.Failovers, c)
		}
		if c.FallbackOnA != 0 || c.FallbackOnB != 0 {
			t.Fatalf("%s: fallback engaged despite warm failover: %+v", fault, c)
		}
		if c.UtilAfter < 0.80 {
			t.Fatalf("%s: combined util after promotion %.1f%% < 80%%", fault, c.UtilAfter*100)
		}
	}
}

func TestAblHANoneStrandsNewborn(t *testing.T) {
	// Without any liveness layer the newborn flow is pinned at InitCwnd for
	// the whole outage — the stall the fail-safe and HA layers exist to fix.
	c := runHACell("kill", "none")
	if c.UtilNewborn > 0.40 {
		t.Fatalf("no-liveness newborn at %.1f%% util: expected a stall", c.UtilNewborn*100)
	}
	if c.FallbackOnA != 0 || c.FallbackOnB != 0 || c.Failovers != 0 {
		t.Fatalf("recovery machinery ran in the none arm: %+v", c)
	}
}

func TestAblHADeterministic(t *testing.T) {
	a := runHACell("kill", "warm")
	b := runHACell("kill", "warm")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ha cell not deterministic:\n a: %+v\n b: %+v", a, b)
	}
}

func TestAblHAStringRenders(t *testing.T) {
	r := AblHAResult{Cells: []HACell{{
		Fault: "kill", Mode: "warm", UtilSpanning: 0.93, Failovers: 1,
		FreshDecisionRTTs: 1.5,
	}}}
	out := r.String()
	for _, want := range []string{"high availability", "kill", "warm", "93.0%", "1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
