package harness_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/nativecc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
)

func link() netsim.LinkConfig {
	return netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 20000}
}

func TestDefaultsApplied(t *testing.T) {
	net := harness.New(harness.Config{Link: link()})
	f := net.AddCCPFlow(1, "", tcp.Options{}) // agent default (cubic)
	f.Conn.Start()
	net.Run(5 * time.Second)
	if net.Utilization(5*time.Second) < 0.6 {
		t.Fatalf("default deployment underperforms: %.3f", net.Utilization(5*time.Second))
	}
	if net.Agent.Stats().FlowsCreated != 1 {
		t.Fatal("flow not announced to agent")
	}
}

func TestMixedNativeAndCCPFlows(t *testing.T) {
	net := harness.New(harness.Config{Link: link()})
	ccp := net.AddCCPFlow(1, "cubic", tcp.Options{})
	nat := net.AddNativeFlow(2, nativecc.NewCubic(), tcp.Options{})
	ccp.Conn.Start()
	nat.Conn.Start()
	net.Run(10 * time.Second)
	if ccp.Receiver.Delivered() == 0 || nat.Receiver.Delivered() == 0 {
		t.Fatal("a flow starved")
	}
}

func TestStartStopAt(t *testing.T) {
	net := harness.New(harness.Config{Link: link()})
	f := net.AddNativeFlow(1, nativecc.NewRenoCC(), tcp.Options{})
	net.StartAt(f, 2*time.Second)
	net.StopAt(f, 4*time.Second)
	net.Run(time.Second)
	if f.Conn.Stats().PktsSent != 0 {
		t.Fatal("flow sent before StartAt")
	}
	net.Run(6 * time.Second)
	sent := f.Conn.Stats().PktsSent
	if sent == 0 {
		t.Fatal("flow never started")
	}
	net.Run(8 * time.Second)
	if f.Conn.Stats().PktsSent != sent {
		t.Fatal("flow sent after StopAt")
	}
}

func TestSIDsAreUnique(t *testing.T) {
	net := harness.New(harness.Config{Link: link()})
	net.AddCCPFlow(1, "reno", tcp.Options{})
	net.AddCCPFlow(2, "reno", tcp.Options{})
	f1 := net.AddCCPFlow(3, "reno", tcp.Options{})
	f1.Conn.Start()
	net.Run(time.Second)
	// Three creates with distinct SIDs: the agent tracks all of them even
	// though only one started (Create is sent at Start; only f1 started).
	if got := net.Agent.Stats().FlowsCreated; got != 1 {
		t.Fatalf("creates=%d, want 1 (only started flows announce)", got)
	}
}

func TestPolicyPlumbed(t *testing.T) {
	policy := func(info core.FlowInfo) core.Policy {
		return core.Policy{MaxRateBps: 100e3}
	}
	net := harness.New(harness.Config{Link: link(), Policy: policy})
	f := net.AddCCPFlow(1, "timely", tcp.Options{}) // rate-based algorithm
	f.Conn.Start()
	dur := 10 * time.Second
	net.Run(dur)
	goodput := float64(f.Receiver.Delivered()) / dur.Seconds()
	if goodput > 130e3 {
		t.Fatalf("policy cap ignored: %.0f B/s", goodput)
	}
}

func TestHelpers(t *testing.T) {
	if harness.Gbps(1) != 1e9 || harness.Mbps(10) != 10e6 {
		t.Fatal("rate helpers wrong")
	}
	if harness.BDPBytes(1e9, 10*time.Millisecond) != 1250000 {
		t.Fatal("BDP helper wrong")
	}
}
