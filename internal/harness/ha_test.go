package harness_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/supervise"
	"github.com/ccp-repro/ccp/internal/tcp"
)

func haLink() netsim.LinkConfig {
	return netsim.LinkConfig{RateBps: 48e6, Delay: 5 * time.Millisecond, QueueBytes: 60000}
}

// Regression for the PR 6 blind spot: a uniformly *slow* agent keeps its
// decision cadence, so the per-kind staleness clocks never trip once late
// decisions start flowing — yet every decision it makes is stale. With
// heartbeat probing on, the datapath must converge to exactly one fallback
// entry (no flapping while slow decisions dribble in) and exactly one exit,
// driven by the probe latency EWMA clearing its hysteresis gate after the
// agent heals.
func TestSlowAgentSingleFallbackCycle(t *testing.T) {
	net := harness.New(harness.Config{
		Link:        haLink(),
		AgentFaults: true,
	})
	f := net.AddCCPFlowCfg(1, "cubic", tcp.Options{}, datapath.Config{
		Liveness: datapath.LivenessConfig{
			StalenessBudget: 200 * time.Millisecond,
			ProbeInterval:   50 * time.Millisecond,
		},
	})
	f.Conn.Start()
	// Warm up healthy, then slow every agent delivery by 10x the staleness
	// budget, then heal.
	net.Sim.Schedule(2*time.Second, func() { net.AgentInj.SlowDown(2 * time.Second) })
	net.Sim.Schedule(8*time.Second, func() { net.AgentInj.SlowDown(0) })
	net.Run(14 * time.Second)

	st := f.DP.Stats()
	if st.FallbackOn != 1 {
		t.Fatalf("fallback entries = %d, want exactly 1 (no flapping): %+v", st.FallbackOn, st)
	}
	if st.FallbackOff != 1 {
		t.Fatalf("fallback exits = %d, want exactly 1: %+v", st.FallbackOff, st)
	}
	if f.DP.FallbackActive() {
		t.Fatal("still in fallback long after the agent healed")
	}
	if st.ProbesSent == 0 || st.ProbeEchoes == 0 {
		t.Fatalf("probing never ran: %+v", st)
	}
	if st.ProbeExits != 1 {
		t.Fatalf("probe exits = %d, want 1 (exit must come from the probe gate)", st.ProbeExits)
	}
}

// Without probes (ProbeInterval zero) the probe machinery must stay
// completely cold — the PR 6 behaviour, bit for bit.
func TestProbesOffNoProbeTraffic(t *testing.T) {
	net := harness.New(harness.Config{Link: haLink(), AgentFaults: true})
	f := net.AddCCPFlowCfg(1, "cubic", tcp.Options{}, datapath.Config{
		Liveness: datapath.LivenessConfig{StalenessBudget: 500 * time.Millisecond},
	})
	f.Conn.Start()
	net.Run(3 * time.Second)
	st := f.DP.Stats()
	if st.ProbesSent != 0 || st.ProbeEchoes != 0 || st.ProbeExits != 0 {
		t.Fatalf("probe machinery ran with ProbeInterval=0: %+v", st)
	}
	if got := net.Agent.Stats().Heartbeats; got != 0 {
		t.Fatalf("agent saw %d heartbeats with probing off", got)
	}
}

// The headline HA property: with a warm standby and a fast supervisor, an
// agent kill is resolved by promotion before the datapath's staleness
// budget ever trips — flows never enter fallback, never replay the
// multiplicative decrease, and resume fresh (warm-state) decisions from the
// promoted agent.
func TestWarmStandbyFailoverBeatsFallback(t *testing.T) {
	net := harness.New(harness.Config{
		Link:        haLink(),
		AgentFaults: true,
		HA: &harness.HAConfig{
			SnapshotInterval: 50 * time.Millisecond,
			Supervisor: supervise.Config{
				Interval:      5 * time.Millisecond,
				LatencyBudget: 100 * time.Millisecond,
				MissBudget:    3,
			},
		},
	})
	f := net.AddCCPFlowCfg(1, "cubic", tcp.Options{}, datapath.Config{
		Liveness: datapath.LivenessConfig{
			StalenessBudget: 500 * time.Millisecond,
			ProbeInterval:   5 * time.Millisecond,
		},
	})
	f.Conn.Start()
	original := net.Agent
	net.Sim.Schedule(3*time.Second, net.AgentInj.Kill)
	net.Run(10 * time.Second)

	if net.Agent == original {
		t.Fatal("failover never promoted the standby")
	}
	sup := net.Supervisor.Stats()
	if sup.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1: %+v", sup.Failovers, sup)
	}
	ag := net.Agent.Stats()
	if ag.Restores == 0 {
		t.Fatal("promoted agent restored no flows — cold start, not warm standby")
	}
	if ag.ResyncAdopts+ag.Measurements == 0 {
		t.Fatal("datapath never reattached to the promoted agent")
	}
	st := f.DP.Stats()
	if st.FallbackOn != 0 {
		t.Fatalf("datapath entered fallback %d times despite warm failover: %+v", st.FallbackOn, st)
	}
	// The flow keeps making progress under the promoted agent.
	if net.Utilization(10*time.Second) < 0.7 {
		t.Fatalf("utilization %.3f after failover, want healthy link", net.Utilization(10*time.Second))
	}
}

// The snapshot pump stops replicating from a dead or paused process (a
// corpse cannot export its state); the standby keeps the last delta.
func TestPumpPausesWithDeadAgent(t *testing.T) {
	net := harness.New(harness.Config{
		Link:        haLink(),
		AgentFaults: true,
		HA: &harness.HAConfig{
			SnapshotInterval: 50 * time.Millisecond,
			// Monitor thresholds so loose the supervisor never fires: this
			// test watches the pump alone.
			Supervisor: supervise.Config{
				Interval:      10 * time.Millisecond,
				LatencyBudget: time.Hour,
				MissBudget:    1 << 30,
			},
		},
	})
	f := net.AddCCPFlow(1, "cubic", tcp.Options{})
	f.Conn.Start()
	net.Run(2 * time.Second)
	if net.Standby.FlowCount() != 1 {
		t.Fatalf("standby flows = %d before kill, want 1", net.Standby.FlowCount())
	}
	applied := net.Standby.Stats().Applied
	net.AgentInj.Kill()
	net.Run(4 * time.Second)
	if got := net.Standby.Stats().Applied; got != applied {
		t.Fatalf("pump kept replicating from a dead agent: %d -> %d", applied, got)
	}
	if net.Standby.FlowCount() != 1 {
		t.Fatal("standby lost its last-known state")
	}
}
