package harness

import (
	"fmt"
	"sync"
	"time"

	"github.com/ccp-repro/ccp/internal/bufpool"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/proto"
)

// SocketLinkConfig configures a SocketLink.
type SocketLinkConfig struct {
	// Dial opens a transport to the agent. Required. It is retried with
	// exponential backoff whenever the link is down.
	Dial func() (ipc.Transport, error)
	// DialTimeout bounds a single Dial attempt (default 2s). A Dial that
	// blocks past the deadline — a SYN into a black hole, a wedged
	// listener — is abandoned: its eventual transport, if any, is closed,
	// and the attempt counts as failed. Without the bound, Close could
	// hang the harness behind an unbounded dial.
	DialTimeout time.Duration
	// BackoffBase is the first retry delay (default 10ms); BackoffMax caps
	// the exponential growth (default 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// InboxDepth bounds buffered agent frames between Pump calls (default
	// 1024); overflow is dropped and counted, never blocking the reader. A
	// frame is one wire message, which may be a batch of reports.
	InboxDepth int
	// Logf, if set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// SocketLinkStats counts the link's activity.
type SocketLinkStats struct {
	// Connects counts successful dials (1 for an uninterrupted run).
	Connects int
	// Resyncs counts flows re-announced after a reconnect.
	Resyncs      int
	SendErrors   int
	RecvErrors   int
	DecodeErrors int
	// Dropped counts agent frames discarded on inbox overflow.
	Dropped int
	// UnknownSID counts agent messages for flows never attached.
	UnknownSID int
	// DialTimeouts counts dial attempts abandoned at DialTimeout.
	DialTimeouts int
}

// SocketLink maintains a datapath's connection to an out-of-process agent
// over a real transport, surviving agent crashes: when the link drops it
// redials with exponential backoff, and after a reconnect it replays each
// attached flow's Create (datapath.Resync) so the restarted agent re-adopts
// live flows without manual intervention. Incoming agent messages are
// buffered and routed to the owning flow's runtime on Pump, which the
// simulation loop calls between time slices so all datapath state stays on
// the simulation thread.
type SocketLink struct {
	cfg SocketLinkConfig

	mu         sync.Mutex
	tr         ipc.Transport
	dps        map[uint32]*datapath.CCP
	needResync bool
	stats      SocketLinkStats
	// everConnected gates agent-gone notifications: a link that has never
	// been up is "agent not started yet", not "agent lost" (the datapath's
	// staleness budget covers that case). goneNotified tracks which edge
	// the attached datapaths last saw.
	everConnected bool
	goneNotified  bool

	// inbox carries raw pooled frames from the reader goroutine to Pump;
	// decoding happens on the simulation thread, into dec's reusable scratch,
	// so the reader allocates nothing per message and decoded messages never
	// cross goroutines.
	inbox  chan *bufpool.Buf
	dec    proto.Decoder
	closed chan struct{}
	done   sync.WaitGroup
}

// NewSocketLink starts the connect loop. Attach flows, then call Pump from
// the simulation loop.
func NewSocketLink(cfg SocketLinkConfig) *SocketLink {
	if cfg.Dial == nil {
		panic("harness: SocketLinkConfig.Dial is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 1024
	}
	l := &SocketLink{
		cfg:    cfg,
		dps:    make(map[uint32]*datapath.CCP),
		inbox:  make(chan *bufpool.Buf, cfg.InboxDepth),
		closed: make(chan struct{}),
	}
	l.done.Add(1)
	go l.connectLoop()
	return l
}

// Stats returns a snapshot of the link counters.
func (l *SocketLink) Stats() SocketLinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Connected reports whether a transport is currently up.
func (l *SocketLink) Connected() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tr != nil
}

// Attach registers a flow's runtime for message routing (keyed by its SID).
func (l *SocketLink) Attach(dp *datapath.CCP) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dps[dp.SID()] = dp
}

// ToAgent is the datapath.Config.ToAgent function for flows using this link:
// it marshals into a pooled frame and sends, reporting an error while the
// link is down (the datapath counts it and its §5 watchdog covers the gap).
func (l *SocketLink) ToAgent(m proto.Msg) error {
	f, err := proto.MarshalFrame(m)
	if err != nil {
		return err
	}
	defer f.Release() // Send borrows the frame only for the call
	l.mu.Lock()
	tr := l.tr
	l.mu.Unlock()
	if tr == nil {
		l.note(func(s *SocketLinkStats) { s.SendErrors++ })
		return fmt.Errorf("harness: agent link down")
	}
	if err := tr.Send(f.B); err != nil {
		l.note(func(s *SocketLinkStats) { s.SendErrors++ })
		return err
	}
	return nil
}

// Pump routes buffered agent messages to their flows and, after a reconnect,
// replays each attached flow's announcement. It also propagates link-state
// edges to the datapaths' liveness layer (AgentGone): a lost connection is
// reported once the loop observes it, a re-established one on the next Pump
// after reconnect. Call it from the simulation thread between time slices;
// it never blocks.
func (l *SocketLink) Pump() {
	l.mu.Lock()
	up := l.tr != nil
	var goneEdge, backEdge bool
	if l.everConnected && !up && !l.goneNotified {
		l.goneNotified = true
		goneEdge = true
	} else if up && l.goneNotified {
		l.goneNotified = false
		backEdge = true
	}
	var notify []*datapath.CCP
	if goneEdge || backEdge {
		for _, dp := range l.dps {
			notify = append(notify, dp)
		}
	}
	resync := l.needResync && up // wait out a down link; retry next Pump
	var dps []*datapath.CCP
	if resync {
		l.needResync = false
		for _, dp := range l.dps {
			dps = append(dps, dp)
		}
		l.stats.Resyncs += len(dps)
	}
	l.mu.Unlock()
	for _, dp := range notify {
		dp.AgentGone(goneEdge)
	}
	for _, dp := range dps {
		dp.Resync()
	}
	for {
		select {
		case f := <-l.inbox:
			l.pumpFrame(f)
		default:
			return
		}
	}
}

// pumpFrame decodes one wire frame into the link's scratch decoder and routes
// its messages (unbatched here: Pump routes by FlowSID, and a batch frame has
// no single flow; splitting preserves frame order). Deliver consumes each
// message before the next decode, so the scratch is safe to reuse.
func (l *SocketLink) pumpFrame(f *bufpool.Buf) {
	defer f.Release()
	m, err := l.dec.Unmarshal(f.B)
	if err != nil {
		l.note(func(s *SocketLinkStats) { s.DecodeErrors++ })
		return
	}
	for _, sub := range proto.Split(m) {
		l.mu.Lock()
		dp := l.dps[sub.FlowSID()]
		if dp == nil {
			l.stats.UnknownSID++
		}
		l.mu.Unlock()
		if dp != nil {
			dp.Deliver(sub)
		}
	}
}

// Close tears the link down and stops the connect loop.
func (l *SocketLink) Close() error {
	l.mu.Lock()
	select {
	case <-l.closed:
		l.mu.Unlock()
		return nil
	default:
	}
	close(l.closed)
	tr := l.tr
	l.tr = nil
	l.mu.Unlock()
	if tr != nil {
		tr.Close()
	}
	l.done.Wait()
	// The reader has exited; return any frames still queued to the pool.
	for {
		select {
		case f := <-l.inbox:
			f.Release()
		default:
			return nil
		}
	}
}

func (l *SocketLink) note(f func(*SocketLinkStats)) {
	l.mu.Lock()
	f(&l.stats)
	l.mu.Unlock()
}

// connectLoop dials until Close, reading the transport while it lasts and
// backing off exponentially between failed attempts.
func (l *SocketLink) connectLoop() {
	defer l.done.Done()
	backoff := l.cfg.BackoffBase
	for {
		select {
		case <-l.closed:
			return
		default:
		}
		tr, err := l.dial()
		if err != nil {
			select {
			case <-l.closed:
				return // shutdown mid-dial; don't spin out another attempt
			default:
			}
			l.logf("harness: agent dial failed (retry in %v): %v", backoff, err)
			select {
			case <-l.closed:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > l.cfg.BackoffMax {
				backoff = l.cfg.BackoffMax
			}
			continue
		}
		backoff = l.cfg.BackoffBase
		l.mu.Lock()
		select {
		case <-l.closed:
			l.mu.Unlock()
			tr.Close()
			return
		default:
		}
		l.tr = tr
		l.stats.Connects++
		l.everConnected = true
		// Flows announced on an earlier connection are unknown to whatever
		// answered this dial; replay their Creates on the next Pump.
		l.needResync = true
		l.mu.Unlock()
		l.logf("harness: agent link up")

		l.readAll(tr)

		l.mu.Lock()
		if l.tr == tr {
			l.tr = nil
		}
		l.mu.Unlock()
		tr.Close()
		l.logf("harness: agent link lost")
	}
}

// dial runs one Dial attempt bounded by DialTimeout and link shutdown. An
// abandoned attempt keeps a drainer goroutine behind: Dial has no way to be
// cancelled, so the drainer waits it out and closes whatever transport it
// eventually produces.
func (l *SocketLink) dial() (ipc.Transport, error) {
	type result struct {
		tr  ipc.Transport
		err error
	}
	ch := make(chan result, 1)
	go func() {
		tr, err := l.cfg.Dial()
		ch <- result{tr, err}
	}()
	timer := time.NewTimer(l.cfg.DialTimeout)
	defer timer.Stop()
	abandon := func() {
		go func() {
			if r := <-ch; r.tr != nil {
				r.tr.Close()
			}
		}()
	}
	select {
	case r := <-ch:
		return r.tr, r.err
	case <-l.closed:
		abandon()
		return nil, fmt.Errorf("harness: link closed during dial")
	case <-timer.C:
		abandon()
		l.note(func(s *SocketLinkStats) { s.DialTimeouts++ })
		return nil, fmt.Errorf("harness: agent dial timed out after %v", l.cfg.DialTimeout)
	}
}

// readAll drains tr into the inbox until it fails. Frames are forwarded raw
// (pooled, undecoded); a full inbox drops the frame back into the pool.
func (l *SocketLink) readAll(tr ipc.Transport) {
	for {
		f, err := ipc.RecvFrame(tr)
		if err != nil {
			select {
			case <-l.closed: // deliberate shutdown, not a failure
			default:
				l.note(func(s *SocketLinkStats) { s.RecvErrors++ })
			}
			return
		}
		select {
		case l.inbox <- f:
		default:
			f.Release()
			l.note(func(s *SocketLinkStats) { s.Dropped++ })
		}
	}
}

func (l *SocketLink) logf(format string, args ...any) {
	if l.cfg.Logf != nil {
		l.cfg.Logf(format, args...)
	}
}
