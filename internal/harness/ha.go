package harness

import (
	"time"

	"github.com/ccp-repro/ccp/internal/faults"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/supervise"
)

// HAConfig deploys the high-availability layer (internal/supervise) around
// the deployment's agent: a warm standby fed by a periodic snapshot pump,
// and a supervisor whose failover promotes the standby behind the agent
// injector. Requires Config.AgentFaults — the injector is both the
// supervisor's probe target and the switch that redirects datapath traffic
// to the promoted agent.
//
// In-process replication (the pump applies snapshots straight into the
// standby on the simulator clock) keeps supervised runs deterministic; the
// wire path for two-process deployments is supervise.Replicate /
// Standby.ServeTransport, exercised by the supervise tests and the
// ccp-agent -standby mode.
type HAConfig struct {
	// SnapshotInterval is the replication pump period (default 50ms). The
	// standby's state is at most this stale at failover.
	SnapshotInterval time.Duration
	// Supervisor carries probe cadence and health thresholds. Clock,
	// Handler, and OnFailover are wired by the harness; zero values take
	// the supervise defaults.
	Supervisor supervise.Config
}

// startHA wires the standby, pump, and supervisor into a running Net.
func (n *Net) startHA(cfg HAConfig) {
	if n.AgentInj == nil {
		panic("harness: Config.HA requires Config.AgentFaults")
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = 50 * time.Millisecond
	}
	n.haInterval = cfg.SnapshotInterval
	n.Standby = supervise.NewStandby()
	scfg := cfg.Supervisor
	scfg.Clock = n.Sim
	scfg.Handler = n.AgentInj
	scfg.OnFailover = n.failover
	n.Supervisor = supervise.NewSupervisor(scfg)
	n.Supervisor.Start()
	n.Sim.Schedule(n.haInterval, n.haPump)
}

// haPump replicates one snapshot pass into the standby: a full pass the
// first time (and after each promotion — a fresh agent's flows are all
// unexported, so the incremental pass degenerates to full), incremental
// deltas afterwards. A dead or paused process cannot export its state, so
// replication pauses with it and the standby keeps the last delta it got —
// exactly the staleness the snapshot interval bounds.
func (n *Net) haPump() {
	if m := n.AgentInj.Mode(); m == faults.AgentHealthy || m == faults.AgentSlow {
		full := !n.haPrimed
		if _, err := n.Agent.SnapshotInto(full, func(s *proto.Snapshot) error {
			n.Standby.Apply(s)
			return nil
		}); err == nil {
			n.haPrimed = true
		}
	}
	n.Sim.Schedule(n.haInterval, n.haPump)
}

// failover is the supervisor's promotion hook: build a live agent from the
// standby's store, swap it in behind the injector (healthy passthrough),
// and reset the supervisor's health state so the replacement is judged on
// its own echoes. Datapaths find the new agent through their fallback
// resyncs; restored flows adopt those resyncs instead of cold-rebuilding.
func (n *Net) failover() {
	promoted, err := n.Standby.Promote(n.agentCfg)
	if err != nil {
		panic("harness: promote: " + err.Error())
	}
	n.Agent = promoted
	n.AgentInj.Restart(promoted)
	n.Supervisor.Adopt()
}
