// Package harness assembles complete simulated CCP deployments: a dumbbell
// network, a user-space agent with the bundled algorithm registry, the
// simulated-IPC bridge, and any mix of CCP-controlled and native
// (in-datapath) flows. Experiments, examples, and integration tests all
// build on it.
package harness

import (
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/bridge"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/faults"
	"github.com/ccp-repro/ccp/internal/lang/absint"
	"github.com/ccp-repro/ccp/internal/metrics"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/supervise"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// Config describes a harness deployment.
type Config struct {
	// Seed seeds the simulator RNG (default 1).
	Seed int64
	// Link is the forward bottleneck.
	Link netsim.LinkConfig
	// ReverseDelay overrides the ACK path's one-way delay (default: same
	// as the bottleneck's, i.e. symmetric).
	ReverseDelay time.Duration
	// IPCLatency is the one-way agent↔datapath latency (default 25µs, the
	// order of the Figure 2 Unix-socket measurements).
	IPCLatency time.Duration
	// DefaultAlg names the agent's default algorithm (default "cubic").
	DefaultAlg string
	// Policy optionally clamps per-flow decisions.
	Policy core.PolicyFunc
	// Registry overrides the algorithm registry (default: all bundled).
	Registry *core.Registry
	// Faults, when non-nil, routes every CCP flow's agent↔datapath channel
	// through a fault injector with this plan (drawing on the simulator RNG,
	// so runs stay deterministic per seed).
	Faults *faults.Plan
	// AgentFaults, when true, interposes a faults.AgentInjector between the
	// bridge and the agent, so experiments can pause, slow, kill, and
	// restart the agent process itself (Net.AgentInj / Net.RestartAgent).
	// The injector starts healthy, which is transparent: deliveries are
	// synchronous pass-through.
	AgentFaults bool
	// Metrics, when non-nil, is threaded into the agent and every CCP flow's
	// datapath runtime, so one registry observes the whole deployment.
	Metrics *metrics.Registry
	// HA, when non-nil, deploys the high-availability layer: warm-standby
	// replication plus a supervisor that promotes the standby on agent
	// failure. Requires AgentFaults. See HAConfig.
	HA *HAConfig
	// Verify sets every CCP flow's install-time verification mode unless its
	// datapath.Config says otherwise (ModeDefault here keeps the datapath
	// package default, strict).
	Verify absint.Mode
}

// Net is a running deployment.
type Net struct {
	Sim    *netsim.Sim
	Path   *netsim.Path
	Fwd    *netsim.Demux
	Rev    *netsim.Demux
	Agent  *core.Agent
	Bridge *bridge.Bridge
	// FaultBridge is set when Config.Faults was given; CCP flows connect
	// through it instead of Bridge.
	FaultBridge *faults.Bridge
	// AgentInj is set when Config.AgentFaults was given; the bridge delivers
	// to it instead of directly to Agent.
	AgentInj *faults.AgentInjector
	// Standby and Supervisor are set when Config.HA was given. After a
	// failover, Agent points at the promoted standby.
	Standby    *supervise.Standby
	Supervisor *supervise.Supervisor

	metrics    *metrics.Registry
	agentCfg   core.AgentConfig
	verify     absint.Mode
	nextSID    uint32
	haInterval time.Duration
	haPrimed   bool
}

// New builds a deployment; panics on misconfiguration (tests and
// experiments construct these statically).
func New(cfg Config) *Net {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.IPCLatency == 0 {
		cfg.IPCLatency = 25 * time.Microsecond
	}
	if cfg.DefaultAlg == "" {
		cfg.DefaultAlg = "cubic"
	}
	if cfg.Registry == nil {
		cfg.Registry = algorithms.NewRegistry()
	}
	sim := netsim.New(cfg.Seed)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	path := netsim.NewPath(sim, netsim.PathConfig{
		Bottleneck:   cfg.Link,
		ReverseDelay: cfg.ReverseDelay,
	}, fwd, rev)
	agentCfg := core.AgentConfig{
		Registry:   cfg.Registry,
		DefaultAlg: cfg.DefaultAlg,
		Policy:     cfg.Policy,
		Metrics:    cfg.Metrics,
	}
	agent, err := core.NewAgent(agentCfg)
	if err != nil {
		panic("harness: " + err.Error())
	}
	n := &Net{
		Sim:      sim,
		Path:     path,
		Fwd:      fwd,
		Rev:      rev,
		Agent:    agent,
		metrics:  cfg.Metrics,
		agentCfg: agentCfg,
		verify:   cfg.Verify,
	}
	var sink bridge.Handler = agent
	if cfg.AgentFaults {
		n.AgentInj = faults.NewAgentInjector(agent, func(d time.Duration, fn func()) {
			sim.Schedule(d, fn)
		})
		sink = n.AgentInj
	}
	n.Bridge = bridge.New(sim, sink, cfg.IPCLatency)
	if cfg.Faults != nil {
		n.FaultBridge = faults.NewBridge(sim, n.Bridge, *cfg.Faults)
	}
	if cfg.HA != nil {
		n.startHA(*cfg.HA)
	}
	return n
}

// RestartAgent models an agent process restart: a fresh agent (empty flow
// table, same configuration) replaces the old one behind the injector, and
// the injector returns to healthy pass-through. Flows re-enter the fresh
// agent via the datapaths' Resync Creates. Panics unless the deployment was
// built with AgentFaults.
func (n *Net) RestartAgent() {
	if n.AgentInj == nil {
		panic("harness: RestartAgent requires Config.AgentFaults")
	}
	agent, err := core.NewAgent(n.agentCfg)
	if err != nil {
		panic("harness: " + err.Error())
	}
	n.Agent = agent
	n.AgentInj.Restart(agent)
}

// CCPFlow is a CCP-controlled flow plus its datapath runtime.
type CCPFlow struct {
	*tcp.Flow
	DP *datapath.CCP
}

// AddCCPFlow creates a flow whose congestion control runs in the agent
// under the named algorithm ("" = agent default). Call Conn.Start (or
// StartAt) to begin.
func (n *Net) AddCCPFlow(id netsim.FlowID, alg string, opts tcp.Options) *CCPFlow {
	return n.AddCCPFlowCfg(id, alg, opts, datapath.Config{})
}

// AddCCPFlowCfg is AddCCPFlow with extra datapath configuration
// (FallbackAfter, DefaultProgram, MaxVectorRows).
func (n *Net) AddCCPFlowCfg(id netsim.FlowID, alg string, opts tcp.Options, dpCfg datapath.Config) *CCPFlow {
	n.nextSID++
	dpCfg.SID = n.nextSID
	dpCfg.Alg = alg
	if dpCfg.Metrics == nil {
		dpCfg.Metrics = n.metrics
	}
	if dpCfg.Verify == absint.ModeDefault {
		dpCfg.Verify = n.verify
	}
	var dp *datapath.CCP
	if n.FaultBridge != nil {
		dp = n.FaultBridge.Connect(dpCfg)
	} else {
		dp = n.Bridge.Connect(dpCfg)
	}
	f := tcp.NewFlow(n.Sim, id, n.Path, n.Fwd, n.Rev, dp, opts)
	return &CCPFlow{Flow: f, DP: dp}
}

// AddNativeFlow creates a flow with in-datapath congestion control (the
// paper's baseline configuration).
func (n *Net) AddNativeFlow(id netsim.FlowID, cc tcp.CongestionControl, opts tcp.Options) *tcp.Flow {
	return tcp.NewFlow(n.Sim, id, n.Path, n.Fwd, n.Rev, cc, opts)
}

// StartAt schedules a flow start at sim time t.
func (n *Net) StartAt(f *tcp.Flow, t time.Duration) {
	n.Sim.Schedule(t, f.Conn.Start)
}

// StopAt schedules a flow stop at sim time t.
func (n *Net) StopAt(f *tcp.Flow, t time.Duration) {
	n.Sim.Schedule(t, f.Conn.Stop)
}

// Run advances the simulation to the given absolute time.
func (n *Net) Run(until time.Duration) {
	n.Sim.Run(until)
}

// Utilization returns the bottleneck utilization over elapsed time.
func (n *Net) Utilization(elapsed time.Duration) float64 {
	return n.Path.Forward.Utilization(elapsed)
}

// Gbps converts bits/sec for LinkConfig literals.
func Gbps(g float64) float64 { return g * 1e9 }

// Mbps converts bits/sec for LinkConfig literals.
func Mbps(m float64) float64 { return m * 1e6 }

// BDPBytes computes a bandwidth-delay product for buffer sizing.
func BDPBytes(rateBps float64, rtt time.Duration) int {
	return int(rateBps / 8 * rtt.Seconds())
}
