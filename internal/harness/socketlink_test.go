package harness_test

import (
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// agentProc is one "agent process": a core.Agent serving a Unix socket, with
// enough handles to kill it abruptly.
type agentProc struct {
	agent *core.Agent
	ln    *net.UnixListener
	conns chan ipc.Transport
}

func startAgentProc(t *testing.T, sockPath string) *agentProc {
	t.Helper()
	agent, err := core.NewAgent(core.AgentConfig{
		Registry:   algorithms.NewRegistry(),
		DefaultAlg: "cubic",
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := ipc.ListenUnix(sockPath)
	if err != nil {
		t.Fatal(err)
	}
	p := &agentProc{agent: agent, ln: ln, conns: make(chan ipc.Transport, 4)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			tr := ipc.NewStream(conn)
			p.conns <- tr
			go agent.ServeTransport(tr)
		}
	}()
	return p
}

// kill closes the listener and every accepted connection: the process dies,
// its socket buffers die with it.
func (p *agentProc) kill() {
	p.ln.Close()
	for {
		select {
		case tr := <-p.conns:
			tr.Close()
		default:
			return
		}
	}
}

// hungTransport is a transport produced by a dial the link already gave up
// on; the link's drainer must close it.
type hungTransport struct {
	once   sync.Once // several abandoned dials may share one transport
	closed chan struct{}
}

func (h *hungTransport) Send([]byte) error     { return nil }
func (h *hungTransport) Recv() ([]byte, error) { select {} }
func (h *hungTransport) Close() error {
	h.once.Do(func() { close(h.closed) })
	return nil
}

// TestSocketLinkBoundsHungDial wedges Dial (a SYN into a black hole, a
// deadlocked listener): every attempt must be abandoned at DialTimeout and
// counted, and Close must return promptly with a dial still in flight — the
// regression this guards is an unbounded dial hanging the whole harness
// teardown.
func TestSocketLinkBoundsHungDial(t *testing.T) {
	release := make(chan struct{})
	tr := &hungTransport{closed: make(chan struct{})}
	link := harness.NewSocketLink(harness.SocketLinkConfig{
		Dial: func() (ipc.Transport, error) {
			<-release // wedged until the test lets go
			return tr, nil
		},
		DialTimeout: 10 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})

	deadline := time.Now().Add(10 * time.Second)
	for link.Stats().DialTimeouts < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("dial timeouts never accrued: %+v", link.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if link.Connected() {
		t.Fatal("link claims connected with every dial wedged")
	}

	done := make(chan struct{})
	go func() {
		link.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung behind a wedged dial")
	}

	// The wedged dial finally completes after abandonment: its transport
	// belongs to nobody and the link's drainer must close it.
	close(release)
	select {
	case <-tr.closed:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned dial's transport leaked unclosed")
	}
}

// TestSocketLinkSurvivesAgentRestart kills the agent process mid-run and
// starts a fresh one on the same socket. The SocketLink must redial on its
// own and resync the flow: the new agent — which has never seen the flow —
// re-adopts it from the replayed Create, re-installs its program, and the
// datapath leaves §5 fallback. No test code re-announces anything.
func TestSocketLinkSurvivesAgentRestart(t *testing.T) {
	sockPath := filepath.Join(t.TempDir(), "ccp.sock")
	proc1 := startAgentProc(t, sockPath)

	link := harness.NewSocketLink(harness.SocketLinkConfig{
		Dial:        func() (ipc.Transport, error) { return ipc.DialUnix(sockPath) },
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Logf:        t.Logf,
	})
	defer link.Close()

	sim := netsim.New(1)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	lnk := netsim.LinkConfig{RateBps: 48e6, Delay: 5 * time.Millisecond, QueueBytes: 60000}
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: lnk}, fwd, rev)

	dp := datapath.New(datapath.Config{
		SID:           1,
		Alg:           "cubic",
		Clock:         sim,
		ToAgent:       link.ToAgent,
		FallbackAfter: 200 * time.Millisecond,
	})
	link.Attach(dp)
	flow := tcp.NewFlow(sim, 1, path, fwd, rev, dp, tcp.Options{})
	flow.Conn.Start()

	const slice = 5 * time.Millisecond
	deadline := time.Now().Add(60 * time.Second)
	runUntil := func(until time.Duration) {
		t.Helper()
		for now := sim.Now(); now < until; now += slice {
			if time.Now().After(deadline) {
				t.Fatal("wall-clock deadline exceeded")
			}
			sim.Run(now + slice)
			link.Pump()
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitConnected := func() {
		t.Helper()
		for !link.Connected() {
			if time.Now().After(deadline) {
				t.Fatal("link never reconnected")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: healthy run under agent 1.
	waitConnected()
	runUntil(1 * time.Second)
	if proc1.agent.Stats().FlowsCreated != 1 {
		t.Fatalf("agent1 flows=%d", proc1.agent.Stats().FlowsCreated)
	}
	if dp.Stats().InstallsRecvd == 0 {
		t.Fatal("agent1 never installed a program")
	}

	// Phase 2: the agent process dies. The flow keeps running; the sim keeps
	// advancing; the §5 fallback takes over once the silence exceeds 200ms.
	proc1.kill()
	runUntil(2 * time.Second)
	if !dp.FallbackActive() {
		t.Fatal("fallback not active with the agent dead")
	}

	// Phase 3: a fresh agent process appears on the same socket. The link
	// must reconnect and resync without any help.
	proc2 := startAgentProc(t, sockPath)
	defer proc2.kill()
	waitConnected()
	runUntil(4 * time.Second)

	if got := proc2.agent.Stats().FlowsCreated; got < 1 {
		t.Fatalf("agent2 never re-adopted the flow (flows=%d)", got)
	}
	if dp.FallbackActive() {
		t.Fatal("fallback still active after agent restart")
	}
	if dp.Stats().FallbackOff == 0 {
		t.Fatalf("fallback never deactivated: %+v", dp.Stats())
	}
	st := link.Stats()
	if st.Connects < 2 || st.Resyncs < 1 {
		t.Fatalf("link stats=%+v", st)
	}
	// The flow made progress in every phase.
	if u := path.Forward.Utilization(4 * time.Second); u < 0.5 {
		t.Fatalf("utilization %.3f across the agent restart", u)
	}
}
