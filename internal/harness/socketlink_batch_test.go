package harness_test

import (
	"sync"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
)

// pairLink builds a SocketLink over an in-process transport pair, returning
// the agent-side endpoint for the test to write into.
func pairLink(t *testing.T, depth int) (*harness.SocketLink, ipc.Transport) {
	t.Helper()
	dpSide, agentSide := ipc.ChanPair(depth)
	dialed := false
	link := harness.NewSocketLink(harness.SocketLinkConfig{
		Dial: func() (ipc.Transport, error) {
			if dialed {
				// One connection per test; redial attempts fail fast and the
				// connect loop backs off until Close.
				return nil, ipc.ErrClosed
			}
			dialed = true
			return dpSide, nil
		},
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		InboxDepth:  4 * depth, // batches split into sub-messages before queueing
	})
	t.Cleanup(func() { link.Close() })
	for !link.Connected() {
		time.Sleep(time.Millisecond)
	}
	return link, agentSide
}

func sendMsg(t *testing.T, tr ipc.Transport, m proto.Msg) {
	t.Helper()
	data, err := proto.Marshal(m)
	if err != nil {
		t.Error(err) // may run off the test goroutine: no Fatal
		return
	}
	if err := tr.Send(data); err != nil {
		t.Error(err)
	}
}

// attachDP builds a minimal datapath runtime (no connection) that can still
// receive Deliver calls and count them.
func attachDP(link *harness.SocketLink, sim *netsim.Sim, sid uint32) *datapath.CCP {
	dp := datapath.New(datapath.Config{
		SID:     sid,
		Clock:   sim,
		ToAgent: link.ToAgent,
	})
	link.Attach(dp)
	return dp
}

func TestSocketLinkUnbatchesAgentFrames(t *testing.T) {
	link, agentSide := pairLink(t, 64)
	sim := netsim.New(1)
	dp1 := attachDP(link, sim, 1)
	dp2 := attachDP(link, sim, 2)

	// An agent-side batch frame spanning both flows: the link must split it
	// and route each sub-message by its own SID.
	sendMsg(t, agentSide, &proto.Batch{Msgs: []proto.Msg{
		&proto.SetCwnd{SID: 1, Seq: 1, Bytes: 10000},
		&proto.SetCwnd{SID: 2, Seq: 1, Bytes: 20000},
		&proto.SetRate{SID: 1, Seq: 2, Bps: 5e6},
	}})
	deadline := time.Now().Add(5 * time.Second)
	for dp1.Stats().SetCwndRecvd+dp1.Stats().SetRateRecvd+dp2.Stats().SetCwndRecvd < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("batch not fully delivered: dp1=%+v dp2=%+v stats=%+v",
				dp1.Stats(), dp2.Stats(), link.Stats())
		}
		link.Pump()
		time.Sleep(time.Millisecond)
	}
	if st := link.Stats(); st.UnknownSID != 0 || st.DecodeErrors != 0 {
		t.Fatalf("link stats=%+v", st)
	}
	if dp1.Stats().SetCwndRecvd != 1 || dp1.Stats().SetRateRecvd != 1 || dp2.Stats().SetCwndRecvd != 1 {
		t.Fatalf("misrouted: dp1=%+v dp2=%+v", dp1.Stats(), dp2.Stats())
	}
}

// TestSocketLinkConcurrentInboxAndPump hammers the link from three sides at
// once — the reader goroutine filling the inbox, Pump draining it, and flows
// sending ToAgent — to give the race detector something to chew on (the
// make check -race run covers this path).
func TestSocketLinkConcurrentInboxAndPump(t *testing.T) {
	link, agentSide := pairLink(t, 4096)
	sim := netsim.New(1)
	const flows = 8
	dps := make([]*datapath.CCP, flows)
	for i := range dps {
		dps[i] = attachDP(link, sim, uint32(i+1))
	}

	const perFlow = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Agent side: singles and batches, interleaved across flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := uint32(1); seq <= perFlow; seq++ {
			var batch []proto.Msg
			for sid := uint32(1); sid <= flows; sid++ {
				if sid%2 == 0 {
					batch = append(batch, &proto.SetCwnd{SID: sid, Seq: seq, Bytes: uint32(seq) * 100})
				} else {
					sendMsg(t, agentSide, &proto.SetCwnd{SID: sid, Seq: seq, Bytes: uint32(seq) * 100})
				}
			}
			sendMsg(t, agentSide, &proto.Batch{Msgs: batch})
		}
	}()

	// Datapath side: concurrent ToAgent traffic and stats reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = link.ToAgent(&proto.Measurement{SID: uint32(i%flows + 1), Seq: uint32(i + 1), Fields: []float64{1}})
			_ = link.Stats()
			_ = link.Connected()
		}
	}()

	// Agent side must also drain what the datapaths send, or the pair fills.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := agentSide.Recv(); err != nil {
				return
			}
		}
	}()

	want := flows * perFlow
	deadline := time.Now().Add(30 * time.Second)
	total := func() int {
		n := 0
		for _, dp := range dps {
			n += dp.Stats().SetCwndRecvd
		}
		return n
	}
	for total() < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d (link stats=%+v)", total(), want, link.Stats())
		}
		link.Pump()
	}
	close(stop)
	if st := link.Stats(); st.UnknownSID != 0 || st.Dropped != 0 || st.DecodeErrors != 0 {
		t.Fatalf("link stats=%+v", st)
	}
	// Per-flow control sequence: each flow applied exactly perFlow decisions
	// in order (none stale, none lost).
	for i, dp := range dps {
		if got := dp.Stats().SetCwndRecvd; got != perFlow {
			t.Fatalf("flow %d applied %d/%d decisions", i+1, got, perFlow)
		}
		if dp.Stats().StaleCtrlDropped != 0 {
			t.Fatalf("flow %d saw reordered control: %+v", i+1, dp.Stats())
		}
	}
	link.Close()
	wg.Wait()
}
