package harness_test

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// TestAgentOverRealUnixSocket is the full Figure 1 deployment as an
// automated test: the agent serves the wire protocol on a real Unix stream
// socket (exactly like cmd/ccp-agent), the simulated datapath's CCP runtime
// marshals its messages onto that socket, and the simulation advances in
// wall-clock slices with agent replies pumped back in between.
func TestAgentOverRealUnixSocket(t *testing.T) {
	sockPath := filepath.Join(t.TempDir(), "ccp.sock")

	agent, err := core.NewAgent(core.AgentConfig{
		Registry:   algorithms.NewRegistry(),
		DefaultAlg: "cubic",
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := ipc.ListenUnix(sockPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		agent.ServeTransport(ipc.NewStream(conn))
	}()

	client, err := ipc.DialUnix(sockPath)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sim := netsim.New(1)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	link := netsim.LinkConfig{RateBps: 48e6, Delay: 5 * time.Millisecond, QueueBytes: 60000}
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: link}, fwd, rev)

	dp := datapath.New(datapath.Config{
		SID:   1,
		Alg:   "cubic",
		Clock: sim,
		ToAgent: func(m proto.Msg) error {
			data, err := proto.Marshal(m)
			if err != nil {
				return err
			}
			return client.Send(data)
		},
	})
	flow := tcp.NewFlow(sim, 1, path, fwd, rev, dp, tcp.Options{})

	replies := make(chan proto.Msg, 256)
	go func() {
		for {
			data, err := client.Recv()
			if err != nil {
				close(replies)
				return
			}
			m, err := proto.Unmarshal(data)
			if err != nil {
				t.Errorf("bad reply frame: %v", err)
				continue
			}
			replies <- m
		}
	}()

	flow.Conn.Start()
	const (
		dur   = 4 * time.Second
		slice = 5 * time.Millisecond
	)
	received := 0
	deadline := time.Now().Add(30 * time.Second)
	for now := time.Duration(0); now < dur; now += slice {
		if time.Now().After(deadline) {
			t.Fatal("wall-clock deadline exceeded")
		}
		sim.Run(now + slice)
	drain:
		for {
			select {
			case m, ok := <-replies:
				if !ok {
					break drain
				}
				received++
				dp.Deliver(m)
			default:
				break drain
			}
		}
		time.Sleep(100 * time.Microsecond)
	}

	if agent.Stats().FlowsCreated != 1 {
		t.Fatalf("agent flows=%d", agent.Stats().FlowsCreated)
	}
	if agent.Stats().Measurements == 0 {
		t.Fatal("no measurements crossed the socket")
	}
	if received == 0 || dp.Stats().InstallsRecvd == 0 {
		t.Fatalf("no agent control crossed back: received=%d installs=%d",
			received, dp.Stats().InstallsRecvd)
	}
	if u := path.Forward.Utilization(dur); u < 0.5 {
		t.Fatalf("utilization %.3f with socket-attached agent", u)
	}
}
