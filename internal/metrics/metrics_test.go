package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reports")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter=%d want 5", got)
	}
	if r.Counter("reports") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge=%d want 4", got)
	}
}

func TestNilRegistryIsUsable(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z").Observe(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count=%d", s.Count)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min=%v max=%v", s.Min, s.Max)
	}
	// Bucket resolution is a power of two: the quantile estimate must be an
	// upper bound within 2x of the true value.
	for _, tc := range []struct{ q, truth float64 }{{0.5, 500}, {0.99, 990}, {1, 1000}} {
		got := s.Quantile(tc.q)
		if got < tc.truth || got > 2*tc.truth {
			t.Errorf("q%.2f=%v, want in [%v, %v]", tc.q, got, tc.truth, 2*tc.truth)
		}
	}
	if mean := s.Mean(); mean < 499 || mean > 502 {
		t.Errorf("mean=%v want ~500.5", mean)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
	h.Observe(-5) // clamps to 0
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("negative-observation snapshot %+v", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10)
	}
	for i := 0; i < 100; i++ {
		b.Observe(1000)
	}
	a.Merge(&b)
	s := a.Snapshot()
	if s.Count != 200 {
		t.Fatalf("merged count=%d", s.Count)
	}
	if s.Min != 10 || s.Max != 1000 {
		t.Fatalf("merged min=%v max=%v", s.Min, s.Max)
	}
	if q := s.Quantile(0.25); q < 10 || q > 20 {
		t.Errorf("q25=%v want ~10..16", q)
	}
	if q := s.Quantile(0.9); q < 1000 || q > 2000 {
		t.Errorf("q90=%v want ~1000..1024", q)
	}

	// Merging an empty histogram is a no-op; merging into an empty one
	// copies.
	var empty, dst Histogram
	a.Merge(&empty)
	if a.Snapshot().Count != 200 {
		t.Fatal("merge of empty changed count")
	}
	dst.Merge(&a)
	if got := dst.Snapshot(); got.Count != 200 || got.Min != 10 {
		t.Fatalf("merge into empty: %+v", got)
	}
	a.Merge(nil) // must not panic
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per + i + 1))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count=%d want %d", s.Count, workers*per)
	}
	if s.Min != 1 || s.Max != workers*per {
		t.Fatalf("min=%v max=%v", s.Min, s.Max)
	}
}

func TestSnapshotStringDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("depth").Set(3)
	r.Histogram("lat").Observe(100)
	s1, s2 := r.Snapshot().String(), r.Snapshot().String()
	if s1 != s2 {
		t.Fatalf("snapshot render unstable:\n%s\nvs\n%s", s1, s2)
	}
	if !strings.Contains(s1, "counter a 2") || !strings.Contains(s1, "counter b 1") {
		t.Fatalf("missing counters in render:\n%s", s1)
	}
	if strings.Index(s1, "counter a") > strings.Index(s1, "counter b") {
		t.Fatalf("counters not sorted:\n%s", s1)
	}
}
