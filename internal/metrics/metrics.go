// Package metrics is a lightweight instrumentation registry for the CCP
// runtime: counters, gauges, and histograms shared by the agent, the
// datapath runtimes, the transports, and the sharded executor. The paper's
// scaling question ("can CCP handle many flows?", §4) is an empirical one;
// this package supplies the numbers — reports processed, batch sizes, queue
// depths, drops, fallback activations — that the scale experiments consume.
//
// Design constraints, in order:
//
//  1. Hot-path writes are a single atomic op (Counter.Inc, Gauge.Add,
//     Histogram.Observe). No locks, no allocation, safe from any goroutine.
//  2. A nil *Registry is valid everywhere: lookups return detached
//     instruments that absorb writes. Instrumented code never nil-checks.
//  3. Reads are snapshots: Snapshot() returns a stable, sorted view the
//     experiments serialize, decoupled from concurrent writers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error but are not checked
// on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, live flows).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// counts observations in (2^(i-1), 2^i] times the histogram's unit, with
// bucket 0 catching everything ≤ 1 unit and the last bucket unbounded;
// 64 buckets span any int64-expressible magnitude.
const histBuckets = 64

// Histogram accumulates a distribution of non-negative observations in
// power-of-two buckets. Observe is lock-free; Snapshot and Merge are
// consistent enough for reporting (they read counters individually, so a
// snapshot taken mid-burst may be off by in-flight observations — fine for
// telemetry, and the scale experiments quiesce before reading).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // sum of raw observations, truncated to int64
	max     atomic.Int64
	min     atomic.Int64 // stored as value+1 so 0 means "no observations yet"
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps an observation to its bucket index: ceil(log2(v)) clamped
// to the table.
func bucketFor(v float64) int {
	if v <= 1 {
		return 0
	}
	b := int(math.Ceil(math.Log2(v)))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpper returns bucket i's inclusive upper bound.
func bucketUpper(i int) float64 {
	return math.Exp2(float64(i))
}

// Observe records one observation. Negative values clamp to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v))
	for {
		cur := h.max.Load()
		if int64(v) <= cur || h.max.CompareAndSwap(cur, int64(v)) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if cur != 0 && int64(v)+1 >= cur {
			break
		}
		if h.min.CompareAndSwap(cur, int64(v)+1) {
			break
		}
	}
}

// Merge folds other's observations into h. Used to combine per-shard
// histograms after the shards have quiesced; it is not atomic with respect
// to concurrent Observe calls on either side.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	oc := other.count.Load()
	if oc == 0 {
		return
	}
	h.count.Add(oc)
	h.sum.Add(other.sum.Load())
	for i := range h.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	if om := other.max.Load(); om > h.max.Load() {
		h.max.Store(om)
	}
	if om := other.min.Load(); om != 0 {
		if cur := h.min.Load(); cur == 0 || om < cur {
			h.min.Store(om)
		}
	}
}

// HistogramSnapshot is a point-in-time view of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets []BucketCount // non-empty buckets only, ascending
}

// BucketCount is one non-empty bucket: Count observations ≤ Upper (and
// above the previous bucket's bound).
type BucketCount struct {
	Upper float64
	Count int64
}

// Snapshot captures the histogram's current distribution.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   float64(h.sum.Load()),
		Max:   float64(h.max.Load()),
	}
	if m := h.min.Load(); m != 0 {
		s.Min = float64(m - 1)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Upper: bucketUpper(i), Count: n})
		}
	}
	return s
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1])
// from the bucket boundaries: the upper bound of the bucket containing the
// q-th observation. Resolution is the power-of-two bucket width.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			if b.Upper > s.Max {
				return s.Max // the last occupied bucket is bounded by the true max
			}
			return b.Upper
		}
	}
	return s.Max
}

// Registry names and owns instruments. The zero value is not usable; use
// NewRegistry. A nil *Registry is usable: every lookup returns a detached
// instrument, so instrumentation can be threaded unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns a detached counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On a nil
// registry it returns a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. On a
// nil registry it returns a detached histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a stable view of every instrument, keys sorted.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every instrument's current value. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// String renders the snapshot deterministically (sorted names), one
// instrument per line — the experiments' debug dump format.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %d\n", name, s.Gauges[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "histogram %s count=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g\n",
			name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max)
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
