//go:build !race

// Package testenv exposes build-time test environment facts, currently just
// whether the race detector is compiled in (its instrumentation allocates, so
// allocation-count tests skip under -race).
package testenv

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
