package bridge_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/bridge"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/proto"

	"github.com/ccp-repro/ccp/internal/netsim"
)

type echoAlg struct{ inits int }

func (e *echoAlg) Name() string { return "echo" }
func (e *echoAlg) Init(f *core.Flow) {
	e.inits++
	f.SetCwnd(4242)
}
func (e *echoAlg) OnMeasurement(f *core.Flow, m core.Measurement) {}
func (e *echoAlg) OnUrgent(f *core.Flow, u core.UrgentEvent)      {}

func newAgent(t *testing.T, alg core.Alg) *core.Agent {
	t.Helper()
	reg := core.NewRegistry()
	reg.Register("echo", func() core.Alg { return alg })
	a, err := core.NewAgent(core.AgentConfig{Registry: reg, DefaultAlg: "echo"})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBridgeDelaysByLatency(t *testing.T) {
	sim := netsim.New(1)
	alg := &echoAlg{}
	agent := newAgent(t, alg)
	b := bridge.New(sim, agent, 100*time.Microsecond)

	var delivered []proto.Msg
	var deliveredAt []time.Duration
	send := b.DatapathSender(func(m proto.Msg) {
		delivered = append(delivered, m)
		deliveredAt = append(deliveredAt, sim.Now())
	})

	if err := send(&proto.Create{SID: 1, MSS: 1448, InitCwnd: 14480}); err != nil {
		t.Fatal(err)
	}
	if alg.inits != 0 {
		t.Fatal("message arrived synchronously")
	}
	sim.Run(time.Second)
	if alg.inits != 1 {
		t.Fatal("create not delivered")
	}
	// The agent's SetCwnd reply must arrive after 2x the one-way latency.
	if len(delivered) != 1 {
		t.Fatalf("replies=%d", len(delivered))
	}
	if sc, ok := delivered[0].(*proto.SetCwnd); !ok || sc.Bytes != 4242 {
		t.Fatalf("reply=%#v", delivered[0])
	}
	if deliveredAt[0] != 200*time.Microsecond {
		t.Fatalf("reply at %v, want 200µs", deliveredAt[0])
	}
	st := b.Stats()
	if st.ToAgentMsgs != 1 || st.ToDpMsgs != 1 || st.ToAgentBytes == 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestBridgeStopDropsTraffic(t *testing.T) {
	sim := netsim.New(1)
	alg := &echoAlg{}
	agent := newAgent(t, alg)
	b := bridge.New(sim, agent, time.Microsecond)
	send := b.DatapathSender(func(m proto.Msg) {})
	b.Stop()
	if !b.Stopped() {
		t.Fatal("not stopped")
	}
	if err := send(&proto.Create{SID: 1}); err != nil {
		t.Fatalf("send on stopped bridge errored: %v", err)
	}
	sim.Run(time.Second)
	if alg.inits != 0 {
		t.Fatal("message delivered through stopped bridge")
	}
	b.Start()
	send(&proto.Create{SID: 2, MSS: 1448, InitCwnd: 14480})
	sim.Run(2 * time.Second)
	if alg.inits != 1 {
		t.Fatal("message not delivered after restart")
	}
}

func TestBridgeStopDiscardsInFlight(t *testing.T) {
	// Messages scheduled before Stop must not arrive after it: a killed
	// process loses its socket buffer, so a "crash" discards in-flight
	// deliveries even across a later restart.
	sim := netsim.New(1)
	alg := &echoAlg{}
	agent := newAgent(t, alg)
	b := bridge.New(sim, agent, 10*time.Millisecond)
	var delivered int
	send := b.DatapathSender(func(m proto.Msg) { delivered++ })

	send(&proto.Create{SID: 1, MSS: 1448, InitCwnd: 14480}) // in flight at crash
	sim.Schedule(1*time.Millisecond, b.Stop)
	sim.Schedule(2*time.Millisecond, b.Start) // restart before delivery time
	sim.Run(time.Second)
	if alg.inits != 0 {
		t.Fatalf("in-flight message survived the crash (inits=%d)", alg.inits)
	}

	// The restarted bridge still carries traffic.
	send(&proto.Create{SID: 2, MSS: 1448, InitCwnd: 14480})
	sim.Run(2 * time.Second)
	if alg.inits != 1 {
		t.Fatal("message not delivered after restart")
	}
	if delivered == 0 {
		t.Fatal("no agent reply delivered after restart")
	}
}

func TestBridgeStopDiscardsInFlightReplies(t *testing.T) {
	// Same for the agent→datapath direction: a reply scheduled before the
	// crash must not reach the datapath afterwards.
	sim := netsim.New(1)
	alg := &echoAlg{}
	agent := newAgent(t, alg)
	b := bridge.New(sim, agent, 10*time.Millisecond)
	var delivered int
	send := b.DatapathSender(func(m proto.Msg) { delivered++ })

	send(&proto.Create{SID: 1, MSS: 1448, InitCwnd: 14480})
	sim.Run(15 * time.Millisecond) // Create delivered; SetCwnd reply in flight
	if alg.inits != 1 || delivered != 0 {
		t.Fatalf("setup: inits=%d delivered=%d", alg.inits, delivered)
	}
	b.Stop()
	b.Start()
	sim.Run(time.Second)
	if delivered != 0 {
		t.Fatalf("in-flight reply survived the crash (delivered=%d)", delivered)
	}
}

func TestBridgeSetLatency(t *testing.T) {
	sim := netsim.New(1)
	agent := newAgent(t, &echoAlg{})
	b := bridge.New(sim, agent, time.Millisecond)
	b.SetLatency(time.Hour)
	send := b.DatapathSender(func(m proto.Msg) {})
	send(&proto.Create{SID: 1})
	sim.Run(time.Minute)
	if agent.Stats().FlowsCreated != 0 {
		t.Fatal("latency change not applied")
	}
}
