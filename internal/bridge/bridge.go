// Package bridge wires CCP datapath runtimes to a CCP agent inside the
// simulator, modelling the IPC channel of Figure 1 as a configurable
// latency. Every message is marshalled to and from the wire format, so the
// full protocol path is exercised even in simulation; only the transport's
// latency is modelled rather than measured.
//
// Frames cross the bridge as pooled buffers (proto.MarshalFrame) and are
// decoded into per-bridge scratch state (proto.Decoder), so a steady stream
// of reports costs one frame-pool round trip per message instead of a fresh
// byte slice plus a fresh message struct.
package bridge

import (
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
)

// Handler consumes datapath→agent messages: a *core.Agent or a sharded
// *runtime.Runtime both satisfy it, so simulations can swap the single-loop
// agent for the sharded executor without touching the bridge.
//
// Ownership: m is only valid for the duration of the call — the bridge
// decodes into reusable scratch state and reclaims it as soon as
// HandleMessage returns. An implementation that queues m for later must take
// its own copy (proto.Clone).
type Handler interface {
	HandleMessage(m proto.Msg, reply func(proto.Msg) error)
}

// Stats counts bridge traffic, for the CPU/message accounting experiments.
type Stats struct {
	ToAgentMsgs   int
	ToAgentBytes  int64
	ToDpMsgs      int
	ToDpBytes     int64
	MarshalErrors int
}

// Bridge connects one agent to any number of datapath runtimes over a
// simulated IPC link with fixed one-way latency. A negative latency or a
// stopped bridge drops messages (used to simulate agent death for the §5
// fallback experiment).
type Bridge struct {
	sim     *netsim.Sim
	agent   Handler
	latency time.Duration
	stopped bool
	// gen counts Stop calls. Deliveries capture the generation they were
	// scheduled under and are discarded if a Stop intervened before they
	// fire: a killed process loses its socket buffer, so messages already
	// "in the kernel" at crash time must vanish with it.
	gen   uint64
	stats Stats

	// dec is the bridge's decode scratch. The simulator is single-threaded
	// and every delivery consumes its decoded message before returning, so
	// one decoder serves both directions.
	dec proto.Decoder
}

// New creates a bridge to agent with the given one-way IPC latency.
func New(sim *netsim.Sim, agent Handler, latency time.Duration) *Bridge {
	return &Bridge{sim: sim, agent: agent, latency: latency}
}

// Stats returns a snapshot of the bridge counters.
func (b *Bridge) Stats() Stats { return b.stats }

// SetLatency changes the one-way IPC latency for subsequent messages.
func (b *Bridge) SetLatency(d time.Duration) { b.latency = d }

// Stop makes the bridge drop all traffic in both directions, simulating an
// agent crash: future sends are dropped, and messages already scheduled for
// delivery are discarded when they fire. Resume with Start.
func (b *Bridge) Stop() {
	b.stopped = true
	b.gen++
}

// Start re-enables a stopped bridge (the agent process restarted).
func (b *Bridge) Start() { b.stopped = false }

// Stopped reports whether the bridge is dropping traffic.
func (b *Bridge) Stopped() bool { return b.stopped }

// DatapathSender returns the ToAgent function for a datapath runtime whose
// agent→datapath deliveries go to deliver (normally (*datapath.CCP).Deliver).
func (b *Bridge) DatapathSender(deliver func(proto.Msg)) func(proto.Msg) error {
	reply := func(m proto.Msg) error {
		// Marshal on the agent side, unmarshal on the datapath side.
		f, err := proto.MarshalFrame(m)
		if err != nil {
			b.stats.MarshalErrors++
			return err
		}
		if b.stopped {
			f.Release()
			return nil // silently lost, like a dead process's socket buffer
		}
		b.stats.ToDpMsgs++
		b.stats.ToDpBytes += int64(len(f.B))
		gen := b.gen
		b.sim.Schedule(b.latency, func() {
			defer f.Release() // the frame dies with the delivery either way
			if b.stopped || b.gen != gen {
				return // crashed while in flight
			}
			msg, err := b.dec.Unmarshal(f.B)
			if err != nil {
				b.stats.MarshalErrors++
				return
			}
			deliver(msg)
		})
		return nil
	}
	return func(m proto.Msg) error {
		f, err := proto.MarshalFrame(m)
		if err != nil {
			b.stats.MarshalErrors++
			return err
		}
		if b.stopped {
			f.Release()
			return nil
		}
		b.stats.ToAgentMsgs++
		b.stats.ToAgentBytes += int64(len(f.B))
		gen := b.gen
		b.sim.Schedule(b.latency, func() {
			defer f.Release()
			if b.stopped || b.gen != gen {
				return // crashed while in flight
			}
			msg, err := b.dec.Unmarshal(f.B)
			if err != nil {
				b.stats.MarshalErrors++
				return
			}
			b.agent.HandleMessage(msg, reply)
		})
		return nil
	}
}

// Connect builds a datapath runtime for one flow, wired through the bridge.
// It is the common setup path for simulation experiments.
func (b *Bridge) Connect(cfg datapath.Config) *datapath.CCP {
	cfg.Clock = b.sim
	var dp *datapath.CCP
	cfg.ToAgent = b.DatapathSender(func(m proto.Msg) { dp.Deliver(m) })
	dp = datapath.New(cfg)
	return dp
}
