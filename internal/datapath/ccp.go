// Package datapath implements the CCP modification to the datapath (§2):
// the runtime that a CCP-conformant datapath embeds. It plugs into the
// transport as a tcp.CongestionControl, but instead of making congestion
// control decisions locally it:
//
//   - executes the control program installed by the user-space agent
//     (Rate/Cwnd/Wait/WaitRtts/Report phase machine),
//   - summarizes per-ACK measurements with a fold function, a per-packet
//     vector, or the §3 prototype's EWMA filters,
//   - reports batched measurements at the program's Report points and
//     urgent events (loss, timeouts, optionally ECN) immediately, and
//   - enforces the window/rate decisions that arrive asynchronously.
//
// It also implements the §5 safety fallback: if the agent goes silent, the
// datapath reverts to a built-in NewReno until the agent returns.
package datapath

import (
	"time"

	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/lang/absint"
	"github.com/ccp-repro/ccp/internal/metrics"
	"github.com/ccp-repro/ccp/internal/nativecc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/stats"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// Config configures one flow's CCP datapath runtime.
type Config struct {
	// SID identifies the flow on the wire protocol.
	SID uint32
	// Alg optionally names the algorithm the agent should run for this flow.
	Alg string
	// Clock provides time and timers (the simulator in experiments, a
	// RealClock over real transports).
	Clock netsim.Clock
	// ToAgent transmits a message to the agent. In simulation it schedules
	// a delayed delivery; over a real transport it marshals and sends.
	//
	// Ownership: the message (including a Batch's Msgs and any Fields/Data
	// slices) is only valid for the duration of the call — the runtime emits
	// reports from reusable scratch. ToAgent must marshal or deep-copy
	// (proto.Clone) anything it keeps past returning. Both the simulator
	// bridge and SocketLink marshal synchronously, so they satisfy this for
	// free.
	ToAgent func(proto.Msg) error
	// FallbackAfter reverts to in-datapath NewReno when no agent message
	// has arrived for this long (0 disables the watchdog). When
	// Liveness.StalenessBudget is set the liveness layer supersedes this
	// watchdog and FallbackAfter is ignored.
	FallbackAfter time.Duration
	// Liveness configures the fail-safe layer (see failsafe.go): per-kind
	// control staleness clocks, explicit agent-gone handling, conservative
	// fallback entry, and smoothed re-handoff. Zero value disables it.
	Liveness LivenessConfig
	// MaxVectorRows caps vector-mode batching memory (default 8192 rows);
	// beyond it, samples are dropped and counted.
	MaxVectorRows int
	// DefaultProgram runs before the agent installs anything. Nil means the
	// §3 prototype behaviour: EWMA measurement reported once per RTT.
	DefaultProgram *lang.Program
	// SmoothCwnd spreads window *increases* over a round trip instead of
	// applying them as a step — the paper's §3 future work ("smooth
	// congestion window transitions in the datapath to avoid packet bursts
	// due to per-RTT congestion window updates"). Decreases still apply
	// immediately.
	SmoothCwnd bool
	// BatchInterval coalesces report messages (Measurement, Vector) into
	// proto.Batch frames flushed at most every interval; 0 sends every
	// report as its own IPC message (the pre-batching behaviour,
	// bit-identical). Urgent events, Create, and Close bypass coalescing
	// but flush pending reports first, preserving per-flow ordering. This
	// is the paper's §4 trade-off knob: a longer interval amortizes
	// per-message IPC cost over more reports at the price of added control
	// staleness.
	BatchInterval time.Duration
	// MaxBatchMsgs flushes a partial batch early once it holds this many
	// reports (default 64, capped at proto.MaxBatchMsgs).
	MaxBatchMsgs int
	// Metrics optionally receives datapath counters (reports sent, batch
	// sizes, fallback activations). Nil is valid.
	Metrics *metrics.Registry
	// StackVM runs folds and control-program expressions on the reference
	// stack interpreter instead of the register VM. The two backends are
	// bit-identical (pinned by the differential fuzz target in
	// internal/lang); this is the escape hatch and the A-side of the
	// hot-path benchmarks.
	StackVM bool
	// Verify selects the install-time program verification policy
	// (internal/lang/absint): strict refuses programs with install-blocking
	// findings (the previous program stays in force and the agent is told
	// via proto.InstallErr), warn counts them but installs anyway, off skips
	// analysis. ModeDefault resolves to the package default (strict unless
	// changed with SetDefaultVerify).
	Verify absint.Mode
}

// defaultVerify is the verification mode used when Config.Verify is
// ModeDefault. The datapath is a trust boundary (§2: it executes programs
// handed to it by a less-trusted agent), so the default is strict.
var defaultVerify = absint.ModeStrict

// SetDefaultVerify sets the process-wide default verification mode used by
// flows whose Config leaves Verify at ModeDefault. It exists for command-line
// tools (-verify=strict|warn|off) that construct datapaths indirectly through
// the experiment harness; call it before creating flows.
func SetDefaultVerify(m absint.Mode) { defaultVerify = m }

// Stats counts the runtime's activity for experiments and tests.
type Stats struct {
	AcksProcessed  int
	ReportsSent    int
	VectorsSent    int
	VectorRowsSent int
	UrgentsSent    int
	SendErrors     int
	InstallsRecvd  int
	SetCwndRecvd   int
	SetRateRecvd   int
	FallbackOn     int
	FallbackOff    int
	VectorDropped  int
	// StaleCtrlDropped counts sequenced control messages (Install, SetCwnd,
	// SetRate) discarded because a newer decision had already been applied —
	// the reorder/duplicate protection of the control channel.
	StaleCtrlDropped int
	// Resyncs counts Create re-announcements sent while the fallback was
	// active, prompting a restarted agent to re-adopt the flow.
	Resyncs int
	// UnexpectedMsgs counts agent messages of a type the datapath does not
	// handle; they are ignored rather than trusted.
	UnexpectedMsgs int
	// InstallRejects counts Install messages refused — malformed wire
	// programs and verifier rejections alike. Each one was answered with a
	// proto.InstallErr and left the previous program in force.
	InstallRejects int
	// VerifyWarnings counts advisory verifier findings on programs that
	// were installed anyway (warn-severity findings in any mode, plus
	// error-severity ones under Verify=warn).
	VerifyWarnings int
	// BatchesSent counts multi-report frames shipped; BatchedReports counts
	// the reports they carried (a batch of one is sent plain and counts
	// under neither).
	BatchesSent    int
	BatchedReports int
	// LivenessStale counts fallback entries triggered by the staleness
	// budget (vs. AgentGoneSignals, explicit transport notifications that
	// the agent connection is lost). HandoffRamps counts smoothed
	// fallback-exit transitions; BackoffsRecvd counts overload backoff
	// messages accepted from the agent runtime.
	LivenessStale    int
	AgentGoneSignals int
	HandoffRamps     int
	BackoffsRecvd    int
	// Heartbeat probing (LivenessConfig.ProbeInterval): probes sent, echoes
	// received, and fallback exits granted by a recovered probe score.
	ProbesSent  int
	ProbeEchoes int
	ProbeExits  int
}

// CCP is the datapath runtime for one flow. It implements
// tcp.CongestionControl and is driven by the datapath's ACK processing on
// one side and by Deliver (messages from the agent) on the other.
type CCP struct {
	cfg  Config
	conn *tcp.Conn

	prog      *lang.Program
	fold      *lang.CompiledFold
	ctrl      []ctrlCode // compiled expression per instruction (zero for Report)
	vars      []float64
	exprStack []float64

	vec       []float64
	vecFields []lang.Field

	pc         int
	waitedPass bool
	waitTimer  netsim.Timer
	reportSeq  uint32

	// lastCtrlSeq is the newest control sequence number applied; stale or
	// duplicate control messages are dropped (seq 0 is unsequenced and always
	// accepted). urgentSeq numbers outgoing urgents so the agent can dedup
	// duplicated deliveries.
	lastCtrlSeq uint32
	urgentSeq   uint32

	// EWMA-mode state (§3 prototype).
	ewmaRtt  *stats.EWMA
	ewmaSnd  *stats.EWMA
	ewmaRcv  *stats.EWMA
	ackedAcc float64
	lostAcc  float64
	pktsAcc  int
	ecnAcc   int
	lastRtt  float64

	// Safety fallback (§5) and the liveness layer over it (failsafe.go).
	fallback       tcp.CongestionControl
	fallbackActive bool
	lastAgentMsg   time.Duration
	watchdog       netsim.Timer
	// Per-kind control staleness clocks (virtual time of last applied
	// Install / SetCwnd / SetRate; see failsafe.go).
	lastInstallAt time.Duration
	lastCwndAt    time.Duration
	lastRateAt    time.Duration
	agentGone     bool
	liveTimer     netsim.Timer
	// handoffUntil, when nonzero, smooths window increases until the
	// post-fallback handoff ramp expires. backoffFactor stretches program
	// waits under agent overload (1 or less: none).
	handoffUntil  time.Duration
	backoffFactor float64
	// Heartbeat probe health scoring (failsafe.go): EWMA of probe round-trip
	// latency in seconds, plus the oldest still-unanswered probe so silence
	// degrades the score between echoes.
	probeTimer   netsim.Timer
	probeSeq     uint32
	probeEWMA    float64
	probeSamples int
	unechoedSeq  uint32
	unechoedAt   time.Duration
	haveUnechoed bool
	scratchHB    proto.Heartbeat

	// Smooth window transitions (§3 future work).
	cwndTarget  int
	cwndStep    int
	smoothTimer netsim.Timer

	// Report coalescing (§4 batching).
	pending    []proto.Msg
	batchTimer netsim.Timer

	// Report scratch: messages handed to ToAgent are built here and reused
	// once the agent side has consumed them (ToAgent's ownership contract),
	// so steady-state reporting allocates nothing. Slab counters reset after
	// every send/flush; pending holds pointers into the slabs meanwhile.
	repMeas       []proto.Measurement
	repVecs       []proto.Vector
	nRepMeas      int
	nRepVecs      int
	scratchUrgent proto.Urgent
	scratchBatch  proto.Batch
	scratchIErr   proto.InstallErr

	// Cached metrics instruments (detached no-ops when cfg.Metrics is nil).
	mReportsSent   *metrics.Counter
	mUrgentsSent   *metrics.Counter
	mBatchSize     *metrics.Histogram
	mFallbackOn    *metrics.Counter
	mFallbackOff   *metrics.Counter
	mAgentGone     *metrics.Counter
	mLivenessStale *metrics.Counter
	mBackoffRecvd  *metrics.Counter
	mInstallReject *metrics.Counter

	stats Stats
}

// New creates a CCP runtime. Attach it to a tcp.Conn as its congestion
// control; it announces itself to the agent on Init.
func New(cfg Config) *CCP {
	if cfg.MaxVectorRows <= 0 {
		cfg.MaxVectorRows = 8192
	}
	if cfg.Clock == nil {
		panic("datapath: Config.Clock is required")
	}
	if cfg.ToAgent == nil {
		panic("datapath: Config.ToAgent is required")
	}
	if cfg.MaxBatchMsgs <= 0 {
		cfg.MaxBatchMsgs = 64
	}
	if cfg.MaxBatchMsgs > proto.MaxBatchMsgs {
		cfg.MaxBatchMsgs = proto.MaxBatchMsgs
	}
	if cfg.Verify == absint.ModeDefault {
		cfg.Verify = defaultVerify
	}
	return &CCP{
		cfg:            cfg,
		fallback:       nativecc.NewNewReno(),
		ewmaRtt:        stats.NewEWMA(0.125),
		ewmaSnd:        stats.NewEWMA(0.25),
		ewmaRcv:        stats.NewEWMA(0.25),
		mReportsSent:   cfg.Metrics.Counter("dp_reports_sent_total"),
		mUrgentsSent:   cfg.Metrics.Counter("dp_urgents_sent_total"),
		mBatchSize:     cfg.Metrics.Histogram("dp_batch_size"),
		mFallbackOn:    cfg.Metrics.Counter("dp_fallback_on_total"),
		mFallbackOff:   cfg.Metrics.Counter("dp_fallback_off_total"),
		mAgentGone:     cfg.Metrics.Counter("dp_agent_gone_total"),
		mLivenessStale: cfg.Metrics.Counter("dp_liveness_stale_total"),
		mBackoffRecvd:  cfg.Metrics.Counter("dp_backoff_recvd_total"),
		mInstallReject: cfg.Metrics.Counter("dp_install_rejects_total"),
	}
}

// Stats returns a snapshot of the runtime counters.
func (d *CCP) Stats() Stats { return d.stats }

// SID returns the flow's wire-protocol identifier.
func (d *CCP) SID() uint32 { return d.cfg.SID }

// FallbackActive reports whether the safety fallback is controlling the flow.
func (d *CCP) FallbackActive() bool { return d.fallbackActive }

// Program returns the currently installed program (the default one before
// any Install).
func (d *CCP) Program() *lang.Program { return d.prog }

// Name implements tcp.CongestionControl.
func (d *CCP) Name() string {
	if d.cfg.Alg != "" {
		return "ccp/" + d.cfg.Alg
	}
	return "ccp"
}

// Init implements tcp.CongestionControl: announce the flow and start the
// default program.
func (d *CCP) Init(c *tcp.Conn) {
	d.conn = c
	d.lastAgentMsg = d.cfg.Clock.Now()
	d.send(&proto.Create{
		SID:      d.cfg.SID,
		MSS:      uint32(c.MSS()),
		InitCwnd: uint32(c.Cwnd()),
		Alg:      d.cfg.Alg,
	})
	prog := d.cfg.DefaultProgram
	if prog == nil {
		prog = lang.NewProgram().MeasureEWMA().WaitRtts(1).Report().MustBuild()
	}
	if err := d.install(prog); err != nil {
		// The default program is statically valid; a failure here is a bug.
		panic("datapath: default program rejected: " + err.Error())
	}
	if d.cfg.Liveness.on() {
		d.armLiveness()
	} else {
		d.armWatchdog()
	}
}

// Close implements tcp.CongestionControl.
func (d *CCP) Close(c *tcp.Conn) {
	d.flushBatch()
	d.send(&proto.Close{SID: d.cfg.SID})
	if d.waitTimer != nil {
		d.waitTimer.Stop()
		d.waitTimer = nil
	}
	if d.watchdog != nil {
		d.watchdog.Stop()
		d.watchdog = nil
	}
	if d.liveTimer != nil {
		d.liveTimer.Stop()
		d.liveTimer = nil
	}
	if d.probeTimer != nil {
		d.probeTimer.Stop()
		d.probeTimer = nil
	}
	if d.smoothTimer != nil {
		d.smoothTimer.Stop()
		d.smoothTimer = nil
	}
}

// OnAck implements tcp.CongestionControl: fold the ACK into the current
// measurement state.
func (d *CCP) OnAck(c *tcp.Conn, s tcp.AckSample) {
	d.stats.AcksProcessed++
	d.updateVars(s)

	if d.fallbackActive {
		d.fallback.OnAck(c, s)
	}

	switch d.measureMode() {
	case lang.MeasureFold:
		d.fold.Step(d.vars)
	case lang.MeasureVector:
		if len(d.vec)/len(d.vecFields) < d.cfg.MaxVectorRows {
			for _, f := range d.vecFields {
				d.vec = append(d.vec, d.vars[lang.PktFieldSlot(f)])
			}
		} else {
			d.stats.VectorDropped++
		}
	default: // EWMA
		if s.RTT > 0 {
			d.ewmaRtt.Update(s.RTT.Seconds())
			d.lastRtt = s.RTT.Seconds()
		}
		if s.SndRate > 0 {
			d.ewmaSnd.Update(s.SndRate)
		}
		if s.DeliveryRate > 0 {
			d.ewmaRcv.Update(s.DeliveryRate)
		}
		d.ackedAcc += float64(s.AckedBytes)
		d.lostAcc += float64(s.LostBytes)
		d.pktsAcc++
		if s.ECNEcho {
			d.ecnAcc++
		}
	}
}

// OnCongestion implements tcp.CongestionControl: report urgent events.
func (d *CCP) OnCongestion(c *tcp.Conn, ev tcp.CongEvent, lostBytes int) {
	if d.fallbackActive {
		d.fallback.OnCongestion(c, ev, lostBytes)
	}
	switch ev {
	case tcp.EventDupAck:
		d.sendUrgent(proto.UrgentDupAck, float64(lostBytes))
	case tcp.EventTimeout:
		d.sendUrgent(proto.UrgentTimeout, float64(lostBytes))
	case tcp.EventECN:
		if d.prog != nil && d.prog.UrgentECN {
			d.sendUrgent(proto.UrgentECN, 1)
		}
		// Otherwise ECN is batched via the measurement state.
	}
}

// Deliver processes a message from the agent (the datapath side of
// Figure 1's downward arrow).
//
// Control messages carry a sequence number shared across Install, SetCwnd,
// and SetRate; a message at or below the newest applied sequence is a
// reordered or duplicated copy of a decision already superseded and is
// dropped, so the channel may reorder freely without an old window ever
// overwriting a newer one. Seq 0 marks an unsequenced message and is always
// accepted. Stale messages do not count as agent liveness: only decisions
// the datapath actually applies reset the §5 watchdog.
func (d *CCP) Deliver(m proto.Msg) {
	switch v := m.(type) {
	case *proto.Install:
		if d.staleCtrl(v.Seq) {
			return
		}
		d.touchCtrl(proto.TypeInstall)
		prog, err := lang.UnmarshalProgram(v.Prog)
		if err != nil {
			// A malformed program must not crash the datapath (§5); the
			// previous program stays in force.
			d.rejectInstall(v.Seq, err)
			return
		}
		if err := d.install(prog); err != nil {
			d.rejectInstall(v.Seq, err)
			return
		}
		d.stats.InstallsRecvd++
	case *proto.SetCwnd:
		if d.staleCtrl(v.Seq) {
			return
		}
		d.touchCtrl(proto.TypeSetCwnd)
		d.stats.SetCwndRecvd++
		d.applyCwnd(int(v.Bytes))
	case *proto.SetRate:
		if d.staleCtrl(v.Seq) {
			return
		}
		d.touchCtrl(proto.TypeSetRate)
		d.stats.SetRateRecvd++
		if d.conn != nil {
			d.conn.SetPacingRate(v.Bps)
		}
	case *proto.Backoff:
		// Overload degradation signal, not a control decision: it never
		// resets the liveness clocks.
		d.handleBackoff(v)
	case *proto.Heartbeat:
		// Echoed supervision probe (failsafe.go): feeds the EWMA health
		// score, never the control staleness clocks.
		d.handleHeartbeat(v)
	default:
		// Anything else on the control channel is noise (corruption that
		// happened to decode, or a confused agent); ignore it and do not
		// treat it as liveness.
		d.stats.UnexpectedMsgs++
	}
}

// staleCtrl checks a control message's sequence number against the newest
// applied one, recording and dropping stale or duplicate copies. It advances
// lastCtrlSeq when the message is fresh.
func (d *CCP) staleCtrl(seq uint32) bool {
	if seq == 0 {
		return false // unsequenced: always accepted
	}
	if !proto.SeqNewer(seq, d.lastCtrlSeq) {
		d.stats.StaleCtrlDropped++
		return true
	}
	d.lastCtrlSeq = seq
	return false
}

// Resync re-announces the flow to the agent. The Create carries the flow's
// *current* window (not the original one) so a restarted agent starts from
// live state, and the newest applied control sequence so the agent resumes
// numbering above it instead of looking stale.
func (d *CCP) Resync() {
	if d.conn == nil {
		return
	}
	d.stats.Resyncs++
	d.flushBatch()
	d.send(&proto.Create{
		SID:      d.cfg.SID,
		MSS:      uint32(d.conn.MSS()),
		InitCwnd: uint32(d.conn.Cwnd()),
		Seq:      d.lastCtrlSeq,
		Alg:      d.cfg.Alg,
	})
}

// ctrlCode is one control-program expression compiled for both backends;
// eval dispatches on Config.StackVM. Report instructions leave it zero.
type ctrlCode struct {
	stack *lang.Code
	reg   *lang.RegCode
}

// eval runs a control-program expression on the configured backend.
func (d *CCP) eval(code ctrlCode) float64 {
	if d.cfg.StackVM {
		return code.stack.Eval(d.vars, d.exprStack)
	}
	return code.reg.Eval(d.vars)
}

// rejectInstall records a refused Install and tells the agent why with an
// InstallErr reply carrying the offending Seq. The refusal degrades, never
// breaks: the previously installed program (or the default one) keeps
// controlling the flow, and the §5 fallback machinery is untouched.
func (d *CCP) rejectInstall(seq uint32, err error) {
	d.stats.InstallRejects++
	d.mInstallReject.Inc()
	reason := err.Error()
	if len(reason) > 255 {
		reason = reason[:252] + "..."
	}
	d.scratchIErr = proto.InstallErr{SID: d.cfg.SID, Seq: seq, Reason: reason}
	d.send(&d.scratchIErr)
}

// install compiles and activates a program.
func (d *CCP) install(p *lang.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if d.cfg.Verify != absint.ModeOff {
		rep, err := absint.Analyze(p, absint.Datapath())
		if err != nil {
			return err
		}
		d.stats.VerifyWarnings += len(rep.Warnings())
		if rep.HasErrors() {
			if d.cfg.Verify == absint.ModeStrict {
				return rep.Err()
			}
			d.stats.VerifyWarnings += len(rep.Errors())
		}
	}
	backend := lang.BackendRegister
	if d.cfg.StackVM {
		backend = lang.BackendStack
	}
	var fold *lang.CompiledFold
	var regNames []string
	if p.Measure.Mode == lang.MeasureFold {
		var err error
		fold, err = lang.CompileFoldBackend(p.Measure.Fold, backend)
		if err != nil {
			return err
		}
		regNames = p.Measure.Fold.RegNames()
	}
	resolve := lang.StdResolver(regNames)
	nvars := lang.VarTableSize(len(regNames))
	ctrl := make([]ctrlCode, len(p.Instrs))
	maxStack := 0
	frameLen := nvars
	if fold != nil && fold.FrameLen() > frameLen {
		frameLen = fold.FrameLen()
	}
	for i, in := range p.Instrs {
		var e lang.Expr
		switch n := in.(type) {
		case lang.SetRate:
			e = n.E
		case lang.SetCwnd:
			e = n.E
		case lang.Wait:
			e = n.Seconds
		case lang.WaitRtts:
			e = n.Rtts
		case lang.Report:
			continue
		}
		code, err := lang.Compile(e, resolve)
		if err != nil {
			return err
		}
		reg, err := lang.CompileReg(e, resolve, nvars)
		if err != nil {
			return err
		}
		if code.MaxStack > maxStack {
			maxStack = code.MaxStack
		}
		if reg.FrameLen > frameLen {
			frameLen = reg.FrameLen
		}
		ctrl[i] = ctrlCode{stack: code, reg: reg}
	}

	// Activation point: no errors possible below.
	d.prog = p
	d.fold = fold
	d.ctrl = ctrl
	if cap(d.exprStack) < maxStack {
		d.exprStack = make([]float64, 0, maxStack)
	}
	// Size the table to the largest register-VM frame so every fold Step and
	// control eval takes the zero-copy in-place path. The slots past the
	// variable table are VM scratch: each program writes its temps before
	// reading them (verified at compile time), so the codes can share them.
	d.vars = make([]float64, frameLen)
	if fold != nil {
		fold.InitRegs(d.vars)
	}
	d.vecFields = p.Measure.Fields
	d.vec = d.vec[:0]
	d.pc = 0
	d.waitedPass = false
	if d.waitTimer != nil {
		d.waitTimer.Stop()
		d.waitTimer = nil
	}
	d.refreshFlowVars()
	d.resume()
	return nil
}

func (d *CCP) measureMode() lang.MeasureMode {
	if d.prog == nil {
		return lang.MeasureEWMA
	}
	return d.prog.Measure.Mode
}

// updateVars refreshes the packet-field and flow-variable slots from an ACK.
func (d *CCP) updateVars(s tcp.AckSample) {
	if len(d.vars) == 0 {
		return
	}
	rtt := s.RTT.Seconds()
	if rtt == 0 && d.conn != nil {
		rtt = d.conn.SRTT().Seconds() // retransmission echo: use the filter
	}
	d.vars[lang.PktFieldSlot(lang.FieldRTT)] = rtt
	d.vars[lang.PktFieldSlot(lang.FieldAcked)] = float64(s.AckedBytes)
	d.vars[lang.PktFieldSlot(lang.FieldSacked)] = float64(s.SackedBytes)
	d.vars[lang.PktFieldSlot(lang.FieldLost)] = float64(s.LostBytes)
	d.vars[lang.PktFieldSlot(lang.FieldECN)] = b2f(s.ECNEcho)
	d.vars[lang.PktFieldSlot(lang.FieldSndRate)] = s.SndRate
	d.vars[lang.PktFieldSlot(lang.FieldRcvRate)] = s.DeliveryRate
	d.vars[lang.PktFieldSlot(lang.FieldInflight)] = float64(s.InFlight)
	d.vars[lang.PktFieldSlot(lang.FieldHdrRate)] = s.HdrRate
	d.vars[lang.PktFieldSlot(lang.FieldNow)] = s.Now.Seconds()
	d.refreshFlowVars()
}

func (d *CCP) refreshFlowVars() {
	if d.conn == nil || len(d.vars) == 0 {
		return
	}
	d.vars[lang.FlowVarSlot(lang.FlowCwnd)] = float64(d.conn.Cwnd())
	d.vars[lang.FlowVarSlot(lang.FlowRate)] = d.conn.PacingRate()
	d.vars[lang.FlowVarSlot(lang.FlowMSS)] = float64(d.conn.MSS())
	d.vars[lang.FlowVarSlot(lang.FlowSRTT)] = d.conn.SRTT().Seconds()
	d.vars[lang.FlowVarSlot(lang.FlowMinRTT)] = d.conn.MinRTT().Seconds()
}

// resume executes the control program until it blocks on a wait.
func (d *CCP) resume() {
	if d.prog == nil || len(d.prog.Instrs) == 0 {
		return
	}
	for steps := 0; steps < 10000; steps++ {
		if d.pc >= len(d.prog.Instrs) {
			d.pc = 0
			if !d.waitedPass {
				// A program without waits would spin; pace it at one RTT,
				// the control loop's natural time scale (§2.3).
				d.scheduleWait(d.rttDur(1))
				return
			}
			d.waitedPass = false
		}
		in := d.prog.Instrs[d.pc]
		code := d.ctrl[d.pc]
		d.pc++
		switch in.(type) {
		case lang.SetRate:
			d.refreshFlowVars()
			rate := d.eval(code)
			if !d.fallbackActive && d.conn != nil {
				d.conn.SetPacingRate(clampRate(rate))
				d.refreshFlowVars()
			}
		case lang.SetCwnd:
			d.refreshFlowVars()
			cwnd := d.eval(code)
			if !d.fallbackActive {
				d.applyCwnd(clampCwnd(cwnd))
				d.refreshFlowVars()
			}
		case lang.Wait:
			secs := d.eval(code)
			d.waitedPass = true
			d.scheduleWait(secsToDur(secs))
			return
		case lang.WaitRtts:
			rtts := d.eval(code)
			d.waitedPass = true
			d.scheduleWait(d.rttDur(rtts))
			return
		case lang.Report:
			d.report()
		}
	}
}

func (d *CCP) scheduleWait(dur time.Duration) {
	dur = d.stretchWait(dur)
	if dur <= 0 {
		dur = time.Microsecond
	}
	if d.waitTimer != nil {
		d.waitTimer.Stop()
	}
	d.waitTimer = d.cfg.Clock.AfterFunc(dur, func() {
		d.waitTimer = nil
		d.resume()
	})
}

// rttDur converts a WaitRtts coefficient to a duration using the smoothed
// RTT, with a conservative default before the first sample.
func (d *CCP) rttDur(rtts float64) time.Duration {
	srtt := time.Duration(0)
	if d.conn != nil {
		srtt = d.conn.SRTT()
	}
	if srtt == 0 {
		srtt = 100 * time.Millisecond
	}
	return time.Duration(float64(srtt) * rtts)
}

// report ships the batched measurement state to the agent and resets it.
// Report messages are built in the scratch slabs (see the field comments):
// ToAgent consumes its message synchronously, so once a report leaves via
// send/flushBatch its slab entry — Fields backing included — is reusable.
func (d *CCP) report() {
	d.reportSeq++
	if d.reportSeq == 0 {
		d.reportSeq = 1 // skip 0 on wrap: 0 means "unsequenced" on the wire
	}
	switch d.measureMode() {
	case lang.MeasureFold:
		v := d.nextRepMeas()
		v.SID, v.Seq = d.cfg.SID, d.reportSeq
		v.Fields = d.fold.ReadRegs(d.vars, v.Fields[:0])
		d.sendReport(v)
		d.stats.ReportsSent++
		d.mReportsSent.Inc()
		d.fold.InitRegs(d.vars)
	case lang.MeasureVector:
		if len(d.vecFields) == 0 {
			return
		}
		v := d.nextRepVec()
		v.SID, v.Seq = d.cfg.SID, d.reportSeq
		v.NumFields = uint8(len(d.vecFields))
		v.Data = append(v.Data[:0], d.vec...)
		d.vec = d.vec[:0]
		d.sendReport(v)
		d.stats.VectorsSent++
		d.mReportsSent.Inc()
		d.stats.VectorRowsSent += len(v.Data) / len(d.vecFields)
	default: // EWMA (§3 prototype report)
		ecnFrac := 0.0
		if d.pktsAcc > 0 {
			ecnFrac = float64(d.ecnAcc) / float64(d.pktsAcc)
		}
		v := d.nextRepMeas()
		v.SID, v.Seq = d.cfg.SID, d.reportSeq
		v.Fields = append(v.Fields[:0],
			d.ewmaRtt.Value(),
			d.ewmaSnd.Value(),
			d.ewmaRcv.Value(),
			d.ackedAcc,
			d.lostAcc,
			ecnFrac,
			d.lastRtt,
		)
		d.sendReport(v)
		d.stats.ReportsSent++
		d.mReportsSent.Inc()
		d.ackedAcc, d.lostAcc = 0, 0
		d.pktsAcc, d.ecnAcc = 0, 0
	}
}

// nextRepMeas hands out a scratch Measurement. Slab growth relocates the
// backing array, but entries already pending keep the old array alive through
// their pointers, so handed-out messages are never disturbed.
func (d *CCP) nextRepMeas() *proto.Measurement {
	if d.nRepMeas == len(d.repMeas) {
		d.repMeas = append(d.repMeas, proto.Measurement{})
	}
	v := &d.repMeas[d.nRepMeas]
	d.nRepMeas++
	return v
}

// nextRepVec hands out a scratch Vector (same discipline as nextRepMeas).
func (d *CCP) nextRepVec() *proto.Vector {
	if d.nRepVecs == len(d.repVecs) {
		d.repVecs = append(d.repVecs, proto.Vector{})
	}
	v := &d.repVecs[d.nRepVecs]
	d.nRepVecs++
	return v
}

// resetReportScratch reclaims the slabs after the agent side has consumed
// every outstanding report (i.e. right after a send or flush).
func (d *CCP) resetReportScratch() {
	d.nRepMeas, d.nRepVecs = 0, 0
}

func (d *CCP) sendUrgent(kind proto.UrgentKind, value float64) {
	d.stats.UrgentsSent++
	d.mUrgentsSent.Inc()
	d.urgentSeq++
	if d.urgentSeq == 0 {
		d.urgentSeq = 1 // skip 0 on wrap, as for reportSeq
	}
	// Urgent events must not queue behind a batch window (§2.1), but flushing
	// first keeps the per-flow order the agent observes identical to the
	// unbatched schedule's.
	d.flushBatch()
	d.scratchUrgent = proto.Urgent{SID: d.cfg.SID, Seq: d.urgentSeq, Kind: kind, Value: value}
	d.send(&d.scratchUrgent)
}

func (d *CCP) send(m proto.Msg) {
	if err := d.cfg.ToAgent(m); err != nil {
		d.stats.SendErrors++
	}
}

// sendReport ships a report message, coalescing it into a pending batch when
// BatchInterval is set. The batch flushes when the interval elapses or the
// batch fills, whichever comes first; a batch that drained to a single
// message is sent plain, so shipping one report costs exactly the unbatched
// encoding.
func (d *CCP) sendReport(m proto.Msg) {
	if d.cfg.BatchInterval <= 0 {
		d.send(m)
		d.resetReportScratch()
		return
	}
	d.pending = append(d.pending, m)
	if len(d.pending) >= d.cfg.MaxBatchMsgs {
		d.flushBatch()
		return
	}
	if d.batchTimer == nil {
		d.batchTimer = d.cfg.Clock.AfterFunc(d.cfg.BatchInterval, func() {
			d.batchTimer = nil
			d.flushBatch()
		})
	}
}

// flushBatch ships any coalesced reports immediately. Safe to call with an
// empty pending buffer. The batch frame itself is scratch: ToAgent consumes
// it synchronously, so pending and the report slabs are reclaimed on return.
func (d *CCP) flushBatch() {
	if d.batchTimer != nil {
		d.batchTimer.Stop()
		d.batchTimer = nil
	}
	if len(d.pending) == 0 {
		return
	}
	if len(d.pending) == 1 {
		m := d.pending[0]
		d.pending = d.pending[:0]
		d.send(m)
		d.resetReportScratch()
		return
	}
	d.stats.BatchesSent++
	d.stats.BatchedReports += len(d.pending)
	d.mBatchSize.Observe(float64(len(d.pending)))
	d.scratchBatch.Msgs = d.pending
	d.send(&d.scratchBatch)
	d.scratchBatch.Msgs = nil
	d.pending = d.pending[:0]
	d.resetReportScratch()
}

// applyCwnd routes a window update through the smoothing ramp when enabled:
// increases are applied in steps over roughly one RTT so a per-RTT window
// jump does not dump a burst into the network (§3 future work); decreases
// and the non-smoothed path apply directly.
func (d *CCP) applyCwnd(target int) {
	if d.conn == nil {
		return
	}
	if !d.smoothingActive() || target <= d.conn.Cwnd() {
		d.cwndTarget = 0
		d.conn.SetCwnd(target)
		return
	}
	d.cwndTarget = target
	d.cwndStep = (target - d.conn.Cwnd() + 3) / 4
	if d.cwndStep < d.conn.MSS() {
		d.cwndStep = d.conn.MSS()
	}
	if d.smoothTimer == nil {
		d.smoothStep()
	}
}

// smoothStep advances a quarter of the original increase every srtt/4, so
// the ramp completes in roughly one round trip.
func (d *CCP) smoothStep() {
	d.smoothTimer = nil
	if d.conn == nil || d.cwndTarget == 0 {
		return
	}
	cur := d.conn.Cwnd()
	if cur >= d.cwndTarget {
		d.cwndTarget = 0
		return
	}
	next := cur + d.cwndStep
	if next >= d.cwndTarget {
		next = d.cwndTarget
	}
	d.conn.SetCwnd(next)
	if next < d.cwndTarget {
		d.smoothTimer = d.cfg.Clock.AfterFunc(d.rttDur(0.25), d.smoothStep)
	} else {
		d.cwndTarget = 0
	}
}

// Safety fallback (§5).

func (d *CCP) touchAgent() {
	d.lastAgentMsg = d.cfg.Clock.Now()
	if d.fallbackActive && !d.agentGone && d.exitGateOK() {
		// Resume the installed program from the top (with a handoff ramp
		// under the liveness layer; see failsafe.go). While the transport
		// still reports the agent gone, a straggling queued decision does
		// not exit fallback; with probing enabled, neither does a decision
		// arriving while the probe score is still unhealthy (hysteresis).
		d.exitFallback()
	}
}

func (d *CCP) armWatchdog() {
	if d.cfg.FallbackAfter <= 0 {
		return
	}
	interval := d.cfg.FallbackAfter / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	d.watchdog = d.cfg.Clock.AfterFunc(interval, func() {
		now := d.cfg.Clock.Now()
		if !d.fallbackActive && now-d.lastAgentMsg > d.cfg.FallbackAfter {
			d.fallbackActive = true
			d.stats.FallbackOn++
			d.mFallbackOn.Inc()
			if d.waitTimer != nil {
				d.waitTimer.Stop()
				d.waitTimer = nil
			}
			if d.conn != nil {
				d.fallback.Init(d.conn)
			}
		}
		if d.fallbackActive {
			// Re-announce the flow every tick while the agent is silent: if
			// the silence was a crash, the restarted agent has no flow state
			// and needs a Create to re-adopt the flow (crash/resync recovery).
			d.Resync()
		}
		d.armWatchdog()
	})
}

func clampRate(bps float64) float64 {
	if bps < 0 {
		return 0
	}
	if bps > 1e12 {
		return 1e12
	}
	return bps
}

func clampCwnd(bytes float64) int {
	if bytes < 0 {
		return 0 // tcp floors at one MSS
	}
	if bytes > 1<<30 {
		return 1 << 30
	}
	return int(bytes)
}

func secsToDur(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	if s > 3600 {
		s = 3600
	}
	return time.Duration(s * float64(time.Second))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
