package datapath

import (
	"time"

	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// This file is the fail-safe layer: liveness tracking over the agent's
// control decisions, entry into the in-datapath fallback when the control
// plane goes stale or the link reports the agent gone, and the seamless
// re-handoff back to CCP control when the agent recovers.
//
// It subsumes the minimal §5 watchdog (Config.FallbackAfter): that watchdog
// only measures "any agent message recently?" and re-enters the installed
// program with no window adjustment in either direction. The liveness layer
// instead:
//
//   - keeps per-kind staleness clocks (virtual time of the last *applied*
//     Install / SetCwnd / SetRate), so tests and operators can see which
//     half of the control loop died;
//   - accepts an explicit agent-gone signal from the transport (a broken
//     SocketLink), entering fallback immediately instead of waiting out the
//     staleness budget;
//   - enters fallback conservatively — the flow's window is halved (never
//     below two segments) by replaying the fallback algorithm's own
//     multiplicative decrease, and any stale pacing-rate cap is cleared so
//     the window-based fallback is not throttled by a dead agent's last
//     rate decision;
//   - exits via a handoff ramp: the first post-recovery window increase is
//     smoothed over roughly one RTT (the §3 smooth-transition machinery)
//     even when SmoothCwnd is off, so authority returns to the agent
//     without a cwnd discontinuity.
//
// Everything is driven by the configured netsim.Clock; with LivenessConfig
// zero the layer is completely inert and the legacy watchdog behaviour is
// bit-identical to before this file existed.

// LivenessConfig configures the fail-safe layer for one flow. The zero
// value disables it (Config.FallbackAfter then governs, as before).
type LivenessConfig struct {
	// StalenessBudget is how long the flow may run without a fresh applied
	// control decision (Install, SetCwnd, SetRate) before the datapath
	// assumes the agent is sick and enters fallback. 0 disables the
	// liveness layer entirely.
	StalenessBudget time.Duration
	// CheckInterval is how often staleness is evaluated (default
	// StalenessBudget/4, at least 1ms).
	CheckInterval time.Duration
	// HandoffRtts is the length of the exit ramp in round trips: after the
	// agent recovers, window increases are smoothed over this many RTTs
	// (default 1) so re-handoff causes no burst.
	HandoffRtts float64
	// MaxBackoff caps the report-interval stretch factor accepted from
	// overloaded-agent Backoff messages (default 8).
	MaxBackoff float64
	// ProbeInterval enables heartbeat probing: every interval the datapath
	// sends a proto.Heartbeat that a healthy agent echoes, and the measured
	// request→response latency feeds an EWMA health score with enter/exit
	// hysteresis. This closes the staleness budget's blind spot — a
	// *uniformly slow* agent is a pipeline, so its decisions arrive at the
	// normal cadence (staleness never trips) while every decision is based
	// on stale state; only a round-trip probe sees the true lag. 0 disables
	// probing, leaving the budget-only behaviour bit-identical.
	ProbeInterval time.Duration
	// ExitLatencyFraction sets the exit threshold of the hysteresis band as
	// a fraction of StalenessBudget (default 0.5): once in fallback, the
	// flow returns to agent control only when the probe EWMA is below
	// fraction×budget, so a marginally-slow agent converges to one clean
	// fallback entry instead of flapping in and out.
	ExitLatencyFraction float64
}

func (lc LivenessConfig) on() bool { return lc.StalenessBudget > 0 }

func (lc LivenessConfig) checkInterval() time.Duration {
	iv := lc.CheckInterval
	if iv <= 0 {
		iv = lc.StalenessBudget / 4
	}
	if iv <= 0 {
		iv = time.Millisecond
	}
	return iv
}

func (lc LivenessConfig) handoffRtts() float64 {
	if lc.HandoffRtts <= 0 {
		return 1
	}
	return lc.HandoffRtts
}

func (lc LivenessConfig) maxBackoff() float64 {
	if lc.MaxBackoff <= 0 {
		return 8
	}
	return lc.MaxBackoff
}

func (lc LivenessConfig) probesOn() bool { return lc.on() && lc.ProbeInterval > 0 }

// exitLatency is the healthy threshold of the hysteresis band.
func (lc LivenessConfig) exitLatency() time.Duration {
	fr := lc.ExitLatencyFraction
	if fr <= 0 {
		fr = 0.5
	}
	if fr > 1 {
		fr = 1
	}
	return time.Duration(float64(lc.StalenessBudget) * fr)
}

// probeAlpha is the EWMA gain of the probe latency filter: heavy enough
// that a handful of healthy echoes after a heal crosses the exit threshold
// within a few probe intervals, light enough that one jittered echo cannot.
const probeAlpha = 0.3

// Staleness reports the virtual time since the last applied control message
// of each kind (Install, SetCwnd, SetRate), and since any of them. A kind
// never received reads as the time since Init.
type Staleness struct {
	Install time.Duration
	Cwnd    time.Duration
	Rate    time.Duration
	Any     time.Duration
}

// Staleness returns the flow's current control-staleness clocks.
func (d *CCP) Staleness() Staleness {
	now := d.cfg.Clock.Now()
	return Staleness{
		Install: now - d.lastInstallAt,
		Cwnd:    now - d.lastCwndAt,
		Rate:    now - d.lastRateAt,
		Any:     now - d.lastAgentMsg,
	}
}

// AgentGone tells the datapath the transport has lost (gone=true) or
// re-established (gone=false) the agent connection. With the liveness layer
// disabled this is a no-op. A gone signal enters fallback immediately; a
// back signal alone does not exit fallback — only a fresh applied decision
// proves the control loop is closed again.
func (d *CCP) AgentGone(gone bool) {
	if !d.cfg.Liveness.on() || gone == d.agentGone {
		return
	}
	d.agentGone = gone
	if gone {
		d.stats.AgentGoneSignals++
		d.mAgentGone.Inc()
		if !d.fallbackActive {
			d.enterFallback(false)
		}
	}
}

// touchCtrl records an applied control decision of kind t for the
// staleness clocks, then feeds the shared liveness state.
func (d *CCP) touchCtrl(t proto.MsgType) {
	now := d.cfg.Clock.Now()
	switch t {
	case proto.TypeInstall:
		d.lastInstallAt = now
	case proto.TypeSetCwnd:
		d.lastCwndAt = now
	case proto.TypeSetRate:
		d.lastRateAt = now
	}
	d.touchAgent()
}

// armLiveness starts the periodic staleness evaluation (the liveness
// layer's replacement for armWatchdog) and, when configured, the heartbeat
// probe loop.
func (d *CCP) armLiveness() {
	d.lastInstallAt = d.lastAgentMsg
	d.lastCwndAt = d.lastAgentMsg
	d.lastRateAt = d.lastAgentMsg
	d.scheduleLiveness()
	if d.cfg.Liveness.probesOn() {
		d.scheduleProbe()
	}
}

// scheduleProbe runs the heartbeat loop: each tick folds the age of the
// oldest still-unanswered probe into the health score (so a dead or paused
// agent drives the EWMA up even though no echoes arrive), sends a fresh
// probe, and applies the hysteresis entry edge. Probes keep flowing while
// in fallback — a healthy echo stream is the exit signal (see
// handleHeartbeat; after a heal, the datapath's periodic Resyncs are
// dup-dropped by an agent that never lost the flow, so no fresh decision
// may ever arrive to exit on).
func (d *CCP) scheduleProbe() {
	d.probeTimer = d.cfg.Clock.AfterFunc(d.cfg.Liveness.ProbeInterval, func() {
		now := d.cfg.Clock.Now()
		if d.haveUnechoed {
			d.foldProbeSample(now - d.unechoedAt)
		}
		d.probeSeq++
		if d.probeSeq == 0 {
			d.probeSeq = 1
		}
		if !d.haveUnechoed {
			d.haveUnechoed = true
			d.unechoedSeq = d.probeSeq
			d.unechoedAt = now
		}
		d.stats.ProbesSent++
		d.scratchHB = proto.Heartbeat{SID: d.cfg.SID, Seq: d.probeSeq, SentAt: now.Seconds()}
		d.send(&d.scratchHB)
		// Entry edge for the blind-spot case: control decisions still arrive
		// at the normal cadence (lastAgentMsg stays fresh) but every round
		// trip is slower than the budget — the flow is effectively
		// uncontrolled and belongs in fallback.
		if !d.fallbackActive && !d.agentGone && d.probeSamples > 0 &&
			d.probeEWMA > d.cfg.Liveness.StalenessBudget.Seconds() {
			d.enterFallback(true)
		}
		d.scheduleProbe()
	})
}

// foldProbeSample feeds one latency observation (an echo round trip, or the
// age of an unanswered probe) into the EWMA health score. Samples are
// clamped at twice the budget so a long outage saturates the score instead
// of poisoning the post-heal decay.
func (d *CCP) foldProbeSample(lat time.Duration) {
	s := lat.Seconds()
	if s < 0 {
		s = 0
	}
	if cap := 2 * d.cfg.Liveness.StalenessBudget.Seconds(); s > cap {
		s = cap
	}
	if d.probeSamples == 0 {
		d.probeEWMA = s
	} else {
		d.probeEWMA = (1-probeAlpha)*d.probeEWMA + probeAlpha*s
	}
	d.probeSamples++
}

// probeHealthy reports whether the EWMA latency is inside the exit band.
func (d *CCP) probeHealthy() bool {
	return d.probeSamples > 0 && d.probeEWMA < d.cfg.Liveness.exitLatency().Seconds()
}

// exitGateOK is the hysteresis exit gate consulted by touchAgent: with
// probing off every applied fresh decision exits fallback (the PR 6 rule);
// with probing on the probe score must also be healthy, so a slow agent's
// late-but-sequenced decisions cannot flap the flow out of fallback.
func (d *CCP) exitGateOK() bool {
	if !d.cfg.Liveness.probesOn() {
		return true
	}
	return d.probeHealthy()
}

// handleHeartbeat processes an echoed probe: measure the round trip, clear
// the unanswered-probe tracker, and exit fallback if the score has
// recovered. Echoes are advisory like Backoff — they never reset the
// control staleness clocks.
func (d *CCP) handleHeartbeat(v *proto.Heartbeat) {
	if !d.cfg.Liveness.probesOn() {
		d.stats.UnexpectedMsgs++
		return
	}
	d.stats.ProbeEchoes++
	d.foldProbeSample(d.cfg.Clock.Now() - secsToDur(v.SentAt))
	if !d.haveUnechoed || v.Seq == d.unechoedSeq || proto.SeqNewer(v.Seq, d.unechoedSeq) {
		d.haveUnechoed = false
	}
	if d.fallbackActive && !d.agentGone && d.probeHealthy() {
		d.stats.ProbeExits++
		// touchAgent applies the exit (resetting the staleness clock too, so
		// the budget does not immediately re-trip on the pre-outage
		// lastAgentMsg).
		d.touchAgent()
	}
}

func (d *CCP) scheduleLiveness() {
	d.liveTimer = d.cfg.Clock.AfterFunc(d.cfg.Liveness.checkInterval(), func() {
		now := d.cfg.Clock.Now()
		if !d.fallbackActive && (d.agentGone || now-d.lastAgentMsg > d.cfg.Liveness.StalenessBudget) {
			d.enterFallback(!d.agentGone)
		}
		if d.fallbackActive {
			// Re-announce the flow every tick while degraded: a restarted
			// agent has no state for it and needs the Create to re-adopt it.
			d.Resync()
		}
		d.scheduleLiveness()
	})
}

// enterFallback hands the flow to the in-datapath algorithm. stale records
// whether the trigger was budget exhaustion (vs. an explicit gone signal).
func (d *CCP) enterFallback(stale bool) {
	d.fallbackActive = true
	d.stats.FallbackOn++
	d.mFallbackOn.Inc()
	if stale {
		d.stats.LivenessStale++
		d.mLivenessStale.Inc()
	}
	if d.waitTimer != nil {
		d.waitTimer.Stop()
		d.waitTimer = nil
	}
	// Cancel any in-flight smoothing ramp; the fallback owns the window now.
	d.cwndTarget = 0
	d.handoffUntil = 0
	if d.conn != nil {
		// The dead agent's last pacing cap must not throttle the fallback.
		d.conn.SetPacingRate(0)
		d.fallback.Init(d.conn)
		// Conservative entry: replay the fallback's own multiplicative
		// decrease, halving cwnd (floor two segments) and starting it in
		// congestion avoidance rather than slow-starting from the stale
		// window.
		d.fallback.OnCongestion(d.conn, tcp.EventECN, 0)
	}
}

// exitFallback returns authority to the agent after a fresh applied
// decision. The installed program restarts from the top; under the liveness
// layer the transition is additionally smoothed by a handoff ramp.
func (d *CCP) exitFallback() {
	d.fallbackActive = false
	d.stats.FallbackOff++
	d.mFallbackOff.Inc()
	if d.cfg.Liveness.on() {
		d.stats.HandoffRamps++
		d.handoffUntil = d.cfg.Clock.Now() + d.rttDur(d.cfg.Liveness.handoffRtts())
	}
	d.pc = 0
	d.waitedPass = false
	d.resume()
}

// smoothingActive reports whether window increases should currently ramp
// instead of stepping: always under SmoothCwnd, and during the post-fallback
// handoff window under the liveness layer.
func (d *CCP) smoothingActive() bool {
	if d.cfg.SmoothCwnd {
		return true
	}
	if d.handoffUntil > 0 {
		if d.cfg.Clock.Now() < d.handoffUntil {
			return true
		}
		d.handoffUntil = 0
	}
	return false
}

// handleBackoff applies an overload Backoff from the agent runtime: the
// flow keeps the largest in-force stretch factor, clamped to MaxBackoff,
// and lets it decay back toward 1 as waits are scheduled. Backoff is
// advisory — it is not a control decision and does not count as liveness.
func (d *CCP) handleBackoff(v *proto.Backoff) {
	d.stats.BackoffsRecvd++
	d.mBackoffRecvd.Inc()
	f := v.Factor
	if f < 1 {
		f = 1
	}
	if mx := d.cfg.Liveness.maxBackoff(); f > mx {
		f = mx
	}
	if f > d.backoffFactor {
		d.backoffFactor = f
	}
}

// stretchWait applies (and decays) the overload backoff factor to a program
// wait duration. With no backoff in force it returns dur unchanged.
func (d *CCP) stretchWait(dur time.Duration) time.Duration {
	if d.backoffFactor <= 1 {
		return dur
	}
	dur = time.Duration(float64(dur) * d.backoffFactor)
	// Geometric decay: pressure relief is automatic once the runtime stops
	// sending Backoffs, restoring full measurement frequency within a few
	// report intervals.
	d.backoffFactor *= 0.9
	if d.backoffFactor < 1.01 {
		d.backoffFactor = 1
	}
	return dur
}

// BackoffFactor returns the report-interval stretch currently in force
// (1 when none).
func (d *CCP) BackoffFactor() float64 {
	if d.backoffFactor < 1 {
		return 1
	}
	return d.backoffFactor
}
