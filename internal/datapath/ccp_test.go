package datapath_test

import (
	"strings"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/lang/absint"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// rig is a single CCP-controlled flow with the agent side stubbed: sent
// messages are captured, and Deliver is called directly by the test.
type rig struct {
	sim  *netsim.Sim
	dp   *datapath.CCP
	flow *tcp.Flow
	path *netsim.Path
	sent []proto.Msg
}

func newRig(t *testing.T, link netsim.LinkConfig, opts tcp.Options, cfg datapath.Config) *rig {
	t.Helper()
	r := &rig{sim: netsim.New(1)}
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	r.path = netsim.NewPath(r.sim, netsim.PathConfig{Bottleneck: link}, fwd, rev)
	cfg.SID = 1
	cfg.Clock = r.sim
	cfg.ToAgent = func(m proto.Msg) error {
		// ToAgent only borrows m (the runtime reuses its report scratch), so
		// the capture log must deep-copy.
		r.sent = append(r.sent, proto.Clone(m))
		return nil
	}
	r.dp = datapath.New(cfg)
	r.flow = tcp.NewFlow(r.sim, 1, r.path, fwd, rev, r.dp, opts)
	return r
}

func (r *rig) countMsgs(ty proto.MsgType) int {
	n := 0
	for _, m := range r.sent {
		if m.Type() == ty {
			n++
		}
	}
	return n
}

func (r *rig) lastMeasurement() *proto.Measurement {
	for i := len(r.sent) - 1; i >= 0; i-- {
		if m, ok := r.sent[i].(*proto.Measurement); ok {
			return m
		}
	}
	return nil
}

func link8() netsim.LinkConfig {
	return netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20}
}

func TestInitAnnouncesFlow(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{Alg: "cubic"})
	r.flow.Conn.Start()
	if r.countMsgs(proto.TypeCreate) != 1 {
		t.Fatal("no Create sent")
	}
	c := r.sent[0].(*proto.Create)
	if c.Alg != "cubic" || c.MSS != 1448 || c.InitCwnd != 14480 {
		t.Fatalf("create=%+v", c)
	}
}

func TestDefaultProgramReportsPerRTT(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.sim.Run(time.Second)
	// RTT ≈ 10-12 ms → expect roughly 100 reports in 1 s (loosely 50-200;
	// the first report waits on the conservative 100 ms default RTT).
	n := r.countMsgs(proto.TypeMeasurement)
	if n < 50 || n > 200 {
		t.Fatalf("reports=%d, want ~100", n)
	}
	m := r.lastMeasurement()
	if len(m.Fields) != len(lang.EWMAReportNames()) {
		t.Fatalf("fields=%d", len(m.Fields))
	}
	// rtt field ≈ 10-13 ms in seconds.
	if rtt := m.Fields[0]; rtt < 0.009 || rtt > 0.02 {
		t.Fatalf("ewma rtt=%v", rtt)
	}
	// acked per RTT ≈ cwnd; must be positive.
	if m.Fields[3] <= 0 {
		t.Fatalf("acked=%v", m.Fields[3])
	}
}

func install(t *testing.T, r *rig, p *lang.Program) {
	t.Helper()
	data, err := lang.MarshalProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	before := r.dp.Stats().InstallsRecvd
	r.dp.Deliver(&proto.Install{SID: 1, Prog: data})
	if r.dp.Stats().InstallsRecvd != before+1 {
		reason := "(no InstallErr reply captured)"
		for i := len(r.sent) - 1; i >= 0; i-- {
			if e, ok := r.sent[i].(*proto.InstallErr); ok {
				reason = e.Reason
				break
			}
		}
		t.Fatalf("install rejected: %s", reason)
	}
}

func TestFoldProgramReportsRegisters(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	fold := &lang.FoldSpec{
		Regs: []lang.RegDef{{Name: "acks", Init: 0}, {Name: "bytes", Init: 0}},
		Updates: []lang.Assign{
			{Dst: "acks", E: lang.Add(lang.V("acks"), lang.C(1))},
			{Dst: "bytes", E: lang.Add(lang.V("bytes"), lang.V("pkt.acked"))},
		},
	}
	install(t, r, lang.NewProgram().MeasureFold(fold).WaitRtts(1).Report().MustBuild())
	r.sim.Run(time.Second)
	m := r.lastMeasurement()
	if m == nil || len(m.Fields) != 2 {
		t.Fatalf("measurement=%+v", m)
	}
	if m.Fields[0] <= 0 || m.Fields[1] <= 0 {
		t.Fatalf("fold fields=%v", m.Fields)
	}
	// Registers reset after each report: acks per report ≈ acks per RTT,
	// not cumulative. Over 1s at ~10ms RTT, cumulative would be >500.
	if m.Fields[0] > 100 {
		t.Fatalf("register did not reset: acks=%v", m.Fields[0])
	}
	if r.dp.Stats().InstallsRecvd != 1 {
		t.Fatalf("installs=%d", r.dp.Stats().InstallsRecvd)
	}
}

func TestVectorProgramShipsRows(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	install(t, r, lang.NewProgram().
		MeasureVector(lang.FieldRTT, lang.FieldAcked).
		WaitRtts(1).Report().MustBuild())
	r.sim.Run(time.Second)
	var vec *proto.Vector
	for i := len(r.sent) - 1; i >= 0; i-- {
		if v, ok := r.sent[i].(*proto.Vector); ok {
			vec = v
			break
		}
	}
	if vec == nil {
		t.Fatal("no vector sent")
	}
	if vec.NumFields != 2 || vec.Rows() == 0 {
		t.Fatalf("vector=%dx%d", vec.Rows(), vec.NumFields)
	}
	row := vec.Row(0)
	if row[0] < 0.009 || row[0] > 0.05 {
		t.Fatalf("row rtt=%v", row[0])
	}
	if row[1] <= 0 {
		t.Fatalf("row acked=%v", row[1])
	}
}

func TestVectorCapDropsExcess(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{MaxVectorRows: 4})
	r.flow.Conn.Start()
	install(t, r, lang.NewProgram().
		MeasureVector(lang.FieldRTT).
		WaitRtts(5).Report().MustBuild())
	r.sim.Run(time.Second)
	if r.dp.Stats().VectorDropped == 0 {
		t.Fatal("cap not enforced")
	}
	for _, m := range r.sent {
		if v, ok := m.(*proto.Vector); ok && v.Rows() > 4 {
			t.Fatalf("vector exceeded cap: %d rows", v.Rows())
		}
	}
}

func TestControlProgramSetsRateAndCwnd(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	install(t, r, lang.NewProgram().
		Rate(lang.C(50000)).
		Cwnd(lang.C(30000)).
		WaitRtts(1).Report().MustBuild())
	r.sim.Run(100 * time.Millisecond)
	if got := r.flow.Conn.PacingRate(); got != 50000 {
		t.Fatalf("rate=%v", got)
	}
	if got := r.flow.Conn.Cwnd(); got != 30000 {
		t.Fatalf("cwnd=%v", got)
	}
}

func TestBBRPulseProgramSequencing(t *testing.T) {
	// The §2.1 pulse program must produce the 1.25r / 0.75r / r pattern in
	// the datapath without agent involvement.
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.sim.Run(300 * time.Millisecond) // establish srtt
	base := 100000.0
	install(t, r, lang.NewProgram().
		Rate(lang.Mul(lang.C(1.25), lang.C(base))).WaitRtts(1).Report().
		Rate(lang.Mul(lang.C(0.75), lang.C(base))).WaitRtts(1).Report().
		Rate(lang.C(base)).WaitRtts(6).Report().
		MustBuild())

	// Sample the pacing rate on a fine grid and collect distinct plateaus.
	seen := map[float64]bool{}
	for i := 0; i < 400; i++ {
		r.sim.Run(300*time.Millisecond + time.Duration(i)*time.Millisecond)
		seen[r.flow.Conn.PacingRate()] = true
	}
	for _, want := range []float64{125000, 75000, 100000} {
		if !seen[want] {
			t.Fatalf("pulse rate %v never observed; saw %v", want, seen)
		}
	}
}

func TestUrgentLossEvents(t *testing.T) {
	link := netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 8 * 1500}
	r := newRig(t, link, tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	// Default program holds initial cwnd; force overflow with a big cwnd.
	install(t, r, lang.NewProgram().Cwnd(lang.C(80*1448)).WaitRtts(1).Report().MustBuild())
	r.sim.Run(3 * time.Second)
	if r.countMsgs(proto.TypeUrgent) == 0 {
		t.Fatal("no urgent messages despite forced drops")
	}
	found := false
	for _, m := range r.sent {
		if u, ok := m.(*proto.Urgent); ok && u.Kind == proto.UrgentDupAck && u.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no dupack urgent with lost bytes")
	}
}

func TestECNUrgentOnlyWhenRequested(t *testing.T) {
	link := netsim.LinkConfig{
		RateBps: 8e6, Delay: 5 * time.Millisecond,
		QueueBytes: 1 << 20, ECNThresholdBytes: 3000,
	}
	countECN := func(urgent bool) int {
		r := newRig(t, link, tcp.Options{ECN: true}, datapath.Config{})
		r.flow.Conn.Start()
		b := lang.NewProgram().Cwnd(lang.C(40 * 1448)).WaitRtts(1).Report()
		if urgent {
			b.UrgentECN()
		}
		install(t, r, b.MustBuild())
		r.sim.Run(2 * time.Second)
		n := 0
		for _, m := range r.sent {
			if u, ok := m.(*proto.Urgent); ok && u.Kind == proto.UrgentECN {
				n++
			}
		}
		return n
	}
	if n := countECN(false); n != 0 {
		t.Fatalf("batched mode sent %d ECN urgents", n)
	}
	if n := countECN(true); n == 0 {
		t.Fatal("urgent mode sent no ECN urgents")
	}
}

func TestMalformedInstallIgnored(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	install(t, r, lang.NewProgram().Cwnd(lang.C(20000)).WaitRtts(1).Report().MustBuild())
	r.sim.Run(50 * time.Millisecond)
	r.dp.Deliver(&proto.Install{SID: 1, Prog: []byte{0xDE, 0xAD, 0xBE, 0xEF}})
	r.sim.Run(100 * time.Millisecond)
	// The previous program must still be in force.
	if got := r.flow.Conn.Cwnd(); got != 20000 {
		t.Fatalf("cwnd=%d after malformed install", got)
	}
	if r.dp.Stats().InstallsRecvd != 1 {
		t.Fatalf("installs=%d", r.dp.Stats().InstallsRecvd)
	}
}

func TestVerifierRejectsUnsafeInstall(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	install(t, r, lang.NewProgram().Cwnd(lang.C(20000)).WaitRtts(1).Report().MustBuild())
	r.sim.Run(50 * time.Millisecond)

	// pkt.rtt may be zero on a retransmission echo, so this divide is unsafe
	// and the verifier must refuse it at install time.
	unsafe := lang.NewProgram().
		Rate(lang.Div(lang.C(1e6), lang.V("pkt.rtt"))).
		WaitRtts(1).
		Report().
		MustBuild()
	data, err := lang.MarshalProgram(unsafe)
	if err != nil {
		t.Fatal(err)
	}
	r.dp.Deliver(&proto.Install{SID: 1, Seq: 9, Prog: data})
	r.sim.Run(100 * time.Millisecond)

	st := r.dp.Stats()
	if st.InstallsRecvd != 1 || st.InstallRejects != 1 {
		t.Fatalf("installs=%d rejects=%d", st.InstallsRecvd, st.InstallRejects)
	}
	// The agent was told why, with the refused message's sequence number.
	var ie *proto.InstallErr
	for _, m := range r.sent {
		if e, ok := m.(*proto.InstallErr); ok {
			ie = e
		}
	}
	if ie == nil {
		t.Fatal("no InstallErr reply sent")
	}
	if ie.SID != 1 || ie.Seq != 9 {
		t.Fatalf("InstallErr=%+v", ie)
	}
	if !strings.Contains(ie.Reason, "div-zero") {
		t.Fatalf("reason=%q, want div-zero diagnostic", ie.Reason)
	}
	// Fail-safe: the previous program keeps controlling the flow.
	if got := r.flow.Conn.Cwnd(); got != 20000 {
		t.Fatalf("cwnd=%d after rejected install", got)
	}
}

func TestVerifierWarnModeInstalls(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{Verify: absint.ModeWarn})
	r.flow.Conn.Start()
	unsafe := lang.NewProgram().
		Cwnd(lang.Mul(lang.V("cwnd"), lang.C(2))). // unbounded: strict would refuse
		WaitRtts(1).
		Report().
		MustBuild()
	install(t, r, unsafe) // helper fails the test if the install is refused
	st := r.dp.Stats()
	if st.VerifyWarnings == 0 {
		t.Fatal("warn mode recorded no verifier findings")
	}
	if st.InstallRejects != 0 {
		t.Fatalf("rejects=%d in warn mode", st.InstallRejects)
	}
}

func TestProgramWithoutWaitDoesNotSpin(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	install(t, r, lang.NewProgram().Cwnd(lang.V("cwnd")).Report().MustBuild())
	r.sim.Run(500 * time.Millisecond)
	// Implicit one-RTT pacing: reports bounded (not thousands).
	if n := r.countMsgs(proto.TypeMeasurement); n > 120 {
		t.Fatalf("unwaited program reported %d times in 500ms", n)
	}
}

func TestDirectSetCwndSetRate(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: 7240})
	r.dp.Deliver(&proto.SetRate{SID: 1, Bps: 123456})
	if r.flow.Conn.Cwnd() != 7240 || r.flow.Conn.PacingRate() != 123456 {
		t.Fatalf("cwnd=%d rate=%v", r.flow.Conn.Cwnd(), r.flow.Conn.PacingRate())
	}
	st := r.dp.Stats()
	if st.SetCwndRecvd != 1 || st.SetRateRecvd != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestFallbackOnAgentSilence(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{FallbackAfter: 500 * time.Millisecond})
	r.flow.Conn.Start()
	// Agent never sends anything: after 500ms the datapath must take over.
	r.sim.Run(2 * time.Second)
	if !r.dp.FallbackActive() {
		t.Fatal("fallback not active despite agent silence")
	}
	if r.dp.Stats().FallbackOn != 1 {
		t.Fatalf("fallback activations=%d", r.dp.Stats().FallbackOn)
	}
	// The fallback NewReno keeps the flow moving.
	pre := r.flow.Receiver.Delivered()
	r.sim.Run(4 * time.Second)
	if r.flow.Receiver.Delivered() <= pre {
		t.Fatal("no progress under fallback")
	}
	// Agent returns: fallback deactivates.
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: 20000})
	if r.dp.FallbackActive() {
		t.Fatal("fallback still active after agent message")
	}
	if r.dp.Stats().FallbackOff != 1 {
		t.Fatalf("fallback deactivations=%d", r.dp.Stats().FallbackOff)
	}
}

func TestNoFallbackWhenAgentAlive(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{FallbackAfter: 500 * time.Millisecond})
	r.flow.Conn.Start()
	// Simulate a live agent: poke every 200ms.
	var poke func()
	poke = func() {
		r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: 20000})
		r.sim.Schedule(200*time.Millisecond, poke)
	}
	r.sim.Schedule(0, poke)
	r.sim.Run(3 * time.Second)
	if r.dp.FallbackActive() || r.dp.Stats().FallbackOn != 0 {
		t.Fatal("fallback engaged despite live agent")
	}
}

func TestCloseSendsClose(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.sim.Run(100 * time.Millisecond)
	r.flow.Conn.Stop()
	if r.countMsgs(proto.TypeClose) != 1 {
		t.Fatal("no Close sent")
	}
}

func TestSendErrorsCounted(t *testing.T) {
	sim := netsim.New(1)
	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	path := netsim.NewPath(sim, netsim.PathConfig{Bottleneck: link8()}, fwd, rev)
	// ToAgent returning an error must be tolerated and counted.
	dp2 := datapath.New(datapath.Config{
		SID:     2,
		Clock:   sim,
		ToAgent: func(proto.Msg) error { return errSend },
	})
	f := tcp.NewFlow(sim, 2, path, fwd, rev, dp2, tcp.Options{})
	f.Conn.Start()
	sim.Run(500 * time.Millisecond)
	if dp2.Stats().SendErrors == 0 {
		t.Fatal("send errors not counted")
	}
	if f.Receiver.Delivered() == 0 {
		t.Fatal("flow stalled because agent channel failed")
	}
}

var errSend = errSentinel{}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

func TestReorderedCtrlNeverRegresses(t *testing.T) {
	// A duplicated/reordered channel can deliver an old decision after a
	// newer one; the sequence check must keep the newer window in force.
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 2, Bytes: 20000})
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 1, Bytes: 5000}) // stale reorder
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 2, Bytes: 5000}) // duplicate replay
	if got := r.flow.Conn.Cwnd(); got != 20000 {
		t.Fatalf("stale SetCwnd regressed window to %d", got)
	}
	st := r.dp.Stats()
	if st.SetCwndRecvd != 1 || st.StaleCtrlDropped != 2 {
		t.Fatalf("stats=%+v", st)
	}
	// Same sequence space covers SetRate and Install.
	r.dp.Deliver(&proto.SetRate{SID: 1, Seq: 1, Bps: 999})
	if r.flow.Conn.PacingRate() == 999 {
		t.Fatal("stale SetRate applied")
	}
	prev := r.dp.Program()
	data, err := lang.MarshalProgram(lang.NewProgram().Cwnd(lang.C(1448)).WaitRtts(1).MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	r.dp.Deliver(&proto.Install{SID: 1, Seq: 2, Prog: data})
	if r.dp.Program() != prev {
		t.Fatal("stale Install replaced the program")
	}
	// A genuinely newer decision still lands.
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 3, Bytes: 30000})
	if r.flow.Conn.Cwnd() != 30000 {
		t.Fatal("fresh SetCwnd rejected")
	}
}

func TestUnsequencedCtrlAlwaysAccepted(t *testing.T) {
	// Seq 0 predates the sequence protocol; it must keep working.
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 5, Bytes: 20000})
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: 7240})
	if r.flow.Conn.Cwnd() != 7240 {
		t.Fatal("unsequenced SetCwnd dropped")
	}
	if r.dp.Stats().StaleCtrlDropped != 0 {
		t.Fatalf("stats=%+v", r.dp.Stats())
	}
}

func TestStaleCtrlIsNotLiveness(t *testing.T) {
	// Replayed stale messages must not hold the §5 watchdog off: only
	// applied decisions prove the agent is making progress.
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{FallbackAfter: 500 * time.Millisecond})
	r.flow.Conn.Start()
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 100, Bytes: 20000})
	stale := func() { r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 1, Bytes: 5000}) }
	for i := 1; i <= 19; i++ {
		r.sim.Schedule(time.Duration(i)*100*time.Millisecond, stale)
	}
	r.sim.Run(2 * time.Second)
	if !r.dp.FallbackActive() {
		t.Fatal("stale replays kept the watchdog at bay")
	}
}

func TestUrgentsCarrySequence(t *testing.T) {
	link := netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 8 * 1500}
	r := newRig(t, link, tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	install(t, r, lang.NewProgram().Cwnd(lang.C(80*1448)).WaitRtts(1).Report().MustBuild())
	r.sim.Run(3 * time.Second)
	var seqs []uint32
	for _, m := range r.sent {
		if u, ok := m.(*proto.Urgent); ok {
			seqs = append(seqs, u.Seq)
		}
	}
	if len(seqs) < 2 {
		t.Fatalf("want >=2 urgents, got %d", len(seqs))
	}
	for i, s := range seqs {
		if s != uint32(i+1) {
			t.Fatalf("urgent %d has seq %d, want %d", i, s, i+1)
		}
	}
}

func TestWatchdogResyncsWhileFallbackActive(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{FallbackAfter: 500 * time.Millisecond})
	r.flow.Conn.Start()
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 7, Bytes: 20000})
	r.sim.Run(2 * time.Second) // agent goes silent; fallback engages
	if !r.dp.FallbackActive() {
		t.Fatal("fallback not active")
	}
	creates := 0
	var last *proto.Create
	for _, m := range r.sent {
		if c, ok := m.(*proto.Create); ok {
			creates++
			last = c
		}
	}
	if creates < 2 {
		t.Fatalf("no resync Creates sent (creates=%d)", creates)
	}
	if last.Seq != 7 {
		t.Fatalf("resync Create carries seq %d, want 7 (newest applied)", last.Seq)
	}
	if int(last.InitCwnd) != r.flow.Conn.Cwnd() {
		t.Fatalf("resync Create carries cwnd %d, conn has %d", last.InitCwnd, r.flow.Conn.Cwnd())
	}
	if r.dp.Stats().Resyncs != creates-1 {
		t.Fatalf("stats=%+v creates=%d", r.dp.Stats(), creates)
	}
}

func TestFallbackRecoveryReinstallsProgram(t *testing.T) {
	// Crash recovery end state: after the agent returns and re-installs, the
	// CCP program is in force and the window is the agent's decision — no
	// native-fallback state bleeds into the CCP window.
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{FallbackAfter: 500 * time.Millisecond})
	r.flow.Conn.Start()
	r.sim.Run(3 * time.Second) // fallback engages; NewReno grows the window
	if !r.dp.FallbackActive() {
		t.Fatal("fallback not active")
	}
	prog := lang.NewProgram().Cwnd(lang.C(30000)).WaitRtts(1).Report().MustBuild()
	data, err := lang.MarshalProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	r.dp.Deliver(&proto.Install{SID: 1, Seq: 1, Prog: data})
	if r.dp.FallbackActive() {
		t.Fatal("fallback still active after re-install")
	}
	if r.dp.Stats().FallbackOff != 1 || r.dp.Stats().InstallsRecvd != 1 {
		t.Fatalf("stats=%+v", r.dp.Stats())
	}
	// The re-installed program runs immediately and overwrites whatever
	// window the native fallback had grown to.
	if got := r.flow.Conn.Cwnd(); got != 30000 {
		t.Fatalf("cwnd=%d after re-install, want the program's 30000", got)
	}
	// With the agent now responsive, the program stays in control on
	// subsequent ACK processing (keepalives reuse the program's window).
	seq := uint32(2)
	for i := 1; i <= 14; i++ {
		s := seq
		seq++
		r.sim.Schedule(time.Duration(i)*250*time.Millisecond,
			func() { r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: s, Bytes: 30000}) })
	}
	r.sim.Run(4 * time.Second)
	if r.dp.FallbackActive() {
		t.Fatal("fallback re-engaged despite live agent")
	}
	if got := r.flow.Conn.Cwnd(); got != 30000 {
		t.Fatalf("cwnd drifted to %d under the re-installed program", got)
	}
}

func TestUnexpectedMsgCounted(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.dp.Deliver(&proto.Create{SID: 1}) // agent→datapath Create is nonsense
	if r.dp.Stats().UnexpectedMsgs != 1 {
		t.Fatalf("stats=%+v", r.dp.Stats())
	}
}
