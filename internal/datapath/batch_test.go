package datapath_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/metrics"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// flatten expands batches so tests can compare the logical message stream the
// agent observes regardless of framing.
func flatten(sent []proto.Msg) []proto.Msg {
	var out []proto.Msg
	for _, m := range sent {
		out = append(out, proto.Split(m)...)
	}
	return out
}

func reportSeqs(msgs []proto.Msg) []uint32 {
	var seqs []uint32
	for _, m := range msgs {
		switch v := m.(type) {
		case *proto.Measurement:
			seqs = append(seqs, v.Seq)
		case *proto.Vector:
			seqs = append(seqs, v.Seq)
		}
	}
	return seqs
}

func TestBatchingReducesIPCMessages(t *testing.T) {
	run := func(interval time.Duration) *rig {
		r := newRig(t, link8(), tcp.Options{}, datapath.Config{BatchInterval: interval})
		r.flow.Conn.Start()
		r.sim.Run(2 * time.Second)
		return r
	}
	plain := run(0)
	batched := run(100 * time.Millisecond) // ~10 RTTs of reports per frame

	if plain.dp.Stats().BatchesSent != 0 {
		t.Fatalf("unbatched rig sent batches: %+v", plain.dp.Stats())
	}
	if batched.dp.Stats().BatchesSent == 0 {
		t.Fatalf("batched rig sent no batches: %+v", batched.dp.Stats())
	}
	// Same logical report stream either way (coalescing only changes framing).
	if pn, bn := plain.dp.Stats().ReportsSent, batched.dp.Stats().ReportsSent; pn != bn {
		t.Fatalf("reports diverged: plain=%d batched=%d", pn, bn)
	}
	// The wire carries far fewer messages with a 10-RTT window.
	if len(batched.sent)*4 > len(plain.sent) {
		t.Fatalf("batching barely helped: %d vs %d wire messages", len(batched.sent), len(plain.sent))
	}
}

func TestBatchingPreservesLogicalStream(t *testing.T) {
	run := func(interval time.Duration) []proto.Msg {
		r := newRig(t, link8(), tcp.Options{}, datapath.Config{BatchInterval: interval})
		r.flow.Conn.Start()
		r.sim.Run(time.Second)
		r.flow.Conn.Stop() // flushes any pending frame
		return flatten(r.sent)
	}
	plain := run(0)
	batched := run(80 * time.Millisecond)
	if len(plain) != len(batched) {
		t.Fatalf("stream lengths diverged: plain=%d batched=%d", len(plain), len(batched))
	}
	for i := range plain {
		pe, err1 := proto.Marshal(plain[i])
		be, err2 := proto.Marshal(batched[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if string(pe) != string(be) {
			t.Fatalf("msg %d diverged:\nplain   %+v\nbatched %+v", i, plain[i], batched[i])
		}
	}
	// Report sequence numbers are consecutive from 1 in generation order.
	seqs := reportSeqs(batched)
	for i, s := range seqs {
		if s != uint32(i+1) {
			t.Fatalf("report %d has seq %d", i, s)
		}
	}
}

func TestUrgentFlushesPendingReports(t *testing.T) {
	// A tiny queue forces drops → urgents. With a long batch window, reports
	// coalesce; each urgent must flush them first so the flattened stream
	// stays in generation order.
	link := netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 8 * 1500}
	r := newRig(t, link, tcp.Options{}, datapath.Config{BatchInterval: 200 * time.Millisecond})
	r.flow.Conn.Start()
	install(t, r, lang.NewProgram().Cwnd(lang.C(80*1448)).WaitRtts(1).Report().MustBuild())
	r.sim.Run(3 * time.Second)
	if r.countMsgs(proto.TypeUrgent) == 0 {
		t.Fatal("no urgents despite forced drops")
	}
	// No urgent may be wrapped inside a batch frame.
	for _, m := range r.sent {
		if b, ok := m.(*proto.Batch); ok {
			for _, sub := range b.Msgs {
				if sub.Type() == proto.TypeUrgent {
					t.Fatal("urgent coalesced into a batch")
				}
			}
		}
	}
	// Flattened stream: report seqs strictly increasing (flush-before-urgent
	// keeps order), and an urgent never overtakes an earlier report.
	seqs := reportSeqs(flatten(r.sent))
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("report order violated at %d: %v", i, seqs[i-1:i+1])
		}
	}
}

func TestCloseFlushesPendingReports(t *testing.T) {
	// Interval far longer than the run: reports only leave because Close
	// flushes them.
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{BatchInterval: 10 * time.Second})
	r.flow.Conn.Start()
	r.sim.Run(300 * time.Millisecond)
	r.flow.Conn.Stop()
	flat := flatten(r.sent)
	reports := len(reportSeqs(flat))
	if reports != r.dp.Stats().ReportsSent {
		t.Fatalf("flushed %d reports, datapath generated %d", reports, r.dp.Stats().ReportsSent)
	}
	if reports == 0 {
		t.Fatal("no reports generated")
	}
	if flat[len(flat)-1].Type() != proto.TypeClose {
		t.Fatalf("last message is %v, want Close after the flush", flat[len(flat)-1].Type())
	}
}

func TestMaxBatchMsgsFlushesEarly(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{
		BatchInterval: 10 * time.Second, // timer never fires in a 1 s run
		MaxBatchMsgs:  3,
	})
	r.flow.Conn.Start()
	r.sim.Run(time.Second)
	st := r.dp.Stats()
	if st.BatchesSent == 0 {
		t.Fatalf("size trigger never flushed: %+v", st)
	}
	for _, m := range r.sent {
		if b, ok := m.(*proto.Batch); ok && len(b.Msgs) > 3 {
			t.Fatalf("batch of %d exceeds MaxBatchMsgs=3", len(b.Msgs))
		}
	}
}

func TestDatapathMetricsThreaded(t *testing.T) {
	reg := metrics.NewRegistry()
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{
		BatchInterval: 100 * time.Millisecond,
		Metrics:       reg,
	})
	r.flow.Conn.Start()
	r.sim.Run(2 * time.Second)
	snap := reg.Snapshot()
	if snap.Counters["dp_reports_sent_total"] != int64(r.dp.Stats().ReportsSent) {
		t.Fatalf("metrics/stats mismatch: %v vs %+v", snap.Counters, r.dp.Stats())
	}
	h, ok := snap.Histograms["dp_batch_size"]
	if !ok || h.Count == 0 {
		t.Fatalf("batch size histogram empty: %+v", snap.Histograms)
	}
	if h.Min < 2 {
		t.Fatalf("single-message batches should be sent plain (min=%v)", h.Min)
	}
}
