package datapath_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
)

func TestSmoothCwndRampsIncreases(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{SmoothCwnd: true})
	r.flow.Conn.Start()
	r.sim.Run(200 * time.Millisecond) // establish srtt (~10ms)
	base := r.flow.Conn.Cwnd()

	target := base + 100*1448
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: uint32(target)})
	// Immediately after delivery, only the first quarter-step has applied.
	mid := r.flow.Conn.Cwnd()
	if mid >= target {
		t.Fatalf("increase applied as a step: %d -> %d", base, mid)
	}
	if mid <= base {
		t.Fatal("no first step applied")
	}
	// Within ~1.5 RTTs the ramp completes.
	r.sim.Run(220 * time.Millisecond)
	if got := r.flow.Conn.Cwnd(); got != target {
		t.Fatalf("ramp did not complete: %d, want %d", got, target)
	}
}

func TestSmoothCwndDecreasesImmediately(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{SmoothCwnd: true})
	r.flow.Conn.Start()
	r.sim.Run(200 * time.Millisecond)
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: 200 * 1448})
	r.sim.Run(400 * time.Millisecond)
	// A decrease must take effect at once (safety).
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: 10 * 1448})
	if got := r.flow.Conn.Cwnd(); got != 10*1448 {
		t.Fatalf("decrease delayed: cwnd=%d", got)
	}
}

func TestSmoothCwndRetargetsMidRamp(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{SmoothCwnd: true})
	r.flow.Conn.Start()
	r.sim.Run(200 * time.Millisecond)
	base := r.flow.Conn.Cwnd()
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: uint32(base + 100*1448)})
	// Retarget lower before the ramp completes: applies immediately.
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: uint32(base)})
	r.sim.Run(300 * time.Millisecond)
	if got := r.flow.Conn.Cwnd(); got != base {
		t.Fatalf("stale ramp kept running: cwnd=%d, want %d", got, base)
	}
}

func TestSmoothCwndDisabledIsStep(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.sim.Run(100 * time.Millisecond)
	target := r.flow.Conn.Cwnd() + 100*1448
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Bytes: uint32(target)})
	if got := r.flow.Conn.Cwnd(); got != target {
		t.Fatalf("step mode did not apply directly: %d, want %d", got, target)
	}
}
