package datapath_test

import (
	"math"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// TestBackendsBitIdentical drives the same simulated flow under the same
// fold+control program once per VM backend and requires the two runs to be
// indistinguishable: every report bit-identical, every control decision
// landing on the same window. The simulator is deterministic, so the only
// possible source of divergence is the expression engine itself.
func TestBackendsBitIdentical(t *testing.T) {
	run := func(stackVM bool) (msgs []proto.Msg, cwnd int, rate float64) {
		r := newRig(t, link8(), tcp.Options{}, datapath.Config{StackVM: stackVM})
		r.flow.Conn.Start()
		fold := &lang.FoldSpec{
			Regs: []lang.RegDef{
				{Name: "base_rtt", Init: 1e9},
				{Name: "s_rtt", Init: 0},
				{Name: "acked", Init: 0},
			},
			Updates: []lang.Assign{
				{Dst: "base_rtt", E: lang.Min(lang.V("base_rtt"), lang.V("pkt.rtt"))},
				{Dst: "s_rtt", E: lang.Add(lang.Mul(lang.C(0.875), lang.V("s_rtt")), lang.Mul(lang.C(0.125), lang.V("pkt.rtt")))},
				{Dst: "acked", E: lang.Add(lang.V("acked"), lang.V("pkt.acked"))},
			},
		}
		p := lang.NewProgram().
			MeasureFold(fold).
			Cwnd(lang.Min(lang.Add(lang.V("cwnd"), lang.Ite(
				lang.Gt(lang.V("pkt.lost"), lang.C(0)),
				lang.C(0),
				lang.V("mss"))), lang.C(1<<30))).
			WaitRtts(1).
			Report().
			MustBuild()
		install(t, r, p)
		r.sim.Run(2 * time.Second)
		return r.sent, r.flow.Conn.Cwnd(), r.flow.Conn.PacingRate()
	}

	sMsgs, sCwnd, sRate := run(true)
	rMsgs, rCwnd, rRate := run(false)

	if sCwnd != rCwnd || sRate != rRate {
		t.Fatalf("final flow state diverged: stack cwnd=%d rate=%v, register cwnd=%d rate=%v",
			sCwnd, sRate, rCwnd, rRate)
	}
	if len(sMsgs) != len(rMsgs) {
		t.Fatalf("message counts diverged: stack=%d register=%d", len(sMsgs), len(rMsgs))
	}
	for i := range sMsgs {
		sm, sOK := sMsgs[i].(*proto.Measurement)
		rm, rOK := rMsgs[i].(*proto.Measurement)
		if sOK != rOK {
			t.Fatalf("msg %d: type diverged: %T vs %T", i, sMsgs[i], rMsgs[i])
		}
		if !sOK {
			continue
		}
		if len(sm.Fields) != len(rm.Fields) {
			t.Fatalf("msg %d: field counts diverged: %d vs %d", i, len(sm.Fields), len(rm.Fields))
		}
		for j := range sm.Fields {
			if math.Float64bits(sm.Fields[j]) != math.Float64bits(rm.Fields[j]) {
				t.Fatalf("msg %d field %d: stack=%v (%#x) register=%v (%#x)",
					i, j, sm.Fields[j], math.Float64bits(sm.Fields[j]),
					rm.Fields[j], math.Float64bits(rm.Fields[j]))
			}
		}
	}
}
