package datapath_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
)

func livenessCfg(budget time.Duration) datapath.Config {
	return datapath.Config{Liveness: datapath.LivenessConfig{StalenessBudget: budget}}
}

func TestLivenessEntersFallbackOnStaleControl(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, livenessCfg(200*time.Millisecond))
	r.flow.Conn.Start()
	// Keep feeding control for a while, then go silent.
	r.sim.Run(50 * time.Millisecond)
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 1, Bytes: 50000})
	if r.dp.FallbackActive() {
		t.Fatal("fallback active with fresh control")
	}
	r.sim.Run(600 * time.Millisecond)
	if !r.dp.FallbackActive() {
		t.Fatal("staleness budget blown but fallback not active")
	}
	st := r.dp.Stats()
	if st.FallbackOn != 1 || st.LivenessStale != 1 {
		t.Fatalf("stats=%+v, want one stale-triggered activation", st)
	}
	if st.AgentGoneSignals != 0 {
		t.Fatalf("unexpected agent-gone signals: %+v", st)
	}
	// Degraded mode keeps re-announcing the flow.
	if st.Resyncs == 0 {
		t.Fatal("no resyncs while degraded")
	}
}

func TestLivenessEntryHalvesCwndAndClearsRate(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, livenessCfg(200*time.Millisecond))
	r.flow.Conn.Start()
	r.sim.Run(10 * time.Millisecond)
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 1, Bytes: 80000})
	r.dp.Deliver(&proto.SetRate{SID: 1, Seq: 2, Bps: 100e3}) // a throttling stale cap
	before := r.flow.Conn.Cwnd()
	if before != 80000 {
		t.Fatalf("cwnd=%d before fallback", before)
	}
	r.sim.Run(500 * time.Millisecond)
	if !r.dp.FallbackActive() {
		t.Fatal("fallback not active")
	}
	// Entry halves the window (the fallback may have grown it again since,
	// but with the 100kbps pacing cap cleared and NewReno in charge it must
	// sit well below the stale 80000 and above the two-segment floor).
	cwnd := r.flow.Conn.Cwnd()
	if cwnd >= before {
		t.Fatalf("cwnd=%d not reduced from %d on fallback entry", cwnd, before)
	}
	if cwnd < 2*r.flow.Conn.MSS() {
		t.Fatalf("cwnd=%d below two segments", cwnd)
	}
	if r.flow.Conn.PacingRate() != 0 {
		t.Fatalf("stale pacing cap %v survived fallback entry", r.flow.Conn.PacingRate())
	}
}

func TestLivenessExitRampsWindow(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, livenessCfg(200*time.Millisecond))
	r.flow.Conn.Start()
	r.sim.Run(600 * time.Millisecond) // enter fallback
	if !r.dp.FallbackActive() {
		t.Fatal("fallback not active")
	}
	small := r.flow.Conn.Cwnd()
	// Agent returns with a much larger window: the handoff must ramp, not
	// step — immediately after delivery the window is above where it was
	// but still short of the target.
	target := small * 8
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 100, Bytes: uint32(target)})
	if r.dp.FallbackActive() {
		t.Fatal("fresh decision did not exit fallback")
	}
	st := r.dp.Stats()
	if st.FallbackOff != 1 || st.HandoffRamps != 1 {
		t.Fatalf("stats=%+v, want one ramped exit", st)
	}
	if got := r.flow.Conn.Cwnd(); got >= target {
		t.Fatalf("cwnd=%d jumped straight to target %d (no ramp)", got, target)
	}
	// The ramp completes within ~a round trip.
	r.sim.Run(r.sim.Now() + 100*time.Millisecond)
	if got := r.flow.Conn.Cwnd(); got != target {
		t.Fatalf("cwnd=%d never reached target %d", got, target)
	}
}

func TestAgentGoneEntersImmediately(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, livenessCfg(10*time.Second))
	r.flow.Conn.Start()
	r.sim.Run(20 * time.Millisecond)
	r.dp.AgentGone(true)
	if !r.dp.FallbackActive() {
		t.Fatal("explicit gone signal did not enter fallback (budget far away)")
	}
	st := r.dp.Stats()
	if st.AgentGoneSignals != 1 || st.LivenessStale != 0 {
		t.Fatalf("stats=%+v, want gone-triggered entry", st)
	}
	// While the transport still says gone, a straggling queued decision must
	// not exit fallback.
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 5, Bytes: 90000})
	if !r.dp.FallbackActive() {
		t.Fatal("straggler decision exited fallback while agent still gone")
	}
	// Link back + fresh decision: exit.
	r.dp.AgentGone(false)
	if !r.dp.FallbackActive() {
		t.Fatal("link-back alone must not exit fallback")
	}
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 6, Bytes: 90000})
	if r.dp.FallbackActive() {
		t.Fatal("fresh decision after link-back did not exit fallback")
	}
}

func TestAgentGoneNoopWhenLivenessDisabled(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.dp.AgentGone(true)
	if r.dp.FallbackActive() {
		t.Fatal("AgentGone engaged fallback with the liveness layer disabled")
	}
	if st := r.dp.Stats(); st.AgentGoneSignals != 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestStalenessClocksPerKind(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, livenessCfg(10*time.Second))
	r.flow.Conn.Start()
	r.sim.Run(100 * time.Millisecond)
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 1, Bytes: 50000})
	r.sim.Run(150 * time.Millisecond)
	r.dp.Deliver(&proto.SetRate{SID: 1, Seq: 2, Bps: 1e6})
	r.sim.Run(250 * time.Millisecond)
	st := r.dp.Staleness()
	if st.Rate >= st.Cwnd {
		t.Fatalf("rate clock %v not fresher than cwnd clock %v", st.Rate, st.Cwnd)
	}
	if st.Any != st.Rate {
		t.Fatalf("any=%v, want the freshest (%v)", st.Any, st.Rate)
	}
	if st.Install <= st.Cwnd {
		t.Fatalf("install clock %v should be the stalest (init-time), cwnd %v", st.Install, st.Cwnd)
	}
}

func TestBackoffStretchesReportInterval(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	r.sim.Run(time.Second)
	base := r.countMsgs(proto.TypeMeasurement)
	r.dp.Deliver(&proto.Backoff{SID: 1, Factor: 4})
	if st := r.dp.Stats(); st.BackoffsRecvd != 1 {
		t.Fatalf("stats=%+v", st)
	}
	if r.dp.BackoffFactor() != 4 {
		t.Fatalf("factor=%v, want 4", r.dp.BackoffFactor())
	}
	r.sim.Run(2 * time.Second)
	second := r.countMsgs(proto.TypeMeasurement) - base
	// The stretch decays geometrically, so the second second has fewer
	// reports than the first (which had ~1 per RTT ≈ 100) but not 4x fewer
	// forever; just require a visible reduction.
	if second >= base {
		t.Fatalf("backoff did not reduce report rate: first=%d second=%d", base, second)
	}
	// And the factor decays back toward 1, restoring full frequency.
	r.sim.Run(10 * time.Second)
	if r.dp.BackoffFactor() != 1 {
		t.Fatalf("factor=%v never decayed to 1", r.dp.BackoffFactor())
	}
}

func TestBackoffClampedAndNotLiveness(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, livenessCfg(300*time.Millisecond))
	r.flow.Conn.Start()
	r.dp.Deliver(&proto.Backoff{SID: 1, Factor: 1e6})
	if got := r.dp.BackoffFactor(); got != 8 {
		t.Fatalf("factor=%v, want clamp at default max 8", got)
	}
	if st := r.dp.Stats(); st.UnexpectedMsgs != 0 {
		t.Fatalf("Backoff miscounted as unexpected: %+v", st)
	}
	// Backoffs alone must not keep the flow "live": with only Backoffs
	// arriving, the staleness budget still blows.
	stop := r.sim.Now() + 900*time.Millisecond
	var feed func()
	feed = func() {
		r.dp.Deliver(&proto.Backoff{SID: 1, Factor: 2})
		if r.sim.Now() < stop {
			r.sim.Schedule(50*time.Millisecond, feed)
		}
	}
	r.sim.Schedule(0, feed)
	r.sim.Run(time.Second)
	if !r.dp.FallbackActive() {
		t.Fatal("a stream of Backoffs kept the liveness clock fresh")
	}
}

func TestCtrlSeqWraparoundDoesNotBlackhole(t *testing.T) {
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{})
	r.flow.Conn.Start()
	// Serial-number comparison only orders seqs within a half-window, so walk
	// lastCtrlSeq up to the edge of the space before crossing it.
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 1<<31 - 1, Bytes: 30000})
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: ^uint32(0) - 1, Bytes: 40000})
	if got := r.flow.Conn.Cwnd(); got != 40000 {
		t.Fatalf("cwnd=%d before wrap, want 40000", got)
	}
	// The agent's counter wraps (skipping 0): the next decision arrives as
	// seq 1 and must be applied, not dropped as stale forever.
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 1, Bytes: 50000})
	if got := r.flow.Conn.Cwnd(); got != 50000 {
		t.Fatalf("cwnd=%d: post-wrap decision dropped — flow blackholed", got)
	}
	// A replayed pre-wrap decision is stale now.
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: ^uint32(0) - 1, Bytes: 40000})
	if got := r.flow.Conn.Cwnd(); got != 50000 {
		t.Fatalf("cwnd=%d: replayed pre-wrap decision applied", got)
	}
	st := r.dp.Stats()
	if st.SetCwndRecvd != 3 || st.StaleCtrlDropped != 1 {
		t.Fatalf("stats=%+v, want 3 applied / 1 stale-dropped", st)
	}
}

func TestLegacyWatchdogStillGoverns(t *testing.T) {
	// With Liveness zero, FallbackAfter behaves exactly as before: entry
	// without cwnd change, exit on any applied decision, no handoff ramp.
	r := newRig(t, link8(), tcp.Options{}, datapath.Config{FallbackAfter: 200 * time.Millisecond})
	r.flow.Conn.Start()
	r.sim.Run(10 * time.Millisecond)
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 1, Bytes: 60000})
	r.sim.Run(600 * time.Millisecond)
	if !r.dp.FallbackActive() {
		t.Fatal("legacy watchdog did not fire")
	}
	st := r.dp.Stats()
	if st.LivenessStale != 0 || st.HandoffRamps != 0 {
		t.Fatalf("liveness counters moved under legacy watchdog: %+v", st)
	}
	target := 90000
	r.dp.Deliver(&proto.SetCwnd{SID: 1, Seq: 2, Bytes: uint32(target)})
	if r.dp.FallbackActive() {
		t.Fatal("legacy exit failed")
	}
	if got := r.flow.Conn.Cwnd(); got != target {
		t.Fatalf("legacy exit must step directly: cwnd=%d want %d", got, target)
	}
	if st := r.dp.Stats(); st.HandoffRamps != 0 {
		t.Fatalf("legacy exit ramped: %+v", st)
	}
}
