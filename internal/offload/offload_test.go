package offload

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/netsim"
)

func TestEvaluateUncappedWhenCheap(t *testing.T) {
	m := DefaultCosts()
	c := Counts{
		Duration:     time.Second,
		PayloadBytes: 1e9, // 8 Gbit/s
		SegsSent:     700000,
		PktsSent:     16000, // TSO: ~44 segs per packet
		AcksRcvd:     16000,
		RxWirePkts:   16000,
		RxBatches:    16000,
		AcksSent:     16000,
	}
	r := m.Evaluate(c)
	if r.AchievedBps != r.MeasuredBps {
		t.Fatalf("capped despite cheap offloaded path: %+v", r)
	}
	if r.SenderCPU > 0.5 || r.ReceiverCPU > 0.5 {
		t.Fatalf("offloaded path too expensive: %+v", r)
	}
}

func TestEvaluateCapsWhenExpensive(t *testing.T) {
	m := DefaultCosts()
	c := Counts{
		Duration:     time.Second,
		PayloadBytes: 1.25e9, // 10 Gbit/s attempted
		SegsSent:     864000,
		PktsSent:     864000, // TSO off: one wire packet per segment
		AcksRcvd:     864000,
		RxWirePkts:   864000,
		RxBatches:    864000, // GRO off
		AcksSent:     864000,
	}
	r := m.Evaluate(c)
	if r.SenderCPU <= 1 {
		t.Fatalf("sender should be CPU-bound: %+v", r)
	}
	if r.AchievedBps >= r.MeasuredBps {
		t.Fatalf("no cap applied: %+v", r)
	}
	if r.AchievedBps <= 0 {
		t.Fatalf("achieved must stay positive: %+v", r)
	}
}

func TestEvaluateCCPSavesSenderCycles(t *testing.T) {
	m := DefaultCosts()
	base := Counts{
		Duration:     time.Second,
		PayloadBytes: 1.25e9,
		SegsSent:     864000,
		PktsSent:     864000,
		AcksRcvd:     864000,
		RxWirePkts:   864000,
		RxBatches:    200000,
		AcksSent:     864000,
	}
	native := m.Evaluate(base)
	ccp := base
	ccp.CCP = true
	ccp.AgentMsgs = 200 // ~2/RTT at 10ms RTT over 1s
	ccpRes := m.Evaluate(ccp)
	if ccpRes.SenderCPU >= native.SenderCPU {
		t.Fatalf("CCP per-ack path should be cheaper: ccp=%.3f native=%.3f",
			ccpRes.SenderCPU, native.SenderCPU)
	}
}

func TestEvaluateZeroDuration(t *testing.T) {
	if r := DefaultCosts().Evaluate(Counts{}); r != (Result{}) {
		t.Fatalf("zero run should be zero: %+v", r)
	}
}

type sink struct{ pkts int }

func (s *sink) Handle(p *netsim.Packet) { s.pkts++ }

func TestGROCounterMergesBursts(t *testing.T) {
	sim := netsim.New(1)
	s := &sink{}
	g := NewGROCounter(sim, s, true)
	mk := func() *netsim.Packet { return &netsim.Packet{Len: 1448, Segs: 1} }

	// Burst of 5 back-to-back packets: one batch.
	for i := 0; i < 5; i++ {
		g.Handle(mk())
	}
	if g.Batches() != 1 {
		t.Fatalf("burst batches=%d, want 1", g.Batches())
	}
	// A packet after a long gap starts a new batch.
	sim.Schedule(time.Millisecond, func() { g.Handle(mk()) })
	sim.Run(time.Second)
	if g.Batches() != 2 {
		t.Fatalf("after gap batches=%d, want 2", g.Batches())
	}
	if s.pkts != 6 || g.Pkts() != 6 {
		t.Fatalf("forwarding broken: sink=%d counter=%d", s.pkts, g.Pkts())
	}
}

func TestGROCounterRespectsMaxSegs(t *testing.T) {
	sim := netsim.New(1)
	g := NewGROCounter(sim, &sink{}, true)
	g.MaxSegs = 4
	for i := 0; i < 10; i++ {
		g.Handle(&netsim.Packet{Len: 1448, Segs: 1})
	}
	// 10 segments at max 4/batch => 3 batches.
	if g.Batches() != 3 {
		t.Fatalf("batches=%d, want 3", g.Batches())
	}
}

func TestGROCounterDisabled(t *testing.T) {
	sim := netsim.New(1)
	g := NewGROCounter(sim, &sink{}, false)
	for i := 0; i < 7; i++ {
		g.Handle(&netsim.Packet{Len: 1448, Segs: 1})
	}
	if g.Batches() != 7 {
		t.Fatalf("disabled GRO batches=%d, want 7", g.Batches())
	}
}

func TestGROCounterIgnoresAcks(t *testing.T) {
	sim := netsim.New(1)
	s := &sink{}
	g := NewGROCounter(sim, s, true)
	g.Handle(&netsim.Packet{IsAck: true})
	if g.Batches() != 0 || g.Pkts() != 0 {
		t.Fatal("ACK counted as data")
	}
	if s.pkts != 1 {
		t.Fatal("ACK not forwarded")
	}
}

func TestMeanBatchSegs(t *testing.T) {
	sim := netsim.New(1)
	g := NewGROCounter(sim, &sink{}, true)
	for i := 0; i < 6; i++ {
		g.Handle(&netsim.Packet{Len: 1448, Segs: 1})
	}
	if got := g.MeanBatchSegs(6); got != 6 {
		t.Fatalf("mean=%v", got)
	}
	empty := NewGROCounter(sim, &sink{}, true)
	if empty.MeanBatchSegs(0) != 0 {
		t.Fatal("empty mean not 0")
	}
}
