// Package offload models NIC offloads and endpoint CPU costs for the
// Figure 5 reproduction ("Will CCP waste CPU cycles?").
//
// The paper measured achieved throughput on a real 10 Gbit/s testbed with
// TSO/GSO/GRO enabled and disabled. We cannot measure a NIC, so we combine
// two ingredients with the same mechanics:
//
//   - the packet-level simulation supplies the *traffic shape* — how many
//     wire packets each side handles (TSO batches segments at the sender)
//     and how well receive aggregation works (a GRO counter merges
//     back-to-back arrivals, so burstier senders yield fewer, larger
//     batches — the effect the paper credits for CCP's edge with TSO off);
//   - a first-order cycle-cost model converts those counts into per-second
//     CPU demand and caps throughput at what the budgeted cores can sustain.
//
// Achieved throughput is min(simulated link throughput, sender CPU cap,
// receiver CPU cap), averaged over runs exactly as Figure 5 averages four.
package offload

import (
	"time"

	"github.com/ccp-repro/ccp/internal/netsim"
)

// CostModel holds per-operation cycle costs and per-endpoint budgets.
// Values are loosely calibrated to mid-2010s server cores (~3 GHz, one core
// per endpoint for networking), which is all Figure 5's *shape* needs.
type CostModel struct {
	SenderBudget   float64 // cycles/sec available for TX processing
	ReceiverBudget float64 // cycles/sec available for RX processing

	CostPerSegment float64 // software segmentation per MSS (GSO off)
	CostPerWirePkt float64 // descriptor + doorbell + completion per TX packet
	CostPerAckRcvd float64 // ACK processing at the sender
	CostCCNative   float64 // in-datapath congestion control per ACK
	CostCCPPerAck  float64 // CCP fold/EWMA update per ACK
	CostIPCMsg     float64 // one agent message (syscall + copy + wakeup amortized)
	CostRxBatch    float64 // per GRO batch delivered up the receive stack
	CostRxWirePkt  float64 // per wire packet touched at the receiver NIC/driver
	CostAckSent    float64 // building + sending one ACK
}

// DefaultCosts returns the calibrated model. The budgets correspond to one
// ~2 GHz core per endpoint devoted to networking — the regime where running
// a 10 Gbit/s stream without segmentation offload is genuinely CPU-bound,
// as on the paper's testbed.
func DefaultCosts() CostModel {
	return CostModel{
		SenderBudget:   2.2e9,
		ReceiverBudget: 2.2e9,
		CostPerSegment: 300,
		CostPerWirePkt: 2200,
		CostPerAckRcvd: 1200,
		CostCCNative:   250,
		CostCCPPerAck:  120,
		CostIPCMsg:     4000,
		CostRxBatch:    2800,
		CostRxWirePkt:  350,
		CostAckSent:    900,
	}
}

// Counts aggregates what one simulated run did, gathered from the tcp and
// datapath counters plus a GROCounter.
type Counts struct {
	Duration     time.Duration
	PayloadBytes int64 // bytes delivered in order

	// Sender side.
	SegsSent  int
	PktsSent  int
	AcksRcvd  int
	AgentMsgs int  // CCP messages in both directions (0 for native)
	CCP       bool // congestion control ran off-datapath

	// Receiver side.
	RxWirePkts int
	RxBatches  int // GRO batches (== RxWirePkts when GRO is off)
	AcksSent   int
}

// Result is one Figure 5 bar.
type Result struct {
	MeasuredBps float64 // simulated goodput, bits/sec
	SenderCPU   float64 // fraction of the sender budget consumed at MeasuredBps
	ReceiverCPU float64 // fraction of the receiver budget
	AchievedBps float64 // throughput after CPU caps, bits/sec
}

// Evaluate applies the cost model to a run.
func (m CostModel) Evaluate(c Counts) Result {
	secs := c.Duration.Seconds()
	if secs <= 0 {
		return Result{}
	}
	measured := float64(c.PayloadBytes) * 8 / secs

	ccCost := m.CostCCNative
	if c.CCP {
		ccCost = m.CostCCPPerAck
	}
	txCycles := float64(c.SegsSent)*m.CostPerSegment +
		float64(c.PktsSent)*m.CostPerWirePkt +
		float64(c.AcksRcvd)*(m.CostPerAckRcvd+ccCost) +
		float64(c.AgentMsgs)*m.CostIPCMsg
	rxCycles := float64(c.RxWirePkts)*m.CostRxWirePkt +
		float64(c.RxBatches)*m.CostRxBatch +
		float64(c.AcksSent)*m.CostAckSent

	txLoad := txCycles / secs / m.SenderBudget
	rxLoad := rxCycles / secs / m.ReceiverBudget

	achieved := measured
	if txLoad > 1 {
		if cap := measured / txLoad; cap < achieved {
			achieved = cap
		}
	}
	if rxLoad > 1 {
		if cap := measured / rxLoad; cap < achieved {
			achieved = cap
		}
	}
	return Result{
		MeasuredBps: measured,
		SenderCPU:   txLoad,
		ReceiverCPU: rxLoad,
		AchievedBps: achieved,
	}
}

// GROCounter observes the receive path and counts GRO batches: consecutive
// data packets of one flow arriving within Timeout of each other merge into
// a batch of up to MaxSegs segments. Insert it between the demux and the
// tcp.Receiver.
type GROCounter struct {
	Next    netsim.Handler
	Clock   interface{ Now() time.Duration }
	Timeout time.Duration
	MaxSegs int

	Enabled bool

	batches int
	pkts    int
	lastAt  time.Duration
	curSegs int
	started bool
}

// NewGROCounter wraps next with batch accounting. When enabled is false,
// every packet counts as its own batch (GRO off).
func NewGROCounter(clock interface{ Now() time.Duration }, next netsim.Handler, enabled bool) *GROCounter {
	return &GROCounter{
		Next:    next,
		Clock:   clock,
		Timeout: 30 * time.Microsecond, // ~2 NAPI poll intervals at 10G
		MaxSegs: 45,                    // 64 KiB / 1448
		Enabled: enabled,
	}
}

// Handle implements netsim.Handler.
func (g *GROCounter) Handle(p *netsim.Packet) {
	if !p.IsAck {
		g.pkts++
		segs := p.Segs
		if segs <= 0 {
			segs = 1
		}
		now := g.Clock.Now()
		if !g.Enabled {
			g.batches++
		} else if !g.started || now-g.lastAt > g.Timeout || g.curSegs+segs > g.MaxSegs {
			g.batches++
			g.curSegs = 0
		}
		g.curSegs += segs
		g.lastAt = now
		g.started = true
	}
	g.Next.Handle(p)
}

// Batches returns the number of GRO batches observed.
func (g *GROCounter) Batches() int { return g.batches }

// Pkts returns the number of data packets observed.
func (g *GROCounter) Pkts() int { return g.pkts }

// MeanBatchSegs returns average segments per batch.
func (g *GROCounter) MeanBatchSegs(totalSegs int) float64 {
	if g.batches == 0 {
		return 0
	}
	return float64(totalSegs) / float64(g.batches)
}
