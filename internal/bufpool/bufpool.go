// Package bufpool provides pooled byte buffers for the message hot paths.
// The wire codec, the IPC transports, and the socket link all move short
// frames at high rates; allocating a fresh []byte per frame makes the GC, not
// the protocol, the bottleneck at scale. A Buf is a reference-counted-by-
// convention buffer: exactly one owner at a time, handed off explicitly, and
// returned to the pool with Release when the owner is done.
//
// Ownership rules (shared by every user of the pool):
//
//   - Get transfers ownership of the returned Buf to the caller.
//   - Passing a *Buf to another component transfers ownership; the sender
//     must not touch it afterwards.
//   - The final owner calls Release exactly once. Releasing twice, or using
//     B after Release, corrupts whatever the pool hands the buffer to next.
//   - Wrap builds a non-pooled Buf around an existing slice; its Release is
//     a no-op, so code paths can treat pooled and unpooled frames uniformly.
//
// These rules are enforced two ways: statically by the bufrelease analyzer
// in internal/analysis (run via cmd/ccp-lint), and dynamically by the
// `debugpool` build tag, which makes Release poison the payload and record
// owner stacks so double-Release and write-after-Release panic at the point
// of reuse instead of corrupting a later frame.
package bufpool

import "sync"

// Buf is one pooled buffer. B is the payload: valid from Get (or Wrap) until
// Release.
type Buf struct {
	B      []byte
	dbg    debugState // zero-size unless built with -tags debugpool
	pooled bool
	// onRelease, when non-nil, marks a view buffer: Release invokes the hook
	// instead of returning storage to any pool. Transports that hand out
	// windows into shared storage (shmring) use the hook to learn when the
	// consumer is done so the underlying region can be reclaimed.
	onRelease func()
}

var pool = sync.Pool{New: func() any {
	return &Buf{B: make([]byte, 0, 512), pooled: true}
}}

// Wrap returns a non-pooled Buf aliasing data, so APIs that hand out pooled
// frames can also hand out caller-owned slices. Release on the result is a
// no-op.
func Wrap(data []byte) *Buf { return &Buf{B: data} }

// NewView returns a reusable view buffer whose Release calls fn instead of
// touching the pool. The owner (a transport) arms it with SetView before each
// hand-out and reclaims the viewed region when fn fires; handing out the same
// view Buf again before fn has fired is the owner's bug, not the pool's.
// A view Buf follows the same single-owner discipline as a pooled frame: the
// receiver calls Release exactly once and must not touch B afterwards — the
// bytes belong to shared storage that is recycled once the hook runs.
func NewView(fn func()) *Buf { return &Buf{onRelease: fn} }
