//go:build debugpool

package bufpool

import (
	"fmt"
	"runtime"
	"sync"
)

// DebugEnabled reports whether the runtime ownership checker (the
// `debugpool` build tag) is compiled in.
const DebugEnabled = true

// poison is written over the whole capacity of a released buffer. Any write
// to a frame after Release breaks the pattern, and the next Get of that
// buffer panics with the stacks of the owner that released it — turning
// silent cross-frame corruption into an immediate, attributed failure.
const poison = 0xDB

// debugState carries per-buffer ownership bookkeeping under -tags debugpool.
type debugState struct {
	mu       sync.Mutex
	live     bool // owned by a caller (between Get and Release)
	poisoned bool // released through the debug path at least once
	getStack []byte
	relStack []byte
}

func stack() []byte {
	buf := make([]byte, 8<<10)
	return buf[:runtime.Stack(buf, false)]
}

// Get returns a buffer with len(B) == 0 and cap(B) >= capHint. The caller
// owns it until Release. Under debugpool, Get verifies that the poison
// pattern written by the previous Release is intact; a torn pattern means
// some component kept writing through a frame it had already released.
func Get(capHint int) *Buf {
	b := pool.Get().(*Buf)
	b.dbg.mu.Lock()
	if b.dbg.poisoned {
		full := b.B[:cap(b.B)]
		for i, c := range full {
			if c != poison {
				panic(fmt.Sprintf(
					"bufpool: buffer written after Release (byte %d of %d is %#x, want %#x)\n\n"+
						"previous owner's Get:\n%s\nprevious owner's Release:\n%s",
					i, len(full), c, poison, b.dbg.getStack, b.dbg.relStack))
			}
		}
	}
	b.dbg.live = true
	b.dbg.getStack = stack()
	b.dbg.relStack = nil
	b.dbg.mu.Unlock()
	if cap(b.B) < capHint {
		b.B = make([]byte, 0, capHint)
	}
	b.B = b.B[:0]
	return b
}

// Release returns the buffer to the pool. It is a no-op on nil or wrapped
// buffers; on a view buffer it fires the owner's release hook. Under
// debugpool a second Release of the same buffer panics with both Release
// stacks, and the payload is poisoned so later writes through a stale alias
// are caught by the next Get. A released view is poisoned too: the viewed
// record was consumed, so scribbling 0xDB over it before the owner reclaims
// the region turns any reader still aliasing it into an immediate failure.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	if b.onRelease != nil {
		b.dbg.mu.Lock()
		if !b.dbg.live {
			rel := b.dbg.relStack
			b.dbg.mu.Unlock()
			panic(fmt.Sprintf(
				"bufpool: double Release of view buffer\n\nfirst Release:\n%s\nsecond Release:\n%s",
				rel, stack()))
		}
		b.dbg.live = false
		b.dbg.relStack = stack()
		full := b.B[:cap(b.B)]
		for i := range full {
			full[i] = poison
		}
		b.dbg.mu.Unlock()
		b.onRelease()
		return
	}
	if !b.pooled {
		return
	}
	b.dbg.mu.Lock()
	if !b.dbg.live {
		rel := b.dbg.relStack
		b.dbg.mu.Unlock()
		panic(fmt.Sprintf(
			"bufpool: double Release\n\nfirst Release:\n%s\nsecond Release:\n%s",
			rel, stack()))
	}
	b.dbg.live = false
	b.dbg.poisoned = true
	b.dbg.relStack = stack()
	full := b.B[:cap(b.B)]
	for i := range full {
		full[i] = poison
	}
	b.dbg.mu.Unlock()
	pool.Put(b)
}

// SetView arms a view buffer (NewView) with its next payload. Only the
// buffer's owner calls this, and only while no hand-out is outstanding; under
// debugpool the hand-out is marked live so a double Release panics.
func (b *Buf) SetView(data []byte) {
	b.dbg.mu.Lock()
	b.dbg.live = true
	b.dbg.relStack = nil
	b.dbg.mu.Unlock()
	b.B = data
}
