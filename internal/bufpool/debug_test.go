//go:build debugpool

package bufpool

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) (msg string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg = r.(string)
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
	return ""
}

func TestDebugDoubleReleasePanics(t *testing.T) {
	b := Get(32)
	b.B = append(b.B, 1, 2, 3)
	b.Release()
	msg := mustPanic(t, "double Release", func() { b.Release() })
	// The panic must attribute both the first and the second Release.
	if !strings.Contains(msg, "first Release:") || !strings.Contains(msg, "second Release:") {
		t.Fatalf("double-Release panic missing owner stacks:\n%s", msg)
	}
	if !strings.Contains(msg, "bufpool.(*Buf).Release") {
		t.Fatalf("panic stacks do not mention Release:\n%s", msg)
	}
	// Drain the pooled (now poisoned) buffer so later tests start clean.
	Get(1).Release()
}

func TestDebugWriteAfterReleasePanics(t *testing.T) {
	b := Get(16)
	b.B = append(b.B, 0xAA, 0xBB)
	stale := b.B[:cap(b.B)]
	b.Release()
	stale[0] = 0x42 // write through the alias after Release

	// The corruption is detected when the pool hands the buffer out again.
	// sync.Pool gives no reuse guarantee, so spin until we get the poisoned
	// buffer back; the panic carries the *previous* owner's stacks.
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		for i := 0; i < 1000; i++ {
			Get(1).Release()
		}
	}()
	if msg == "" {
		t.Skip("pool never returned the corrupted buffer")
	}
	if !strings.Contains(msg, "written after Release") {
		t.Fatalf("panic %q does not mention the stale write", msg)
	}
	if !strings.Contains(msg, "previous owner's Get:") ||
		!strings.Contains(msg, "previous owner's Release:") {
		t.Fatalf("corruption panic missing previous owner stacks:\n%s", msg)
	}
}

func TestDebugCleanLifecycle(t *testing.T) {
	for i := 0; i < 100; i++ {
		b := Get(64)
		if len(b.B) != 0 {
			t.Fatalf("Get returned non-empty payload: len=%d", len(b.B))
		}
		b.B = append(b.B, byte(i), byte(i>>8))
		b.Release()
	}
}

func TestDebugWrapUnchecked(t *testing.T) {
	w := Wrap([]byte{1, 2, 3})
	w.Release()
	w.Release() // non-pooled: double Release stays a no-op even under debugpool
	if w.B[0] != 1 {
		t.Fatal("Wrap payload poisoned")
	}
}
