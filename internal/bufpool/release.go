//go:build !debugpool

package bufpool

// DebugEnabled reports whether the runtime ownership checker (the
// `debugpool` build tag) is compiled in.
const DebugEnabled = false

// debugState carries per-buffer ownership bookkeeping under -tags debugpool.
// In release builds it is empty and costs nothing.
type debugState struct{}

// Get returns a buffer with len(B) == 0 and cap(B) >= capHint. The caller
// owns it until Release.
func Get(capHint int) *Buf {
	b := pool.Get().(*Buf)
	if cap(b.B) < capHint {
		b.B = make([]byte, 0, capHint)
	}
	b.B = b.B[:0]
	return b
}

// Release returns the buffer to the pool. It is a no-op on nil or wrapped
// buffers. The caller must not use b (or b.B) afterwards.
func (b *Buf) Release() {
	if b == nil || !b.pooled {
		return
	}
	pool.Put(b)
}
