//go:build !debugpool

package bufpool

// DebugEnabled reports whether the runtime ownership checker (the
// `debugpool` build tag) is compiled in.
const DebugEnabled = false

// debugState carries per-buffer ownership bookkeeping under -tags debugpool.
// In release builds it is empty and costs nothing.
type debugState struct{}

// Get returns a buffer with len(B) == 0 and cap(B) >= capHint. The caller
// owns it until Release.
func Get(capHint int) *Buf {
	b := pool.Get().(*Buf)
	if cap(b.B) < capHint {
		b.B = make([]byte, 0, capHint)
	}
	b.B = b.B[:0]
	return b
}

// Release returns the buffer to the pool. It is a no-op on nil or wrapped
// buffers; on a view buffer it fires the owner's release hook instead. The
// caller must not use b (or b.B) afterwards.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	if b.onRelease != nil {
		b.onRelease()
		return
	}
	if !b.pooled {
		return
	}
	pool.Put(b)
}

// SetView arms a view buffer (NewView) with its next payload. Only the
// buffer's owner calls this, and only while no hand-out is outstanding.
func (b *Buf) SetView(data []byte) { b.B = data }
