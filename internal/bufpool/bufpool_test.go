package bufpool

import "testing"

func TestGetRelease(t *testing.T) {
	b := Get(100)
	if len(b.B) != 0 {
		t.Fatalf("len=%d, want 0", len(b.B))
	}
	if cap(b.B) < 100 {
		t.Fatalf("cap=%d, want >= 100", cap(b.B))
	}
	b.B = append(b.B, 1, 2, 3)
	b.Release()

	// A fresh Get must come back empty even if it reuses the released buffer.
	c := Get(1)
	if len(c.B) != 0 {
		t.Fatalf("reused buffer not reset: len=%d", len(c.B))
	}
	c.Release()
}

func TestWrapReleaseNoop(t *testing.T) {
	data := []byte{1, 2, 3}
	b := Wrap(data)
	b.Release() // must not enter the pool
	if &b.B[0] != &data[0] {
		t.Fatal("Wrap did not alias input")
	}
	var nilBuf *Buf
	nilBuf.Release() // must not panic
}
