package faults_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/faults"
	"github.com/ccp-repro/ccp/internal/proto"
)

// recordingAgent captures delivered messages for assertions.
type recordingAgent struct {
	msgs []proto.Msg
}

func (r *recordingAgent) HandleMessage(m proto.Msg, reply func(proto.Msg) error) {
	r.msgs = append(r.msgs, m)
}

// manualScheduler queues delayed deliveries for explicit firing.
type manualScheduler struct {
	fns []func()
}

func (s *manualScheduler) schedule(d time.Duration, fn func()) { s.fns = append(s.fns, fn) }

func (s *manualScheduler) fireAll() {
	fns := s.fns
	s.fns = nil
	for _, fn := range fns {
		fn()
	}
}

func seqs(msgs []proto.Msg) []uint32 {
	var out []uint32
	for _, m := range msgs {
		out = append(out, m.(*proto.Measurement).Seq)
	}
	return out
}

func sameSeqs(a []uint32, b ...uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAgentInjectorHealthyPassthrough(t *testing.T) {
	inner := &recordingAgent{}
	inj := faults.NewAgentInjector(inner, noSchedule(t))
	m := &proto.Measurement{SID: 1, Seq: 1, Fields: []float64{1}}
	inj.HandleMessage(m, nil)
	if len(inner.msgs) != 1 || inner.msgs[0] != proto.Msg(m) {
		t.Fatal("healthy mode must pass the borrowed message through synchronously, uncloned")
	}
	if st := inj.Stats(); st.Delivered != 1 || st.Held != 0 || st.Delayed != 0 {
		t.Fatalf("stats=%+v", st)
	}
	if inj.Mode() != faults.AgentHealthy {
		t.Fatalf("mode=%v", inj.Mode())
	}
}

func TestAgentInjectorPauseHoldsAndResumeReplaysInOrder(t *testing.T) {
	inner := &recordingAgent{}
	inj := faults.NewAgentInjector(inner, noSchedule(t))
	inj.Pause()
	for seq := uint32(1); seq <= 3; seq++ {
		inj.HandleMessage(&proto.Measurement{SID: 1, Seq: seq}, nil)
	}
	if len(inner.msgs) != 0 {
		t.Fatal("paused agent received messages")
	}
	if st := inj.Stats(); st.Held != 3 {
		t.Fatalf("stats=%+v", st)
	}
	inj.Resume()
	if !sameSeqs(seqs(inner.msgs), 1, 2, 3) {
		t.Fatalf("replay order %v, want 1,2,3", seqs(inner.msgs))
	}
	if st := inj.Stats(); st.Replayed != 3 || st.Delivered != 3 {
		t.Fatalf("stats=%+v", st)
	}
	// Resume in a non-paused mode is a no-op.
	inj.Resume()
	if len(inner.msgs) != 3 {
		t.Fatal("second Resume re-replayed")
	}
}

func TestAgentInjectorSlowClonesAndDelays(t *testing.T) {
	inner := &recordingAgent{}
	sched := &manualScheduler{}
	inj := faults.NewAgentInjector(inner, sched.schedule)
	inj.SlowDown(700 * time.Millisecond)
	m := &proto.Measurement{SID: 1, Seq: 1, Fields: []float64{1}}
	inj.HandleMessage(m, nil)
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 2}, nil)
	if len(inner.msgs) != 0 {
		t.Fatal("slow delivery arrived before the delay elapsed")
	}
	sched.fireAll()
	if !sameSeqs(seqs(inner.msgs), 1, 2) {
		t.Fatalf("delayed delivery order %v, want 1,2", seqs(inner.msgs))
	}
	// The Handler contract only borrows m: a delayed delivery must be a copy.
	if inner.msgs[0] == proto.Msg(m) {
		t.Fatal("slow mode delivered the borrowed message, not a clone")
	}
	if st := inj.Stats(); st.Delayed != 2 || st.Delivered != 2 {
		t.Fatalf("stats=%+v", st)
	}
	// SlowDown(0) restores synchronous passthrough.
	inj.SlowDown(0)
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 3}, nil)
	if !sameSeqs(seqs(inner.msgs), 1, 2, 3) {
		t.Fatalf("post-recovery delivery missing: %v", seqs(inner.msgs))
	}
}

func TestAgentInjectorKillDropsHeldAndInflight(t *testing.T) {
	inner := &recordingAgent{}
	sched := &manualScheduler{}
	inj := faults.NewAgentInjector(inner, sched.schedule)

	inj.Pause()
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 1}, nil)
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 2}, nil)
	inj.Kill()
	if st := inj.Stats(); st.DroppedOnKill != 2 {
		t.Fatalf("stats=%+v, want held messages lost with the process", st)
	}
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 3}, nil)
	if st := inj.Stats(); st.DroppedDead != 1 {
		t.Fatalf("stats=%+v", st)
	}
	if len(inner.msgs) != 0 {
		t.Fatal("dead agent received messages")
	}

	// In-flight slow deliveries scheduled before a Kill die with it too.
	inj.Restart(inner)
	inj.SlowDown(time.Second)
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 4}, nil)
	inj.Kill()
	sched.fireAll()
	if len(inner.msgs) != 0 {
		t.Fatal("delayed delivery survived the process death")
	}
	if st := inj.Stats(); st.Delivered != 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestAgentInjectorRestartSwapsProcess(t *testing.T) {
	old := &recordingAgent{}
	sched := &manualScheduler{}
	inj := faults.NewAgentInjector(old, sched.schedule)

	// A slow delivery in flight across a Restart belongs to the old process
	// generation and must not reach the new one.
	inj.SlowDown(time.Second)
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 1}, nil)
	fresh := &recordingAgent{}
	inj.Restart(fresh)
	sched.fireAll()
	if len(old.msgs) != 0 || len(fresh.msgs) != 0 {
		t.Fatal("pre-restart in-flight delivery crossed the process boundary")
	}
	if inj.Mode() != faults.AgentHealthy {
		t.Fatalf("mode=%v after restart", inj.Mode())
	}
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 2}, nil)
	if len(fresh.msgs) != 1 || len(old.msgs) != 0 {
		t.Fatal("post-restart delivery did not go to the fresh process")
	}
}

func TestAgentInjectorSlowAfterPauseReplaysFirst(t *testing.T) {
	inner := &recordingAgent{}
	sched := &manualScheduler{}
	inj := faults.NewAgentInjector(inner, sched.schedule)
	inj.Pause()
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 1}, nil)
	inj.SlowDown(time.Second) // slow, not stopped: held backlog flushes now
	if !sameSeqs(seqs(inner.msgs), 1) {
		t.Fatalf("held message not replayed on SlowDown: %v", seqs(inner.msgs))
	}
	inj.HandleMessage(&proto.Measurement{SID: 1, Seq: 2}, nil)
	if len(inner.msgs) != 1 {
		t.Fatal("slow-mode delivery was synchronous")
	}
	sched.fireAll()
	if !sameSeqs(seqs(inner.msgs), 1, 2) {
		t.Fatalf("delivery order %v, want 1,2", seqs(inner.msgs))
	}
}
