package faults

import (
	"time"

	"github.com/ccp-repro/ccp/internal/bridge"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
)

// Bridge wraps a simulator IPC bridge with fault injection. Every message
// crossing it is marshalled, run through the injector at the byte level
// (so corruption exercises the real decoders), and — if it still decodes —
// forwarded through the inner bridge's latency model. It offers the same
// Connect entry point as bridge.Bridge, so harnesses can swap it in.
type Bridge struct {
	inner *bridge.Bridge
	sim   *netsim.Sim
	inj   *Injector
}

// NewBridge wraps inner with plan. Randomness comes from the simulator's
// seeded RNG, so runs are deterministic per seed; with a zero plan the
// wrapper consumes no randomness and behaviour is bit-identical to the
// unwrapped bridge.
func NewBridge(sim *netsim.Sim, inner *bridge.Bridge, plan Plan) *Bridge {
	inj := NewInjector(plan, sim.Rand(), func(d time.Duration, fn func()) {
		sim.Schedule(d, fn)
	})
	return &Bridge{inner: inner, sim: sim, inj: inj}
}

// Stats returns the injector's fault counters.
func (b *Bridge) Stats() Stats { return b.inj.Stats() }

// Inner returns the wrapped bridge (for Stop/Start and traffic stats).
func (b *Bridge) Inner() *bridge.Bridge { return b.inner }

// Connect builds a datapath runtime for one flow whose channel to and from
// the agent passes through the fault injector.
//
// Directions with a zero plan skip the wrapper's byte-level round trip: no
// fault can touch the bytes and no delivery outlives the call, and the inner
// bridge already runs the real codec once per message, so re-encoding here
// would only burn allocations. Delivery counters advance exactly as the
// injector's zero-plan path would, keeping fault sweeps' rate-0 rows
// comparable.
func (b *Bridge) Connect(cfg datapath.Config) *datapath.CCP {
	cfg.Clock = b.sim
	var dp *datapath.CCP
	send := b.inner.DatapathSender(func(m proto.Msg) {
		// Agent→datapath: faults apply after the bridge's latency.
		if b.inj.plan.ToDatapath.Zero() {
			b.inj.stats.ToDatapath.Delivered++
			dp.Deliver(m)
			return
		}
		data, err := proto.Marshal(m)
		if err != nil {
			return
		}
		b.inj.Apply(ToDatapath, data, func(raw []byte) {
			msg, err := proto.Unmarshal(raw)
			if err != nil {
				b.inj.NoteDecodeKilled(ToDatapath)
				return
			}
			dp.Deliver(msg)
		})
	})
	cfg.ToAgent = func(m proto.Msg) error {
		// Datapath→agent: faults apply before the bridge's latency; the
		// total delay (jitter + latency) is what the agent observes.
		if b.inj.plan.ToAgent.Zero() {
			b.inj.stats.ToAgent.Delivered++
			return send(m)
		}
		data, err := proto.Marshal(m)
		if err != nil {
			return err
		}
		b.inj.Apply(ToAgent, data, func(raw []byte) {
			msg, err := proto.Unmarshal(raw)
			if err != nil {
				b.inj.NoteDecodeKilled(ToAgent)
				return
			}
			_ = send(msg)
		})
		return nil
	}
	dp = datapath.New(cfg)
	return dp
}
