package faults

import (
	"math/rand"
	"sync"
	"time"

	"github.com/ccp-repro/ccp/internal/bufpool"
	"github.com/ccp-repro/ccp/internal/ipc"
)

// Transport decorates an ipc.Transport with send-side fault injection: the
// real-socket analog of the simulator's fault bridge. Wrap each endpoint
// whose outbound direction should misbehave (wrap both for a fully
// adversarial channel). Recv and Close pass through untouched.
type Transport struct {
	inner ipc.Transport

	mu  sync.Mutex
	inj *Injector
}

// WrapTransport decorates inner, applying plan to every Send. Faults are
// driven by a private RNG seeded with seed, so a fault schedule is
// reproducible independent of goroutine timing; delayed deliveries use real
// timers.
func WrapTransport(inner ipc.Transport, plan DirPlan, seed int64) *Transport {
	t := &Transport{inner: inner}
	t.inj = NewInjector(Plan{ToAgent: plan}, rand.New(rand.NewSource(seed)),
		func(d time.Duration, fn func()) { time.AfterFunc(d, fn) })
	return t
}

// Stats returns the fault counters for this endpoint's send direction.
func (t *Transport) Stats() DirStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inj.Stats().ToAgent
}

// Send applies the fault plan to msg; surviving copies go to the inner
// transport, possibly delayed. Errors from synchronous deliveries are
// returned; errors on delayed copies are dropped — the fate of a datagram
// already handed to a dying kernel socket.
//
// A zero plan forwards msg without copying it (Send only borrows msg for the
// call, so no copy is needed when no delivery can outlive it); non-zero plans
// copy because jittered or reordered deliveries fire after Send returns.
func (t *Transport) Send(msg []byte) error {
	t.mu.Lock()
	if t.inj.plan.ToAgent.Zero() {
		t.inj.stats.ToAgent.Delivered++
		err := t.inner.Send(msg)
		t.mu.Unlock()
		return err
	}
	data := append([]byte(nil), msg...)
	box := &sendErr{}
	t.inj.Apply(ToAgent, data, func(d []byte) {
		box.record(t.inner.Send(d))
	})
	t.mu.Unlock()
	return box.take()
}

// sendErr collects the first error from deliveries that happen before Send
// returns; later (timer-delayed) deliveries are recorded nowhere.
type sendErr struct {
	mu   sync.Mutex
	err  error
	done bool
}

func (b *sendErr) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.done && b.err == nil {
		b.err = err
	}
}

func (b *sendErr) take() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.done = true
	return b.err
}

// Recv passes through to the inner transport.
func (t *Transport) Recv() ([]byte, error) { return t.inner.Recv() }

// RecvFrame passes through to the inner transport's pooled receive path, so
// wrapping a transport in fault injection does not reintroduce a per-message
// receive allocation.
func (t *Transport) RecvFrame() (*bufpool.Buf, error) { return ipc.RecvFrame(t.inner) }

// Close closes the inner transport.
func (t *Transport) Close() error { return t.inner.Close() }
