package faults

import (
	"time"

	"github.com/ccp-repro/ccp/internal/proto"
)

// AgentHandler is the message sink the agent injector wraps — a *core.Agent
// or a sharded *runtime.Runtime (structurally the bridge.Handler contract:
// m is borrowed for the duration of the call).
type AgentHandler interface {
	HandleMessage(m proto.Msg, reply func(proto.Msg) error)
}

// AgentMode is the injected health state of the agent process.
type AgentMode int

// Agent health states.
const (
	// AgentHealthy passes messages through synchronously and untouched; a
	// healthy injector in the path is bit-identical to no injector.
	AgentHealthy AgentMode = iota
	// AgentPaused models a stopped-but-alive process (SIGSTOP, GC pause, a
	// wedged scheduler): messages are held in arrival order and replayed
	// when the agent resumes.
	AgentPaused
	// AgentSlow models an overloaded process: every message is delivered
	// after a fixed processing delay.
	AgentSlow
	// AgentDead models a killed process: messages vanish, as does anything
	// a pause was holding.
	AgentDead
)

func (m AgentMode) String() string {
	switch m {
	case AgentHealthy:
		return "healthy"
	case AgentPaused:
		return "paused"
	case AgentSlow:
		return "slow"
	}
	return "dead"
}

// AgentFaultStats counts the injector's interference.
type AgentFaultStats struct {
	// Delivered counts messages handed to the inner agent (replays and
	// delayed deliveries included).
	Delivered int
	// DroppedDead counts messages that arrived while the agent was dead.
	DroppedDead int
	// Held counts messages captured by a pause; Replayed counts those
	// delivered on resume (the rest died with a Kill, under DroppedOnKill).
	Held          int
	Replayed      int
	DroppedOnKill int
	// Delayed counts messages put through the slow-agent delay.
	Delayed int
}

type heldMsg struct {
	m     proto.Msg
	reply func(proto.Msg) error
}

// AgentInjector wraps the agent with process-level fault modes — pause,
// slowdown, kill/restart — complementing the channel-level Injector: that
// one corrupts the pipe, this one sickens the endpoint. Deliveries held or
// delayed are cloned (the Handler contract only borrows the original), and
// delayed deliveries fire on the supplied schedule function, so under the
// simulator everything stays on the virtual clock and deterministic.
//
// Like Injector, it is not safe for concurrent use: the simulator adapter
// runs on the event loop. Mode changes and message arrivals must come from
// the same scheduling domain.
type AgentInjector struct {
	inner    AgentHandler
	schedule func(time.Duration, func())
	mode     AgentMode
	delay    time.Duration
	held     []heldMsg
	// gen discards in-flight slow deliveries scheduled before a Kill or
	// Restart, the way a dead process loses what was in its input queue.
	gen   uint64
	stats AgentFaultStats
}

// NewAgentInjector wraps inner, scheduling delayed deliveries with schedule
// (the simulator's Schedule in experiments). The injector starts healthy.
func NewAgentInjector(inner AgentHandler, schedule func(time.Duration, func())) *AgentInjector {
	return &AgentInjector{inner: inner, schedule: schedule}
}

// Stats returns a snapshot of the interference counters.
func (a *AgentInjector) Stats() AgentFaultStats { return a.stats }

// Mode returns the current injected health state.
func (a *AgentInjector) Mode() AgentMode { return a.mode }

// HandleMessage implements the agent-handler contract, applying the current
// fault mode.
func (a *AgentInjector) HandleMessage(m proto.Msg, reply func(proto.Msg) error) {
	switch a.mode {
	case AgentHealthy:
		a.stats.Delivered++
		a.inner.HandleMessage(m, reply)
	case AgentPaused:
		a.stats.Held++
		a.held = append(a.held, heldMsg{m: proto.Clone(m), reply: reply})
	case AgentSlow:
		a.stats.Delayed++
		c := proto.Clone(m)
		gen := a.gen
		a.schedule(a.delay, func() {
			if a.gen != gen || a.mode == AgentDead {
				return // the process died with this still queued
			}
			a.stats.Delivered++
			a.inner.HandleMessage(c, reply)
		})
	case AgentDead:
		a.stats.DroppedDead++
	}
}

// Pause freezes the agent: subsequent messages are held until Resume (or
// lost to a Kill).
func (a *AgentInjector) Pause() { a.mode = AgentPaused }

// Resume unfreezes a paused agent, synchronously replaying held messages in
// arrival order. A no-op in other modes.
func (a *AgentInjector) Resume() {
	if a.mode != AgentPaused {
		return
	}
	a.mode = AgentHealthy
	held := a.held
	a.held = nil
	for _, h := range held {
		a.stats.Replayed++
		a.stats.Delivered++
		a.inner.HandleMessage(h.m, h.reply)
	}
}

// SlowDown makes every delivery take d; d <= 0 restores healthy passthrough.
// Held messages from a prior pause are replayed first (slow, not stopped).
func (a *AgentInjector) SlowDown(d time.Duration) {
	if d <= 0 {
		a.Resume()
		a.mode = AgentHealthy
		return
	}
	a.Resume()
	a.mode = AgentSlow
	a.delay = d
}

// Kill drops the agent dead: held and in-flight-delayed messages are lost,
// and new ones vanish until Restart.
func (a *AgentInjector) Kill() {
	a.stats.DroppedOnKill += len(a.held)
	a.held = nil
	a.gen++
	a.mode = AgentDead
}

// Restart brings the agent back as inner — a *fresh* instance when modeling
// a process restart (no flow state survives a real crash), a standby
// promoted by the supervisor, or the same one to model a brief hang the
// supervisor resolved. The injector returns to healthy passthrough.
// Anything a pause was holding dies with the replaced process (replaying it
// into the replacement would deliver another agent's backlog out of order).
func (a *AgentInjector) Restart(inner AgentHandler) {
	a.stats.DroppedOnKill += len(a.held)
	a.held = nil
	a.inner = inner
	a.gen++
	a.mode = AgentHealthy
}
