// Package faults is a seeded, deterministic fault-injection engine for the
// agent↔datapath channel. The paper's §5 safety argument — the datapath
// must survive a misbehaving or dead agent — is only as strong as the
// adversity it has been tested under; this package supplies that adversity
// as a first-class subsystem: per-direction drop, delay-jitter, reorder,
// duplicate, and corrupt faults applied to marshalled wire messages.
//
// Two adapters exist: Bridge wraps the simulator's IPC bridge so whole
// experiments run under faults on the virtual clock (bit-identical across
// runs with the same seed, and bit-identical to the fault-free path when
// the plan is zero), and Transport decorates an ipc.Transport for the real
// socket path.
//
// All fate decisions draw from a single *rand.Rand in a fixed order
// (drop, corrupt, duplicate, then per-copy jitter and reorder), so a run is
// a pure function of the seed and the message sequence.
package faults

import (
	"math/rand"
	"time"
)

// Dir names a channel direction.
type Dir int

// Channel directions.
const (
	// ToAgent is the datapath→agent direction (measurements, urgents).
	ToAgent Dir = iota
	// ToDatapath is the agent→datapath direction (installs, set-cwnd/rate).
	ToDatapath
)

func (d Dir) String() string {
	if d == ToAgent {
		return "to-agent"
	}
	return "to-datapath"
}

// DirPlan is the fault intensity for one direction. All rates are
// probabilities in [0, 1], applied per message.
type DirPlan struct {
	// Drop loses the message entirely.
	Drop float64
	// Corrupt mutates the marshalled bytes (bit flips, truncation, or
	// extension). A corrupted message that no longer decodes is discarded
	// at the receiving end — exactly what a hardened decoder must do.
	Corrupt float64
	// Duplicate delivers the message twice.
	Duplicate float64
	// Reorder holds the message for ReorderDelay so later messages overtake
	// it.
	Reorder float64
	// Jitter adds a uniform extra delay in [0, Jitter) to every delivery.
	Jitter time.Duration
	// ReorderDelay is how long a reordered message is held (default
	// 4×Jitter, or 1ms when Jitter is zero).
	ReorderDelay time.Duration
}

// Zero reports whether the plan injects nothing. A zero plan is guaranteed
// not to consume randomness or alter delivery timing, so behaviour is
// bit-identical to an unwrapped channel.
func (p DirPlan) Zero() bool {
	return p.Drop == 0 && p.Corrupt == 0 && p.Duplicate == 0 &&
		p.Reorder == 0 && p.Jitter == 0
}

func (p DirPlan) reorderDelay() time.Duration {
	if p.ReorderDelay > 0 {
		return p.ReorderDelay
	}
	if p.Jitter > 0 {
		return 4 * p.Jitter
	}
	return time.Millisecond
}

// Plan is a full bidirectional fault plan.
type Plan struct {
	ToAgent    DirPlan
	ToDatapath DirPlan
}

// Uniform builds a plan with every fault kind at rate in both directions
// and the given delay jitter — the chaos-sweep knob.
func Uniform(rate float64, jitter time.Duration) Plan {
	d := DirPlan{Drop: rate, Corrupt: rate, Duplicate: rate, Reorder: rate, Jitter: jitter}
	return Plan{ToAgent: d, ToDatapath: d}
}

// Zero reports whether both directions inject nothing.
func (p Plan) Zero() bool { return p.ToAgent.Zero() && p.ToDatapath.Zero() }

func (p *Plan) dir(d Dir) *DirPlan {
	if d == ToAgent {
		return &p.ToAgent
	}
	return &p.ToDatapath
}

// DirStats counts one direction's injected faults.
type DirStats struct {
	// Delivered counts copies handed to the receiver (duplicates count
	// twice; corrupted-but-delivered copies count too).
	Delivered  int
	Dropped    int
	Corrupted  int
	Duplicated int
	Reordered  int
	// DecodeKilled counts corrupted messages the receiver's decoder
	// rejected (reported by the adapters via NoteDecodeKilled).
	DecodeKilled int
}

// Stats is the per-direction fault accounting.
type Stats struct {
	ToAgent    DirStats
	ToDatapath DirStats
}

// Total sums both directions.
func (s Stats) Total() DirStats {
	a, b := s.ToAgent, s.ToDatapath
	return DirStats{
		Delivered:    a.Delivered + b.Delivered,
		Dropped:      a.Dropped + b.Dropped,
		Corrupted:    a.Corrupted + b.Corrupted,
		Duplicated:   a.Duplicated + b.Duplicated,
		Reordered:    a.Reordered + b.Reordered,
		DecodeKilled: a.DecodeKilled + b.DecodeKilled,
	}
}

func (s *Stats) dir(d Dir) *DirStats {
	if d == ToAgent {
		return &s.ToAgent
	}
	return &s.ToDatapath
}

// Injector decides the fate of messages under a Plan. It is not safe for
// concurrent use; the simulator adapter runs on the event loop, and the
// transport adapter serializes access itself.
type Injector struct {
	plan     Plan
	rng      *rand.Rand
	schedule func(time.Duration, func())
	stats    Stats
}

// NewInjector builds an injector drawing randomness from rng and scheduling
// delayed deliveries with schedule (the simulator's Schedule in experiments,
// a time.AfterFunc shim over real transports).
func NewInjector(plan Plan, rng *rand.Rand, schedule func(time.Duration, func())) *Injector {
	return &Injector{plan: plan, rng: rng, schedule: schedule}
}

// Stats returns a snapshot of the fault counters.
func (inj *Injector) Stats() Stats { return inj.stats }

// NoteDecodeKilled records that a corrupted message failed to decode at the
// receiver and was discarded.
func (inj *Injector) NoteDecodeKilled(dir Dir) { inj.stats.dir(dir).DecodeKilled++ }

// Apply decides the fate of one marshalled message travelling in dir and
// invokes deliver zero, one, or two times — possibly later, via schedule.
// deliver owns the slice it receives. A zero plan delivers synchronously
// without consuming randomness.
func (inj *Injector) Apply(dir Dir, data []byte, deliver func([]byte)) {
	p := inj.plan.dir(dir)
	st := inj.stats.dir(dir)
	if p.Zero() {
		st.Delivered++
		deliver(data)
		return
	}
	if inj.rng.Float64() < p.Drop {
		st.Dropped++
		return
	}
	if inj.rng.Float64() < p.Corrupt {
		data = corrupt(inj.rng, data)
		st.Corrupted++
	}
	copies := 1
	if inj.rng.Float64() < p.Duplicate {
		copies = 2
		st.Duplicated++
	}
	for c := 0; c < copies; c++ {
		var delay time.Duration
		if p.Jitter > 0 {
			delay += time.Duration(inj.rng.Int63n(int64(p.Jitter)))
		}
		if inj.rng.Float64() < p.Reorder {
			delay += p.reorderDelay()
			st.Reordered++
		}
		st.Delivered++
		if delay <= 0 {
			deliver(data)
			continue
		}
		msg := data
		inj.schedule(delay, func() { deliver(msg) })
	}
}

// corrupt returns a mutated copy of data: bit flips, truncation, or random
// extension, chosen and positioned by rng. The input is never modified.
func corrupt(rng *rand.Rand, data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	switch rng.Intn(3) {
	case 0: // flip 1–4 bytes
		if len(out) == 0 {
			return append(out, byte(rng.Intn(256)))
		}
		for n := 1 + rng.Intn(4); n > 0; n-- {
			out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
		}
	case 1: // truncate
		out = out[:rng.Intn(len(out)+1)]
	default: // extend with junk
		for n := 1 + rng.Intn(8); n > 0; n-- {
			out = append(out, byte(rng.Intn(256)))
		}
	}
	return out
}
