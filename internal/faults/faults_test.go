package faults_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/bridge"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/faults"
	"github.com/ccp-repro/ccp/internal/ipc"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// noSchedule fails the test if the injector tries to delay a delivery.
func noSchedule(t *testing.T) func(time.Duration, func()) {
	return func(d time.Duration, fn func()) {
		t.Fatalf("unexpected delayed delivery (%v)", d)
	}
}

func TestZeroPlanConsumesNoRandomness(t *testing.T) {
	const seed = 7
	rng := rand.New(rand.NewSource(seed))
	inj := faults.NewInjector(faults.Plan{}, rng, noSchedule(t))
	var got [][]byte
	for i := 0; i < 10; i++ {
		inj.Apply(faults.ToAgent, []byte{byte(i)}, func(d []byte) { got = append(got, d) })
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d of 10", len(got))
	}
	for i, d := range got {
		if len(d) != 1 || d[0] != byte(i) {
			t.Fatalf("message %d reordered or mutated: %v", i, d)
		}
	}
	// The RNG must be untouched: its next draw matches a fresh one.
	if rng.Int63() != rand.New(rand.NewSource(seed)).Int63() {
		t.Fatal("zero plan consumed randomness")
	}
	st := inj.Stats()
	if st.ToAgent.Delivered != 10 || st.ToAgent.Dropped != 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestDropAll(t *testing.T) {
	plan := faults.Plan{ToDatapath: faults.DirPlan{Drop: 1}}
	inj := faults.NewInjector(plan, rand.New(rand.NewSource(1)), noSchedule(t))
	for i := 0; i < 5; i++ {
		inj.Apply(faults.ToDatapath, []byte{1}, func([]byte) { t.Fatal("delivered") })
	}
	if st := inj.Stats().ToDatapath; st.Dropped != 5 || st.Delivered != 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestDuplicateAll(t *testing.T) {
	plan := faults.Plan{ToAgent: faults.DirPlan{Duplicate: 1}}
	inj := faults.NewInjector(plan, rand.New(rand.NewSource(1)), noSchedule(t))
	n := 0
	for i := 0; i < 4; i++ {
		inj.Apply(faults.ToAgent, []byte{byte(i)}, func([]byte) { n++ })
	}
	if n != 8 {
		t.Fatalf("delivered %d copies, want 8", n)
	}
	if st := inj.Stats().ToAgent; st.Duplicated != 4 || st.Delivered != 8 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestCorruptMutatesCopyNotInput(t *testing.T) {
	plan := faults.Plan{ToAgent: faults.DirPlan{Corrupt: 1}}
	inj := faults.NewInjector(plan, rand.New(rand.NewSource(3)), noSchedule(t))
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	mutated := 0
	for i := 0; i < 50; i++ {
		in := append([]byte(nil), orig...)
		inj.Apply(faults.ToAgent, in, func(d []byte) {
			if !bytes.Equal(d, orig) {
				mutated++
			}
		})
		if !bytes.Equal(in, orig) {
			t.Fatal("input slice was modified in place")
		}
	}
	if mutated == 0 {
		t.Fatal("50 corruptions, zero mutations observed")
	}
	if st := inj.Stats().ToAgent; st.Corrupted != 50 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestReorderHoldsDelivery(t *testing.T) {
	plan := faults.Plan{ToAgent: faults.DirPlan{Reorder: 1}}
	var delay time.Duration
	var held func()
	inj := faults.NewInjector(plan, rand.New(rand.NewSource(1)),
		func(d time.Duration, fn func()) { delay, held = d, fn })
	delivered := 0
	inj.Apply(faults.ToAgent, []byte{9}, func([]byte) { delivered++ })
	if delivered != 0 {
		t.Fatal("reordered message delivered synchronously")
	}
	if delay != time.Millisecond { // default hold with zero jitter
		t.Fatalf("hold=%v, want 1ms", delay)
	}
	held()
	if delivered != 1 {
		t.Fatal("held message never delivered")
	}
	if st := inj.Stats().ToAgent; st.Reordered != 1 || st.Delivered != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

// fateLog runs a fixed message sequence through an injector and records every
// delivery (payload + delay), executing delayed deliveries immediately.
func fateLog(seed int64, plan faults.Plan) ([]string, faults.Stats) {
	var log []string
	var pending time.Duration
	inj := faults.NewInjector(plan, rand.New(rand.NewSource(seed)),
		func(d time.Duration, fn func()) { pending = d; fn(); pending = 0 })
	for i := 0; i < 200; i++ {
		dir := faults.ToAgent
		if i%2 == 1 {
			dir = faults.ToDatapath
		}
		inj.Apply(dir, []byte{byte(i), byte(i >> 4)}, func(d []byte) {
			log = append(log, string(d)+"@"+pending.String())
		})
	}
	return log, inj.Stats()
}

func TestDeterministicPerSeed(t *testing.T) {
	plan := faults.Uniform(0.3, 2*time.Millisecond)
	log1, st1 := fateLog(42, plan)
	log2, st2 := fateLog(42, plan)
	if !reflect.DeepEqual(log1, log2) {
		t.Fatal("same seed produced different fates")
	}
	if st1 != st2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", st1, st2)
	}
	log3, _ := fateLog(43, plan)
	if reflect.DeepEqual(log1, log3) {
		t.Fatal("different seeds produced identical fates (suspicious)")
	}
}

// channelRun is the observable outcome of one simulated flow; fault-free
// wrapped runs must reproduce the plain bridge's outcome bit for bit.
type channelRun struct {
	agent core.AgentStats
	dp    datapath.Stats
	cwnd  int
	fault faults.Stats
}

// runChannel drives one CCP flow for two seconds through the plain bridge
// (plan == nil) or through a fault bridge with the given plan.
func runChannel(t *testing.T, plan *faults.Plan) channelRun {
	return runChannelCfg(t, plan, datapath.Config{SID: 1, Alg: "reno"})
}

// runChannelCfg is runChannel with explicit datapath configuration (for the
// batched-IPC variants).
func runChannelCfg(t *testing.T, plan *faults.Plan, cfg datapath.Config) channelRun {
	t.Helper()
	sim := netsim.New(1)
	reg := algorithms.NewRegistry()
	agent, err := core.NewAgent(core.AgentConfig{Registry: reg, DefaultAlg: "reno"})
	if err != nil {
		t.Fatal(err)
	}
	br := bridge.New(sim, agent, 50*time.Microsecond)

	var dp *datapath.CCP
	var fb *faults.Bridge
	if plan == nil {
		dp = br.Connect(cfg)
	} else {
		fb = faults.NewBridge(sim, br, *plan)
		dp = fb.Connect(cfg)
	}

	fwd, rev := netsim.NewDemux(), netsim.NewDemux()
	path := netsim.NewPath(sim, netsim.PathConfig{
		Bottleneck: netsim.LinkConfig{RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20},
	}, fwd, rev)
	flow := tcp.NewFlow(sim, 1, path, fwd, rev, dp, tcp.Options{})
	flow.Conn.Start()
	sim.Run(2 * time.Second)

	out := channelRun{agent: agent.Stats(), dp: dp.Stats(), cwnd: flow.Conn.Cwnd()}
	if fb != nil {
		out.fault = fb.Stats()
	}
	return out
}

func TestBridgeZeroPlanBitIdentical(t *testing.T) {
	plain := runChannel(t, nil)
	zero := runChannel(t, &faults.Plan{})
	if zero.fault.Total().Dropped != 0 || zero.fault.Total().Corrupted != 0 {
		t.Fatalf("zero plan injected faults: %+v", zero.fault)
	}
	zero.fault = faults.Stats{}
	plain.fault = faults.Stats{}
	if !reflect.DeepEqual(plain, zero) {
		t.Fatalf("zero-plan run diverged from plain bridge:\nplain=%+v\nzero =%+v", plain, zero)
	}
	if plain.agent.FlowsCreated != 1 || plain.dp.SetCwndRecvd == 0 {
		t.Fatalf("sanity: flow never ran: %+v", plain)
	}
}

func TestBridgeDropStarvesAgent(t *testing.T) {
	plan := faults.Plan{ToAgent: faults.DirPlan{Drop: 1}}
	run := runChannel(t, &plan)
	if run.agent.FlowsCreated != 0 {
		t.Fatalf("agent saw %d creates through a fully lossy channel", run.agent.FlowsCreated)
	}
	if run.fault.ToAgent.Dropped == 0 {
		t.Fatalf("no drops recorded: %+v", run.fault)
	}
}

func TestBridgeCorruptionIsDecodeKilled(t *testing.T) {
	plan := faults.Uniform(0, 0)
	plan.ToAgent.Corrupt = 1
	plan.ToDatapath.Corrupt = 1
	run := runChannel(t, &plan)
	tot := run.fault.Total()
	if tot.Corrupted == 0 {
		t.Fatalf("no corruptions: %+v", run.fault)
	}
	if tot.DecodeKilled == 0 {
		t.Fatalf("hardened decoders rejected nothing out of %d corruptions", tot.Corrupted)
	}
	// The flow must survive regardless: corruption never crashes either end.
	if run.cwnd <= 0 {
		t.Fatalf("cwnd=%d", run.cwnd)
	}
}

func TestBridgeBatchedReportsPassThrough(t *testing.T) {
	// Batched report frames must cross the fault bridge like any other
	// message: the datapath coalesces, the injector sees whole frames, and
	// the agent unpacks — no report is lost on a fault-free channel.
	cfg := datapath.Config{SID: 1, Alg: "reno", BatchInterval: 50 * time.Millisecond}
	run := runChannelCfg(t, &faults.Plan{}, cfg)
	if run.dp.BatchesSent == 0 {
		t.Fatalf("datapath never batched: %+v", run.dp)
	}
	if run.agent.Batches == 0 {
		t.Fatalf("agent never unpacked a batch: %+v", run.agent)
	}
	if got, want := run.agent.Measurements, run.dp.ReportsSent; got != want {
		t.Fatalf("agent processed %d reports, datapath sent %d", got, want)
	}
	if run.dp.SetCwndRecvd == 0 {
		t.Fatalf("control loop never closed: %+v", run.dp)
	}
}

func TestBridgeBatchedChannelSurvivesCorruption(t *testing.T) {
	// Corrupting batch frames kills whole frames at the decoder, never either
	// endpoint.
	plan := faults.Uniform(0, 0)
	plan.ToAgent.Corrupt = 0.3
	cfg := datapath.Config{SID: 1, Alg: "reno", BatchInterval: 50 * time.Millisecond}
	run := runChannelCfg(t, &plan, cfg)
	if run.fault.ToAgent.Corrupted == 0 {
		t.Fatalf("no corruptions: %+v", run.fault)
	}
	if run.cwnd <= 0 {
		t.Fatalf("cwnd=%d", run.cwnd)
	}
	if run.agent.Measurements > run.dp.ReportsSent {
		t.Fatalf("agent saw more reports (%d) than sent (%d)", run.agent.Measurements, run.dp.ReportsSent)
	}
}

func TestTransportWrapperDeterministicDrops(t *testing.T) {
	recvCount := func(seed int64) (int, faults.DirStats) {
		a, b := ipc.ChanPair(256)
		wa := faults.WrapTransport(a, faults.DirPlan{Drop: 0.5}, seed)
		for i := 0; i < 100; i++ {
			if err := wa.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		wa.Close()
		n := 0
		for {
			if _, err := b.Recv(); err != nil {
				break
			}
			n++
		}
		return n, wa.Stats()
	}
	n1, st1 := recvCount(11)
	n2, st2 := recvCount(11)
	if n1 != n2 || st1 != st2 {
		t.Fatalf("same seed diverged: %d/%+v vs %d/%+v", n1, st1, n2, st2)
	}
	if st1.Dropped+st1.Delivered != 100 {
		t.Fatalf("accounting: %+v", st1)
	}
	if n1 != st1.Delivered {
		t.Fatalf("received %d but delivered %d", n1, st1.Delivered)
	}
	if n1 == 0 || n1 == 100 {
		t.Fatalf("drop rate 0.5 delivered %d of 100", n1)
	}
}

func TestTransportWrapperZeroPlanPassthrough(t *testing.T) {
	a, b := ipc.ChanPair(16)
	wa := faults.WrapTransport(a, faults.DirPlan{}, 1)
	if err := wa.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil || string(got) != "hello" {
		t.Fatalf("got %q, %v", got, err)
	}
	wa.Close()
	if err := wa.Send([]byte("x")); err == nil {
		t.Fatal("send on closed transport succeeded")
	}
}
