package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// BBR is a simplified BBR built exactly the way the paper's §2.1 proposes:
// once steady state is reached, the agent installs the pulse control
// program
//
//	Rate(1.25*r).WaitRtts(1.0).Report().
//	Rate(0.75*r).WaitRtts(1.0).Report().
//	Rate(r).WaitRtts(6.0).Report()
//
// so the datapath itself sequences the probing gains and aligns
// measurement windows with them, while the agent updates the bottleneck
// bandwidth estimate from the delivery-rate reports and reinstalls the
// program when the estimate moves. A Cwnd cap of 2×BDP bounds the inflight
// data, as in BBR proper.
type BBR struct {
	mss float64

	state      bbrState
	btlBw      float64 // bytes/sec, windowed max of delivery-rate reports
	bwWindow   []float64
	rtProp     float64 // seconds, min RTT
	fullBwCnt  int
	lastFullBw float64
	installed  float64 // rate baked into the installed pulse program
}

type bbrState uint8

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
)

const (
	bbrHighGain  = 2.885
	bbrBwWindowN = 10 // reports; pulses report ~3x per 8 RTTs
	bbrReinstall = 1.05
)

// NewBBR returns a CCP BBR instance.
func NewBBR() *BBR { return &BBR{} }

// Name implements core.Alg.
func (b *BBR) Name() string { return "bbr" }

// Init implements core.Alg: start in STARTUP, probing with high gain once
// per RTT using the default EWMA measurement.
func (b *BBR) Init(f *core.Flow) {
	b.mss = float64(f.Info.MSS)
	b.state = bbrStartup
	b.rtProp = 0
	b.btlBw = 0
	// Startup program: rate updates come from the agent per report, so the
	// default EWMA/1-RTT reporting program suffices; seed a generous rate.
	initRate := float64(f.Info.InitCwnd) * 10
	prog := lang.NewProgram().
		MeasureEWMA().
		Rate(lang.C(initRate)).
		Cwnd(lang.C(float64(f.Info.InitCwnd) * 4)).
		WaitRtts(1).
		Report().
		MustBuild()
	f.Install(prog)
	b.installed = initRate
}

// OnMeasurement implements core.Alg.
func (b *BBR) OnMeasurement(f *core.Flow, m core.Measurement) {
	rcv := m.GetOr("rcv_rate", 0)
	rtt := m.GetOr("last_rtt", m.GetOr("rtt", 0))
	if rtt > 0 && (b.rtProp == 0 || rtt < b.rtProp) {
		b.rtProp = rtt
	}
	if rcv > 0 {
		b.bwWindow = append(b.bwWindow, rcv)
		if len(b.bwWindow) > bbrBwWindowN {
			b.bwWindow = b.bwWindow[1:]
		}
		b.btlBw = 0
		for _, v := range b.bwWindow {
			if v > b.btlBw {
				b.btlBw = v
			}
		}
	}
	if b.btlBw == 0 || b.rtProp == 0 {
		return
	}

	switch b.state {
	case bbrStartup:
		// Pace at high gain; exit when bandwidth stops growing 25%/round.
		if b.btlBw > b.lastFullBw*1.25 {
			b.lastFullBw = b.btlBw
			b.fullBwCnt = 0
		} else {
			b.fullBwCnt++
		}
		if b.fullBwCnt >= 3 {
			b.state = bbrDrain
			b.setSteadyProgram(f, b.btlBw, 1/bbrHighGain)
			return
		}
		b.setStartupRate(f, b.btlBw*bbrHighGain)
	case bbrDrain:
		// One report at drain gain has elapsed; enter steady pulses.
		b.state = bbrProbeBW
		b.setSteadyProgram(f, b.btlBw, 1)
	case bbrProbeBW:
		// Reinstall the pulse program only when the estimate moved enough.
		if b.btlBw > b.installed*bbrReinstall || b.btlBw < b.installed/bbrReinstall {
			b.setSteadyProgram(f, b.btlBw, 1)
		}
	}
}

func (b *BBR) setStartupRate(f *core.Flow, rate float64) {
	cap := b.cwndCap()
	prog := lang.NewProgram().
		MeasureEWMA().
		Rate(lang.C(rate)).
		Cwnd(lang.C(cap)).
		WaitRtts(1).
		Report().
		MustBuild()
	f.Install(prog)
	b.installed = rate / bbrHighGain
}

// setSteadyProgram installs the §2.1 pulse program with r = gain×btlBw.
func (b *BBR) setSteadyProgram(f *core.Flow, btlBw, gain float64) {
	r := btlBw * gain
	cap := b.cwndCap()
	prog := lang.NewProgram().
		MeasureEWMA().
		Cwnd(lang.C(cap)).
		Rate(lang.C(1.25 * r)).WaitRtts(1).Report().
		Rate(lang.C(0.75 * r)).WaitRtts(1).Report().
		Rate(lang.C(r)).WaitRtts(6).Report().
		MustBuild()
	f.Install(prog)
	b.installed = r
}

// cwndCap bounds inflight at 2×BDP.
func (b *BBR) cwndCap() float64 {
	bdp := b.btlBw * b.rtProp
	cap := 2 * bdp
	if cap < 4*b.mss {
		cap = 4 * b.mss
	}
	return cap
}

// OnUrgent implements core.Alg: BBR does not react to isolated losses; a
// timeout conservatively restarts the search.
func (b *BBR) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	if u.Kind == proto.UrgentTimeout {
		b.state = bbrStartup
		b.fullBwCnt = 0
		b.lastFullBw = 0
		b.bwWindow = b.bwWindow[:0]
		if b.btlBw > 0 {
			b.setStartupRate(f, b.btlBw)
		}
	}
}
