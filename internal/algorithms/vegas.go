package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// This file implements TCP Vegas both ways the paper's §2.4 describes,
// deliberately mirroring its two code listings:
//
//   - VegasVector receives a vector of per-packet RTTs and runs the queue
//     estimate per packet in user space (the "vector of measurements"
//     listing).
//   - VegasFold pushes the same per-packet logic into the datapath as a
//     fold function whose registers are the minimum RTT and the window
//     delta (the "fold function over measurements" listing).
//
// The ablation experiment (abl-fold) checks that the two produce equivalent
// window behaviour while shipping very different measurement volumes.

const (
	vegasAlpha = 2
	vegasBeta  = 4
)

// VegasVector is the §2.4 vector-style Vegas.
type VegasVector struct {
	mss     float64
	cwnd    float64 // bytes
	baseRTT float64 // seconds
}

// NewVegasVector returns a vector-style Vegas instance.
func NewVegasVector() *VegasVector { return &VegasVector{} }

// Name implements core.Alg.
func (v *VegasVector) Name() string { return "vegas-vector" }

// Init implements core.Alg.
func (v *VegasVector) Init(f *core.Flow) {
	v.mss = float64(f.Info.MSS)
	v.cwnd = float64(f.Info.InitCwnd)
	v.baseRTT = 1e9
	v.install(f)
}

func (v *VegasVector) install(f *core.Flow) {
	// Measure(rtt). Cwnd(v.cwnd).WaitRtts(1).Report() — as in the paper.
	prog := lang.NewProgram().
		MeasureVector(lang.FieldRTT).
		Cwnd(lang.C(v.cwnd)).
		WaitRtts(1).
		Report().
		MustBuild()
	f.Install(prog)
}

// OnMeasurement implements core.Alg: the paper's per-packet loop,
// `for p := range ps { ... }`.
func (v *VegasVector) OnMeasurement(f *core.Flow, m core.Measurement) {
	for _, p := range m.Samples {
		rtt := p.Get(lang.FieldRTT)
		if rtt <= 0 {
			continue
		}
		if rtt < v.baseRTT {
			v.baseRTT = rtt
		}
		inQ := (rtt - v.baseRTT) * (v.cwnd / v.mss) / v.baseRTT
		if inQ < vegasAlpha {
			v.cwnd += v.mss
		} else if inQ > vegasBeta {
			v.cwnd -= v.mss
		}
	}
	v.cwnd = maxF(v.cwnd, 2*v.mss)
	v.install(f)
}

// OnUrgent implements core.Alg.
func (v *VegasVector) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	switch u.Kind {
	case proto.UrgentDupAck, proto.UrgentECN:
		v.cwnd = maxF(v.cwnd/2, 2*v.mss)
	case proto.UrgentTimeout:
		v.cwnd = maxF(v.mss, v.mss)
	}
	v.install(f)
}

// VegasFold is the §2.4 fold-style Vegas.
type VegasFold struct {
	mss     float64
	cwnd    float64
	baseRTT float64
}

// NewVegasFold returns a fold-style Vegas instance.
func NewVegasFold() *VegasFold { return &VegasFold{} }

// Name implements core.Alg.
func (v *VegasFold) Name() string { return "vegas" }

// Init implements core.Alg.
func (v *VegasFold) Init(f *core.Flow) {
	v.mss = float64(f.Info.MSS)
	v.cwnd = float64(f.Info.InitCwnd)
	v.baseRTT = 1e9
	v.install(f)
}

// vegasFoldSpec is the paper's VegasState fold: base_rtt carries the min
// RTT, delta accumulates ±1 per packet from the queue estimate. The paper's
// foldFn closes over v.cwnd; expressions reference the datapath's live
// "cwnd" variable instead, which tracks it between reports.
func (v *VegasFold) foldSpec() *lang.FoldSpec {
	inQ := lang.Div(
		lang.Mul(lang.Sub(lang.V("pkt.rtt"), lang.V("base_rtt")),
			lang.Div(lang.V("cwnd"), lang.V("mss"))),
		lang.Max(lang.V("base_rtt"), lang.C(1e-9)))
	return &lang.FoldSpec{
		Regs: []lang.RegDef{
			{Name: "base_rtt", Init: v.baseRTT},
			{Name: "delta", Init: 0},
		},
		Updates: []lang.Assign{
			{Dst: "base_rtt", E: lang.Min(lang.V("base_rtt"), lang.Max(lang.V("pkt.rtt"), lang.C(1e-9)))},
			{Dst: "delta", E: lang.Ite(lang.Lt(inQ, lang.C(vegasAlpha)),
				lang.Add(lang.V("delta"), lang.C(1)),
				lang.Ite(lang.Gt(inQ, lang.C(vegasBeta)),
					lang.Sub(lang.V("delta"), lang.C(1)),
					lang.V("delta")))},
		},
	}
}

func (v *VegasFold) install(f *core.Flow) {
	// v.Install(Measure(initState, foldFn).Cwnd(v.cwnd).WaitRtts(1).Report())
	prog := lang.NewProgram().
		MeasureFold(v.foldSpec()).
		Cwnd(lang.C(v.cwnd)).
		WaitRtts(1).
		Report().
		MustBuild()
	f.Install(prog)
}

// OnMeasurement implements core.Alg: the paper's two-line handler —
// cwnd += delta; baseRtt = s.baseRtt.
func (v *VegasFold) OnMeasurement(f *core.Flow, m core.Measurement) {
	delta := m.GetOr("delta", 0)
	if base, ok := m.Get("base_rtt"); ok && base > 0 && base < v.baseRTT {
		v.baseRTT = base
	}
	v.cwnd = maxF(v.cwnd+delta*v.mss, 2*v.mss)
	v.install(f)
}

// OnUrgent implements core.Alg.
func (v *VegasFold) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	switch u.Kind {
	case proto.UrgentDupAck, proto.UrgentECN:
		v.cwnd = maxF(v.cwnd/2, 2*v.mss)
	case proto.UrgentTimeout:
		v.cwnd = v.mss
	}
	v.install(f)
}
