// Package algorithms implements congestion control algorithms against the
// CCP API (internal/core) — the user-space side of the paper's architecture.
// It covers the rows of Table 1: window-based schemes (Reno, NewReno, Cubic,
// Vegas, DCTCP), rate-based schemes (Timely, PCC), the BBR pulse pattern
// from §2.1, an XCP-style router-feedback scheme, and a minimal AIMD used by
// the examples.
//
// The implementations deliberately exercise every interaction mode the
// paper describes: fold functions and measurement vectors (§2.4, both Vegas
// variants), control programs with in-datapath rate pulses (BBR), and plain
// per-RTT commands from the agent (Reno, Timely).
package algorithms

import (
	"sort"

	"github.com/ccp-repro/ccp/internal/core"
)

// Info describes an algorithm for the Table 1 reproduction: the measurement
// primitives it consumes and the control knobs it drives.
type Info struct {
	Name         string
	Measurements []string // Table 1 "Measurement" column
	Controls     []string // Table 1 "Control Knobs" column
	Batching     string   // how it batches: "ewma", "fold", "vector"
	Factory      core.AlgFactory
}

// All returns every bundled algorithm's description, in Table 1 order where
// applicable.
func All() []Info {
	return []Info{
		{
			Name:         "reno",
			Measurements: []string{"ACKs"},
			Controls:     []string{"CWND"},
			Batching:     "ewma",
			Factory:      func() core.Alg { return NewReno() },
		},
		{
			Name:         "newreno",
			Measurements: []string{"ACKs", "Loss"},
			Controls:     []string{"CWND"},
			Batching:     "ewma",
			Factory:      func() core.Alg { return NewNewReno() },
		},
		{
			Name:         "vegas",
			Measurements: []string{"RTT"},
			Controls:     []string{"CWND"},
			Batching:     "fold",
			Factory:      func() core.Alg { return NewVegasFold() },
		},
		{
			Name:         "vegas-vector",
			Measurements: []string{"RTT"},
			Controls:     []string{"CWND"},
			Batching:     "vector",
			Factory:      func() core.Alg { return NewVegasVector() },
		},
		{
			Name:         "xcp",
			Measurements: []string{"Packet header"},
			Controls:     []string{"Rate"},
			Batching:     "fold",
			Factory:      func() core.Alg { return NewXCP() },
		},
		{
			Name:         "cubic",
			Measurements: []string{"Loss", "ACKs"},
			Controls:     []string{"CWND"},
			Batching:     "fold",
			Factory:      func() core.Alg { return NewCubic() },
		},
		{
			Name:         "dctcp",
			Measurements: []string{"ECN", "ACKs", "Loss"},
			Controls:     []string{"CWND"},
			Batching:     "fold",
			Factory:      func() core.Alg { return NewDCTCP() },
		},
		{
			Name:         "timely",
			Measurements: []string{"RTT"},
			Controls:     []string{"Rate"},
			Batching:     "ewma",
			Factory:      func() core.Alg { return NewTimely() },
		},
		{
			Name:         "pcc",
			Measurements: []string{"Loss", "Sending Rate", "Receiving Rate"},
			Controls:     []string{"Rate"},
			Batching:     "ewma",
			Factory:      func() core.Alg { return NewPCC() },
		},
		{
			Name:         "sprout",
			Measurements: []string{"Sending Rate", "Receiving Rate", "RTT"},
			Controls:     []string{"Rate"},
			Batching:     "ewma",
			Factory:      func() core.Alg { return NewSprout() },
		},
		{
			Name:         "bbr",
			Measurements: []string{"Sending Rate", "Receiving Rate", "RTT"},
			Controls:     []string{"Rate (pulses)", "CWND cap"},
			Batching:     "ewma",
			Factory:      func() core.Alg { return NewBBR() },
		},
		{
			Name:         "aimd",
			Measurements: []string{"ACKs"},
			Controls:     []string{"CWND"},
			Batching:     "ewma",
			Factory:      func() core.Alg { return NewAIMD(1, 0.5) },
		},
		{
			Name:         "aimd-dp",
			Measurements: []string{"ACKs", "Loss"},
			Controls:     []string{"CWND (synthesized in-datapath)"},
			Batching:     "fold",
			Factory:      func() core.Alg { return NewSynthesizedAIMD(1, 0.5) },
		},
	}
}

// Names returns every bundled algorithm's name, sorted. Listings (CLI
// output, logs, experiment headers) use this deterministic order; Table 1
// reproduction order lives in All.
func Names() []string {
	infos := All()
	out := make([]string, 0, len(infos))
	for _, info := range infos {
		out = append(out, info.Name)
	}
	sort.Strings(out)
	return out
}

// Register adds every bundled algorithm to reg.
func Register(reg *core.Registry) {
	for _, info := range All() {
		reg.Register(info.Name, info.Factory)
	}
}

// NewRegistry returns a registry with every bundled algorithm registered.
func NewRegistry() *core.Registry {
	reg := core.NewRegistry()
	Register(reg)
	return reg
}
