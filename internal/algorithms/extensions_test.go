package algorithms_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/datapath"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/proto"
	"github.com/ccp-repro/ccp/internal/tcp"
	"github.com/ccp-repro/ccp/internal/trace"
)

// §5 synthesis: the in-datapath AIMD must work with the agent completely
// out of the control loop.
func TestSynthesizedAIMDRunsAutonomously(t *testing.T) {
	net := harness.New(harness.Config{Link: wan16()})
	f := net.AddCCPFlow(1, "aimd-dp", tcp.Options{})
	f.Conn.Start()
	net.Run(20 * time.Second)
	if u := net.Utilization(20 * time.Second); u < 0.7 {
		t.Fatalf("synthesized aimd utilization %.3f", u)
	}
	// Exactly one Install; no SetCwnd/SetRate commands ever.
	st := f.DP.Stats()
	if st.InstallsRecvd != 1 {
		t.Fatalf("installs=%d, want 1 (install-once synthesis)", st.InstallsRecvd)
	}
	if st.SetCwndRecvd != 0 || st.SetRateRecvd != 0 {
		t.Fatalf("agent issued direct commands: %+v", st)
	}
}

// §5 synthesis under hostile IPC: with one-way IPC latency far above the
// RTT, the synthesized controller keeps the delay bounded where the
// off-datapath AIMD (reacting a full IPC round-trip late) cannot.
func TestSynthesizedAIMDImmuneToIPCLatency(t *testing.T) {
	run := func(alg string) (float64, int) {
		// Shallow (1 BDP) buffer at a low RTT: loss reaction latency is
		// what separates the two.
		link := netsim.LinkConfig{RateBps: 2.5e9, Delay: 100 * time.Microsecond, QueueBytes: 62500}
		net := harness.New(harness.Config{
			Link:       link,
			IPCLatency: 2 * time.Millisecond, // 10x the RTT
		})
		f := net.AddCCPFlow(1, alg, tcp.Options{MinRTO: 5 * time.Millisecond})
		f.Conn.Start()
		dur := 2 * time.Second
		net.Run(dur)
		return net.Utilization(dur), net.Path.Forward.Stats().DroppedOverflow
	}
	utilDP, dropsDP := run("aimd-dp")
	utilAgent, dropsAgent := run("aimd")
	if utilDP < 0.7 {
		t.Fatalf("synthesized utilization %.3f under slow IPC", utilDP)
	}
	// The off-datapath variant learns about every loss ~10 RTTs late and
	// keeps overshooting; the synthesized one reacts within one RTT.
	if dropsDP >= dropsAgent {
		t.Fatalf("synthesized drops %d not below off-datapath %d (util %.2f vs %.2f)",
			dropsDP, dropsAgent, utilDP, utilAgent)
	}
}

// §3 future work: smooth cwnd transitions cut the burst (queue spike) a
// single large window jump otherwise causes.
func TestSmoothCwndReducesBursts(t *testing.T) {
	run := func(smooth bool) int {
		link := netsim.LinkConfig{RateBps: 48e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 22}
		reg := core.NewRegistry()
		reg.Register("hold", func() core.Alg { return holdAlg{} })
		net := harness.New(harness.Config{Link: link, Registry: reg, DefaultAlg: "hold"})
		f := net.AddCCPFlowCfg(1, "hold", tcp.Options{}, datapath.Config{SmoothCwnd: smooth})
		f.Conn.Start()
		net.Run(time.Second)
		pre := net.Path.Forward.Stats().MaxQueueBytes
		f.DP.Deliver(&proto.SetCwnd{SID: 1, Bytes: 60000})
		net.Run(1200 * time.Millisecond)
		return net.Path.Forward.Stats().MaxQueueBytes - pre
	}
	stepPeak := run(false)
	smoothPeak := run(true)
	if smoothPeak >= stepPeak {
		t.Fatalf("smoothing did not reduce peak queue: step=%d smooth=%d", stepPeak, smoothPeak)
	}
}

// holdAlg never touches the window; tests inject updates directly.
type holdAlg struct{}

func (holdAlg) Name() string                                   { return "hold" }
func (holdAlg) Init(f *core.Flow)                              {}
func (holdAlg) OnMeasurement(f *core.Flow, m core.Measurement) {}
func (holdAlg) OnUrgent(f *core.Flow, u core.UrgentEvent)      {}

func TestSmoothCwndStillConverges(t *testing.T) {
	net := harness.New(harness.Config{Link: wan16()})
	f := net.AddCCPFlowCfg(1, "cubic", tcp.Options{}, datapath.Config{SmoothCwnd: true})
	f.Conn.Start()
	net.Run(15 * time.Second)
	if u := net.Utilization(15 * time.Second); u < 0.8 {
		t.Fatalf("smooth-cwnd cubic utilization %.3f", u)
	}
}

// §5 groups: N flows under the Congestion-Manager-style aggregate behave
// as one controller with equal shares.
func TestGroupCMSharesEqually(t *testing.T) {
	reg := core.NewRegistry()
	reg.Register("cm", algorithms.NewGroupCM())
	link := netsim.LinkConfig{RateBps: 32e6, Delay: 5 * time.Millisecond, QueueBytes: 40000}
	net := harness.New(harness.Config{Link: link, Registry: reg, DefaultAlg: "cm"})
	var flows []*harness.CCPFlow
	for i := 1; i <= 3; i++ {
		f := net.AddCCPFlow(netsim.FlowID(i), "cm", tcp.Options{})
		flows = append(flows, f)
		f.Conn.Start()
	}
	dur := 20 * time.Second
	net.Run(dur)

	var shares []float64
	for _, f := range flows {
		d := float64(f.Receiver.Delivered())
		if d == 0 {
			t.Fatal("a group member starved")
		}
		shares = append(shares, d)
	}
	if fair := trace.JainFairness(shares); fair < 0.95 {
		t.Fatalf("group fairness %.3f (shares=%v)", fair, shares)
	}
	if u := net.Utilization(dur); u < 0.6 {
		t.Fatalf("group utilization %.3f", u)
	}
}

func TestGroupCMMembershipTracksCloses(t *testing.T) {
	cmFactory := algorithms.NewGroupCM()
	reg := core.NewRegistry()
	reg.Register("cm", cmFactory)
	link := netsim.LinkConfig{RateBps: 32e6, Delay: 5 * time.Millisecond, QueueBytes: 40000}
	net := harness.New(harness.Config{Link: link, Registry: reg, DefaultAlg: "cm"})
	f1 := net.AddCCPFlow(1, "cm", tcp.Options{})
	f2 := net.AddCCPFlow(2, "cm", tcp.Options{})
	f1.Conn.Start()
	f2.Conn.Start()
	net.Run(3 * time.Second)
	if got := net.Agent.FlowCount(); got != 2 {
		t.Fatalf("agent flows=%d", got)
	}
	before := float64(f1.Receiver.Delivered())
	// Close flow 2: flow 1 should absorb the whole budget.
	net.StopAt(f2.Flow, 3*time.Second)
	net.Run(10 * time.Second)
	after := float64(f1.Receiver.Delivered()) - before
	perSecBefore := before / 3
	perSecAfter := after / 7
	if perSecAfter < perSecBefore*1.3 {
		t.Fatalf("survivor did not absorb budget: %.0f B/s -> %.0f B/s", perSecBefore, perSecAfter)
	}
	if net.Agent.FlowCount() != 1 {
		t.Fatalf("agent flows=%d after close", net.Agent.FlowCount())
	}
}

// Sprout: cautious rate control on a variable link — utilization with
// bounded delay, plus the absolute-interval Wait cadence.
func TestSproutCautiousOnVariableLink(t *testing.T) {
	link := netsim.LinkConfig{
		RateBps:    16e6,
		Delay:      20 * time.Millisecond,
		QueueBytes: 1 << 22,
		LossProb:   0.001,
	}
	net := harness.New(harness.Config{Link: link})
	f := net.AddCCPFlow(1, "sprout", tcp.Options{})
	f.Conn.Start()
	dur := 20 * time.Second
	net.Run(dur)
	if u := net.Utilization(dur); u < 0.5 {
		t.Fatalf("sprout utilization %.3f", u)
	}
	// The cautious forecast keeps the standing queue low even with 4 MiB
	// of buffer available.
	if srtt := f.Conn.SRTT(); srtt > 70*time.Millisecond {
		t.Fatalf("sprout srtt %v — queue not controlled", srtt)
	}
	// The tick cadence: ~50 reports/sec at a 20 ms tick.
	reports := float64(f.DP.Stats().ReportsSent) / dur.Seconds()
	if reports < 30 || reports > 70 {
		t.Fatalf("report cadence %.1f/s, want ~50 (20ms ticks)", reports)
	}
}

// Churn: flows joining and leaving continuously must not wedge the agent,
// the datapath, or the accounting.
func TestFlowChurn(t *testing.T) {
	link := netsim.LinkConfig{RateBps: 48e6, Delay: 5 * time.Millisecond, QueueBytes: 60000}
	net := harness.New(harness.Config{Link: link})
	algs := []string{"cubic", "reno", "vegas", "bbr", "aimd-dp"}
	var flows []*harness.CCPFlow
	for i := 0; i < 10; i++ {
		f := net.AddCCPFlow(netsim.FlowID(i+1), algs[i%len(algs)], tcp.Options{})
		flows = append(flows, f)
		start := time.Duration(i) * 500 * time.Millisecond
		net.StartAt(f.Flow, start)
		if i%2 == 0 {
			net.StopAt(f.Flow, start+3*time.Second)
		}
	}
	net.Run(10 * time.Second)
	if got := net.Agent.Stats().FlowsCreated; got != 10 {
		t.Fatalf("creates=%d", got)
	}
	if got := net.Agent.Stats().FlowsClosed; got != 5 {
		t.Fatalf("closes=%d", got)
	}
	if got := net.Agent.FlowCount(); got != 5 {
		t.Fatalf("live flows=%d, want 5", got)
	}
	for i, f := range flows {
		if f.Receiver.Delivered() == 0 {
			t.Fatalf("flow %d starved", i)
		}
		if err := f.Conn.CheckInvariants(); err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
	}
	if u := net.Utilization(10 * time.Second); u < 0.7 {
		t.Fatalf("churn utilization %.3f", u)
	}
}

// Sprout on its home turf: a cellular-style link whose capacity oscillates
// ±50% every 2 seconds. The cautious forecast must keep delay bounded
// through the swings while still using a good share of the (time-varying)
// capacity.
func TestSproutOnOscillatingLink(t *testing.T) {
	base := 16e6
	link := netsim.LinkConfig{RateBps: base, Delay: 20 * time.Millisecond, QueueBytes: 1 << 22}
	net := harness.New(harness.Config{Link: link})
	stop := netsim.OscillateRate(net.Sim, net.Path.Forward, base, 0.5, 2*time.Second)
	defer stop()
	f := net.AddCCPFlow(1, "sprout", tcp.Options{})
	f.Conn.Start()
	dur := 20 * time.Second
	net.Run(dur)
	// Mean capacity is ~base; demand at least 40% of it through the swings.
	goodput := float64(f.Receiver.Delivered()) * 8 / dur.Seconds()
	if goodput < 0.4*base {
		t.Fatalf("sprout goodput %.2f Mbit/s of ~%.0f mean", goodput/1e6, base/1e6)
	}
	if srtt := f.Conn.SRTT(); srtt > 120*time.Millisecond {
		t.Fatalf("sprout srtt %v on variable link", srtt)
	}
}
