package algorithms_test

import (
	"testing"
	"time"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/harness"
	"github.com/ccp-repro/ccp/internal/netsim"
	"github.com/ccp-repro/ccp/internal/tcp"
)

// run starts one CCP flow under alg on link and returns the harness and flow.
func run(t *testing.T, alg string, link netsim.LinkConfig, opts tcp.Options, dur time.Duration) (*harness.Net, *harness.CCPFlow) {
	t.Helper()
	net := harness.New(harness.Config{Link: link, DefaultAlg: "reno"})
	f := net.AddCCPFlow(1, alg, opts)
	f.Conn.Start()
	net.Run(dur)
	return net, f
}

// wan16 is a 16 Mbit/s, 10 ms RTT link with a 1 BDP buffer.
func wan16() netsim.LinkConfig {
	return netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 20000}
}

// deepBuffer is the same link with an effectively infinite buffer.
func deepBuffer() netsim.LinkConfig {
	return netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 22}
}

func TestCCPRenoUtilization(t *testing.T) {
	net, f := run(t, "reno", wan16(), tcp.Options{}, 30*time.Second)
	if u := net.Utilization(30 * time.Second); u < 0.7 {
		t.Fatalf("ccp reno utilization %.3f", u)
	}
	if f.DP.Stats().ReportsSent == 0 {
		t.Fatal("no measurement reports reached the agent path")
	}
	if net.Agent.Stats().Measurements == 0 {
		t.Fatal("agent saw no measurements")
	}
}

func TestCCPNewRenoUtilization(t *testing.T) {
	net, _ := run(t, "newreno", wan16(), tcp.Options{}, 30*time.Second)
	if u := net.Utilization(30 * time.Second); u < 0.7 {
		t.Fatalf("ccp newreno utilization %.3f", u)
	}
}

func TestCCPCubicUtilization(t *testing.T) {
	net, f := run(t, "cubic", wan16(), tcp.Options{}, 30*time.Second)
	if u := net.Utilization(30 * time.Second); u < 0.85 {
		t.Fatalf("ccp cubic utilization %.3f", u)
	}
	// Cubic uses a fold program; the agent must have received installs.
	if f.DP.Stats().InstallsRecvd == 0 {
		t.Fatal("no programs installed")
	}
}

func TestCCPVegasFoldLowDelay(t *testing.T) {
	net, f := run(t, "vegas", deepBuffer(), tcp.Options{}, 20*time.Second)
	if u := net.Utilization(20 * time.Second); u < 0.7 {
		t.Fatalf("ccp vegas utilization %.3f", u)
	}
	if srtt := f.Conn.SRTT(); srtt > 25*time.Millisecond {
		t.Fatalf("ccp vegas srtt %v — queue not controlled", srtt)
	}
}

func TestCCPVegasVectorLowDelay(t *testing.T) {
	net, f := run(t, "vegas-vector", deepBuffer(), tcp.Options{}, 20*time.Second)
	if u := net.Utilization(20 * time.Second); u < 0.7 {
		t.Fatalf("vegas-vector utilization %.3f", u)
	}
	if srtt := f.Conn.SRTT(); srtt > 25*time.Millisecond {
		t.Fatalf("vegas-vector srtt %v", srtt)
	}
	if f.DP.Stats().VectorsSent == 0 || f.DP.Stats().VectorRowsSent == 0 {
		t.Fatal("vector mode sent no vectors")
	}
	if net.Agent.Stats().Vectors == 0 {
		t.Fatal("agent saw no vectors")
	}
}

func TestVegasFoldAndVectorAgree(t *testing.T) {
	// §2.4: both batching styles implement the same algorithm; their
	// steady-state behaviour should match closely.
	run1 := func(alg string) (float64, time.Duration) {
		net, f := run(t, alg, deepBuffer(), tcp.Options{}, 20*time.Second)
		return net.Utilization(20 * time.Second), f.Conn.SRTT()
	}
	uFold, rttFold := run1("vegas")
	uVec, rttVec := run1("vegas-vector")
	if diff := uFold - uVec; diff > 0.1 || diff < -0.1 {
		t.Fatalf("utilization diverged: fold=%.3f vector=%.3f", uFold, uVec)
	}
	rttDiff := rttFold - rttVec
	if rttDiff < 0 {
		rttDiff = -rttDiff
	}
	if rttDiff > 5*time.Millisecond {
		t.Fatalf("srtt diverged: fold=%v vector=%v", rttFold, rttVec)
	}
}

func TestCCPDCTCPWithECN(t *testing.T) {
	link := netsim.LinkConfig{
		RateBps: 16e6, Delay: 5 * time.Millisecond,
		QueueBytes: 1 << 20, ECNThresholdBytes: 15000,
	}
	net := harness.New(harness.Config{Link: link})
	f := net.AddCCPFlow(1, "dctcp", tcp.Options{ECN: true})
	f.Conn.Start()
	net.Run(20 * time.Second)
	if u := net.Utilization(20 * time.Second); u < 0.75 {
		t.Fatalf("dctcp utilization %.3f", u)
	}
	// DCTCP holds the queue near the marking threshold: SRTT stays well
	// below what a loss-based scheme would build in this deep buffer.
	if srtt := f.Conn.SRTT(); srtt > 35*time.Millisecond {
		t.Fatalf("dctcp srtt %v — not reacting to ECN", srtt)
	}
	if f.Conn.Stats().ECNEchoes == 0 {
		t.Fatal("no ECN signal reached the sender")
	}
}

func TestCCPTimelyControlsDelay(t *testing.T) {
	net, f := run(t, "timely", deepBuffer(), tcp.Options{}, 30*time.Second)
	if u := net.Utilization(30 * time.Second); u < 0.5 {
		t.Fatalf("timely utilization %.3f", u)
	}
	if f.Conn.Stats().RateSetCalls == 0 {
		t.Fatal("timely never set a rate")
	}
	// Rate-based delay control: srtt bounded well below the deep buffer's
	// worst case (which would be seconds).
	if srtt := f.Conn.SRTT(); srtt > 60*time.Millisecond {
		t.Fatalf("timely srtt %v", srtt)
	}
}

func TestCCPPCCConverges(t *testing.T) {
	net, f := run(t, "pcc", wan16(), tcp.Options{}, 40*time.Second)
	if u := net.Utilization(40 * time.Second); u < 0.5 {
		t.Fatalf("pcc utilization %.3f", u)
	}
	if f.DP.Stats().InstallsRecvd < 5 {
		t.Fatalf("pcc installed only %d trial programs", f.DP.Stats().InstallsRecvd)
	}
}

func TestCCPBBRTracksBottleneck(t *testing.T) {
	net, f := run(t, "bbr", deepBuffer(), tcp.Options{}, 30*time.Second)
	u := net.Utilization(30 * time.Second)
	if u < 0.6 {
		t.Fatalf("bbr utilization %.3f", u)
	}
	// BBR paces; the pacing rate should be near the bottleneck (2e6 B/s).
	rate := f.Conn.PacingRate()
	if rate < 1e6 || rate > 4e6 {
		t.Fatalf("bbr pacing rate %.0f B/s, want ~2e6", rate)
	}
	// The pulse program must actually be installed (9 instructions + cap).
	if prog := f.DP.Program(); prog == nil || len(prog.Instrs) < 9 {
		t.Fatalf("bbr steady-state pulse program not installed: %v", f.DP.Program())
	}
}

func TestCCPXCPAdoptsRouterRate(t *testing.T) {
	link := netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20}
	net := harness.New(harness.Config{Link: link})
	netsim.NewFairStamper(net.Path.Forward)
	f := net.AddCCPFlow(1, "xcp", tcp.Options{})
	f.Conn.Start()
	net.Run(20 * time.Second)
	if u := net.Utilization(20 * time.Second); u < 0.6 {
		t.Fatalf("xcp utilization %.3f", u)
	}
	// The datapath adopted the router-stamped rate: ~2e6 B/s fair share.
	rate := f.Conn.PacingRate()
	if rate < 1e6 || rate > 2.6e6 {
		t.Fatalf("xcp pacing rate %.0f, want ≈2e6 (router fair share)", rate)
	}
}

func TestCCPXCPSharesFairly(t *testing.T) {
	link := netsim.LinkConfig{RateBps: 16e6, Delay: 5 * time.Millisecond, QueueBytes: 1 << 20}
	net := harness.New(harness.Config{Link: link})
	netsim.NewFairStamper(net.Path.Forward)
	f1 := net.AddCCPFlow(1, "xcp", tcp.Options{})
	f2 := net.AddCCPFlow(2, "xcp", tcp.Options{})
	f1.Conn.Start()
	f2.Conn.Start()
	net.Run(20 * time.Second)
	d1 := float64(f1.Receiver.Delivered())
	d2 := float64(f2.Receiver.Delivered())
	fair := (d1 + d2) * (d1 + d2) / (2 * (d1*d1 + d2*d2))
	if fair < 0.9 {
		t.Fatalf("xcp fairness %.3f (d1=%.0f d2=%.0f)", fair, d1, d2)
	}
}

func TestCCPAIMDWorks(t *testing.T) {
	net, _ := run(t, "aimd", wan16(), tcp.Options{}, 20*time.Second)
	if u := net.Utilization(20 * time.Second); u < 0.6 {
		t.Fatalf("aimd utilization %.3f", u)
	}
}

func TestMultipleAlgorithmsOneHost(t *testing.T) {
	// §2: "it is possible to run multiple algorithms on the same host".
	link := netsim.LinkConfig{RateBps: 32e6, Delay: 5 * time.Millisecond, QueueBytes: 40000}
	net := harness.New(harness.Config{Link: link})
	fCubic := net.AddCCPFlow(1, "cubic", tcp.Options{})
	fReno := net.AddCCPFlow(2, "reno", tcp.Options{})
	fCubic.Conn.Start()
	fReno.Conn.Start()
	net.Run(30 * time.Second)
	if fCubic.Receiver.Delivered() == 0 || fReno.Receiver.Delivered() == 0 {
		t.Fatal("a flow starved")
	}
	if got := net.Agent.FlowCount(); got != 2 {
		t.Fatalf("agent tracks %d flows, want 2", got)
	}
	if u := net.Utilization(30 * time.Second); u < 0.75 {
		t.Fatalf("combined utilization %.3f", u)
	}
}

func TestRegistryCoversTable1(t *testing.T) {
	infos := algorithms.All()
	if len(infos) < 10 {
		t.Fatalf("only %d algorithms registered", len(infos))
	}
	names := map[string]bool{}
	for _, info := range infos {
		if names[info.Name] {
			t.Fatalf("duplicate algorithm %q", info.Name)
		}
		names[info.Name] = true
		if len(info.Measurements) == 0 || len(info.Controls) == 0 {
			t.Fatalf("%s: empty Table 1 metadata", info.Name)
		}
		if info.Factory == nil {
			t.Fatalf("%s: nil factory", info.Name)
		}
		alg := info.Factory()
		if alg.Name() != info.Name && info.Name != "vegas" { // fold variant keeps canonical name
			t.Fatalf("factory for %q built %q", info.Name, alg.Name())
		}
	}
	for _, want := range []string{"reno", "vegas", "cubic", "dctcp", "timely", "pcc", "bbr", "xcp"} {
		if !names[want] {
			t.Fatalf("Table 1 row %q missing", want)
		}
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	one := func() (int64, int) {
		net, f := run(t, "cubic", wan16(), tcp.Options{}, 10*time.Second)
		return f.Receiver.Delivered(), net.Agent.Stats().Measurements
	}
	d1, m1 := one()
	d2, m2 := one()
	if d1 != d2 || m1 != m2 {
		t.Fatalf("CCP end-to-end not deterministic: (%d,%d) vs (%d,%d)", d1, m1, d2, m2)
	}
}
