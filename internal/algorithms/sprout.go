package algorithms

import (
	"math"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// Sprout is a simplified Sprout (Table 1's row): cautious rate control from
// *equally spaced* delivery-rate measurements. The paper cites Sprout as
// the reason control programs support absolute-time Wait — "Sprout models
// available network capacity using equally spaced rate measurements" — so
// this implementation installs Wait(tick).Report() and forecasts capacity
// as an exponentially weighted mean and variance of the per-tick delivery
// rate, pacing at a conservative quantile (mean − k·σ) to keep queues
// short on highly variable links.
type Sprout struct {
	mss  float64
	tick float64 // seconds between measurements (Sprout: 20 ms)
	k    float64 // caution factor in standard deviations

	mean    float64 // EW mean of delivery rate, bytes/sec
	varEst  float64 // EW variance
	samples int
	srtt    float64
	baseRTT float64 // minimum observed RTT (propagation estimate)
	rate    float64 // current pacing rate
	// ticksSinceAdj spaces rate adjustments about one RTT apart even
	// though measurements arrive every tick: actuating faster than the
	// feedback delay oscillates (the §2.3 control-theory point).
	ticksSinceAdj int
}

// NewSprout returns a Sprout instance with the paper's 20 ms tick.
func NewSprout() *Sprout {
	return &Sprout{tick: 0.020, k: 0.5}
}

// Name implements core.Alg.
func (s *Sprout) Name() string { return "sprout" }

// Init implements core.Alg: equally spaced measurement intervals via the
// absolute-time Wait primitive.
func (s *Sprout) Init(f *core.Flow) {
	s.mss = float64(f.Info.MSS)
	s.mean = 0
	s.varEst = 0
	s.samples = 0
	s.baseRTT = 0
	s.rate = float64(f.Info.InitCwnd) * 10
	prog := lang.NewProgram().
		MeasureEWMA().
		Rate(lang.C(s.rate)).
		Wait(s.tick).
		Report().
		MustBuild()
	f.Install(prog)
}

// OnMeasurement implements core.Alg: one forecast update per tick.
func (s *Sprout) OnMeasurement(f *core.Flow, m core.Measurement) {
	// Per-tick delivered throughput: acked bytes over the tick.
	acked := m.GetOr("acked", 0)
	sample := acked / s.tick
	if rtt := m.GetOr("rtt", 0); rtt > 0 {
		s.srtt = rtt
		if s.baseRTT == 0 || rtt < s.baseRTT {
			s.baseRTT = rtt
		}
	}
	const g = 0.125
	if s.samples == 0 {
		s.mean = sample
	} else {
		d := sample - s.mean
		s.mean += g * d
		s.varEst = (1-g)*s.varEst + g*d*d
	}
	s.samples++
	if s.samples < 3 || s.baseRTT == 0 || acked <= 0 {
		return
	}
	// Space adjustments ~one RTT apart (but at least one tick).
	s.ticksSinceAdj++
	if float64(s.ticksSinceAdj)*s.tick < s.srtt {
		return
	}
	s.ticksSinceAdj = 0
	// Our paced sender only ever observes its own rate delivered, so the
	// forecast alone cannot find unused capacity (real Sprout rides a
	// cellular link that delivers at its own pace). Gate on delay: while
	// the path shows no queueing, probe multiplicatively; once delay
	// builds, fall back to the cautious sub-mean forecast.
	switch {
	case s.srtt < 1.2*s.baseRTT:
		// No queueing: probe upward to discover capacity, bounded by
		// twice the measured delivery so stale samples cannot run away.
		s.rate = minF(maxF(s.rate, s.mean)*1.25, 2*s.mean)
	case s.srtt > 1.5*s.baseRTT:
		// Standing queue: back off below the forecast until it drains.
		s.rate = minF(s.rate, s.mean) * 0.85
	default:
		// Near target: hold at the cautious sub-mean forecast.
		s.rate = s.mean - s.k*math.Sqrt(s.varEst)
	}
	if s.rate < 2*s.mss {
		s.rate = 2 * s.mss
	}
	// Window cap bounds the queue Sprout-style: an RTT plus two ticks of
	// data, floored at four segments.
	capBytes := s.rate * (2*s.tick + s.srtt)
	if capBytes < 4*s.mss {
		capBytes = 4 * s.mss
	}
	prog := lang.NewProgram().
		MeasureEWMA().
		Cwnd(lang.C(capBytes)).
		Rate(lang.C(s.rate)).
		Wait(s.tick).
		Report().
		MustBuild()
	f.Install(prog)
}

// OnUrgent implements core.Alg: loss halves the forecast mean.
func (s *Sprout) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	if u.Kind == proto.UrgentTimeout || u.Kind == proto.UrgentDupAck {
		s.mean = maxF(s.mean/2, 2*s.mss)
	}
}
