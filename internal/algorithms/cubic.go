package algorithms

import (
	"math"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// Cubic is CCP Cubic — the paper's §2.2 showcase: the window curve is
// computed in user space with ordinary floating point (math.Pow/math.Cbrt)
// instead of the kernel's 42-line fixed-point cube root. Measurements
// arrive via a fold function (acked bytes, smoothed RTT, datapath clock)
// twice per RTT, and the agent installs the new window each report.
type Cubic struct {
	mss      float64
	cwndSegs float64 // window in segments, agent-side shadow
	ssthresh float64 // segments

	wMax       float64 // window at last drop, segments
	k          float64 // time offset of the cubic origin, seconds
	epochStart float64 // datapath clock at epoch start, seconds
	srtt       float64 // seconds, from reports

	// cutSinceReport rate-limits multiplicative decreases to one per
	// report (~once per RTT): a single loss burst raises several urgent
	// events before the agent's next measurement arrives, and reacting to
	// each would collapse the window (the off-datapath analog of the
	// kernel's once-per-RTT reduction rule).
	cutSinceReport bool
}

// cubicBeta and cubicC are the RFC 8312 constants (β=0.7, C=0.4); 0.4
// appears verbatim in the paper's code snippet.
const (
	cubicBeta = 0.7
	cubicCC   = 0.4
)

// NewCubic returns a CCP Cubic instance.
func NewCubic() *Cubic { return &Cubic{} }

// Name implements core.Alg.
func (cu *Cubic) Name() string { return "cubic" }

// cubicFold gathers acked bytes, an RTT filter, and the datapath clock.
func cubicFold() *lang.FoldSpec {
	return &lang.FoldSpec{
		Regs: []lang.RegDef{
			{Name: "acked", Init: 0},
			{Name: "rtt_f", Init: 0},
			{Name: "dp_now", Init: 0},
		},
		Updates: []lang.Assign{
			{Dst: "acked", E: lang.Add(lang.V("acked"), lang.V("pkt.acked"))},
			{Dst: "rtt_f", E: lang.Ite(lang.Eq(lang.V("rtt_f"), lang.C(0)),
				lang.V("pkt.rtt"),
				lang.Add(lang.Mul(lang.C(0.875), lang.V("rtt_f")),
					lang.Mul(lang.C(0.125), lang.V("pkt.rtt"))))},
			{Dst: "dp_now", E: lang.V("pkt.now")},
		},
	}
}

// Init implements core.Alg.
func (cu *Cubic) Init(f *core.Flow) {
	cu.mss = float64(f.Info.MSS)
	cu.cwndSegs = float64(f.Info.InitCwnd) / cu.mss
	cu.ssthresh = 1 << 20
	cu.wMax = 0
	cu.epochStart = -1
	cu.install(f)
}

// install pushes the fold program with the current window; reports come
// twice per RTT, the paper's "once or twice per RTT" cadence.
func (cu *Cubic) install(f *core.Flow) {
	prog := lang.NewProgram().
		MeasureFold(cubicFold()).
		Cwnd(lang.C(cu.cwndSegs * cu.mss)).
		WaitRtts(0.5).
		Report().
		MustBuild()
	f.Install(prog)
}

// OnMeasurement implements core.Alg: advance along the cubic curve.
func (cu *Cubic) OnMeasurement(f *core.Flow, m core.Measurement) {
	cu.cutSinceReport = false
	acked := m.GetOr("acked", 0)
	if acked <= 0 {
		return
	}
	if rtt := m.GetOr("rtt_f", 0); rtt > 0 {
		cu.srtt = rtt
	}
	now := m.GetOr("dp_now", 0)

	if cu.cwndSegs < cu.ssthresh {
		// Slow start.
		cu.cwndSegs = minF(cu.cwndSegs+acked/cu.mss, cu.ssthresh+1)
		cu.install(f)
		return
	}

	if cu.epochStart < 0 {
		cu.epochStart = now
		if cu.cwndSegs < cu.wMax {
			// The paper's snippet: K = (max(0,(WlastMax-cwnd)/0.4))^(1/3).
			cu.k = math.Pow(math.Max(0, (cu.wMax-cu.cwndSegs)/cubicCC), 1.0/3.0)
		} else {
			cu.k = 0
			cu.wMax = cu.cwndSegs
		}
	}
	// Target the curve one RTT ahead: cwnd = WlastMax + 0.4*(t-K)^3.
	t := now - cu.epochStart + cu.srtt
	target := cu.wMax + cubicCC*math.Pow(t-cu.k, 3)

	// TCP-friendly region (RFC 8312 W_est).
	if cu.srtt > 0 {
		wEst := cu.wMax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*((now-cu.epochStart)/cu.srtt)
		if wEst > target {
			target = wEst
		}
	}

	// Follow the curve, capping growth at 50% per report for robustness
	// against clock/RTT misestimates.
	if target > cu.cwndSegs {
		cu.cwndSegs = minF(target, cu.cwndSegs*1.5)
	}
	cu.install(f)
}

// OnUrgent implements core.Alg: multiplicative decrease and epoch reset.
func (cu *Cubic) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	switch u.Kind {
	case proto.UrgentDupAck, proto.UrgentECN:
		if cu.cutSinceReport {
			return
		}
		cu.cutSinceReport = true
		cu.epochStart = -1
		if cu.cwndSegs < cu.wMax {
			// Fast convergence.
			cu.wMax = cu.cwndSegs * (2 - cubicBeta) / 2
		} else {
			cu.wMax = cu.cwndSegs
		}
		cu.cwndSegs = maxF(cu.cwndSegs*cubicBeta, 2)
		cu.ssthresh = cu.cwndSegs
	case proto.UrgentTimeout:
		cu.epochStart = -1
		cu.wMax = cu.cwndSegs
		cu.ssthresh = maxF(cu.cwndSegs*cubicBeta, 2)
		cu.cwndSegs = 1
	}
	cu.install(f)
}
