package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// DCTCP is CCP DCTCP: the datapath folds the fraction of CE-marked bytes
// per window (the F statistic), and the agent maintains the running alpha
// estimate and scales the window by alpha/2 once per RTT. ECN marks are
// deliberately *batched*, not urgent — DCTCP's whole design reacts to the
// per-window marking fraction, exercising the paper's batched-congestion-
// signal path.
type DCTCP struct {
	mss      float64
	cwnd     float64
	ssthresh float64
	alpha    float64
	g        float64 // alpha gain (1/16 as in the DCTCP paper)
	// cutSinceReport limits loss-driven decreases to one per report.
	cutSinceReport bool
}

// NewDCTCP returns a CCP DCTCP instance.
func NewDCTCP() *DCTCP { return &DCTCP{g: 1.0 / 16} }

// Name implements core.Alg.
func (d *DCTCP) Name() string { return "dctcp" }

func dctcpFold() *lang.FoldSpec {
	return &lang.FoldSpec{
		Regs: []lang.RegDef{
			{Name: "acked_b", Init: 0},
			{Name: "marked_b", Init: 0},
			{Name: "lost_b", Init: 0},
		},
		Updates: []lang.Assign{
			{Dst: "acked_b", E: lang.Add(lang.V("acked_b"), lang.V("pkt.acked"))},
			{Dst: "marked_b", E: lang.Add(lang.V("marked_b"),
				lang.Mul(lang.V("pkt.ecn"), lang.V("pkt.acked")))},
			{Dst: "lost_b", E: lang.Add(lang.V("lost_b"), lang.V("pkt.lost"))},
		},
	}
}

// Init implements core.Alg.
func (d *DCTCP) Init(f *core.Flow) {
	d.mss = float64(f.Info.MSS)
	d.cwnd = float64(f.Info.InitCwnd)
	d.ssthresh = 1 << 30
	d.alpha = 1 // start conservative, as the DCTCP paper recommends
	d.install(f)
}

func (d *DCTCP) install(f *core.Flow) {
	prog := lang.NewProgram().
		MeasureFold(dctcpFold()).
		Cwnd(lang.C(d.cwnd)).
		WaitRtts(1).
		Report().
		MustBuild()
	f.Install(prog)
}

// OnMeasurement implements core.Alg: one alpha/window update per RTT.
func (d *DCTCP) OnMeasurement(f *core.Flow, m core.Measurement) {
	d.cutSinceReport = false
	acked := m.GetOr("acked_b", 0)
	if acked <= 0 {
		return
	}
	marked := m.GetOr("marked_b", 0)
	fFrac := marked / acked
	d.alpha = (1-d.g)*d.alpha + d.g*fFrac

	if fFrac > 0 {
		// Congested: scale back by alpha/2.
		d.cwnd = maxF(d.cwnd*(1-d.alpha/2), 2*d.mss)
		d.ssthresh = d.cwnd
	} else if d.cwnd < d.ssthresh {
		d.cwnd += acked // slow start
	} else {
		d.cwnd += d.mss * (acked / d.cwnd) // additive increase
	}
	d.install(f)
}

// OnUrgent implements core.Alg: loss still halves, like TCP.
func (d *DCTCP) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	switch u.Kind {
	case proto.UrgentDupAck:
		if d.cutSinceReport {
			return
		}
		d.cutSinceReport = true
		d.cwnd = maxF(d.cwnd/2, 2*d.mss)
		d.ssthresh = d.cwnd
	case proto.UrgentTimeout:
		d.ssthresh = maxF(d.cwnd/2, 2*d.mss)
		d.cwnd = d.mss
	case proto.UrgentECN:
		// Not requested urgent; handled via the fold.
		return
	}
	d.install(f)
}
