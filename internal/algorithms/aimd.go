package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
)

// AIMD is the minimal CCP algorithm — general additive-increase,
// multiplicative-decrease with tunable parameters. It is the paper's "are
// CCP algorithms easier to write?" demonstration: a complete, deployable
// congestion controller in ~40 lines, used verbatim by examples/customalg.
type AIMD struct {
	IncreaseSegs   float64 // segments added per RTT
	DecreaseFactor float64 // window multiplier on loss (e.g. 0.5)

	mss  float64
	cwnd float64
}

// NewAIMD returns an AIMD(a, b) controller: +a segments per RTT, ×b on loss.
func NewAIMD(a, b float64) *AIMD {
	return &AIMD{IncreaseSegs: a, DecreaseFactor: b}
}

// Name implements core.Alg.
func (a *AIMD) Name() string { return "aimd" }

// Init implements core.Alg.
func (a *AIMD) Init(f *core.Flow) {
	a.mss = float64(f.Info.MSS)
	a.cwnd = float64(f.Info.InitCwnd)
	f.SetCwnd(int(a.cwnd))
}

// OnMeasurement implements core.Alg: one additive increase per report.
func (a *AIMD) OnMeasurement(f *core.Flow, m core.Measurement) {
	if m.GetOr("acked", 0) <= 0 {
		return
	}
	a.cwnd += a.IncreaseSegs * a.mss
	f.SetCwnd(int(a.cwnd))
}

// OnUrgent implements core.Alg: multiplicative decrease on any congestion.
func (a *AIMD) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	_ = u
	a.cwnd = maxF(a.cwnd*a.DecreaseFactor, 2*a.mss)
	f.SetCwnd(int(a.cwnd))
}
