package algorithms_test

import (
	"testing"

	"github.com/ccp-repro/ccp/internal/algorithms"
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// rig drives one algorithm instance through the real agent with synthetic
// wire messages, capturing everything sent toward the datapath. No
// simulator: these are pure control-logic unit tests.
type algRig struct {
	t     *testing.T
	agent *core.Agent
	out   []proto.Msg
}

func newAlgRig(t *testing.T, name string, factory core.AlgFactory) *algRig {
	t.Helper()
	reg := core.NewRegistry()
	reg.Register(name, factory)
	agent, err := core.NewAgent(core.AgentConfig{Registry: reg, DefaultAlg: name})
	if err != nil {
		t.Fatal(err)
	}
	r := &algRig{t: t, agent: agent}
	r.handle(&proto.Create{SID: 1, MSS: 1000, InitCwnd: 10000, Alg: name})
	return r
}

func (r *algRig) handle(m proto.Msg) {
	r.agent.HandleMessage(m, func(out proto.Msg) error {
		r.out = append(r.out, out)
		return nil
	})
}

// ewmaReport feeds an EWMA-mode measurement (rtt s, snd/rcv B/s, acked,
// lost bytes, ecn fraction, last rtt).
func (r *algRig) ewmaReport(seq uint32, rtt, snd, rcv, acked, lost, ecn float64) {
	r.handle(&proto.Measurement{SID: 1, Seq: seq,
		Fields: []float64{rtt, snd, rcv, acked, lost, ecn, rtt}})
}

func (r *algRig) urgent(kind proto.UrgentKind, v float64) {
	r.handle(&proto.Urgent{SID: 1, Kind: kind, Value: v})
}

// lastCwnd returns the most recent window pushed to the datapath, whether
// via SetCwnd or baked into an installed program's first Cwnd instruction.
func (r *algRig) lastCwnd() (float64, bool) {
	for i := len(r.out) - 1; i >= 0; i-- {
		switch m := r.out[i].(type) {
		case *proto.SetCwnd:
			return float64(m.Bytes), true
		case *proto.Install:
			p, err := lang.UnmarshalProgram(m.Prog)
			if err != nil {
				r.t.Fatalf("bad installed program: %v", err)
			}
			for _, in := range p.Instrs {
				if sc, ok := in.(lang.SetCwnd); ok {
					if c, isConst := sc.E.(lang.Const); isConst {
						return float64(c), true
					}
				}
			}
		}
	}
	return 0, false
}

func (r *algRig) lastRate() (float64, bool) {
	for i := len(r.out) - 1; i >= 0; i-- {
		switch m := r.out[i].(type) {
		case *proto.SetRate:
			return m.Bps, true
		case *proto.Install:
			p, err := lang.UnmarshalProgram(m.Prog)
			if err != nil {
				r.t.Fatalf("bad installed program: %v", err)
			}
			for _, in := range p.Instrs {
				if sr, ok := in.(lang.SetRate); ok {
					if c, isConst := sr.E.(lang.Const); isConst {
						return float64(c), true
					}
				}
			}
		}
	}
	return 0, false
}

func TestRenoUnitSlowStartAndHalving(t *testing.T) {
	r := newAlgRig(t, "reno", func() core.Alg { return algorithms.NewReno() })
	c0, ok := r.lastCwnd()
	if !ok || c0 != 10000 {
		t.Fatalf("init cwnd=%v ok=%v", c0, ok)
	}
	// Slow start: acked bytes add directly.
	r.ewmaReport(1, 0.01, 1e6, 1e6, 10000, 0, 0)
	if c, _ := r.lastCwnd(); c != 20000 {
		t.Fatalf("after slow-start report cwnd=%v, want 20000", c)
	}
	// Loss: halve once, and hold further halvings until the next report.
	r.urgent(proto.UrgentDupAck, 1000)
	c1, _ := r.lastCwnd()
	if c1 != 10000 {
		t.Fatalf("after loss cwnd=%v, want 10000", c1)
	}
	r.urgent(proto.UrgentDupAck, 1000)
	if c2, _ := r.lastCwnd(); c2 != c1 {
		t.Fatalf("second urgent within a report halved again: %v", c2)
	}
	// Next report reopens the cut window.
	r.ewmaReport(2, 0.01, 1e6, 1e6, 10000, 0, 0)
	r.urgent(proto.UrgentDupAck, 1000)
	if c3, _ := r.lastCwnd(); c3 >= c1 {
		t.Fatalf("halving after report did not apply: %v", c3)
	}
}

func TestRenoUnitTimeoutCollapses(t *testing.T) {
	r := newAlgRig(t, "reno", func() core.Alg { return algorithms.NewReno() })
	r.urgent(proto.UrgentTimeout, 10000)
	if c, _ := r.lastCwnd(); c != 1000 {
		t.Fatalf("after timeout cwnd=%v, want 1 MSS", c)
	}
}

func TestCubicUnitDecreaseFactor(t *testing.T) {
	r := newAlgRig(t, "cubic", func() core.Alg { return algorithms.NewCubic() })
	c0, ok := r.lastCwnd()
	if !ok {
		t.Fatal("cubic installed no window")
	}
	r.urgent(proto.UrgentDupAck, 1000)
	c1, _ := r.lastCwnd()
	want := c0 * 0.7
	if c1 < want*0.95 || c1 > want*1.05 {
		t.Fatalf("cubic decrease: %v -> %v, want ~%v", c0, c1, want)
	}
}

func TestDCTCPUnitAlphaScaling(t *testing.T) {
	r := newAlgRig(t, "dctcp", func() core.Alg { return algorithms.NewDCTCP() })
	c0, _ := r.lastCwnd()
	// Fold report: [acked_b, marked_b, lost_b]. 50% marked.
	r.handle(&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{10000, 5000, 0}})
	c1, _ := r.lastCwnd()
	if c1 >= c0 {
		t.Fatalf("marked window did not shrink: %v -> %v", c0, c1)
	}
	// Unmarked windows grow again.
	prev := c1
	for seq := uint32(2); seq < 6; seq++ {
		r.handle(&proto.Measurement{SID: 1, Seq: seq, Fields: []float64{10000, 0, 0}})
	}
	c2, _ := r.lastCwnd()
	if c2 <= prev {
		t.Fatalf("clean windows did not grow: %v -> %v", prev, c2)
	}
}

func TestTimelyUnitGradient(t *testing.T) {
	r := newAlgRig(t, "timely", func() core.Alg { return algorithms.NewTimely() })
	rate0, ok := r.lastRate()
	if !ok || rate0 <= 0 {
		t.Fatalf("timely set no initial rate: %v", rate0)
	}
	// Flat, low RTTs: rate rises (below t_low).
	for seq := uint32(1); seq <= 5; seq++ {
		r.ewmaReport(seq, 0.010, 1e6, 1e6, 10000, 0, 0)
	}
	rate1, _ := r.lastRate()
	if rate1 <= rate0 {
		t.Fatalf("rate did not rise on low RTTs: %v -> %v", rate0, rate1)
	}
	// Sharply rising RTTs: rate falls.
	rtt := 0.012
	for seq := uint32(6); seq <= 15; seq++ {
		rtt *= 1.6
		r.ewmaReport(seq, rtt, 1e6, 1e6, 10000, 0, 0)
	}
	rate2, _ := r.lastRate()
	if rate2 >= rate1 {
		t.Fatalf("rate did not fall on rising RTTs: %v -> %v", rate1, rate2)
	}
}

func TestBBRUnitEntersPulses(t *testing.T) {
	r := newAlgRig(t, "bbr", func() core.Alg { return algorithms.NewBBR() })
	// Delivery rate plateaus: BBR must leave startup and install the
	// 9-instruction pulse program.
	for seq := uint32(1); seq <= 10; seq++ {
		r.ewmaReport(seq, 0.010, 2e6, 2e6, 10000, 0, 0)
	}
	var pulses *lang.Program
	for i := len(r.out) - 1; i >= 0; i-- {
		if inst, ok := r.out[i].(*proto.Install); ok {
			p, err := lang.UnmarshalProgram(inst.Prog)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Instrs) >= 9 {
				pulses = p
				break
			}
		}
	}
	if pulses == nil {
		t.Fatal("BBR never installed the pulse program")
	}
	// The three pulse rates must be r*1.25, r*0.75, r around btlBw=2e6.
	var rates []float64
	for _, in := range pulses.Instrs {
		if sr, ok := in.(lang.SetRate); ok {
			if c, isConst := sr.E.(lang.Const); isConst {
				rates = append(rates, float64(c))
			}
		}
	}
	if len(rates) != 3 {
		t.Fatalf("pulse program has %d rate instrs", len(rates))
	}
	if !(rates[0] > rates[2] && rates[1] < rates[2]) {
		t.Fatalf("pulse pattern wrong: %v", rates)
	}
	ratio := rates[0] / rates[2]
	if ratio < 1.2 || ratio > 1.3 {
		t.Fatalf("high pulse ratio %v, want 1.25", ratio)
	}
}

func TestPCCUnitMovesTowardUtility(t *testing.T) {
	r := newAlgRig(t, "pcc", func() core.Alg { return algorithms.NewPCC() })
	rate0, _ := r.lastRate()
	// Two lossless intervals with the high interval delivering more: the
	// utility gradient points up.
	for i := 0; i < 6; i++ {
		r.ewmaReport(uint32(2*i+1), 0.01, 1e6, 1.05e6, 105000, 0, 0) // high interval
		r.ewmaReport(uint32(2*i+2), 0.01, 1e6, 0.95e6, 95000, 0, 0)  // low interval
	}
	rate1, _ := r.lastRate()
	if rate1 <= rate0 {
		t.Fatalf("pcc did not climb on positive utility gradient: %v -> %v", rate0, rate1)
	}
	// Heavy loss in the high interval flips the direction.
	for i := 0; i < 6; i++ {
		r.ewmaReport(uint32(100+2*i), 0.01, 1e6, 0.9e6, 90000, 40000, 0)
		r.ewmaReport(uint32(101+2*i), 0.01, 1e6, 0.95e6, 95000, 0, 0)
	}
	rate2, _ := r.lastRate()
	if rate2 >= rate1 {
		t.Fatalf("pcc did not back off under loss: %v -> %v", rate1, rate2)
	}
}

func TestVegasFoldUnitAppliesDelta(t *testing.T) {
	r := newAlgRig(t, "vegas", func() core.Alg { return algorithms.NewVegasFold() })
	c0, _ := r.lastCwnd()
	// Fold report: [base_rtt, delta]. delta=+3 segments.
	r.handle(&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{0.01, 3}})
	c1, _ := r.lastCwnd()
	if c1 != c0+3*1000 {
		t.Fatalf("delta not applied: %v -> %v", c0, c1)
	}
	// Negative delta shrinks.
	r.handle(&proto.Measurement{SID: 1, Seq: 2, Fields: []float64{0.01, -5}})
	c2, _ := r.lastCwnd()
	if c2 != c1-5*1000 {
		t.Fatalf("negative delta not applied: %v -> %v", c1, c2)
	}
}

func TestVegasVectorUnitPerPacketLoop(t *testing.T) {
	r := newAlgRig(t, "vegas-vector", func() core.Alg { return algorithms.NewVegasVector() })
	c0, _ := r.lastCwnd()
	// Vector of rtt samples: all at base (no queueing) => +1 MSS each.
	r.handle(&proto.Vector{SID: 1, Seq: 1, NumFields: 1,
		Data: []float64{0.010, 0.010, 0.010}})
	c1, _ := r.lastCwnd()
	if c1 != c0+3*1000 {
		t.Fatalf("per-packet increments wrong: %v -> %v", c0, c1)
	}
	// Strongly inflated RTTs => decrements.
	r.handle(&proto.Vector{SID: 1, Seq: 2, NumFields: 1,
		Data: []float64{0.030, 0.030, 0.030}})
	c2, _ := r.lastCwnd()
	if c2 >= c1 {
		t.Fatalf("inflated RTTs did not shrink window: %v -> %v", c1, c2)
	}
}

func TestXCPUnitInstallsOnce(t *testing.T) {
	r := newAlgRig(t, "xcp", func() core.Alg { return algorithms.NewXCP() })
	installs := 0
	for _, m := range r.out {
		if _, ok := m.(*proto.Install); ok {
			installs++
		}
	}
	if installs != 1 {
		t.Fatalf("xcp installs=%d, want 1", installs)
	}
	// Measurements must not trigger further control traffic.
	n := len(r.out)
	r.handle(&proto.Measurement{SID: 1, Seq: 1, Fields: []float64{2e6, 10000}})
	if len(r.out) != n {
		t.Fatal("xcp reacted to a routine measurement")
	}
}

func TestSynthesizedAIMDUnitProgramShape(t *testing.T) {
	r := newAlgRig(t, "aimd-dp", func() core.Alg { return algorithms.NewSynthesizedAIMD(1, 0.5) })
	if len(r.out) != 1 {
		t.Fatalf("messages=%d, want single install", len(r.out))
	}
	inst, ok := r.out[0].(*proto.Install)
	if !ok {
		t.Fatalf("message is %T", r.out[0])
	}
	p, err := lang.UnmarshalProgram(inst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if p.Measure.Mode != lang.MeasureFold {
		t.Fatalf("mode=%v", p.Measure.Mode)
	}
	// Evaluate the synthesized Cwnd expression directly: loss halves,
	// progress adds one segment.
	var cwndExpr lang.Expr
	for _, in := range p.Instrs {
		if sc, ok := in.(lang.SetCwnd); ok {
			cwndExpr = sc.E
		}
	}
	if cwndExpr == nil {
		t.Fatal("no Cwnd instruction")
	}
	env := func(vals map[string]float64) lang.Env {
		return func(name string) (float64, bool) {
			v, ok := vals[name]
			return v, ok
		}
	}
	got, err := lang.Eval(cwndExpr, env(map[string]float64{
		"lost_s": 0, "acked_s": 10000, "cwnd": 20000, "mss": 1000}))
	if err != nil || got != 21000 {
		t.Fatalf("increase eval=%v err=%v, want 21000", got, err)
	}
	got, err = lang.Eval(cwndExpr, env(map[string]float64{
		"lost_s": 1000, "acked_s": 10000, "cwnd": 20000, "mss": 1000}))
	if err != nil || got != 10000 {
		t.Fatalf("decrease eval=%v err=%v, want 10000", got, err)
	}
}
