package algorithms

import "github.com/ccp-repro/ccp/internal/core"

// Snapshot support (core.SnapshotExporter) for the workhorse algorithms: the
// private registers a warm-standby agent needs to resume a flow mid-phase
// instead of cold-starting it — a restored Cubic continues on its cubic
// curve from wMax/K, a restored BBR stays in ProbeBW with its bandwidth
// window intact rather than re-entering the high-gain startup the BBR
// evaluation literature shows is so costly.
//
// Each algorithm exports a flat []float64 in a fixed order documented at its
// ExportState. ImportState rejects a slice whose length it does not
// recognize (the restoring agent then keeps cold-start state); the wire
// Snapshot's version byte already rejects cross-build restores, so a length
// mismatch here indicates a same-build bug, not skew.

var (
	_ core.SnapshotExporter = (*Reno)(nil)
	_ core.SnapshotExporter = (*NewRenoAlg)(nil)
	_ core.SnapshotExporter = (*AIMD)(nil)
	_ core.SnapshotExporter = (*Cubic)(nil)
	_ core.SnapshotExporter = (*BBR)(nil)
	_ core.SnapshotExporter = (*Timely)(nil)
)

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ExportState appends [cwnd, ssthresh, mss, cutSinceReport].
func (r *Reno) ExportState(dst []float64) []float64 {
	return append(dst, r.cwnd, r.ssthresh, r.mss, b2f(r.cutSinceReport))
}

// ImportState implements core.SnapshotExporter.
func (r *Reno) ImportState(src []float64) bool {
	if len(src) != 4 {
		return false
	}
	r.cwnd, r.ssthresh, r.mss = src[0], src[1], src[2]
	r.cutSinceReport = src[3] != 0
	return true
}

// ExportState appends [cwnd, ssthresh, mss, inRecovery, recoverAcked].
func (n *NewRenoAlg) ExportState(dst []float64) []float64 {
	return append(dst, n.cwnd, n.ssthresh, n.mss, b2f(n.inRecovery), n.recoverAcked)
}

// ImportState implements core.SnapshotExporter.
func (n *NewRenoAlg) ImportState(src []float64) bool {
	if len(src) != 5 {
		return false
	}
	n.cwnd, n.ssthresh, n.mss = src[0], src[1], src[2]
	n.inRecovery = src[3] != 0
	n.recoverAcked = src[4]
	return true
}

// ExportState appends [increaseSegs, decreaseFactor, mss, cwnd].
func (a *AIMD) ExportState(dst []float64) []float64 {
	return append(dst, a.IncreaseSegs, a.DecreaseFactor, a.mss, a.cwnd)
}

// ImportState implements core.SnapshotExporter.
func (a *AIMD) ImportState(src []float64) bool {
	if len(src) != 4 {
		return false
	}
	a.IncreaseSegs, a.DecreaseFactor, a.mss, a.cwnd = src[0], src[1], src[2], src[3]
	return true
}

// ExportState appends [mss, cwndSegs, ssthresh, wMax, k, epochStart, srtt,
// cutSinceReport] — the full cubic curve position, so a restored flow
// continues along the same window curve.
func (cu *Cubic) ExportState(dst []float64) []float64 {
	return append(dst, cu.mss, cu.cwndSegs, cu.ssthresh, cu.wMax, cu.k,
		cu.epochStart, cu.srtt, b2f(cu.cutSinceReport))
}

// ImportState implements core.SnapshotExporter.
func (cu *Cubic) ImportState(src []float64) bool {
	if len(src) != 8 {
		return false
	}
	cu.mss, cu.cwndSegs, cu.ssthresh, cu.wMax = src[0], src[1], src[2], src[3]
	cu.k, cu.epochStart, cu.srtt = src[4], src[5], src[6]
	cu.cutSinceReport = src[7] != 0
	return true
}

// ExportState appends [mss, state, btlBw, rtProp, fullBwCnt, lastFullBw,
// installed, len(bwWindow), bwWindow...] — phase plus the windowed
// bandwidth filter, so a restored ProbeBW flow keeps pulsing around the
// same estimate instead of re-running startup.
func (b *BBR) ExportState(dst []float64) []float64 {
	dst = append(dst, b.mss, float64(b.state), b.btlBw, b.rtProp,
		float64(b.fullBwCnt), b.lastFullBw, b.installed, float64(len(b.bwWindow)))
	return append(dst, b.bwWindow...)
}

// ImportState implements core.SnapshotExporter.
func (b *BBR) ImportState(src []float64) bool {
	const fixed = 8
	if len(src) < fixed {
		return false
	}
	n := int(src[7])
	if n < 0 || len(src) != fixed+n {
		return false
	}
	st := bbrState(src[1])
	if st > bbrProbeBW {
		return false
	}
	b.mss, b.state, b.btlBw, b.rtProp = src[0], st, src[2], src[3]
	b.fullBwCnt, b.lastFullBw, b.installed = int(src[4]), src[5], src[6]
	b.bwWindow = append(b.bwWindow[:0], src[fixed:]...)
	return true
}

// ExportState appends [mss, rate, prevRTT, minRTT, gradient, addStep,
// betaMul, tLow, tHigh, ewmaGain].
func (t *Timely) ExportState(dst []float64) []float64 {
	return append(dst, t.mss, t.rate, t.prevRTT, t.minRTT, t.gradient,
		t.addStep, t.betaMul, t.tLow, t.tHigh, t.ewmaGain)
}

// ImportState implements core.SnapshotExporter.
func (t *Timely) ImportState(src []float64) bool {
	if len(src) != 10 {
		return false
	}
	t.mss, t.rate, t.prevRTT, t.minRTT, t.gradient = src[0], src[1], src[2], src[3], src[4]
	t.addStep, t.betaMul, t.tLow, t.tHigh, t.ewmaGain = src[5], src[6], src[7], src[8], src[9]
	return true
}
