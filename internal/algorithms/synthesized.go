package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
)

// SynthesizedAIMD answers §5's question — "could we synthesize the
// congestion controller into the datapath from the high-level CCP
// algorithm?" — for the AIMD family: the *entire* control law is compiled
// into one control program + fold function and installed once. The
// datapath then runs additive increase / multiplicative decrease
// autonomously, one update per RTT, with the agent only supervising.
// Off-datapath latency (IPC, scheduling) disappears from the control loop,
// which is what makes this attractive at µs RTTs.
//
// The synthesized program (installed verbatim):
//
//	fold:  acked_s += pkt.acked ; lost_s += pkt.lost
//	loop:  WaitRtts(1).
//	       Cwnd(if(lost_s > 0, cwnd*β, if(acked_s > 0, cwnd + a*mss, cwnd))).
//	       Report()
type SynthesizedAIMD struct {
	IncreaseSegs   float64
	DecreaseFactor float64
}

// NewSynthesizedAIMD returns the in-datapath AIMD(a, b).
func NewSynthesizedAIMD(a, b float64) *SynthesizedAIMD {
	return &SynthesizedAIMD{IncreaseSegs: a, DecreaseFactor: b}
}

// Name implements core.Alg.
func (s *SynthesizedAIMD) Name() string { return "aimd-dp" }

// Init implements core.Alg: install the synthesized controller; after this
// the agent is out of the loop.
func (s *SynthesizedAIMD) Init(f *core.Flow) {
	fold := &lang.FoldSpec{
		Regs: []lang.RegDef{
			{Name: "acked_s", Init: 0},
			{Name: "lost_s", Init: 0},
		},
		Updates: []lang.Assign{
			{Dst: "acked_s", E: lang.Add(lang.V("acked_s"), lang.V("pkt.acked"))},
			{Dst: "lost_s", E: lang.Add(lang.V("lost_s"), lang.V("pkt.lost"))},
		},
	}
	// The Min keeps the additive-increase branch inside the datapath cwnd
	// clamp, which the install-time verifier demands be explicit.
	update := lang.Min(lang.Ite(lang.Gt(lang.V("lost_s"), lang.C(0)),
		lang.Mul(lang.V("cwnd"), lang.C(s.DecreaseFactor)),
		lang.Ite(lang.Gt(lang.V("acked_s"), lang.C(0)),
			lang.Add(lang.V("cwnd"), lang.Mul(lang.C(s.IncreaseSegs), lang.V("mss"))),
			lang.V("cwnd"))), lang.C(1<<30))
	prog := lang.NewProgram().
		MeasureFold(fold).
		WaitRtts(1).
		Cwnd(update).
		Report().
		MustBuild()
	f.Install(prog)
}

// OnMeasurement implements core.Alg: nothing to do — control runs in the
// datapath; the reports are telemetry.
func (s *SynthesizedAIMD) OnMeasurement(f *core.Flow, m core.Measurement) {}

// OnUrgent implements core.Alg: the synthesized program already reacts to
// loss through the fold (within one RTT); urgents need no extra action.
// A timeout reinstalls, resetting any stale state.
func (s *SynthesizedAIMD) OnUrgent(f *core.Flow, u core.UrgentEvent) {}
