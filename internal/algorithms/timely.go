package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/proto"
)

// Timely is CCP TIMELY: RTT-gradient rate control. The agent differentiates
// consecutive smoothed-RTT reports and adjusts the pacing rate — additive
// increase when the gradient is non-positive, multiplicative decrease
// proportional to the gradient when RTTs are rising. Rate updates go to the
// datapath as direct SetRate commands on the default per-RTT reporting
// program (Table 1: measurement = RTT, control = Rate).
type Timely struct {
	mss      float64
	rate     float64 // bytes/sec
	prevRTT  float64 // seconds
	minRTT   float64
	gradient float64 // EWMA-filtered normalized gradient

	// TIMELY parameters (scaled from the paper's datacenter defaults to
	// the simulated WAN regime).
	addStep  float64 // additive increment, bytes/sec
	betaMul  float64 // multiplicative decrease factor
	tLow     float64 // seconds; below this, always increase
	tHigh    float64 // seconds; above this, always decrease
	ewmaGain float64
}

// NewTimely returns a CCP TIMELY instance.
func NewTimely() *Timely {
	return &Timely{
		betaMul:  0.8,
		ewmaGain: 0.3,
	}
}

// Name implements core.Alg.
func (t *Timely) Name() string { return "timely" }

// Init implements core.Alg.
func (t *Timely) Init(f *core.Flow) {
	t.mss = float64(f.Info.MSS)
	t.rate = float64(f.Info.InitCwnd) * 10 // generous initial probe
	t.addStep = 10 * t.mss
	t.prevRTT = 0
	t.minRTT = 0
	f.SetRate(t.rate)
}

// OnMeasurement implements core.Alg: one gradient step per report.
func (t *Timely) OnMeasurement(f *core.Flow, m core.Measurement) {
	rtt := m.GetOr("rtt", 0)
	if rtt <= 0 {
		return
	}
	if t.minRTT == 0 || rtt < t.minRTT {
		t.minRTT = rtt
	}
	if t.tLow == 0 {
		// Derive thresholds from the observed floor: tLow = 1.2×minRTT,
		// tHigh = 3×minRTT.
		t.tLow = 1.2 * t.minRTT
		t.tHigh = 3 * t.minRTT
	}
	if t.prevRTT == 0 {
		t.prevRTT = rtt
		return
	}
	grad := (rtt - t.prevRTT) / t.minRTT
	t.prevRTT = rtt
	t.gradient = (1-t.ewmaGain)*t.gradient + t.ewmaGain*grad

	switch {
	case rtt < t.tLow:
		t.rate += t.addStep
	case rtt > t.tHigh:
		t.rate *= 1 - t.betaMul*(1-t.tHigh/rtt)
	case t.gradient <= 0:
		t.rate += t.addStep
	default:
		t.rate *= 1 - t.betaMul*minF(t.gradient, 0.25)
	}
	t.rate = maxF(t.rate, 2*t.mss)
	f.SetRate(t.rate)
}

// OnUrgent implements core.Alg: TIMELY is delay-based; on loss it backs off
// multiplicatively.
func (t *Timely) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	switch u.Kind {
	case proto.UrgentDupAck, proto.UrgentECN:
		t.rate = maxF(t.rate*0.7, 2*t.mss)
	case proto.UrgentTimeout:
		t.rate = maxF(t.rate*0.5, 2*t.mss)
	}
	f.SetRate(t.rate)
}
