package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/proto"
)

// NewRenoAlg is CCP NewReno, the Figure 4 workload: Reno dynamics with one
// window halving per recovery episode. Episode boundaries are inferred from
// report progress: a new loss urgent opens an episode, and the episode ends
// once the acked byte count advances past the window outstanding at entry.
type NewRenoAlg struct {
	cwnd     float64
	ssthresh float64
	mss      float64

	inRecovery   bool
	recoverAcked float64 // bytes still to be acked before recovery exits
}

// NewNewReno returns a CCP NewReno instance.
func NewNewReno() *NewRenoAlg { return &NewRenoAlg{} }

// Name implements core.Alg.
func (n *NewRenoAlg) Name() string { return "newreno" }

// Init implements core.Alg.
func (n *NewRenoAlg) Init(f *core.Flow) {
	n.mss = float64(f.Info.MSS)
	n.cwnd = float64(f.Info.InitCwnd)
	n.ssthresh = 1 << 30
	n.inRecovery = false
	f.SetCwnd(int(n.cwnd))
}

// OnMeasurement implements core.Alg.
func (n *NewRenoAlg) OnMeasurement(f *core.Flow, m core.Measurement) {
	acked := m.GetOr("acked", 0)
	if acked <= 0 {
		return
	}
	if n.inRecovery {
		n.recoverAcked -= acked
		if n.recoverAcked <= 0 {
			n.inRecovery = false
		} else {
			return // hold the window at ssthresh through recovery
		}
	}
	if n.cwnd < n.ssthresh {
		n.cwnd += acked
		if n.cwnd > n.ssthresh {
			n.cwnd = n.ssthresh
		}
	} else {
		n.cwnd += n.mss * (acked / n.cwnd)
	}
	f.SetCwnd(int(n.cwnd))
}

// OnUrgent implements core.Alg.
func (n *NewRenoAlg) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	switch u.Kind {
	case proto.UrgentDupAck, proto.UrgentECN:
		if n.inRecovery {
			return // one halving per episode
		}
		n.inRecovery = true
		n.recoverAcked = n.cwnd
		n.ssthresh = maxF(n.cwnd/2, 2*n.mss)
		n.cwnd = n.ssthresh
	case proto.UrgentTimeout:
		n.inRecovery = false
		n.ssthresh = maxF(n.cwnd/2, 2*n.mss)
		n.cwnd = n.mss
	}
	f.SetCwnd(int(n.cwnd))
}
