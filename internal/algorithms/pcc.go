package algorithms

import (
	"math"

	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// PCC is CCP PCC: utility-based rate selection. The agent installs a
// control program that runs two consecutive measurement intervals — one at
// r(1+ε), one at r(1−ε) — with a Report after each, so the datapath aligns
// the A/B trial boundaries exactly (the synchronization §2.1 argues control
// programs exist for). The agent scores each interval with PCC's utility
// function (throughput with a steep loss penalty, after Allegro's
// u = T^0.9 − 11.35·T·L) and moves the base rate toward the winner, with
// momentum on consecutive same-direction moves.
type PCC struct {
	mss  float64
	rate float64 // base rate r, bytes/sec
	eps  float64 // probe amplitude

	phase    int // 0: awaiting the (1+ε) report, 1: awaiting the (1−ε) report
	utilHigh float64
	momentum float64 // consecutive same-direction amplification
	lastDir  int
	minRate  float64
}

// Trial intervals span several RTTs so each carries enough packets for the
// utility comparison to be meaningful even at low rates.
const pccIntervalRtts = 2.0

// NewPCC returns a CCP PCC instance.
func NewPCC() *PCC {
	return &PCC{eps: 0.05, momentum: 1}
}

// Name implements core.Alg.
func (p *PCC) Name() string { return "pcc" }

// Init implements core.Alg.
func (p *PCC) Init(f *core.Flow) {
	p.mss = float64(f.Info.MSS)
	p.rate = float64(f.Info.InitCwnd) * 20
	p.minRate = 2 * p.mss
	p.phase = 0
	p.momentum = 1
	p.install(f)
}

// install programs the two-interval A/B trial.
func (p *PCC) install(f *core.Flow) {
	// The window is a safety cap, not the control: 2.5 trial-rate BDPs,
	// evaluated against the live smoothed RTT in the datapath. The outer Min
	// keeps the write inside the datapath cwnd clamp, which the install-time
	// verifier demands be explicit.
	cwndCap := lang.Min(lang.Max(
		lang.Mul(lang.C(p.rate*2.5), lang.V("srtt")),
		lang.C(8*p.mss)), lang.C(1<<30))
	prog := lang.NewProgram().
		MeasureEWMA().
		Cwnd(cwndCap).
		Rate(lang.C(p.rate * (1 + p.eps))).WaitRtts(pccIntervalRtts).Report().
		Cwnd(cwndCap).
		Rate(lang.C(p.rate * (1 - p.eps))).WaitRtts(pccIntervalRtts).Report().
		MustBuild()
	f.Install(prog)
	p.phase = 0
}

// utility is PCC Allegro's objective: u = T^0.9 − 11.35·T·L, with T the
// interval's goodput (bytes acked) and L the loss fraction.
func (p *PCC) utility(acked, lost float64) float64 {
	total := acked + lost
	if total <= 0 {
		return 0
	}
	lossFrac := lost / total
	return math.Pow(acked, 0.9) - 11.35*acked*lossFrac
}

// OnMeasurement implements core.Alg: score the finished interval; after the
// second interval, pick a direction.
func (p *PCC) OnMeasurement(f *core.Flow, m core.Measurement) {
	acked := m.GetOr("acked", 0)
	lost := m.GetOr("lost", 0)
	u := p.utility(acked, lost)

	if p.phase == 0 {
		p.utilHigh = u
		p.phase = 1
		return
	}
	// Second (1−ε) interval finished: move toward the better direction.
	dir := 1 // ties probe upward: unused capacity is the common case
	if u > p.utilHigh {
		dir = -1
	}
	// Capacity guard: when the measured delivery rate falls well short of
	// the trial rate, the link is saturated — don't keep probing upward on
	// stale loss signals (loss detection lags the overshoot).
	if rcv := m.GetOr("rcv_rate", 0); rcv > 0 && rcv < 0.7*p.rate {
		dir = -1
		p.momentum = 1
	}
	if dir == p.lastDir {
		p.momentum = minF(p.momentum*2, 8)
	} else {
		p.momentum = 1
	}
	p.lastDir = dir
	p.rate *= 1 + float64(dir)*p.eps*p.momentum
	p.rate = maxF(p.rate, p.minRate)
	p.install(f)
}

// OnUrgent implements core.Alg: PCC folds loss into utility; a timeout
// indicates the trial rate badly overshot.
func (p *PCC) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	if u.Kind == proto.UrgentTimeout {
		p.rate = maxF(p.rate/2, p.minRate)
		p.momentum = 1
		p.lastDir = 0
		p.install(f)
	}
}
