package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/proto"
)

// GroupCM is the Congestion-Manager-style aggregate controller §5 gestures
// at ("CCP makes it possible to implement congestion control ... for
// groups of flows that share common bottlenecks"). One shared AIMD control
// loop governs an aggregate rate budget; each member flow is paced at an
// equal share. Flows join at Init and leave at Release; the budget adapts
// to the *group's* combined loss and delivery signals, so N flows to one
// bottleneck behave like one, instead of N competing loops.
//
// Use NewGroupCM to build a factory whose instances share one controller:
//
//	reg.Register("cm", algorithms.NewGroupCM())
type GroupCM struct {
	mss     float64
	rate    float64 // aggregate budget, bytes/sec
	minRate float64
	flows   map[uint32]*core.Flow
	// holdUntil is the report count before which further decreases are
	// suppressed (~3 RTT rounds): one loss burst, one aggregate cut.
	holdUntil int
	reports   int
}

// NewGroupCM returns an AlgFactory whose per-flow instances share one
// aggregate controller.
func NewGroupCM() core.AlgFactory {
	cm := &GroupCM{flows: make(map[uint32]*core.Flow)}
	return func() core.Alg { return &cmMember{cm: cm} }
}

// join admits a flow and rebalances.
func (cm *GroupCM) join(f *core.Flow) {
	if cm.mss == 0 {
		cm.mss = float64(f.Info.MSS)
		cm.minRate = 2 * cm.mss
		cm.rate = float64(f.Info.InitCwnd) * 10
	}
	cm.flows[f.Info.SID] = f
	cm.rebalance()
}

// leave removes a flow and rebalances the remainder.
func (cm *GroupCM) leave(f *core.Flow) {
	delete(cm.flows, f.Info.SID)
	cm.rebalance()
}

// rebalance paces every member at an equal share of the budget.
func (cm *GroupCM) rebalance() {
	n := len(cm.flows)
	if n == 0 {
		return
	}
	share := cm.rate / float64(n)
	for _, f := range cm.flows {
		f.SetRate(share)
		// The window is a safety cap well above the paced rate's BDP.
		f.SetCwnd(int(share)) // one second of data at the share rate
	}
}

// onMeasurement runs the aggregate AIMD: any member's report advances the
// group loop.
func (cm *GroupCM) onMeasurement(m core.Measurement) {
	cm.reports++
	// Advance roughly once per member per round: additive increase scaled
	// down by group size so the aggregate grows one "flow's worth" per RTT.
	n := len(cm.flows)
	if n == 0 {
		return
	}
	if m.GetOr("acked", 0) <= 0 {
		return
	}
	if lost := m.GetOr("lost", 0); lost > 0 && cm.reports >= cm.holdUntil {
		cm.cut(0.7)
	} else {
		cm.rate += 2 * cm.mss * 10 / float64(n)
	}
	cm.rebalance()
}

// cut applies one multiplicative decrease and opens the hold-down window.
func (cm *GroupCM) cut(factor float64) {
	cm.rate = maxF(cm.rate*factor, cm.minRate)
	cm.holdUntil = cm.reports + 3*len(cm.flows)
}

// onUrgent reacts at most once per hold-down window to member loss events.
func (cm *GroupCM) onUrgent(u core.UrgentEvent) {
	if u.Kind == proto.UrgentTimeout {
		cm.cut(0.5)
		cm.rebalance()
		return
	}
	if cm.reports >= cm.holdUntil {
		cm.cut(0.7)
		cm.rebalance()
	}
}

// Rate returns the current aggregate budget (bytes/sec), for tests.
func (cm *GroupCM) Rate() float64 { return cm.rate }

// Members returns the number of flows under management.
func (cm *GroupCM) Members() int { return len(cm.flows) }

// cmMember is the thin per-flow shim the registry instantiates.
type cmMember struct {
	cm *GroupCM
}

// Name implements core.Alg.
func (m *cmMember) Name() string { return "cm" }

// Init implements core.Alg.
func (m *cmMember) Init(f *core.Flow) { m.cm.join(f) }

// OnMeasurement implements core.Alg.
func (m *cmMember) OnMeasurement(f *core.Flow, meas core.Measurement) {
	m.cm.onMeasurement(meas)
}

// OnUrgent implements core.Alg.
func (m *cmMember) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	m.cm.onUrgent(u)
}

// Release implements core.Releaser.
func (m *cmMember) Release(f *core.Flow) { m.cm.leave(f) }
