package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/proto"
)

// Reno is CCP Reno: slow start and AIMD congestion avoidance computed in
// user space from per-RTT EWMA reports, with the window pushed to the
// datapath via direct SetCwnd commands (the paper's "issuing commands from
// the CCP each RTT" mode — no custom program needed beyond the default).
type Reno struct {
	cwnd     float64 // bytes, agent-side shadow
	ssthresh float64
	mss      float64
	// cutSinceReport limits multiplicative decreases to one per report, so
	// a burst of urgent loss events between reports counts once.
	cutSinceReport bool
}

// NewReno returns a CCP Reno instance. (The constructor name collides
// conceptually with the NewReno algorithm; see NewNewReno for that one.)
func NewReno() *Reno { return &Reno{} }

// Name implements core.Alg.
func (r *Reno) Name() string { return "reno" }

// Init implements core.Alg.
func (r *Reno) Init(f *core.Flow) {
	r.mss = float64(f.Info.MSS)
	r.cwnd = float64(f.Info.InitCwnd)
	r.ssthresh = 1 << 30
	f.SetCwnd(int(r.cwnd))
}

// OnMeasurement implements core.Alg: one window update per report.
func (r *Reno) OnMeasurement(f *core.Flow, m core.Measurement) {
	r.cutSinceReport = false
	acked := m.GetOr("acked", 0)
	if acked <= 0 {
		return
	}
	if r.cwnd < r.ssthresh {
		// Slow start: cwnd grows by the bytes acked.
		r.cwnd += acked
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
	} else {
		// Congestion avoidance: one MSS per cwnd's worth of ACKs.
		r.cwnd += r.mss * (acked / r.cwnd)
	}
	f.SetCwnd(int(r.cwnd))
}

// OnUrgent implements core.Alg: halve on loss, collapse on timeout.
func (r *Reno) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	switch u.Kind {
	case proto.UrgentDupAck, proto.UrgentECN:
		if r.cutSinceReport {
			return
		}
		r.cutSinceReport = true
		r.ssthresh = maxF(r.cwnd/2, 2*r.mss)
		r.cwnd = r.ssthresh
	case proto.UrgentTimeout:
		r.ssthresh = maxF(r.cwnd/2, 2*r.mss)
		r.cwnd = r.mss
	}
	f.SetCwnd(int(r.cwnd))
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
