package algorithms

import (
	"github.com/ccp-repro/ccp/internal/core"
	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/proto"
)

// XCP is an XCP-style explicit-rate scheme — Table 1's "packet header"
// measurement row. Routers stamp each packet with the flow's allowed rate
// (netsim links expose an OnDequeue hook for this; see netsim.FairStamper);
// receivers echo it; and the datapath adopts it directly via a control
// program whose Rate expression references the fold register holding the
// latest header value. The rate therefore tracks router feedback entirely
// inside the datapath, with the agent only supervising — exactly the
// offload §2.1's control programs were designed for.
type XCP struct {
	mss float64
}

// NewXCP returns an XCP-style instance.
func NewXCP() *XCP { return &XCP{} }

// Name implements core.Alg.
func (x *XCP) Name() string { return "xcp" }

// Init implements core.Alg: install once; the datapath runs autonomously.
func (x *XCP) Init(f *core.Flow) {
	x.mss = float64(f.Info.MSS)
	fold := &lang.FoldSpec{
		Regs: []lang.RegDef{
			{Name: "fb_rate", Init: 0}, // latest router-stamped rate
			{Name: "acked_x", Init: 0},
		},
		Updates: []lang.Assign{
			{Dst: "fb_rate", E: lang.Ite(lang.Gt(lang.V("pkt.hdr_rate"), lang.C(0)),
				lang.V("pkt.hdr_rate"), lang.V("fb_rate"))},
			{Dst: "acked_x", E: lang.Add(lang.V("acked_x"), lang.V("pkt.acked"))},
		},
	}
	// Gather feedback for an RTT, adopt it, then report: the Rate
	// instruction must precede Report, which resets the fold registers.
	prog := lang.NewProgram().
		MeasureFold(fold).
		WaitRtts(1).
		Rate(lang.Ite(lang.Gt(lang.V("fb_rate"), lang.C(0)),
			lang.V("fb_rate"),
			lang.Max(lang.V("rate"), lang.C(float64(2*f.Info.InitCwnd))))).
		Report().
		MustBuild()
	f.Install(prog)
}

// OnMeasurement implements core.Alg: nothing to do — control is in the
// datapath; the agent could log or audit here.
func (x *XCP) OnMeasurement(f *core.Flow, m core.Measurement) {}

// OnUrgent implements core.Alg: on timeout, reset to a conservative rate by
// reinstalling (clearing stale feedback).
func (x *XCP) OnUrgent(f *core.Flow, u core.UrgentEvent) {
	if u.Kind == proto.UrgentTimeout {
		x.Init(f)
	}
}
