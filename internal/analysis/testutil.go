package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches `// want "re"` / `// want `+"`re`"+“ expectation
// comments, analysistest-style: each quoted pattern on an offending line
// must be matched by exactly one diagnostic reported on that line.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// RunTest loads testdata/src/<pkg> relative to the analysis package and
// runs analyzer over it, comparing diagnostics against `// want`
// annotations. Lines without annotations must produce no diagnostics.
func RunTest(t *testing.T, analyzer *Analyzer, pkg string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	loader.RegisterDir(pkg, dir)
	p, err := loader.LoadDir(pkg, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", pkg, err)
	}
	diags, err := Run([]*Package{p}, []*Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s: %v", analyzer.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[key][]bool{}
	for _, d := range diags {
		k := key{d.File, d.Line}
		ws := wants[k]
		if matched[k] == nil && len(ws) > 0 {
			matched[k] = make([]bool, len(ws))
		}
		found := false
		for i, w := range ws {
			if !matched[k][i] && w.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", relPos(d.Pos), d.Message)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(k.file), k.line, w)
			}
		}
	}
}

func relPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
