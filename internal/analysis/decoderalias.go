package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DecoderAlias enforces the proto.Decoder aliasing contract: everything
// returned by Decoder.Unmarshal — and everything derived from it (type
// assertions, field views like Report.Fields or Install.Prog, batch
// sub-messages) — is backed by the decoder's scratch storage and is
// invalidated by the next Unmarshal on the same decoder. Values that must
// outlive the next decode go through proto.Clone.
//
// The same discipline governs zero-copy ring frames: RecvFrame and
// TryRecvFrame methods whose first result is a *bufpool.Buf (the
// shmring.Endpoint receive path and the ipc.FrameRecver/TryRecver
// interfaces it is used through) hand out views of ring memory or
// endpoint-owned scratch that the next receive on the same endpoint
// recycles. A view — or bytes derived from it — retained across the next
// receive is reported exactly like decoder scratch retained across the
// next Unmarshal.
//
// Two conservative, intra-procedural checks:
//
//  1. Straight-line staleness: a decoder-derived value used after a
//     subsequent Unmarshal on the same decoder, without an intervening
//     proto.Clone, is reported.
//  2. Loop retention: inside a loop whose body calls Unmarshal, storing a
//     non-Cloned derived value into anything declared outside the loop
//     (append target, assignment, map store, channel send) retains scratch
//     across iterations and is reported.
//
// Passing a derived value to a function call is allowed: the Handler
// contract is "borrowed for the duration of the call".
var DecoderAlias = &Analyzer{
	Name: "decoderalias",
	Doc:  "check that proto.Decoder results are not retained across the next Unmarshal without proto.Clone",
	Run:  runDecoderAlias,
}

func runDecoderAlias(pass *Pass) error {
	forEachFuncBody(pass.Files, func(body *ast.BlockStmt) {
		d := &aliasScan{pass: pass}
		d.stmts(body.List, aliasState{
			derived: make(map[types.Object]types.Object),
			stale:   make(map[types.Object]staleSrc),
		})
	})
	return nil
}

type aliasState struct {
	// derived maps a variable to the scratch owner whose storage it
	// aliases: the decoder of the Unmarshal call, or the endpoint of the
	// RecvFrame/TryRecvFrame call (the receiver variable or field).
	derived map[types.Object]types.Object
	// stale maps a derived variable to the invalidating call.
	stale map[types.Object]staleSrc
}

// staleSrc records the call that invalidated a derived value, so the
// diagnostic can name it ("Unmarshal" recycles decoder scratch;
// "RecvFrame"/"TryRecvFrame" recycle ring memory).
type staleSrc struct {
	pos  token.Pos
	call string
}

func (s aliasState) clone() aliasState {
	c := aliasState{
		derived: make(map[types.Object]types.Object, len(s.derived)),
		stale:   make(map[types.Object]staleSrc, len(s.stale)),
	}
	for k, v := range s.derived {
		c.derived[k] = v
	}
	for k, v := range s.stale {
		c.stale[k] = v
	}
	return c
}

type aliasScan struct {
	pass *Pass
}

func (d *aliasScan) stmts(list []ast.Stmt, st aliasState) {
	for _, s := range list {
		d.stmt(s, st, nil)
	}
}

// loopCtx describes the innermost enclosing loop that contains an
// Unmarshal call, for the retention check.
type loopCtx struct {
	node ast.Node // the ForStmt/RangeStmt
}

func (d *aliasScan) stmt(s ast.Stmt, st aliasState, loop *loopCtx) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range s.List {
			d.stmt(inner, st, loop)
		}
	case *ast.ExprStmt:
		d.checkStale(s.X, st)
		d.noteUnmarshal(s.X, st)
	case *ast.AssignStmt:
		d.assign(s, st, loop)
	case *ast.DeclStmt:
		d.checkStale(s, st)
	case *ast.IfStmt:
		d.stmt(s.Init, st, loop)
		d.checkStale(s.Cond, st)
		d.noteUnmarshal(s.Cond, st)
		d.blockClone(s.Body.List, st, loop)
		if s.Else != nil {
			d.stmt(s.Else, st.clone(), loop)
		}
	case *ast.ForStmt:
		d.stmt(s.Init, st, loop)
		if s.Cond != nil {
			d.checkStale(s.Cond, st)
		}
		inner := st.clone()
		l := d.loopCtxFor(s, s.Body)
		if l == nil {
			l = loop
		}
		d.stmt(s.Post, inner, l)
		for _, b := range s.Body.List {
			d.stmt(b, inner, l)
		}
	case *ast.RangeStmt:
		d.checkStale(s.X, st)
		inner := st.clone()
		// Range variables assigned from a derived expression alias the
		// same scratch (e.g. `for _, sub := range proto.Split(m)`).
		if dec := d.derivedIn(s.X, inner); dec != nil {
			for _, kv := range []ast.Expr{s.Key, s.Value} {
				if id, ok := kv.(*ast.Ident); ok && id.Name != "_" {
					if obj := identObj(d.pass.TypesInfo, id); obj != nil {
						inner.derived[obj] = dec
					}
				}
			}
		}
		l := d.loopCtxFor(s, s.Body)
		if l == nil {
			l = loop
		}
		for _, b := range s.Body.List {
			d.stmt(b, inner, l)
		}
	case *ast.SwitchStmt:
		d.stmt(s.Init, st, loop)
		if s.Tag != nil {
			d.checkStale(s.Tag, st)
		}
		for _, c := range s.Body.List {
			d.blockClone(c.(*ast.CaseClause).Body, st, loop)
		}
	case *ast.TypeSwitchStmt:
		d.stmt(s.Init, st, loop)
		// `switch v := m.(type)`: each clause's implicit v aliases m.
		var srcDec types.Object
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			d.checkStale(as.Rhs[0], st)
			srcDec = d.derivedIn(as.Rhs[0], st)
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			d.checkStale(es.X, st)
			srcDec = d.derivedIn(es.X, st)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			inner := st.clone()
			if srcDec != nil {
				if obj := d.pass.TypesInfo.Implicits[cc]; obj != nil {
					inner.derived[obj] = srcDec
				}
			}
			for _, b := range cc.Body {
				d.stmt(b, inner, loop)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			inner := st.clone()
			d.stmt(cc.Comm, inner, loop)
			for _, b := range cc.Body {
				d.stmt(b, inner, loop)
			}
		}
	case *ast.SendStmt:
		d.checkStale(s, st)
		d.retention(s.Chan, s.Value, s.Pos(), st, loop, "sent on a channel")
	case *ast.LabeledStmt:
		d.stmt(s.Stmt, st, loop)
	default:
		d.checkStale(s, st)
		d.noteUnmarshalIn(s, st)
	}
}

func (d *aliasScan) blockClone(list []ast.Stmt, st aliasState, loop *loopCtx) {
	inner := st.clone()
	for _, s := range list {
		d.stmt(s, inner, loop)
	}
}

// loopCtxFor returns a retention context when the loop body contains an
// Unmarshal or ring-receive call (syntactically), meaning scratch or ring
// memory is recycled every iteration.
func (d *aliasScan) loopCtxFor(loop ast.Node, body *ast.BlockStmt) *loopCtx {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, isInv := d.invalidatorCall(call); isInv {
				found = true
			}
		}
		return true
	})
	if !found {
		return nil
	}
	return &loopCtx{node: loop}
}

// assign handles derivation, cleansing, staleness, and retention for one
// assignment statement.
func (d *aliasScan) assign(s *ast.AssignStmt, st aliasState, loop *loopCtx) {
	for _, r := range s.Rhs {
		d.checkStale(r, st)
	}
	// An Unmarshal call on the RHS invalidates everything previously
	// derived from that decoder — before the LHS acquires the new result.
	for _, r := range s.Rhs {
		d.noteUnmarshalIn(r, st)
	}
	// Retention into outer state while inside an Unmarshal loop.
	if loop != nil && len(s.Lhs) == len(s.Rhs) {
		for i, r := range s.Rhs {
			d.retention(s.Lhs[i], r, s.Pos(), st, loop, "stored outside the loop")
		}
	}
	// Derivation / cleansing of LHS variables.
	if len(s.Rhs) == 1 {
		rhs := s.Rhs[0]
		dec := d.unmarshalResultDec(rhs, st)
		if dec == nil && !isCloneCall(d.pass.TypesInfo, rhs) {
			dec = d.derivedIn(rhs, st)
		}
		for _, l := range s.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := identObj(d.pass.TypesInfo, id)
			if obj == nil {
				continue
			}
			delete(st.stale, obj)
			if dec != nil && aliasCarrier(obj.Type()) {
				st.derived[obj] = dec
			} else {
				delete(st.derived, obj)
			}
		}
	} else {
		for _, l := range s.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				if obj := identObj(d.pass.TypesInfo, id); obj != nil {
					delete(st.derived, obj)
					delete(st.stale, obj)
				}
			}
		}
	}
}

// retention reports a derived, non-Cloned value escaping the Unmarshal
// loop via dst (an assignment target, append target, or channel).
func (d *aliasScan) retention(dst, src ast.Expr, pos token.Pos, st aliasState, loop *loopCtx, how string) {
	if loop == nil {
		return
	}
	if isCloneCall(d.pass.TypesInfo, src) {
		return
	}
	// `outer = append(outer, v)` needs no special case: v is found inside
	// the append call and the target root is the assignment LHS.
	dec := d.derivedIn(src, st)
	if dec == nil {
		return
	}
	root := rootIdent(dst)
	if root == nil {
		return
	}
	obj := identObj(d.pass.TypesInfo, root)
	if obj == nil || d.declaredInside(obj, loop.node) {
		return
	}
	if isNamedType(dec.Type(), "proto", "Decoder") {
		d.pass.Reportf(pos, "decoder-owned value %s across iterations of a loop that calls Unmarshal; it aliases scratch reused by the next decode — proto.Clone it first", how)
	} else {
		d.pass.Reportf(pos, "ring-frame view %s across iterations of a loop that receives frames; it aliases ring memory recycled by the next receive — copy the bytes (or proto.Clone the message) first", how)
	}
}

// declaredInside reports whether obj's declaration lies within node.
func (d *aliasScan) declaredInside(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// checkStale reports uses of stale variables inside n.
func (d *aliasScan) checkStale(n ast.Node, st aliasState) {
	if n == nil || len(st.stale) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := d.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if src, ok := st.stale[obj]; ok {
			if src.call == "Unmarshal" {
				d.pass.Reportf(id.Pos(), "%s aliases decoder scratch invalidated by the Unmarshal at %s; Clone it before the next decode",
					obj.Name(), d.pass.Fset.Position(src.pos))
			} else {
				d.pass.Reportf(id.Pos(), "%s aliases ring memory invalidated by the %s at %s; frame views are only valid until the next receive — copy the bytes out first",
					obj.Name(), src.call, d.pass.Fset.Position(src.pos))
			}
			delete(st.stale, obj)
		}
		return true
	})
}

// noteUnmarshal marks variables derived from a scratch owner as stale when
// e is an invalidating call (Unmarshal, RecvFrame, TryRecvFrame) on it.
func (d *aliasScan) noteUnmarshal(e ast.Expr, st aliasState) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	src, name, isInv := d.invalidatorCall(call)
	if !isInv || src == nil {
		return
	}
	for v, from := range st.derived {
		if from == src {
			st.stale[v] = staleSrc{call.Pos(), name}
			delete(st.derived, v)
		}
	}
}

// noteUnmarshalIn applies noteUnmarshal to every call inside n.
func (d *aliasScan) noteUnmarshalIn(n ast.Node, st aliasState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			d.noteUnmarshal(call, st)
		}
		return true
	})
}

// unmarshalCall matches `recv.Unmarshal(...)` where recv's type is
// proto.Decoder, returning the decoder's identity object (the receiver
// variable, or the field object for selector receivers like l.dec).
func (d *aliasScan) unmarshalCall(call *ast.CallExpr) (types.Object, bool) {
	fn := calleeFunc(d.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Unmarshal" {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isNamedType(sig.Recv().Type(), "proto", "Decoder") {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, true
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return d.pass.TypesInfo.Uses[x], true
	case *ast.SelectorExpr:
		return d.pass.TypesInfo.Uses[x.Sel], true
	}
	return nil, true
}

// unmarshalResultDec returns the scratch-owner object when rhs is an
// Unmarshal or ring-receive call, i.e. the LHS is a freshly derived value.
func (d *aliasScan) unmarshalResultDec(rhs ast.Expr, st aliasState) types.Object {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil
	}
	src, _, isInv := d.invalidatorCall(call)
	if !isInv {
		return nil
	}
	return src
}

// invalidatorCall matches the calls that recycle previously handed-out
// storage: Decoder.Unmarshal, and RecvFrame/TryRecvFrame methods whose
// first result is a *bufpool.Buf (shmring.Endpoint and the
// ipc.FrameRecver/TryRecver interfaces). Returns the receiver's identity
// object and the call name.
func (d *aliasScan) invalidatorCall(call *ast.CallExpr) (types.Object, string, bool) {
	if dec, isUn := d.unmarshalCall(call); isUn {
		return dec, "Unmarshal", true
	}
	return d.ringRecvCall(call)
}

// ringRecvCall matches `recv.RecvFrame()` / `recv.TryRecvFrame()` where the
// method's first result is a *bufpool.Buf. Package-level helpers (the
// ipc.RecvFrame convenience wrapper) are deliberately excluded: without a
// receiver there is no per-endpoint identity to key invalidation on.
func (d *aliasScan) ringRecvCall(call *ast.CallExpr) (types.Object, string, bool) {
	fn := calleeFunc(d.pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "RecvFrame" && fn.Name() != "TryRecvFrame") {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() == 0 ||
		!isNamedType(sig.Results().At(0).Type(), "bufpool", "Buf") {
		return nil, "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, fn.Name(), true
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return d.pass.TypesInfo.Uses[x], fn.Name(), true
	case *ast.SelectorExpr:
		return d.pass.TypesInfo.Uses[x.Sel], fn.Name(), true
	}
	return nil, fn.Name(), true
}

// derivedIn returns the decoder object when expr mentions any derived
// variable (outside a Clone call), or nil.
func (d *aliasScan) derivedIn(e ast.Expr, st aliasState) types.Object {
	if e == nil || len(st.derived) == 0 {
		return nil
	}
	var dec types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if isCloneCall(d.pass.TypesInfo, call) {
				return false
			}
			// A call that returns only scalars (m.FlowSID()) copies data
			// out of the message; its result carries no alias even though
			// a derived variable appears inside.
			if tv, ok := d.pass.TypesInfo.Types[call]; ok && tv.Type != nil && !aliasCarrier(tv.Type) {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if from, ok := st.derived[d.pass.TypesInfo.Uses[id]]; ok && dec == nil {
				dec = from
			}
		}
		return true
	})
	return dec
}

// aliasCarrier reports whether a value of type t can alias decoder scratch:
// pointers, interfaces, slices, and structs with such fields. Plain scalars
// and strings copied out of a message are safe.
func aliasCarrier(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map, *types.Chan:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasCarrier(u.Field(i).Type()) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// isCloneCall matches proto.Clone(...) and method clones like m.Clone().
func isCloneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "Clone"
}

// identObj resolves an identifier to its variable object (use or def).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}
