// Package analysis is a small, self-contained reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, diagnostics,
// `// want`-annotated testdata) used to machine-check the invariants the
// hot paths of this repo rely on but the compiler cannot see:
//
//   - bufrelease: a bufpool.Buf has exactly one owner and one Release
//     (use-after-Release, double-Release, leaked pooled frames).
//   - decoderalias: proto.Decoder results are invalid after the next
//     Unmarshal on the same decoder unless proto.Clone'd.
//   - simdeterminism: the simulator and native-CC packages must stay
//     bit-identical (no wall clock, global rand, goroutines, or map-order
//     dependent event emission).
//   - lockorder: Lock without a matching Unlock/defer, straight-line
//     double-Lock, RWMutex write-lock upgrades, and inconsistent
//     cross-function acquisition order.
//   - dslverify: statically-constructed datapath programs (lang builder
//     chains) must pass the absint Install-gate verifier.
//
// The upstream x/tools module is deliberately not a dependency: the
// analyzers only need parsed+type-checked packages, which the standard
// library provides (go/parser, go/types, and the source importer). See
// load.go for the loader.
//
// Analyzers are conservative by construction — intra-procedural, linear
// control flow, branch state discarded — so they report only what is
// certainly (or near-certainly) a violation and stay zero-false-positive
// on the existing tree. Code that intentionally breaks an invariant (for
// example the wall-clock RealClock in netsim) carries a
//
//	//lint:ownership <reason>
//
// comment on the offending line or the line above it, which suppresses
// every diagnostic for that line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of the invariant it enforces.
	Doc string
	// Run applies the analyzer to one package, reporting violations via
	// pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ownershipDirective is the escape-hatch comment prefix: a line comment
// beginning with it allowlists its own line and the line below.
const ownershipDirective = "//lint:ownership"

// suppressedLines returns, per filename, the set of line numbers covered by
// a //lint:ownership directive in the given files.
func suppressedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	sup := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ownershipDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := sup[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					sup[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return sup
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position. Diagnostics on lines carrying (or
// directly below) a //lint:ownership comment are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := suppressedLines(pkg.Fset, pkg.Files)
		raw, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		for _, d := range raw {
			if m := sup[d.File]; m != nil && m[d.Line] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sortDiags(diags)
	return diags, nil
}

// runAnalyzers applies analyzers to one package, returning every diagnostic
// before directive suppression.
func runAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		var out []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &out,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		raw = append(raw, out...)
	}
	return raw, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// ownershipDir is one //lint:ownership directive occurrence.
type ownershipDir struct {
	pos    token.Position
	reason string
}

// RunAll applies the full analyzer suite plus directive hygiene: every
// //lint:ownership comment must carry a non-empty reason, and must actually
// suppress at least one diagnostic — an allowlist entry that suppresses
// nothing is stale (the code it excused was fixed or moved) and rots into
// a blanket waiver for whatever lands on that line next. Hygiene findings
// are reported under the analyzer name "ownership".
func RunAll(pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		raw, err := runAnalyzers(pkg, All())
		if err != nil {
			return nil, err
		}
		// Collect the package's directives with the line spans they cover.
		var dirs []ownershipDir
		used := map[int]bool{} // index into dirs
		covers := map[string]map[int]int{}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ownershipDirective) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					reason := strings.TrimSpace(strings.TrimPrefix(c.Text, ownershipDirective))
					m := covers[pos.Filename]
					if m == nil {
						m = make(map[int]int)
						covers[pos.Filename] = m
					}
					m[pos.Line] = len(dirs)
					m[pos.Line+1] = len(dirs)
					dirs = append(dirs, ownershipDir{pos: pos, reason: reason})
				}
			}
		}
		for _, d := range raw {
			if m := covers[d.File]; m != nil {
				if idx, ok := m[d.Line]; ok {
					used[idx] = true
					continue
				}
			}
			diags = append(diags, d)
		}
		for i, dir := range dirs {
			if dir.reason == "" {
				diags = append(diags, Diagnostic{
					Analyzer: "ownership",
					Pos:      dir.pos,
					File:     dir.pos.Filename,
					Line:     dir.pos.Line,
					Col:      dir.pos.Column,
					Message:  "ownership directive has no reason: state why the invariant is intentionally broken",
				})
			}
			if !used[i] {
				diags = append(diags, Diagnostic{
					Analyzer: "ownership",
					Pos:      dir.pos,
					File:     dir.pos.Filename,
					Line:     dir.pos.Line,
					Col:      dir.pos.Column,
					Message:  "stale ownership directive: it suppresses no diagnostic; remove it",
				})
			}
		}
	}
	sortDiags(diags)
	return diags, nil
}

// All returns every analyzer in this suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{BufRelease, DecoderAlias, SimDeterminism, LockOrder, DSLVerify}
}

// --- shared type helpers ---

// pkgLastSegment reports whether the package path's final segment equals
// name ("github.com/x/internal/bufpool" matches "bufpool"). Matching on the
// tail keeps the analyzers working on testdata packages and forks of the
// module path alike.
func pkgLastSegment(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// namedFrom unwraps pointers and aliases down to a named type, or nil.
func namedFrom(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (through pointers) is the named type
// pkgName.typeName, where pkgName matches the final import-path segment.
func isNamedType(t types.Type, pkgName, typeName string) bool {
	n := namedFrom(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == typeName && pkgLastSegment(n.Obj().Pkg().Path(), pkgName)
}

// pkgFuncCall reports whether call invokes the package-level function
// pkgName.funcName (pkgName matched on the import path's final segment),
// returning the resolved *types.Func when it does.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgName, funcName string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Type() != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return false
		}
	}
	return fn.Name() == funcName && pkgLastSegment(fn.Pkg().Path(), pkgName)
}

// calleeFunc resolves the called function object of call, or nil for
// indirect calls, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// rootIdent returns the leftmost identifier of a selector chain (`l` for
// `l.a.b`), or nil when the chain is rooted in a call or index expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
