package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufRelease enforces the bufpool ownership contract: a *bufpool.Buf has
// exactly one owner, is Released exactly once, and is never touched after
// Release. The checks are intra-procedural and linear: state changes inside
// a branch are discarded at the join, so only violations that happen on
// every execution of the enclosing block are reported (zero false positives
// by construction, at the cost of missing cross-branch bugs).
//
// Reported:
//   - use of a Buf variable after an unconditional Release on the same path
//   - a second Release (explicit or via a pending defer) of the same
//     variable on the same path
//   - pooled frames (bufpool.Get, proto.MarshalFrame, ipc.RecvFrame, and
//     the shmring TryRecvFrame poll) whose result is discarded on the spot
//     or overwritten before any Release or handoff: such a frame loses its
//     only owner and leaks from the pool (or, for ring views, permanently
//     stalls the ring's consumer cursor)
var BufRelease = &Analyzer{
	Name: "bufrelease",
	Doc:  "check bufpool.Buf single-owner discipline: no use-after-Release, no double Release, no leaked pooled frames",
	Run:  runBufRelease,
}

func runBufRelease(pass *Pass) error {
	forEachFuncBody(pass.Files, func(body *ast.BlockStmt) {
		b := &bufScan{pass: pass}
		b.stmts(body.List, bufState{
			released: make(map[types.Object]token.Pos),
			deferred: make(map[types.Object]token.Pos),
			fresh:    make(map[types.Object]token.Pos),
		})
		b.checkDiscards(body)
	})
	return nil
}

// forEachFuncBody invokes fn once per function body in files: every
// FuncDecl body and every FuncLit body, each analyzed independently (a
// literal's statements are not part of its enclosing function's straight
// line — it may run later, or never).
func forEachFuncBody(files []*ast.File, fn func(*ast.BlockStmt)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body)
				}
			case *ast.FuncLit:
				fn(d.Body)
			}
			return true
		})
	}
}

type bufState struct {
	released map[types.Object]token.Pos // unconditionally Released on this path
	deferred map[types.Object]token.Pos // defer x.Release() registered on this path
	// fresh tracks frames acquired from a producer call and not yet
	// consumed (released, handed off, or even read); overwriting such a
	// variable leaks the frame.
	fresh map[types.Object]token.Pos
}

func (s bufState) clone() bufState {
	c := bufState{
		released: make(map[types.Object]token.Pos, len(s.released)),
		deferred: make(map[types.Object]token.Pos, len(s.deferred)),
		fresh:    make(map[types.Object]token.Pos, len(s.fresh)),
	}
	for k, v := range s.released {
		c.released[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	for k, v := range s.fresh {
		c.fresh[k] = v
	}
	return c
}

type bufScan struct {
	pass *Pass
}

func (b *bufScan) stmts(list []ast.Stmt, st bufState) {
	for _, s := range list {
		b.stmt(s, st)
	}
}

// stmt processes one statement against st. Straight-line statements mutate
// st; control-flow bodies get a clone whose mutations are discarded.
func (b *bufScan) stmt(s ast.Stmt, st bufState) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmts(s.List, st)
	case *ast.ExprStmt:
		if obj, pos, ok := b.releaseCall(s.X); ok {
			b.noteRelease(obj, pos, st, false)
			return
		}
		b.checkUses(s.X, st)
	case *ast.DeferStmt:
		if obj, pos, ok := b.releaseCall(s.Call); ok {
			b.noteRelease(obj, pos, st, true)
			return
		}
		b.checkUses(s.Call, st)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			b.checkUses(r, st)
		}
		for _, l := range s.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				if obj := b.objOf(id); obj != nil {
					if pos, ok := st.fresh[obj]; ok {
						b.pass.Reportf(s.Pos(), "%s overwritten before the pooled frame from %s was Released or handed off (frame leak)",
							obj.Name(), b.pass.Fset.Position(pos))
					}
					// Reassignment: the variable now holds a fresh value.
					delete(st.released, obj)
					delete(st.deferred, obj)
					delete(st.fresh, obj)
				}
			} else {
				// Writing through the variable (f.B = ...) reads it first.
				b.checkUses(l, st)
			}
		}
		if len(s.Rhs) == 1 && len(s.Lhs) >= 1 {
			if _, ok := b.frameProducer(s.Rhs[0]); ok {
				if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
					if obj := b.objOf(id); obj != nil {
						st.fresh[obj] = s.Pos()
					}
				}
			}
		}
	case *ast.IfStmt:
		b.stmt(s.Init, st)
		b.checkUses(s.Cond, st)
		b.stmts(s.Body.List, st.clone())
		if s.Else != nil {
			b.stmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		b.stmt(s.Init, st)
		if s.Cond != nil {
			b.checkUses(s.Cond, st)
		}
		inner := st.clone()
		b.stmt(s.Post, inner)
		b.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		b.checkUses(s.X, st)
		inner := st.clone()
		for _, kv := range []ast.Expr{s.Key, s.Value} {
			if id, ok := kv.(*ast.Ident); ok && id.Name != "_" {
				if obj := b.objOf(id); obj != nil {
					delete(inner.released, obj)
					delete(inner.deferred, obj)
					delete(inner.fresh, obj)
				}
			}
		}
		b.stmts(s.Body.List, inner)
	case *ast.SwitchStmt:
		b.stmt(s.Init, st)
		if s.Tag != nil {
			b.checkUses(s.Tag, st)
		}
		for _, c := range s.Body.List {
			b.stmts(c.(*ast.CaseClause).Body, st.clone())
		}
	case *ast.TypeSwitchStmt:
		b.stmt(s.Init, st)
		b.stmt(s.Assign, st)
		for _, c := range s.Body.List {
			b.stmts(c.(*ast.CaseClause).Body, st.clone())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			inner := st.clone()
			b.stmt(cc.Comm, inner)
			b.stmts(cc.Body, inner)
		}
	case *ast.LabeledStmt:
		b.stmt(s.Stmt, st)
	default:
		// ReturnStmt, SendStmt, GoStmt, IncDecStmt, DeclStmt, ...: any
		// mention of a released Buf is a use.
		b.checkUses(s, st)
	}
}

// noteRelease records a Release of obj at pos, reporting a double Release
// when one is already pending on this path.
func (b *bufScan) noteRelease(obj types.Object, pos token.Pos, st bufState, isDefer bool) {
	delete(st.fresh, obj) // releasing consumes the frame
	if prev, ok := st.released[obj]; ok {
		b.pass.Reportf(pos, "%s released twice on this path (first Release at %s)",
			obj.Name(), b.pass.Fset.Position(prev))
		return
	}
	if prev, ok := st.deferred[obj]; ok {
		b.pass.Reportf(pos, "%s released twice: a deferred Release is already registered at %s",
			obj.Name(), b.pass.Fset.Position(prev))
		return
	}
	if isDefer {
		st.deferred[obj] = pos
	} else {
		st.released[obj] = pos
	}
}

// checkUses reports any mention of a Released Buf variable inside n.
// Nested function literals are skipped: they execute on their own schedule
// and are analyzed as their own bodies.
func (b *bufScan) checkUses(n ast.Node, st bufState) {
	if n == nil || (len(st.released) == 0 && len(st.fresh) == 0) {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := b.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		delete(st.fresh, obj) // any mention consumes the frame
		if pos, ok := st.released[obj]; ok {
			b.pass.Reportf(id.Pos(), "use of %s after Release (released at %s)",
				obj.Name(), b.pass.Fset.Position(pos))
			delete(st.released, obj) // one report per release site
		}
		return true
	})
}

// releaseCall matches `x.Release()` where x is a plain identifier of type
// *bufpool.Buf, returning the variable's object and the call position.
func (b *bufScan) releaseCall(e ast.Expr) (types.Object, token.Pos, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, token.NoPos, false
	}
	fn := calleeFunc(b.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Release" {
		return nil, token.NoPos, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isNamedType(sig.Recv().Type(), "bufpool", "Buf") {
		return nil, token.NoPos, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, token.NoPos, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, token.NoPos, false
	}
	obj := b.objOf(id)
	if obj == nil {
		return nil, token.NoPos, false
	}
	return obj, call.Pos(), true
}

// objOf resolves id to the *bufpool.Buf variable it names, or nil.
func (b *bufScan) objOf(id *ast.Ident) types.Object {
	obj := b.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = b.pass.TypesInfo.Defs[id]
	}
	if obj == nil || obj.Type() == nil || !isNamedType(obj.Type(), "bufpool", "Buf") {
		return nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

// frameProducers are the functions whose first result is a frame the caller
// must own: discarding or overwriting it before a Release or handoff leaks
// the frame from the pool. TryRecvFrame is the shmring poll path: a non-nil
// result is a live ring view whose Release is what returns the ring bytes
// to the producer, so dropping it wedges the connection, not just the pool.
var frameProducers = map[string]bool{
	"Get":          true,
	"MarshalFrame": true,
	"RecvFrame":    true,
	"TryRecvFrame": true,
}

// checkDiscards flags frame-producing calls whose result is thrown away on
// the spot: a bare expression statement or an assignment to the blank
// identifier. Such a frame has no owner and can never be Released. (The
// overwrite-while-fresh case is handled path-sensitively in stmt/assign.)
func (b *bufScan) checkDiscards(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own body
		case *ast.ExprStmt:
			if name, ok := b.frameProducer(n.X); ok {
				b.pass.Reportf(n.Pos(), "result of %s discarded: the pooled frame has no owner and can never be Released", name)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			name, ok := b.frameProducer(n.Rhs[0])
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && id.Name == "_" {
				b.pass.Reportf(n.Pos(), "result of %s discarded: the pooled frame has no owner and can never be Released", name)
			}
		}
		return true
	})
}

// frameProducer matches a call to bufpool.Get, proto.MarshalFrame, or any
// RecvFrame whose first result is a *bufpool.Buf.
func (b *bufScan) frameProducer(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(b.pass.TypesInfo, call)
	if fn == nil || !frameProducers[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	if !isNamedType(sig.Results().At(0).Type(), "bufpool", "Buf") {
		return "", false
	}
	return fn.Name(), true
}
