// Package notsim is the scope control for the simdeterminism analyzer:
// the same constructs that are violations inside netsim/tcp/nativecc/
// experiments are legal here, so this package must stay diagnostic-free.
package notsim

import (
	"math/rand"
	"time"
)

func wallClockIsFineHere() time.Time {
	return time.Now()
}

func globalRandIsFineHere() int {
	return rand.Intn(10)
}

func goroutinesAreFineHere(done chan struct{}) {
	go func() { close(done) }()
}

func mapOrderIsFineHere(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}
