// Package netsim is the analysistest corpus for the simdeterminism
// analyzer; its import path ends in "netsim", putting it in scope.
package netsim

import (
	"math/rand"
	"time"
)

type event struct {
	at   time.Duration
	flow uint32
}

type queue struct{ events []event }

func (q *queue) Schedule(e event) {}

// --- positive cases ---

func wallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func wallElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle`
}

func spawns(done chan struct{}) {
	go func() { close(done) }() // want `goroutine spawn in deterministic package`
}

func mapOrderSchedules(q *queue, flows map[uint32]event) {
	for _, e := range flows { // want `map iteration order feeds Schedule call`
		q.Schedule(e)
	}
}

func mapOrderAppends(flows map[uint32]event) []event {
	var out []event
	for _, e := range flows { // want `map iteration order feeds an append`
		out = append(out, e)
	}
	return out
}

func mapOrderSends(ch chan event, flows map[uint32]event) {
	for _, e := range flows { // want `map iteration order feeds a channel send`
		ch <- e
	}
}

// --- negative cases ---

// Seeded randomness threaded explicitly is the blessed pattern.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func usesSeeded(rng *rand.Rand) int {
	return rng.Intn(10) // method on an explicit source: fine
}

// Simulated time is plain arithmetic, not the wall clock.
func simTime(now, dt time.Duration) time.Duration {
	return now + dt
}

// Commutative map folds do not depend on iteration order.
func mapFold(flows map[uint32]event) time.Duration {
	var sum time.Duration
	for _, e := range flows {
		sum += e.at
	}
	return sum
}

// Ranging over a slice is ordered and fine, whatever the body does.
func sliceOrder(q *queue, events []event) {
	for _, e := range events {
		q.Schedule(e)
	}
}

// The escape hatch: intentional wall-clock use, documented and allowlisted.
func realClockEpoch() time.Time {
	//lint:ownership RealClock deliberately anchors to the host clock
	return time.Now()
}
