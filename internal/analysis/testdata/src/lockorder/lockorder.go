// Package lockorder is the analysistest corpus for the lockorder analyzer.
package lockorder

import "sync"

type shard struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	count int
}

type mailbox struct {
	mu    sync.Mutex
	items []int
}

func work() {}

// --- positive cases ---

func missingUnlock(s *shard) {
	s.mu.Lock() // want `s.mu.Lock is never released`
	s.count++
}

func missingUnlockOnlyOtherMutex(s *shard, m *mailbox) {
	s.mu.Lock() // want `s.mu.Lock is never released`
	m.mu.Lock()
	s.count++
	m.mu.Unlock()
}

func doubleLock(s *shard) {
	s.mu.Lock()
	s.count++
	s.mu.Lock() // want `s.mu.Lock while already held`
	s.count++
	s.mu.Unlock()
	s.mu.Unlock()
}

func missingRUnlock(s *shard) int {
	s.rw.RLock() // want `s.rw.RLock is never released`
	return s.count
}

// The ordering cycle: lockFirst takes shard.mu then mailbox.mu ...
func lockFirst(s *shard, m *mailbox) {
	s.mu.Lock()
	m.mu.Lock()
	m.items = append(m.items, s.count)
	m.mu.Unlock()
	s.mu.Unlock()
}

// ... and lockSecond takes them in the opposite order. The cycle is
// reported at the first acquisition that completes it.
func lockSecond(s *shard, m *mailbox) {
	m.mu.Lock()
	s.mu.Lock() // want `inconsistent lock order`
	s.count += len(m.items)
	s.mu.Unlock()
	m.mu.Unlock()
}

// --- negative cases ---

func lockDeferUnlock(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func lockExplicitUnlock(s *shard) {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

// Conditional early exit with its own unlock (faults.Transport shape).
func earlyExit(s *shard, fail bool) int {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return -1
	}
	n := s.count
	s.mu.Unlock()
	return n
}

// Lock/unlock around each loop iteration (agent error-path shape).
func perIteration(s *shard) {
	for i := 0; i < 4; i++ {
		s.mu.Lock()
		s.count++
		s.mu.Unlock()
	}
}

// Unlock inside a deferred closure still satisfies the pairing check.
func deferredClosure(s *shard) {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	s.count++
}

// Read locks pair with RUnlock.
func readLock(s *shard) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.count
}

// Two instances of the same class in a fixed order is not a cycle.
func sameClassNested(a, b *mailbox) {
	a.mu.Lock()
	b.mu.Lock()
	a.items = append(a.items, b.items...)
	b.mu.Unlock()
	a.mu.Unlock()
}

// Consistent shard-then-mailbox order elsewhere does not conflict.
func consistentOrder(s *shard, m *mailbox) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.items = m.items[:0]
}

// --- RWMutex cross-mode cases ---

// Write-lock upgrade: RLock is not upgradable, so taking the write lock
// while read-locked deadlocks against this very goroutine.
func writeUpgrade(s *shard) {
	s.rw.RLock()
	s.rw.Lock() // want `write-lock upgrade self-deadlocks`
	s.count++
	s.rw.Unlock()
	s.rw.RUnlock()
}

// The reverse: taking the read lock while write-locked blocks forever too.
func readWhileWriteLocked(s *shard) int {
	s.rw.Lock()
	s.rw.RLock() // want `RLock while write-locked`
	n := s.count
	s.rw.RUnlock()
	s.rw.Unlock()
	return n
}

// Releasing the read lock before the write lock is the correct shape.
func readThenWrite(s *shard) {
	s.rw.RLock()
	n := s.count
	s.rw.RUnlock()
	s.rw.Lock()
	s.count = n + 1
	s.rw.Unlock()
}

// Cross-mode conflicts are per instance: write-locking one RWMutex while
// holding another's read lock is fine.
func distinctInstances(a, b *shard) {
	a.rw.RLock()
	defer a.rw.RUnlock()
	b.rw.Lock()
	defer b.rw.Unlock()
	b.count = a.count
}
