// Package lang is the analysistest corpus for the simdeterminism analyzer
// over the fold-VM compiler package: its import path ends in "lang",
// putting it in scope. The cases mirror the hazards of a compiler that
// promises bit-identical output — host entropy must never reach
// instruction selection, constant-pool layout, or emission order.
package lang

import (
	"math/rand"
	"time"
)

type inst struct {
	op  uint8
	arg uint16
}

type compiler struct {
	insts  []inst
	consts []float64
	memo   map[string]uint16
}

func (c *compiler) Emit(in inst) { c.insts = append(c.insts, in) }

// --- positive cases ---

// flushMemo ranges a map straight into the instruction stream: pool/emit
// order would change run to run.
func (c *compiler) flushMemo() {
	for _, slot := range c.memo { // want `map iteration order feeds an append`
		c.consts = append(c.consts, float64(slot))
	}
}

// emitFromMemo feeds an emission call from map order.
func (c *compiler) emitFromMemo() {
	for _, slot := range c.memo { // want `map iteration order feeds Emit call`
		c.Emit(inst{op: 1, arg: slot})
	}
}

// jitterSeed uses the wall clock inside the deterministic package.
func jitterSeed() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

// shuffleInsts uses the global rand source.
func (c *compiler) shuffleInsts() {
	rand.Shuffle(len(c.insts), func(i, j int) { // want `global rand.Shuffle`
		c.insts[i], c.insts[j] = c.insts[j], c.insts[i]
	})
}

// compileAsync spawns a goroutine: emission order would depend on the
// scheduler.
func (c *compiler) compileAsync() {
	go c.flushMemo() // want `goroutine spawn in deterministic package`
}

// --- negative cases ---

// lookupMemo reads the map without ordering consequences.
func (c *compiler) lookupMemo(key string) (uint16, bool) {
	slot, ok := c.memo[key]
	return slot, ok
}

// purgeMemo ranges a map but only deletes from it — no ordered sink.
func (c *compiler) purgeMemo(slot uint16) {
	for k, v := range c.memo {
		if v == slot {
			delete(c.memo, k)
		}
	}
}

// collectSorted gathers keys in traversal order from a slice, then emits:
// the deterministic idiom the VM compilers use.
func (c *compiler) collectSorted(keys []string) {
	for _, k := range keys {
		if slot, ok := c.memo[k]; ok {
			c.Emit(inst{op: 2, arg: slot})
		}
	}
}

// seededRand constructs an explicitly seeded source, which is allowed.
func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
