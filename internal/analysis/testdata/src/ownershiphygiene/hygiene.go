// Package ownershiphygiene exercises RunAll's directive hygiene: directives
// must give a reason, and must actually suppress a diagnostic.
package ownershiphygiene

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

// This directive suppresses a real diagnostic (missing unlock) but carries
// no reason — the hygiene pass reports it as reasonless, not stale.
func suppressedNoReason(b *box) {
	//lint:ownership
	b.mu.Lock()
	b.n++
}

// A stale directive above a function that fires nothing.
//
//lint:ownership historical excuse for code that has since been fixed
func clean(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func alsoClean(b *box) int {
	//lint:ownership the diagnostic this excused is long gone
	return b.n
}
