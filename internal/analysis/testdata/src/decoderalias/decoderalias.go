// Package decoderalias is the analysistest corpus for the decoderalias
// analyzer: retaining decoder-owned values across the next Unmarshal
// without proto.Clone.
package decoderalias

import (
	"github.com/ccp-repro/ccp/internal/bufpool"
	"github.com/ccp-repro/ccp/internal/proto"
)

func consume(proto.Msg)  {}
func frames() [][]byte   { return nil }
func fields(f []float64) {}
func sink([]byte)        {}

// ringEP mimics the shmring.Endpoint receive surface: zero-copy views of
// ring memory, recycled by the next receive on the same endpoint.
type ringEP struct{}

func (ringEP) RecvFrame() (*bufpool.Buf, error)    { return nil, nil }
func (ringEP) TryRecvFrame() (*bufpool.Buf, error) { return nil, nil }

// --- positive cases ---

// Straight-line: m1 aliases scratch recycled by the second Unmarshal.
func staleAfterSecondDecode(dec *proto.Decoder, b1, b2 []byte) {
	m1, _ := dec.Unmarshal(b1)
	m2, _ := dec.Unmarshal(b2)
	consume(m1) // want `m1 aliases decoder scratch invalidated by the Unmarshal`
	consume(m2)
}

// A derived view (type assertion) goes stale with its parent.
func staleDerivedView(dec *proto.Decoder, b1, b2 []byte) {
	m, _ := dec.Unmarshal(b1)
	rep, ok := m.(*proto.Measurement)
	_, _ = dec.Unmarshal(b2)
	if ok {
		fields(rep.Fields) // want `rep aliases decoder scratch invalidated by the Unmarshal`
	}
}

// Appending each iteration's message to an outer slice retains scratch
// that the next iteration's Unmarshal recycles.
func retainAcrossIterations(dec *proto.Decoder) []proto.Msg {
	var out []proto.Msg
	for _, raw := range frames() {
		m, err := dec.Unmarshal(raw)
		if err != nil {
			continue
		}
		out = append(out, m) // want `decoder-owned value stored outside the loop`
	}
	return out
}

// Same bug through a channel: the receiver sees recycled scratch.
func retainViaChannel(dec *proto.Decoder, ch chan proto.Msg) {
	for _, raw := range frames() {
		m, err := dec.Unmarshal(raw)
		if err != nil {
			continue
		}
		ch <- m // want `decoder-owned value sent on a channel`
	}
}

// Storing the latest message in an outer variable outlives the iteration.
func retainInOuterVar(dec *proto.Decoder) proto.Msg {
	var last proto.Msg
	for _, raw := range frames() {
		m, err := dec.Unmarshal(raw)
		if err != nil {
			continue
		}
		last = m // want `decoder-owned value stored outside the loop`
	}
	return last
}

// A ring view's bytes go stale when the same endpoint receives again.
func staleRingViewAfterNextRecv(ep ringEP) {
	f1, _ := ep.RecvFrame()
	b := f1.B
	f1.Release()
	f2, _ := ep.RecvFrame()
	sink(b) // want `b aliases ring memory invalidated by the RecvFrame`
	f2.Release()
}

// The non-blocking poll invalidates exactly like the blocking receive.
func staleRingViewAfterPoll(ep ringEP) {
	f, _ := ep.RecvFrame()
	m := f.B
	f.Release()
	g, _ := ep.TryRecvFrame()
	if g != nil {
		sink(m) // want `m aliases ring memory invalidated by the TryRecvFrame`
		g.Release()
	}
}

// Ring-view bytes appended to outer state survive only until the next
// iteration's receive recycles the ring region.
func retainRingViewAcrossIterations(ep ringEP) [][]byte {
	var views [][]byte
	for i := 0; i < 4; i++ {
		f, err := ep.RecvFrame()
		if err != nil {
			break
		}
		views = append(views, f.B) // want `ring-frame view stored outside the loop`
		f.Release()
	}
	return views
}

// --- negative cases ---

// Borrow-for-the-call (bridge/agent/runtime Handler contract).
func borrowPerIteration(dec *proto.Decoder) {
	for _, raw := range frames() {
		m, err := dec.Unmarshal(raw)
		if err != nil {
			continue
		}
		consume(m)
	}
}

// Clone severs the alias: retention is fine afterwards.
func cloneThenRetain(dec *proto.Decoder) []proto.Msg {
	var out []proto.Msg
	for _, raw := range frames() {
		m, err := dec.Unmarshal(raw)
		if err != nil {
			continue
		}
		out = append(out, proto.Clone(m))
	}
	return out
}

// Cloning before the second decode keeps the first message valid.
func cloneBeforeSecondDecode(dec *proto.Decoder, b1, b2 []byte) {
	m1, _ := dec.Unmarshal(b1)
	keep := proto.Clone(m1)
	m2, _ := dec.Unmarshal(b2)
	consume(keep)
	consume(m2)
}

// Distinct decoders do not invalidate each other.
func twoDecoders(d1, d2 *proto.Decoder, b1, b2 []byte) {
	m1, _ := d1.Unmarshal(b1)
	m2, _ := d2.Unmarshal(b2)
	consume(m1)
	consume(m2)
}

// Split views of a single decode, consumed before the next decode
// (SocketLink.pumpFrame shape).
func splitAndDeliver(dec *proto.Decoder, raw []byte) {
	m, err := dec.Unmarshal(raw)
	if err != nil {
		return
	}
	for _, sub := range proto.Split(m) {
		consume(sub)
	}
}

// The multiplexed serve shape (runtime.ServeSet): poll, decode with a
// scratch decoder, dispatch borrowed, release — all consumed before the
// next receive, so nothing goes stale.
func ringDecodeDispatch(ep ringEP, dec *proto.Decoder) {
	for i := 0; i < 4; i++ {
		f, err := ep.TryRecvFrame()
		if err != nil || f == nil {
			continue
		}
		m, err := dec.Unmarshal(f.B)
		if err == nil {
			consume(m)
		}
		f.Release()
	}
}

// Distinct endpoints do not invalidate each other's views.
func twoRings(p, q ringEP) {
	f1, _ := p.RecvFrame()
	f2, _ := q.RecvFrame()
	sink(f1.B)
	sink(f2.B)
	f1.Release()
	f2.Release()
}

// Scalars copied out of a message carry no aliases and may be retained.
func scalarExtraction(dec *proto.Decoder) []uint32 {
	var sids []uint32
	for _, raw := range frames() {
		m, err := dec.Unmarshal(raw)
		if err != nil {
			continue
		}
		sids = append(sids, m.FlowSID())
	}
	return sids
}
