// Package bufrelease is the analysistest corpus for the bufrelease
// analyzer: positive cases carry `// want` annotations, negative cases are
// the ownership patterns the real tree uses and must stay diagnostic-free.
package bufrelease

import (
	"github.com/ccp-repro/ccp/internal/bufpool"
	"github.com/ccp-repro/ccp/internal/proto"
)

func sink([]byte)          {}
func handoff(*bufpool.Buf) {}
func source() *bufpool.Buf { return bufpool.Get(16) }
func msg() proto.Msg       { return &proto.Close{SID: 1} }
func mkframe() (*bufpool.Buf, error) {
	return proto.MarshalFrame(msg())
}

// ring mimics the shmring.Endpoint receive surface: frame views whose
// Release advances the consumer cursor, plus the non-blocking poll.
type ring struct{}

func (ring) RecvFrame() (*bufpool.Buf, error)    { return nil, nil }
func (ring) TryRecvFrame() (*bufpool.Buf, error) { return nil, nil }

// --- positive cases ---

func useAfterRelease() {
	f := bufpool.Get(64)
	f.B = append(f.B, 1, 2, 3)
	f.Release()
	sink(f.B) // want `use of f after Release`
}

func useAfterReleaseLen() int {
	f := bufpool.Get(8)
	f.Release()
	return len(f.B) // want `use of f after Release`
}

func doubleRelease() {
	f := bufpool.Get(8)
	sink(f.B)
	f.Release()
	f.Release() // want `released twice on this path`
}

func doubleReleaseViaDefer() {
	f := bufpool.Get(8)
	defer f.Release()
	sink(f.B)
	f.Release() // want `released twice: a deferred Release is already registered`
}

func doubleDefer() {
	f := bufpool.Get(8)
	defer f.Release()
	defer f.Release() // want `released twice: a deferred Release is already registered`
	sink(f.B)
}

func discardedGet() {
	bufpool.Get(32) // want `result of Get discarded`
}

func discardedToBlank() {
	_ = bufpool.Get(32) // want `result of Get discarded`
}

func discardedMarshal() {
	_, _ = proto.MarshalFrame(msg()) // want `result of MarshalFrame discarded`
}

func overwrittenBeforeRelease() {
	var f *bufpool.Buf
	f = bufpool.Get(8)
	f = bufpool.Get(16) // want `f overwritten before the pooled frame`
	f.Release()
}

func discardedTryRecv(r ring) {
	r.TryRecvFrame() // want `result of TryRecvFrame discarded`
}

func overwrittenRingFrame(r ring) {
	f, _ := r.TryRecvFrame()
	f, _ = r.TryRecvFrame() // want `f overwritten before the pooled frame`
	if f != nil {
		f.Release()
	}
}

func ringUseAfterRelease(r ring) {
	f, err := r.RecvFrame()
	if err != nil {
		return
	}
	f.Release()
	sink(f.B) // want `use of f after Release`
}

func releaseInLoopThenUse() {
	f := bufpool.Get(8)
	f.Release()
	for i := 0; i < 3; i++ {
		sink(f.B) // want `use of f after Release`
	}
}

// --- negative cases: the tree's real ownership patterns ---

// Straight-line get → use → release.
func straightLine() {
	f := bufpool.Get(64)
	f.B = append(f.B, 42)
	sink(f.B)
	f.Release()
}

// Borrow-for-the-call with defer (SocketLink.ToAgent shape).
func deferredBorrow() error {
	f, err := mkframe()
	if err != nil {
		return err
	}
	defer f.Release()
	sink(f.B)
	return nil
}

// Conditional early release + continue (bridge/readAll shape): the branch
// releases and leaves; the fallthrough path still owns the frame.
func conditionalRelease(drop bool) {
	f := bufpool.Get(8)
	if drop {
		f.Release()
		return
	}
	sink(f.B)
	f.Release()
}

// Reassignment in a loop resets ownership (ServeTransport shape).
func loopReassign() {
	for i := 0; i < 4; i++ {
		f, err := mkframe()
		if err != nil {
			continue
		}
		sink(f.B)
		f.Release()
	}
}

// Ownership handoff: passing the frame away ends our obligations.
func handsOff() {
	f := bufpool.Get(8)
	handoff(f)
}

// Returning the frame transfers ownership to the caller.
func returnsFrame() *bufpool.Buf {
	f := bufpool.Get(8)
	f.B = append(f.B, 7)
	return f
}

// Select-based release in each unreachable-together arm (chanTransport
// shape): branch state is not merged, so the post-select use is clean.
func selectRelease(ch chan *bufpool.Buf, closed chan struct{}) {
	f := bufpool.Get(8)
	select {
	case <-closed:
		f.Release()
		return
	case ch <- f:
		return
	}
}

// A frame captured by a scheduled closure is released there, not here
// (bridge.DatapathSender shape).
func closureRelease(schedule func(func())) {
	f, err := mkframe()
	if err != nil {
		return
	}
	schedule(func() {
		defer f.Release()
		sink(f.B)
	})
}

// Wrapped buffers follow the same discipline without being pooled.
func wrapped(data []byte) {
	f := bufpool.Wrap(data)
	sink(f.B)
	f.Release()
}

// The multiplexed poll loop (runtime.ServeSet shape): empty polls return a
// nil frame, hits are consumed and released before the next poll.
func pollLoop(r ring) {
	for i := 0; i < 4; i++ {
		f, err := r.TryRecvFrame()
		if err != nil || f == nil {
			continue
		}
		sink(f.B)
		f.Release()
	}
}

// Blocking ring receive with the borrow-then-release discipline (ipc.Echo
// shape).
func ringBorrow(r ring) {
	for i := 0; i < 4; i++ {
		f, err := r.RecvFrame()
		if err != nil {
			return
		}
		sink(f.B)
		f.Release()
	}
}
