// Package dslverify is the corpus for the dslverify analyzer: statically
// constructed datapath programs, some that the Install-gate verifier
// refuses (positive cases) and some it accepts or the decoder must skip
// (negative cases). It imports the real lang package so the fixtures stay
// honest against the real builder and verifier.
package dslverify

import (
	"github.com/ccp-repro/ccp/internal/lang"
)

// unguardedDiv divides by a measurement that can be zero: the datapath
// substitutes x/0 == 0 and the rate write goes to zero silently.
var unguardedDiv = lang.NewProgram().
	Rate(lang.Div(lang.C(1e6), lang.V("pkt.rtt"))). // want `fails verification: div-zero` `fails verification: bounds`
	WaitRtts(1).
	Report().
	MustBuild()

// unclampedCwnd doubles cwnd without a clamp: the interval escapes the
// datapath's [0, 2^30] write bound.
var unclampedCwnd = lang.NewProgram().
	Cwnd(lang.Mul(lang.V("cwnd"), lang.C(2))). // want `fails verification: bounds`
	WaitRtts(1).
	Report().
	MustBuild()

// neverReports accumulates fold state forever: without a Report the
// registers never reset and measurements never reach the agent. The
// finding has no instruction to land on, so it reports at the chain.
var neverReports = lang.NewProgram(). // want `fails verification: no-report`
					MeasureFold(&lang.FoldSpec{
		Regs:    []lang.RegDef{{Name: "acked", Init: 0}},
		Updates: []lang.Assign{{Dst: "acked", E: lang.Add(lang.V("acked"), lang.V("pkt.acked"))}},
	}).
	Cwnd(lang.C(14480)).
	WaitRtts(1).
	MustBuild()

// guardedAndClamped is the safe shape the verifier's diagnostics steer
// toward: an epsilon-guarded divisor and an explicit clamp on the write.
var guardedAndClamped = lang.NewProgram().
	MeasureFold(&lang.FoldSpec{
		Regs:    []lang.RegDef{{Name: "rtt", Init: 0.1}},
		Updates: []lang.Assign{{Dst: "rtt", E: lang.Max(lang.V("pkt.rtt"), lang.C(1e-3))}},
	}).
	Rate(lang.Min(lang.Div(lang.Mul(lang.V("cwnd"), lang.C(2)), lang.Max(lang.V("rtt"), lang.C(1e-3))), lang.C(1e12))).
	WaitRtts(1).
	Report().
	MustBuild()

// dynamicProgram builds its expression from a runtime parameter: the
// decoder cannot prove anything about it and must skip the site silently —
// the runtime Install gate still covers it.
func dynamicProgram(target float64) *lang.Program {
	return lang.NewProgram().
		Rate(lang.Div(lang.C(target), lang.V("pkt.rtt"))).
		WaitRtts(1).
		Report().
		MustBuild()
}

// viaVariable routes the builder through a local: dynamic, skipped.
func viaVariable() *lang.Program {
	b := lang.NewProgram()
	b = b.Rate(lang.Div(lang.C(1e6), lang.V("pkt.rtt")))
	b = b.WaitRtts(1).Report()
	p, err := b.Build()
	if err != nil {
		return nil
	}
	return p
}
