package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimDeterminism enforces the bit-identical-replay contract of the
// simulator and the native congestion-control implementations: given the
// same seed, a run must produce the same event sequence on every machine
// and every execution. Inside the deterministic packages (netsim, tcp,
// nativecc, experiments) it forbids:
//
//   - wall-clock reads (time.Now, time.Since, timers, sleeps) — simulated
//     time comes from the event loop, never the host
//   - package-level math/rand functions, which share a global, racy source;
//     randomness must flow from an explicitly seeded *rand.Rand
//   - goroutine spawns: event order must not depend on the Go scheduler
//   - ranging over a map when the body feeds an order-sensitive sink
//     (append, channel send, scheduling/emission calls) — map iteration
//     order is randomized per run
//
// Code that intentionally measures the real world (the RealClock, the
// wall-clock IPC experiments) carries a //lint:ownership line comment.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock, global rand, goroutines, and map-ordered event emission in deterministic packages",
	Run:  runSimDeterminism,
}

// deterministicPkgs are the final import-path segments this analyzer
// applies to. supervise is here because the supervisor and standby must be
// drivable entirely from a netsim.Clock — failover experiments replay
// bit-identically only if the HA layer never reads the host clock or spawns
// its own goroutines. lang is here because both fold VMs (the stack
// reference and the register backend) promise bit-identical replay: the
// compilers must never let host entropy — clocks, global rand, map
// iteration order — leak into instruction selection or pool layout.
var deterministicPkgs = []string{"netsim", "tcp", "nativecc", "experiments", "supervise", "lang"}

// wallClockFuncs are time-package functions that read or wait on the host
// clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandCtors are math/rand package functions that are allowed: they
// construct an explicitly seeded source instead of using the global one.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// orderSinkPrefixes name calls that emit or schedule in order; feeding them
// from a map range makes the event sequence depend on map hash seeds.
var orderSinkPrefixes = []string{"Schedule", "Emit", "Enqueue", "Push", "Send", "Deliver", "Write"}

func runSimDeterminism(pass *Pass) error {
	scoped := false
	for _, seg := range deterministicPkgs {
		if pkgLastSegment(pass.Pkg.Path(), seg) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawn in deterministic package %s: event order must not depend on the scheduler", pass.Pkg.Name())
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand or a sim clock) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in deterministic package %s: use the simulated clock", fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRandCtors[fn.Name()] {
			pass.Reportf(call.Pos(), "global rand.%s in deterministic package %s: thread an explicitly seeded *rand.Rand", fn.Name(), pass.Pkg.Name())
		}
	}
}

// checkMapRange reports ranging over a map when the body contains an
// order-sensitive sink.
func checkMapRange(pass *Pass, r *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[r.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sink := ""
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "a channel send"
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil {
				for _, p := range orderSinkPrefixes {
					if strings.HasPrefix(fn.Name(), p) {
						sink = fn.Name() + " call"
						return false
					}
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" {
					sink = "an append"
				}
			}
		}
		return true
	})
	if sink != "" {
		pass.Reportf(r.Pos(), "map iteration order feeds %s in deterministic package %s: iterate a sorted key slice instead", sink, pass.Pkg.Name())
	}
}
