package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module without
// any dependency on golang.org/x/tools: module-internal imports are
// type-checked from source by the loader itself, and standard-library
// imports are delegated to the stdlib source importer (which reads GOROOT
// sources, so it works offline). The repo has no third-party imports, so
// those two importers cover everything.
type Loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.ImporterFrom
	// typed memoizes type-checked packages by import path, shared between
	// dependency resolution and top-level loads. A package must be checked
	// exactly once per loader, whether it is first reached as an import or
	// as a top-level pattern: two checks would mint two distinct
	// *types.Package identities and spurious interface-satisfaction errors.
	typed map[string]*Package
	// extra maps additional import paths to directories (testdata packages).
	extra map[string]string
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// The source importer consults the global build context. The module has
	// no cgo; disabling it here keeps the importer from shelling out to the
	// cgo tool for stdlib packages (net) that have a pure-Go fallback.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		modPath: modPath,
		modRoot: root,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		typed:   make(map[string]*Package),
		extra:   make(map[string]string),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ModRoot returns the module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modRoot, 0)
}

// ImportFrom implements types.ImporterFrom, routing module-internal and
// registered testdata paths to the source type-checker and everything else
// to the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.typed[path]; ok {
		return pkg.Types, nil
	}
	if dir, ok := l.moduleDir(path); ok {
		pkg, err := l.check(path, dir, nil)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// moduleDir maps an import path to a source directory when the loader is
// responsible for type-checking it.
func (l *Loader) moduleDir(path string) (string, bool) {
	if dir, ok := l.extra[path]; ok {
		return dir, true
	}
	if path == l.modPath {
		return l.modRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// RegisterDir maps importPath to dir for subsequent loads, letting testdata
// packages import one another under stable names.
func (l *Loader) RegisterDir(importPath, dir string) {
	l.extra[importPath] = dir
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Only buildable non-test files (per the default build
// context) are included, matching what ships in the binary.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	return l.check(importPath, dir, nil)
}

// Load expands patterns ("./...", "./internal/proto", "dir/...") relative
// to the module root and returns the matched packages, sorted by path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for dir := range dirs {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		ctx := build.Default
		bp, err := ctx.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		pkg, err := l.check(path, dir, bp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// check parses goFiles (or the directory's buildable files when nil) and
// type-checks them as importPath.
func (l *Loader) check(importPath, dir string, goFiles []string) (*Package, error) {
	if pkg, ok := l.typed[importPath]; ok {
		return pkg, nil
	}
	if goFiles == nil {
		ctx := build.Default
		bp, err := ctx.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
		}
		goFiles = bp.GoFiles
	}
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.typed[importPath] = pkg
	return pkg, nil
}
