package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder checks mutex discipline in the runtime's shard/mailbox paths
// (and everywhere else): every sync.Mutex/RWMutex Lock must be matched by
// an Unlock or a defer in the same function, a mutex must not be re-locked
// on a straight-line path (self-deadlock), and two lock classes must be
// acquired in a consistent order across the package (an A-then-B function
// and a B-then-A function can deadlock against each other).
//
// Events are collected per function in source order; returns and branch
// statements reset the held-set, so conditional early-exit paths
// (lock/unlock/return inside an if) do not produce false positives.
// Instance identity (the receiver variable) is used for the matching and
// double-lock checks; type identity (the lock class, e.g.
// "(*SocketLink).mu") is used for the cross-function ordering graph.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "check Lock/Unlock pairing, straight-line double-Lock, and consistent cross-function mutex acquisition order",
	Run:  runLockOrder,
}

type lockEventKind int

const (
	evLock lockEventKind = iota
	evUnlock
	evDeferUnlock
	evReset // return / break / continue / goto: abandon linear state
)

type lockEvent struct {
	kind  lockEventKind
	read  bool // RLock/RUnlock
	inst  string
	class string
	name  string // source text of the receiver, for messages
	pos   token.Pos
}

// lockEdge is one observed acquisition order: to was locked while from was
// held.
type lockEdge struct {
	pos  token.Pos
	name string
}

func runLockOrder(pass *Pass) error {
	order := make(map[[2]string]lockEdge)
	forEachFuncBody(pass.Files, func(body *ast.BlockStmt) {
		events := collectLockEvents(pass, body)
		checkLockPairing(pass, events)
		checkDoubleLock(pass, events)
		recordLockOrder(events, order)
	})
	reportLockCycles(pass, order)
	return nil
}

// collectLockEvents walks body in source order, skipping nested function
// literals (they run on their own schedule and are collected separately),
// except that Unlocks inside literals still satisfy the pairing check via
// a synthetic defer event (a `defer func() { mu.Unlock() }()` is a common
// shape).
func collectLockEvents(pass *Pass, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	var inspect func(n ast.Node, inLit bool)
	inspect = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n.Body != nil && !inLit {
					inspect(n.Body, true)
				}
				return false
			case *ast.ReturnStmt, *ast.BranchStmt:
				if !inLit {
					events = append(events, lockEvent{kind: evReset, pos: n.Pos()})
				}
			case *ast.DeferStmt:
				if ev, ok := mutexCall(pass, n.Call); ok && !inLit {
					if ev.kind == evUnlock {
						ev.kind = evDeferUnlock
					}
					events = append(events, ev)
					return false
				}
			case *ast.CallExpr:
				if ev, ok := mutexCall(pass, n); ok {
					if inLit {
						// Only unlocks escape a literal, and only to satisfy
						// pairing (treated like a deferred unlock).
						if ev.kind == evUnlock {
							ev.kind = evDeferUnlock
							events = append(events, ev)
						}
					} else {
						events = append(events, ev)
					}
				}
			}
			return true
		})
	}
	inspect(body, false)
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// mutexCall matches Lock/Unlock/RLock/RUnlock calls on sync.Mutex or
// sync.RWMutex receivers.
func mutexCall(pass *Pass, call *ast.CallExpr) (lockEvent, bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	var kind lockEventKind
	read := false
	switch fn.Name() {
	case "Lock":
		kind = evLock
	case "Unlock":
		kind = evUnlock
	case "RLock":
		kind, read = evLock, true
	case "RUnlock":
		kind, read = evUnlock, true
	default:
		return lockEvent{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockEvent{}, false
	}
	recv := namedFrom(sig.Recv().Type())
	if recv == nil || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return lockEvent{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	inst, class, name := mutexKeys(pass, sel.X)
	if inst == "" {
		return lockEvent{}, false
	}
	return lockEvent{kind: kind, read: read, inst: inst, class: class, name: name, pos: call.Pos()}, true
}

// mutexKeys canonicalizes the receiver expression of a mutex method call.
// The instance key identifies one variable's mutex within a function
// (root object identity + field path); the class key identifies the lock
// class across functions (root static type + field path).
func mutexKeys(pass *Pass, x ast.Expr) (inst, class, name string) {
	var fields []string
	e := ast.Unparen(x)
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			fields = append([]string{v.Sel.Name}, fields...)
			e = ast.Unparen(v.X)
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[v]
			if obj == nil {
				return "", "", ""
			}
			path := strings.Join(fields, ".")
			name = v.Name
			if path != "" {
				name += "." + path
			}
			t := obj.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			inst = fmt.Sprintf("%p.%s", obj, path)
			class = types.TypeString(t, nil) + "." + path
			return inst, class, name
		default:
			return "", "", ""
		}
	}
}

// checkLockPairing reports Locks with no matching Unlock after them and no
// deferred Unlock anywhere in the function.
func checkLockPairing(pass *Pass, events []lockEvent) {
	deferred := map[string]bool{}
	for _, ev := range events {
		if ev.kind == evDeferUnlock {
			deferred[ev.inst+readSuffix(ev.read)] = true
		}
	}
	for i, ev := range events {
		if ev.kind != evLock {
			continue
		}
		key := ev.inst + readSuffix(ev.read)
		if deferred[key] {
			continue
		}
		matched := false
		for _, later := range events[i+1:] {
			if later.kind == evUnlock && later.inst == ev.inst && later.read == ev.read {
				matched = true
				break
			}
		}
		if !matched {
			pass.Reportf(ev.pos, "%s.%s is never released: no %s or defer after this point in the function",
				ev.name, lockName(ev.read), unlockName(ev.read))
		}
	}
}

// checkDoubleLock reports re-locking a mutex that is still held on the
// same straight-line path. For RWMutex the two modes conflict across keys:
// Lock while the same instance is read-locked is the classic write-lock
// upgrade (RLock is not upgradable, and sync.RWMutex writers block behind
// readers, so the path deadlocks against itself), and RLock while
// write-locked blocks the same way.
func checkDoubleLock(pass *Pass, events []lockEvent) {
	held := map[string]token.Pos{}
	for _, ev := range events {
		key := ev.inst + readSuffix(ev.read)
		switch ev.kind {
		case evReset:
			held = map[string]token.Pos{}
		case evUnlock:
			delete(held, key)
		case evLock:
			if prev, ok := held[key]; ok && !ev.read {
				pass.Reportf(ev.pos, "%s.%s while already held (locked at %s): self-deadlock on this path",
					ev.name, lockName(ev.read), pass.Fset.Position(prev))
			}
			if !ev.read {
				if prev, ok := held[ev.inst+"/r"]; ok {
					pass.Reportf(ev.pos, "%s.Lock while read-locked (RLock at %s): write-lock upgrade self-deadlocks",
						ev.name, pass.Fset.Position(prev))
				}
			} else if prev, ok := held[ev.inst]; ok {
				pass.Reportf(ev.pos, "%s.RLock while write-locked (Lock at %s): self-deadlock on this path",
					ev.name, pass.Fset.Position(prev))
			}
			held[key] = ev.pos
		}
	}
}

// recordLockOrder adds held-then-acquired class pairs to the package-wide
// order graph.
func recordLockOrder(events []lockEvent, order map[[2]string]lockEdge) {
	type heldLock struct {
		inst, class, name string
	}
	var held []heldLock
	drop := func(inst string) {
		for i, h := range held {
			if h.inst == inst {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	for _, ev := range events {
		switch ev.kind {
		case evReset:
			held = held[:0]
		case evUnlock:
			drop(ev.inst)
		case evLock:
			for _, h := range held {
				if h.class != ev.class {
					edge := [2]string{h.class, ev.class}
					if _, ok := order[edge]; !ok {
						order[edge] = lockEdge{pos: ev.pos, name: h.name + " -> " + ev.name}
					}
				}
			}
			held = append(held, heldLock{inst: ev.inst, class: ev.class, name: ev.name})
		}
	}
}

// reportLockCycles reports pairs of lock classes acquired in both orders.
func reportLockCycles(pass *Pass, order map[[2]string]lockEdge) {
	var edges [][2]string
	for e := range order {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		rev := [2]string{e[1], e[0]}
		other, ok := order[rev]
		if !ok || e[0] > e[1] {
			continue // report each cycle once, from the lexically smaller class
		}
		fwd := order[e]
		pass.Reportf(fwd.pos, "inconsistent lock order: %s here, but %s at %s — the two paths can deadlock",
			fwd.name, other.name, pass.Fset.Position(other.pos))
	}
}

func readSuffix(read bool) string {
	if read {
		return "/r"
	}
	return ""
}

func lockName(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

func unlockName(read bool) string {
	if read {
		return "RUnlock"
	}
	return "Unlock"
}
