package analysis

import (
	"strings"
	"testing"
)

// The testdata corpus: each analyzer must fire on every `// want` line
// (positive cases) and stay silent everywhere else (negative cases).

func TestBufRelease(t *testing.T)     { RunTest(t, BufRelease, "bufrelease") }
func TestDecoderAlias(t *testing.T)   { RunTest(t, DecoderAlias, "decoderalias") }
func TestSimDeterminism(t *testing.T) { RunTest(t, SimDeterminism, "netsim") }
func TestLockOrder(t *testing.T)      { RunTest(t, LockOrder, "lockorder") }

// TestDSLVerify runs the Install-gate verifier pass over a corpus of
// statically-constructed programs; the fixture imports the real lang
// package, so builder-API or verifier drift breaks it immediately.
func TestDSLVerify(t *testing.T) { RunTest(t, DSLVerify, "dslverify") }

// TestSimDeterminismLang covers the fold-VM compiler package's scope: the
// lang corpus mirrors compiler-shaped hazards (memo-map ranges feeding
// emission, entropy in instruction selection).
func TestSimDeterminismLang(t *testing.T) { RunTest(t, SimDeterminism, "lang") }

// TestSimDeterminismScope runs simdeterminism over a package outside its
// scope: the identical constructs must produce no diagnostics.
func TestSimDeterminismScope(t *testing.T) { RunTest(t, SimDeterminism, "notsim") }

// TestOwnershipSuppression checks the //lint:ownership escape hatch
// end-to-end: the netsim corpus contains a deliberate wall-clock call that
// only the directive keeps quiet.
func TestOwnershipSuppression(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := "testdata/src/netsim"
	loader.RegisterDir("netsim", dir)
	p, err := loader.LoadDir("netsim", dir)
	if err != nil {
		t.Fatal(err)
	}
	// Count raw diagnostics (pre-suppression) by running the analyzer
	// directly, then compare with the suppressed pipeline.
	var raw []Diagnostic
	pass := &Pass{Analyzer: SimDeterminism, Fset: p.Fset, Files: p.Files, Pkg: p.Types, TypesInfo: p.Info, diags: &raw}
	if err := SimDeterminism.Run(pass); err != nil {
		t.Fatal(err)
	}
	filtered, err := Run([]*Package{p}, []*Analyzer{SimDeterminism})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(filtered)+1 {
		t.Fatalf("expected exactly one suppressed diagnostic: raw=%d filtered=%d", len(raw), len(filtered))
	}
	found := false
	for _, d := range raw {
		if strings.Contains(d.Message, "time.Now") && d.Line > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("raw diagnostics missing the suppressed time.Now finding: %v", raw)
	}
}

// TestAll ensures the registry stays in sync with the shipped analyzers.
func TestAll(t *testing.T) {
	want := []string{"bufrelease", "decoderalias", "simdeterminism", "lockorder", "dslverify"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() = %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("%s: missing Doc or Run", a.Name)
		}
	}
}

// TestTreeIsClean runs the full suite over the whole module — the same
// gate as `make lint`. Every intentional invariant break in the tree must
// carry a //lint:ownership directive with a reason; a directive that
// suppresses nothing, or that gives no reason, fails the gate too (RunAll's
// hygiene pass).
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; covered by make lint")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader lost the tree", len(pkgs))
	}
	diags, err := RunAll(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestOwnershipHygiene pins RunAll's directive checks on the netsim corpus:
// its one directive has a reason and suppresses a real diagnostic, so the
// hygiene pass adds nothing; a synthetic stale or reasonless directive is
// reported.
func TestOwnershipHygiene(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := "testdata/src/netsim"
	loader.RegisterDir("netsim", dir)
	p, err := loader.LoadDir("netsim", dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAll([]*Package{p})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "ownership" {
			t.Errorf("healthy directive flagged: %s", d)
		}
	}

	hyg, err := RunAll([]*Package{mustLoadTestPkg(t, loader, "ownershiphygiene", "testdata/src/ownershiphygiene")})
	if err != nil {
		t.Fatal(err)
	}
	var stale, reasonless int
	for _, d := range hyg {
		if d.Analyzer != "ownership" {
			continue
		}
		if strings.Contains(d.Message, "stale") {
			stale++
		}
		if strings.Contains(d.Message, "no reason") {
			reasonless++
		}
	}
	if stale != 2 || reasonless != 1 {
		t.Fatalf("hygiene findings: stale=%d reasonless=%d, want 2 and 1\nall: %v", stale, reasonless, hyg)
	}
}

func mustLoadTestPkg(t *testing.T, loader *Loader, name, dir string) *Package {
	t.Helper()
	loader.RegisterDir(name, dir)
	p, err := loader.LoadDir(name, dir)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
