package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"github.com/ccp-repro/ccp/internal/lang"
	"github.com/ccp-repro/ccp/internal/lang/absint"
)

// DSLVerify runs the Install-gate program verifier (lang/absint) at lint
// time over every datapath program that is constructed statically: a
// lang.NewProgram()...Build()/MustBuild() builder chain whose expressions
// are built entirely from the lang constructors (C, V, Add, Ite, ...) with
// compile-time-constant leaves. The datapath refuses such programs at
// Install in strict mode; this pass surfaces the same refusal at the source
// line of the offending instruction, before anything runs.
//
// The reconstruction is conservative: a chain routed through a variable, a
// constructor argument that is not a Go constant, or any shape the decoder
// does not recognize silently skips the whole site (the Install gate still
// covers it at runtime). Only install-blocking (error-severity) findings
// are reported; advisory warnings stay a runtime concern.
var DSLVerify = &Analyzer{
	Name: "dslverify",
	Doc:  "verify statically-constructed datapath programs with the absint Install-gate checks",
	Run:  runDSLVerify,
}

func runDSLVerify(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !builderMethodCall(pass.TypesInfo, call, "Build") &&
				!builderMethodCall(pass.TypesInfo, call, "MustBuild") {
				return true
			}
			d := &dslDecoder{pass: pass}
			prog, ok := d.decodeChain(call)
			if !ok {
				return true
			}
			rep, err := absint.Analyze(prog, absint.Datapath())
			if err != nil {
				// Structurally invalid: MustBuild panics at init and Build
				// errors out; both fail long before Install. Not our beat.
				return true
			}
			for _, fd := range rep.Errors() {
				pos := call.Pos()
				switch fd.Where.Kind {
				case "instr":
					if fd.Where.Index < len(d.instrPos) {
						pos = d.instrPos[fd.Where.Index]
					}
				case "update":
					if fd.Where.Index < len(d.updatePos) {
						pos = d.updatePos[fd.Where.Index]
					}
				}
				pass.Reportf(pos, "datapath program fails verification: %s: %s (%s at %s)",
					fd.Check, fd.Message, fd.Where, fd.Path)
			}
			return true
		})
	}
	return nil
}

// builderMethodCall reports whether call invokes lang's (*Builder).<name>.
func builderMethodCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), "lang", "Builder")
}

// dslDecoder rebuilds a lang.Program from a builder-chain AST, recording
// the source position of each instruction and fold update so findings land
// on the line that wrote them.
type dslDecoder struct {
	pass      *Pass
	instrPos  []token.Pos
	updatePos []token.Pos
}

// decodeChain walks a Build/MustBuild call back through its receiver chain
// to lang.NewProgram() and replays the calls onto a real Builder. Returns
// ok=false for anything it cannot prove statically.
func (d *dslDecoder) decodeChain(end *ast.CallExpr) (*lang.Program, bool) {
	// Collect the chain innermost-last.
	var calls []*ast.CallExpr
	cur := end
	for {
		sel, ok := ast.Unparen(cur.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		recv, ok := ast.Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			return nil, false // builder held in a variable: dynamic
		}
		if pkgFuncCall(d.pass.TypesInfo, recv, "lang", "NewProgram") {
			break
		}
		calls = append(calls, cur)
		cur = recv
	}
	calls = append(calls, cur)

	b := lang.NewProgram()
	for i := len(calls) - 1; i >= 0; i-- {
		c := calls[i]
		fn := calleeFunc(d.pass.TypesInfo, c)
		if fn == nil {
			return nil, false
		}
		// Anchor instruction findings on the method name, not the chain
		// head: `.Rate(...)` on its own line should carry its own finding.
		pos := c.Pos()
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			pos = sel.Sel.Pos()
		}
		switch fn.Name() {
		case "MeasureEWMA":
			b.MeasureEWMA()
		case "MeasureFold":
			if len(c.Args) != 1 {
				return nil, false
			}
			spec, ok := d.decodeFoldSpec(c.Args[0])
			if !ok {
				return nil, false
			}
			b.MeasureFold(spec)
		case "MeasureVector":
			if c.Ellipsis.IsValid() {
				return nil, false
			}
			var fields []lang.Field
			for _, a := range c.Args {
				v, ok := constFloat(d.pass.TypesInfo, a)
				if !ok {
					return nil, false
				}
				fields = append(fields, lang.Field(v))
			}
			b.MeasureVector(fields...)
		case "Rate", "Cwnd", "WaitExpr", "WaitRttsExpr":
			if len(c.Args) != 1 {
				return nil, false
			}
			e, ok := d.decodeExpr(c.Args[0])
			if !ok {
				return nil, false
			}
			switch fn.Name() {
			case "Rate":
				b.Rate(e)
			case "Cwnd":
				b.Cwnd(e)
			case "WaitExpr":
				b.WaitExpr(e)
			case "WaitRttsExpr":
				b.WaitRttsExpr(e)
			}
			d.instrPos = append(d.instrPos, pos)
		case "Wait", "WaitRtts":
			if len(c.Args) != 1 {
				return nil, false
			}
			v, ok := constFloat(d.pass.TypesInfo, c.Args[0])
			if !ok {
				return nil, false
			}
			if fn.Name() == "Wait" {
				b.Wait(v)
			} else {
				b.WaitRtts(v)
			}
			d.instrPos = append(d.instrPos, pos)
		case "Report":
			b.Report()
			d.instrPos = append(d.instrPos, pos)
		case "UrgentECN":
			b.UrgentECN()
		case "Build", "MustBuild":
			// End of chain; nothing to replay.
		default:
			return nil, false
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, false
	}
	return p, true
}

// decodeExpr rebuilds a lang.Expr from constructor calls (lang.C, lang.V,
// the binary helpers, lang.Ite) with compile-time-constant leaves.
func (d *dslDecoder) decodeExpr(e ast.Expr) (lang.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn := calleeFunc(d.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !pkgLastSegment(fn.Pkg().Path(), "lang") {
		return nil, false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil, false
	}
	bin := func(op lang.BinKind) (lang.Expr, bool) {
		if len(call.Args) != 2 {
			return nil, false
		}
		l, ok := d.decodeExpr(call.Args[0])
		if !ok {
			return nil, false
		}
		r, ok := d.decodeExpr(call.Args[1])
		if !ok {
			return nil, false
		}
		return &lang.Bin{Op: op, L: l, R: r}, true
	}
	switch fn.Name() {
	case "C":
		if len(call.Args) != 1 {
			return nil, false
		}
		v, ok := constFloat(d.pass.TypesInfo, call.Args[0])
		if !ok {
			return nil, false
		}
		return lang.Const(v), true
	case "V":
		if len(call.Args) != 1 {
			return nil, false
		}
		s, ok := constString(d.pass.TypesInfo, call.Args[0])
		if !ok {
			return nil, false
		}
		return lang.Var(s), true
	case "Add":
		return bin(lang.OpAdd)
	case "Sub":
		return bin(lang.OpSub)
	case "Mul":
		return bin(lang.OpMul)
	case "Div":
		return bin(lang.OpDiv)
	case "Min":
		return bin(lang.OpMin)
	case "Max":
		return bin(lang.OpMax)
	case "Lt":
		return bin(lang.OpLt)
	case "Le":
		return bin(lang.OpLe)
	case "Gt":
		return bin(lang.OpGt)
	case "Ge":
		return bin(lang.OpGe)
	case "Eq":
		return bin(lang.OpEq)
	case "Ne":
		return bin(lang.OpNe)
	case "And":
		return bin(lang.OpAnd)
	case "Or":
		return bin(lang.OpOr)
	case "Ite":
		if len(call.Args) != 3 {
			return nil, false
		}
		cond, ok := d.decodeExpr(call.Args[0])
		if !ok {
			return nil, false
		}
		then, ok := d.decodeExpr(call.Args[1])
		if !ok {
			return nil, false
		}
		els, ok := d.decodeExpr(call.Args[2])
		if !ok {
			return nil, false
		}
		return &lang.If{Cond: cond, Then: then, Else: els}, true
	}
	return nil, false
}

// decodeFoldSpec rebuilds a *lang.FoldSpec from a `&lang.FoldSpec{...}`
// composite literal with keyed fields and literal Regs/Updates slices.
func (d *dslDecoder) decodeFoldSpec(e ast.Expr) (*lang.FoldSpec, bool) {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, false
	}
	lit, ok := un.X.(*ast.CompositeLit)
	if !ok || !isNamedType(d.pass.TypesInfo.TypeOf(lit), "lang", "FoldSpec") {
		return nil, false
	}
	spec := &lang.FoldSpec{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return nil, false
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return nil, false
		}
		inner, ok := kv.Value.(*ast.CompositeLit)
		if !ok {
			return nil, false
		}
		switch key.Name {
		case "Regs":
			for _, rel := range inner.Elts {
				rd, ok := d.decodeRegDef(rel)
				if !ok {
					return nil, false
				}
				spec.Regs = append(spec.Regs, rd)
			}
		case "Updates":
			for _, uel := range inner.Elts {
				up, ok := d.decodeAssign(uel)
				if !ok {
					return nil, false
				}
				spec.Updates = append(spec.Updates, up)
				d.updatePos = append(d.updatePos, uel.Pos())
			}
		default:
			return nil, false
		}
	}
	return spec, true
}

func (d *dslDecoder) decodeRegDef(e ast.Expr) (lang.RegDef, bool) {
	name, init, ok := d.literalFields(e, "Name", "Init")
	if !ok {
		return lang.RegDef{}, false
	}
	n, ok := constString(d.pass.TypesInfo, name)
	if !ok {
		return lang.RegDef{}, false
	}
	rd := lang.RegDef{Name: n}
	if init != nil {
		v, ok := constFloat(d.pass.TypesInfo, init)
		if !ok {
			return lang.RegDef{}, false
		}
		rd.Init = v
	}
	return rd, true
}

func (d *dslDecoder) decodeAssign(e ast.Expr) (lang.Assign, bool) {
	dst, expr, ok := d.literalFields(e, "Dst", "E")
	if !ok || expr == nil {
		return lang.Assign{}, false
	}
	n, ok := constString(d.pass.TypesInfo, dst)
	if !ok {
		return lang.Assign{}, false
	}
	ae, ok := d.decodeExpr(expr)
	if !ok {
		return lang.Assign{}, false
	}
	return lang.Assign{Dst: n, E: ae}, true
}

// literalFields extracts the two named fields of a 2-field struct literal,
// accepting both keyed and positional forms. The first field is required.
func (d *dslDecoder) literalFields(e ast.Expr, f1, f2 string) (v1, v2 ast.Expr, ok bool) {
	lit, litOK := ast.Unparen(e).(*ast.CompositeLit)
	if !litOK || len(lit.Elts) == 0 || len(lit.Elts) > 2 {
		return nil, nil, false
	}
	if kv, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
		for _, el := range lit.Elts {
			kv, keyed = el.(*ast.KeyValueExpr)
			if !keyed {
				return nil, nil, false
			}
			id, idOK := kv.Key.(*ast.Ident)
			if !idOK {
				return nil, nil, false
			}
			switch id.Name {
			case f1:
				v1 = kv.Value
			case f2:
				v2 = kv.Value
			default:
				return nil, nil, false
			}
		}
	} else {
		v1 = lit.Elts[0]
		if len(lit.Elts) == 2 {
			v2 = lit.Elts[1]
		}
	}
	if v1 == nil {
		return nil, nil, false
	}
	return v1, v2, true
}

// constFloat resolves e to a compile-time numeric constant.
func constFloat(info *types.Info, e ast.Expr) (float64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		return v, true
	}
	return 0, false
}

// constString resolves e to a compile-time string constant.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
